// baseline_compare: the proposed subsequence-weight method against the two
// classic BIST baselines the paper positions itself against —
//
//   - pure pseudo-random testing from an LFSR (references [16][17]: no
//     storage, but no coverage guarantee), and
//   - the 3-weight {0, 0.5, 1} scheme of reference [10], extended to
//     sequential circuits by intersecting windows of the deterministic
//     sequence.
//
// All methods get the same total pattern budget. The proposed method reaches
// the deterministic sequence's coverage by construction; the baselines
// plateau below it because a static (or 3-weight) input distribution cannot
// reproduce the time-varying subsequences sequential faults need.
//
//	go run ./examples/baseline_compare [circuit ...]
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/lfsr"
	"repro/internal/tables"
	"repro/internal/threeweight"
)

func main() {
	names := os.Args[1:]
	if len(names) == 0 {
		// cmphard is the random-pattern-resistant workload (a 16-bit
		// comparator gating a counter) where the baselines collapse and the
		// proposed method's guarantee shows.
		names = []string{"s298", "s344", "cmphard"}
	}
	t := tables.New("Coverage of the deterministic sequence's faults (percent)",
		"circuit", "targets", "budget", "proposed", "lfsr", "3-weight")
	for _, name := range names {
		row, err := compare(name)
		if err != nil {
			log.Fatal(err)
		}
		t.Add(row...)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func compare(name string) ([]string, error) {
	run, err := wbist.RunCircuit(name, wbist.Config{LG: 500, Seed: 1})
	if err != nil {
		return nil, err
	}
	budget := run.Config.LG * len(run.Compacted)

	// Pure pseudo-random: one LFSR sequence of the whole budget.
	src, err := lfsr.New(23, 0xBEEF)
	if err != nil {
		return nil, err
	}
	seq := src.Sequence(run.Circuit.NumInputs(), budget)
	det, _ := wbist.Simulate(run.Circuit, seq, run.Targets, run.Init)
	lfsrHits := 0
	for _, d := range det {
		if d {
			lfsrHits++
		}
	}

	// 3-weight [10]: assignments from windows of T around hard faults.
	as, err := threeweight.Derive(run.T, run.DetTimes, 8, len(run.Compacted))
	if err != nil {
		return nil, err
	}
	tw, err := threeweight.Evaluate(run.Circuit, as, run.Targets, budget/len(as), run.Init, 0xACE1)
	if err != nil {
		return nil, err
	}

	n := float64(len(run.Targets))
	return []string{
		name,
		tables.Int(len(run.Targets)),
		tables.Int(budget),
		tables.F1(100 * wbist.Table6(run).Coverage),
		tables.F1(100 * float64(lfsrHits) / n),
		tables.F1(100 * tw.Coverage(len(run.Targets))),
	}, nil
}

var _ = fmt.Sprintf
