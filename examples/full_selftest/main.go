// full_selftest: the complete on-chip self-test architecture in one netlist.
//
// This example assembles everything the repository builds into the structure
// a chip would actually carry:
//
//	┌───────────────────────────┐      ┌─────────┐      ┌────────┐
//	│ test generator (Figure 1) │ ───► │   CUT   │ ───► │  MISR  │
//	│  weight FSMs + counter    │      │ (s298)  │      │ 16-bit │
//	└───────────────────────────┘      └─────────┘      └────────┘
//
// The generator is synthesized to gates and *composed* with the circuit
// under test into a single netlist whose only input is the BIST enable; the
// session is simulated cycle-accurately, responses are compacted in a MISR,
// and fault coverage is measured the way silicon measures it — by comparing
// final signatures. The report also quantifies what signature compaction
// costs versus per-cycle output compare (aliasing).
//
//	go run ./examples/full_selftest
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/bist"
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/sim"
)

func main() {
	const misrWidth = 16

	// 1. Run the pipeline and synthesize the generator hardware.
	run, err := wbist.RunCircuit("s298", wbist.Config{LG: 300, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := wbist.Synthesize(run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CUT %s: %s\n", run.Name, run.Circuit.Stats())
	fmt.Printf("generator: %d gates, %d flip-flops for %d weight assignments\n",
		gen.NumGates, gen.NumDFFs, gen.NumAssignments)

	// 2. Compose generator and CUT into one netlist.
	chip, err := wbist.Compose("chip", gen.Circuit, run.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composed chip: %s\n", chip.Stats())

	// 3. Simulate the whole chip from reset with EN=1 and check its outputs
	// equal the software session the generator is supposed to apply.
	session := wbist.ConcatSession(run.Compacted, gen.LG)
	s := sim.New(chip, wbist.Zero)
	cutOnly := sim.New(run.Circuit, wbist.Zero)
	mismatch := 0
	for u := 0; u < session.Len(); u++ {
		chipOut := s.Step([]wbist.Value{wbist.One})
		wantOut := cutOnly.Step(session.Vecs[u])
		for k := range chipOut {
			if chipOut[k] != wantOut[k] {
				mismatch++
			}
		}
	}
	fmt.Printf("chip vs software-session outputs over %d cycles: %d mismatches\n",
		session.Len(), mismatch)
	if mismatch > 0 {
		log.Fatal("composed chip diverged from the software model")
	}

	// 4. Signature-based self-test: the session's responses compacted in a
	// MISR, fault coverage measured by signature compare. Faults live on the
	// CUT portion of the composed chip.
	cutFaults := cutFaultsOf(chip)
	rep, err := bist.RunSession(chip, enSession(session.Len()), cutFaults, wbist.Zero, misrWidth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nself-test session: %d cycles, golden signature %0*x\n",
		rep.SessionLength, (misrWidth+3)/4, rep.GoldenSignature)
	fmt.Printf("CUT faults in composed chip: %d\n", len(cutFaults))
	fmt.Printf("detected by per-cycle compare: %d (%.1f%%)\n",
		rep.NumByCompare, pct(rep.NumByCompare, len(cutFaults)))
	fmt.Printf("detected by signature:         %d (%.1f%%), %d aliased, %d tainted\n",
		rep.NumBySignature, pct(rep.NumBySignature, len(cutFaults)), rep.Aliased, rep.Tainted)
}

// cutFaultsOf restricts the collapsed fault universe of the composed chip to
// the CUT portion (nodes with the "c_" prefix that Compose applies).
func cutFaultsOf(chip *wbist.Circuit) []wbist.Fault {
	all := fault.CollapsedUniverse(chip)
	var out []wbist.Fault
	for _, f := range all {
		if len(chip.Nodes[f.Node].Name) > 2 && chip.Nodes[f.Node].Name[:2] == "c_" {
			out = append(out, f)
		}
	}
	return out
}

// enSession is the composed chip's input sequence: EN held at 1.
func enSession(n int) *sim.Sequence {
	seq := sim.NewSequence(1)
	for u := 0; u < n; u++ {
		seq.Append([]wbist.Value{wbist.One})
	}
	return seq
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

var _ = circuit.Input
