// Quickstart: the complete weighted-test-sequence BIST flow on the paper's
// worked example, the ISCAS-89 s27 circuit (Section 2 of the paper).
//
// It loads the exact s27 netlist, fault-simulates the paper's Table 1
// deterministic test sequence, runs the weight-selection procedure, prunes
// redundant weight assignments by reverse-order simulation, and prints the
// Table 6 style accounting.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/sim"
)

func main() {
	// 1. Load the circuit (the verbatim published s27 netlist).
	c, err := wbist.LoadCircuit("s27")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("circuit:", c.Stats())

	// 2. The deterministic test sequence T (the paper's Table 1).
	t, err := sim.ParseSequence(wbist.S27TestSequenceText)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic sequence T: %d vectors\n%s\n\n", t.Len(), indent(t.String()))

	// 3. Fault-simulate T to find the target faults and detection times.
	faults := wbist.Faults(c)
	detected, detTime := wbist.Simulate(c, t, faults, wbist.X)
	var targets []wbist.Fault
	var times []int
	for i := range faults {
		if detected[i] {
			targets = append(targets, faults[i])
			times = append(times, detTime[i])
		}
	}
	fmt.Printf("T detects %d of %d collapsed stuck-at faults\n\n", len(targets), len(faults))

	// 4. Select weight assignments (Sections 3 and 4 of the paper).
	res, err := wbist.SelectWeights(c, t, targets, times, 100, wbist.X)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weight set S accumulated by the procedure: %v\n", res.S.Subs)
	fmt.Printf("assignments generated: %d (simulated %d candidate sequences)\n",
		len(res.Omega), res.SimulatedSequences)
	for j, tr := range res.Traces {
		fmt.Printf("  Ω%d = %s  (built at u=%d, L_S=%d; %d new faults)\n",
			j+1, tr.Assignment, tr.U, tr.LS, tr.NewlyDetected)
	}

	// 5. Reverse-order simulation (Section 4.3) drops redundant assignments.
	compacted := wbist.ReverseOrderCompact(res)
	fmt.Printf("\nafter reverse-order simulation: %d assignment(s)\n", len(compacted))

	// 6. Table 6 accounting: how much hardware does this need?
	st := wbist.Accounting(compacted)
	fmt.Printf("subsequences: %d (max length %d) -> %d FSM(s) with %d output(s)\n",
		st.NumSubs, st.MaxLen, st.NumFSMs, st.NumOutputs)

	// 7. Demonstrate the guarantee: the weighted sequences reproduce T's
	// coverage exactly.
	undetected := len(targets)
	seen := make([]bool, len(targets))
	for _, a := range compacted {
		det, _ := wbist.Simulate(c, a.GenSequence(100), targets, wbist.X)
		for i := range targets {
			if det[i] && !seen[i] {
				seen[i] = true
				undetected--
			}
		}
	}
	fmt.Printf("faults of T left undetected by the weighted sequences: %d (complete coverage)\n", undetected)
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
