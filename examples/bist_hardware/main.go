// bist_hardware: synthesizing the on-chip test generator hardware.
//
// First the weight-FSM of the paper's Table 3 is synthesized as a gate-level
// netlist and simulated to prove it emits its three subsequences; then the
// complete Figure 1 generator (weight FSMs + assignment counter + MUX
// network) is built for a full s298 pipeline run, verified cycle-by-cycle
// against the software-generated weighted sequences, and written out as a
// .bench netlist.
//
//	go run ./examples/bist_hardware
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/sim"
)

func main() {
	table3FSM()
	figure1Generator()
}

func table3FSM() {
	subs := []string{"00010", "01011", "11001"}
	c, fsm, err := wbist.SynthesizeFSM("table3", subs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table 3 FSM: %d subsequences of length %d -> %d state bits, %d gates, %d flip-flops\n",
		len(subs), fsm.Len, fsm.StateBits, c.NumGates(), c.NumDFFs())
	s := sim.New(c, wbist.Zero)
	fmt.Println("first 10 cycles (z1 z2 z3):")
	for u := 0; u < 10; u++ {
		out := s.Step([]wbist.Value{wbist.One})
		fmt.Printf("  t=%d: %v %v %v\n", u, out[0], out[1], out[2])
	}
}

func figure1Generator() {
	// A fast configuration keeps the example snappy; drop LG for the paper's
	// full-scale 2000-cycle windows.
	run, err := wbist.RunCircuit("s298", wbist.Config{LG: 300, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	g, err := wbist.Synthesize(run)
	if err != nil {
		log.Fatal(err)
	}
	cut := run.Circuit.Stats()
	fmt.Printf("\nFigure 1 generator for %s: %d weight assignments, L_G=%d\n",
		run.Name, g.NumAssignments, g.LG)
	fmt.Printf("hardware: %d gates, %d flip-flops, %d weight FSMs\n",
		g.NumGates, g.NumDFFs, len(g.FSMs))
	fmt.Printf("CUT for comparison: %d gates, %d flip-flops\n", cut.Gates, cut.DFFs)

	// Verify the netlist against the software model, window by window.
	s := sim.New(g.Circuit, wbist.Zero)
	mismatch := 0
	for _, a := range run.Compacted {
		want := a.GenSequence(g.LG)
		for u := 0; u < g.LG; u++ {
			out := s.Step([]wbist.Value{wbist.One})
			for i := range out {
				if out[i] != want.At(u, i) {
					mismatch++
				}
			}
		}
	}
	fmt.Printf("cycle-by-cycle check vs software sequences: %d mismatches\n", mismatch)
	if mismatch > 0 {
		log.Fatal("generator does not match the software model")
	}

	// Emit the generator netlist for external consumption.
	path := "s298_generator.bench"
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := wbist.WriteBench(f, g.Circuit); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist written to %s\n", path)
}
