// obs_tradeoff: the Section 5 experiment — trading weight assignments for
// observation points.
//
// The full weight-assignment set Ω reaches 100% of the deterministic
// sequence's coverage, but a chip designer may prefer fewer assignments
// (less MUX/FSM hardware) plus a handful of observation points. This example
// reproduces the paper's Tables 7-16 trade-off curve for one circuit and
// names the chosen observation lines.
//
//	go run ./examples/obs_tradeoff [circuit]
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/tables"
)

func main() {
	name := "s344"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	run, err := wbist.RunCircuit(name, wbist.Config{LG: 500, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res := wbist.ObsExperiment(run)

	t := tables.New(fmt.Sprintf("Observation point insertion for %s", name),
		"seq", "sub", "len", "f.e.", "obs", "f.e.+obs")
	for _, row := range res.Rows {
		t.Add(tables.Int(row.Seq), tables.Int(row.Subs), tables.Int(row.Len),
			tables.F1(row.FE), tables.Int(row.Obs), tables.F1(row.FEObs))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Show the actual lines chosen for the smallest prefix that reaches 100%
	// fault efficiency with observation points.
	for k, row := range res.Rows {
		if row.FEObs >= 100 && row.Obs > 0 {
			fmt.Printf("\nwith %d assignment(s), 100%% fault efficiency needs %d observation point(s):\n",
				row.Seq, row.Obs)
			for _, id := range res.ObsLines[k] {
				fmt.Printf("  observe line %s\n", run.Circuit.Nodes[id].Name)
			}
			break
		}
	}
}
