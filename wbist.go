// Package wbist is the public API of this repository: a from-scratch Go
// reproduction of Pomeranz & Reddy, "Built-In Generation of Weighted Test
// Sequences for Synchronous Sequential Circuits" (DATE 2000).
//
// The paper's scheme drives each primary input of a circuit under test with
// a short binary subsequence α repeated periodically (α^r); the subsequences
// are derived from a deterministic test sequence T so that, around every
// hard fault's detection time, the weighted sequence reproduces T exactly,
// which guarantees the fault is detected. On-chip, each subsequence length
// is served by one shared FSM and a counter steps through the selected
// weight assignments (the paper's Figure 1).
//
// # Quick start
//
//	run, err := wbist.RunCircuit("s298", wbist.Config{})
//	if err != nil { ... }
//	row := wbist.Table6(run)            // the paper's Table 6 columns
//	gen, err := wbist.Synthesize(run)   // the Figure 1 BIST hardware
//
// The heavy lifting lives in the internal packages (circuit model, .bench
// I/O, 3-valued bit-parallel fault simulation, test generation, the weight
// procedure, hardware synthesis, observation-point insertion); this package
// re-exports the surface needed to reproduce every experiment.
package wbist

import (
	"io"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/bist"
	"repro/internal/check"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/obsv"
	"repro/internal/rcg"
	"repro/internal/ref"
	"repro/internal/scoap"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/verilog"
	"repro/internal/wgen"
)

// Circuit is a validated gate-level netlist of a synchronous sequential
// circuit.
type Circuit = circuit.Circuit

// Sequence is a test sequence (one vector of input values per time unit).
type Sequence = sim.Sequence

// Fault is a single stuck-at fault (stem or fanout branch).
type Fault = fault.Fault

// Assignment is a weight assignment: one subsequence per primary input.
type Assignment = core.Assignment

// Config parameterises the experiment pipeline; the zero value reproduces
// the paper's setup (L_G = 2000).
type Config = expt.Config

// Run is a completed pipeline for one circuit: deterministic sequence,
// selected weight assignments (before and after reverse-order simulation)
// and the Table 6 accounting.
type Run = expt.Run

// Table6Row holds the columns of the paper's Table 6 for one circuit.
type Table6Row = expt.Table6Row

// ObsResult is the observation-point experiment outcome (Tables 7-16).
type ObsResult = obs.Result

// ObsRow is one row of an observation-point table.
type ObsRow = obs.Row

// Generator is a synthesized Figure 1 test-sequence generator netlist.
type Generator = wgen.Generator

// HardwareStats is the Table 6 hardware accounting of a set of weight
// assignments.
type HardwareStats = core.HardwareStats

// Kernel selects the fault simulator's gate-evaluation strategy; all
// kernels produce bit-identical results (the differential suite enforces
// this), so the choice only affects speed. The zero value honors the
// FSIM_KERNEL environment variable and defaults to the event-driven kernel.
type Kernel = fsim.Kernel

// The fault-simulation kernels.
const (
	KernelAuto  = fsim.KernelAuto
	KernelEvent = fsim.KernelEvent
	KernelDense = fsim.KernelDense
	KernelSlab  = fsim.KernelSlab
)

// ParseKernel maps a CLI or environment spelling ("auto", "event", "dense",
// "slab") to a Kernel.
func ParseKernel(s string) (Kernel, error) { return fsim.ParseKernel(s) }

// Value re-exports the ternary logic values.
type Value = logic.V

// Ternary logic constants.
const (
	Zero = logic.Zero
	One  = logic.One
	X    = logic.X
)

// S27TestSequenceText is the deterministic test sequence of the paper's
// Table 1 for the s27 benchmark (inputs G0..G3), in Sequence text format.
const S27TestSequenceText = iscas.S27TestSequence

// CircuitNames returns the benchmark suite in the paper's table order
// (s27 first, then the Table 6 circuits).
func CircuitNames() []string { return iscas.Names() }

// Table6Names returns the circuits of the paper's Table 6.
func Table6Names() []string { return iscas.Table6Names() }

// ObsTableNames returns the circuits of the paper's Tables 7-16.
func ObsTableNames() []string { return iscas.ObsTableNames() }

// LoadCircuit returns a suite circuit by name: the verbatim ISCAS-89 s27, or
// a deterministic synthetic circuit with the matching interface profile (see
// DESIGN.md "Substitutions").
func LoadCircuit(name string) (*Circuit, error) { return iscas.Load(name) }

// ParseBench reads a netlist in the ISCAS-89 .bench format.
func ParseBench(name string, r io.Reader) (*Circuit, error) { return bench.Parse(name, r) }

// WriteBench serialises a circuit in the .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return bench.Write(w, c) }

// Faults enumerates the equivalence-collapsed stuck-at fault list of a
// circuit.
func Faults(c *Circuit) []Fault { return fault.CollapsedUniverse(c) }

// FaultModelNames lists the canonical fault-model names understood by
// FaultsFor and by Config.FaultModel ("stuck-at", "transition", "bridge").
func FaultModelNames() []string { return fault.ModelNames() }

// FaultsFor enumerates the collapsed fault universe of a circuit under the
// named fault model ("" selects stuck-at; see FaultModelNames).
func FaultsFor(c *Circuit, model string) ([]Fault, error) {
	m, err := fault.ModelByName(model)
	if err != nil {
		return nil, err
	}
	return fault.CollapsedUniverseFor(c, m), nil
}

// GenerateTestSequence produces a deterministic test sequence for a circuit
// (the STRATEGATE/SEQCOM substitute: fault-simulation-driven search plus
// static compaction). init is the flip-flop initialisation (Zero or X).
func GenerateTestSequence(c *Circuit, init Value, seed uint64) (*Sequence, []Fault, []int) {
	r := atpg.Generate(c, atpg.Options{Seed: seed, Init: init})
	var targets []Fault
	var detTimes []int
	for i := range r.Faults {
		if r.Detected[i] {
			targets = append(targets, r.Faults[i])
			detTimes = append(detTimes, r.DetTime[i])
		}
	}
	return r.Seq, targets, detTimes
}

// SelectWeights runs the paper's weight-assignment selection procedure
// (Sections 3 and 4) for a circuit, a deterministic sequence and its
// detected faults with detection times. The returned result holds Ω and the
// weight set S.
func SelectWeights(c *Circuit, t *Sequence, targets []Fault, detTimes []int, lg int, init Value) (*core.Result, error) {
	return core.Run(c, t, targets, detTimes, core.Options{LG: lg, Init: init})
}

// ReverseOrderCompact prunes redundant weight assignments (Section 4.3).
func ReverseOrderCompact(r *core.Result) []Assignment { return core.ReverseOrderCompact(r) }

// Accounting computes the Table 6 hardware statistics of a set of weight
// assignments.
func Accounting(omega []Assignment) HardwareStats { return core.Accounting(omega) }

// RunCircuit executes (and memoizes) the full pipeline for a suite circuit.
func RunCircuit(name string, cfg Config) (*Run, error) { return expt.RunCircuit(name, cfg) }

// RunPipeline executes the full pipeline on an arbitrary circuit with the
// given flip-flop initialisation.
func RunPipeline(c *Circuit, init Value, cfg Config) (*Run, error) {
	return expt.RunPipeline(c, init, cfg)
}

// Table6 extracts the paper's Table 6 columns from a run.
func Table6(r *Run) Table6Row { return expt.Table6(r) }

// ObsExperiment runs the Section 5 observation-point insertion experiment
// (the paper's Tables 7-16) on a run.
func ObsExperiment(r *Run) *ObsResult { return expt.ObsExperiment(r) }

// Synthesize builds the Figure 1 test-sequence generator netlist for a run's
// compacted weight assignments; the result is an ordinary circuit that can
// be simulated and verified against the software-generated sequences.
func Synthesize(r *Run) (*Generator, error) { return expt.SynthesizeGenerator(r) }

// SynthesizeFSM builds a standalone weight FSM (the paper's Table 3) for a
// set of equal-length subsequences.
func SynthesizeFSM(name string, subs []string) (*Circuit, *wgen.FSM, error) {
	return wgen.SynthesizeFSM(name, subs)
}

// Simulate fault-simulates a sequence against a fault list and returns,
// per fault, whether it was detected and at which time unit (-1 if not).
func Simulate(c *Circuit, seq *Sequence, faults []Fault, init Value) (detected []bool, detTime []int) {
	out := fsim.Run(c, seq, faults, fsim.Options{Init: init})
	return out.Detected, out.DetTime
}

// WriteVerilog emits a circuit (benchmark or synthesized BIST hardware) as a
// synthesizable structural Verilog module.
func WriteVerilog(w io.Writer, c *Circuit) error { return verilog.Write(w, c) }

// WriteVerilogTestbench emits a self-checking Verilog testbench that applies
// seq to the module emitted by WriteVerilog and compares against the
// responses computed by this repository's simulator.
func WriteVerilogTestbench(w io.Writer, c *Circuit, seq *Sequence, init Value) error {
	return verilog.WriteTestbench(w, c, seq, init)
}

// Equivalent checks two same-interface circuits for behavioural equivalence
// by common random simulation from reset; it returns nil or the first
// mismatch found (a *check.Mismatch, which carries the exposing stimulus).
func Equivalent(a, b *Circuit, seed uint64, init Value) error {
	return check.Equivalent(a, b, check.Options{Seed: seed, Init: init})
}

// Testability computes SCOAP controllability/observability measures for a
// circuit with the given flip-flop initialisation.
func Testability(c *Circuit, init Value) *scoap.Measures {
	return scoap.Analyze(c, init)
}

// BISTReport is the outcome of a signature-based self-test session
// (generator sequence → CUT → MISR).
type BISTReport = bist.Report

// RunBISTSession applies the continuous weighted test session of a run
// (every assignment window back to back, as the Figure 1 hardware does) to
// the circuit and compacts the responses in a MISR of the given width,
// returning signature-based fault coverage including aliasing and
// unknown-poisoning accounting.
func RunBISTSession(r *Run, misrWidth int) (*BISTReport, error) {
	return bist.RunWeightedSession(r.Core, r.Compacted, misrWidth)
}

// ConcatSession builds the continuous test session a set of weight
// assignments applies (lg cycles per assignment, no resets in between).
func ConcatSession(omega []Assignment, lg int) *Sequence {
	return core.ConcatSequence(omega, lg)
}

// Compose stitches a driver circuit's primary outputs onto a load circuit's
// primary inputs, producing one netlist — the way a synthesized test
// generator is attached to its circuit under test on silicon.
func Compose(name string, driver, load *Circuit) (*Circuit, error) {
	return circuit.Compose(name, driver, load)
}

// SynthesizeSchedule builds the Figure 1 generator with leading pseudo-random
// LFSR windows (the paper's future-work extension realised in hardware).
func SynthesizeSchedule(name string, randomWindows int, omega []Assignment, lg int) (*Generator, error) {
	return wgen.SynthesizeSchedule(name, randomWindows, omega, lg)
}

// Recorder collects pipeline telemetry: hierarchical phase spans (wall clock
// + allocations) and hot-path counter deltas. Install one via
// Config.Telemetry; a nil recorder disables telemetry at near-zero cost.
type Recorder = telemetry.Recorder

// PhaseStats is the aggregated cost of one pipeline phase.
type PhaseStats = telemetry.PhaseStats

// MetricsSink consumes telemetry span events (see NewJSONLSink).
type MetricsSink = telemetry.Sink

// NewRecorder returns a telemetry recorder feeding the given sinks; with no
// sinks it still aggregates per-phase totals in memory (Recorder.Phases).
func NewRecorder(sinks ...MetricsSink) *Recorder { return telemetry.New(sinks...) }

// NewJSONLSink returns a telemetry sink that writes one JSON object per
// completed span to w (the CLI's -metrics format).
func NewJSONLSink(w io.Writer) *telemetry.JSONLSink { return telemetry.NewJSONLSink(w) }

// CounterSnapshot is a point-in-time copy of the process-wide hot-path
// counters (gate evaluations, vectors simulated, PODEM backtracks, ...).
type CounterSnapshot = telemetry.Snapshot

// Counters returns the current hot-path counter values; subtract two
// snapshots (Snapshot.Sub) to cost a region.
func Counters() CounterSnapshot { return telemetry.Counters() }

// DebugServer is a running debug/metrics HTTP server (see ServeDebug).
type DebugServer = telemetry.DebugServer

// ServeDebug exposes net/http/pprof and expvar (including the hot-path
// counters) under /debug/ on addr, plus the Prometheus text exposition under
// /metrics (the CLI's -pprof flag). The returned server reports its bound
// address via Addr and surfaces the serve error on Err.
func ServeDebug(addr string) (*DebugServer, error) { return telemetry.ServeDebug(addr) }

// SetGauge publishes a process-wide gauge into the Prometheus exposition
// (exposed as wbist_<name>).
func SetGauge(name string, v float64) { telemetry.SetGauge(name, v) }

// WritePrometheus writes all telemetry (counters, span-duration histograms,
// gauges) in the Prometheus text format, as served under /metrics.
func WritePrometheus(w io.Writer) { telemetry.WritePrometheus(w) }

// ClearRunCache drops the memoized pipeline runs (fresh-measurement helper
// for benchmarking tools).
func ClearRunCache() { expt.ClearCache() }

// RunTrace is the detection-provenance record of one whole pipeline run: the
// deterministic sequence T against the collapsed fault universe, then every
// compacted weight assignment's window against the targets it mops up — for
// each detection the fault, time unit, detecting primary output, fault group,
// worker and kernel. The canonical stream is bit-identical across worker
// counts and kernels.
type RunTrace = obsv.RunTrace

// DetectionEvent is one first detection inside a traced run.
type DetectionEvent = obsv.Event

// RunReport is the digested view of a run: coverage-vs-vector curve with its
// knee, phase cost breakdown, kernel counters, slowest fault groups and the
// per-assignment detection attribution.
type RunReport = obsv.Report

// TraceRun re-simulates a completed run with detection tracing and returns
// its provenance record (the data behind `wbist report`).
func TraceRun(r *Run) (*RunTrace, error) { return expt.TraceRun(r) }

// WriteTrace serialises a run trace as JSON lines (schema wbist-trace/v1).
func WriteTrace(w io.Writer, rt *RunTrace) error { return obsv.WriteTrace(w, rt) }

// ReadTrace parses a JSONL run trace written by WriteTrace.
func ReadTrace(r io.Reader) (*RunTrace, error) { return obsv.ReadTrace(r) }

// BuildReport digests a run trace and optional per-phase metrics into a run
// report; either input may be nil/empty.
func BuildReport(rt *RunTrace, phases []PhaseStats) *RunReport {
	return obsv.BuildReport(rt, phases)
}

// RenderReport writes the human-readable form of a run report.
func RenderReport(w io.Writer, rep *RunReport) { obsv.Render(w, rep) }

// ReadMetrics parses a JSON-lines metrics file (the -metrics format) into
// per-phase totals, the other ingestion path of `wbist report`.
func ReadMetrics(r io.Reader) ([]PhaseStats, error) { return telemetry.ReadJSONL(r) }

// RCGParams parameterises the seeded random circuit generator (all counts
// clamped into supported ranges; deterministic in Seed).
type RCGParams = rcg.Params

// RandomCircuit generates a random synchronous circuit for correctness
// tooling: guaranteed acyclic combinational core, structurally diverse
// (uniform gate types, optional flip-flop self-loops, degenerate interfaces
// allowed). The whole pipeline accepts the result like any benchmark.
func RandomCircuit(p RCGParams) (*Circuit, error) { return rcg.Generate(p) }

// RandomCircuitFromSeed derives small fuzz-sized parameters from a single
// seed and generates the circuit (the decoder of the differential fuzz
// targets: one uint64 names one circuit).
func RandomCircuitFromSeed(seed uint64) *Circuit { return rcg.FromSeed(seed) }

// ReferenceSimulate runs the deliberately naive reference fault simulator —
// one fault at a time, scalar three-valued evaluation through restated truth
// tables, sharing no code with Simulate's bit-parallel engine — and returns
// the same detection shape as Simulate. Agreement between the two on the
// same inputs is the repository's correctness oracle (see DESIGN.md).
func ReferenceSimulate(c *Circuit, seq *Sequence, faults []Fault, init Value) (detected []bool, detTime []int) {
	out := ref.Run(c, seq, faults, ref.Options{Init: init})
	return out.Detected, out.DetTime
}

// ArtifactStore is a content-addressed, persistent cache of compiled BIST
// artifacts, keyed by canonical netlist bytes plus the identity-relevant
// configuration fields (see internal/store).
type ArtifactStore = store.Store

// OpenStore creates (if needed) and opens an artifact store rooted at dir.
func OpenStore(dir string) (*ArtifactStore, error) { return store.Open(dir) }

// StoreKey computes the content address of a compilation from the raw
// .bench netlist, the flip-flop initialisation and a canonical
// configuration (CanonicalConfig).
func StoreKey(netlist []byte, init Value, cfg Config) (string, error) {
	return store.Key(netlist, init, cfg)
}

// CanonicalConfig resolves a configuration into the canonical form both
// cache layers key on: per-circuit presets applied, defaults filled.
func CanonicalConfig(name string, cfg Config) Config { return expt.CanonicalConfig(name, cfg) }

// JobServer is the HTTP/JSON BIST-compilation service (wbist serve): job
// submission, progress streaming, cancellation and artifact fetch over a
// shared ArtifactStore.
type JobServer = serve.Server

// ServeOptions configure a JobServer.
type ServeOptions = serve.Options

// NewJobServer builds the job service over an artifact store.
func NewJobServer(opts ServeOptions) (*JobServer, error) { return serve.New(opts) }

// MaybeShardWorker turns the process into a fault-simulation shard worker
// when it was spawned as one (Config.ShardProcs > 1 re-execs the current
// binary per worker), and never returns in that case. Any binary built on
// this package that wants multi-process sharding must call it first thing
// in main(), before touching flags, stdin or stdout.
func MaybeShardWorker() { shard.MaybeWorker() }

// RunShardWorker runs the shard-worker protocol loop over the given streams
// until the coordinator closes the job stream. It is the explicit entry
// point behind the `wbist shard-worker` subcommand; MaybeShardWorker is the
// usual (env-marker) route into the same loop.
func RunShardWorker(stdin io.Reader, stdout io.Writer) error {
	return shard.WorkerMain(stdin, stdout)
}
