#!/usr/bin/env bash
# End-to-end smoke test of `wbist serve` (the CI serve-smoke job and
# `make serve-smoke`): start the service, submit s27, poll the job to
# completion, fetch an artifact, resubmit and demand a cache hit with
# byte-identical artifacts, then SIGTERM the server and demand a clean,
# prompt exit. Needs curl and a go toolchain; everything runs on a random
# free port against a throwaway store directory.
set -euo pipefail

workdir="$(mktemp -d)"
addr="localhost:${WBIST_SMOKE_PORT:-8341}"
log="$workdir/serve.log"
pid=""

cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "serve_smoke: FAIL: $*" >&2
    [[ -f "$log" ]] && sed 's/^/serve_smoke: server: /' "$log" >&2
    exit 1
}

api() { curl -sf "http://$addr/api/v1/$1"; }

# shellcheck source=lib_poll.sh
. "$(dirname "$0")/lib_poll.sh"

echo "serve_smoke: building wbist"
go build -o "$workdir/wbist" ./cmd/wbist

echo "serve_smoke: starting wbist serve on $addr (store $workdir/store)"
"$workdir/wbist" serve -addr "$addr" -store "$workdir/store" -drain 30s 2>"$log" &
pid=$!

healthy() {
    kill -0 "$pid" 2>/dev/null || fail "server died during startup"
    api healthz >/dev/null 2>&1
}
poll_until 10 healthy || fail "server did not become healthy"

submit() {
    curl -sf -X POST "http://$addr/api/v1/jobs" \
        -d '{"circuit":"s27","config":{"lg":200,"seed":1}}'
}

json_field() { # json_field <json> <key> -> bare string value
    printf '%s' "$1" | sed -n "s/.*\"$2\": *\"\([^\"]*\)\".*/\1/p" | head -1
}

echo "serve_smoke: submitting s27"
resp="$(submit)" || fail "submission rejected"
job="$(json_field "$resp" id)"
[[ -n "$job" ]] || fail "no job id in response: $resp"

poll="" state=""
job_done() { # job_done <job-id>; sets $poll/$state, exits on terminal failure
    poll="$(api "jobs/$1")" || fail "poll failed"
    state="$(json_field "$poll" state)"
    case "$state" in
        failed|cancelled) fail "job reached state $state: $poll" ;;
    esac
    [[ "$state" == done ]]
}
poll_until 30 job_done "$job" || fail "job did not finish (state $state)"
printf '%s' "$poll" | grep -q '"cached": false' || fail "first run claims cached: $poll"

api "jobs/$job/artifacts/result.json" > "$workdir/result1.json" || fail "artifact fetch failed"
grep -q '"circuit": "s27"' "$workdir/result1.json" || fail "implausible result.json"
api "jobs/$job/artifacts/generator.v" > "$workdir/gen1.v" || fail "generator fetch failed"
grep -q module "$workdir/gen1.v" || fail "generator.v is not Verilog"

echo "serve_smoke: resubmitting (expect cache hit)"
resp2="$(submit)" || fail "resubmission rejected"
job2="$(json_field "$resp2" id)"
poll_until 10 job_done "$job2" || fail "resubmission did not finish (state $state)"
poll2="$poll"
printf '%s' "$poll2" | grep -q '"cached": true' || fail "resubmission was not a cache hit: $poll2"
[[ "$(json_field "$resp2" key)" == "$(json_field "$resp" key)" ]] || fail "store key changed on resubmit"

api "jobs/$job2/artifacts/result.json" > "$workdir/result2.json"
cmp -s "$workdir/result1.json" "$workdir/result2.json" || fail "cached result.json differs"
api "jobs/$job2/artifacts/generator.v" > "$workdir/gen2.v"
cmp -s "$workdir/gen1.v" "$workdir/gen2.v" || fail "cached generator.v differs"

echo "serve_smoke: SIGTERM, expecting clean exit"
kill -TERM "$pid"
server_gone() { ! kill -0 "$pid" 2>/dev/null; }
if ! poll_until 10 server_gone; then
    fail "server still running 10s after SIGTERM"
fi
wait "$pid" || fail "server exited nonzero"
grep -q "shutdown complete" "$log" || fail "no graceful-shutdown log line"
pid=""

echo "serve_smoke: PASS"
