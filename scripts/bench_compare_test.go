package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const pipelineBase = `{
  "schema": "wbist-bench-pipeline/v1",
  "circuits": [
    {"circuit": "s298", "wall_ns": 1000000000,
     "phases": [{"span": "pipeline/atpg", "wall_ns": 800000000}],
     "counters": {"fsim.gate_evals": 900, "fsim.gates_skipped": 100,
                  "fsim.vectors": 50, "fsim.group_passes": 4,
                  "fsim.faults_dropped": 30, "core.candidates_scored": 7,
                  "podem.backtracks": 2, "fsim.events_scheduled": 60}},
    {"circuit": "s344", "wall_ns": 5, "counters": {}}
  ]
}`

func TestComparePipelineExactAndAdvisory(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", pipelineBase)
	// Fresh: same effective evals with a different kernel split, one exact
	// counter diverged, wall 3x slower.
	fresh := writeFile(t, dir, "fresh.json", `{
  "schema": "wbist-bench-pipeline/v1",
  "circuits": [
    {"circuit": "s298", "wall_ns": 3000000000,
     "phases": [{"span": "pipeline/atpg", "wall_ns": 800000000}],
     "counters": {"fsim.gate_evals": 1000, "fsim.gates_skipped": 0,
                  "fsim.vectors": 51, "fsim.group_passes": 4,
                  "fsim.faults_dropped": 30, "core.candidates_scored": 7,
                  "podem.backtracks": 2}},
    {"circuit": "s1488", "wall_ns": 5, "counters": {}}
  ]
}`)
	rows, err := comparePipeline(base, fresh, 0.5)
	if err != nil {
		t.Fatalf("comparePipeline: %v", err)
	}
	byMetric := map[string]row{}
	for _, r := range rows {
		byMetric[r.circuit+"/"+r.metric] = r
	}
	if r := byMetric["s298/effective_evals"]; r.status != "ok" || r.base != "1000" || r.fresh != "1000" {
		t.Errorf("effective_evals row = %+v", r)
	}
	if r := byMetric["s298/fsim.vectors"]; r.status != "FAIL" {
		t.Errorf("diverged vectors row = %+v", r)
	}
	if r := byMetric["s298/wall"]; !strings.HasPrefix(r.status, "slow") {
		t.Errorf("3x wall row = %+v", r)
	}
	if r := byMetric["s298/wall pipeline/atpg"]; r.status != "ok" {
		t.Errorf("matched phase wall row = %+v", r)
	}
	if r := byMetric["s298/fsim.events_scheduled"]; r.status != "info" {
		t.Errorf("kernel-internal row gated: %+v", r)
	}
	if r := byMetric["s1488/(not in baseline)"]; r.status != "info" {
		t.Errorf("unknown circuit row = %+v", r)
	}
	var buf bytes.Buffer
	if failed := render(&buf, base, fresh, rows); failed != 1 {
		t.Errorf("render counted %d failures, want 1:\n%s", failed, buf.String())
	}
	if !strings.Contains(buf.String(), "! s298") {
		t.Errorf("render output lacks failure marker:\n%s", buf.String())
	}
}

func TestComparePipelineNoOverlap(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", pipelineBase)
	fresh := writeFile(t, dir, "fresh.json",
		`{"schema": "wbist-bench-pipeline/v1", "circuits": [{"circuit": "zz", "counters": {}}]}`)
	if _, err := comparePipeline(base, fresh, 0.5); err == nil {
		t.Error("no-overlap compare did not error")
	}
}

func TestComparePipelineSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", `{"schema": "wbist-bench-kernel/v1", "circuits": []}`)
	if _, err := comparePipeline(base, base, 0.5); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch err = %v", err)
	}
	if _, err := comparePipeline(filepath.Join(dir, "missing.json"), base, 0.5); err == nil {
		t.Error("missing file did not error")
	}
	bad := writeFile(t, dir, "bad.json", "{oops")
	if _, err := comparePipeline(bad, bad, 0.5); err == nil {
		t.Error("bad JSON did not error")
	}
}

const kernelBase = `{
  "schema": "wbist-bench-kernel/v1",
  "circuits": [
    {"circuit": "s27", "faults": 26, "vectors": 2000,
     "dense": {"wall_ns": 300000, "gate_evals": 20000},
     "event": {"wall_ns": 250000, "gate_evals": 5000, "gates_skipped": 15000,
               "events_scheduled": 5000, "cone_hits": 5000}}
  ]
}`

func TestCompareKernel(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", kernelBase)
	// Same effective evals, different split; event wall 10x faster.
	fresh := writeFile(t, dir, "fresh.json", `{
  "schema": "wbist-bench-kernel/v1",
  "circuits": [
    {"circuit": "s27", "faults": 26, "vectors": 2000,
     "dense": {"wall_ns": 310000, "gate_evals": 20000},
     "event": {"wall_ns": 25000, "gate_evals": 6000, "gates_skipped": 14000,
               "events_scheduled": 6000, "cone_hits": 5500}}
  ]
}`)
	rows, err := compareKernel(base, fresh, 0.5)
	if err != nil {
		t.Fatalf("compareKernel: %v", err)
	}
	byMetric := map[string]row{}
	for _, r := range rows {
		byMetric[r.metric] = r
	}
	for _, m := range []string{"vectors", "faults", "dense.gate_evals", "event.effective_evals"} {
		if r := byMetric[m]; r.status != "ok" {
			t.Errorf("%s row = %+v", m, r)
		}
	}
	if r := byMetric["event.gate_evals"]; r.status != "info" {
		t.Errorf("event split row gated: %+v", r)
	}
	if r := byMetric["event.wall"]; !strings.HasPrefix(r.status, "fast") {
		t.Errorf("10x-faster wall row = %+v", r)
	}
	if r := byMetric["dense.wall"]; r.status != "ok" {
		t.Errorf("in-tolerance wall row = %+v", r)
	}
	var buf bytes.Buffer
	if failed := render(&buf, base, fresh, rows); failed != 0 {
		t.Errorf("render counted %d failures, want 0:\n%s", failed, buf.String())
	}
}

func TestAppendMarkdown(t *testing.T) {
	dir := t.TempDir()
	sum := filepath.Join(dir, "summary.md")
	rows := []row{
		{"s298", "fsim.vectors", "50", "51", "FAIL"},
		{"s298", "wall", "1000.0ms", "3000.0ms", "slow"},
		{"s298", "effective_evals", "1000", "1000", "ok"},
		{"s298", "fsim.cone_hits", "0", "7", "info"},
	}
	if err := appendMarkdown(sum, "pipeline", "BENCH_pipeline.json", rows); err != nil {
		t.Fatalf("appendMarkdown: %v", err)
	}
	// Appends, never truncates.
	if err := appendMarkdown(sum, "pipeline", "BENCH_pipeline.json", rows[2:]); err != nil {
		t.Fatalf("appendMarkdown (second): %v", err)
	}
	b, err := os.ReadFile(sum)
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	if strings.Count(out, "### bench-check (pipeline)") != 2 {
		t.Errorf("summary does not append:\n%s", out)
	}
	if !strings.Contains(out, "| s298 | fsim.vectors | 50 | 51 | FAIL |") ||
		!strings.Contains(out, "| s298 | wall |") {
		t.Errorf("flagged rows missing from table:\n%s", out)
	}
	if strings.Contains(out, "effective_evals") || strings.Contains(out, "cone_hits") {
		t.Errorf("ok/info rows leaked into the table:\n%s", out)
	}
	if !strings.Contains(out, "2 row(s) ok, 2 flagged.") {
		t.Errorf("summary counts wrong:\n%s", out)
	}
}

func TestWallStatus(t *testing.T) {
	for _, tc := range []struct {
		base, fresh int64
		want        string
	}{
		{1000, 1000, "ok"},
		{1000, 1499, "ok"},
		{1000, 1501, "slow (1.50x)"},
		{1000, 600, "fast (0.60x)"},
		{0, 5, "info"},  // zero baseline: no ratio, advisory row
		{-1, 5, "info"}, // negative (corrupt) baseline: likewise
	} {
		rows := wall(nil, "c", "wall", tc.base, tc.fresh, 0.5)
		if got := rows[0].status; got != tc.want {
			t.Errorf("wall(%d, %d) = %q, want %q", tc.base, tc.fresh, got, tc.want)
		}
	}
	// The zero-baseline row renders "-" rather than a fake "0.0ms".
	rows := wall(nil, "c", "wall", 0, 5e6, 0.5)
	if rows[0].base != "-" || rows[0].fresh != "5.0ms" {
		t.Errorf("zero-baseline row = %+v", rows[0])
	}
}
