package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const pipelineBase = `{
  "schema": "wbist-bench-pipeline/v1",
  "circuits": [
    {"circuit": "s298", "wall_ns": 1000000000,
     "phases": [{"span": "pipeline/atpg", "wall_ns": 800000000}],
     "counters": {"fsim.gate_evals": 900, "fsim.gates_skipped": 100,
                  "fsim.vectors": 50, "fsim.group_passes": 4,
                  "fsim.faults_dropped": 30, "core.candidates_scored": 7,
                  "podem.backtracks": 2, "fsim.events_scheduled": 60}},
    {"circuit": "s344", "wall_ns": 5, "counters": {}}
  ]
}`

func TestComparePipelineExactAndAdvisory(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", pipelineBase)
	// Fresh: same effective evals with a different kernel split, one exact
	// counter diverged, wall 3x slower.
	fresh := writeFile(t, dir, "fresh.json", `{
  "schema": "wbist-bench-pipeline/v1",
  "circuits": [
    {"circuit": "s298", "wall_ns": 3000000000,
     "phases": [{"span": "pipeline/atpg", "wall_ns": 800000000}],
     "counters": {"fsim.gate_evals": 1000, "fsim.gates_skipped": 0,
                  "fsim.vectors": 51, "fsim.group_passes": 4,
                  "fsim.faults_dropped": 30, "core.candidates_scored": 7,
                  "podem.backtracks": 2}},
    {"circuit": "s1488", "wall_ns": 5, "counters": {}}
  ]
}`)
	rows, err := comparePipeline(base, fresh, 0.5)
	if err != nil {
		t.Fatalf("comparePipeline: %v", err)
	}
	byMetric := map[string]row{}
	for _, r := range rows {
		byMetric[r.circuit+"/"+r.metric] = r
	}
	if r := byMetric["s298/effective_evals"]; r.status != "ok" || r.base != "1000" || r.fresh != "1000" {
		t.Errorf("effective_evals row = %+v", r)
	}
	if r := byMetric["s298/fsim.vectors"]; r.status != "FAIL" {
		t.Errorf("diverged vectors row = %+v", r)
	}
	if r := byMetric["s298/wall"]; !strings.HasPrefix(r.status, "slow") {
		t.Errorf("3x wall row = %+v", r)
	}
	if r := byMetric["s298/wall pipeline/atpg"]; r.status != "ok" {
		t.Errorf("matched phase wall row = %+v", r)
	}
	if r := byMetric["s298/fsim.events_scheduled"]; r.status != "info" {
		t.Errorf("kernel-internal row gated: %+v", r)
	}
	if r := byMetric["s1488/(not in baseline)"]; r.status != "info" {
		t.Errorf("unknown circuit row = %+v", r)
	}
	var buf bytes.Buffer
	if failed := render(&buf, base, fresh, rows); failed != 1 {
		t.Errorf("render counted %d failures, want 1:\n%s", failed, buf.String())
	}
	if !strings.Contains(buf.String(), "! s298") {
		t.Errorf("render output lacks failure marker:\n%s", buf.String())
	}
}

func TestComparePipelineNoOverlap(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", pipelineBase)
	fresh := writeFile(t, dir, "fresh.json",
		`{"schema": "wbist-bench-pipeline/v1", "circuits": [{"circuit": "zz", "counters": {}}]}`)
	if _, err := comparePipeline(base, fresh, 0.5); err == nil {
		t.Error("no-overlap compare did not error")
	}
}

func TestComparePipelineSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", `{"schema": "wbist-bench-kernel/v1", "circuits": []}`)
	if _, err := comparePipeline(base, base, 0.5); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch err = %v", err)
	}
	if _, err := comparePipeline(filepath.Join(dir, "missing.json"), base, 0.5); err == nil {
		t.Error("missing file did not error")
	}
	bad := writeFile(t, dir, "bad.json", "{oops")
	if _, err := comparePipeline(bad, bad, 0.5); err == nil {
		t.Error("bad JSON did not error")
	}
}

const kernelBase = `{
  "schema": "wbist-bench-kernel/v1",
  "circuits": [
    {"circuit": "s27", "faults": 26, "vectors": 2000,
     "dense": {"wall_ns": 300000, "gate_evals": 20000},
     "event": {"wall_ns": 250000, "gate_evals": 5000, "gates_skipped": 15000,
               "events_scheduled": 5000, "cone_hits": 5000}}
  ]
}`

func TestCompareKernel(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", kernelBase)
	// Same effective evals, different split; event wall 10x faster.
	fresh := writeFile(t, dir, "fresh.json", `{
  "schema": "wbist-bench-kernel/v1",
  "circuits": [
    {"circuit": "s27", "faults": 26, "vectors": 2000,
     "dense": {"wall_ns": 310000, "gate_evals": 20000},
     "event": {"wall_ns": 25000, "gate_evals": 6000, "gates_skipped": 14000,
               "events_scheduled": 6000, "cone_hits": 5500}}
  ]
}`)
	rows, err := compareKernel(base, fresh, 0.5)
	if err != nil {
		t.Fatalf("compareKernel: %v", err)
	}
	byMetric := map[string]row{}
	for _, r := range rows {
		byMetric[r.metric] = r
	}
	for _, m := range []string{"vectors", "faults", "dense.gate_evals", "event.effective_evals"} {
		if r := byMetric[m]; r.status != "ok" {
			t.Errorf("%s row = %+v", m, r)
		}
	}
	if r := byMetric["event.gate_evals"]; r.status != "info" {
		t.Errorf("event split row gated: %+v", r)
	}
	if r := byMetric["event.wall"]; !strings.HasPrefix(r.status, "fast") {
		t.Errorf("10x-faster wall row = %+v", r)
	}
	if r := byMetric["dense.wall"]; r.status != "ok" {
		t.Errorf("in-tolerance wall row = %+v", r)
	}
	var buf bytes.Buffer
	if failed := render(&buf, base, fresh, rows); failed != 0 {
		t.Errorf("render counted %d failures, want 0:\n%s", failed, buf.String())
	}
}

func TestAppendMarkdown(t *testing.T) {
	dir := t.TempDir()
	sum := filepath.Join(dir, "summary.md")
	rows := []row{
		{"s298", "fsim.vectors", "50", "51", "FAIL"},
		{"s298", "wall", "1000.0ms", "3000.0ms", "slow"},
		{"s298", "effective_evals", "1000", "1000", "ok"},
		{"s298", "fsim.cone_hits", "0", "7", "info"},
	}
	if err := appendMarkdown(sum, "pipeline", "BENCH_pipeline.json", rows); err != nil {
		t.Fatalf("appendMarkdown: %v", err)
	}
	// Appends, never truncates.
	if err := appendMarkdown(sum, "pipeline", "BENCH_pipeline.json", rows[2:]); err != nil {
		t.Fatalf("appendMarkdown (second): %v", err)
	}
	b, err := os.ReadFile(sum)
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	if strings.Count(out, "### bench-check (pipeline)") != 2 {
		t.Errorf("summary does not append:\n%s", out)
	}
	if !strings.Contains(out, "| s298 | fsim.vectors | 50 | 51 | FAIL |") ||
		!strings.Contains(out, "| s298 | wall |") {
		t.Errorf("flagged rows missing from table:\n%s", out)
	}
	if strings.Contains(out, "effective_evals") || strings.Contains(out, "cone_hits") {
		t.Errorf("ok/info rows leaked into the table:\n%s", out)
	}
	if !strings.Contains(out, "2 row(s) ok, 2 flagged.") {
		t.Errorf("summary counts wrong:\n%s", out)
	}
}

func TestWallStatus(t *testing.T) {
	for _, tc := range []struct {
		base, fresh int64
		want        string
	}{
		{1000, 1000, "ok"},
		{1000, 1499, "ok"},
		{1000, 1501, "slow (1.50x)"},
		{1000, 600, "fast (0.60x)"},
		{0, 5, "info"},  // zero baseline: no ratio, advisory row
		{-1, 5, "info"}, // negative (corrupt) baseline: likewise
	} {
		rows := wall(nil, "c", "wall", tc.base, tc.fresh, 0.5)
		if got := rows[0].status; got != tc.want {
			t.Errorf("wall(%d, %d) = %q, want %q", tc.base, tc.fresh, got, tc.want)
		}
	}
	// The zero-baseline row renders "-" rather than a fake "0.0ms".
	rows := wall(nil, "c", "wall", 0, 5e6, 0.5)
	if rows[0].base != "-" || rows[0].fresh != "5.0ms" {
		t.Errorf("zero-baseline row = %+v", rows[0])
	}
}

const slabBase = `{
  "schema": "wbist-bench-slab/v1",
  "circuits": [
    {"circuit": "s298", "faults": 596, "groups": 5, "vectors": 3000,
     "dense": {"wall_ns": 900000, "gate_evals": 40000},
     "event": {"wall_ns": 800000, "gate_evals": 15000},
     "slab": {"wall_ns": 500000, "gate_evals": 40000, "allocs_per_run": 7,
              "slab_passes": 12, "lanes_idle": 3}}
  ]
}`

func TestCompareSlab(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", slabBase)
	// Fresh run on a slower machine: identical counters, slab wall 2x slower,
	// plus a circuit the baseline has never seen.
	fresh := writeFile(t, dir, "fresh.json", `{
  "schema": "wbist-bench-slab/v1",
  "circuits": [
    {"circuit": "s298", "faults": 596, "groups": 5, "vectors": 3000,
     "dense": {"wall_ns": 950000, "gate_evals": 40000},
     "event": {"wall_ns": 820000, "gate_evals": 15000},
     "slab": {"wall_ns": 1000000, "gate_evals": 40000, "allocs_per_run": 7,
              "slab_passes": 12, "lanes_idle": 3}},
    {"circuit": "zz9", "faults": 1, "groups": 1, "vectors": 1,
     "dense": {"gate_evals": 10}, "slab": {"gate_evals": 10}}
  ]
}`)
	rows, err := compareSlab(base, fresh, 0.5)
	if err != nil {
		t.Fatalf("compareSlab: %v", err)
	}
	byMetric := map[string]row{}
	for _, r := range rows {
		byMetric[r.circuit+"/"+r.metric] = r
	}
	for _, m := range []string{"slab.gate_evals (vs dense)", "vectors", "faults",
		"groups", "dense.gate_evals"} {
		if r := byMetric["s298/"+m]; r.status != "ok" {
			t.Errorf("%s row = %+v", m, r)
		}
	}
	if r := byMetric["s298/slab.allocs_per_run"]; r.status != "info" {
		t.Errorf("alloc row gated: %+v", r)
	}
	if r := byMetric["s298/slab.wall"]; !strings.HasPrefix(r.status, "slow") {
		t.Errorf("2x slab wall row = %+v", r)
	}
	// The dense-equivalence invariant is gated on the fresh file alone, even
	// for circuits absent from the baseline.
	if r := byMetric["zz9/slab.gate_evals (vs dense)"]; r.status != "ok" {
		t.Errorf("fresh-only invariant row = %+v", r)
	}
	if r := byMetric["zz9/(not in baseline)"]; r.status != "info" {
		t.Errorf("unknown circuit row = %+v", r)
	}

	// A slab/dense eval mismatch in the fresh file must FAIL with no
	// baseline involvement.
	broken := writeFile(t, dir, "broken.json", `{
  "schema": "wbist-bench-slab/v1",
  "circuits": [
    {"circuit": "s298", "faults": 596, "groups": 5, "vectors": 3000,
     "dense": {"gate_evals": 40000}, "event": {"gate_evals": 15000},
     "slab": {"gate_evals": 39999, "slab_passes": 12}}
  ]
}`)
	rows, err = compareSlab(base, broken, 0.5)
	if err != nil {
		t.Fatalf("compareSlab(broken): %v", err)
	}
	var buf bytes.Buffer
	if failed := render(&buf, base, broken, rows); failed == 0 {
		t.Errorf("diverged slab evals not counted as failure:\n%s", buf.String())
	}
	if _, err := compareSlab(base, writeFile(t, dir, "none.json",
		`{"schema": "wbist-bench-slab/v1", "circuits": [{"circuit": "zz", "dense": {}, "slab": {}}]}`), 0.5); err == nil {
		t.Error("no-overlap compare did not error")
	}
	if _, err := compareSlab(writeFile(t, dir, "wrong.json",
		`{"schema": "wbist-bench-kernel/v1", "circuits": []}`), fresh, 0.5); err == nil {
		t.Error("schema mismatch did not error")
	}
}

const modelBase = `{
  "schema": "wbist-bench-model/v1",
  "circuits": [
    {"circuit": "s298", "gates": 119, "models": [
      {"model": "stuck-at", "faults": 496, "detected": 370,
       "dense": {"wall_ns": 1600000, "gate_evals": 114240, "vectors": 960},
       "event": {"wall_ns": 1400000, "gate_evals": 114240, "vectors": 960}},
      {"model": "transition", "faults": 272, "detected": 197,
       "dense": {"wall_ns": 1400000, "gate_evals": 71400, "vectors": 600},
       "event": {"wall_ns": 1300000, "gate_evals": 71400, "vectors": 600}}
    ]}
  ]
}`

func TestCompareModel(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", modelBase)
	// Healthy fresh run: identical deterministic counters, transition dense
	// wall 2x slower, a model and a circuit the baseline has never seen.
	fresh := writeFile(t, dir, "fresh.json", `{
  "schema": "wbist-bench-model/v1",
  "circuits": [
    {"circuit": "s298", "gates": 119, "models": [
      {"model": "stuck-at", "faults": 496, "detected": 370,
       "dense": {"wall_ns": 1700000, "gate_evals": 114240, "vectors": 960},
       "event": {"wall_ns": 1500000, "gate_evals": 110000, "vectors": 960}},
      {"model": "transition", "faults": 272, "detected": 197,
       "dense": {"wall_ns": 2900000, "gate_evals": 71400, "vectors": 600},
       "event": {"wall_ns": 1350000, "gate_evals": 71400, "vectors": 600}},
      {"model": "bridge", "faults": 330, "detected": 281,
       "dense": {"gate_evals": 75803, "vectors": 637},
       "event": {"gate_evals": 75803, "vectors": 637}}
    ]},
    {"circuit": "zz9", "models": [
      {"model": "stuck-at", "faults": 2, "detected": 1,
       "dense": {"gate_evals": 10, "vectors": 4},
       "event": {"gate_evals": 10, "vectors": 4}}
    ]}
  ]
}`)
	rows, err := compareModel(base, fresh, 0.5)
	if err != nil {
		t.Fatalf("compareModel: %v", err)
	}
	byMetric := map[string]row{}
	for _, r := range rows {
		byMetric[r.circuit+"/"+r.metric] = r
	}
	for _, m := range []string{"stuck-at.vectors (event vs dense)",
		"stuck-at.faults", "stuck-at.detected", "stuck-at.dense.gate_evals",
		"stuck-at.vectors", "transition.faults", "transition.detected"} {
		if r := byMetric["s298/"+m]; r.status != "ok" {
			t.Errorf("%s row = %+v", m, r)
		}
	}
	// The event kernel's raw eval split may drift (warm-start state): info.
	if r := byMetric["s298/stuck-at.event.gate_evals"]; r.status != "info" {
		t.Errorf("event split row gated: %+v", r)
	}
	if r := byMetric["s298/transition.dense.wall"]; !strings.HasPrefix(r.status, "slow") {
		t.Errorf("2x wall row = %+v", r)
	}
	if r := byMetric["s298/bridge (not in baseline)"]; r.status != "info" {
		t.Errorf("unknown model row = %+v", r)
	}
	// The cross-kernel invariant is gated on the fresh file alone, even for
	// circuits absent from the baseline.
	if r := byMetric["zz9/stuck-at.vectors (event vs dense)"]; r.status != "ok" {
		t.Errorf("fresh-only invariant row = %+v", r)
	}
	if r := byMetric["zz9/(not in baseline)"]; r.status != "info" {
		t.Errorf("unknown circuit row = %+v", r)
	}
	var buf bytes.Buffer
	if failed := render(&buf, base, fresh, rows); failed != 0 {
		t.Errorf("render counted %d failures, want 0:\n%s", failed, buf.String())
	}

	// A dense/event vector mismatch in the fresh file alone must FAIL:
	// kernels are bit-identical per model, whatever the baseline says.
	broken := writeFile(t, dir, "broken.json", `{
  "schema": "wbist-bench-model/v1",
  "circuits": [
    {"circuit": "s298", "models": [
      {"model": "stuck-at", "faults": 496, "detected": 370,
       "dense": {"gate_evals": 114240, "vectors": 960},
       "event": {"gate_evals": 114240, "vectors": 959}}
    ]}
  ]
}`)
	rows, err = compareModel(base, broken, 0.5)
	if err != nil {
		t.Fatalf("compareModel(broken): %v", err)
	}
	buf.Reset()
	if failed := render(&buf, base, broken, rows); failed == 0 {
		t.Errorf("cross-kernel vector drift not counted as failure:\n%s", buf.String())
	}

	if _, err := compareModel(base, writeFile(t, dir, "none.json",
		`{"schema": "wbist-bench-model/v1", "circuits": [{"circuit": "zz", "models": []}]}`), 0.5); err == nil {
		t.Error("no-overlap compare did not error")
	}
	if _, err := compareModel(writeFile(t, dir, "wrong.json",
		`{"schema": "wbist-bench-shard/v1", "circuits": []}`), fresh, 0.5); err == nil {
		t.Error("schema mismatch did not error")
	}
}

const shardBase = `{
  "schema": "wbist-bench-shard/v1",
  "circuits": [
    {"circuit": "s298", "faults": 596, "groups": 5, "detected": 265,
     "rows": [
      {"procs": 0, "wall_ns": 1000000, "gate_evals": 50000, "vectors": 4000,
       "group_passes": 5},
      {"procs": 2, "wall_ns": 2000000, "gate_evals": 50000, "vectors": 4000,
       "group_passes": 5, "ranges_dispatched": 5},
      {"procs": 4, "wall_ns": 2500000, "gate_evals": 50000, "vectors": 4000,
       "group_passes": 5, "ranges_dispatched": 5}
     ]}
  ]
}`

func TestCompareShard(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", shardBase)
	// Healthy fresh run: identical deterministic counters, one row records a
	// lost worker (advisory), procs=4 row missing, an extra procs=8 row, and
	// a slower wall on the procs=2 row.
	fresh := writeFile(t, dir, "fresh.json", `{
  "schema": "wbist-bench-shard/v1",
  "circuits": [
    {"circuit": "s298", "faults": 596, "groups": 5, "detected": 265,
     "rows": [
      {"procs": 0, "wall_ns": 1100000, "gate_evals": 50000, "vectors": 4000,
       "group_passes": 5},
      {"procs": 2, "wall_ns": 4000000, "gate_evals": 50000, "vectors": 4000,
       "group_passes": 5, "ranges_dispatched": 5, "ranges_reassigned": 1,
       "workers_lost": 1},
      {"procs": 8, "wall_ns": 2500000, "gate_evals": 50000, "vectors": 4000,
       "group_passes": 5, "ranges_dispatched": 5}
     ]}
  ]
}`)
	rows, err := compareShard(base, fresh, 0.5)
	if err != nil {
		t.Fatalf("compareShard: %v", err)
	}
	byMetric := map[string]row{}
	for _, r := range rows {
		byMetric[r.circuit+"/"+r.metric] = r
	}
	for _, m := range []string{"procs=2.gate_evals (vs in-process)",
		"procs=2.vectors (vs in-process)", "procs=2.group_passes (vs in-process)",
		"procs=8.gate_evals (vs in-process)", "faults", "groups", "detected",
		"procs=2.gate_evals", "procs=2.ranges_dispatched"} {
		if r := byMetric["s298/"+m]; r.status != "ok" {
			t.Errorf("%s row = %+v", m, r)
		}
	}
	if r := byMetric["s298/procs=2.workers_lost"]; r.status != "info" {
		t.Errorf("lost-worker row gated: %+v", r)
	}
	if r := byMetric["s298/procs=2.wall"]; !strings.HasPrefix(r.status, "slow") {
		t.Errorf("2x wall row = %+v", r)
	}
	if r := byMetric["s298/procs=8 (not in baseline)"]; r.status != "info" {
		t.Errorf("unknown proc row = %+v", r)
	}
	var buf bytes.Buffer
	if failed := render(&buf, base, fresh, rows); failed != 0 {
		t.Errorf("render counted %d failures, want 0:\n%s", failed, buf.String())
	}

	// Cross-row counter drift in the fresh file alone must FAIL: sharding
	// may never change what was simulated.
	drifted := writeFile(t, dir, "drifted.json", `{
  "schema": "wbist-bench-shard/v1",
  "circuits": [
    {"circuit": "s298", "faults": 596, "groups": 5, "detected": 265,
     "rows": [
      {"procs": 0, "gate_evals": 50000, "vectors": 4000, "group_passes": 5},
      {"procs": 2, "gate_evals": 49999, "vectors": 4000, "group_passes": 5,
       "ranges_dispatched": 5}
     ]}
  ]
}`)
	rows, err = compareShard(base, drifted, 0.5)
	if err != nil {
		t.Fatalf("compareShard(drifted): %v", err)
	}
	buf.Reset()
	if failed := render(&buf, base, drifted, rows); failed == 0 {
		t.Errorf("cross-row eval drift not counted as failure:\n%s", buf.String())
	}

	// Structural errors: a circuit with no rows, no overlap, wrong schema.
	if _, err := compareShard(base, writeFile(t, dir, "norows.json",
		`{"schema": "wbist-bench-shard/v1", "circuits": [{"circuit": "s298", "rows": []}]}`), 0.5); err == nil {
		t.Error("empty proc rows did not error")
	}
	if _, err := compareShard(base, writeFile(t, dir, "none.json",
		`{"schema": "wbist-bench-shard/v1", "circuits": [{"circuit": "zz", "rows": [{"procs": 0}]}]}`), 0.5); err == nil {
		t.Error("no-overlap compare did not error")
	}
	if _, err := compareShard(base, writeFile(t, dir, "wrong.json",
		`{"schema": "wbist-bench-slab/v1", "circuits": []}`), 0.5); err == nil {
		t.Error("schema mismatch did not error")
	}
}
