# lib_poll.sh — deadline-based polling with exponential backoff, sourced by
# the smoke scripts (and unit-tested by scripts/poll_test.sh).
#
# The fixed-sleep loops this replaces (`for _ in $(seq 100); do ...; sleep
# 0.1; done`) had two failure modes: the real deadline silently stretched
# with the cost of the polled command (100 iterations of a slow poll is far
# more than 10 seconds), and a just-started service was hammered at 10 Hz
# for its whole startup. poll_until bounds the wait by wall clock, not by
# iteration count, and backs off exponentially from 50 ms to 1 s so early
# readiness is still detected quickly.

# poll_until <deadline-seconds> <command> [args...]
#
# Runs the command until it succeeds (status 0) or the wall-clock deadline
# expires. Returns 0 on success, 1 on deadline. The command runs in the
# calling shell, so predicate functions may set globals or exit the script
# outright (e.g. on a "process died" condition that makes further polling
# pointless).
poll_until() {
    local deadline=$1
    shift
    local start now interval=0.05
    start=$(_poll_now)
    while true; do
        if "$@"; then
            return 0
        fi
        now=$(_poll_now)
        if awk -v n="$now" -v s="$start" -v d="$deadline" \
            'BEGIN { exit !(n - s >= d) }'; then
            return 1
        fi
        sleep "$interval"
        interval=$(awk -v i="$interval" 'BEGIN { n = i * 2; if (n > 1) n = 1; print n }')
    done
}

# _poll_now prints the wall clock in (possibly fractional) seconds. GNU date
# supports %N; fall back to whole seconds where it does not.
_poll_now() {
    local t
    t=$(date +%s.%N)
    case "$t" in
    *N*) date +%s ;;
    *) printf '%s\n' "$t" ;;
    esac
}
