#!/bin/sh
# Coverage gate: run the full test suite with a coverage profile and fail if
# total statement coverage drops below COVER_MIN (percent). The threshold is
# set a hair under the measured repository baseline so refactors have slack
# but a PR that lands untested code fails CI.
set -eu

min="${COVER_MIN:-81.3}"
profile="${COVER_PROFILE:-/tmp/wbist_cover.out}"

go test -count=1 -coverprofile="$profile" ./... >/dev/null

total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
if [ -z "$total" ]; then
    echo "cover_gate: could not extract total coverage from $profile" >&2
    exit 2
fi

awk -v t="$total" -v m="$min" 'BEGIN {
    if (t + 0 < m + 0) {
        printf "cover_gate: total coverage %.1f%% is below the %.1f%% gate\n", t, m
        exit 1
    }
    printf "cover_gate: total coverage %.1f%% (gate %.1f%%)\n", t, m
}'
