#!/usr/bin/env bash
# Unit tests for scripts/lib_poll.sh (the `make shell-test` / CI helper
# check): immediate success, success after retries, and — the failure mode
# the library exists for — a never-succeeding predicate must fail at the
# wall-clock deadline, not after some iteration count, and must poll with
# exponential backoff rather than a fixed-rate hammer.
set -euo pipefail

cd "$(dirname "$0")"
# shellcheck source=lib_poll.sh
. ./lib_poll.sh

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

fail() {
    echo "poll_test: FAIL: $*" >&2
    exit 1
}

now() { _poll_now; }

elapsed_since() { # elapsed_since <start> -> prints seconds
    awk -v s="$1" -v n="$(now)" 'BEGIN { print n - s }'
}

assert_between() { # assert_between <value> <min> <max> <label>
    awk -v v="$1" -v lo="$2" -v hi="$3" 'BEGIN { exit !(v >= lo && v <= hi) }' ||
        fail "$4: $1 not in [$2, $3]"
}

echo "poll_test: immediate success"
start=$(now)
poll_until 5 true || fail "poll_until true returned nonzero"
assert_between "$(elapsed_since "$start")" 0 1 "immediate success took too long"

echo "poll_test: success after retries"
: >"$workdir/attempts"
third_try() {
    echo x >>"$workdir/attempts"
    [[ $(wc -l <"$workdir/attempts") -ge 3 ]]
}
poll_until 10 third_try || fail "predicate succeeding on attempt 3 reported deadline"
[[ $(wc -l <"$workdir/attempts") -eq 3 ]] || fail "expected exactly 3 attempts, got $(wc -l <"$workdir/attempts")"

echo "poll_test: deadline failure mode"
: >"$workdir/never"
never() {
    echo x >>"$workdir/never"
    false
}
start=$(now)
if poll_until 2 never; then
    fail "never-succeeding predicate reported success"
fi
took=$(elapsed_since "$start")
# The wait must be bounded by the wall clock: at least the deadline, and not
# wildly past it (the old fixed loops could overshoot by the full cost of
# every poll).
assert_between "$took" 2 5 "deadline failure took ${took}s"
# Exponential backoff: 0.05+0.1+0.2+0.4+0.8+1+... passes a 2 s deadline in
# ~7 sleeps. A fixed 100 ms hammer would need ~20 attempts.
attempts=$(wc -l <"$workdir/never")
[[ "$attempts" -le 10 ]] || fail "expected backed-off polling (<=10 attempts in 2s), got $attempts"
[[ "$attempts" -ge 3 ]] || fail "expected repeated polling, got only $attempts attempts"

echo "poll_test: predicate runs in the calling shell"
marker=unset
set_marker() {
    marker=set
    true
}
poll_until 1 set_marker
[[ "$marker" == set ]] || fail "predicate side effects were lost (ran in a subshell?)"

echo "poll_test: PASS"
