#!/usr/bin/env bash
# End-to-end smoke test of multi-process fault-group sharding (the CI
# shard-smoke job and `make shard-smoke`): run the full s298 pipeline once
# in-process and once sharded over 2 worker subprocesses with an injected
# worker crash (the coordinator's first spawn of every sharded run dies
# after one fault group), and demand byte-identical fault dictionaries.
# Sharding is an execution policy — a lost worker, its reassigned range and
# the process fan-out itself must not move a single detection time.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

fail() {
    echo "shard_smoke: FAIL: $*" >&2
    exit 1
}

echo "shard_smoke: building wbist"
go build -o "$workdir/wbist" ./cmd/wbist

echo "shard_smoke: baseline pipeline (in-process, workers=1)"
"$workdir/wbist" -workers 1 faults s298 >"$workdir/base.txt" ||
    fail "baseline run failed"

echo "shard_smoke: sharded pipeline (2 procs, first worker crashes after 1 group)"
WBIST_SHARD_TEST_CRASH_SPAWN=0:1 \
    "$workdir/wbist" -workers 1 -shard-procs 2 faults s298 >"$workdir/shard.txt" ||
    fail "sharded run failed"

cmp -s "$workdir/base.txt" "$workdir/shard.txt" || {
    diff "$workdir/base.txt" "$workdir/shard.txt" | head -20 >&2
    fail "sharded output differs from in-process baseline"
}
grep -q "fault dictionary for s298" "$workdir/base.txt" ||
    fail "implausible baseline output"

echo "shard_smoke: PASS"
