// Command bench_compare diffs a freshly measured benchmark file against a
// committed BENCH_*.json baseline and gates on the deterministic work
// counters. It is the teeth behind `make bench-check` and the advisory
// bench-regression CI job.
//
// Five baseline schemas are supported, selected by -mode:
//
//	pipeline  wbist-bench-pipeline/v1 (BENCH_pipeline.json, BENCH_parallel.json)
//	kernel    wbist-bench-kernel/v1   (BENCH_event.json)
//	slab      wbist-bench-slab/v1     (BENCH_slab.json)
//	shard     wbist-bench-shard/v1    (BENCH_shard.json)
//	model     wbist-bench-model/v1    (BENCH_model.json)
//
// Only circuits present in both files are compared, so a cheap smoke run
// (-circuits s298) can be checked against the full committed trajectory.
//
// Gating policy: the pipeline is deterministic for a fixed seed, so the
// work counters must match the baseline EXACTLY —
//
//   - effective gate evaluations (fsim.gate_evals + fsim.gates_skipped),
//     which is kernel-invariant by construction: the event kernel counts
//     every avoided evaluation as skipped;
//   - fsim.vectors, fsim.group_passes, fsim.faults_dropped,
//     core.candidates_scored, podem.backtracks, which are identical for any
//     worker count and either kernel (outcomes are bit-identical).
//
// fsim.cone_hits and fsim.events_scheduled are kernel internals and only
// reported. Wall-clock is never gated — baselines are recorded on other
// machines — but ratios outside -wall-tol are listed so a human can react.
// When $GITHUB_STEP_SUMMARY is set (or -summary given) a markdown table of
// every comparison is appended there.
//
// Exit status: 1 on any exact-counter mismatch (or I/O/schema error), 0
// otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

type phaseStats struct {
	Span     string           `json:"span"`
	WallNS   int64            `json:"wall_ns"`
	Counters map[string]int64 `json:"counters"`
}

type pipelineCircuit struct {
	Circuit  string           `json:"circuit"`
	WallNS   int64            `json:"wall_ns"`
	Phases   []phaseStats     `json:"phases"`
	Counters map[string]int64 `json:"counters"`
}

type kernelStats struct {
	WallNS          int64 `json:"wall_ns"`
	GateEvals       int64 `json:"gate_evals"`
	EventsScheduled int64 `json:"events_scheduled"`
	GatesSkipped    int64 `json:"gates_skipped"`
	ConeHits        int64 `json:"cone_hits"`
}

type kernelCircuit struct {
	Circuit string      `json:"circuit"`
	Faults  int         `json:"faults"`
	Vectors int64       `json:"vectors"`
	Dense   kernelStats `json:"dense"`
	Event   kernelStats `json:"event"`
}

type slabKernelStats struct {
	WallNS       int64 `json:"wall_ns"`
	GateEvals    int64 `json:"gate_evals"`
	AllocsPerRun int64 `json:"allocs_per_run"`
}

type slabCircuit struct {
	Circuit string          `json:"circuit"`
	Faults  int             `json:"faults"`
	Groups  int             `json:"groups"`
	Vectors int64           `json:"vectors"`
	Dense   slabKernelStats `json:"dense"`
	Event   slabKernelStats `json:"event"`
	Slab    struct {
		slabKernelStats
		SlabPasses int64 `json:"slab_passes"`
		LanesIdle  int64 `json:"lanes_idle"`
	} `json:"slab"`
}

type shardStats struct {
	Procs            int   `json:"procs"`
	WallNS           int64 `json:"wall_ns"`
	GateEvals        int64 `json:"gate_evals"`
	Vectors          int64 `json:"vectors"`
	GroupPasses      int64 `json:"group_passes"`
	RangesDispatched int64 `json:"ranges_dispatched"`
	RangesReassigned int64 `json:"ranges_reassigned"`
	WorkersLost      int64 `json:"workers_lost"`
}

type shardCircuit struct {
	Circuit  string       `json:"circuit"`
	Faults   int          `json:"faults"`
	Groups   int          `json:"groups"`
	Detected int          `json:"detected"`
	Rows     []shardStats `json:"rows"`
}

type modelKernelStats struct {
	WallNS    int64 `json:"wall_ns"`
	GateEvals int64 `json:"gate_evals"`
	Vectors   int64 `json:"vectors"`
}

type modelStats struct {
	Model    string           `json:"model"`
	Faults   int              `json:"faults"`
	Detected int              `json:"detected"`
	Dense    modelKernelStats `json:"dense"`
	Event    modelKernelStats `json:"event"`
}

type modelCircuit struct {
	Circuit string       `json:"circuit"`
	Models  []modelStats `json:"models"`
}

type benchFile struct {
	Schema   string          `json:"schema"`
	Circuits json.RawMessage `json:"circuits"`
}

// exactCounters are the gated per-circuit totals (beyond effective evals).
var exactCounters = []string{
	"fsim.vectors",
	"fsim.group_passes",
	"fsim.faults_dropped",
	"core.candidates_scored",
	"podem.backtracks",
}

// row is one comparison line, rendered to stdout and the markdown summary.
type row struct {
	circuit string
	metric  string
	base    string
	fresh   string
	status  string // "ok", "FAIL", "info", "slow (Nx)", "fast (Nx)"
}

func main() {
	mode := flag.String("mode", "pipeline", "baseline schema: pipeline or kernel")
	baseline := flag.String("baseline", "", "committed BENCH_*.json baseline (required)")
	fresh := flag.String("fresh", "", "freshly measured benchmark file (required)")
	wallTol := flag.Float64("wall-tol", 0.5, "advisory wall-clock tolerance (fractional, e.g. 0.5 = ±50%)")
	summary := flag.String("summary", os.Getenv("GITHUB_STEP_SUMMARY"), "append a markdown summary table to this file (default $GITHUB_STEP_SUMMARY)")
	flag.Parse()
	if *baseline == "" || *fresh == "" {
		fmt.Fprintln(os.Stderr, "bench_compare: -baseline and -fresh are required")
		os.Exit(1)
	}

	var rows []row
	var err error
	switch *mode {
	case "pipeline":
		rows, err = comparePipeline(*baseline, *fresh, *wallTol)
	case "kernel":
		rows, err = compareKernel(*baseline, *fresh, *wallTol)
	case "slab":
		rows, err = compareSlab(*baseline, *fresh, *wallTol)
	case "shard":
		rows, err = compareShard(*baseline, *fresh, *wallTol)
	case "model":
		rows, err = compareModel(*baseline, *fresh, *wallTol)
	default:
		err = fmt.Errorf("unknown -mode %q (want pipeline, kernel, slab, shard or model)", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench_compare: %v\n", err)
		os.Exit(1)
	}

	failed := render(os.Stdout, *baseline, *fresh, rows)
	if *summary != "" {
		if err := appendMarkdown(*summary, *mode, *baseline, rows); err != nil {
			fmt.Fprintf(os.Stderr, "bench_compare: summary: %v\n", err)
		}
	}
	if failed > 0 {
		fmt.Printf("bench_compare: FAIL — %d deterministic counter(s) diverged from %s\n", failed, *baseline)
		os.Exit(1)
	}
	fmt.Printf("bench_compare: OK — counters match %s\n", *baseline)
}

func load(path string, circuits any) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var f benchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return "", fmt.Errorf("%s: %v", path, err)
	}
	if err := json.Unmarshal(f.Circuits, circuits); err != nil {
		return "", fmt.Errorf("%s: circuits: %v", path, err)
	}
	return f.Schema, nil
}

func wantSchema(path, got, want string) error {
	if got != want {
		return fmt.Errorf("%s: schema %q, want %q", path, got, want)
	}
	return nil
}

// exact emits a gated exact-match row.
func exact(rows []row, circuit, metric string, base, fresh int64) []row {
	st := "ok"
	if base != fresh {
		st = "FAIL"
	}
	return append(rows, row{circuit, metric, fmt.Sprint(base), fmt.Sprint(fresh), st})
}

// info emits a non-gated informational row.
func info(rows []row, circuit, metric string, base, fresh int64) []row {
	return append(rows, row{circuit, metric, fmt.Sprint(base), fmt.Sprint(fresh), "info"})
}

// wall emits an advisory wall-clock row flagged outside ±tol. A zero or
// missing baseline entry carries no timing signal: the ratio would be
// Inf/NaN, so the row is marked "info" with a "-" baseline instead of
// silently passing as "ok".
func wall(rows []row, circuit, metric string, base, fresh int64, tol float64) []row {
	if base <= 0 {
		return append(rows, row{circuit, metric, "-",
			fmt.Sprintf("%.1fms", float64(fresh)/1e6), "info"})
	}
	st := "ok"
	switch r := float64(fresh) / float64(base); {
	case r > 1+tol:
		st = fmt.Sprintf("slow (%.2fx)", r)
	case r < 1/(1+tol):
		st = fmt.Sprintf("fast (%.2fx)", r)
	}
	return append(rows, row{circuit, metric,
		fmt.Sprintf("%.1fms", float64(base)/1e6),
		fmt.Sprintf("%.1fms", float64(fresh)/1e6), st})
}

func comparePipeline(basePath, freshPath string, tol float64) ([]row, error) {
	var base, fresh []pipelineCircuit
	schema, err := load(basePath, &base)
	if err != nil {
		return nil, err
	}
	if err := wantSchema(basePath, schema, "wbist-bench-pipeline/v1"); err != nil {
		return nil, err
	}
	if schema, err = load(freshPath, &fresh); err != nil {
		return nil, err
	}
	if err := wantSchema(freshPath, schema, "wbist-bench-pipeline/v1"); err != nil {
		return nil, err
	}
	byName := map[string]pipelineCircuit{}
	for _, c := range base {
		byName[c.Circuit] = c
	}
	var rows []row
	matched := 0
	for _, f := range fresh {
		b, ok := byName[f.Circuit]
		if !ok {
			rows = append(rows, row{f.Circuit, "(not in baseline)", "-", "-", "info"})
			continue
		}
		matched++
		rows = exact(rows, f.Circuit, "effective_evals",
			b.Counters["fsim.gate_evals"]+b.Counters["fsim.gates_skipped"],
			f.Counters["fsim.gate_evals"]+f.Counters["fsim.gates_skipped"])
		for _, k := range exactCounters {
			rows = exact(rows, f.Circuit, k, b.Counters[k], f.Counters[k])
		}
		rows = info(rows, f.Circuit, "fsim.events_scheduled",
			b.Counters["fsim.events_scheduled"], f.Counters["fsim.events_scheduled"])
		rows = info(rows, f.Circuit, "fsim.cone_hits",
			b.Counters["fsim.cone_hits"], f.Counters["fsim.cone_hits"])
		rows = wall(rows, f.Circuit, "wall", b.WallNS, f.WallNS, tol)
		for _, fp := range f.Phases {
			for _, bp := range b.Phases {
				if bp.Span == fp.Span {
					rows = wall(rows, f.Circuit, "wall "+fp.Span, bp.WallNS, fp.WallNS, tol)
					break
				}
			}
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("no circuits of %s appear in %s", freshPath, basePath)
	}
	return rows, nil
}

func compareKernel(basePath, freshPath string, tol float64) ([]row, error) {
	var base, fresh []kernelCircuit
	schema, err := load(basePath, &base)
	if err != nil {
		return nil, err
	}
	if err := wantSchema(basePath, schema, "wbist-bench-kernel/v1"); err != nil {
		return nil, err
	}
	if schema, err = load(freshPath, &fresh); err != nil {
		return nil, err
	}
	if err := wantSchema(freshPath, schema, "wbist-bench-kernel/v1"); err != nil {
		return nil, err
	}
	byName := map[string]kernelCircuit{}
	for _, c := range base {
		byName[c.Circuit] = c
	}
	var rows []row
	matched := 0
	for _, f := range fresh {
		b, ok := byName[f.Circuit]
		if !ok {
			rows = append(rows, row{f.Circuit, "(not in baseline)", "-", "-", "info"})
			continue
		}
		matched++
		rows = exact(rows, f.Circuit, "vectors", b.Vectors, f.Vectors)
		rows = exact(rows, f.Circuit, "faults", int64(b.Faults), int64(f.Faults))
		rows = exact(rows, f.Circuit, "dense.gate_evals", b.Dense.GateEvals, f.Dense.GateEvals)
		rows = exact(rows, f.Circuit, "event.effective_evals",
			b.Event.GateEvals+b.Event.GatesSkipped, f.Event.GateEvals+f.Event.GatesSkipped)
		rows = info(rows, f.Circuit, "event.gate_evals", b.Event.GateEvals, f.Event.GateEvals)
		rows = info(rows, f.Circuit, "event.events_scheduled", b.Event.EventsScheduled, f.Event.EventsScheduled)
		rows = info(rows, f.Circuit, "event.cone_hits", b.Event.ConeHits, f.Event.ConeHits)
		rows = wall(rows, f.Circuit, "dense.wall", b.Dense.WallNS, f.Dense.WallNS, tol)
		rows = wall(rows, f.Circuit, "event.wall", b.Event.WallNS, f.Event.WallNS, tol)
	}
	if matched == 0 {
		return nil, fmt.Errorf("no circuits of %s appear in %s", freshPath, basePath)
	}
	return rows, nil
}

func compareSlab(basePath, freshPath string, tol float64) ([]row, error) {
	var base, fresh []slabCircuit
	schema, err := load(basePath, &base)
	if err != nil {
		return nil, err
	}
	if err := wantSchema(basePath, schema, "wbist-bench-slab/v1"); err != nil {
		return nil, err
	}
	if schema, err = load(freshPath, &fresh); err != nil {
		return nil, err
	}
	if err := wantSchema(freshPath, schema, "wbist-bench-slab/v1"); err != nil {
		return nil, err
	}
	byName := map[string]slabCircuit{}
	for _, c := range base {
		byName[c.Circuit] = c
	}
	var rows []row
	matched := 0
	for _, f := range fresh {
		// The slab kernel counts dense-equivalent evals (lane-cycles ×
		// gates), so slab.gate_evals must equal dense.gate_evals within one
		// measurement — a deterministic invariant gated on the fresh file
		// alone, before any baseline comparison.
		rows = exact(rows, f.Circuit, "slab.gate_evals (vs dense)",
			f.Dense.GateEvals, f.Slab.GateEvals)
		b, ok := byName[f.Circuit]
		if !ok {
			rows = append(rows, row{f.Circuit, "(not in baseline)", "-", "-", "info"})
			continue
		}
		matched++
		rows = exact(rows, f.Circuit, "vectors", b.Vectors, f.Vectors)
		rows = exact(rows, f.Circuit, "faults", int64(b.Faults), int64(f.Faults))
		rows = exact(rows, f.Circuit, "groups", int64(b.Groups), int64(f.Groups))
		rows = exact(rows, f.Circuit, "dense.gate_evals", b.Dense.GateEvals, f.Dense.GateEvals)
		rows = info(rows, f.Circuit, "slab.slab_passes", b.Slab.SlabPasses, f.Slab.SlabPasses)
		rows = info(rows, f.Circuit, "slab.lanes_idle", b.Slab.LanesIdle, f.Slab.LanesIdle)
		rows = info(rows, f.Circuit, "slab.allocs_per_run", b.Slab.AllocsPerRun, f.Slab.AllocsPerRun)
		rows = wall(rows, f.Circuit, "dense.wall", b.Dense.WallNS, f.Dense.WallNS, tol)
		rows = wall(rows, f.Circuit, "event.wall", b.Event.WallNS, f.Event.WallNS, tol)
		rows = wall(rows, f.Circuit, "slab.wall", b.Slab.WallNS, f.Slab.WallNS, tol)
	}
	if matched == 0 {
		return nil, fmt.Errorf("no circuits of %s appear in %s", freshPath, basePath)
	}
	return rows, nil
}

// compareShard gates the multi-process sharding baseline. Sharding is an
// execution policy, so the deterministic simulation counters (gate_evals,
// vectors, group_passes) and the detection count must be invariant across
// the proc rows of the fresh file alone — gated before any baseline
// comparison — and must match the baseline's in-process row exactly. The
// shard lifecycle counters (ranges_dispatched per proc row) are exact too:
// the range partition is deterministic in (groups, procs). Wall-clock is
// advisory, as everywhere.
func compareShard(basePath, freshPath string, tol float64) ([]row, error) {
	var base, fresh []shardCircuit
	schema, err := load(basePath, &base)
	if err != nil {
		return nil, err
	}
	if err := wantSchema(basePath, schema, "wbist-bench-shard/v1"); err != nil {
		return nil, err
	}
	if schema, err = load(freshPath, &fresh); err != nil {
		return nil, err
	}
	if err := wantSchema(freshPath, schema, "wbist-bench-shard/v1"); err != nil {
		return nil, err
	}
	byName := map[string]shardCircuit{}
	for _, c := range base {
		byName[c.Circuit] = c
	}
	var rows []row
	matched := 0
	for _, f := range fresh {
		if len(f.Rows) == 0 {
			return nil, fmt.Errorf("%s: circuit %s has no proc rows", freshPath, f.Circuit)
		}
		// Cross-row invariance within the fresh measurement: every sharded
		// row must report the in-process row's deterministic counters.
		ip := f.Rows[0]
		for _, r := range f.Rows[1:] {
			label := fmt.Sprintf("procs=%d", r.Procs)
			rows = exact(rows, f.Circuit, label+".gate_evals (vs in-process)", ip.GateEvals, r.GateEvals)
			rows = exact(rows, f.Circuit, label+".vectors (vs in-process)", ip.Vectors, r.Vectors)
			rows = exact(rows, f.Circuit, label+".group_passes (vs in-process)", ip.GroupPasses, r.GroupPasses)
		}
		b, ok := byName[f.Circuit]
		if !ok {
			rows = append(rows, row{f.Circuit, "(not in baseline)", "-", "-", "info"})
			continue
		}
		matched++
		rows = exact(rows, f.Circuit, "faults", int64(b.Faults), int64(f.Faults))
		rows = exact(rows, f.Circuit, "groups", int64(b.Groups), int64(f.Groups))
		rows = exact(rows, f.Circuit, "detected", int64(b.Detected), int64(f.Detected))
		for _, r := range f.Rows {
			label := fmt.Sprintf("procs=%d", r.Procs)
			br, found := shardStats{}, false
			for _, cand := range b.Rows {
				if cand.Procs == r.Procs {
					br, found = cand, true
					break
				}
			}
			if !found {
				rows = append(rows, row{f.Circuit, label + " (not in baseline)", "-", "-", "info"})
				continue
			}
			rows = exact(rows, f.Circuit, label+".gate_evals", br.GateEvals, r.GateEvals)
			rows = exact(rows, f.Circuit, label+".ranges_dispatched", br.RangesDispatched, r.RangesDispatched)
			rows = info(rows, f.Circuit, label+".ranges_reassigned", br.RangesReassigned, r.RangesReassigned)
			rows = info(rows, f.Circuit, label+".workers_lost", br.WorkersLost, r.WorkersLost)
			rows = wall(rows, f.Circuit, label+".wall", br.WallNS, r.WallNS, tol)
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("no circuits of %s appear in %s", freshPath, basePath)
	}
	return rows, nil
}

// compareModel gates the per-fault-model kernel baseline. Each model's fault
// universe, detection count and dense gate-eval total are deterministic for a
// fixed seed, so they must match the baseline exactly; and within the fresh
// measurement alone the dense and event kernels must report the same vector
// count (bit-identical outcomes mean the all-detected early exit fires at the
// same time unit in both). The event kernel's raw gate_evals shift with
// warm-start state, so they are informational; wall-clock is advisory, as
// everywhere.
func compareModel(basePath, freshPath string, tol float64) ([]row, error) {
	var base, fresh []modelCircuit
	schema, err := load(basePath, &base)
	if err != nil {
		return nil, err
	}
	if err := wantSchema(basePath, schema, "wbist-bench-model/v1"); err != nil {
		return nil, err
	}
	if schema, err = load(freshPath, &fresh); err != nil {
		return nil, err
	}
	if err := wantSchema(freshPath, schema, "wbist-bench-model/v1"); err != nil {
		return nil, err
	}
	byName := map[string]modelCircuit{}
	for _, c := range base {
		byName[c.Circuit] = c
	}
	var rows []row
	matched := 0
	for _, f := range fresh {
		// Cross-kernel invariance within the fresh measurement, gated before
		// any baseline comparison.
		for _, m := range f.Models {
			rows = exact(rows, f.Circuit, m.Model+".vectors (event vs dense)",
				m.Dense.Vectors, m.Event.Vectors)
		}
		b, ok := byName[f.Circuit]
		if !ok {
			rows = append(rows, row{f.Circuit, "(not in baseline)", "-", "-", "info"})
			continue
		}
		matched++
		for _, m := range f.Models {
			bm, found := modelStats{}, false
			for _, cand := range b.Models {
				if cand.Model == m.Model {
					bm, found = cand, true
					break
				}
			}
			if !found {
				rows = append(rows, row{f.Circuit, m.Model + " (not in baseline)", "-", "-", "info"})
				continue
			}
			rows = exact(rows, f.Circuit, m.Model+".faults", int64(bm.Faults), int64(m.Faults))
			rows = exact(rows, f.Circuit, m.Model+".detected", int64(bm.Detected), int64(m.Detected))
			rows = exact(rows, f.Circuit, m.Model+".dense.gate_evals", bm.Dense.GateEvals, m.Dense.GateEvals)
			rows = exact(rows, f.Circuit, m.Model+".vectors", bm.Dense.Vectors, m.Dense.Vectors)
			rows = info(rows, f.Circuit, m.Model+".event.gate_evals", bm.Event.GateEvals, m.Event.GateEvals)
			rows = wall(rows, f.Circuit, m.Model+".dense.wall", bm.Dense.WallNS, m.Dense.WallNS, tol)
			rows = wall(rows, f.Circuit, m.Model+".event.wall", bm.Event.WallNS, m.Event.WallNS, tol)
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("no circuits of %s appear in %s", freshPath, basePath)
	}
	return rows, nil
}

// render prints the comparison table and returns the number of FAIL rows.
func render(w io.Writer, basePath, freshPath string, rows []row) int {
	fmt.Fprintf(w, "bench_compare: %s vs fresh %s\n", basePath, freshPath)
	failed := 0
	for _, r := range rows {
		marker := " "
		switch {
		case r.status == "FAIL":
			failed++
			marker = "!"
		case strings.HasPrefix(r.status, "slow"), strings.HasPrefix(r.status, "fast"):
			marker = "~"
		}
		fmt.Fprintf(w, "%s %-8s %-28s base=%-14s fresh=%-14s %s\n",
			marker, r.circuit, r.metric, r.base, r.fresh, r.status)
	}
	return failed
}

// appendMarkdown appends a GitHub job-summary table. Only rows a human
// should look at (failures and wall-clock outliers) are listed in full; ok
// rows are summarized by count.
func appendMarkdown(path, mode, basePath string, rows []row) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var b strings.Builder
	ok := 0
	var flagged []row
	for _, r := range rows {
		switch {
		case r.status == "FAIL",
			strings.HasPrefix(r.status, "slow"),
			strings.HasPrefix(r.status, "fast"):
			flagged = append(flagged, r)
		default:
			ok++
		}
	}
	fmt.Fprintf(&b, "### bench-check (%s) vs `%s`\n\n", mode, basePath)
	fmt.Fprintf(&b, "%d row(s) ok, %d flagged.\n\n", ok, len(flagged))
	if len(flagged) > 0 {
		fmt.Fprintf(&b, "| circuit | metric | baseline | fresh | status |\n")
		fmt.Fprintf(&b, "|---|---|---|---|---|\n")
		for _, r := range flagged {
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
				r.circuit, r.metric, r.base, r.fresh, r.status)
		}
		fmt.Fprintf(&b, "\n")
	}
	_, err = io.WriteString(f, b.String())
	return err
}
