// Benchmarks that regenerate every table and figure of the paper (see
// DESIGN.md for the experiment index). Each BenchmarkTableN_* target runs
// the code that produces the corresponding published table; the Ablation*
// targets measure the design choices called out in DESIGN.md; the Baseline*
// targets run the comparison methods.
//
// Heavy whole-pipeline benchmarks run the pipeline once per iteration
// without memoization (expt caching is bypassed via RunPipeline), so a
// default `go test -bench=.` executes each roughly once.
package wbist

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/lfsr"
	"repro/internal/obs"
	"repro/internal/scoap"
	"repro/internal/sim"
	"repro/internal/threeweight"
	"repro/internal/wgen"
)

// --- Table 1: the deterministic test sequence for s27 ---

func BenchmarkTable1_S27FaultSimulation(b *testing.B) {
	c := iscas.MustLoad("s27")
	seq, err := sim.ParseSequence(iscas.S27TestSequence)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := fsim.Run(c, seq, faults, fsim.Options{Init: X})
		if out.NumDetected != len(faults) {
			b.Fatalf("Table 1 sequence detected %d of %d", out.NumDetected, len(faults))
		}
	}
}

// --- Table 2: the weighted sequence of the Section 2 example ---

func BenchmarkTable2_WeightedSequenceGeneration(b *testing.B) {
	a := Assignment{Subs: []string{"01", "0", "100", "1"}}
	want := "0011"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := a.GenSequence(2000)
		if seq.Len() != 2000 {
			b.Fatal("wrong length")
		}
		got := ""
		for k := 0; k < 4; k++ {
			got += seq.At(0, k).String()
		}
		if got != want {
			b.Fatalf("first vector %s, want %s", got, want)
		}
	}
}

// --- Table 3: the shared weight FSM ---

func BenchmarkTable3_FSMSynthesis(b *testing.B) {
	subs := []string{"00010", "01011", "11001"}
	for i := 0; i < b.N; i++ {
		c, fsm, err := wgen.SynthesizeFSM("table3", subs)
		if err != nil {
			b.Fatal(err)
		}
		if fsm.StateBits != 3 {
			b.Fatal("wrong state bits")
		}
		// Verify one full period by simulation.
		s := sim.New(c, Zero)
		for u := 0; u < 5; u++ {
			out := s.Step([]Value{One})
			for k, alpha := range subs {
				if out[k].String() != string(alpha[u]) {
					b.Fatalf("t=%d z%d mismatch", u, k)
				}
			}
		}
	}
}

// --- Table 4: weight-set construction for s27 ---

func BenchmarkTable4_WeightSelection(b *testing.B) {
	c := iscas.MustLoad("s27")
	seq, _ := sim.ParseSequence(iscas.S27TestSequence)
	faults := fault.CollapsedUniverse(c)
	out := fsim.Run(c, seq, faults, fsim.Options{Init: X})
	var targets []Fault
	var detTime []int
	for i := range faults {
		if out.Detected[i] {
			targets = append(targets, faults[i])
			detTime = append(detTime, out.DetTime[i])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.Run(c, seq, targets, detTime, core.Options{LG: 100, Init: X, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if r.S.Len() == 0 {
			b.Fatal("empty weight set")
		}
	}
}

// --- Table 5: the sets A_i ---

func BenchmarkTable5_BuildAi(b *testing.B) {
	seq, _ := sim.ParseSequence(iscas.S27TestSequence)
	s := []string{"0", "1", "00", "10", "01", "11",
		"000", "100", "010", "110", "001", "101", "011", "111"}
	proj := make([][]Value, 4)
	for i := range proj {
		proj[i] = seq.Input(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 4; k++ {
			ai := core.BuildAi(s, proj[k], 9, 3)
			if len(ai) != 3 {
				b.Fatalf("A_%d has %d entries", k, len(ai))
			}
		}
	}
}

// --- Table 6: the main experimental results, one benchmark per circuit ---

func benchTable6(b *testing.B, name string) {
	b.Helper()
	c := iscas.MustLoad(name)
	init := expt.InitFor(name)
	cfg := Config{Seed: 1}
	if name == "s5378" {
		cfg.ATPGRandomLen = 1024
		cfg.ATPGNoCompaction = true
	}
	if name == "s35932" {
		cfg.ATPGRandomLen = 320
		cfg.LG = 400
		cfg.ATPGNoCompaction = true
		cfg.ATPGNoPodem = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := expt.RunPipeline(c, init, cfg)
		if err != nil {
			b.Fatal(err)
		}
		row := expt.Table6(r)
		if row.Coverage != 1.0 {
			b.Fatalf("%s: coverage %.3f", name, row.Coverage)
		}
		if i == 0 {
			b.ReportMetric(float64(row.Len), "T_len")
			b.ReportMetric(float64(row.Det), "det")
			b.ReportMetric(float64(row.Seq), "seqs")
			b.ReportMetric(float64(row.Subs), "subs")
			b.ReportMetric(float64(row.MaxLen), "maxlen")
			b.ReportMetric(float64(row.FSMs), "fsms")
			b.ReportMetric(float64(row.Outputs), "fsm_outs")
		}
	}
}

func BenchmarkTable6_s27(b *testing.B)   { benchTable6(b, "s27") }
func BenchmarkTable6_s208(b *testing.B)  { benchTable6(b, "s208") }
func BenchmarkTable6_s298(b *testing.B)  { benchTable6(b, "s298") }
func BenchmarkTable6_s344(b *testing.B)  { benchTable6(b, "s344") }
func BenchmarkTable6_s382(b *testing.B)  { benchTable6(b, "s382") }
func BenchmarkTable6_s386(b *testing.B)  { benchTable6(b, "s386") }
func BenchmarkTable6_s400(b *testing.B)  { benchTable6(b, "s400") }
func BenchmarkTable6_s420(b *testing.B)  { benchTable6(b, "s420") }
func BenchmarkTable6_s444(b *testing.B)  { benchTable6(b, "s444") }
func BenchmarkTable6_s526(b *testing.B)  { benchTable6(b, "s526") }
func BenchmarkTable6_s641(b *testing.B)  { benchTable6(b, "s641") }
func BenchmarkTable6_s820(b *testing.B)  { benchTable6(b, "s820") }
func BenchmarkTable6_s1196(b *testing.B) { benchTable6(b, "s1196") }
func BenchmarkTable6_s1423(b *testing.B) { benchTable6(b, "s1423") }
func BenchmarkTable6_s1488(b *testing.B) { benchTable6(b, "s1488") }

func BenchmarkTable6_s5378(b *testing.B) {
	if testing.Short() {
		b.Skip("large circuit; skipped in -short mode")
	}
	benchTable6(b, "s5378")
}

func BenchmarkTable6_s35932(b *testing.B) {
	if testing.Short() {
		b.Skip("large circuit; skipped in -short mode")
	}
	benchTable6(b, "s35932")
}

// --- Tables 7-16: observation point insertion, one benchmark per table ---

func benchObsTable(b *testing.B, name string) {
	b.Helper()
	// The pipeline run is shared setup (memoized); the benchmark measures
	// the Section 5 experiment itself.
	r, err := expt.RunCircuit(name, Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := obs.Experiment(r.Core)
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
		last := res.Rows[len(res.Rows)-1]
		if last.FE != 100 || last.Obs != 0 {
			b.Fatalf("%s: last row %+v", name, last)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Rows)), "rows")
			b.ReportMetric(res.Rows[0].FEObs, "fe_first_row")
		}
	}
}

func BenchmarkTable7_s208(b *testing.B)   { benchObsTable(b, "s208") }
func BenchmarkTable8_s298(b *testing.B)   { benchObsTable(b, "s298") }
func BenchmarkTable9_s344(b *testing.B)   { benchObsTable(b, "s344") }
func BenchmarkTable10_s386(b *testing.B)  { benchObsTable(b, "s386") }
func BenchmarkTable11_s400(b *testing.B)  { benchObsTable(b, "s400") }
func BenchmarkTable12_s420(b *testing.B)  { benchObsTable(b, "s420") }
func BenchmarkTable13_s526(b *testing.B)  { benchObsTable(b, "s526") }
func BenchmarkTable14_s641(b *testing.B)  { benchObsTable(b, "s641") }
func BenchmarkTable15_s1423(b *testing.B) { benchObsTable(b, "s1423") }

func BenchmarkTable16_s5378(b *testing.B) {
	if testing.Short() {
		b.Skip("large circuit; skipped in -short mode")
	}
	benchObsTable(b, "s5378")
}

// --- Figure 1: the synthesized test generator ---

func BenchmarkFigure1_GeneratorSynthesis(b *testing.B) {
	r, err := expt.RunCircuit("s298", Config{LG: 300, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := wgen.Synthesize("bench_gen", r.Compacted, r.Config.LG)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(g.NumGates), "gates")
			b.ReportMetric(float64(g.NumDFFs), "dffs")
		}
	}
}

func BenchmarkFigure1_GeneratorVerification(b *testing.B) {
	r, err := expt.RunCircuit("s298", Config{LG: 300, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	g, err := wgen.Synthesize("bench_gen", r.Compacted, r.Config.LG)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New(g.Circuit, Zero)
		for _, a := range r.Compacted {
			want := a.GenSequence(g.LG)
			for u := 0; u < g.LG; u++ {
				out := s.Step([]Value{One})
				for k := range out {
					if out[k] != want.At(u, k) {
						b.Fatal("generator mismatch")
					}
				}
			}
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

func benchAblation(b *testing.B, cfg Config) {
	b.Helper()
	c := iscas.MustLoad("s344")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := expt.RunPipeline(c, Zero, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			row := expt.Table6(r)
			b.ReportMetric(float64(row.Seq), "seqs")
			b.ReportMetric(float64(row.Subs), "subs")
			b.ReportMetric(100*row.Coverage, "coverage_pct")
			b.ReportMetric(float64(r.Core.SimulatedSequences), "cand_sims")
		}
	}
}

func BenchmarkAblationBase(b *testing.B) {
	benchAblation(b, Config{LG: 500, Seed: 1})
}

func BenchmarkAblationNoMatchOrdering(b *testing.B) {
	benchAblation(b, Config{LG: 500, Seed: 1, NoMatchOrdering: true})
}

func BenchmarkAblationNoForceFullLength(b *testing.B) {
	benchAblation(b, Config{LG: 500, Seed: 1, NoForceFullLength: true})
}

func BenchmarkAblationNoSampleFirst(b *testing.B) {
	benchAblation(b, Config{LG: 500, Seed: 1, NoSampleFirst: true})
}

func BenchmarkAblationReverseOrderSim(b *testing.B) {
	// Measures the Section 4.3 postprocessing alone and reports how many
	// assignments it removes.
	r, err := expt.RunCircuit("s344", Config{LG: 500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compacted := core.ReverseOrderCompact(r.Core)
		if i == 0 {
			b.ReportMetric(float64(len(r.Core.Omega)), "before")
			b.ReportMetric(float64(len(compacted)), "after")
		}
	}
}

func BenchmarkAblationRandomWindows(b *testing.B) {
	// The paper's future-work extension: two LFSR windows before weight
	// selection. The reported metrics show the subsequence count dropping
	// relative to BenchmarkAblationBase.
	benchAblation(b, Config{LG: 500, Seed: 1, RandomWindows: 2})
}

func benchAblationLG(b *testing.B, lg int) {
	b.Helper()
	benchAblation(b, Config{LG: lg, Seed: 1})
}

func BenchmarkAblationLG250(b *testing.B)  { benchAblationLG(b, 250) }
func BenchmarkAblationLG500(b *testing.B)  { benchAblationLG(b, 500) }
func BenchmarkAblationLG1000(b *testing.B) { benchAblationLG(b, 1000) }
func BenchmarkAblationLG2000(b *testing.B) { benchAblationLG(b, 2000) }

func BenchmarkAblationObsCoverGreedyVsSCOAP(b *testing.B) {
	// Compares the paper's greedy covering procedure against the SCOAP
	// hardest-to-observe ranking: same fault efficiency, more points.
	r, err := expt.RunCircuit("s344", Config{LG: 500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m := scoap.Analyze(r.Circuit, r.Init)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		greedy := obs.Experiment(r.Core)
		ranked := obs.ExperimentWithCover(r.Core, obs.NewRankedCover(m.CO))
		if i == 0 && len(greedy.Rows) > 0 && len(ranked.Rows) > 0 {
			b.ReportMetric(float64(greedy.Rows[0].Obs), "greedy_obs")
			b.ReportMetric(float64(ranked.Rows[0].Obs), "scoap_obs")
		}
	}
}

// --- Baselines ---

func BenchmarkBaselineLFSR(b *testing.B) {
	r, err := expt.RunCircuit("s344", Config{LG: 500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	budget := r.Config.LG * len(r.Compacted)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := lfsr.New(23, 0xBEEF)
		if err != nil {
			b.Fatal(err)
		}
		seq := src.Sequence(r.Circuit.NumInputs(), budget)
		out := fsim.Run(r.Circuit, seq, r.Targets, fsim.Options{Init: r.Init})
		if i == 0 {
			b.ReportMetric(100*float64(out.NumDetected)/float64(len(r.Targets)), "coverage_pct")
		}
	}
}

func BenchmarkBaselineThreeWeight(b *testing.B) {
	r, err := expt.RunCircuit("s344", Config{LG: 500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	budget := r.Config.LG * len(r.Compacted)
	as, err := threeweight.Derive(r.T, r.DetTimes, 8, len(r.Compacted))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := threeweight.Evaluate(r.Circuit, as, r.Targets, budget/len(as), r.Init, 0xACE1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*res.Coverage(len(r.Targets)), "coverage_pct")
		}
	}
}

func BenchmarkBaselineCrossoverHardCircuit(b *testing.B) {
	// The random-pattern-resistant cmphard circuit: the proposed method
	// reaches 100% of T's coverage by construction while LFSR testing with
	// the same budget misses the comparator cone (the crossover the paper's
	// introduction motivates).
	r, err := expt.RunCircuit(iscas.HardName, Config{LG: 500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	budget := r.Config.LG * len(r.Compacted)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := lfsr.New(23, 0xBEEF)
		if err != nil {
			b.Fatal(err)
		}
		seq := src.Sequence(r.Circuit.NumInputs(), budget)
		out := fsim.Run(r.Circuit, seq, r.Targets, fsim.Options{Init: r.Init})
		if i == 0 {
			prop := expt.Table6(r).Coverage
			lf := float64(out.NumDetected) / float64(len(r.Targets))
			b.ReportMetric(100*prop, "proposed_pct")
			b.ReportMetric(100*lf, "lfsr_pct")
			if prop <= lf {
				b.Fatalf("crossover vanished: proposed %.1f%% vs lfsr %.1f%%", 100*prop, 100*lf)
			}
		}
	}
}

// --- Kernel microbenchmarks (simulation throughput) ---

func BenchmarkKernelFaultSimulation_s1423(b *testing.B) {
	c := iscas.MustLoad("s1423")
	faults := fault.CollapsedUniverse(c)
	seq := Assignment{Subs: subsFor(c.NumInputs())}.GenSequence(500)
	s := fsim.New(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(seq, faults, fsim.Options{Init: Zero})
	}
	b.ReportMetric(float64(len(faults)), "faults")
}

// BenchmarkKernelFaultSimulationParallel_s1423 is the before/after entry for
// the parallel fault-group fan-out: the same run as the sequential kernel
// benchmark, sharded over GOMAXPROCS workers (bit-identical outcome). On a
// single-core runner it degenerates to the sequential path.
func BenchmarkKernelFaultSimulationParallel_s1423(b *testing.B) {
	c := iscas.MustLoad("s1423")
	faults := fault.CollapsedUniverse(c)
	seq := Assignment{Subs: subsFor(c.NumInputs())}.GenSequence(500)
	s := fsim.New(c)
	workers := runtime.GOMAXPROCS(0)
	b.ReportMetric(float64(workers), "workers")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(seq, faults, fsim.Options{Init: Zero, Workers: workers})
	}
	b.ReportMetric(float64(len(faults)), "faults")
}

func BenchmarkKernelLogicSimulation_s1423(b *testing.B) {
	c := iscas.MustLoad("s1423")
	seq := Assignment{Subs: subsFor(c.NumInputs())}.GenSequence(500)
	s := sim.New(c, Zero)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(seq)
	}
}

func subsFor(n int) []string {
	pool := []string{"01", "100", "1", "0", "110", "0010"}
	out := make([]string, n)
	for i := range out {
		out[i] = pool[i%len(pool)]
	}
	return out
}

var _ = fmt.Sprintf
