package sim

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// shiftRegister builds an n-bit shift register: in -> q0 -> q1 -> ... with
// the last stage as output (through a BUF so there is a PO gate).
func shiftRegister(t *testing.T, n int) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("shift")
	b.Input("in")
	prev := "in"
	for i := 0; i < n; i++ {
		name := "q" + string(rune('0'+i))
		b.DFF(name, prev)
		prev = name
	}
	b.Gate("out", circuit.Buf, prev)
	b.Output("out")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestShiftRegister(t *testing.T) {
	c := shiftRegister(t, 3)
	s := New(c, logic.Zero)
	seq, err := ParseSequence("1\n0\n1\n1\n0\n0\n0")
	if err != nil {
		t.Fatal(err)
	}
	out := s.Run(seq)
	// Output at time u is the input from u-3 (zeros before that).
	want := []logic.V{logic.Zero, logic.Zero, logic.Zero, logic.One, logic.Zero, logic.One, logic.One}
	for u := range want {
		if out[u][0] != want[u] {
			t.Errorf("t=%d: out=%v want %v", u, out[u][0], want[u])
		}
	}
}

func TestToggleFlipFlop(t *testing.T) {
	// q' = q XOR en; out = q.
	b := circuit.NewBuilder("toggle")
	b.Input("en")
	b.DFF("q", "d")
	b.Gate("d", circuit.Xor, "q", "en")
	b.Gate("out", circuit.Buf, "q")
	b.Output("out")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(c, logic.Zero)
	seq, _ := ParseSequence("1\n1\n0\n1")
	out := s.Run(seq)
	want := []logic.V{logic.Zero, logic.One, logic.Zero, logic.Zero}
	for u := range want {
		if out[u][0] != want[u] {
			t.Errorf("t=%d: out=%v want %v", u, out[u][0], want[u])
		}
	}
}

func TestXInitialStateResolves(t *testing.T) {
	// With X initial state, loading a known value through the D input must
	// resolve the state.
	c := shiftRegister(t, 2)
	s := New(c, logic.X)
	seq, _ := ParseSequence("1\n1\n1")
	out := s.Run(seq)
	if out[0][0] != logic.X || out[1][0] != logic.X {
		t.Errorf("outputs before fill should be X: %v %v", out[0][0], out[1][0])
	}
	if out[2][0] != logic.One {
		t.Errorf("t=2: out=%v want 1", out[2][0])
	}
}

func TestXPropagationThroughGates(t *testing.T) {
	// AND(X, 0) = 0 even with unknowns; OR(X, 1) = 1.
	b := circuit.NewBuilder("xprop")
	b.Input("a")
	b.DFF("q", "q2buf") // stays X forever if never driven binary
	b.Gate("q2buf", circuit.Buf, "q")
	b.Gate("and", circuit.And, "a", "q")
	b.Gate("or", circuit.Or, "a", "q")
	b.Output("and")
	b.Output("or")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(c, logic.X)
	out := s.Step([]logic.V{logic.Zero})
	if out[0] != logic.Zero {
		t.Errorf("AND(0,X) = %v, want 0", out[0])
	}
	if out[1] != logic.X {
		t.Errorf("OR(0,X) = %v, want X", out[1])
	}
	out = s.Step([]logic.V{logic.One})
	if out[0] != logic.X {
		t.Errorf("AND(1,X) = %v, want X", out[0])
	}
	if out[1] != logic.One {
		t.Errorf("OR(1,X) = %v, want 1", out[1])
	}
}

func TestEvalAllGateTypes(t *testing.T) {
	in2 := [][]logic.V{
		{logic.Zero, logic.Zero}, {logic.Zero, logic.One},
		{logic.One, logic.Zero}, {logic.One, logic.One},
	}
	type tc struct {
		t    circuit.GateType
		want [4]logic.V
	}
	cases := []tc{
		{circuit.And, [4]logic.V{0, 0, 0, 1}},
		{circuit.Nand, [4]logic.V{1, 1, 1, 0}},
		{circuit.Or, [4]logic.V{0, 1, 1, 1}},
		{circuit.Nor, [4]logic.V{1, 0, 0, 0}},
		{circuit.Xor, [4]logic.V{0, 1, 1, 0}},
		{circuit.Xnor, [4]logic.V{1, 0, 0, 1}},
	}
	for _, c := range cases {
		for k, in := range in2 {
			if got := Eval(c.t, in); got != c.want[k] {
				t.Errorf("%v%v = %v, want %v", c.t, in, got, c.want[k])
			}
		}
	}
	if Eval(circuit.Not, []logic.V{logic.Zero}) != logic.One {
		t.Error("NOT(0) != 1")
	}
	if Eval(circuit.Buf, []logic.V{logic.One}) != logic.One {
		t.Error("BUF(1) != 1")
	}
	// 3-input gates reduce left to right.
	if Eval(circuit.Xor, []logic.V{1, 1, 1}) != logic.One {
		t.Error("XOR(1,1,1) != 1")
	}
	if Eval(circuit.And, []logic.V{1, 1, 0}) != logic.Zero {
		t.Error("AND(1,1,0) != 0")
	}
}

func TestStateRoundTrip(t *testing.T) {
	c := shiftRegister(t, 3)
	s := New(c, logic.Zero)
	s.Step([]logic.V{logic.One})
	st := s.State()
	if len(st) != 3 {
		t.Fatalf("state length %d", len(st))
	}
	s2 := New(c, logic.Zero)
	s2.SetState(st)
	// Both simulators must now behave identically.
	for u := 0; u < 5; u++ {
		in := []logic.V{logic.FromBit(u%2 == 0)}
		a := s.Step(in)
		b := s2.Step(in)
		if a[0] != b[0] {
			t.Fatalf("t=%d: outputs diverge", u)
		}
	}
}

func TestSequenceHelpers(t *testing.T) {
	seq, err := ParseSequence("01\n10\nX1")
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 3 || seq.NumInputs != 2 {
		t.Fatalf("shape: %d x %d", seq.Len(), seq.NumInputs)
	}
	p := seq.Input(1)
	if p[0] != logic.One || p[1] != logic.Zero || p[2] != logic.One {
		t.Fatalf("projection: %v", p)
	}
	if seq.At(2, 0) != logic.X {
		t.Fatal("At(2,0) should be X")
	}
	cl := seq.Clone()
	cl.Vecs[0][0] = logic.One
	if seq.Vecs[0][0] != logic.Zero {
		t.Fatal("Clone is shallow")
	}
	sl := seq.Slice(1, 3)
	if sl.Len() != 2 || sl.At(0, 0) != logic.One {
		t.Fatal("Slice wrong")
	}
	cat := seq.Clone()
	cat.Concat(sl)
	if cat.Len() != 5 {
		t.Fatal("Concat wrong")
	}
	rt, err := ParseSequence(seq.String())
	if err != nil {
		t.Fatalf("String/Parse round trip: %v", err)
	}
	if rt.String() != seq.String() {
		t.Fatal("round trip changed sequence")
	}
}

func TestParseSequenceErrors(t *testing.T) {
	for _, text := range []string{"", "01\n012", "0a"} {
		if _, err := ParseSequence(text); err == nil {
			t.Errorf("ParseSequence(%q) accepted", text)
		}
	}
}

func TestRandomSequenceShape(t *testing.T) {
	// Deterministic via randutil; imported indirectly to keep this package's
	// dependencies minimal in tests.
	seq := RandomSequence(newTestRNG(), 5, 20)
	if seq.Len() != 20 || seq.NumInputs != 5 {
		t.Fatalf("shape %dx%d", seq.Len(), seq.NumInputs)
	}
	for _, vec := range seq.Vecs {
		for _, v := range vec {
			if !v.IsBinary() {
				t.Fatal("random sequence contains X")
			}
		}
	}
}

func TestStepPanicsOnWidthMismatch(t *testing.T) {
	c := shiftRegister(t, 1)
	s := New(c, logic.Zero)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Step([]logic.V{logic.Zero, logic.Zero})
}

func TestAppendPanicsOnWidthMismatch(t *testing.T) {
	s := NewSequence(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Append([]logic.V{logic.Zero})
}

func TestSetStatePanicsOnWidthMismatch(t *testing.T) {
	c := shiftRegister(t, 2)
	s := New(c, logic.Zero)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SetState([]logic.V{logic.Zero})
}

func TestRunResets(t *testing.T) {
	c := shiftRegister(t, 1)
	s := New(c, logic.Zero)
	one, _ := ParseSequence("1\n1")
	zero, _ := ParseSequence("0\n0")
	s.Run(one)
	out := s.Run(zero)
	if out[0][0] != logic.Zero {
		t.Fatal("Run did not reset state")
	}
}

func TestS27FormatRoundTripThroughStrings(t *testing.T) {
	text := "0111\n1001\n0111"
	seq, err := ParseSequence(text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.EqualFold(seq.String(), text) {
		t.Fatalf("round trip: %q vs %q", seq.String(), text)
	}
}
