package sim

import (
	"fmt"
	"strings"

	"repro/internal/logic"
	"repro/internal/randutil"
)

// Sequence is a test sequence for a circuit with a fixed number of primary
// inputs: Vecs[u][i] is the value applied to input i at time unit u.
type Sequence struct {
	NumInputs int
	Vecs      [][]logic.V
}

// NewSequence returns an empty sequence for n inputs.
func NewSequence(n int) *Sequence {
	return &Sequence{NumInputs: n}
}

// Len returns the number of time units.
func (s *Sequence) Len() int { return len(s.Vecs) }

// Append adds one vector (copied) to the end of the sequence.
func (s *Sequence) Append(vec []logic.V) {
	if len(vec) != s.NumInputs {
		panic(fmt.Sprintf("sim: Append vector of width %d to sequence of width %d", len(vec), s.NumInputs))
	}
	cp := make([]logic.V, len(vec))
	copy(cp, vec)
	s.Vecs = append(s.Vecs, cp)
}

// At returns the value of input i at time u.
func (s *Sequence) At(u, i int) logic.V { return s.Vecs[u][i] }

// Input returns the projection T_i of the sequence onto input i (the paper's
// notation): a slice of length Len.
func (s *Sequence) Input(i int) []logic.V {
	out := make([]logic.V, len(s.Vecs))
	for u := range s.Vecs {
		out[u] = s.Vecs[u][i]
	}
	return out
}

// Clone returns a deep copy.
func (s *Sequence) Clone() *Sequence {
	c := NewSequence(s.NumInputs)
	for _, v := range s.Vecs {
		c.Append(v)
	}
	return c
}

// Slice returns a deep copy of time units [lo, hi).
func (s *Sequence) Slice(lo, hi int) *Sequence {
	c := NewSequence(s.NumInputs)
	for u := lo; u < hi; u++ {
		c.Append(s.Vecs[u])
	}
	return c
}

// Concat appends a deep copy of o to s.
func (s *Sequence) Concat(o *Sequence) {
	if o.NumInputs != s.NumInputs {
		panic("sim: Concat width mismatch")
	}
	for _, v := range o.Vecs {
		s.Append(v)
	}
}

// String renders the sequence one vector per line, e.g. "0111\n1001".
func (s *Sequence) String() string {
	var b strings.Builder
	for u, vec := range s.Vecs {
		if u > 0 {
			b.WriteByte('\n')
		}
		for _, v := range vec {
			b.WriteString(v.String())
		}
	}
	return b.String()
}

// ParseSequence parses the String format: one vector of '0'/'1'/'X' per line.
func ParseSequence(text string) (*Sequence, error) {
	var s *Sequence
	for ln, line := range strings.Split(strings.TrimSpace(text), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if s == nil {
			s = NewSequence(len(line))
		}
		if len(line) != s.NumInputs {
			return nil, fmt.Errorf("sim: line %d has width %d, want %d", ln+1, len(line), s.NumInputs)
		}
		vec := make([]logic.V, len(line))
		for i := 0; i < len(line); i++ {
			v, ok := logic.FromByte(line[i])
			if !ok {
				return nil, fmt.Errorf("sim: line %d: bad character %q", ln+1, line[i])
			}
			vec[i] = v
		}
		s.Vecs = append(s.Vecs, vec)
	}
	if s == nil {
		return nil, fmt.Errorf("sim: empty sequence text")
	}
	return s, nil
}

// RandomSequence returns a sequence of length l of uniform random binary
// vectors for n inputs.
func RandomSequence(rng *randutil.RNG, n, l int) *Sequence {
	s := NewSequence(n)
	vec := make([]logic.V, n)
	for u := 0; u < l; u++ {
		for i := range vec {
			vec[i] = logic.FromBit(rng.Bool())
		}
		s.Append(vec)
	}
	return s
}
