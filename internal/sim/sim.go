// Package sim provides the scalar three-valued sequential logic simulator.
// It is the reference implementation: the bit-parallel fault simulator in
// package fsim is property-tested against it.
package sim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// Simulator performs cycle-based three-valued simulation of one machine.
type Simulator struct {
	c     *circuit.Circuit
	vals  []logic.V // current node values
	state []logic.V // DFF outputs (present state), parallel to c.DFFs
	init  logic.V
}

// New returns a simulator with all flip-flops initialised to init
// (logic.Zero models a global reset; logic.X models an unknown power-up
// state as in the raw ISCAS-89 benchmarks).
func New(c *circuit.Circuit, init logic.V) *Simulator {
	s := &Simulator{
		c:     c,
		vals:  make([]logic.V, len(c.Nodes)),
		state: make([]logic.V, len(c.DFFs)),
		init:  init,
	}
	s.Reset()
	return s
}

// Reset restores every flip-flop to the initial value.
func (s *Simulator) Reset() {
	for i := range s.state {
		s.state[i] = s.init
	}
}

// SetState overwrites the present state (one value per flip-flop).
func (s *Simulator) SetState(st []logic.V) {
	if len(st) != len(s.state) {
		panic(fmt.Sprintf("sim: SetState with %d values for %d flip-flops", len(st), len(s.state)))
	}
	copy(s.state, st)
}

// State returns a copy of the present state.
func (s *Simulator) State() []logic.V {
	out := make([]logic.V, len(s.state))
	copy(out, s.state)
	return out
}

// Value returns the value of node id computed by the last Step.
func (s *Simulator) Value(id circuit.NodeID) logic.V { return s.vals[id] }

// Eval evaluates a gate type over ternary fanin values.
func Eval(t circuit.GateType, in []logic.V) logic.V {
	switch t {
	case circuit.Buf:
		return in[0]
	case circuit.Not:
		return in[0].Not()
	case circuit.And, circuit.Nand:
		v := in[0]
		for _, x := range in[1:] {
			v = logic.And(v, x)
		}
		if t == circuit.Nand {
			v = v.Not()
		}
		return v
	case circuit.Or, circuit.Nor:
		v := in[0]
		for _, x := range in[1:] {
			v = logic.Or(v, x)
		}
		if t == circuit.Nor {
			v = v.Not()
		}
		return v
	case circuit.Xor, circuit.Xnor:
		v := in[0]
		for _, x := range in[1:] {
			v = logic.Xor(v, x)
		}
		if t == circuit.Xnor {
			v = v.Not()
		}
		return v
	default:
		panic(fmt.Sprintf("sim: Eval on non-gate type %v", t))
	}
}

// Step applies one input vector, evaluates the combinational network, clocks
// the flip-flops, and returns the primary-output values observed in this time
// unit (before the clock edge).
func (s *Simulator) Step(inputs []logic.V) []logic.V {
	c := s.c
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("sim: Step with %d inputs for circuit with %d", len(inputs), len(c.Inputs)))
	}
	for k, id := range c.Inputs {
		s.vals[id] = inputs[k]
	}
	for k, id := range c.DFFs {
		s.vals[id] = s.state[k]
	}
	var fan [8]logic.V
	for _, id := range c.Order {
		n := &c.Nodes[id]
		in := fan[:0]
		for _, f := range n.Fanins {
			in = append(in, s.vals[f])
		}
		s.vals[id] = Eval(n.Type, in)
	}
	outs := make([]logic.V, len(c.Outputs))
	for k, id := range c.Outputs {
		outs[k] = s.vals[id]
	}
	for k, id := range c.DFFs {
		s.state[k] = s.vals[c.Nodes[id].Fanins[0]]
	}
	return outs
}

// Run resets the simulator and applies the whole sequence, returning the
// primary-output response, one vector per time unit.
func (s *Simulator) Run(seq *Sequence) [][]logic.V {
	s.Reset()
	out := make([][]logic.V, seq.Len())
	for u := 0; u < seq.Len(); u++ {
		out[u] = s.Step(seq.Vecs[u])
	}
	return out
}
