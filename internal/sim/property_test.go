package sim_test

import (
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
)

// TestTernaryMonotonicity verifies the fundamental soundness property of
// 3-valued simulation: refining any X input to a binary value can change an
// output only where the 3-valued simulation already said X. In other words,
// every binary value the X-simulation produces is guaranteed correct for
// *all* refinements.
func TestTernaryMonotonicity(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := randutil.New(seed)
		inputs := 2 + rng.Intn(4)
		dffs := 1 + rng.Intn(4)
		p := iscas.Profile{
			Name:    "prop",
			Inputs:  inputs,
			Outputs: 1 + rng.Intn(3),
			DFFs:    dffs,
			// Keep the profile valid: the generator needs more gates than
			// sources plus its per-flip-flop state-mix gates.
			Gates:     2*(inputs+dffs) + 10 + rng.Intn(40),
			Seed:      rng.Uint64(),
			Synthetic: true,
		}
		c, err := iscas.Generate(p)
		if err != nil {
			t.Fatalf("profile %+v rejected: %v", p, err)
		}
		const l = 12
		// Base sequence with random X holes.
		base := sim.NewSequence(c.NumInputs())
		refined := sim.NewSequence(c.NumInputs())
		for u := 0; u < l; u++ {
			bv := make([]logic.V, c.NumInputs())
			rv := make([]logic.V, c.NumInputs())
			for i := range bv {
				bit := logic.FromBit(rng.Bool())
				rv[i] = bit
				if rng.Intn(3) == 0 {
					bv[i] = logic.X
				} else {
					bv[i] = bit
				}
			}
			base.Append(bv)
			refined.Append(rv)
		}
		sBase := sim.New(c, logic.X)
		sRef := sim.New(c, logic.Zero) // refined init too: 0 refines X
		outBase := sBase.Run(base)
		outRef := sRef.Run(refined)
		for u := 0; u < l; u++ {
			for k := range outBase[u] {
				if outBase[u][k].IsBinary() && outBase[u][k] != outRef[u][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSimulatorStateIsolation checks that two simulators over the same
// circuit never interfere.
func TestSimulatorStateIsolation(t *testing.T) {
	c := iscas.MustLoad("s27")
	a := sim.New(c, logic.Zero)
	b := sim.New(c, logic.Zero)
	rng := randutil.New(9)
	seqA := sim.RandomSequence(rng, c.NumInputs(), 30)
	seqB := sim.RandomSequence(rng, c.NumInputs(), 30)
	wantA := sim.New(c, logic.Zero).Run(seqA)
	wantB := sim.New(c, logic.Zero).Run(seqB)
	// Interleave.
	a.Reset()
	b.Reset()
	for u := 0; u < 30; u++ {
		oa := a.Step(seqA.Vecs[u])
		ob := b.Step(seqB.Vecs[u])
		for k := range oa {
			if oa[k] != wantA[u][k] || ob[k] != wantB[u][k] {
				t.Fatalf("interleaved simulators diverged at t=%d", u)
			}
		}
	}
}

// TestEvalPanicsOnSequentialTypes pins the contract that Eval is only for
// gates.
func TestEvalPanicsOnSequentialTypes(t *testing.T) {
	for _, bad := range []circuit.GateType{circuit.Input, circuit.DFF} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("sim.Eval(%v) did not panic", bad)
				}
			}()
			sim.Eval(bad, []logic.V{logic.Zero})
		}()
	}
}
