package sim

import "repro/internal/randutil"

func newTestRNG() *randutil.RNG { return randutil.New(1) }
