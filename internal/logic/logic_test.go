package logic

import (
	"testing"
	"testing/quick"
)

func TestVString(t *testing.T) {
	cases := []struct {
		v    V
		want string
	}{{Zero, "0"}, {One, "1"}, {X, "X"}, {V(7), "V(7)"}}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("V(%d).String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestFromBit(t *testing.T) {
	if FromBit(true) != One || FromBit(false) != Zero {
		t.Fatal("FromBit wrong")
	}
}

func TestFromByte(t *testing.T) {
	cases := []struct {
		c  byte
		v  V
		ok bool
	}{{'0', Zero, true}, {'1', One, true}, {'x', X, true}, {'X', X, true}, {'2', X, false}, {' ', X, false}}
	for _, c := range cases {
		v, ok := FromByte(c.c)
		if v != c.v || ok != c.ok {
			t.Errorf("FromByte(%q) = %v,%v want %v,%v", c.c, v, ok, c.v, c.ok)
		}
	}
}

func TestTernaryTables(t *testing.T) {
	vals := []V{Zero, One, X}
	// Truth tables written out explicitly, indexed [a][b].
	andTab := [3][3]V{
		{Zero, Zero, Zero},
		{Zero, One, X},
		{Zero, X, X},
	}
	orTab := [3][3]V{
		{Zero, One, X},
		{One, One, One},
		{X, One, X},
	}
	xorTab := [3][3]V{
		{Zero, One, X},
		{One, Zero, X},
		{X, X, X},
	}
	for _, a := range vals {
		for _, b := range vals {
			if got := And(a, b); got != andTab[a][b] {
				t.Errorf("And(%v,%v) = %v, want %v", a, b, got, andTab[a][b])
			}
			if got := Or(a, b); got != orTab[a][b] {
				t.Errorf("Or(%v,%v) = %v, want %v", a, b, got, orTab[a][b])
			}
			if got := Xor(a, b); got != xorTab[a][b] {
				t.Errorf("Xor(%v,%v) = %v, want %v", a, b, got, xorTab[a][b])
			}
		}
	}
	if Zero.Not() != One || One.Not() != Zero || X.Not() != X {
		t.Error("Not table wrong")
	}
}

func TestWordGetSet(t *testing.T) {
	w := AllX
	w = w.Set(0, One).Set(1, Zero).Set(63, One)
	if w.Get(0) != One || w.Get(1) != Zero || w.Get(2) != X || w.Get(63) != One {
		t.Fatalf("Get/Set round trip failed: %v", w)
	}
	if !w.Valid() {
		t.Fatal("word invalid after Set")
	}
	// Overwriting a slot must clear the old rail.
	w = w.Set(0, Zero)
	if w.Get(0) != Zero || !w.Valid() {
		t.Fatal("Set overwrite broke encoding")
	}
}

func TestBroadcast(t *testing.T) {
	for _, v := range []V{Zero, One, X} {
		w := Broadcast(v)
		for k := uint(0); k < 64; k += 13 {
			if w.Get(k) != v {
				t.Errorf("Broadcast(%v).Get(%d) = %v", v, k, w.Get(k))
			}
		}
	}
}

func TestForceMask(t *testing.T) {
	w := Broadcast(Zero)
	w = w.ForceMask(0b1010, true)
	if w.Get(1) != One || w.Get(3) != One || w.Get(0) != Zero {
		t.Fatalf("ForceMask true failed: %v", w)
	}
	w = w.ForceMask(0b0010, false)
	if w.Get(1) != Zero {
		t.Fatalf("ForceMask false failed: %v", w)
	}
	if !w.Valid() {
		t.Fatal("ForceMask produced invalid word")
	}
}

// word-level ops must agree with the scalar ternary ops in every slot.
func TestWordOpsAgreeWithScalar(t *testing.T) {
	f := func(az, ao, bz, bo uint64) bool {
		a := W{Zeros: az &^ ao, Ones: ao &^ az} // legalize
		b := W{Zeros: bz &^ bo, Ones: bo &^ bz}
		and := a.And(b)
		or := a.Or(b)
		xor := a.Xor(b)
		not := a.Not()
		for k := uint(0); k < 64; k++ {
			va, vb := a.Get(k), b.Get(k)
			if and.Get(k) != And(va, vb) {
				return false
			}
			if or.Get(k) != Or(va, vb) {
				return false
			}
			if xor.Get(k) != Xor(va, vb) {
				return false
			}
			if not.Get(k) != va.Not() {
				return false
			}
		}
		return and.Valid() && or.Valid() && xor.Valid() && not.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiffMask(t *testing.T) {
	// Reference slot 0 = 1, slot 1 = 0 (differs), slot 2 = X (not binary
	// difference), slot 3 = 1 (same).
	w := AllX.Set(0, One).Set(1, Zero).Set(3, One)
	if got := w.DiffMask(); got != 0b0010 {
		t.Fatalf("DiffMask = %b, want 0010", got)
	}
	// Reference 0.
	w = AllX.Set(0, Zero).Set(1, One).Set(2, Zero)
	if got := w.DiffMask(); got != 0b0010 {
		t.Fatalf("DiffMask = %b, want 0010", got)
	}
	// Reference X: no detections possible.
	w = AllX.Set(1, One).Set(2, Zero)
	if got := w.DiffMask(); got != 0 {
		t.Fatalf("DiffMask = %b, want 0", got)
	}
}

func TestDiffMaskProperty(t *testing.T) {
	f := func(az, ao uint64) bool {
		w := W{Zeros: az &^ ao, Ones: ao &^ az}
		mask := w.DiffMask()
		ref := w.Get(0)
		for k := uint(0); k < 64; k++ {
			bit := mask&(1<<k) != 0
			v := w.Get(k)
			want := ref.IsBinary() && v.IsBinary() && v != ref
			if bit != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordString(t *testing.T) {
	w := AllX.Set(0, One).Set(1, Zero)
	s := w.String()
	if len(s) != 64 || s[0] != '1' || s[1] != '0' || s[2] != 'X' {
		t.Fatalf("String() = %q", s)
	}
}

func TestEq(t *testing.T) {
	a := AllX.Set(5, One)
	b := AllX.Set(5, One)
	c := AllX.Set(5, Zero)
	if !a.Eq(b) || a.Eq(c) {
		t.Fatal("Eq wrong")
	}
}
