// Package logic provides the three-valued (0, 1, X) logic algebra used by
// every simulator in this repository, together with a bit-parallel dual-rail
// word representation that evaluates 64 machines (one fault-free machine plus
// up to 63 faulty machines) per gate evaluation.
package logic

import "fmt"

// V is a ternary logic value.
type V uint8

const (
	// Zero is logic 0.
	Zero V = iota
	// One is logic 1.
	One
	// X is the unknown value.
	X
)

// String returns "0", "1" or "X".
func (v V) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "X"
	default:
		return fmt.Sprintf("V(%d)", uint8(v))
	}
}

// FromBit converts a bool to Zero/One.
func FromBit(b bool) V {
	if b {
		return One
	}
	return Zero
}

// FromByte parses '0', '1', 'x' or 'X'. Any other byte yields X and ok=false.
func FromByte(c byte) (v V, ok bool) {
	switch c {
	case '0':
		return Zero, true
	case '1':
		return One, true
	case 'x', 'X':
		return X, true
	default:
		return X, false
	}
}

// IsBinary reports whether v is Zero or One.
func (v V) IsBinary() bool { return v == Zero || v == One }

// Not returns the ternary complement.
func (v V) Not() V {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	default:
		return X
	}
}

// And returns the ternary AND of a and b.
func And(a, b V) V {
	if a == Zero || b == Zero {
		return Zero
	}
	if a == One && b == One {
		return One
	}
	return X
}

// Or returns the ternary OR of a and b.
func Or(a, b V) V {
	if a == One || b == One {
		return One
	}
	if a == Zero && b == Zero {
		return Zero
	}
	return X
}

// Xor returns the ternary XOR of a and b.
func Xor(a, b V) V {
	if !a.IsBinary() || !b.IsBinary() {
		return X
	}
	if a != b {
		return One
	}
	return Zero
}

// W is a dual-rail word holding 64 ternary values. Slot k of a word is
// (bit k of Zeros, bit k of Ones):
//
//	(1,0) = logic 0,  (0,1) = logic 1,  (0,0) = X.
//
// (1,1) is illegal and never produced by the operations below when the
// operands are legal.
type W struct {
	Zeros uint64
	Ones  uint64
}

// AllZero is a word with logic 0 in every slot.
var AllZero = W{Zeros: ^uint64(0)}

// AllOne is a word with logic 1 in every slot.
var AllOne = W{Ones: ^uint64(0)}

// AllX is a word with X in every slot.
var AllX = W{}

// Broadcast returns a word with v in every slot.
func Broadcast(v V) W {
	switch v {
	case Zero:
		return AllZero
	case One:
		return AllOne
	default:
		return AllX
	}
}

// Get returns the value in slot k (0 ≤ k < 64).
func (w W) Get(k uint) V {
	m := uint64(1) << k
	switch {
	case w.Ones&m != 0:
		return One
	case w.Zeros&m != 0:
		return Zero
	default:
		return X
	}
}

// Set returns w with slot k replaced by v.
func (w W) Set(k uint, v V) W {
	m := uint64(1) << k
	w.Zeros &^= m
	w.Ones &^= m
	switch v {
	case Zero:
		w.Zeros |= m
	case One:
		w.Ones |= m
	}
	return w
}

// ForceMask forces the slots selected by mask to the binary value bit
// (false = 0, true = 1), leaving the other slots untouched. It is the fault
// injection primitive.
func (w W) ForceMask(mask uint64, bit bool) W {
	if bit {
		w.Ones |= mask
		w.Zeros &^= mask
	} else {
		w.Zeros |= mask
		w.Ones &^= mask
	}
	return w
}

// Eq reports whether the two words hold identical values in every slot.
func (w W) Eq(o W) bool { return w.Zeros == o.Zeros && w.Ones == o.Ones }

// Not returns the slot-wise complement.
func (w W) Not() W { return W{Zeros: w.Ones, Ones: w.Zeros} }

// And returns the slot-wise ternary AND.
func (w W) And(o W) W {
	return W{Zeros: w.Zeros | o.Zeros, Ones: w.Ones & o.Ones}
}

// Or returns the slot-wise ternary OR.
func (w W) Or(o W) W {
	return W{Zeros: w.Zeros & o.Zeros, Ones: w.Ones | o.Ones}
}

// Xor returns the slot-wise ternary XOR.
func (w W) Xor(o W) W {
	return W{
		Zeros: (w.Zeros & o.Zeros) | (w.Ones & o.Ones),
		Ones:  (w.Zeros & o.Ones) | (w.Ones & o.Zeros),
	}
}

// DiffMask returns the mask of slots whose value differs *binarily* from the
// value of slot 0: slot k is set iff both slot 0 and slot k are binary and
// unequal. This is the detection primitive of the fault simulator.
func (w W) DiffMask() uint64 {
	ref0 := w.Zeros & 1
	ref1 := w.Ones & 1
	switch {
	case ref1 != 0: // reference value is 1: detected where slot is 0
		return w.Zeros
	case ref0 != 0: // reference value is 0: detected where slot is 1
		return w.Ones
	default: // reference is X: nothing is binarily different
		return 0
	}
}

// Valid reports whether no slot has the illegal (1,1) encoding.
func (w W) Valid() bool { return w.Zeros&w.Ones == 0 }

// String renders the word as 64 characters, slot 0 first.
func (w W) String() string {
	buf := make([]byte, 64)
	for k := uint(0); k < 64; k++ {
		buf[k] = w.Get(k).String()[0]
	}
	return string(buf)
}
