package atpg

import "repro/internal/randutil"

func newRNG(seed uint64) *randutil.RNG { return randutil.New(seed) }
