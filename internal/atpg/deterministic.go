package atpg

import (
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/logic"
	"repro/internal/podem"
	"repro/internal/sim"
)

// deterministicPhase attacks still-undetected faults with bounded sequential
// PODEM searches. Every search continues from the exact good and faulty
// machine states produced by the current sequence (the faulty state comes
// from the bit-parallel simulator's SaveStates), so a found window is simply
// appended. Each success is independently verified by fault simulation
// before it is accepted.
func deterministicPhase(c *circuit.Circuit, s *fsim.Simulator, seq *sim.Sequence,
	remaining []fault.Fault, opts Options) (*sim.Sequence, []fault.Fault) {

	tried := make(map[fault.Fault]bool)
	budget := opts.PodemTargets
	for budget > 0 && len(remaining) > 0 && !ctxDone(opts.Ctx) {
		// End-of-sequence states: good machine via the scalar simulator,
		// faulty machines via a SaveStates pass (remaining faults are
		// undetected by seq, so the pass detects nothing).
		goodSim := sim.New(c, opts.Init)
		goodSim.Run(seq)
		goodState := goodSim.State()
		base := s.Run(seq, remaining, fsim.Options{Init: opts.Init, SaveStates: true, Workers: opts.Workers, Kernel: opts.Kernel, SlabLanes: opts.SlabLanes, Ctx: opts.Ctx})
		if base.Cancelled {
			break // partial FinalStates are unusable; caller discards the run
		}

		progressed := false
		for i, f := range remaining {
			if tried[f] || budget <= 0 {
				continue
			}
			tried[f] = true
			budget--
			faultyState := extractState(base.FinalStates, i, c.NumDFFs())
			res, err := podem.FindTest(c, f, goodState, faultyState, podem.Options{
				Frames: opts.PodemFrames,
			})
			if err != nil || !res.Found {
				continue
			}
			cand := seq.Clone()
			cand.Concat(res.Seq)
			// Independent verification before acceptance.
			verify := s.Run(cand, []fault.Fault{f}, fsim.Options{Init: opts.Init, Workers: opts.Workers, Kernel: opts.Kernel, SlabLanes: opts.SlabLanes, Ctx: opts.Ctx})
			if !verify.Detected[0] {
				continue
			}
			// Accept; drop everything the extension detects.
			out := s.Run(cand, remaining, fsim.Options{Init: opts.Init, Workers: opts.Workers, Kernel: opts.Kernel, SlabLanes: opts.SlabLanes, Ctx: opts.Ctx})
			seq = cand
			remaining = undetectedSubset(remaining, out)
			progressed = true
			break // states changed; recompute them
		}
		if !progressed {
			break
		}
	}
	return seq, remaining
}

// extractState reads fault i's final flip-flop state out of the grouped
// dual-rail words.
func extractState(finalStates [][]logic.W, i, numDFFs int) []logic.V {
	g := i / fsim.GroupSize
	slot := uint(i%fsim.GroupSize) + 1
	out := make([]logic.V, numDFFs)
	for k := 0; k < numDFFs; k++ {
		out[k] = finalStates[g][k].Get(slot)
	}
	return out
}
