package atpg

import (
	"testing"

	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/sim"
)

func TestGenerateS27FullCoverage(t *testing.T) {
	c := iscas.MustLoad("s27")
	r := Generate(c, Options{Seed: 1, Init: logic.X})
	if r.Coverage() < 1.0 {
		var missing int
		for _, d := range r.Detected {
			if !d {
				missing++
			}
		}
		t.Fatalf("s27 coverage %.3f (%d missing); expected full coverage", r.Coverage(), missing)
	}
	if r.Seq.Len() == 0 {
		t.Fatal("empty sequence")
	}
}

func TestResultConsistency(t *testing.T) {
	c := iscas.MustLoad("s298")
	r := Generate(c, Options{Seed: 2, Init: logic.Zero})
	// Re-simulating the returned sequence must reproduce the dictionary.
	out := fsim.Run(c, r.Seq, r.Faults, fsim.Options{Init: logic.Zero})
	for i := range r.Faults {
		if out.Detected[i] != r.Detected[i] {
			t.Fatalf("Detected[%d] inconsistent with re-simulation", i)
		}
		if out.DetTime[i] != r.DetTime[i] {
			t.Fatalf("DetTime[%d] inconsistent: %d vs %d", i, out.DetTime[i], r.DetTime[i])
		}
	}
	n := 0
	for _, d := range r.Detected {
		if d {
			n++
		}
	}
	if n != r.NumDetected {
		t.Fatalf("NumDetected %d but %d flags set", r.NumDetected, n)
	}
	if len(r.DetectedFaults()) != n {
		t.Fatal("DetectedFaults length mismatch")
	}
}

func TestGenerateReasonableCoverageSynthetic(t *testing.T) {
	for _, name := range []string{"s298", "s344", "s386"} {
		c := iscas.MustLoad(name)
		r := Generate(c, Options{Seed: 3, Init: logic.Zero})
		if r.Coverage() < 0.70 {
			t.Errorf("%s: coverage %.3f below 0.70; the synthetic suite should be mostly testable",
				name, r.Coverage())
		}
	}
}

func TestCompactionShortensOrKeeps(t *testing.T) {
	c := iscas.MustLoad("s298")
	long := Generate(c, Options{Seed: 4, Init: logic.Zero, NoCompaction: true})
	short := Generate(c, Options{Seed: 4, Init: logic.Zero})
	if short.Seq.Len() > long.Seq.Len() {
		t.Fatalf("compaction grew the sequence: %d > %d", short.Seq.Len(), long.Seq.Len())
	}
	if short.NumDetected < long.NumDetected {
		t.Fatalf("compaction lost coverage: %d < %d", short.NumDetected, long.NumDetected)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	c := iscas.MustLoad("s344")
	a := Generate(c, Options{Seed: 7, Init: logic.Zero})
	b := Generate(c, Options{Seed: 7, Init: logic.Zero})
	if a.Seq.String() != b.Seq.String() {
		t.Fatal("same seed produced different sequences")
	}
	if a.NumDetected != b.NumDetected {
		t.Fatal("same seed produced different coverage")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	c := iscas.MustLoad("s344")
	a := Generate(c, Options{Seed: 1, Init: logic.Zero})
	b := Generate(c, Options{Seed: 2, Init: logic.Zero})
	if a.Seq.String() == b.Seq.String() {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestWeightedRandomShape(t *testing.T) {
	seq := weightedRandom(newRNG(5), 7, 33)
	if seq.Len() != 33 || seq.NumInputs != 7 {
		t.Fatalf("shape %dx%d", seq.Len(), seq.NumInputs)
	}
	for _, vec := range seq.Vecs {
		for _, v := range vec {
			if !v.IsBinary() {
				t.Fatal("weighted random emitted X")
			}
		}
	}
}

func TestDetTimesAreFirstDetections(t *testing.T) {
	c := iscas.MustLoad("s27")
	r := Generate(c, Options{Seed: 9, Init: logic.X})
	for i := range r.Faults {
		if !r.Detected[i] {
			continue
		}
		// Truncating right before the detection time must leave the fault
		// undetected.
		if r.DetTime[i] == 0 {
			continue
		}
		pre := r.Seq.Slice(0, r.DetTime[i])
		out := fsim.Run(c, pre, r.Faults[i:i+1], fsim.Options{Init: logic.X})
		if out.Detected[0] {
			t.Fatalf("fault %s detected before recorded DetTime %d",
				r.Faults[i].String(c), r.DetTime[i])
		}
	}
}

func TestGenerateHandlesTinyCircuit(t *testing.T) {
	p := iscas.Profile{Name: "tiny", Inputs: 2, Outputs: 1, DFFs: 1, Gates: 5, Seed: 42, Synthetic: true}
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	r := Generate(c, Options{Seed: 1, Init: logic.Zero, RandomLen: 64})
	if r.Seq.Len() < 1 {
		t.Fatal("sequence too short")
	}
	_ = r.Coverage()
}

var _ = sim.NewSequence // keep import if helpers change
