// Package atpg generates deterministic test sequences for synchronous
// sequential circuits. It substitutes for the STRATEGATE [24] and SEQCOM [25]
// sequences used in the paper (see DESIGN.md): the weighted-BIST procedure
// only needs *a* deterministic sequence T with known per-fault detection
// times, whose coverage becomes the target coverage.
//
// The generator is fault-simulation based:
//
//  1. a long pseudo-random sequence is fault-simulated with fault dropping
//     and truncated after the last useful time unit;
//  2. remaining faults are attacked with weighted-random directed trials
//     appended to the sequence (random per-input bias, several restarts);
//  3. restoration-based static compaction removes blocks of vectors that do
//     not contribute to coverage (the paper's sequences are also statically
//     compacted).
package atpg

import (
	"context"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Options tune sequence generation. The zero value selects sensible defaults.
type Options struct {
	// Seed drives all pseudo-random choices.
	Seed uint64
	// Init is the initial flip-flop value (logic.Zero or logic.X).
	Init logic.V
	// RandomLen is the length of the phase-1 random sequence
	// (default max(256, 2×gates), capped at 4096).
	RandomLen int
	// Restarts is the number of directed weighted-random trials per round
	// (default 24).
	Restarts int
	// TrialLen is the length of one directed trial (default 48).
	TrialLen int
	// Rounds bounds the directed phase (default 6).
	Rounds int
	// MaxAccepts bounds the number of directed trials appended to the
	// sequence, keeping its length (and hence simulation cost) bounded
	// (default 10).
	MaxAccepts int
	// CompactionBlocks lists the block sizes tried during static compaction,
	// largest first (default {128, 64, 16}). Block sizes that would split the
	// sequence into more than 48 candidate deletions are skipped to bound the
	// number of re-simulations.
	CompactionBlocks []int
	// NoCompaction disables phase 3.
	NoCompaction bool
	// PodemTargets bounds how many still-undetected faults the deterministic
	// PODEM phase attacks (default 24; 0 keeps the default, use
	// NoDeterministicPhase to disable).
	PodemTargets int
	// PodemFrames is the time-frame window of each PODEM search (default 8).
	PodemFrames int
	// NoDeterministicPhase disables the PODEM phase.
	NoDeterministicPhase bool
	// Model selects the fault model whose collapsed universe the sequence
	// targets (nil = stuck-at). The random and directed phases work for any
	// model; the deterministic PODEM phase reasons about stuck-at activation
	// and propagation only, so it is skipped for other models. Phase-2
	// directed trials continue from saved flip-flop states, which for
	// transition faults loses the launch history at the trial boundary (see
	// fsim.Options.InitialStates) — acceptable for a search heuristic, and
	// the final reported coverage always comes from an unsplit rerun.
	Model fault.Model
	// Workers is the fault-simulation worker count handed to fsim (0 or 1 =
	// sequential). The generated sequence is bit-identical for any value.
	Workers int
	// Kernel selects the fsim gate-evaluation kernel (dense, event-driven or
	// slab; the zero value honors FSIM_KERNEL and defaults to event). The
	// generated sequence is bit-identical for every kernel.
	Kernel fsim.Kernel
	// SlabLanes is the slab kernel's fault-group batch width W (0 = pick
	// adaptively; ignored by the other kernels). The generated sequence is
	// bit-identical for any value.
	SlabLanes int
	// ShardProcs, when > 1, shards eligible fault-simulation runs over
	// that many worker subprocesses (internal/shard). Like Workers, it
	// leaves every result bit unchanged.
	ShardProcs int
	// Span, when non-nil, is the parent telemetry span under which the
	// generator records its phases ("atpg" with one child per phase).
	Span *telemetry.Span
	// Ctx, if non-nil, cancels generation: it is checked between phases and
	// between directed trials (and threaded into every fsim run, which stops
	// claiming fault groups). Generate has no error return, so a cancelled
	// run hands back whatever partial sequence it had — callers that care
	// (the pipeline) check ctx.Err() afterwards and discard the result.
	Ctx context.Context
}

func (o *Options) fill(c *circuit.Circuit) {
	if o.RandomLen == 0 {
		o.RandomLen = 2 * c.NumGates()
		if o.RandomLen < 256 {
			o.RandomLen = 256
		}
		if o.RandomLen > 4096 {
			o.RandomLen = 4096
		}
	}
	if o.Restarts == 0 {
		o.Restarts = 24
	}
	if o.TrialLen == 0 {
		o.TrialLen = 48
	}
	if o.Rounds == 0 {
		o.Rounds = 6
	}
	if o.MaxAccepts == 0 {
		o.MaxAccepts = 10
	}
	if len(o.CompactionBlocks) == 0 {
		o.CompactionBlocks = []int{128, 64, 16}
	}
	if o.PodemTargets == 0 {
		o.PodemTargets = 24
	}
	if o.PodemFrames == 0 {
		o.PodemFrames = 8
	}
}

// Result is a generated deterministic test sequence together with its fault
// dictionary.
type Result struct {
	// Seq is the final test sequence T.
	Seq *sim.Sequence
	// Faults is the collapsed fault universe of the circuit.
	Faults []fault.Fault
	// Detected[i] reports whether T detects Faults[i].
	Detected []bool
	// DetTime[i] is the first detection time of Faults[i] (-1 if undetected).
	DetTime []int
	// NumDetected is the count of detected faults.
	NumDetected int
}

// Coverage returns NumDetected / len(Faults).
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	return float64(r.NumDetected) / float64(len(r.Faults))
}

// DetectedFaults returns the detected subset of the fault list, in universe
// order.
func (r *Result) DetectedFaults() []fault.Fault {
	out := make([]fault.Fault, 0, r.NumDetected)
	for i, d := range r.Detected {
		if d {
			out = append(out, r.Faults[i])
		}
	}
	return out
}

// Generate produces a deterministic test sequence for c.
func Generate(c *circuit.Circuit, opts Options) *Result {
	opts.fill(c)
	span := opts.Span.Child("atpg")
	defer span.End()
	rng := randutil.New(opts.Seed)
	model := opts.Model
	if model == nil {
		model = fault.StuckAt{}
	}
	faults := fault.CollapsedUniverseFor(c, model)
	s := fsim.New(c)

	// Phase 1: one long random sequence, truncated after the last detection.
	p1 := span.Child("random")
	seq := sim.RandomSequence(rng, c.NumInputs(), opts.RandomLen)
	out := s.Run(seq, faults, fsim.Options{Init: opts.Init, Workers: opts.Workers, Kernel: opts.Kernel, SlabLanes: opts.SlabLanes, ShardProcs: opts.ShardProcs, Ctx: opts.Ctx})
	last := -1
	for i := range faults {
		if out.Detected[i] && out.DetTime[i] > last {
			last = out.DetTime[i]
		}
	}
	if last < 0 {
		// Nothing detected (degenerate circuit); keep a one-vector sequence.
		seq = seq.Slice(0, 1)
	} else {
		seq = seq.Slice(0, last+1)
	}
	p1.End()

	// Phase 2: directed weighted-random trials for the remaining faults.
	// The prefix sequence is simulated once per acceptance with state
	// saving; each trial then only pays for its own vectors, continued from
	// the saved per-group states.
	p2 := span.Child("directed")
	remaining := undetectedSubset(faults, rerun(s, seq, faults, opts))
	accepted := 0
	budget := opts.Rounds * opts.Restarts
	for len(remaining) > 0 && accepted < opts.MaxAccepts && budget > 0 && !ctxDone(opts.Ctx) {
		// The remaining faults are undetected by seq, so this pass detects
		// nothing and exists purely to capture the end-of-prefix states.
		base := s.Run(seq, remaining, fsim.Options{Init: opts.Init, SaveStates: true, Workers: opts.Workers, Kernel: opts.Kernel, SlabLanes: opts.SlabLanes, ShardProcs: opts.ShardProcs, Ctx: opts.Ctx})
		if base.Cancelled {
			break // partial FinalStates are unusable; caller discards the run
		}
		improved := false
		for ; budget > 0 && !ctxDone(opts.Ctx); budget-- {
			cand := weightedRandom(rng, c.NumInputs(), opts.TrialLen)
			// TimeOffset keeps the continued run's detection times on the
			// same axis as the full sequence (prefix + trial), should a
			// future consumer compare them with u_det(f).
			o := s.Run(cand, remaining, fsim.Options{
				InitialStates: base.FinalStates,
				TimeOffset:    seq.Len(),
				Workers:       opts.Workers,
				Kernel:        opts.Kernel,
				SlabLanes:     opts.SlabLanes,
				ShardProcs:    opts.ShardProcs,
			})
			if o.NumDetected > 0 {
				seq.Concat(cand)
				remaining = undetectedSubset(remaining, o)
				improved = true
				accepted++
				break // re-simulate the prefix with the new tail
			}
		}
		if !improved {
			break
		}
	}
	p2.End()

	// Phase 2.5: deterministic PODEM phase for the faults random search
	// missed. Each search continues from the good/faulty machine states at
	// the end of the current sequence, so found windows are appended. PODEM
	// reasons about stuck-at activation/propagation, so the phase only runs
	// under the stuck-at model.
	_, stuckAt := model.(fault.StuckAt)
	if !opts.NoDeterministicPhase && stuckAt && len(remaining) > 0 && !ctxDone(opts.Ctx) {
		p25 := span.Child("podem")
		seq, remaining = deterministicPhase(c, s, seq, remaining, opts)
		p25.End()
	}

	// Phase 3: restoration-based static compaction.
	if !opts.NoCompaction && !ctxDone(opts.Ctx) {
		p3 := span.Child("compaction")
		seq = compact(s, seq, faults, opts)
		p3.End()
	}

	final := rerun(s, seq, faults, opts)
	return &Result{
		Seq:         seq,
		Faults:      faults,
		Detected:    final.Detected,
		DetTime:     final.DetTime,
		NumDetected: final.NumDetected,
	}
}

func rerun(s *fsim.Simulator, seq *sim.Sequence, faults []fault.Fault, opts Options) *fsim.Outcome {
	return s.Run(seq, faults, fsim.Options{Init: opts.Init, Workers: opts.Workers, Kernel: opts.Kernel, SlabLanes: opts.SlabLanes, ShardProcs: opts.ShardProcs, Ctx: opts.Ctx})
}

// ctxDone reports whether a (possibly nil) context has been cancelled.
func ctxDone(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

func undetectedSubset(faults []fault.Fault, out *fsim.Outcome) []fault.Fault {
	var rem []fault.Fault
	for i := range faults {
		if !out.Detected[i] {
			rem = append(rem, faults[i])
		}
	}
	return rem
}

// weightedRandom returns a sequence whose inputs are biased with random
// per-input 1-probabilities drawn from {0.1, 0.25, 0.5, 0.75, 0.9}; holding
// inputs near constant values is what sequential circuits often need to
// traverse state space (the idea behind weighted-random sequential BIST).
func weightedRandom(rng *randutil.RNG, n, l int) *sim.Sequence {
	probs := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	bias := make([]float64, n)
	for i := range bias {
		bias[i] = probs[rng.Intn(len(probs))]
	}
	seq := sim.NewSequence(n)
	vec := make([]logic.V, n)
	for u := 0; u < l; u++ {
		for i := range vec {
			vec[i] = logic.FromBit(rng.Float64() < bias[i])
		}
		seq.Append(vec)
	}
	return seq
}

// compact removes blocks of vectors whose omission does not lose coverage.
// Blocks are tried back to front at each block size so that later deletions
// do not invalidate earlier decisions within a pass.
func compact(s *fsim.Simulator, seq *sim.Sequence, faults []fault.Fault, opts Options) *sim.Sequence {
	base := rerun(s, seq, faults, opts)
	// Only the detected faults need to stay detected; simulating the
	// undetected ones during compaction would be wasted effort.
	var targets []fault.Fault
	for i := range faults {
		if base.Detected[i] {
			targets = append(targets, faults[i])
		}
	}
	covers := func(cand *sim.Sequence) bool {
		o := rerun(s, cand, targets, opts)
		return o.NumDetected == len(targets)
	}
	for _, block := range opts.CompactionBlocks {
		if block <= 0 || seq.Len()/block > 48 {
			continue
		}
		for lo := (seq.Len() - 1) / block * block; lo >= 0; lo -= block {
			hi := lo + block
			if hi > seq.Len() {
				hi = seq.Len()
			}
			if hi-lo == seq.Len() {
				continue // never delete everything
			}
			cand := sim.NewSequence(seq.NumInputs)
			for u := 0; u < seq.Len(); u++ {
				if u < lo || u >= hi {
					cand.Append(seq.Vecs[u])
				}
			}
			if cand.Len() > 0 && covers(cand) {
				seq = cand
			}
		}
	}
	return seq
}
