package tables

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tb := New("Table X", "circuit", "len", "f.e.")
	tb.Add("s27", "10", "100.0")
	tb.Add("s298", "117", "99.6")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Table X") || !strings.Contains(out, "s298") {
		t.Fatalf("output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Numeric columns right-aligned: the "10" in row 1 should be preceded by
	// a space (width of "len" is 3).
	if !strings.Contains(lines[3], " 10") {
		t.Errorf("numeric right-alignment missing: %q", lines[3])
	}
}

func TestAddPanicsOnWidthMismatch(t *testing.T) {
	tb := New("", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.Add("only-one")
}

func TestFormatters(t *testing.T) {
	if Int(42) != "42" {
		t.Error("Int")
	}
	if F1(93.44) != "93.4" {
		t.Error("F1")
	}
	if F2(99.999) != "100.00" {
		t.Error("F2")
	}
	if Pct(0.5) != "50.0" {
		t.Error("Pct")
	}
}

func TestIsNumeric(t *testing.T) {
	if !isNumeric("3.14") || !isNumeric("10") || isNumeric("s27") || isNumeric("") {
		t.Fatal("isNumeric wrong")
	}
}

func TestRenderNoTitle(t *testing.T) {
	tb := New("", "x")
	tb.Add("1")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(b.String(), "\n") {
		t.Fatal("leading newline with empty title")
	}
}
