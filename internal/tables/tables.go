// Package tables renders fixed-width text tables for the experiment
// harness, in the visual style of the paper's result tables.
package tables

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple text table with a title, a header row and data rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; the cell count must match the header count.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("tables: row with %d cells for %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table, right-aligning numeric-looking cells.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if isNumeric(c) {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return true
	}
	return false
}

// Int formats an integer cell.
func Int(v int) string { return strconv.Itoa(v) }

// F1 formats a float with one decimal (the paper's fault-efficiency style).
func F1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// F2 formats a float with two decimals.
func F2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// Pct formats a ratio as a percentage with one decimal.
func Pct(v float64) string { return F1(100 * v) }
