package bench

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/randutil"
)

// TestParseNeverPanics feeds the parser random byte soup (seeded with
// format-ish fragments so it reaches deep paths) and requires it to either
// parse or return an error — never panic.
func TestParseNeverPanics(t *testing.T) {
	fragments := []string{
		"INPUT(", "OUTPUT(", ")", "=", "DFF", "AND", "NAND", "(", ",",
		"G1", "G2", "#", "\n", " ", "NOT", "a", "0",
	}
	prop := func(seed uint64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := randutil.New(seed)
		var b strings.Builder
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			b.WriteString(fragments[rng.Intn(len(fragments))])
		}
		_, _ = Parse("fuzz", strings.NewReader(b.String()))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseRawGarbageNeverPanics uses completely random strings.
func TestParseRawGarbageNeverPanics(t *testing.T) {
	prop := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse("fuzz", strings.NewReader(s))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripPropertyOnGeneratedCircuits: any circuit the suite generator
// produces must survive Write/Parse with identical structure.
func TestWriteOutputAlwaysReparses(t *testing.T) {
	// Names with only safe characters are guaranteed; this is the invariant
	// Write relies on.
	text := "INPUT(a)\nOUTPUT(z)\nq = DFF(g)\ng = XNOR(a, q)\nz = BUFF(g)\n"
	c, err := Parse("x", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse("x2", strings.NewReader(sb.String())); err != nil {
		t.Fatalf("rewrite did not reparse: %v\n%s", err, sb.String())
	}
}
