// Package bench reads and writes gate-level netlists in the ISCAS-89 .bench
// format:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G5 = DFF(G10)
//	G8 = AND(G14, G6)
//
// Gate names accepted (case-insensitive): DFF, BUF(F), NOT, AND, NAND, OR,
// NOR, XOR, XNOR.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/circuit"
)

// Parse reads a .bench netlist and builds a validated circuit named name.
func Parse(name string, r io.Reader) (*circuit.Circuit, error) {
	b := circuit.NewBuilder(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(b, line); err != nil {
			return nil, fmt.Errorf("bench %s line %d: %w", name, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench %s: %w", name, err)
	}
	return b.Build()
}

func parseLine(b *circuit.Builder, line string) error {
	upper := strings.ToUpper(line)
	switch {
	case strings.HasPrefix(upper, "INPUT(") || strings.HasPrefix(upper, "INPUT ("):
		arg, err := insideParens(line)
		if err != nil {
			return err
		}
		b.Input(arg)
		return nil
	case strings.HasPrefix(upper, "OUTPUT(") || strings.HasPrefix(upper, "OUTPUT ("):
		arg, err := insideParens(line)
		if err != nil {
			return err
		}
		b.Output(arg)
		return nil
	}
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return fmt.Errorf("malformed line %q", line)
	}
	target := strings.TrimSpace(line[:eq])
	if target == "" {
		return fmt.Errorf("missing target in %q", line)
	}
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	closeP := strings.LastIndexByte(rhs, ')')
	if open < 0 || closeP < open {
		return fmt.Errorf("malformed gate expression %q", rhs)
	}
	fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	if fn == "BUFF" {
		fn = "BUF"
	}
	var args []string
	for _, a := range strings.Split(rhs[open+1:closeP], ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return fmt.Errorf("empty fanin in %q", rhs)
		}
		args = append(args, a)
	}
	if fn == "DFF" {
		if len(args) != 1 {
			return fmt.Errorf("DFF %q needs 1 fanin, has %d", target, len(args))
		}
		b.DFF(target, args[0])
		return nil
	}
	t, ok := circuit.ParseGateType(fn)
	if !ok || !t.IsGate() {
		return fmt.Errorf("unknown gate function %q", fn)
	}
	b.Gate(target, t, args...)
	return nil
}

func insideParens(s string) (string, error) {
	open := strings.IndexByte(s, '(')
	closeP := strings.LastIndexByte(s, ')')
	if open < 0 || closeP < open {
		return "", fmt.Errorf("malformed declaration %q", s)
	}
	arg := strings.TrimSpace(s[open+1 : closeP])
	if arg == "" {
		return "", fmt.Errorf("empty name in %q", s)
	}
	return arg, nil
}

// Write serialises c in .bench format: inputs, outputs, flip-flops, then
// gates in topological order.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	s := c.Stats()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d D-type flipflops, %d gates\n",
		s.Inputs, s.Outputs, s.DFFs, s.Gates)
	for _, id := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Nodes[id].Name)
	}
	for _, id := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Nodes[id].Name)
	}
	fmt.Fprintln(bw)
	for _, id := range c.DFFs {
		n := &c.Nodes[id]
		fmt.Fprintf(bw, "%s = DFF(%s)\n", n.Name, c.Nodes[n.Fanins[0]].Name)
	}
	for _, id := range c.Order {
		n := &c.Nodes[id]
		names := make([]string, len(n.Fanins))
		for k, f := range n.Fanins {
			names[k] = c.Nodes[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", n.Name, n.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}
