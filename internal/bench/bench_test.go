package bench

import (
	"bytes"
	"strings"
	"testing"
)

const s27Text = `
# s27 test
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

func TestParseS27(t *testing.T) {
	c, err := Parse("s27", strings.NewReader(s27Text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s := c.Stats()
	if s.Inputs != 4 || s.Outputs != 1 || s.DFFs != 3 || s.Gates != 10 {
		t.Fatalf("stats: %+v", s)
	}
	g11, ok := c.Lookup("G11")
	if !ok {
		t.Fatal("G11 missing")
	}
	if len(c.Nodes[g11].Fanins) != 2 {
		t.Fatalf("G11 fanins: %v", c.Nodes[g11].Fanins)
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := Parse("s27", strings.NewReader(s27Text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatalf("Write: %v", err)
	}
	c2, err := Parse("s27rt", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-Parse: %v\n%s", err, buf.String())
	}
	s1, s2 := c.Stats(), c2.Stats()
	s1.Name, s2.Name = "", ""
	if s1 != s2 {
		t.Fatalf("round trip changed stats:\n%+v\n%+v", s1, s2)
	}
	// Structure must be identical node-for-node by name.
	for i := range c.Nodes {
		n := &c.Nodes[i]
		id2, ok := c2.Lookup(n.Name)
		if !ok {
			t.Fatalf("node %s lost in round trip", n.Name)
		}
		n2 := &c2.Nodes[id2]
		if n.Type != n2.Type || len(n.Fanins) != len(n2.Fanins) {
			t.Fatalf("node %s changed: %v/%d vs %v/%d", n.Name, n.Type, len(n.Fanins), n2.Type, len(n2.Fanins))
		}
		for k := range n.Fanins {
			if c.Nodes[n.Fanins[k]].Name != c2.Nodes[n2.Fanins[k]].Name {
				t.Fatalf("node %s fanin %d changed", n.Name, k)
			}
		}
	}
}

func TestParseBuffAlias(t *testing.T) {
	text := "INPUT(a)\nOUTPUT(b)\nb = BUFF(a)\n"
	c, err := Parse("buf", strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.NumGates() != 1 {
		t.Fatal("BUFF not parsed")
	}
}

func TestParseLowercaseAndSpacing(t *testing.T) {
	text := "input( a )\noutput( z )\n z  =  nand( a , a )\n"
	if _, err := Parse("lc", strings.NewReader(text)); err != nil {
		t.Fatalf("Parse: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"INPUT a\nOUTPUT(z)\nz = NOT(a)\n",    // malformed INPUT
		"INPUT(a)\nOUTPUT(z)\nz NOT(a)\n",     // missing '='
		"INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n",  // unknown function
		"INPUT(a)\nOUTPUT(z)\nz = NOT a\n",    // missing parens
		"INPUT(a)\nOUTPUT(z)\nz = DFF(a,a)\n", // DFF arity
		"INPUT(a)\nOUTPUT(z)\nz = AND(a,)\n",  // empty fanin
		"INPUT()\nOUTPUT(z)\nz = NOT(a)\n",    // empty name
		"INPUT(a)\nOUTPUT(z)\n = NOT(a)\n",    // empty target
	}
	for k, text := range cases {
		if _, err := Parse("bad", strings.NewReader(text)); err == nil {
			t.Errorf("case %d: expected parse error for %q", k, text)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	text := "# header\n\nINPUT(a) # trailing comment\nOUTPUT(z)\nz = NOT(a)\n#tail\n"
	c, err := Parse("c", strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.NumInputs() != 1 {
		t.Fatal("comment handling broke INPUT")
	}
}
