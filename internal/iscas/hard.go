package iscas

import (
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
)

// HardName is the name of the random-pattern-resistant circuit below.
const HardName = "cmphard"

// hardMagic is the 16-bit comparator constant of cmphard.
const hardMagic = 0xA5C3

// HardCircuit builds a deliberately random-pattern-resistant sequential
// circuit: a 16-bit equality comparator against the constant 0xA5C3 gates a
// 4-bit match counter, so every fault in the counter and deep comparator
// cone needs one-or-more exact matches (probability 2^-16 per random
// vector) to be excited. This is the classic structure that defeats
// pseudo-random BIST and motivates weighted schemes; the deterministic test
// sequence for it is constructed analytically by HardSequence, mirroring how
// the paper's deterministic ATPG sequences exercise random-resistant logic.
//
// Interface: 17 inputs (x0..x15, en), 6 outputs, 4 flip-flops, and a small
// pseudo-random side network so the fault list is not dominated by the
// comparator alone.
func HardCircuit() (*circuit.Circuit, error) {
	b := circuit.NewBuilder(HardName)
	for i := 0; i < 16; i++ {
		b.Input(name("x", i))
	}
	b.Input("en")

	// Comparator: lit_i = x_i or NOT x_i per the magic constant, AND-tree.
	for i := 0; i < 16; i++ {
		if hardMagic>>i&1 == 1 {
			b.Gate(name("lit", i), circuit.Buf, name("x", i))
		} else {
			b.Gate(name("lit", i), circuit.Not, name("x", i))
		}
	}
	for i := 0; i < 8; i++ {
		b.Gate(name("c1_", i), circuit.And, name("lit", 2*i), name("lit", 2*i+1))
	}
	for i := 0; i < 4; i++ {
		b.Gate(name("c2_", i), circuit.And, name("c1_", 2*i), name("c1_", 2*i+1))
	}
	b.Gate("c3_0", circuit.And, "c2_0", "c2_1")
	b.Gate("c3_1", circuit.And, "c2_2", "c2_3")
	b.Gate("match0", circuit.And, "c3_0", "c3_1")
	b.Gate("match", circuit.And, "match0", "en")

	// 4-bit match counter: ripple-carry increment gated by match.
	carry := "match"
	for i := 0; i < 4; i++ {
		q := name("q", i)
		b.DFF(q, name("d", i))
		b.Gate(name("d", i), circuit.Xor, q, carry)
		if i < 3 {
			nc := name("cy", i)
			b.Gate(nc, circuit.And, carry, q)
			carry = nc
		}
	}

	// Side network: keeps non-comparator faults plentiful and observable.
	b.Gate("s0", circuit.Xor, "x0", "x5")
	b.Gate("s1", circuit.Nand, "x9", "x12")
	b.Gate("s2", circuit.Nor, "s0", "x3")
	b.Gate("s3", circuit.Xor, "s1", "s2")
	b.Gate("s4", circuit.And, "s3", "en")

	// Outputs: counter bits (via buffers), the match line, the side network.
	for i := 0; i < 4; i++ {
		b.Gate(name("po_q", i), circuit.Buf, name("q", i))
		b.Output(name("po_q", i))
	}
	b.Gate("po_match", circuit.Buf, "match")
	b.Output("po_match")
	b.Output("s4")
	return b.Build()
}

// HardSequence constructs the deterministic test sequence for HardCircuit
// analytically: pseudo-random filler vectors interleaved with exact-match
// vectors (the magic constant with en=1), enough matches to step the counter
// through all 16 states and back. It plays the role of the paper's
// deterministic ATPG sequence, which finds exactly such magic values by
// branch-and-bound search.
func HardSequence(seed uint64) *sim.Sequence {
	rng := randutil.New(seed)
	seq := sim.NewSequence(17)
	vec := make([]logic.V, 17)
	appendRandom := func(n int) {
		for k := 0; k < n; k++ {
			for i := range vec {
				vec[i] = logic.FromBit(rng.Bool())
			}
			// Avoid accidental matches so detection times stay attributable
			// to the planted vectors: flip one magic bit.
			if isMagic(vec) {
				vec[0] = vec[0].Not()
			}
			seq.Append(vec)
		}
	}
	appendMatch := func() {
		for i := 0; i < 16; i++ {
			vec[i] = logic.FromBit(hardMagic>>i&1 == 1)
		}
		vec[16] = logic.One
		seq.Append(vec)
	}
	appendRandom(4)
	// 18 matches walk the counter through a full wrap plus two steps.
	for m := 0; m < 18; m++ {
		appendMatch()
		appendRandom(3)
	}
	return seq
}

func isMagic(vec []logic.V) bool {
	for i := 0; i < 16; i++ {
		want := logic.FromBit(hardMagic>>i&1 == 1)
		if vec[i] != want {
			return false
		}
	}
	return vec[16] == logic.One
}

func name(prefix string, i int) string {
	buf := []byte(prefix)
	if i >= 10 {
		buf = append(buf, byte('0'+i/10))
	}
	buf = append(buf, byte('0'+i%10))
	return string(buf)
}
