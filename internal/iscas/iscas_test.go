package iscas

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/randutil"
	"repro/internal/sim"
)

func TestLoadS27Exact(t *testing.T) {
	c, err := Load("s27")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	s := c.Stats()
	if s.Inputs != 4 || s.Outputs != 1 || s.DFFs != 3 || s.Gates != 10 {
		t.Fatalf("s27 stats wrong: %+v", s)
	}
	// Spot-check the published structure.
	g11, ok := c.Lookup("G11")
	if !ok || c.Nodes[g11].Type != circuit.Nor {
		t.Fatal("G11 must be a NOR")
	}
	g17, _ := c.Lookup("G17")
	if c.Nodes[g17].Type != circuit.Not || !c.IsPO(g17) {
		t.Fatal("G17 must be the NOT primary output")
	}
}

func TestS27TestSequenceParses(t *testing.T) {
	seq, err := sim.ParseSequence(S27TestSequence)
	if err != nil {
		t.Fatalf("ParseSequence: %v", err)
	}
	if seq.Len() != 10 || seq.NumInputs != 4 {
		t.Fatalf("Table 1 sequence is %dx%d, want 10x4", seq.Len(), seq.NumInputs)
	}
	// Table 1 row u=4 is 0100.
	want := "0100"
	for i := 0; i < 4; i++ {
		if seq.At(4, i).String() != string(want[i]) {
			t.Fatalf("T(4) mismatch at input %d", i)
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("s9000"); err == nil {
		t.Fatal("expected error for unknown circuit")
	}
}

func TestProfilesMatchGeneratedSizes(t *testing.T) {
	for _, name := range Names() {
		p, _ := LookupProfile(name)
		if p.Gates > 3000 && testing.Short() {
			continue
		}
		c, err := Load(name)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		s := c.Stats()
		if s.Inputs != p.Inputs || s.DFFs != p.DFFs || s.Gates != p.Gates {
			t.Errorf("%s: got %d/%d/%d PI/FF/gates, want %d/%d/%d",
				name, s.Inputs, s.DFFs, s.Gates, p.Inputs, p.DFFs, p.Gates)
		}
		if s.Outputs < p.Outputs {
			t.Errorf("%s: got %d POs, want at least %d", name, s.Outputs, p.Outputs)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := LookupProfile("s298")
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("node counts differ across runs")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Name != b.Nodes[i].Name || a.Nodes[i].Type != b.Nodes[i].Type ||
			len(a.Nodes[i].Fanins) != len(b.Nodes[i].Fanins) {
			t.Fatalf("node %d differs across runs", i)
		}
	}
}

func TestGenerateNoDanglingLogic(t *testing.T) {
	for _, name := range []string{"s298", "s641", "s1423"} {
		c := MustLoad(name)
		for i := range c.Nodes {
			n := &c.Nodes[i]
			if n.Type.IsGate() && len(n.Fanouts) == 0 && !c.IsPO(circuit.NodeID(i)) {
				t.Errorf("%s: gate %s drives nothing", name, n.Name)
			}
			if n.Type == circuit.Input && len(n.Fanouts) == 0 {
				t.Errorf("%s: input %s unused", name, n.Name)
			}
			if n.Type == circuit.DFF && len(n.Fanouts) == 0 {
				t.Errorf("%s: flip-flop %s output unused", name, n.Name)
			}
		}
	}
}

func TestGenerateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{Name: "b1", Inputs: 0, Outputs: 1, Gates: 10},
		{Name: "b2", Inputs: 2, Outputs: 0, Gates: 10},
		{Name: "b3", Inputs: 8, Outputs: 1, DFFs: 8, Gates: 10},
		{Name: "b4", Inputs: 2, Outputs: 20, Gates: 10},
	}
	for _, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("profile %q accepted", p.Name)
		}
	}
}

func TestTableNameLists(t *testing.T) {
	if len(Table6Names()) != 16 {
		t.Fatalf("Table 6 should list 16 circuits, got %d", len(Table6Names()))
	}
	if len(ObsTableNames()) != 10 {
		t.Fatalf("Tables 7-16 should list 10 circuits, got %d", len(ObsTableNames()))
	}
	for _, n := range ObsTableNames() {
		if _, ok := LookupProfile(n); !ok {
			t.Errorf("obs table circuit %s missing from suite", n)
		}
	}
}

func TestGeneratedCircuitIsSimulable(t *testing.T) {
	c := MustLoad("s344")
	s := sim.New(c, 0)
	seq, err := sim.ParseSequence("000000000")
	if err != nil {
		t.Fatal(err)
	}
	out := s.Run(seq)
	if len(out) != 1 || len(out[0]) != c.NumOutputs() {
		t.Fatalf("simulation output shape wrong: %v", out)
	}
}

func TestHardCircuitBuilds(t *testing.T) {
	c, err := HardCircuit()
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Inputs != 17 || st.DFFs != 4 || st.Outputs != 6 {
		t.Fatalf("cmphard interface: %+v", st)
	}
	if _, err := Load(HardName); err != nil {
		t.Fatalf("Load(cmphard): %v", err)
	}
}

func TestHardSequenceStepsCounter(t *testing.T) {
	c, err := HardCircuit()
	if err != nil {
		t.Fatal(err)
	}
	seq := HardSequence(7)
	s := sim.New(c, 0)
	out := s.Run(seq)
	// po_q3 (output index 3) must go high at some point: the counter reached
	// 8+, which needs 8 exact matches — impossible for random vectors,
	// guaranteed by the planted ones.
	seen := false
	for u := range out {
		if out[u][3] == 1 {
			seen = true
			break
		}
	}
	if !seen {
		t.Fatal("match counter never reached bit 3; planted matches broken")
	}
	// And po_match (index 4) pulses exactly 18 times.
	pulses := 0
	for u := range out {
		if out[u][4] == 1 {
			pulses++
		}
	}
	if pulses != 18 {
		t.Fatalf("match pulses = %d, want 18", pulses)
	}
}

func TestHardCircuitIsRandomResistant(t *testing.T) {
	// Thousands of random vectors must not pulse the match line.
	c, err := HardCircuit()
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(c, 0)
	rng := randutil.New(99)
	seq := sim.RandomSequence(rng, c.NumInputs(), 4000)
	out := s.Run(seq)
	for u := range out {
		if out[u][4] == 1 {
			t.Fatalf("random vector matched at t=%d (p = 2^-17 per vector)", u)
		}
	}
}
