// Package iscas provides the circuit suite used by the experiments.
//
// The s27 benchmark is reproduced exactly from the published ISCAS-89
// netlist (it is the worked example in Section 2 of the paper). The larger
// ISCAS-89 circuits are not redistributable inside this repository, so for
// every other circuit in the paper's tables this package generates a
// synthetic synchronous sequential circuit with the same primary-input /
// primary-output / flip-flop / gate-count profile, deterministically from a
// fixed seed (see DESIGN.md, "Substitutions"). All algorithms under test
// consume only the netlist, so they exercise identical code paths.
package iscas

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/circuit"
)

// S27Bench is the exact ISCAS-89 s27 netlist.
const S27Bench = `# s27
# 4 inputs, 1 output, 3 D-type flipflops, 10 gates
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

// S27TestSequence is the deterministic test sequence of Table 1 of the paper
// (inputs in the order G0, G1, G2, G3).
const S27TestSequence = `0111
1001
0111
1001
0100
1011
1001
0000
0000
1011`

// Profile describes the interface and size of a circuit in the suite.
type Profile struct {
	Name    string
	Inputs  int
	Outputs int
	DFFs    int
	Gates   int
	Seed    uint64
	// Synthetic is false only for circuits embedded verbatim (s27).
	Synthetic bool
}

// profiles lists the circuits of the paper's Table 6 in table order, with
// interface sizes matching the corresponding ISCAS-89 circuits.
var profiles = []Profile{
	{Name: "s27", Inputs: 4, Outputs: 1, DFFs: 3, Gates: 10, Synthetic: false},
	{Name: "s208", Inputs: 10, Outputs: 1, DFFs: 8, Gates: 104, Seed: 10208, Synthetic: true},
	{Name: "s298", Inputs: 3, Outputs: 6, DFFs: 14, Gates: 119, Seed: 10298, Synthetic: true},
	{Name: "s344", Inputs: 9, Outputs: 11, DFFs: 15, Gates: 160, Seed: 10344, Synthetic: true},
	{Name: "s382", Inputs: 3, Outputs: 6, DFFs: 21, Gates: 158, Seed: 10382, Synthetic: true},
	{Name: "s386", Inputs: 7, Outputs: 7, DFFs: 6, Gates: 159, Seed: 10386, Synthetic: true},
	{Name: "s400", Inputs: 3, Outputs: 6, DFFs: 21, Gates: 162, Seed: 10400, Synthetic: true},
	{Name: "s420", Inputs: 18, Outputs: 1, DFFs: 16, Gates: 218, Seed: 10420, Synthetic: true},
	{Name: "s444", Inputs: 3, Outputs: 6, DFFs: 21, Gates: 181, Seed: 10444, Synthetic: true},
	{Name: "s526", Inputs: 3, Outputs: 6, DFFs: 21, Gates: 193, Seed: 10526, Synthetic: true},
	{Name: "s641", Inputs: 35, Outputs: 24, DFFs: 19, Gates: 379, Seed: 10641, Synthetic: true},
	{Name: "s820", Inputs: 18, Outputs: 19, DFFs: 5, Gates: 289, Seed: 10820, Synthetic: true},
	{Name: "s1196", Inputs: 14, Outputs: 14, DFFs: 18, Gates: 529, Seed: 11196, Synthetic: true},
	{Name: "s1423", Inputs: 17, Outputs: 5, DFFs: 74, Gates: 657, Seed: 11423, Synthetic: true},
	{Name: "s1488", Inputs: 8, Outputs: 19, DFFs: 6, Gates: 653, Seed: 11488, Synthetic: true},
	{Name: "s5378", Inputs: 35, Outputs: 49, DFFs: 179, Gates: 2779, Seed: 15378, Synthetic: true},
	{Name: "s35932", Inputs: 35, Outputs: 320, DFFs: 1728, Gates: 16065, Seed: 35932, Synthetic: true},
}

// Names returns the suite circuit names in the paper's table order.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// Table6Names returns the circuits reported in Table 6 (everything but s27).
func Table6Names() []string { return Names()[1:] }

// ObsTableNames returns the circuits of Tables 7-16, in table order.
func ObsTableNames() []string {
	return []string{"s208", "s298", "s344", "s386", "s400", "s420", "s526", "s641", "s1423", "s5378"}
}

// LookupProfile returns the profile for a suite circuit.
func LookupProfile(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Load builds a suite circuit by name.
func Load(name string) (*circuit.Circuit, error) {
	if name == HardName {
		return HardCircuit()
	}
	p, ok := LookupProfile(name)
	if !ok {
		names := Names()
		sort.Strings(names)
		return nil, fmt.Errorf("iscas: unknown circuit %q (have %s)", name, strings.Join(names, ", "))
	}
	if !p.Synthetic {
		return bench.Parse(p.Name, strings.NewReader(S27Bench))
	}
	return Generate(p)
}

// MustLoad is Load, panicking on error; the suite is static so failure is a
// programming error.
func MustLoad(name string) *circuit.Circuit {
	c, err := Load(name)
	if err != nil {
		panic(err)
	}
	return c
}
