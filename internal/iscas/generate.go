package iscas

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/randutil"
)

// Generate builds a synthetic synchronous sequential circuit matching the
// profile, deterministically from p.Seed. The construction aims for circuits
// that behave like synthesized control/datapath logic rather than random
// noise:
//
//   - gates draw fanins from nearby, earlier gates (locality bias) with a
//     fraction coming straight from primary inputs and flip-flop outputs, so
//     cones reconverge and depth grows slowly;
//   - every primary input and flip-flop output feeds at least one gate;
//   - every gate drives at least one gate, flip-flop or primary output (no
//     dangling logic);
//   - flip-flop next-state functions are taken from the deeper half of the
//     network, so state feedback loops span real logic.
func Generate(p Profile) (*circuit.Circuit, error) {
	if p.Inputs < 1 || p.Outputs < 1 || p.Gates < 2 {
		return nil, fmt.Errorf("iscas: profile %q too small (%d in, %d out, %d gates)",
			p.Name, p.Inputs, p.Outputs, p.Gates)
	}
	if p.Gates < p.Inputs+p.DFFs {
		return nil, fmt.Errorf("iscas: profile %q has fewer gates (%d) than sources (%d)",
			p.Name, p.Gates, p.Inputs+p.DFFs)
	}
	if p.Outputs > p.Gates {
		return nil, fmt.Errorf("iscas: profile %q has more outputs (%d) than gates (%d)",
			p.Name, p.Outputs, p.Gates)
	}
	rng := randutil.New(p.Seed)

	nSrc := p.Inputs + p.DFFs
	srcName := func(k int) string {
		if k < p.Inputs {
			return fmt.Sprintf("I%d", k)
		}
		return fmt.Sprintf("F%d", k-p.Inputs)
	}
	gateName := func(k int) string { return fmt.Sprintf("N%d", k) }

	type gate struct {
		typ    circuit.GateType
		fanins []string
	}
	gates := make([]gate, p.Gates)
	// consumers[g] counts how many sinks gate g drives.
	consumers := make([]int, p.Gates)

	// pickGateFanin picks an earlier gate with a locality bias toward recent
	// gates (geometric-ish window).
	pickGateFanin := func(k int) int {
		// Window of the previous gates, biased toward the closest quarter.
		span := k
		if span > 48 {
			span = 48 + rng.Intn(k-47) // occasionally reach far back
		}
		d := 1 + rng.Intn(span)
		return k - d
	}

	// The gate-type mix is XOR-rich: networks dominated by NAND/NOR drift
	// toward constant signals under random stimulus (signal probabilities
	// converge to 0/1 with depth), which makes most faults untestable. XOR
	// gates preserve signal entropy and never mask fault effects, keeping the
	// synthetic circuits as random-pattern-testable as the ISCAS-89 suite.
	binaryTypes := []circuit.GateType{
		circuit.Nand, circuit.Nand, circuit.Nor, circuit.Nor,
		circuit.And, circuit.Or,
		circuit.Xor, circuit.Xor, circuit.Xor, circuit.Xnor,
	}

	// The last p.DFFs gates are reserved as "state-mix" gates: gate
	// Gates-DFFs+k is an XOR that combines a deep logic signal with the next
	// flip-flop's output and drives flip-flop k's D input. The flip-flops
	// therefore form a twisted ring with nonlinear injection — the shape of
	// real control logic (counters, LFSRs, shifted state) — which keeps the
	// state space active instead of collapsing to a fixed point.
	mixBase := p.Gates - p.DFFs
	if mixBase <= nSrc {
		return nil, fmt.Errorf("iscas: profile %q too dense: %d gates for %d sources + %d mix gates",
			p.Name, p.Gates, nSrc, p.DFFs)
	}

	for k := 0; k < p.Gates; k++ {
		if k >= mixBase {
			ff := k - mixBase
			deep := mixBase/2 + rng.Intn(mixBase-mixBase/2)
			gates[k] = gate{
				typ:    circuit.Xor,
				fanins: []string{gateName(deep), srcName(p.Inputs + (ff+1)%p.DFFs)},
			}
			consumers[deep]++
			continue
		}
		var fanins []string
		if k < nSrc {
			// Guarantee every source is consumed.
			fanins = append(fanins, srcName(k))
		}
		nf := 2
		switch r := rng.Intn(10); {
		case r < 1:
			nf = 1
		case r < 9:
			nf = 2
		default:
			nf = 3
		}
		if k == 0 {
			nf = 1 // no earlier gate to connect to
		}
		seen := map[string]bool{}
		for _, f := range fanins {
			seen[f] = true
		}
		for len(fanins) < nf {
			var cand string
			if k == 0 || rng.Intn(100) < 30 {
				cand = srcName(rng.Intn(nSrc))
			} else {
				g := pickGateFanin(k)
				cand = gateName(g)
			}
			if seen[cand] {
				// Duplicate fanin: for small k the pool is tiny, so accept a
				// reduced fanin count rather than looping forever.
				if k < 4 {
					break
				}
				continue
			}
			seen[cand] = true
			fanins = append(fanins, cand)
		}
		var typ circuit.GateType
		if len(fanins) == 1 {
			if rng.Intn(4) == 0 {
				typ = circuit.Buf
			} else {
				typ = circuit.Not
			}
		} else {
			typ = binaryTypes[rng.Intn(len(binaryTypes))]
		}
		gates[k] = gate{typ: typ, fanins: fanins}
		for _, f := range fanins {
			if g, ok := parseGateName(f); ok {
				consumers[g]++
			}
		}
	}

	// Flip-flop k is driven by its reserved state-mix gate.
	ffD := make([]int, p.DFFs)
	for k := 0; k < p.DFFs; k++ {
		ffD[k] = mixBase + k
		consumers[mixBase+k]++
	}

	// Primary outputs: distinct non-mix gates, biased toward the deep half.
	lo := mixBase / 2
	po := make([]int, 0, p.Outputs)
	usedPO := map[int]bool{}
	for len(po) < p.Outputs {
		var g int
		if rng.Intn(4) == 0 {
			g = rng.Intn(mixBase)
		} else {
			g = lo + rng.Intn(mixBase-lo)
		}
		if usedPO[g] {
			// Dense PO profiles (s35932 has POs on 2% of gates) still
			// terminate: fall back to a linear scan.
			for usedPO[g] {
				g = (g + 1) % mixBase
			}
		}
		usedPO[g] = true
		po = append(po, g)
		consumers[g]++
	}

	// Fanout fix-up: attach every dangling gate to a later AND/NAND/OR/NOR
	// gate with spare fanin capacity. Attaching only ever adds consumers, so
	// a single low-to-high pass suffices for gates fixed that way; the rare
	// tail gate with no extendable successor becomes an extra primary output,
	// which never orphans anything either.
	for g := 0; g < p.Gates; g++ {
		if consumers[g] > 0 {
			continue
		}
		attached := false
		for tries := 0; tries < 64 && !attached && g+1 < p.Gates; tries++ {
			t := g + 1 + rng.Intn(p.Gates-g-1)
			gt := &gates[t]
			if !extendable(gt.typ) || len(gt.fanins) >= 4 || contains(gt.fanins, gateName(g)) {
				continue
			}
			gt.fanins = append(gt.fanins, gateName(g))
			consumers[g]++
			attached = true
		}
		if !attached {
			// Deterministic fallback: scan forward for any extendable gate.
			for t := g + 1; t < p.Gates && !attached; t++ {
				gt := &gates[t]
				if extendable(gt.typ) && len(gt.fanins) < 6 && !contains(gt.fanins, gateName(g)) {
					gt.fanins = append(gt.fanins, gateName(g))
					consumers[g]++
					attached = true
				}
			}
		}
		if !attached {
			po = append(po, g)
			consumers[g]++
		}
	}

	b := circuit.NewBuilder(p.Name)
	for i := 0; i < p.Inputs; i++ {
		b.Input(fmt.Sprintf("I%d", i))
	}
	for k := 0; k < p.DFFs; k++ {
		b.DFF(fmt.Sprintf("F%d", k), gateName(ffD[k]))
	}
	for k, g := range gates {
		b.Gate(gateName(k), g.typ, g.fanins...)
	}
	for _, g := range po {
		b.Output(gateName(g))
	}
	return b.Build()
}

func parseGateName(s string) (int, bool) {
	if len(s) < 2 || s[0] != 'N' {
		return 0, false
	}
	n := 0
	for i := 1; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func extendable(t circuit.GateType) bool {
	switch t {
	case circuit.And, circuit.Nand, circuit.Or, circuit.Nor:
		return true
	default:
		return false
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
