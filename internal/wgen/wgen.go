// Package wgen synthesizes the on-chip test-sequence generator hardware of
// the paper: the per-length weight FSMs of Section 3 (Table 3) and the
// complete generator of Section 4.4 (Figure 1) — weight FSMs, an
// assignment-selection counter that advances every L_G clock cycles, and a
// multiplexer network routing the selected subsequence to each CUT input.
//
// The generator is emitted as an ordinary gate-level circuit (package
// circuit), so it can be simulated with the same simulators as the CUT; the
// synthesis is verified end-to-end by comparing the simulated generator
// outputs with the software-generated weighted sequences.
package wgen

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/lfsr"
)

// namer hands out unique node names with a common prefix.
type namer struct {
	n int
}

func (nm *namer) fresh(tag string) string {
	nm.n++
	return fmt.Sprintf("%s_%d", tag, nm.n)
}

// builderCtx bundles the builder state shared by the synthesis helpers.
type builderCtx struct {
	b    *circuit.Builder
	nm   *namer
	one  string // node constantly 1 (the EN input, asserted during test)
	zero string // node constantly 0
}

func newCtx(name string) *builderCtx {
	b := circuit.NewBuilder(name)
	ctx := &builderCtx{b: b, nm: &namer{}}
	// The generator has a single primary input EN which must be held at 1
	// for the duration of the test session; it doubles as the constant-1
	// source, with its inversion as constant 0.
	b.Input("EN")
	ctx.one = "EN"
	ctx.zero = "EN_n"
	b.Gate("EN_n", circuit.Not, "EN")
	return ctx
}

// counter synthesizes a mod-m counter with enable en and synchronous clear
// clr (clr wins over counting). It returns the state bit node names (LSB
// first) and the wrap signal (high during the cycle in which the counter
// holds m-1 and en is high).
func (ctx *builderCtx) counter(tag string, m int, en, clr string) (bits []string, wrap string) {
	if m < 2 {
		// A mod-1 counter has no state; it wraps every enabled cycle.
		return nil, en
	}
	n := ceilLog2(m)
	b := ctx.b
	state := make([]string, n)
	for i := 0; i < n; i++ {
		state[i] = ctx.nm.fresh(tag + "_s")
	}
	// Carry chain: c0 = en, c_{i+1} = c_i AND s_i.
	carry := make([]string, n)
	carry[0] = en
	for i := 1; i < n; i++ {
		carry[i] = ctx.nm.fresh(tag + "_c")
		b.Gate(carry[i], circuit.And, carry[i-1], state[i-1])
	}
	// wrap = en AND (state == m-1).
	eqTerms := []string{en}
	for i := 0; i < n; i++ {
		if (m-1)>>i&1 == 1 {
			eqTerms = append(eqTerms, state[i])
		} else {
			inv := ctx.nm.fresh(tag + "_eqn")
			b.Gate(inv, circuit.Not, state[i])
			eqTerms = append(eqTerms, inv)
		}
	}
	wrap = ctx.nm.fresh(tag + "_wrap")
	b.Gate(wrap, circuit.And, eqTerms...)
	// clear = clr OR wrap.
	clear := ctx.nm.fresh(tag + "_clr")
	if clr == "" {
		b.Gate(clear, circuit.Buf, wrap)
	} else {
		b.Gate(clear, circuit.Or, clr, wrap)
	}
	nclear := ctx.nm.fresh(tag + "_nclr")
	b.Gate(nclear, circuit.Not, clear)
	// s_i' = (s_i XOR c_i) AND NOT clear.
	for i := 0; i < n; i++ {
		x := ctx.nm.fresh(tag + "_x")
		b.Gate(x, circuit.Xor, state[i], carry[i])
		d := ctx.nm.fresh(tag + "_d")
		b.Gate(d, circuit.And, x, nclear)
		b.DFF(state[i], d)
	}
	return state, wrap
}

// outputLogic synthesizes z = α[state] as a sum of minterms over the counter
// state (Table 3's output columns). invBits caches per-bit inverters.
func (ctx *builderCtx) outputLogic(tag, alpha string, bits []string, invBits []string) string {
	b := ctx.b
	if len(bits) == 0 {
		// Single-state FSM: the output is the constant α[0].
		if alpha[0] == '1' {
			return ctx.one
		}
		return ctx.zero
	}
	var minterms []string
	for st := 0; st < len(alpha); st++ {
		if alpha[st] != '1' {
			continue
		}
		lits := make([]string, len(bits))
		for i := range bits {
			if st>>i&1 == 1 {
				lits[i] = bits[i]
			} else {
				lits[i] = invBits[i]
			}
		}
		var term string
		if len(lits) == 1 {
			term = lits[0]
		} else {
			term = ctx.nm.fresh(tag + "_mt")
			b.Gate(term, circuit.And, lits...)
		}
		minterms = append(minterms, term)
	}
	switch len(minterms) {
	case 0:
		return ctx.zero
	case 1:
		return minterms[0]
	default:
		z := ctx.nm.fresh(tag + "_z")
		b.Gate(z, circuit.Or, minterms...)
		return z
	}
}

// mux2 synthesizes m = sel ? b1 : b0.
func (ctx *builderCtx) mux2(tag, sel, nsel, b0, b1 string) string {
	b := ctx.b
	t0 := ctx.nm.fresh(tag + "_m0")
	b.Gate(t0, circuit.And, nsel, b0)
	t1 := ctx.nm.fresh(tag + "_m1")
	b.Gate(t1, circuit.And, sel, b1)
	m := ctx.nm.fresh(tag + "_m")
	b.Gate(m, circuit.Or, t0, t1)
	return m
}

// muxTree selects leaves[j] for select value j (LSB-first select bits).
// Out-of-range select values return the last leaf.
func (ctx *builderCtx) muxTree(tag string, leaves []string, sel, nsel []string) string {
	if len(leaves) == 1 {
		return leaves[0]
	}
	level := leaves
	for bit := 0; bit < len(sel); bit++ {
		var next []string
		for k := 0; k < len(level); k += 2 {
			if k+1 == len(level) {
				next = append(next, level[k])
				continue
			}
			next = append(next, ctx.mux2(tag, sel[bit], nsel[bit], level[k], level[k+1]))
		}
		level = next
		if len(level) == 1 {
			break
		}
	}
	return level[0]
}

func ceilLog2(m int) int {
	n := 0
	for 1<<n < m {
		n++
	}
	return n
}

// FSM is a synthesized weight FSM: one counter of length Len shared by all
// subsequences of that length, with one output per subsequence (Table 3).
type FSM struct {
	// Len is the subsequence length (number of reachable states).
	Len int
	// Subs lists the subsequences, parallel to Outputs.
	Subs []string
	// Outputs lists the node names of the FSM output functions.
	Outputs []string
	// StateBits is the number of state variables (⌈log2 Len⌉).
	StateBits int
}

// SynthesizeFSM builds a standalone circuit implementing one weight FSM for
// equal-length subsequences: after reset it produces subs[k] repeatedly on
// primary output Zk while EN is held at 1 (Section 3, Table 3).
func SynthesizeFSM(name string, subs []string) (*circuit.Circuit, *FSM, error) {
	if len(subs) == 0 {
		return nil, nil, fmt.Errorf("wgen: no subsequences")
	}
	l := len(subs[0])
	for _, s := range subs {
		if len(s) != l {
			return nil, nil, fmt.Errorf("wgen: subsequences of unequal length (%q vs %q)", subs[0], s)
		}
		if l == 0 {
			return nil, nil, fmt.Errorf("wgen: empty subsequence")
		}
	}
	ctx := newCtx(name)
	fsm := ctx.weightFSM("w", l, subs, "")
	for k, out := range fsm.Outputs {
		po := fmt.Sprintf("Z%d", k)
		ctx.b.Gate(po, circuit.Buf, out)
		ctx.b.Output(po)
	}
	c, err := ctx.b.Build()
	if err != nil {
		return nil, nil, err
	}
	return c, fsm, nil
}

// weightFSM synthesizes a weight FSM inside ctx: a mod-l counter (cleared by
// clr) and one output function per subsequence.
func (ctx *builderCtx) weightFSM(tag string, l int, subs []string, clr string) *FSM {
	bits, _ := ctx.counter(tag+"_cnt", l, ctx.one, clr)
	invBits := make([]string, len(bits))
	for i, s := range bits {
		invBits[i] = ctx.nm.fresh(tag + "_ni")
		ctx.b.Gate(invBits[i], circuit.Not, s)
	}
	fsm := &FSM{Len: l, StateBits: len(bits)}
	for _, alpha := range subs {
		out := ctx.outputLogic(tag, alpha, bits, invBits)
		fsm.Subs = append(fsm.Subs, alpha)
		fsm.Outputs = append(fsm.Outputs, out)
	}
	return fsm
}

// Generator is a synthesized full test-sequence generator (Figure 1,
// optionally preceded by pseudo-random LFSR windows — the paper's future-work
// extension).
type Generator struct {
	// Circuit is the gate-level netlist. Primary input EN must be held at 1;
	// primary output Ii drives CUT input i.
	Circuit *circuit.Circuit
	// NumAssignments is the number of weight assignments |Ω|.
	NumAssignments int
	// RandomWindows is the number of leading pseudo-random windows.
	RandomWindows int
	// LFSRWidth is the width of the on-chip random source (0 if none).
	LFSRWidth int
	// LG is the per-window sequence length.
	LG int
	// FSMs lists the shared per-length weight FSMs (after primitive-period
	// reduction), sorted by length.
	FSMs []*FSM
	// NumGates and NumDFFs summarise the hardware cost.
	NumGates, NumDFFs int
}

// Synthesize builds the Figure 1 generator for the weight assignments omega
// and window length lg: a cycle counter advances every clock and wraps every
// lg cycles; the wrap clears all weight-FSM counters (each assignment window
// restarts every FSM, matching core.Assignment.GenSequence) and advances the
// assignment counter whose bits steer the per-input multiplexer trees.
func Synthesize(name string, omega []core.Assignment, lg int) (*Generator, error) {
	return SynthesizeSchedule(name, 0, omega, lg)
}

// SynthesizeSchedule builds a generator whose first randomWindows windows
// drive every CUT input from a free-running XNOR-feedback LFSR (reset to the
// all-zero state, which for XNOR feedback is a regular sequence state), and
// whose remaining windows apply the weight assignments as in Synthesize.
// This realises in hardware the core procedure's Options.RandomWindows
// extension.
func SynthesizeSchedule(name string, randomWindows int, omega []core.Assignment, lg int) (*Generator, error) {
	if len(omega) == 0 {
		return nil, fmt.Errorf("wgen: empty weight assignment set")
	}
	if lg < 2 {
		return nil, fmt.Errorf("wgen: LG must be at least 2, got %d", lg)
	}
	if randomWindows < 0 {
		return nil, fmt.Errorf("wgen: negative random window count %d", randomWindows)
	}
	numInputs := len(omega[0].Subs)
	for _, a := range omega {
		if err := a.Validate(numInputs); err != nil {
			return nil, err
		}
	}
	ctx := newCtx(name)
	b := ctx.b

	// Cycle counter mod lg; wraps every lg cycles.
	_, windowWrap := ctx.counter("cyc", lg, ctx.one, "")

	// Window counter: advances on windowWrap, free-running mod 2^bits.
	numAsn := len(omega)
	numWindows := randomWindows + numAsn
	selBits := ceilLog2(numWindows)
	var sel, nsel []string
	if selBits > 0 {
		asnBits, _ := ctx.counter("asn", 1<<selBits, windowWrap, "")
		sel = asnBits
		nsel = make([]string, len(sel))
		for i, s := range sel {
			nsel[i] = ctx.nm.fresh("asn_n")
			b.Gate(nsel[i], circuit.Not, s)
		}
	}

	// Free-running XNOR LFSR for the random windows.
	var lfsrStages []string
	lfsrWidth := 0
	if randomWindows > 0 {
		lfsrWidth = lfsr.RandomSourceWidth(numInputs)
		tapsPos, ok := lfsr.Taps(lfsrWidth)
		if !ok {
			return nil, fmt.Errorf("wgen: no taps for LFSR width %d", lfsrWidth)
		}
		lfsrStages = make([]string, lfsrWidth)
		for s := 0; s < lfsrWidth; s++ {
			lfsrStages[s] = fmt.Sprintf("lfsr_s%d", s)
		}
		tapNodes := make([]string, len(tapsPos))
		for k, t := range tapsPos {
			tapNodes[k] = lfsrStages[t-1]
		}
		fb := "lfsr_fb"
		b.Gate(fb, circuit.Xnor, tapNodes...)
		b.DFF(lfsrStages[0], fb)
		for s := 1; s < lfsrWidth; s++ {
			b.DFF(lfsrStages[s], lfsrStages[s-1])
		}
	}

	// One FSM per distinct primitive subsequence length; one output per
	// distinct primitive subsequence (Sections 3 and 5).
	byLen := map[int][]string{}
	seen := map[string]bool{}
	outOf := map[string]string{} // primitive subsequence -> output node
	for _, a := range omega {
		for _, s := range a.Subs {
			p := core.PrimitivePeriod(s)
			if !seen[p] {
				seen[p] = true
				byLen[len(p)] = append(byLen[len(p)], p)
			}
		}
	}
	var lengths []int
	for l := range byLen {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	g := &Generator{
		NumAssignments: numAsn,
		RandomWindows:  randomWindows,
		LFSRWidth:      lfsrWidth,
		LG:             lg,
	}
	for _, l := range lengths {
		// Window wrap clears the FSM counter so every assignment window
		// restarts every subsequence at its first bit.
		fsm := ctx.weightFSM(fmt.Sprintf("w%d", l), l, byLen[l], windowWrap)
		g.FSMs = append(g.FSMs, fsm)
		for k, p := range fsm.Subs {
			outOf[p] = fsm.Outputs[k]
		}
	}

	// Per-CUT-input multiplexer trees over all windows (random windows
	// first, then the weight assignments).
	for i := 0; i < numInputs; i++ {
		leaves := make([]string, 0, numWindows)
		for w := 0; w < randomWindows; w++ {
			leaves = append(leaves, lfsrStages[i%lfsrWidth])
		}
		for _, a := range omega {
			leaves = append(leaves, outOf[core.PrimitivePeriod(a.Subs[i])])
		}
		out := ctx.muxTree(fmt.Sprintf("mux_i%d", i), leaves, sel, nsel)
		po := fmt.Sprintf("I%d", i)
		b.Gate(po, circuit.Buf, out)
		b.Output(po)
	}

	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	g.Circuit = c
	g.NumGates = c.NumGates()
	g.NumDFFs = c.NumDFFs()
	return g, nil
}
