package wgen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lfsr"
	"repro/internal/logic"
	"repro/internal/sim"
)

// simulate runs the circuit with EN=1 for n cycles from reset.
func simulate(t *testing.T, s *sim.Simulator, numOutputs, n int) [][]logic.V {
	t.Helper()
	out := make([][]logic.V, n)
	s.Reset()
	for u := 0; u < n; u++ {
		out[u] = s.Step([]logic.V{logic.One})
	}
	return out
}

func TestSynthesizeFSMPaperTable3(t *testing.T) {
	// Table 3: one FSM producing 00010, 01011 and 11001 repeatedly.
	subs := []string{"00010", "01011", "11001"}
	c, fsm, err := SynthesizeFSM("table3", subs)
	if err != nil {
		t.Fatal(err)
	}
	if fsm.StateBits != 3 {
		t.Fatalf("state bits = %d, want ceil(log2 5) = 3", fsm.StateBits)
	}
	s := sim.New(c, logic.Zero)
	out := simulate(t, s, len(subs), 17)
	for u := 0; u < 17; u++ {
		for k, alpha := range subs {
			want := logic.FromBit(alpha[u%5] == '1')
			if out[u][k] != want {
				t.Fatalf("t=%d output z%d = %v, want %v (α=%s)", u, k, out[u][k], want, alpha)
			}
		}
	}
}

func TestSynthesizeFSMLengthOne(t *testing.T) {
	c, fsm, err := SynthesizeFSM("l1", []string{"1", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if fsm.StateBits != 0 {
		t.Fatalf("state bits = %d, want 0", fsm.StateBits)
	}
	s := sim.New(c, logic.Zero)
	out := simulate(t, s, 2, 4)
	for u := 0; u < 4; u++ {
		if out[u][0] != logic.One || out[u][1] != logic.Zero {
			t.Fatalf("t=%d constants wrong: %v", u, out[u])
		}
	}
}

func TestSynthesizeFSMErrors(t *testing.T) {
	if _, _, err := SynthesizeFSM("bad", nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, _, err := SynthesizeFSM("bad", []string{"01", "011"}); err == nil {
		t.Error("unequal lengths accepted")
	}
	if _, _, err := SynthesizeFSM("bad", []string{""}); err == nil {
		t.Error("empty subsequence accepted")
	}
}

func TestSynthesizeFSMPowerOfTwoLength(t *testing.T) {
	subs := []string{"0110", "1001", "1111", "0000"}
	c, fsm, err := SynthesizeFSM("p2", subs)
	if err != nil {
		t.Fatal(err)
	}
	if fsm.StateBits != 2 {
		t.Fatalf("state bits = %d", fsm.StateBits)
	}
	s := sim.New(c, logic.Zero)
	out := simulate(t, s, len(subs), 12)
	for u := 0; u < 12; u++ {
		for k, alpha := range subs {
			if out[u][k] != logic.FromBit(alpha[u%4] == '1') {
				t.Fatalf("t=%d z%d wrong", u, k)
			}
		}
	}
}

// checkGenerator verifies a synthesized generator against the software
// weighted sequences for all assignment windows.
func checkGenerator(t *testing.T, omega []core.Assignment, lg int) *Generator {
	t.Helper()
	g, err := Synthesize("gen", omega, lg)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(g.Circuit, logic.Zero)
	total := len(omega) * lg
	out := simulate(t, s, len(omega[0].Subs), total)
	for j, a := range omega {
		want := a.GenSequence(lg)
		for u := 0; u < lg; u++ {
			for i := range a.Subs {
				got := out[j*lg+u][i]
				if got != want.At(u, i) {
					t.Fatalf("assignment %d time %d input %d: generator %v, software %v",
						j, u, i, got, want.At(u, i))
				}
			}
		}
	}
	return g
}

func TestSynthesizeFigure1PaperExample(t *testing.T) {
	// The s27 example of Section 2: best and second-best weight assignments.
	omega := []core.Assignment{
		{Subs: []string{"01", "0", "100", "1"}},
		{Subs: []string{"100", "00", "01", "100"}},
	}
	g := checkGenerator(t, omega, 12)
	// FSMs after primitive reduction: lengths {1, 2, 3} ("00"→"0").
	if len(g.FSMs) != 3 {
		t.Fatalf("FSM count = %d, want 3", len(g.FSMs))
	}
}

func TestSynthesizeSingleAssignment(t *testing.T) {
	omega := []core.Assignment{{Subs: []string{"011", "1"}}}
	checkGenerator(t, omega, 9)
}

func TestSynthesizeManyAssignmentsNonPowerOfTwo(t *testing.T) {
	// 5 assignments exercise the incomplete mux tree and 3-bit assignment
	// counter.
	omega := []core.Assignment{
		{Subs: []string{"0", "1"}},
		{Subs: []string{"01", "10"}},
		{Subs: []string{"110", "001"}},
		{Subs: []string{"1", "0110"}},
		{Subs: []string{"10", "111"}},
	}
	checkGenerator(t, omega, 8)
}

func TestSynthesizeWindowResetsFSMs(t *testing.T) {
	// With lg not a multiple of the subsequence lengths, the second window
	// only matches the software model if the FSM counters are cleared at the
	// window boundary. lg=7 vs lengths 2 and 3 exercises that.
	omega := []core.Assignment{
		{Subs: []string{"01", "100"}},
		{Subs: []string{"10", "110"}},
	}
	checkGenerator(t, omega, 7)
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := Synthesize("g", nil, 10); err == nil {
		t.Error("empty omega accepted")
	}
	if _, err := Synthesize("g", []core.Assignment{{Subs: []string{"01"}}}, 1); err == nil {
		t.Error("lg=1 accepted")
	}
	bad := []core.Assignment{{Subs: []string{"01"}}, {Subs: []string{"01", "1"}}}
	if _, err := Synthesize("g", bad, 10); err == nil {
		t.Error("inconsistent widths accepted")
	}
}

func TestGeneratorStatsPopulated(t *testing.T) {
	omega := []core.Assignment{
		{Subs: []string{"01", "0"}},
		{Subs: []string{"1", "100"}},
	}
	g, err := Synthesize("g", omega, 16)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGates <= 0 || g.NumDFFs <= 0 {
		t.Fatalf("stats not populated: %d gates, %d DFFs", g.NumGates, g.NumDFFs)
	}
	if g.NumAssignments != 2 || g.LG != 16 {
		t.Fatalf("metadata wrong: %+v", g)
	}
	// DFFs: cycle counter (4 bits for 16) + assignment counter (1 bit) +
	// FSM counters for lengths 2 and 3 (1 + 2 bits) = 8.
	if g.NumDFFs != 8 {
		t.Fatalf("DFF count = %d, want 8", g.NumDFFs)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 2000: 11}
	for m, want := range cases {
		if got := ceilLog2(m); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestSynthesizeScheduleWithRandomWindows(t *testing.T) {
	omega := []core.Assignment{
		{Subs: []string{"01", "100"}},
		{Subs: []string{"1", "0"}},
	}
	const lg = 10
	const randomWindows = 2
	g, err := SynthesizeSchedule("sched", randomWindows, omega, lg)
	if err != nil {
		t.Fatal(err)
	}
	if g.RandomWindows != randomWindows || g.LFSRWidth != 8 {
		t.Fatalf("metadata wrong: %+v", g)
	}
	s := sim.New(g.Circuit, logic.Zero)
	// Software model: free-running XNOR LFSR for the random windows.
	src, err := lfsr.NewXNOR(g.LFSRWidth)
	if err != nil {
		t.Fatal(err)
	}
	want := src.ParallelSequence(2, randomWindows*lg)
	for u := 0; u < randomWindows*lg; u++ {
		out := s.Step([]logic.V{logic.One})
		for i := 0; i < 2; i++ {
			if out[i] != want.At(u, i) {
				t.Fatalf("random window: t=%d input %d: hw %v, sw %v", u, i, out[i], want.At(u, i))
			}
		}
	}
	// Then the weight-assignment windows.
	for j, a := range omega {
		wseq := a.GenSequence(lg)
		for u := 0; u < lg; u++ {
			out := s.Step([]logic.V{logic.One})
			for i := range a.Subs {
				if out[i] != wseq.At(u, i) {
					t.Fatalf("weight window %d: t=%d input %d: hw %v, sw %v", j, u, i, out[i], wseq.At(u, i))
				}
			}
		}
	}
}

func TestSynthesizeScheduleManyInputsFoldLFSR(t *testing.T) {
	// 11 inputs on an 11-stage LFSR source (width = max(11, 8)).
	subs := make([]string, 11)
	for i := range subs {
		subs[i] = "01"
	}
	g, err := SynthesizeSchedule("fold", 1, []core.Assignment{{Subs: subs}}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.LFSRWidth != 11 {
		t.Fatalf("LFSR width %d, want 11", g.LFSRWidth)
	}
	s := sim.New(g.Circuit, logic.Zero)
	src, _ := lfsr.NewXNOR(11)
	want := src.ParallelSequence(11, 6)
	for u := 0; u < 6; u++ {
		out := s.Step([]logic.V{logic.One})
		for i := 0; i < 11; i++ {
			if out[i] != want.At(u, i) {
				t.Fatalf("t=%d input %d mismatch", u, i)
			}
		}
	}
}

func TestSynthesizeScheduleRejectsNegative(t *testing.T) {
	if _, err := SynthesizeSchedule("bad", -1, []core.Assignment{{Subs: []string{"0"}}}, 4); err == nil {
		t.Fatal("negative random windows accepted")
	}
}
