package circuit

import (
	"strings"
	"testing"
)

// buildToy returns a tiny sequential circuit:
//
//	a, b   : inputs
//	q      : DFF with D = g2
//	g1 = AND(a, q)
//	g2 = NOR(g1, b)
//	outputs: g2
func buildToy(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("toy")
	b.Input("a")
	b.Input("b")
	b.DFF("q", "g2") // forward reference
	b.Gate("g1", And, "a", "q")
	b.Gate("g2", Nor, "g1", "b")
	b.Output("g2")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestBuildToy(t *testing.T) {
	c := buildToy(t)
	if c.NumInputs() != 2 || c.NumOutputs() != 1 || c.NumDFFs() != 1 || c.NumGates() != 2 {
		t.Fatalf("wrong counts: %+v", c.Stats())
	}
	g1, _ := c.Lookup("g1")
	g2, _ := c.Lookup("g2")
	if c.Nodes[g1].Level != 1 || c.Nodes[g2].Level != 2 {
		t.Fatalf("levels: g1=%d g2=%d", c.Nodes[g1].Level, c.Nodes[g2].Level)
	}
	if len(c.Order) != 2 || c.Order[0] != g1 || c.Order[1] != g2 {
		t.Fatalf("order: %v", c.Order)
	}
	if !c.IsPO(g2) || c.IsPO(g1) {
		t.Fatal("IsPO wrong")
	}
	q, _ := c.Lookup("q")
	if len(c.Nodes[q].Fanouts) != 1 || c.Nodes[q].Fanouts[0] != g1 {
		t.Fatalf("fanouts of q: %v", c.Nodes[q].Fanouts)
	}
}

func TestForwardReferences(t *testing.T) {
	b := NewBuilder("fwd")
	b.Input("i")
	b.Gate("top", Not, "bottom") // bottom not yet defined
	b.Gate("bottom", Buf, "i")
	b.Output("top")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	top, _ := c.Lookup("top")
	if c.Nodes[top].Level != 2 {
		t.Fatalf("level of top = %d, want 2", c.Nodes[top].Level)
	}
}

func TestUndefinedReference(t *testing.T) {
	b := NewBuilder("bad")
	b.Input("i")
	b.Gate("g", Not, "ghost")
	b.Output("g")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "never defined") {
		t.Fatalf("expected undefined-reference error, got %v", err)
	}
}

func TestDoubleDefinition(t *testing.T) {
	b := NewBuilder("bad")
	b.Input("i")
	b.Gate("g", Not, "i")
	b.Gate("g", Buf, "i")
	b.Output("g")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "defined twice") {
		t.Fatalf("expected double-definition error, got %v", err)
	}
}

func TestCombinationalCycle(t *testing.T) {
	b := NewBuilder("cyc")
	b.Input("i")
	b.Gate("g1", And, "i", "g2")
	b.Gate("g2", And, "i", "g1")
	b.Output("g1")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestSequentialLoopIsLegal(t *testing.T) {
	// A DFF feedback loop must NOT count as a combinational cycle.
	b := NewBuilder("seqloop")
	b.Input("i")
	b.DFF("q", "g")
	b.Gate("g", Xor, "i", "q")
	b.Output("g")
	if _, err := b.Build(); err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
}

func TestArityErrors(t *testing.T) {
	cases := []func(b *Builder){
		func(b *Builder) { b.Gate("g", Not, "i", "i") }, // NOT with 2 fanins
		func(b *Builder) { b.Gate("g", And) },           // AND with 0 fanins
		func(b *Builder) { b.Gate("g", Buf, "i", "i") }, // BUF with 2 fanins
	}
	for k, mut := range cases {
		b := NewBuilder("bad")
		b.Input("i")
		mut(b)
		b.Output("g")
		if _, err := b.Build(); err == nil {
			t.Errorf("case %d: expected arity error", k)
		}
	}
}

func TestMissingOutput(t *testing.T) {
	b := NewBuilder("noout")
	b.Input("i")
	b.Gate("g", Not, "i")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no primary outputs") {
		t.Fatalf("expected missing-output error, got %v", err)
	}
}

func TestUnknownOutputName(t *testing.T) {
	b := NewBuilder("badout")
	b.Input("i")
	b.Gate("g", Not, "i")
	b.Output("nope")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "not defined") {
		t.Fatalf("expected unknown-output error, got %v", err)
	}
}

func TestDuplicateOutput(t *testing.T) {
	b := NewBuilder("dupout")
	b.Input("i")
	b.Gate("g", Not, "i")
	b.Output("g")
	b.Output("g")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "declared twice") {
		t.Fatalf("expected duplicate-output error, got %v", err)
	}
}

func TestGateTypeRoundTrip(t *testing.T) {
	for _, tt := range []GateType{Input, DFF, Buf, Not, And, Nand, Or, Nor, Xor, Xnor} {
		got, ok := ParseGateType(tt.String())
		if !ok || got != tt {
			t.Errorf("ParseGateType(%q) = %v,%v", tt.String(), got, ok)
		}
	}
	if _, ok := ParseGateType("FROB"); ok {
		t.Error("ParseGateType accepted garbage")
	}
}

func TestStats(t *testing.T) {
	c := buildToy(t)
	s := c.Stats()
	if s.Gates != 2 || s.DFFs != 1 || s.Inputs != 2 {
		t.Fatalf("stats: %+v", s)
	}
	// Lines: 5 stems (a,b,q,g1,g2); no node has fanout > 1 in the toy.
	if s.Lines != 5 {
		t.Fatalf("lines = %d, want 5", s.Lines)
	}
	if !strings.Contains(s.String(), "toy") {
		t.Fatalf("Stats.String: %q", s.String())
	}
}

func TestInputAsOutputDirectly(t *testing.T) {
	// A primary input may also be a primary output.
	b := NewBuilder("io")
	b.Input("i")
	b.Gate("g", Not, "i")
	b.Output("i")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	id, _ := c.Lookup("i")
	if !c.IsPO(id) {
		t.Fatal("input not marked as PO")
	}
}

func TestGateBadType(t *testing.T) {
	b := NewBuilder("bad")
	b.Input("i")
	b.Gate("g", Input, "i")
	b.Output("g")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for Gate with non-gate type")
	}
}
