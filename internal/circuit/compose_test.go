package circuit

import (
	"strings"
	"testing"
)

// driverLoad builds a 1-output driver (inverter) and a 1-input load
// (buffer to output).
func driverLoad(t *testing.T) (*Circuit, *Circuit) {
	t.Helper()
	d := NewBuilder("drv")
	d.Input("a")
	d.Gate("z", Not, "a")
	d.Output("z")
	drv, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := NewBuilder("ld")
	l.Input("x")
	l.DFF("q", "x")
	l.Gate("y", Buf, "q")
	l.Output("y")
	load, err := l.Build()
	if err != nil {
		t.Fatal(err)
	}
	return drv, load
}

func TestComposeBasic(t *testing.T) {
	drv, load := driverLoad(t)
	comp, err := Compose("chip", drv, load)
	if err != nil {
		t.Fatal(err)
	}
	if comp.NumInputs() != 1 || comp.NumOutputs() != 1 {
		t.Fatalf("interface: %d in, %d out", comp.NumInputs(), comp.NumOutputs())
	}
	if comp.NumDFFs() != 1 {
		t.Fatalf("DFFs: %d", comp.NumDFFs())
	}
	// Driver gate + load input buffer + load buffer gate.
	if comp.NumGates() != 3 {
		t.Fatalf("gates: %d", comp.NumGates())
	}
	// The load's input buffer must be fed by the driver's output.
	cx, ok := comp.Lookup("c_x")
	if !ok {
		t.Fatal("c_x missing")
	}
	gz, _ := comp.Lookup("g_z")
	if comp.Nodes[cx].Fanins[0] != gz {
		t.Fatal("load input not wired to driver output")
	}
}

func TestComposeWidthMismatch(t *testing.T) {
	drv, _ := driverLoad(t)
	l := NewBuilder("wide")
	l.Input("x0")
	l.Input("x1")
	l.Gate("y", And, "x0", "x1")
	l.Output("y")
	load, err := l.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compose("bad", drv, load); err == nil ||
		!strings.Contains(err.Error(), "outputs") {
		t.Fatalf("width mismatch accepted: %v", err)
	}
}

func TestLoadNodeID(t *testing.T) {
	drv, load := driverLoad(t)
	comp, err := Compose("chip", drv, load)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := load.Lookup("q")
	cid, ok := LoadNodeID(comp, load, q)
	if !ok {
		t.Fatal("LoadNodeID failed")
	}
	if comp.Nodes[cid].Name != "c_q" || comp.Nodes[cid].Type != DFF {
		t.Fatalf("mapped to %s/%v", comp.Nodes[cid].Name, comp.Nodes[cid].Type)
	}
}

func TestComposeSelfCollisionSafe(t *testing.T) {
	// Composing a circuit with itself must not collide names.
	d := NewBuilder("same")
	d.Input("a")
	d.Gate("z", Not, "a")
	d.Output("z")
	c1, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compose("twice", c1, c1)
	if err != nil {
		t.Fatal(err)
	}
	if comp.NumGates() != 3 { // g_z, c_a buffer, c_z
		t.Fatalf("gates: %d", comp.NumGates())
	}
}
