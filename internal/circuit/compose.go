package circuit

import "fmt"

// Compose stitches two circuits into one: primary output k of driver feeds
// primary input k of load. The composed circuit keeps driver's primary
// inputs as its inputs and load's primary outputs as its outputs; node names
// are prefixed ("g_" for driver, "c_" for load) so the two namespaces cannot
// collide. It is used to assemble a complete self-test chip model: the
// synthesized test generator driving the circuit under test.
func Compose(name string, driver, load *Circuit) (*Circuit, error) {
	if len(driver.Outputs) != len(load.Inputs) {
		return nil, fmt.Errorf("circuit: compose %s: driver has %d outputs, load has %d inputs",
			name, len(driver.Outputs), len(load.Inputs))
	}
	b := NewBuilder(name)
	dn := func(id NodeID) string { return "g_" + driver.Nodes[id].Name }
	ln := func(id NodeID) string { return "c_" + load.Nodes[id].Name }

	// Driver, verbatim under the g_ prefix.
	for _, id := range driver.Inputs {
		b.Input(dn(id))
	}
	for _, id := range driver.DFFs {
		b.DFF(dn(id), dn(driver.Nodes[id].Fanins[0]))
	}
	for _, id := range driver.Order {
		n := &driver.Nodes[id]
		fanins := make([]string, len(n.Fanins))
		for k, f := range n.Fanins {
			fanins[k] = dn(f)
		}
		b.Gate(dn(id), n.Type, fanins...)
	}

	// Load: its primary inputs become buffers fed by the driver outputs.
	for k, id := range load.Inputs {
		b.Gate(ln(id), Buf, dn(driver.Outputs[k]))
	}
	for _, id := range load.DFFs {
		b.DFF(ln(id), ln(load.Nodes[id].Fanins[0]))
	}
	for _, id := range load.Order {
		n := &load.Nodes[id]
		fanins := make([]string, len(n.Fanins))
		for k, f := range n.Fanins {
			fanins[k] = ln(f)
		}
		b.Gate(ln(id), n.Type, fanins...)
	}
	for _, id := range load.Outputs {
		b.Output(ln(id))
	}
	return b.Build()
}

// LoadNodeID maps a node of the load circuit used in Compose to its id in
// the composed circuit.
func LoadNodeID(composed, load *Circuit, id NodeID) (NodeID, bool) {
	return composed.Lookup("c_" + load.Nodes[id].Name)
}
