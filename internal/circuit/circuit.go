// Package circuit defines the gate-level netlist model for synchronous
// sequential circuits: primary inputs, an arbitrary combinational gate
// network, D flip-flops and primary outputs. Flip-flops are edge-triggered
// and update simultaneously once per time unit; there is no gate-delay
// modelling (zero-delay cycle simulation), which matches the fault model of
// the reproduced paper.
package circuit

import (
	"fmt"
	"sort"
)

// GateType enumerates node kinds. Input and DFF nodes are sequential-frame
// sources; the rest are combinational gates.
type GateType uint8

const (
	// Input is a primary input.
	Input GateType = iota
	// DFF is a D flip-flop; Fanins[0] is the D (next-state) input and the
	// node's value is the flip-flop output (present state).
	DFF
	// Buf is a non-inverting buffer (1 fanin).
	Buf
	// Not is an inverter (1 fanin).
	Not
	// And is an AND gate (≥1 fanins).
	And
	// Nand is a NAND gate (≥1 fanins).
	Nand
	// Or is an OR gate (≥1 fanins).
	Or
	// Nor is a NOR gate (≥1 fanins).
	Nor
	// Xor is an XOR gate (≥1 fanins).
	Xor
	// Xnor is an XNOR gate (≥1 fanins).
	Xnor
)

var gateNames = [...]string{
	Input: "INPUT", DFF: "DFF", Buf: "BUF", Not: "NOT",
	And: "AND", Nand: "NAND", Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR",
}

// String returns the conventional upper-case gate name (as used by the
// ISCAS-89 .bench format).
func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// ParseGateType maps a .bench function name to a GateType.
func ParseGateType(s string) (GateType, bool) {
	for t, n := range gateNames {
		if n == s {
			return GateType(t), true
		}
	}
	return 0, false
}

// IsGate reports whether t is a combinational gate (not Input or DFF).
func (t GateType) IsGate() bool { return t != Input && t != DFF }

// NodeID indexes into Circuit.Nodes.
type NodeID int32

// Node is a single netlist node. Its value is the output of the gate (or the
// primary-input value, or the flip-flop output).
type Node struct {
	Name    string
	Type    GateType
	Fanins  []NodeID
	Fanouts []NodeID // computed by Build
	Level   int32    // 0 for Input/DFF, 1+max(fanin levels) for gates
}

// Circuit is an immutable, validated netlist. Build one with a Builder or the
// bench parser.
type Circuit struct {
	Name    string
	Nodes   []Node
	Inputs  []NodeID // primary inputs, in declaration order
	Outputs []NodeID // primary outputs, in declaration order
	DFFs    []NodeID // flip-flops, in declaration order
	// Order lists all combinational gate nodes in topological order
	// (every gate appears after all of its gate fanins).
	Order []NodeID

	byName map[string]NodeID
	isPO   []bool
}

// NumNodes returns the total node count.
func (c *Circuit) NumNodes() int { return len(c.Nodes) }

// NumGates returns the number of combinational gates.
func (c *Circuit) NumGates() int { return len(c.Order) }

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int { return len(c.Inputs) }

// NumOutputs returns the number of primary outputs.
func (c *Circuit) NumOutputs() int { return len(c.Outputs) }

// NumDFFs returns the number of flip-flops.
func (c *Circuit) NumDFFs() int { return len(c.DFFs) }

// Lookup returns the node with the given name.
func (c *Circuit) Lookup(name string) (NodeID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// IsPO reports whether node id is a primary output.
func (c *Circuit) IsPO(id NodeID) bool { return c.isPO[id] }

// MaxLevel returns the largest combinational level in the circuit.
func (c *Circuit) MaxLevel() int32 {
	var m int32
	for i := range c.Nodes {
		if c.Nodes[i].Level > m {
			m = c.Nodes[i].Level
		}
	}
	return m
}

// Stats summarises a circuit for reports.
type Stats struct {
	Name                  string
	Inputs, Outputs, DFFs int
	Gates, Nodes          int
	MaxLevel              int
	Lines                 int // fault sites: one stem per non-PO-terminal node plus fanout branches
}

// Stats computes summary statistics.
func (c *Circuit) Stats() Stats {
	lines := 0
	for i := range c.Nodes {
		lines++ // stem
		if len(c.Nodes[i].Fanouts) > 1 {
			lines += len(c.Nodes[i].Fanouts)
		}
	}
	return Stats{
		Name:   c.Name,
		Inputs: len(c.Inputs), Outputs: len(c.Outputs), DFFs: len(c.DFFs),
		Gates: len(c.Order), Nodes: len(c.Nodes),
		MaxLevel: int(c.MaxLevel()),
		Lines:    lines,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: %d PI, %d PO, %d FF, %d gates, %d levels, %d lines",
		s.Name, s.Inputs, s.Outputs, s.DFFs, s.Gates, s.MaxLevel, s.Lines)
}

// Builder assembles a Circuit incrementally. Names may be referenced before
// they are defined; Build resolves everything and validates the result.
type Builder struct {
	name    string
	nodes   []Node
	inputs  []NodeID
	outputs []string
	dffs    []NodeID
	byName  map[string]NodeID
	pending map[string][]pendingRef // name -> references awaiting definition
	defined map[string]bool
	errs    []error
}

type pendingRef struct {
	node NodeID
	slot int
}

// NewBuilder returns an empty builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		byName:  make(map[string]NodeID),
		pending: make(map[string][]pendingRef),
		defined: make(map[string]bool),
	}
}

// intern returns the id for name, creating a placeholder node if needed.
func (b *Builder) intern(name string) NodeID {
	if id, ok := b.byName[name]; ok {
		return id
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{Name: name})
	b.byName[name] = id
	return id
}

func (b *Builder) define(name string, t GateType, fanins []string) NodeID {
	id := b.intern(name)
	if b.defined[name] {
		b.errs = append(b.errs, fmt.Errorf("circuit %s: node %q defined twice", b.name, name))
		return id
	}
	b.defined[name] = true
	b.nodes[id].Type = t
	b.nodes[id].Fanins = make([]NodeID, len(fanins))
	for k, fn := range fanins {
		b.nodes[id].Fanins[k] = b.intern(fn)
	}
	return id
}

// Input declares a primary input.
func (b *Builder) Input(name string) {
	id := b.define(name, Input, nil)
	b.inputs = append(b.inputs, id)
}

// Output marks name (defined now or later) as a primary output.
func (b *Builder) Output(name string) {
	b.outputs = append(b.outputs, name)
}

// DFF declares a flip-flop whose D input is the node named d.
func (b *Builder) DFF(name, d string) {
	id := b.define(name, DFF, []string{d})
	b.dffs = append(b.dffs, id)
}

// Gate declares a combinational gate.
func (b *Builder) Gate(name string, t GateType, fanins ...string) {
	if !t.IsGate() {
		b.errs = append(b.errs, fmt.Errorf("circuit %s: node %q: %v is not a gate type", b.name, name, t))
		return
	}
	b.define(name, t, fanins)
}

// Build validates and finalizes the circuit.
func (b *Builder) Build() (*Circuit, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	c := &Circuit{
		Name:   b.name,
		Nodes:  b.nodes,
		Inputs: b.inputs,
		DFFs:   b.dffs,
		byName: b.byName,
	}
	// All referenced names must be defined.
	for i := range c.Nodes {
		if !b.defined[c.Nodes[i].Name] {
			return nil, fmt.Errorf("circuit %s: node %q referenced but never defined", c.Name, c.Nodes[i].Name)
		}
	}
	// Resolve outputs.
	c.isPO = make([]bool, len(c.Nodes))
	for _, on := range b.outputs {
		id, ok := c.byName[on]
		if !ok {
			return nil, fmt.Errorf("circuit %s: output %q not defined", c.Name, on)
		}
		if c.isPO[id] {
			return nil, fmt.Errorf("circuit %s: output %q declared twice", c.Name, on)
		}
		c.isPO[id] = true
		c.Outputs = append(c.Outputs, id)
	}
	// Arity checks.
	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Type {
		case Input:
			if len(n.Fanins) != 0 {
				return nil, fmt.Errorf("circuit %s: input %q has fanins", c.Name, n.Name)
			}
		case DFF, Buf, Not:
			if len(n.Fanins) != 1 {
				return nil, fmt.Errorf("circuit %s: %v %q needs exactly 1 fanin, has %d", c.Name, n.Type, n.Name, len(n.Fanins))
			}
		default:
			if len(n.Fanins) < 1 {
				return nil, fmt.Errorf("circuit %s: %v %q needs at least 1 fanin", c.Name, n.Type, n.Name)
			}
		}
	}
	// Fanouts.
	for i := range c.Nodes {
		for _, f := range c.Nodes[i].Fanins {
			c.Nodes[f].Fanouts = append(c.Nodes[f].Fanouts, NodeID(i))
		}
	}
	// Topological order of the combinational network. DFF D-input edges are
	// sequential and therefore cut; Input/DFF nodes are level-0 sources.
	indeg := make([]int, len(c.Nodes))
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if !n.Type.IsGate() {
			continue
		}
		for _, f := range n.Fanins {
			if c.Nodes[f].Type.IsGate() {
				indeg[i]++
			}
		}
	}
	queue := make([]NodeID, 0, len(c.Nodes))
	for i := range c.Nodes {
		if c.Nodes[i].Type.IsGate() && indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	sort.Slice(queue, func(a, b int) bool { return queue[a] < queue[b] })
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		c.Order = append(c.Order, id)
		lvl := int32(0)
		for _, f := range c.Nodes[id].Fanins {
			if c.Nodes[f].Level > lvl {
				lvl = c.Nodes[f].Level
			}
		}
		c.Nodes[id].Level = lvl + 1
		for _, g := range c.Nodes[id].Fanouts {
			if c.Nodes[g].Type.IsGate() {
				indeg[g]--
				if indeg[g] == 0 {
					queue = append(queue, g)
				}
			}
		}
	}
	gateCount := 0
	for i := range c.Nodes {
		if c.Nodes[i].Type.IsGate() {
			gateCount++
		}
	}
	if len(c.Order) != gateCount {
		return nil, fmt.Errorf("circuit %s: combinational cycle detected (%d of %d gates ordered)",
			c.Name, len(c.Order), gateCount)
	}
	if len(c.Inputs) == 0 {
		return nil, fmt.Errorf("circuit %s: no primary inputs", c.Name)
	}
	if len(c.Outputs) == 0 {
		return nil, fmt.Errorf("circuit %s: no primary outputs", c.Name)
	}
	return c, nil
}
