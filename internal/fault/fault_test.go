package fault

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/iscas"
)

func TestUniverseCounts(t *testing.T) {
	// toy: a,b inputs; g = AND(a,b); out PO. 3 nodes, no multi-fanout.
	b := circuit.NewBuilder("toy")
	b.Input("a")
	b.Input("b")
	b.Gate("g", circuit.And, "a", "b")
	b.Output("g")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := Universe(c)
	if len(u) != 6 { // 3 stems x 2 polarities, no branches
		t.Fatalf("universe size %d, want 6", len(u))
	}
}

func TestUniverseBranchFaults(t *testing.T) {
	// a drives two gates -> branch faults appear on both pins.
	b := circuit.NewBuilder("fan")
	b.Input("a")
	b.Input("b")
	b.Gate("g1", circuit.And, "a", "b")
	b.Gate("g2", circuit.Or, "a", "b")
	b.Output("g1")
	b.Output("g2")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := Universe(c)
	// stems: 4 nodes x 2 = 8. a and b both have fanout 2 -> 2 pins x 2 gates x 2 pol = 8.
	if len(u) != 16 {
		t.Fatalf("universe size %d, want 16", len(u))
	}
	branches := 0
	for _, f := range u {
		if f.Pin >= 0 {
			branches++
		}
	}
	if branches != 8 {
		t.Fatalf("branch faults %d, want 8", branches)
	}
}

func TestCollapseAndGate(t *testing.T) {
	// AND(a,b): a s-a-0, b s-a-0 and g s-a-0 collapse into one class.
	b := circuit.NewBuilder("and")
	b.Input("a")
	b.Input("b")
	b.Gate("g", circuit.And, "a", "b")
	b.Output("g")
	c, _ := b.Build()
	reps := CollapsedUniverse(c)
	// Universe: 6. Merges: a0≡g0, b0≡g0 -> 2 merges -> 4 classes.
	if len(reps) != 4 {
		t.Fatalf("collapsed size %d, want 4", len(reps))
	}
}

func TestCollapseInverterChain(t *testing.T) {
	// a -> NOT n1 -> NOT n2 (PO): everything collapses to 2 classes.
	b := circuit.NewBuilder("chain")
	b.Input("a")
	b.Gate("n1", circuit.Not, "a")
	b.Gate("n2", circuit.Not, "n1")
	b.Output("n2")
	c, _ := b.Build()
	reps := CollapsedUniverse(c)
	if len(reps) != 2 {
		t.Fatalf("collapsed size %d, want 2", len(reps))
	}
}

func TestCollapseXorKeepsAll(t *testing.T) {
	b := circuit.NewBuilder("xor")
	b.Input("a")
	b.Input("b")
	b.Gate("g", circuit.Xor, "a", "b")
	b.Output("g")
	c, _ := b.Build()
	reps := CollapsedUniverse(c)
	if len(reps) != 6 {
		t.Fatalf("collapsed size %d, want 6 (XOR has no equivalences)", len(reps))
	}
}

func TestCollapseS27(t *testing.T) {
	c := iscas.MustLoad("s27")
	u := Universe(c)
	reps := Collapse(c, u)
	// 17 nodes -> 34 stem faults; branches on G14(2 sinks), G8(2), G11(3),
	// G12(2) -> 18 branch faults -> 52 total.
	if len(u) != 52 {
		t.Fatalf("s27 universe %d, want 52", len(u))
	}
	// 26 structural merges (hand-counted in the test comment below) -> 26.
	// AND G8: 2; OR G15: 2; OR G16: 2; NAND G9: 2; NOR G10,G11,G12,G13: 8;
	// NOT G14, G17: 4; DFF G5,G6,G7: 6. Total 26 merges.
	if len(reps) != 26 {
		t.Fatalf("s27 collapsed %d, want 26", len(reps))
	}
	// Representatives must be unique and drawn from the universe.
	seen := map[Fault]bool{}
	idx := map[Fault]bool{}
	for _, f := range u {
		idx[f] = true
	}
	for _, f := range reps {
		if seen[f] {
			t.Fatalf("duplicate representative %v", f.String(c))
		}
		seen[f] = true
		if !idx[f] {
			t.Fatalf("representative %v not in universe", f.String(c))
		}
	}
}

func TestFaultString(t *testing.T) {
	c := iscas.MustLoad("s27")
	g8, _ := c.Lookup("G8")
	f := Fault{Node: g8, Pin: -1, Stuck: 0}
	if got := f.String(c); got != "G8 s-a-0" {
		t.Fatalf("String = %q", got)
	}
	fb := Fault{Node: g8, Pin: 1, Stuck: 1}
	if got := fb.String(c); !strings.Contains(got, "G8.in1") || !strings.Contains(got, "s-a-1") {
		t.Fatalf("String = %q", got)
	}
}

func TestUniverseDeterministic(t *testing.T) {
	c := iscas.MustLoad("s27")
	a, b := Universe(c), Universe(c)
	if len(a) != len(b) {
		t.Fatal("sizes differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order differs")
		}
	}
}

func TestCollapseDominanceAndGate(t *testing.T) {
	// AND(a,b) -> g: output s-a-1 is dominated by the input s-a-1 faults and
	// must be dropped; output s-a-0 stays (it is the equivalence-class
	// representative of the input s-a-0 faults).
	b := circuit.NewBuilder("and")
	b.Input("a")
	b.Input("b")
	b.Gate("g", circuit.And, "a", "b")
	b.Output("g")
	c, _ := b.Build()
	reps := CollapsedUniverse(c)
	red := CollapseDominance(c, reps)
	if len(red) != len(reps)-1 {
		t.Fatalf("dominance kept %d of %d, want %d", len(red), len(reps), len(reps)-1)
	}
	g, _ := c.Lookup("g")
	for _, f := range red {
		if f.Node == g && f.Pin < 0 && f.Stuck == 1 {
			t.Fatal("dominated output s-a-1 not dropped")
		}
	}
}

func TestCollapseDominanceChainIsConservative(t *testing.T) {
	// AND feeding AND: once the first gate's output fault is dropped, the
	// second gate's output fault must NOT be dropped (its dominator is gone).
	b := circuit.NewBuilder("chain")
	b.Input("a")
	b.Input("b")
	b.Input("d")
	b.Gate("g1", circuit.And, "a", "b")
	b.Gate("g2", circuit.And, "g1", "d")
	b.Output("g2")
	c, _ := b.Build()
	reps := CollapsedUniverse(c)
	red := CollapseDominance(c, reps)
	g2, _ := c.Lookup("g2")
	found := false
	for _, f := range red {
		if f.Node == g2 && f.Pin < 0 && f.Stuck == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("g2 s-a-1 dropped although its dominator was already dropped")
	}
}

func TestCollapseDominanceXorUntouched(t *testing.T) {
	b := circuit.NewBuilder("xor")
	b.Input("a")
	b.Input("b")
	b.Gate("g", circuit.Xor, "a", "b")
	b.Output("g")
	c, _ := b.Build()
	reps := CollapsedUniverse(c)
	red := CollapseDominance(c, reps)
	if len(red) != len(reps) {
		t.Fatalf("XOR faults reduced: %d -> %d", len(reps), len(red))
	}
}

func TestCollapseDominanceCoverageImplication(t *testing.T) {
	// On s27, any sequence detecting all dominance-reduced faults must also
	// detect all equivalence-collapsed faults (that is the point of the
	// reduction). Verified with the paper's Table 1 sequence.
	c := iscas.MustLoad("s27")
	reps := CollapsedUniverse(c)
	red := CollapseDominance(c, reps)
	if len(red) >= len(reps) {
		t.Fatalf("no reduction on s27: %d vs %d", len(red), len(reps))
	}
	// The Table 1 sequence detects all of reps, hence trivially all of red;
	// the meaningful check is the other direction on a truncated sequence:
	// whenever all red faults are detected, all reps faults are detected.
	seq, err := simParse()
	if err != nil {
		t.Fatal(err)
	}
	for stop := 1; stop <= seq.Len(); stop++ {
		sub := seq.Slice(0, stop)
		outRed := fsimRun(c, sub, red)
		allRed := true
		for _, d := range outRed {
			if !d {
				allRed = false
				break
			}
		}
		if !allRed {
			continue
		}
		outAll := fsimRun(c, sub, reps)
		for i, d := range outAll {
			if !d {
				t.Fatalf("stop=%d: reduced list fully detected but %s missed",
					stop, reps[i].String(c))
			}
		}
	}
}
