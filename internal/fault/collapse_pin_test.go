package fault

import (
	"testing"

	"repro/internal/circuit"
)

// The tables below pin the exact stuck-at collapse output — representative
// identity and order, not just counts — so the FaultModel extraction is
// provably behavior-preserving: any change to the rules, the union-find
// tie-break (smaller universe index wins) or the universe order shows up as
// an exact-string diff here.

// collapseCase builds a circuit and states the exact expected representative
// list of Collapse(c, Universe(c)) in universe order, rendered via
// Fault.String.
type collapseCase struct {
	name  string
	build func() (*circuit.Circuit, error)
	want  []string
}

func twoInputGate(gt circuit.GateType) func() (*circuit.Circuit, error) {
	return func() (*circuit.Circuit, error) {
		b := circuit.NewBuilder("g2")
		b.Input("a")
		b.Input("b")
		b.Gate("g", gt, "a", "b")
		b.Output("g")
		return b.Build()
	}
}

func TestCollapsePinned(t *testing.T) {
	cases := []collapseCase{
		{
			// AND: input s-a-0 ≡ output s-a-0; the input stems (smaller
			// universe indices) survive as representatives.
			name:  "and2",
			build: twoInputGate(circuit.And),
			want:  []string{"a s-a-0", "a s-a-1", "b s-a-1", "g s-a-1"},
		},
		{
			// NAND: input s-a-0 ≡ output s-a-1.
			name:  "nand2",
			build: twoInputGate(circuit.Nand),
			want:  []string{"a s-a-0", "a s-a-1", "b s-a-1", "g s-a-0"},
		},
		{
			// OR: input s-a-1 ≡ output s-a-1.
			name:  "or2",
			build: twoInputGate(circuit.Or),
			want:  []string{"a s-a-0", "a s-a-1", "b s-a-0", "g s-a-0"},
		},
		{
			// NOR: input s-a-1 ≡ output s-a-0.
			name:  "nor2",
			build: twoInputGate(circuit.Nor),
			want:  []string{"a s-a-0", "a s-a-1", "b s-a-0", "g s-a-1"},
		},
		{
			// XOR has no structural equivalences: the whole universe survives.
			name:  "xor2",
			build: twoInputGate(circuit.Xor),
			want: []string{"a s-a-0", "a s-a-1", "b s-a-0", "b s-a-1",
				"g s-a-0", "g s-a-1"},
		},
		{
			// NOT: input s-a-v ≡ output s-a-¬v — both classes land on the input.
			name: "not",
			build: func() (*circuit.Circuit, error) {
				b := circuit.NewBuilder("not")
				b.Input("a")
				b.Gate("n", circuit.Not, "a")
				b.Output("n")
				return b.Build()
			},
			want: []string{"a s-a-0", "a s-a-1"},
		},
		{
			// BUF: input s-a-v ≡ output s-a-v.
			name: "buf",
			build: func() (*circuit.Circuit, error) {
				b := circuit.NewBuilder("buf")
				b.Input("a")
				b.Gate("n", circuit.Buf, "a")
				b.Output("n")
				return b.Build()
			},
			want: []string{"a s-a-0", "a s-a-1"},
		},
		{
			// DFF collapses like BUF across the clock edge.
			name: "dff",
			build: func() (*circuit.Circuit, error) {
				b := circuit.NewBuilder("dff")
				b.Input("a")
				b.DFF("q", "a")
				b.Output("q")
				return b.Build()
			},
			want: []string{"a s-a-0", "a s-a-1"},
		},
		{
			// Fanout: branch faults exist per sink pin; the controlling-value
			// branch fault of each gate collapses into the gate's output fault,
			// the non-controlling branch faults survive individually.
			name: "fanout",
			build: func() (*circuit.Circuit, error) {
				b := circuit.NewBuilder("fan")
				b.Input("a")
				b.Input("b")
				b.Gate("g1", circuit.And, "a", "b")
				b.Gate("g2", circuit.Or, "a", "b")
				b.Output("g1")
				b.Output("g2")
				return b.Build()
			},
			want: []string{
				"a s-a-0", "a s-a-1", "b s-a-0", "b s-a-1",
				"g1 s-a-0", "g1 s-a-1", "g2 s-a-0", "g2 s-a-1",
				"g1.in0(a) s-a-1", "g1.in1(b) s-a-1",
				"g2.in0(a) s-a-0", "g2.in1(b) s-a-0",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			reps := Collapse(c, Universe(c))
			got := make([]string, len(reps))
			for i, f := range reps {
				got[i] = f.String(c)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("collapsed = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("collapsed[%d] = %q, want %q (full: %v)", i, got[i], tc.want[i], got)
				}
			}
		})
	}
}

// TestCollapseDominancePinned pins CollapseDominance's per-gate-type drop
// decision on the equivalence-collapsed list: exactly the dominated output
// fault disappears, and it survives whenever any of its dominating input
// faults is absent from the input list.
func TestCollapseDominancePinned(t *testing.T) {
	cases := []struct {
		name    string
		gt      circuit.GateType
		dropped string   // the one fault dominance removes from the collapsed list
		keepIf  []string // input list missing one dominator: nothing may drop
	}{
		{
			name:    "and2",
			gt:      circuit.And,
			dropped: "g s-a-1",
			keepIf:  []string{"a s-a-0", "b s-a-1", "g s-a-1"}, // a s-a-1 absent
		},
		{
			name:    "nand2",
			gt:      circuit.Nand,
			dropped: "g s-a-0",
			keepIf:  []string{"a s-a-0", "b s-a-1", "g s-a-0"}, // a s-a-1 absent
		},
		{
			name:    "or2",
			gt:      circuit.Or,
			dropped: "g s-a-0",
			keepIf:  []string{"a s-a-1", "b s-a-0", "g s-a-0"}, // a s-a-0 absent
		},
		{
			name:    "nor2",
			gt:      circuit.Nor,
			dropped: "g s-a-1",
			keepIf:  []string{"a s-a-1", "b s-a-0", "g s-a-1"}, // a s-a-0 absent
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := twoInputGate(tc.gt)()
			if err != nil {
				t.Fatal(err)
			}
			byName := make(map[string]Fault)
			for _, f := range Universe(c) {
				byName[f.String(c)] = f
			}

			reps := Collapse(c, Universe(c))
			red := CollapseDominance(c, reps)
			if len(red) != len(reps)-1 {
				t.Fatalf("dominance kept %d of %d, want exactly one drop", len(red), len(reps))
			}
			for _, f := range red {
				if f.String(c) == tc.dropped {
					t.Fatalf("%s not dropped (kept: %d faults)", tc.dropped, len(red))
				}
			}

			// With a dominator missing, the output fault must survive.
			var partial []Fault
			for _, name := range tc.keepIf {
				f, ok := byName[name]
				if !ok {
					t.Fatalf("test fault %q not in universe", name)
				}
				partial = append(partial, f)
			}
			kept := CollapseDominance(c, partial)
			if len(kept) != len(partial) {
				t.Fatalf("dominance dropped from %v despite a missing dominator", tc.keepIf)
			}
		})
	}
}
