package fault

import (
	"reflect"
	"testing"

	"repro/internal/circuit"
)

func buildS27ish(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("m")
	b.Input("a")
	b.Input("b")
	b.Input("c")
	b.Gate("g1", circuit.And, "a", "b")
	b.Gate("g2", circuit.Or, "g1", "c")
	b.Gate("g3", circuit.Nand, "a", "g2")
	b.DFF("q", "g3")
	b.Gate("g4", circuit.Xor, "q", "c")
	b.Output("g4")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestModelByName(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"", "stuck-at"},
		{"stuck-at", "stuck-at"},
		{"stuck", "stuck-at"},
		{"transition", "transition"},
		{"bridge", "bridge"},
		{"bridging", "bridge"},
	} {
		m, err := ModelByName(tc.in)
		if err != nil {
			t.Fatalf("ModelByName(%q): %v", tc.in, err)
		}
		if m.Name() != tc.want {
			t.Fatalf("ModelByName(%q).Name() = %q, want %q", tc.in, m.Name(), tc.want)
		}
	}
	if _, err := ModelByName("delay"); err == nil {
		t.Fatal("ModelByName(delay): want error")
	}
	if got := len(ModelNames()); got != 3 {
		t.Fatalf("ModelNames() has %d entries, want 3", got)
	}
}

// TestStuckAtModelMatchesLegacy guards the refactor invariant: the StuckAt
// model behind the interface is the exact legacy Universe/Collapse pair.
func TestStuckAtModelMatchesLegacy(t *testing.T) {
	c := buildS27ish(t)
	m := StuckAt{}
	if !reflect.DeepEqual(m.Universe(c), Universe(c)) {
		t.Fatal("StuckAt.Universe differs from Universe")
	}
	if !reflect.DeepEqual(CollapsedUniverseFor(c, m), CollapsedUniverse(c)) {
		t.Fatal("CollapsedUniverseFor(StuckAt) differs from CollapsedUniverse")
	}
}

func TestTransitionUniverse(t *testing.T) {
	c := buildS27ish(t)
	u := Transition{}.Universe(c)
	if len(u) != 2*len(c.Nodes) {
		t.Fatalf("universe has %d faults, want %d", len(u), 2*len(c.Nodes))
	}
	for i, f := range u {
		if f.Kind != KindTransition || f.Pin != -1 || f.Node2 != 0 {
			t.Fatalf("fault %d = %+v: want stem-only transition fault", i, f)
		}
		if int(f.Node) != i/2 || f.Stuck != uint8(i%2) {
			t.Fatalf("fault %d = %+v: want node %d stuck %d (slow-fall then slow-rise per node)",
				i, f, i/2, i%2)
		}
	}
	// Collapse is identity (fresh slice, same content).
	col := Transition{}.Collapse(c, u)
	if !reflect.DeepEqual(col, u) {
		t.Fatal("transition collapse is not identity")
	}
	if &col[0] == &u[0] {
		t.Fatal("transition collapse aliases its input")
	}
	// String renderings.
	if got := u[1].String(c); got != "a slow-rise" {
		t.Fatalf("String = %q, want %q", got, "a slow-rise")
	}
	if got := u[0].String(c); got != "a slow-fall" {
		t.Fatalf("String = %q, want %q", got, "a slow-fall")
	}
}

func TestBridgingUniverse(t *testing.T) {
	c := buildS27ish(t)
	u := Bridging{}.Universe(c)
	if len(u) == 0 || len(u)%2 != 0 {
		t.Fatalf("universe has %d faults, want a positive even count", len(u))
	}
	seen := make(map[[2]circuit.NodeID]bool)
	for i := 0; i < len(u); i += 2 {
		a, o := u[i], u[i+1]
		if a.Kind != KindBridge || o.Kind != KindBridge {
			t.Fatalf("pair %d: not bridge faults: %+v %+v", i/2, a, o)
		}
		if a.Node != o.Node || a.Node2 != o.Node2 {
			t.Fatalf("pair %d: AND/OR nodes differ: %+v %+v", i/2, a, o)
		}
		if a.Stuck != 0 || o.Stuck != 1 {
			t.Fatalf("pair %d: want wired-AND (Stuck 0) then wired-OR (Stuck 1): %+v %+v", i/2, a, o)
		}
		if a.Node >= a.Node2 {
			t.Fatalf("pair %d: not canonical Node < Node2: %+v", i/2, a)
		}
		k := [2]circuit.NodeID{a.Node, a.Node2}
		if seen[k] {
			t.Fatalf("pair %d duplicated: %+v", i/2, a)
		}
		seen[k] = true
		// Sibling pairs only: the two stems must share a sink gate.
		shared := false
		for _, fo := range c.Nodes[a.Node].Fanouts {
			for _, fo2 := range c.Nodes[a.Node2].Fanouts {
				if fo == fo2 {
					shared = true
				}
			}
		}
		if !shared {
			t.Fatalf("pair %d (%s): nodes share no sink gate", i/2, a.String(c))
		}
		// Exclusion: neither stem combinationally reaches the other.
		r := newReach(c)
		if r.reaches(a.Node, a.Node2) || r.reaches(a.Node2, a.Node) {
			t.Fatalf("pair %d (%s): combinationally connected pair not excluded", i/2, a.String(c))
		}
	}
	// Determinism.
	if again := (Bridging{}).Universe(c); !reflect.DeepEqual(again, u) {
		t.Fatal("bridge universe enumeration is not deterministic")
	}
}

// TestBridgingReachExclusion builds g = AND(a, b); h = OR(g, a): the sibling
// pair (g, a) of h must be excluded because a combinationally reaches g, while
// (a, b) under g survives.
func TestBridgingReachExclusion(t *testing.T) {
	b := circuit.NewBuilder("rx")
	b.Input("a")
	b.Input("b")
	b.Gate("g", circuit.And, "a", "b")
	b.Gate("h", circuit.Or, "g", "a")
	b.Output("h")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := Bridging{}.Universe(c)
	if len(u) != 2 {
		names := make([]string, len(u))
		for i, f := range u {
			names[i] = f.String(c)
		}
		t.Fatalf("universe = %v, want exactly the a~b pair", names)
	}
	aID, _ := c.Lookup("a")
	bID, _ := c.Lookup("b")
	if u[0].Node != aID || u[0].Node2 != bID {
		t.Fatalf("kept pair = %s, want a~b", u[0].String(c))
	}
	if got := u[0].String(c); got != "a~b bridge-AND" {
		t.Fatalf("String = %q, want %q", got, "a~b bridge-AND")
	}
	if got := u[1].String(c); got != "a~b bridge-OR" {
		t.Fatalf("String = %q, want %q", got, "a~b bridge-OR")
	}
}

// TestBridgingDFFBreaksReach: a short across a flip-flop boundary is legal —
// the DFF delays the feedback to the next cycle, so the pair is kept.
func TestBridgingDFFBreaksReach(t *testing.T) {
	b := circuit.NewBuilder("dffr")
	b.Input("a")
	b.Gate("g", circuit.And, "a", "q")
	b.DFF("q", "g")
	b.Output("g")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Sibling pair (a, q) of g: q's only fanout path back toward a's cone goes
	// through the DFF, so neither reaches the other combinationally.
	u := Bridging{}.Universe(c)
	if len(u) != 2 {
		t.Fatalf("universe has %d faults, want 2 (the a~q pair)", len(u))
	}
}

// TestBridgingCap: with a binding cap the model keeps the SCOAP-cheapest
// pairs; with a non-binding cap it keeps all; the capped set is a subset of
// the uncapped one.
func TestBridgingCap(t *testing.T) {
	// A gate row over shared inputs yields many sibling pairs.
	b := circuit.NewBuilder("cap")
	ins := []string{"a", "b", "c", "d", "e"}
	for _, n := range ins {
		b.Input(n)
	}
	b.Gate("g1", circuit.And, "a", "b", "c", "d", "e")
	b.Gate("g2", circuit.Or, "a", "b", "c")
	b.Output("g1")
	b.Output("g2")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	all := Bridging{MaxPairs: -1}.Universe(c)
	if len(all) != 2*10 { // C(5,2) sibling pairs under g1; g2's pairs are dupes
		t.Fatalf("uncapped universe has %d faults, want 20", len(all))
	}
	capped := Bridging{MaxPairs: 3}.Universe(c)
	if len(capped) != 2*3 {
		t.Fatalf("capped universe has %d faults, want 6", len(capped))
	}
	allPairs := make(map[[2]circuit.NodeID]bool)
	for _, f := range all {
		allPairs[[2]circuit.NodeID{f.Node, f.Node2}] = true
	}
	for _, f := range capped {
		if !allPairs[[2]circuit.NodeID{f.Node, f.Node2}] {
			t.Fatalf("capped pair %s not in uncapped universe", f.String(c))
		}
	}
	if again := (Bridging{MaxPairs: 3}).Universe(c); !reflect.DeepEqual(again, capped) {
		t.Fatal("capped enumeration is not deterministic")
	}
	// Default cap applies for the zero value.
	if got := (Bridging{}).maxPairs(); got != DefaultBridgePairs {
		t.Fatalf("zero-value MaxPairs resolves to %d, want %d", got, DefaultBridgePairs)
	}
}

// TestBridgingCollapseIdentity: bridge faults have no structural
// equivalences, so Collapse must return a fresh copy of its input in order.
func TestBridgingCollapseIdentity(t *testing.T) {
	c := buildS27ish(t)
	m := Bridging{}
	u := m.Universe(c)
	got := m.Collapse(c, u)
	if !reflect.DeepEqual(got, u) {
		t.Fatal("bridge collapse changed the fault list")
	}
	if len(u) > 0 && &got[0] == &u[0] {
		t.Fatal("bridge collapse aliases its input slice")
	}
	if cu := CollapsedUniverseFor(c, m); !reflect.DeepEqual(cu, u) {
		t.Fatal("CollapsedUniverseFor(Bridging) != identity over the universe")
	}
}
