package fault

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/scoap"
)

// Model is a pluggable fault model: it enumerates a deterministic fault
// universe for a circuit and applies its model-specific collapse rules. The
// enumeration order is part of the contract — fault-group assignment, golden
// pins and the memo/store identities all depend on it.
type Model interface {
	// Name is the canonical spelling used by CLIs, job requests and cache
	// identities ("stuck-at", "transition", "bridge").
	Name() string
	// Universe enumerates the model's full fault list in deterministic order.
	Universe(c *circuit.Circuit) []Fault
	// Collapse reduces a universe (or a subset of it, in universe order) to
	// representatives under the model's equivalence rules.
	Collapse(c *circuit.Circuit, faults []Fault) []Fault
}

// StuckAt is the classic single stuck-at model: the package's historical
// Universe/Collapse pair behind the Model interface.
type StuckAt struct{}

// Name implements Model.
func (StuckAt) Name() string { return "stuck-at" }

// Universe implements Model.
func (StuckAt) Universe(c *circuit.Circuit) []Fault { return Universe(c) }

// Collapse implements Model.
func (StuckAt) Collapse(c *circuit.Circuit, faults []Fault) []Fault { return Collapse(c, faults) }

// Transition is the launch-on-capture transition fault model: per stem one
// slow-to-fall and one slow-to-rise fault. A fault is activated in cycle t
// when the fault-free value transitions into Stuck between t-1 and t; the
// slow gate then still presents the old value ¬Stuck during cycle t, and the
// fault is detected when that wrong value reaches a primary output (launch
// at t-1, capture at t — consecutive weighted vectors, which is exactly what
// the paper's generator applies).
type Transition struct{}

// Name implements Model.
func (Transition) Name() string { return "transition" }

// Universe implements Model: for every node slow-to-fall then slow-to-rise,
// stem only (a slow branch is indistinguishable from a slow stem under
// zero-delay cycle simulation up to which sinks see the stale value; the
// stem form is the conservative superset site).
func (Transition) Universe(c *circuit.Circuit) []Fault {
	out := make([]Fault, 0, 2*len(c.Nodes))
	for id := range c.Nodes {
		out = append(out,
			Fault{Node: circuit.NodeID(id), Pin: -1, Stuck: 0, Kind: KindTransition},
			Fault{Node: circuit.NodeID(id), Pin: -1, Stuck: 1, Kind: KindTransition})
	}
	return out
}

// Collapse implements Model. Transition-fault equivalence is deliberately
// identity: the stuck-at structural rules do not carry over (a slow-to-rise
// on an AND input is not equivalent to one on its output — activation
// depends on the previous cycle's value, which differs per line).
func (Transition) Collapse(c *circuit.Circuit, faults []Fault) []Fault {
	return append([]Fault(nil), faults...)
}

// DefaultBridgePairs caps the bridging universe at this many node pairs
// (two faults each) unless Bridging.MaxPairs overrides it. Realistic bridge
// lists come from extracted layout adjacency; without layout, sibling-pair
// enumeration on large circuits over-approximates wildly, so the default
// keeps the universe in the same order of magnitude as the stuck-at one.
const DefaultBridgePairs = 1024

// Bridging is the 2-node bridging fault model: wired-AND and wired-OR shorts
// between pairs of stems. Candidate pairs are the sibling fanins of each
// gate (lines that are physically routed to a common sink — the standard
// no-layout proxy for adjacency), excluding pairs where either node is
// combinationally reachable from the other (such a short forms a
// combinational loop within the cycle, which zero-delay simulation cannot
// resolve). When more pairs survive than MaxPairs, the most testable pairs
// are kept, ranked by SCOAP controllability+observability.
type Bridging struct {
	// MaxPairs bounds the number of bridged node pairs (0 = DefaultBridgePairs,
	// negative = unlimited).
	MaxPairs int
}

// Name implements Model.
func (Bridging) Name() string { return "bridge" }

// Universe implements Model: per kept pair wired-AND then wired-OR, pairs in
// SCOAP rank order (most testable first) when the cap binds, enumeration
// order otherwise.
func (m Bridging) Universe(c *circuit.Circuit) []Fault {
	pairs := bridgePairs(c, m.maxPairs())
	out := make([]Fault, 0, 2*len(pairs))
	for _, p := range pairs {
		out = append(out,
			Fault{Node: p[0], Node2: p[1], Pin: -1, Stuck: 0, Kind: KindBridge},
			Fault{Node: p[0], Node2: p[1], Pin: -1, Stuck: 1, Kind: KindBridge})
	}
	return out
}

// Collapse implements Model. Bridge faults have no structural equivalences
// (each pair's wired value depends on both drivers' values): identity.
func (Bridging) Collapse(c *circuit.Circuit, faults []Fault) []Fault {
	return append([]Fault(nil), faults...)
}

func (m Bridging) maxPairs() int {
	switch {
	case m.MaxPairs == 0:
		return DefaultBridgePairs
	case m.MaxPairs < 0:
		return int(^uint(0) >> 1) // unlimited
	default:
		return m.MaxPairs
	}
}

// bridgePairs enumerates candidate bridged pairs: distinct sibling fanins of
// each gate, canonicalized (smaller NodeID first) and deduplicated in
// first-occurrence order. When more than maxPairs candidates exist the
// candidates are stably re-ranked by SCOAP testability (CC0+CC1+CO summed
// over both nodes, ascending) before the reachability filter, so the cap
// keeps the most testable pairs. Pairs where one node can combinationally
// reach the other are excluded.
func bridgePairs(c *circuit.Circuit, maxPairs int) [][2]circuit.NodeID {
	type pairKey struct{ a, b circuit.NodeID }
	seen := make(map[pairKey]bool)
	var cands [][2]circuit.NodeID
	for id := range c.Nodes {
		fi := c.Nodes[id].Fanins
		for i := 0; i < len(fi); i++ {
			for j := i + 1; j < len(fi); j++ {
				a, b := fi[i], fi[j]
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				k := pairKey{a, b}
				if seen[k] {
					continue
				}
				seen[k] = true
				cands = append(cands, [2]circuit.NodeID{a, b})
			}
		}
	}
	if len(cands) > maxPairs {
		meas := scoap.Analyze(c, logic.X)
		score := func(id circuit.NodeID) int64 {
			return int64(meas.CC0[id]) + int64(meas.CC1[id]) + int64(meas.CO[id])
		}
		sort.SliceStable(cands, func(i, j int) bool {
			si := score(cands[i][0]) + score(cands[i][1])
			sj := score(cands[j][0]) + score(cands[j][1])
			return si < sj
		})
	}
	r := newReach(c)
	var kept [][2]circuit.NodeID
	for _, p := range cands {
		if len(kept) >= maxPairs {
			break
		}
		if r.reaches(p[0], p[1]) || r.reaches(p[1], p[0]) {
			continue
		}
		kept = append(kept, p)
	}
	return kept
}

// reach answers same-cycle combinational reachability queries: src reaches
// dst when a fanout path exists that never passes through a flip-flop (a
// DFF's output changes only at the clock edge, so influence through it lands
// in the next cycle). Visit marks are epoch-stamped so repeated queries
// reuse one allocation.
type reach struct {
	c     *circuit.Circuit
	mark  []int32
	epoch int32
	stack []circuit.NodeID
}

func newReach(c *circuit.Circuit) *reach {
	return &reach{c: c, mark: make([]int32, len(c.Nodes))}
}

func (r *reach) reaches(src, dst circuit.NodeID) bool {
	// Combinational influence flows strictly upward in level.
	if r.c.Nodes[src].Level >= r.c.Nodes[dst].Level {
		return false
	}
	r.epoch++
	r.stack = append(r.stack[:0], src)
	r.mark[src] = r.epoch
	for len(r.stack) > 0 {
		n := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		for _, f := range r.c.Nodes[n].Fanouts {
			if r.c.Nodes[f].Type == circuit.DFF {
				continue // next-cycle influence only
			}
			if f == dst {
				return true
			}
			if r.mark[f] == r.epoch || r.c.Nodes[f].Level >= r.c.Nodes[dst].Level {
				continue
			}
			r.mark[f] = r.epoch
			r.stack = append(r.stack, f)
		}
	}
	return false
}

// ModelByName resolves a CLI/config spelling to a Model. The empty string is
// the stuck-at default, mirroring the zero value of Fault.Kind.
func ModelByName(name string) (Model, error) {
	switch name {
	case "", "stuck-at", "stuck":
		return StuckAt{}, nil
	case "transition":
		return Transition{}, nil
	case "bridge", "bridging":
		return Bridging{}, nil
	default:
		return nil, fmt.Errorf("fault: unknown fault model %q (want stuck-at, transition or bridge)", name)
	}
}

// ModelNames lists the canonical model names in presentation order.
func ModelNames() []string { return []string{"stuck-at", "transition", "bridge"} }

// CollapsedUniverseFor is shorthand for m.Collapse(c, m.Universe(c)) — the
// model-generic counterpart of CollapsedUniverse.
func CollapsedUniverseFor(c *circuit.Circuit, m Model) []Fault {
	return m.Collapse(c, m.Universe(c))
}
