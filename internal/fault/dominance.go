package fault

import "repro/internal/circuit"

// CollapseDominance applies the classic checkpoint-style dominance reduction
// on top of equivalence collapsing: for a gate with a controlling value c
// and output inversion, the output fault s-a-(¬c ⊕ inv) dominates every
// input fault s-a-¬c, so the output fault can be dropped whenever all the
// gate's input faults are in the list (detecting any input s-a-¬c implies
// detecting the dominated output fault).
//
// The reduction is sound for single-output combinational cones and is the
// standard trade-off used by fault simulators to shrink the target list; the
// undropped faults' coverage implies the dropped ones'. Like all dominance
// reductions it slightly changes reported fault counts, so the experiment
// pipeline uses plain equivalence collapsing and exposes this as an optional
// further reduction.
func CollapseDominance(c *circuit.Circuit, faults []Fault) []Fault {
	index := make(map[Fault]bool, len(faults))
	for _, f := range faults {
		index[f] = true
	}
	drop := make(map[Fault]bool)
	// inputFault mirrors the resolution rule of Collapse.
	inputFault := func(id circuit.NodeID, pin int, v uint8) (Fault, bool) {
		drv := c.Nodes[id].Fanins[pin]
		var f Fault
		if len(c.Nodes[drv].Fanouts) > 1 {
			f = Fault{Node: id, Pin: pin, Stuck: v}
		} else {
			f = Fault{Node: drv, Pin: -1, Stuck: v}
		}
		return f, index[f]
	}
	for id := range c.Nodes {
		n := &c.Nodes[id]
		nid := circuit.NodeID(id)
		var ctrl, domOut uint8
		switch n.Type {
		case circuit.And:
			ctrl, domOut = 0, 1 // output s-a-1 dominated by any input s-a-1
		case circuit.Nand:
			ctrl, domOut = 0, 0
		case circuit.Or:
			ctrl, domOut = 1, 0
		case circuit.Nor:
			ctrl, domOut = 1, 1
		default:
			continue
		}
		// The dominated fault is output s-a-domOut; the dominators are the
		// input faults s-a-(¬ctrl).
		out := Fault{Node: nid, Pin: -1, Stuck: domOut}
		if !index[out] || drop[out] {
			continue
		}
		all := true
		for pin := range n.Fanins {
			f, ok := inputFault(nid, pin, 1-ctrl)
			if !ok || drop[f] {
				all = false
				break
			}
			_ = f
		}
		if all {
			drop[out] = true
		}
	}
	var kept []Fault
	for _, f := range faults {
		if !drop[f] {
			kept = append(kept, f)
		}
	}
	return kept
}
