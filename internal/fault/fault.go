// Package fault defines the single stuck-at fault model on gate-level
// netlists: stem faults on every node output and branch faults on every gate
// (and flip-flop) input pin whose driving line has fanout greater than one.
// It also provides standard structural equivalence collapsing.
package fault

import (
	"fmt"

	"repro/internal/circuit"
)

// Fault is a single stuck-at fault.
//
// Pin == -1 places the fault on the output stem of Node. Pin >= 0 places it
// on the Pin-th fanin branch of Node (only meaningful when that fanin's
// driver has fanout > 1; branch faults on fanout-free lines are identical to
// the driver's stem fault and are not enumerated).
type Fault struct {
	Node  circuit.NodeID
	Pin   int
	Stuck uint8 // 0 or 1
}

// String renders the fault using node names, e.g. "G11 s-a-0" or
// "G8.in1(G6) s-a-1".
func (f Fault) String(c *circuit.Circuit) string {
	n := &c.Nodes[f.Node]
	if f.Pin < 0 {
		return fmt.Sprintf("%s s-a-%d", n.Name, f.Stuck)
	}
	return fmt.Sprintf("%s.in%d(%s) s-a-%d", n.Name, f.Pin, c.Nodes[n.Fanins[f.Pin]].Name, f.Stuck)
}

// Universe enumerates the full (uncollapsed) stuck-at fault list of c in a
// deterministic order: for every node both stem faults, then for every node
// with multi-fanout drivers both branch faults per such pin.
func Universe(c *circuit.Circuit) []Fault {
	var out []Fault
	for id := range c.Nodes {
		out = append(out,
			Fault{Node: circuit.NodeID(id), Pin: -1, Stuck: 0},
			Fault{Node: circuit.NodeID(id), Pin: -1, Stuck: 1})
	}
	for id := range c.Nodes {
		n := &c.Nodes[id]
		for pin, f := range n.Fanins {
			if len(c.Nodes[f].Fanouts) > 1 {
				out = append(out,
					Fault{Node: circuit.NodeID(id), Pin: pin, Stuck: 0},
					Fault{Node: circuit.NodeID(id), Pin: pin, Stuck: 1})
			}
		}
	}
	return out
}

// Collapse returns the equivalence-collapsed representatives of faults
// (which must be the Universe order or a subset of it), using the classic
// structural rules:
//
//	AND : any input s-a-0 ≡ output s-a-0      NAND: any input s-a-0 ≡ output s-a-1
//	OR  : any input s-a-1 ≡ output s-a-1      NOR : any input s-a-1 ≡ output s-a-0
//	BUF/DFF: input s-a-v ≡ output s-a-v       NOT : input s-a-v ≡ output s-a-¬v
//
// "Input s-a-v" means the branch fault on that pin when the driver has
// fanout > 1, and the driver's stem fault otherwise.
func Collapse(c *circuit.Circuit, faults []Fault) []Fault {
	index := make(map[Fault]int, len(faults))
	for i, f := range faults {
		index[f] = i
	}
	parent := make([]int, len(faults))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Keep the smaller index as representative so output order is stable.
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	// inputFault resolves "fault v on pin `pin` of node id" to the actual
	// fault in the universe (branch fault or driver stem fault).
	inputFault := func(id circuit.NodeID, pin int, v uint8) (int, bool) {
		drv := c.Nodes[id].Fanins[pin]
		var f Fault
		if len(c.Nodes[drv].Fanouts) > 1 {
			f = Fault{Node: id, Pin: pin, Stuck: v}
		} else {
			f = Fault{Node: drv, Pin: -1, Stuck: v}
		}
		i, ok := index[f]
		return i, ok
	}
	outFault := func(id circuit.NodeID, v uint8) (int, bool) {
		i, ok := index[Fault{Node: id, Pin: -1, Stuck: v}]
		return i, ok
	}
	for id := range c.Nodes {
		n := &c.Nodes[id]
		nid := circuit.NodeID(id)
		var ctrl, outv uint8
		switch n.Type {
		case circuit.And:
			ctrl, outv = 0, 0
		case circuit.Nand:
			ctrl, outv = 0, 1
		case circuit.Or:
			ctrl, outv = 1, 1
		case circuit.Nor:
			ctrl, outv = 1, 0
		case circuit.Buf, circuit.DFF:
			for v := uint8(0); v <= 1; v++ {
				if a, ok := inputFault(nid, 0, v); ok {
					if b, ok := outFault(nid, v); ok {
						union(a, b)
					}
				}
			}
			continue
		case circuit.Not:
			for v := uint8(0); v <= 1; v++ {
				if a, ok := inputFault(nid, 0, v); ok {
					if b, ok := outFault(nid, 1-v); ok {
						union(a, b)
					}
				}
			}
			continue
		default:
			continue // Input, Xor, Xnor: no structural equivalences
		}
		ob, okOut := outFault(nid, outv)
		if !okOut {
			continue
		}
		for pin := range n.Fanins {
			if a, ok := inputFault(nid, pin, ctrl); ok {
				union(a, ob)
			}
		}
	}
	var reps []Fault
	for i := range faults {
		if find(i) == i {
			reps = append(reps, faults[i])
		}
	}
	return reps
}

// CollapsedUniverse is shorthand for Collapse(c, Universe(c)).
func CollapsedUniverse(c *circuit.Circuit) []Fault {
	return Collapse(c, Universe(c))
}
