// Package fault defines the fault models on gate-level netlists. The default
// model is the single stuck-at fault: stem faults on every node output and
// branch faults on every gate (and flip-flop) input pin whose driving line
// has fanout greater than one, with standard structural equivalence
// collapsing. Launch-on-capture transition faults and 2-node AND/OR bridging
// faults are available behind the Model interface (see model.go).
package fault

import (
	"fmt"

	"repro/internal/circuit"
)

// Fault kinds. The zero value is the single stuck-at fault, so every
// pre-existing Fault literal, map key and wire encoding keeps its meaning.
const (
	// KindStuckAt is a single stuck-at fault (stem or fanout branch).
	KindStuckAt uint8 = iota
	// KindTransition is a launch-on-capture transition fault on a stem
	// (Pin == -1 always). Stuck is the transition's destination value:
	// Stuck == 1 is slow-to-rise (a 0→1 transition holds the old 0 for one
	// cycle), Stuck == 0 is slow-to-fall.
	KindTransition
	// KindBridge is a 2-node bridging fault between the stems Node and Node2
	// (canonical order Node < Node2, Pin == -1 always). Stuck selects the
	// resolution function: Stuck == 0 is wired-AND, Stuck == 1 is wired-OR.
	KindBridge
)

// Fault is a single fault under one of the supported models; Kind selects
// the model (the zero value is stuck-at).
//
// For stuck-at faults, Pin == -1 places the fault on the output stem of
// Node and Pin >= 0 on the Pin-th fanin branch of Node (only meaningful when
// that fanin's driver has fanout > 1; branch faults on fanout-free lines are
// identical to the driver's stem fault and are not enumerated). Transition
// and bridge faults are stem-only (Pin == -1); bridge faults carry the
// second bridged stem in Node2.
type Fault struct {
	Node  circuit.NodeID
	Pin   int
	Stuck uint8          // 0 or 1
	Kind  uint8          // KindStuckAt (zero), KindTransition or KindBridge
	Node2 circuit.NodeID // second stem of a bridge fault; 0 otherwise
}

// String renders the fault using node names, e.g. "G11 s-a-0",
// "G8.in1(G6) s-a-1", "G11 slow-rise" or "G6~G11 bridge-OR".
func (f Fault) String(c *circuit.Circuit) string {
	n := &c.Nodes[f.Node]
	switch f.Kind {
	case KindTransition:
		if f.Stuck == 1 {
			return n.Name + " slow-rise"
		}
		return n.Name + " slow-fall"
	case KindBridge:
		op := "AND"
		if f.Stuck == 1 {
			op = "OR"
		}
		return fmt.Sprintf("%s~%s bridge-%s", n.Name, c.Nodes[f.Node2].Name, op)
	}
	if f.Pin < 0 {
		return fmt.Sprintf("%s s-a-%d", n.Name, f.Stuck)
	}
	return fmt.Sprintf("%s.in%d(%s) s-a-%d", n.Name, f.Pin, c.Nodes[n.Fanins[f.Pin]].Name, f.Stuck)
}

// Universe enumerates the full (uncollapsed) stuck-at fault list of c in a
// deterministic order: for every node both stem faults, then for every node
// with multi-fanout drivers both branch faults per such pin.
func Universe(c *circuit.Circuit) []Fault {
	var out []Fault
	for id := range c.Nodes {
		out = append(out,
			Fault{Node: circuit.NodeID(id), Pin: -1, Stuck: 0},
			Fault{Node: circuit.NodeID(id), Pin: -1, Stuck: 1})
	}
	for id := range c.Nodes {
		n := &c.Nodes[id]
		for pin, f := range n.Fanins {
			if len(c.Nodes[f].Fanouts) > 1 {
				out = append(out,
					Fault{Node: circuit.NodeID(id), Pin: pin, Stuck: 0},
					Fault{Node: circuit.NodeID(id), Pin: pin, Stuck: 1})
			}
		}
	}
	return out
}

// Collapse returns the equivalence-collapsed representatives of faults
// (which must be the Universe order or a subset of it), using the classic
// structural rules:
//
//	AND : any input s-a-0 ≡ output s-a-0      NAND: any input s-a-0 ≡ output s-a-1
//	OR  : any input s-a-1 ≡ output s-a-1      NOR : any input s-a-1 ≡ output s-a-0
//	BUF/DFF: input s-a-v ≡ output s-a-v       NOT : input s-a-v ≡ output s-a-¬v
//
// "Input s-a-v" means the branch fault on that pin when the driver has
// fanout > 1, and the driver's stem fault otherwise.
func Collapse(c *circuit.Circuit, faults []Fault) []Fault {
	index := make(map[Fault]int, len(faults))
	for i, f := range faults {
		index[f] = i
	}
	parent := make([]int, len(faults))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Keep the smaller index as representative so output order is stable.
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	// inputFault resolves "fault v on pin `pin` of node id" to the actual
	// fault in the universe (branch fault or driver stem fault).
	inputFault := func(id circuit.NodeID, pin int, v uint8) (int, bool) {
		drv := c.Nodes[id].Fanins[pin]
		var f Fault
		if len(c.Nodes[drv].Fanouts) > 1 {
			f = Fault{Node: id, Pin: pin, Stuck: v}
		} else {
			f = Fault{Node: drv, Pin: -1, Stuck: v}
		}
		i, ok := index[f]
		return i, ok
	}
	outFault := func(id circuit.NodeID, v uint8) (int, bool) {
		i, ok := index[Fault{Node: id, Pin: -1, Stuck: v}]
		return i, ok
	}
	for id := range c.Nodes {
		n := &c.Nodes[id]
		nid := circuit.NodeID(id)
		var ctrl, outv uint8
		switch n.Type {
		case circuit.And:
			ctrl, outv = 0, 0
		case circuit.Nand:
			ctrl, outv = 0, 1
		case circuit.Or:
			ctrl, outv = 1, 1
		case circuit.Nor:
			ctrl, outv = 1, 0
		case circuit.Buf, circuit.DFF:
			for v := uint8(0); v <= 1; v++ {
				if a, ok := inputFault(nid, 0, v); ok {
					if b, ok := outFault(nid, v); ok {
						union(a, b)
					}
				}
			}
			continue
		case circuit.Not:
			for v := uint8(0); v <= 1; v++ {
				if a, ok := inputFault(nid, 0, v); ok {
					if b, ok := outFault(nid, 1-v); ok {
						union(a, b)
					}
				}
			}
			continue
		default:
			continue // Input, Xor, Xnor: no structural equivalences
		}
		ob, okOut := outFault(nid, outv)
		if !okOut {
			continue
		}
		for pin := range n.Fanins {
			if a, ok := inputFault(nid, pin, ctrl); ok {
				union(a, ob)
			}
		}
	}
	var reps []Fault
	for i := range faults {
		if find(i) == i {
			reps = append(reps, faults[i])
		}
	}
	return reps
}

// CollapsedUniverse is shorthand for Collapse(c, Universe(c)).
func CollapsedUniverse(c *circuit.Circuit) []Fault {
	return Collapse(c, Universe(c))
}
