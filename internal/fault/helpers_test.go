package fault

import (
	"repro/internal/circuit"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/sim"
)

// simParse and fsimRun keep the dominance test free of an import cycle with
// package fsim by using a minimal scalar fault simulator local to the tests.
func simParse() (*sim.Sequence, error) {
	return sim.ParseSequence(iscas.S27TestSequence)
}

// fsimRun is a tiny scalar sequential fault simulator sufficient for the
// dominance coverage-implication test.
func fsimRun(c *circuit.Circuit, seq *sim.Sequence, faults []Fault) []bool {
	det := make([]bool, len(faults))
	good := trace(c, seq, nil)
	for i := range faults {
		bad := trace(c, seq, &faults[i])
		for u := range good {
			for _, id := range c.Outputs {
				g, b := good[u][id], bad[u][id]
				if g.IsBinary() && b.IsBinary() && g != b {
					det[i] = true
				}
			}
		}
	}
	return det
}

func trace(c *circuit.Circuit, seq *sim.Sequence, f *Fault) [][]logic.V {
	v := make([]logic.V, len(c.Nodes))
	state := make([]logic.V, len(c.DFFs))
	for i := range state {
		state[i] = logic.X
	}
	inject := func(id circuit.NodeID, x logic.V) logic.V {
		if f != nil && f.Pin < 0 && f.Node == id {
			return logic.V(f.Stuck)
		}
		return x
	}
	var out [][]logic.V
	for u := 0; u < seq.Len(); u++ {
		for k, id := range c.Inputs {
			v[id] = inject(id, seq.At(u, k))
		}
		for k, id := range c.DFFs {
			v[id] = inject(id, state[k])
		}
		for _, id := range c.Order {
			n := &c.Nodes[id]
			in := make([]logic.V, len(n.Fanins))
			for k, fn := range n.Fanins {
				in[k] = v[fn]
				if f != nil && f.Pin == k && f.Node == id {
					in[k] = logic.V(f.Stuck)
				}
			}
			v[id] = inject(id, sim.Eval(n.Type, in))
		}
		snap := make([]logic.V, len(v))
		copy(snap, v)
		out = append(out, snap)
		for k, id := range c.DFFs {
			d := v[c.Nodes[id].Fanins[0]]
			if f != nil && f.Node == id && f.Pin == 0 {
				d = logic.V(f.Stuck)
			}
			state[k] = d
		}
	}
	return out
}
