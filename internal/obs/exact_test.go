package obs

import (
	"testing"
	"testing/quick"

	"repro/internal/fsim"
	"repro/internal/randutil"
)

func TestExactCoverBeatsGreedyOnClassicInstance(t *testing.T) {
	// The classic greedy-suboptimal set-cover family: elements 1..6,
	// S1={1,2,3,4} (greedy bait), S2={1,2,5}, S3={3,4,6}, S4={5,6}.
	// Optimum is {S2∪S3... } — pick lines: line 10 covers {0,1,2,3},
	// line 11 covers {0,1,4}, line 12 covers {2,3,5}, line 13 covers {4,5}.
	// Greedy takes 10 then needs 13 and one of 11/12 -> possibly 3 lines;
	// optimal is {11, 12} with... 11∪12 = {0,1,2,3,4,5}: 2 lines.
	op := make([]fsim.Bitset, 6)
	for i := range op {
		op[i] = fsim.NewBitset(16)
	}
	set := func(line int, faults ...int) {
		for _, f := range faults {
			op[f].Set(line)
		}
	}
	set(10, 0, 1, 2, 3)
	set(11, 0, 1, 4)
	set(12, 2, 3, 5)
	set(13, 4, 5)
	undet := []bool{true, true, true, true, true, true}
	exactLines, exactCovered := ExactCover(op, undet, 16)
	if exactCovered != 6 {
		t.Fatalf("exact covered %d of 6", exactCovered)
	}
	if len(exactLines) != 2 {
		t.Fatalf("exact used %d lines, optimum is 2 (%v)", len(exactLines), exactLines)
	}
	greedyLines, _ := GreedyCover(op, undet, 16)
	if len(greedyLines) < len(exactLines) {
		t.Fatalf("greedy (%d) beat exact (%d)?", len(greedyLines), len(exactLines))
	}
}

func TestExactNeverWorseThanGreedy(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := randutil.New(seed)
		nf := 1 + rng.Intn(10)
		nl := 1 + rng.Intn(12)
		op := make([]fsim.Bitset, nf)
		undet := make([]bool, nf)
		for i := range op {
			op[i] = fsim.NewBitset(64)
			undet[i] = true
			// Every fault coverable by at least one line.
			op[i].Set(rng.Intn(nl))
			for l := 0; l < nl; l++ {
				if rng.Intn(3) == 0 {
					op[i].Set(l)
				}
			}
		}
		exactLines, exactCov := ExactCover(op, undet, 64)
		greedyLines, greedyCov := GreedyCover(op, undet, 64)
		if exactCov != greedyCov {
			return false
		}
		if len(exactLines) > len(greedyLines) {
			return false
		}
		// The exact cover must actually cover everything it claims.
		for i := range op {
			hit := false
			for _, n := range exactLines {
				if op[i].Get(int(n)) {
					hit = true
					break
				}
			}
			if !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestExactCoverFallsBackOnLargeInstances(t *testing.T) {
	n := ExactCoverLimit + 10
	op := make([]fsim.Bitset, n)
	undet := make([]bool, n)
	for i := range op {
		op[i] = fsim.NewBitset(128)
		op[i].Set(i) // one private line each: cover needs n lines
		undet[i] = true
	}
	lines, covered := ExactCover(op, undet, 128)
	if covered != n || len(lines) != n {
		t.Fatalf("fallback wrong: %d lines, %d covered", len(lines), covered)
	}
}

func TestExactCoverEmpty(t *testing.T) {
	lines, covered := ExactCover(nil, nil, 8)
	if lines != nil || covered != 0 {
		t.Fatal("empty instance mishandled")
	}
}
