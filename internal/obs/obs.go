// Package obs implements the observation-point insertion experiment of
// Section 5 of the paper. Weight assignments are selected greedily out of Ω
// (the set produced by the core procedure, before reverse-order simulation)
// into a limited set Ω_lim; for every fault left undetected by Ω_lim, the set
// OP(f) of lines whose observation would detect f under one of Ω_lim's
// sequences is computed, and a minimal set of observation points covering
// the detectable faults is chosen with a greedy covering procedure.
package obs

import (
	"fmt"
	"math/bits"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fsim"
)

// Row is one line of the paper's Tables 7-16 for a given |Ω_lim|.
type Row struct {
	// Seq is the number of weight assignments in Ω_lim.
	Seq int
	// Subs is the number of distinct subsequences defining them.
	Subs int
	// Len is the longest subsequence length among them.
	Len int
	// FE is the fault efficiency of Ω_lim alone (percent of the faults
	// detected by the full Ω).
	FE float64
	// Obs is the number of observation points selected.
	Obs int
	// FEObs is the fault efficiency with the observation points (percent).
	FEObs float64
}

func (r Row) String() string {
	return fmt.Sprintf("seq=%d subs=%d len=%d f.e.=%.2f obs=%d f.e.+obs=%.2f",
		r.Seq, r.Subs, r.Len, r.FE, r.Obs, r.FEObs)
}

// Result is the full experiment outcome.
type Result struct {
	// Rows holds one entry per greedy prefix size, in increasing size order.
	Rows []Row
	// Order is the greedy selection order (indices into the core result's
	// Omega).
	Order []int
	// ObsLines[k] lists the node ids chosen as observation points for prefix
	// size k+1.
	ObsLines [][]circuit.NodeID
}

// FilteredRows returns the rows the paper would print: only prefixes whose
// final fault efficiency is at least minFE percent, and dropping a row when
// neither the observation-point count nor the fault efficiencies changed
// relative to the previous printed row.
func (r *Result) FilteredRows(minFE float64) []Row {
	var out []Row
	for _, row := range r.Rows {
		if row.FEObs < minFE {
			continue
		}
		if n := len(out); n > 0 {
			prev := out[n-1]
			if prev.Obs == row.Obs && prev.FE == row.FE && prev.FEObs == row.FEObs {
				continue
			}
		}
		out = append(out, row)
		if row.FE >= 100 {
			break
		}
	}
	return out
}

// CoverFunc selects observation points for the undetected faults' OP sets,
// returning the chosen lines and how many faults they cover.
type CoverFunc func(opSets []fsim.Bitset, undet []bool, numNodes int) ([]circuit.NodeID, int)

// GreedyCover is the paper's covering procedure: repeatedly pick the line
// covering the most remaining faults.
func GreedyCover(opSets []fsim.Bitset, undet []bool, numNodes int) ([]circuit.NodeID, int) {
	return cover(opSets, undet, numNodes)
}

// NewRankedCover returns a CoverFunc that picks observation points in order
// of decreasing cost (e.g. SCOAP observability: hardest-to-observe lines
// first), restricted to lines that still cover at least one fault. It is the
// testability-heuristic baseline the greedy covering is benchmarked against.
func NewRankedCover(cost []int32) CoverFunc {
	return func(opSets []fsim.Bitset, undet []bool, numNodes int) ([]circuit.NodeID, int) {
		var active []int
		for i, u := range undet {
			if u && opSets[i] != nil && opSets[i].Count() > 0 {
				active = append(active, i)
			}
		}
		// Candidate lines: union of all OP sets, sorted by decreasing cost.
		union := fsim.NewBitset(numNodes)
		for _, i := range active {
			orInto(union, opSets[i])
		}
		var cand []int
		forEachBit(union, func(n int) { cand = append(cand, n) })
		sortByCostDesc(cand, cost)
		var lines []circuit.NodeID
		covered := 0
		for _, n := range cand {
			if len(active) == 0 {
				break
			}
			hit := false
			var next []int
			for _, i := range active {
				if opSets[i].Get(n) {
					hit = true
					covered++
				} else {
					next = append(next, i)
				}
			}
			if hit {
				lines = append(lines, circuit.NodeID(n))
				active = next
			}
		}
		return lines, covered
	}
}

func sortByCostDesc(cand []int, cost []int32) {
	// Insertion sort keeps this dependency-free and is fine at the sizes the
	// experiment produces (candidate sets are small line subsets).
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0; j-- {
			a, b := cand[j-1], cand[j]
			if cost[a] > cost[b] || (cost[a] == cost[b] && a <= b) {
				break
			}
			cand[j-1], cand[j] = cand[j], cand[j-1]
		}
	}
}

// Experiment runs the Section 5 flow on a core procedure result with the
// paper's greedy covering procedure. It uses Ω before reverse-order
// simulation, exactly as the paper does.
func Experiment(r *core.Result) *Result {
	return ExperimentWithCover(r, GreedyCover)
}

// ExperimentWithCover is Experiment with a custom observation-point
// selection strategy.
func ExperimentWithCover(r *core.Result, coverFn CoverFunc) *Result {
	sp := r.Options.Span.Child("obs")
	defer sp.End()
	lg := r.Options.LG
	if lg == 0 {
		lg = 2000
	}
	for _, dt := range r.DetTime {
		if dt+1 > lg {
			lg = dt + 1
		}
	}
	detSets := core.DetectionSets(r)
	nTargets := len(r.TargetFaults)
	order := greedyOrder(detSets, nTargets)

	res := &Result{Order: order}
	if nTargets == 0 {
		return res
	}

	simulator := fsim.New(r.Circuit)
	// undetected faults under the current prefix
	undet := make([]bool, nTargets)
	for i := range undet {
		undet[i] = true
	}
	remaining := nTargets
	// opSets[i] accumulates OP(f) lines for undetected fault i across the
	// prefix's assignments.
	opSets := make([]fsim.Bitset, nTargets)

	var chosen []core.Assignment
	for _, j := range order {
		chosen = append(chosen, r.Omega[j])
		// Faults newly detected by assignment j leave the undetected set.
		for i := 0; i < nTargets; i++ {
			if undet[i] && detSets[j].Get(i) {
				undet[i] = false
				opSets[i] = nil
				remaining--
			}
		}
		// Assignment j contributes observability lines for the still
		// undetected faults.
		if remaining > 0 {
			var fl []fault.Fault
			var idx []int
			for i := 0; i < nTargets; i++ {
				if undet[i] {
					fl = append(fl, r.TargetFaults[i])
					idx = append(idx, i)
				}
			}
			seq := r.Omega[j].GenSequence(lg)
			out := simulator.Run(seq, fl, fsim.Options{Init: r.Options.Init, ObserveLines: true, Workers: r.Options.Workers, Kernel: r.Options.Kernel, SlabLanes: r.Options.SlabLanes})
			for k, i := range idx {
				if opSets[i] == nil {
					opSets[i] = fsim.NewBitset(len(r.Circuit.Nodes))
				}
				orInto(opSets[i], out.Lines[k])
			}
		}
		// Cover the detectable undetected faults with observation points.
		lines, covered := coverFn(opSets, undet, len(r.Circuit.Nodes))
		fe := 100 * float64(nTargets-remaining) / float64(nTargets)
		feObs := 100 * float64(nTargets-remaining+covered) / float64(nTargets)
		sub := core.Accounting(chosen)
		res.Rows = append(res.Rows, Row{
			Seq:   len(chosen),
			Subs:  sub.NumSubs,
			Len:   sub.MaxLen,
			FE:    fe,
			Obs:   len(lines),
			FEObs: feObs,
		})
		res.ObsLines = append(res.ObsLines, lines)
		if remaining == 0 {
			break
		}
	}
	return res
}

// greedyOrder picks assignments by maximum marginal coverage until every
// coverable fault is covered.
func greedyOrder(detSets []fsim.Bitset, nTargets int) []int {
	covered := fsim.NewBitset(nTargets)
	nCovered := 0
	used := make([]bool, len(detSets))
	var order []int
	for nCovered < nTargets {
		best, bestGain := -1, 0
		for j := range detSets {
			if used[j] {
				continue
			}
			gain := marginal(detSets[j], covered)
			if gain > bestGain {
				best, bestGain = j, gain
			}
		}
		if best < 0 {
			break // remaining faults uncoverable by Ω (should not happen)
		}
		used[best] = true
		order = append(order, best)
		for w := range covered {
			covered[w] |= detSets[best][w]
		}
		nCovered += bestGain
	}
	return order
}

func marginal(s, covered fsim.Bitset) int {
	n := 0
	for w := range s {
		n += onesCount(s[w] &^ covered[w])
	}
	return n
}

// cover greedily selects lines covering the undetected faults that have a
// non-empty OP set; it returns the chosen lines and the number of faults
// they cover.
func cover(opSets []fsim.Bitset, undet []bool, numNodes int) ([]circuit.NodeID, int) {
	// Remaining coverable faults.
	var active []int
	for i, u := range undet {
		if u && opSets[i] != nil && opSets[i].Count() > 0 {
			active = append(active, i)
		}
	}
	var lines []circuit.NodeID
	coveredTotal := 0
	for len(active) > 0 {
		counts := make(map[int]int)
		for _, i := range active {
			forEachBit(opSets[i], func(n int) {
				counts[n]++
			})
		}
		best, bestCnt := -1, 0
		for n, cnt := range counts {
			if cnt > bestCnt || (cnt == bestCnt && (best < 0 || n < best)) {
				best, bestCnt = n, cnt
			}
		}
		if best < 0 {
			break
		}
		lines = append(lines, circuit.NodeID(best))
		var next []int
		for _, i := range active {
			if opSets[i].Get(best) {
				coveredTotal++
			} else {
				next = append(next, i)
			}
		}
		active = next
	}
	return lines, coveredTotal
}

func orInto(dst, src fsim.Bitset) {
	for w := range dst {
		dst[w] |= src[w]
	}
}

func onesCount(x uint64) int { return bits.OnesCount64(x) }

func forEachBit(b fsim.Bitset, f func(int)) {
	for w, word := range b {
		for x := word; x != 0; x &= x - 1 {
			f(w*64 + bits.TrailingZeros64(x))
		}
	}
}
