package obs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/scoap"
	"repro/internal/sim"
)

// coreResultS27 runs the core procedure on s27 with the paper's sequence.
func coreResultS27(t *testing.T) *core.Result {
	t.Helper()
	c := iscas.MustLoad("s27")
	seq, err := sim.ParseSequence(iscas.S27TestSequence)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	out := fsim.Run(c, seq, faults, fsim.Options{Init: logic.X})
	var targets []fault.Fault
	var detTime []int
	for i := range faults {
		if out.Detected[i] {
			targets = append(targets, faults[i])
			detTime = append(detTime, out.DetTime[i])
		}
	}
	r, err := core.Run(c, seq, targets, detTime, core.Options{LG: 100, Init: logic.X, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestExperimentS27Shape(t *testing.T) {
	r := coreResultS27(t)
	res := Experiment(r)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Fault efficiency must be non-decreasing in the prefix size and end at
	// 100 with 0 observation points.
	for k, row := range res.Rows {
		if row.Seq != k+1 {
			t.Errorf("row %d has Seq=%d", k, row.Seq)
		}
		if k > 0 && row.FE < res.Rows[k-1].FE {
			t.Errorf("FE decreased at row %d: %.2f -> %.2f", k, res.Rows[k-1].FE, row.FE)
		}
		if row.FE > row.FEObs {
			t.Errorf("row %d: observation points lowered efficiency", k)
		}
		if row.FE > 100 || row.FEObs > 100 {
			t.Errorf("row %d: efficiency above 100", k)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	if last.FE != 100 || last.Obs != 0 {
		t.Fatalf("last row should be 100%% f.e. with 0 obs, got %+v", last)
	}
	// The paper's headline trade-off: earlier rows need observation points.
	if len(res.Rows) > 1 {
		first := res.Rows[0]
		if first.FE >= 100 {
			t.Skip("first assignment already reaches 100%; trade-off not visible on this run")
		}
		if first.Obs == 0 && first.FEObs < 100 {
			t.Error("first row has no obs points but is below 100%")
		}
	}
}

func TestObservationPointsActuallyDetect(t *testing.T) {
	// For each row, adding the chosen observation points must detect the
	// claimed extra faults: verify by re-simulating with ObserveLines and
	// checking each covered fault differs at a chosen line.
	r := coreResultS27(t)
	res := Experiment(r)
	lg := 100
	for _, dt := range r.DetTime {
		if dt+1 > lg {
			lg = dt + 1
		}
	}
	detSets := core.DetectionSets(r)
	for k, row := range res.Rows {
		if row.FEObs < 100 {
			continue
		}
		// Faults undetected by the prefix.
		prefix := res.Order[:k+1]
		undet := map[int]bool{}
		for i := range r.TargetFaults {
			undet[i] = true
		}
		for _, j := range prefix {
			for i := range r.TargetFaults {
				if detSets[j].Get(i) {
					delete(undet, i)
				}
			}
		}
		obsLines := res.ObsLines[k]
		for i := range undet {
			// The fault must differ at one of the chosen lines under some
			// prefix sequence.
			found := false
			for _, j := range prefix {
				seq := r.Omega[j].GenSequence(lg)
				out := fsim.Run(r.Circuit, seq, []fault.Fault{r.TargetFaults[i]},
					fsim.Options{Init: logic.X, ObserveLines: true})
				for _, ln := range obsLines {
					if out.Lines[0].Get(int(ln)) {
						found = true
						break
					}
				}
				if found {
					break
				}
			}
			if !found {
				t.Errorf("row %d: fault %s claimed covered but differs at no chosen line",
					k, r.TargetFaults[i].String(r.Circuit))
			}
		}
	}
}

func TestFilteredRows(t *testing.T) {
	r := &Result{Rows: []Row{
		{Seq: 1, FE: 80, Obs: 9, FEObs: 98.5},
		{Seq: 2, FE: 90, Obs: 5, FEObs: 99.2},
		{Seq: 3, FE: 95, Obs: 3, FEObs: 100},
		{Seq: 4, FE: 95, Obs: 3, FEObs: 100}, // duplicate of previous
		{Seq: 5, FE: 100, Obs: 0, FEObs: 100},
		{Seq: 6, FE: 100, Obs: 0, FEObs: 100}, // after first 100, dropped
	}}
	rows := r.FilteredRows(99)
	if len(rows) != 3 {
		t.Fatalf("filtered to %d rows: %+v", len(rows), rows)
	}
	if rows[0].Seq != 2 || rows[1].Seq != 3 || rows[2].Seq != 5 {
		t.Fatalf("wrong rows kept: %+v", rows)
	}
}

func TestGreedyOrderCoversEverything(t *testing.T) {
	r := coreResultS27(t)
	detSets := core.DetectionSets(r)
	order := greedyOrder(detSets, len(r.TargetFaults))
	covered := fsim.NewBitset(len(r.TargetFaults))
	for _, j := range order {
		for w := range covered {
			covered[w] |= detSets[j][w]
		}
	}
	if covered.Count() != len(r.TargetFaults) {
		t.Fatalf("greedy order covers %d of %d", covered.Count(), len(r.TargetFaults))
	}
	// Greedy must pick the biggest set first.
	best := 0
	for j := range detSets {
		if detSets[j].Count() > detSets[best].Count() {
			best = j
		}
	}
	if detSets[order[0]].Count() != detSets[best].Count() {
		t.Errorf("first greedy pick covers %d, best possible %d",
			detSets[order[0]].Count(), detSets[best].Count())
	}
}

func TestCoverGreedy(t *testing.T) {
	// Three faults: f0 coverable by lines {1,2}, f1 by {2}, f2 by {5}.
	// Greedy picks 2 (covers f0,f1), then 5.
	op := make([]fsim.Bitset, 3)
	for i := range op {
		op[i] = fsim.NewBitset(8)
	}
	op[0].Set(1)
	op[0].Set(2)
	op[1].Set(2)
	op[2].Set(5)
	undet := []bool{true, true, true}
	lines, covered := cover(op, undet, 8)
	if covered != 3 {
		t.Fatalf("covered %d, want 3", covered)
	}
	if len(lines) != 2 || int(lines[0]) != 2 || int(lines[1]) != 5 {
		t.Fatalf("lines %v, want [2 5]", lines)
	}
}

func TestCoverSkipsUncoverable(t *testing.T) {
	op := make([]fsim.Bitset, 2)
	op[0] = fsim.NewBitset(8)
	op[0].Set(3)
	op[1] = fsim.NewBitset(8) // empty: uncoverable
	undet := []bool{true, true}
	lines, covered := cover(op, undet, 8)
	if covered != 1 || len(lines) != 1 {
		t.Fatalf("covered=%d lines=%v", covered, lines)
	}
}

func TestRowString(t *testing.T) {
	r := Row{Seq: 2, Subs: 15, Len: 18, FE: 93.4, Obs: 7, FEObs: 100}
	s := r.String()
	if s == "" {
		t.Fatal("empty string")
	}
}

func TestRankedCoverCoversSameFaults(t *testing.T) {
	r := coreResultS27(t)
	m := scoap.Analyze(r.Circuit, logic.X)
	greedy := Experiment(r)
	ranked := ExperimentWithCover(r, NewRankedCover(m.CO))
	if len(greedy.Rows) != len(ranked.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(greedy.Rows), len(ranked.Rows))
	}
	for k := range greedy.Rows {
		// Both strategies cover the same coverable faults, so the resulting
		// fault efficiencies must match; greedy may use fewer points.
		if greedy.Rows[k].FEObs != ranked.Rows[k].FEObs {
			t.Errorf("row %d: f.e. %.2f (greedy) vs %.2f (ranked)",
				k, greedy.Rows[k].FEObs, ranked.Rows[k].FEObs)
		}
		if greedy.Rows[k].Obs > ranked.Rows[k].Obs {
			t.Errorf("row %d: greedy used more points (%d) than ranked (%d)",
				k, greedy.Rows[k].Obs, ranked.Rows[k].Obs)
		}
	}
}

func TestRankedCoverUnit(t *testing.T) {
	op := make([]fsim.Bitset, 2)
	op[0] = fsim.NewBitset(8)
	op[0].Set(3)
	op[0].Set(5)
	op[1] = fsim.NewBitset(8)
	op[1].Set(5)
	undet := []bool{true, true}
	cost := make([]int32, 8)
	cost[3] = 10
	cost[5] = 2
	lines, covered := NewRankedCover(cost)(op, undet, 8)
	if covered != 2 {
		t.Fatalf("covered %d", covered)
	}
	// Highest cost line first (3 covers f0), then 5 covers f1.
	if len(lines) != 2 || int(lines[0]) != 3 || int(lines[1]) != 5 {
		t.Fatalf("lines %v", lines)
	}
	// Greedy would have used a single line (5 covers both).
	glines, gcov := GreedyCover(op, undet, 8)
	if gcov != 2 || len(glines) != 1 || int(glines[0]) != 5 {
		t.Fatalf("greedy: %v cov=%d", glines, gcov)
	}
}
