package obs

import (
	"math/bits"
	"sort"

	"repro/internal/circuit"
	"repro/internal/fsim"
)

// ExactCoverLimit bounds the instance size (faults and candidate lines) that
// ExactCover will attack with branch-and-bound before falling back to the
// greedy procedure.
const ExactCoverLimit = 24

// ExactCover is a CoverFunc that computes a minimum-cardinality set of
// observation points by branch-and-bound when the instance is small
// (≤ ExactCoverLimit coverable faults and candidate lines after dominance
// pruning) and falls back to GreedyCover otherwise. The paper asks for "a
// minimal number of lines"; greedy is its practical approximation, and this
// function quantifies how far greedy is from optimal on tractable instances.
func ExactCover(opSets []fsim.Bitset, undet []bool, numNodes int) ([]circuit.NodeID, int) {
	// Collect the coverable faults.
	var active []int
	for i, u := range undet {
		if u && opSets[i] != nil && opSets[i].Count() > 0 {
			active = append(active, i)
		}
	}
	if len(active) == 0 {
		return nil, 0
	}
	if len(active) > ExactCoverLimit {
		return GreedyCover(opSets, undet, numNodes)
	}
	// Candidate lines: union of the OP sets. Represent each line as a mask
	// over the active faults.
	lineMask := map[int]uint64{}
	for k, i := range active {
		forEachBit(opSets[i], func(n int) {
			lineMask[n] |= 1 << uint(k)
		})
	}
	// Dominance pruning: drop lines whose fault mask is a subset of another
	// line's mask (keeping the smaller node id on ties for determinism).
	type cand struct {
		node int
		mask uint64
	}
	var cands []cand
	for n, m := range lineMask {
		cands = append(cands, cand{n, m})
	}
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		pa, pb := bits.OnesCount64(ca.mask), bits.OnesCount64(cb.mask)
		if pa != pb {
			return pa > pb
		}
		return ca.node < cb.node
	})
	var pruned []cand
	for _, c := range cands {
		dominated := false
		for _, p := range pruned {
			if c.mask&^p.mask == 0 {
				dominated = true
				break
			}
		}
		if !dominated {
			pruned = append(pruned, c)
		}
	}
	if len(pruned) > ExactCoverLimit {
		return GreedyCover(opSets, undet, numNodes)
	}

	full := uint64(1)<<uint(len(active)) - 1
	// Greedy gives the initial upper bound.
	greedyLines, covered := GreedyCover(opSets, undet, numNodes)
	best := make([]int, 0, len(greedyLines))
	for _, n := range greedyLines {
		best = append(best, int(n))
	}
	bestLen := len(best)

	var cur []int
	var dfs func(coveredMask uint64)
	dfs = func(coveredMask uint64) {
		if coveredMask == full {
			if len(cur) < bestLen {
				bestLen = len(cur)
				best = append(best[:0], cur...)
			}
			return
		}
		if len(cur)+1 >= bestLen {
			// Even one more line cannot beat the incumbent unless it
			// finishes the cover.
			rest := full &^ coveredMask
			for _, c := range pruned {
				if rest&^c.mask == 0 {
					cur = append(cur, c.node)
					dfs(full)
					cur = cur[:len(cur)-1]
					return
				}
			}
			return
		}
		// Branch on the first uncovered fault: one of its lines must be in
		// the cover (standard set-cover branching keeps the tree small).
		k := bits.TrailingZeros64(full &^ coveredMask)
		for _, c := range pruned {
			if c.mask&(1<<uint(k)) == 0 {
				continue
			}
			cur = append(cur, c.node)
			dfs(coveredMask | c.mask)
			cur = cur[:len(cur)-1]
		}
	}
	dfs(0)

	out := make([]circuit.NodeID, len(best))
	for i, n := range best {
		out[i] = circuit.NodeID(n)
	}
	return out, covered
}
