package shard

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestMain is the worker gate: when the coordinator re-execs this test
// binary as a shard worker, MaybeWorker takes over and never returns.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// world is one ready-to-shard workload: a suite circuit, a random stimulus,
// its collapsed fault universe, and the in-process Workers=1 baseline
// outcome every sharded run must reproduce bit for bit.
type world struct {
	c      *circuit.Circuit
	seq    *sim.Sequence
	faults []fault.Fault
	fopts  fsim.Options
	base   *fsim.Outcome
}

func makeWorld(t *testing.T, name string, vectors int, fopts fsim.Options) *world {
	t.Helper()
	c := iscas.MustLoad(name)
	seq := sim.RandomSequence(randutil.New(42), len(c.Inputs), vectors)
	faults := fault.CollapsedUniverse(c)
	ref := fopts
	ref.ShardProcs = 0
	ref.Workers = 1
	return &world{c: c, seq: seq, faults: faults, fopts: fopts,
		base: fsim.Run(c, seq, faults, ref)}
}

// fastFailure are coordinator knobs that keep failure-path tests quick.
func fastFailure(o Options) Options {
	if o.ProgressTimeout == 0 {
		o.ProgressTimeout = 10 * time.Second
	}
	o.BackoffBase = time.Millisecond
	return o
}

func (w *world) check(t *testing.T, sopts Options) *fsim.Outcome {
	t.Helper()
	got, err := Run(w.c, w.seq, w.faults, w.fopts, fastFailure(sopts))
	if err != nil {
		t.Fatalf("shard.Run: %v", err)
	}
	if !reflect.DeepEqual(got, w.base) {
		t.Fatalf("sharded outcome diverges from in-process baseline: got %d det, want %d det",
			got.NumDetected, w.base.NumDetected)
	}
	return got
}

func TestShardMatchesInProcess(t *testing.T) {
	w := makeWorld(t, "s298", 128, fsim.Options{Init: logic.Zero})
	for _, procs := range []int{2, 4} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			w.check(t, Options{Procs: procs})
		})
	}
}

func TestShardKernelsAndSaveStates(t *testing.T) {
	for _, kernel := range []fsim.Kernel{fsim.KernelDense, fsim.KernelEvent, fsim.KernelSlab} {
		t.Run(kernel.String(), func(t *testing.T) {
			w := makeWorld(t, "s344", 96, fsim.Options{
				Init: logic.X, Kernel: kernel, SaveStates: true, TimeOffset: 7,
			})
			w.check(t, Options{Procs: 3, RangeSize: 1})
		})
	}
}

// TestShardCounterInvariance pins the contract that the deterministic work
// counters fold back to the exact in-process totals: each accepted group is
// counted once, whether it was simulated here or in a worker process.
func TestShardCounterInvariance(t *testing.T) {
	c := iscas.MustLoad("s298")
	seq := sim.RandomSequence(randutil.New(7), len(c.Inputs), 64)
	faults := fault.CollapsedUniverse(c)
	fopts := fsim.Options{Init: logic.Zero, Kernel: fsim.KernelDense}

	before := telemetry.Counters()
	base := fsim.Run(c, seq, faults, fopts)
	inproc := telemetry.Counters().Sub(before)

	before = telemetry.Counters()
	got, err := Run(c, seq, faults, fopts, fastFailure(Options{Procs: 2}))
	if err != nil {
		t.Fatalf("shard.Run: %v", err)
	}
	sharded := telemetry.Counters().Sub(before)

	if !reflect.DeepEqual(got, base) {
		t.Fatal("sharded outcome diverges from in-process baseline")
	}
	for _, id := range []telemetry.CounterID{
		telemetry.CtrGateEvals, telemetry.CtrVectors,
		telemetry.CtrGroupPasses, telemetry.CtrFaultsDropped,
	} {
		if inproc.Get(id) != sharded.Get(id) {
			t.Errorf("%s: in-process %d, sharded %d", id.Name(), inproc.Get(id), sharded.Get(id))
		}
	}
	if sharded.Get(telemetry.CtrShardRangesDispatched) == 0 {
		t.Error("no ranges dispatched — shard path did not engage")
	}
}

// TestShardViaFsimOptions drives the registered runner through the public
// fsim entry point, the way expt and serve do.
func TestShardViaFsimOptions(t *testing.T) {
	w := makeWorld(t, "s298", 96, fsim.Options{Init: logic.Zero})
	fopts := w.fopts
	fopts.ShardProcs = 2
	got := fsim.Run(w.c, w.seq, w.faults, fopts)
	if !reflect.DeepEqual(got, w.base) {
		t.Fatal("fsim.Run(ShardProcs=2) diverges from Workers=1 baseline")
	}
}

// TestCrashReassignment kills the first spawned worker after one streamed
// group and asserts (a) the merged outcome stays byte-identical and (b) the
// loss and reassignment are visible on the shard telemetry counters.
func TestCrashReassignment(t *testing.T) {
	w := makeWorld(t, "s298", 128, fsim.Options{Init: logic.Zero})
	before := telemetry.Counters()
	w.check(t, Options{
		Procs:     2,
		RangeSize: 2,
		WorkerExtraEnv: func(spawn int) []string {
			if spawn == 0 {
				return []string{CrashAfterEnv + "=1"}
			}
			return nil
		},
	})
	d := telemetry.Counters().Sub(before)
	if d.Get(telemetry.CtrShardWorkersLost) == 0 {
		t.Error("expected at least one lost worker")
	}
	if d.Get(telemetry.CtrShardRangesReassigned) == 0 {
		t.Error("expected at least one reassigned range")
	}
}

// TestWedgeTimeout wedges the first spawned worker (alive but silent) past
// the progress deadline and asserts the coordinator kills it, reassigns the
// tail, and still merges the exact baseline outcome.
func TestWedgeTimeout(t *testing.T) {
	w := makeWorld(t, "s298", 128, fsim.Options{Init: logic.Zero})
	before := telemetry.Counters()
	w.check(t, Options{
		Procs:           2,
		RangeSize:       2,
		ProgressTimeout: 300 * time.Millisecond,
		WorkerExtraEnv: func(spawn int) []string {
			if spawn == 0 {
				return []string{WedgeAfterEnv + "=1"}
			}
			return nil
		},
	})
	d := telemetry.Counters().Sub(before)
	if d.Get(telemetry.CtrShardWorkersLost) == 0 {
		t.Error("expected the wedged worker to be declared lost")
	}
}

// TestDeterministicCrasherFallsBackInProcess exhausts a range's retries and
// asserts the coordinator still completes the run — in-process,
// bit-identically. Every spawn crashes after one streamed group, and ranges
// hold 3 groups with MaxRetries=1, so a range's lifecycle is forced all the
// way down the ladder: first worker streams the head group and dies, the
// 2-group tail is reassigned, the respawn streams one more and dies, and
// the final group's tail now exceeds its retry budget — only the
// coordinator's own runInProcess fallback can produce it.
func TestDeterministicCrasherFallsBackInProcess(t *testing.T) {
	w := makeWorld(t, "s298", 64, fsim.Options{Init: logic.Zero})
	before := telemetry.Counters()
	w.check(t, Options{
		Procs:      2,
		RangeSize:  3,
		MaxRetries: 1,
		WorkerExtraEnv: func(spawn int) []string {
			return []string{CrashAfterEnv + "=1"}
		},
	})
	d := telemetry.Counters().Sub(before)
	if d.Get(telemetry.CtrShardWorkersLost) < 2 {
		t.Errorf("workers_lost = %d, want every spawn lost", d.Get(telemetry.CtrShardWorkersLost))
	}
	if d.Get(telemetry.CtrShardRangesReassigned) < 2 {
		t.Errorf("ranges_reassigned = %d, want both retries of a 3-group range burned",
			d.Get(telemetry.CtrShardRangesReassigned))
	}
}

// TestEnvSpawnDirective exercises the environment form of the injection
// hook (what the CI shard-smoke job uses): crash spawn 0 after one group,
// and verify the directive is consumed by the coordinator without leaking
// into the fleet (spawn 1 and every respawn complete the run).
func TestEnvSpawnDirective(t *testing.T) {
	t.Setenv(TestCrashSpawnEnv, "0:1")
	w := makeWorld(t, "s298", 96, fsim.Options{Init: logic.Zero})
	before := telemetry.Counters()
	w.check(t, Options{Procs: 2, RangeSize: 2})
	if telemetry.Counters().Sub(before).Get(telemetry.CtrShardWorkersLost) == 0 {
		t.Error("env crash directive did not fire")
	}
}

// TestCancellation wedges the whole fleet after one group each, then
// cancels the context: the run must come back promptly, marked Cancelled,
// with every unfinished group on the groups_cancelled counter.
func TestCancellation(t *testing.T) {
	w := makeWorld(t, "s298", 128, fsim.Options{Init: logic.Zero})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	before := telemetry.Counters()
	got, err := Run(w.c, w.seq, w.faults, w.fopts, Options{
		Procs:           2,
		RangeSize:       1,
		ProgressTimeout: time.Hour, // only cancellation may end this run
		Ctx:             ctx,
		WorkerExtraEnv: func(spawn int) []string {
			return []string{WedgeAfterEnv + "=1"}
		},
	})
	if err != nil {
		t.Fatalf("shard.Run: %v", err)
	}
	if !got.Cancelled {
		t.Fatal("expected a cancelled outcome")
	}
	numGroups := (len(w.faults) + fsim.GroupSize - 1) / fsim.GroupSize
	skipped := telemetry.Counters().Sub(before).Get(telemetry.CtrGroupsCancelled)
	if skipped <= 0 || skipped > int64(numGroups) {
		t.Fatalf("groups_cancelled=%d, want in (0,%d]", skipped, numGroups)
	}
	// Whatever was merged before cancellation must agree with the baseline.
	for i, d := range got.Detected {
		if d && (!w.base.Detected[i] || got.DetTime[i] != w.base.DetTime[i]) {
			t.Fatalf("fault %d: partial result diverges from baseline", i)
		}
	}
}

// TestPreCancelled covers the short-circuit: a context cancelled before the
// first handshake yields a Cancelled outcome without an error.
func TestPreCancelled(t *testing.T) {
	w := makeWorld(t, "s298", 32, fsim.Options{Init: logic.Zero})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := Run(w.c, w.seq, w.faults, w.fopts, Options{Procs: 2, Ctx: ctx})
	if err != nil {
		t.Fatalf("shard.Run: %v", err)
	}
	if !got.Cancelled {
		t.Fatal("expected a cancelled outcome")
	}
}

// TestRunRejectsUnshardable pins the error contract for misuse.
func TestRunRejectsUnshardable(t *testing.T) {
	w := makeWorld(t, "s27", 16, fsim.Options{Init: logic.X})
	if _, err := Run(w.c, w.seq, w.faults, w.fopts, Options{Procs: 1}); err == nil {
		t.Error("Procs=1 should be rejected")
	}
	if _, err := Run(w.c, w.seq, w.faults[:1], w.fopts, Options{Procs: 2}); err == nil {
		t.Error("a single-group fault list should be rejected")
	}
}

// TestBadWorkerBinaryFallsThrough: when no worker can ever be spawned, run
// must fail before writing anything so fsim falls back in-process — which
// the fsim-level entry demonstrates end to end.
func TestBadWorkerBinaryFallsThrough(t *testing.T) {
	w := makeWorld(t, "s298", 32, fsim.Options{Init: logic.Zero})
	if _, err := Run(w.c, w.seq, w.faults, w.fopts, Options{
		Procs:      2,
		WorkerArgv: []string{"/nonexistent/wbist-shard-worker"},
	}); err == nil {
		t.Fatal("expected a spawn error")
	}
}
