package shard

import (
	"bytes"
	"io"
	"math/bits"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := rangeMsg{Type: "range", Lo: 3, Hi: 9}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out rangeMsg
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	// A clean end-of-stream is io.EOF verbatim (how the worker loop tells
	// shutdown from a torn frame).
	if err := readFrame(&buf, &out); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	r := bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})
	var m rangeMsg
	if err := readFrame(r, &m); err == nil || err == io.EOF {
		t.Fatalf("oversized frame: got %v, want explicit error", err)
	}
}

func TestWordEncodingRoundTrip(t *testing.T) {
	in := []logic.W{{}, {Zeros: ^uint64(0)}, {Ones: ^uint64(0)}, {Zeros: 0x123456789abcdef0, Ones: 0x0fedcba987654321}}
	out, err := decodeWords(encodeWords(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip: got %v, want %v", out, in)
	}
	if _, err := decodeWords([]string{"not-hex"}); err == nil {
		t.Error("expected a decode error")
	}
}

func TestSpawnDirective(t *testing.T) {
	for _, tc := range []struct {
		dir string
		idx int
		n   int
		ok  bool
	}{
		{"0:3", 0, 3, true},
		{"0:3", 1, 0, false},
		{"2:1", 2, 1, true},
		{"", 0, 0, false},
		{"junk", 0, 0, false},
		{"0:0", 0, 0, false},
		{"x:3", 0, 0, false},
	} {
		n, ok := spawnDirective(tc.dir, tc.idx)
		if n != tc.n || ok != tc.ok {
			t.Errorf("spawnDirective(%q, %d) = (%d,%v), want (%d,%v)", tc.dir, tc.idx, n, ok, tc.n, tc.ok)
		}
	}
}

// workerDialog runs WorkerMain against in-memory pipes and returns a
// writer for coordinator→worker frames plus a reader for replies.
func workerDialog(t *testing.T) (io.WriteCloser, *io.PipeReader, chan error) {
	t.Helper()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	errCh := make(chan error, 1)
	go func() {
		errCh <- WorkerMain(inR, outW)
		outW.Close()
	}()
	return inW, outR, errCh
}

func TestWorkerRejectsProtocolMismatch(t *testing.T) {
	inW, outR, errCh := workerDialog(t)
	if err := writeFrame(inW, jobMsg{Type: "job", Proto: "wbist-shard/v999"}); err != nil {
		t.Fatal(err)
	}
	var reply anyMsg
	if err := readFrame(outR, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Type != "error" || !strings.Contains(reply.Msg, "protocol mismatch") {
		t.Fatalf("got %+v, want a protocol-mismatch error frame", reply)
	}
	if err := <-errCh; err == nil {
		t.Error("WorkerMain should report the mismatch")
	}
	inW.Close()
}

func TestWorkerRejectsUnknownFaultNode(t *testing.T) {
	inW, outR, errCh := workerDialog(t)
	job := jobMsg{
		Type: "job", Proto: ProtoVersion,
		Bench:  "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n",
		Seq:    "0\n1\n",
		Kernel: "dense",
		Faults: []wireFault{{Node: "ghost", Pin: -1, Stuck: 1}},
	}
	if err := writeFrame(inW, job); err != nil {
		t.Fatal(err)
	}
	var reply anyMsg
	if err := readFrame(outR, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Type != "error" || !strings.Contains(reply.Msg, "ghost") {
		t.Fatalf("got %+v, want an unknown-fault-node error frame", reply)
	}
	<-errCh
	inW.Close()
}

func TestWorkerRejectsOutOfBoundsRange(t *testing.T) {
	inW, outR, errCh := workerDialog(t)
	job := jobMsg{
		Type: "job", Proto: ProtoVersion,
		Bench:  "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n",
		Seq:    "0\n1\n",
		Kernel: "dense",
		Stop:   2,
		Faults: []wireFault{{Node: "z", Pin: -1, Stuck: 0}},
	}
	if err := writeFrame(inW, job); err != nil {
		t.Fatal(err)
	}
	var hello anyMsg
	if err := readFrame(outR, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Type != "hello" || hello.Groups != 1 || hello.Faults != 1 {
		t.Fatalf("bad hello: %+v", hello)
	}
	if err := writeFrame(inW, rangeMsg{Type: "range", Lo: 0, Hi: 5}); err != nil {
		t.Fatal(err)
	}
	var reply anyMsg
	if err := readFrame(outR, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Type != "error" {
		t.Fatalf("got %+v, want an out-of-bounds error frame", reply)
	}
	<-errCh
	inW.Close()
}

// TestWorkerStreamsRangesInProcess drives the full worker loop through
// workerDialog with a real job — warm per-group initial states, SaveStates,
// a time offset — and checks every streamed group against the in-process
// baseline, the range_done acknowledgements, and the clean-EOF shutdown.
// (The subprocess tests exercise the same loop, but only this in-process
// dialog pins the exact frame sequence a coordinator sees.)
func TestWorkerStreamsRangesInProcess(t *testing.T) {
	c := iscas.MustLoad("s298")
	seq := sim.RandomSequence(randutil.New(3), len(c.Inputs), 48)
	faults := fault.CollapsedUniverse(c)
	numGroups := (len(faults) + fsim.GroupSize - 1) / fsim.GroupSize

	// Warm start: one SaveStates leg provides a distinct initial state per
	// group, so the job exercises the InitialStates encode/decode path.
	warm := fsim.Run(c, seq, faults, fsim.Options{Init: logic.Zero, Workers: 1, SaveStates: true})
	fopts := fsim.Options{
		Init: logic.Zero, Kernel: fsim.KernelDense, SaveStates: true,
		TimeOffset: seq.Len(), InitialStates: warm.FinalStates,
	}
	ref := fopts
	ref.Workers = 1
	base := fsim.Run(c, seq, faults, ref)

	co := &coordinator{c: c, faults: faults, fopts: fopts, stop: seq.Len()}
	if err := co.buildJob(seq); err != nil {
		t.Fatal(err)
	}
	inW, outR, errCh := workerDialog(t)
	if err := writeFrame(inW, co.job); err != nil {
		t.Fatal(err)
	}
	var hello anyMsg
	if err := readFrame(outR, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Type != "hello" || hello.Proto != ProtoVersion ||
		hello.Groups != numGroups || hello.Faults != len(faults) || hello.DFFs != len(c.DFFs) {
		t.Fatalf("hello = %+v, want %d groups / %d faults / %d dffs", hello, numGroups, len(faults), len(c.DFFs))
	}

	// Two dispatches covering all groups, the way a coordinator would.
	split := numGroups / 2
	det := 0
	for _, r := range []rangeMsg{
		{Type: "range", Lo: 0, Hi: split},
		{Type: "range", Lo: split, Hi: numGroups},
	} {
		if err := writeFrame(inW, r); err != nil {
			t.Fatal(err)
		}
		for g := r.Lo; g < r.Hi; g++ {
			var fr anyMsg
			if err := readFrame(outR, &fr); err != nil {
				t.Fatal(err)
			}
			if fr.Type != "group" || fr.Group != g {
				t.Fatalf("frame = %+v, want group %d", fr, g)
			}
			mask, err := strconv.ParseUint(fr.Det, 16, 64)
			if err != nil {
				t.Fatalf("group %d: bad det mask %q", g, fr.Det)
			}
			if n := bits.OnesCount64(mask); n != fr.NumDet || n != len(fr.DetTimes) {
				t.Fatalf("group %d: mask %#x vs num_det %d vs %d times", g, mask, fr.NumDet, len(fr.DetTimes))
			}
			lo := g * fsim.GroupSize
			hi := min(lo+fsim.GroupSize, len(faults))
			ti := 0
			for k := 0; k < hi-lo; k++ {
				want := base.Detected[lo+k]
				if got := mask&(1<<uint(k)) != 0; got != want {
					t.Fatalf("group %d fault %d: detected=%v, baseline %v", g, k, got, want)
				}
				if want {
					if fr.DetTimes[ti] != base.DetTime[lo+k] {
						t.Fatalf("group %d fault %d: det time %d, baseline %d", g, k, fr.DetTimes[ti], base.DetTime[lo+k])
					}
					ti++
				}
			}
			if len(fr.State) != len(c.DFFs) {
				t.Fatalf("group %d: %d state words for %d flip-flops", g, len(fr.State), len(c.DFFs))
			}
			if len(fr.Counters) == 0 || fr.Counters["fsim.gate_evals"] <= 0 {
				t.Fatalf("group %d: missing counter delta: %v", g, fr.Counters)
			}
			det += fr.NumDet
		}
		var done anyMsg
		if err := readFrame(outR, &done); err != nil {
			t.Fatal(err)
		}
		if done.Type != "range_done" || done.Lo != r.Lo || done.Hi != r.Hi {
			t.Fatalf("ack = %+v, want range_done [%d,%d)", done, r.Lo, r.Hi)
		}
	}
	if det != base.NumDetected {
		t.Fatalf("streamed %d detections, baseline %d", det, base.NumDetected)
	}
	inW.Close() // coordinator shutdown: stdin EOF must end the loop cleanly
	if err := <-errCh; err != nil {
		t.Fatalf("WorkerMain after clean EOF: %v", err)
	}
}

// TestNewWorkerRunRejects pins the job-validation error paths: every frame
// a skewed or corrupt coordinator could send must fail fast, before any
// group is simulated.
func TestNewWorkerRunRejects(t *testing.T) {
	good := func() jobMsg {
		return jobMsg{
			Type: "job", Proto: ProtoVersion,
			Bench:  "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n",
			Seq:    "0\n1\n",
			Kernel: "dense",
			Faults: []wireFault{{Node: "z", Pin: -1, Stuck: 0}},
		}
	}
	if _, err := newWorkerRun(&jobMsg{Type: "job", Proto: ProtoVersion, Bench: "not a netlist", Kernel: "dense"}); err == nil {
		t.Error("bad netlist accepted")
	}
	bad := good()
	bad.Seq = "01x_junk 2\n"
	if _, err := newWorkerRun(&bad); err == nil {
		t.Error("bad sequence accepted")
	}
	bad = good()
	bad.Kernel = "quantum"
	if _, err := newWorkerRun(&bad); err == nil {
		t.Error("unknown kernel accepted")
	}
	bad = good()
	bad.InitialStates = [][]string{{"0:0"}, {"0:0"}} // 2 states, 1 group
	if _, err := newWorkerRun(&bad); err == nil {
		t.Error("group/state count mismatch accepted")
	}
	bad = good()
	bad.InitialStates = [][]string{{"nonsense"}}
	if _, err := newWorkerRun(&bad); err == nil {
		t.Error("corrupt state words accepted")
	}
	bad = good()
	bad.InitialStates = [][]string{{"0:0", "0:0"}} // 2 words, 0 flip-flops
	if _, err := newWorkerRun(&bad); err == nil {
		t.Error("state width mismatch accepted")
	}
	ok := good()
	w, err := newWorkerRun(&ok)
	if err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	if w.numGroups() != 1 || len(w.faults) != 1 {
		t.Fatalf("parsed world = %d groups / %d faults", w.numGroups(), len(w.faults))
	}
}
