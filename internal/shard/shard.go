package shard

import (
	"context"
	"fmt"
	"math/bits"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/logic"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Options tune the coordinator. The zero value picks sane defaults for
// every field except Procs.
type Options struct {
	// Procs is the number of worker subprocesses. Values below 2 make Run
	// an error (use the in-process pool instead).
	Procs int
	// RangeSize is the number of fault groups per dispatched range. 0
	// picks max(1, numGroups/(Procs*4)): fine-grained enough to balance
	// uneven group costs, coarse enough to amortize frame overhead.
	RangeSize int
	// MaxRetries bounds how many times a range's unfinished tail is
	// redispatched to a (re)spawned worker after a loss before the
	// coordinator simulates it in-process (default 3). The in-process
	// fallback is what guarantees a dispatched run always completes with
	// the exact in-process result, even under a deterministic crasher.
	MaxRetries int
	// ProgressTimeout is the per-worker progress deadline: if a worker
	// streams no frame for this long while a range is outstanding, it is
	// declared wedged, killed, and its tail reassigned (default 60s).
	ProgressTimeout time.Duration
	// BackoffBase is the base of the exponential respawn backoff after a
	// worker loss: base<<retries, capped at 2s (default 50ms).
	BackoffBase time.Duration
	// WorkerArgv is the command line of a worker process (default: the
	// current binary via os.Executable; the WorkerEnv marker does the
	// rest, so any binary that calls MaybeWorker works).
	WorkerArgv []string
	// WorkerExtraEnv, if non-nil, returns extra environment entries for
	// the spawn-index'th worker process spawned by this coordinator. The
	// crash-injection tests use it to make exactly one spawn misbehave.
	WorkerExtraEnv func(spawn int) []string
	// Ctx cancels the run at fault-group granularity, mirroring
	// fsim.Options.Ctx: the coordinator stops dispatching, kills its
	// workers, counts every unfinished group on fsim.groups_cancelled and
	// marks the outcome Cancelled.
	Ctx context.Context
}

func (o Options) withDefaults() Options {
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.ProgressTimeout == 0 {
		o.ProgressTimeout = 60 * time.Second
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	return o
}

// Test-injection environment variables understood by the coordinator
// itself: "<spawnIndex>:<afterGroups>" makes the spawnIndex'th worker spawn
// crash (exit 3) or wedge after streaming afterGroups group results. They
// let the CLI smoke test inject exactly one failure without a programmatic
// hook, and are never forwarded to workers as-is.
const (
	TestCrashSpawnEnv = "WBIST_SHARD_TEST_CRASH_SPAWN"
	TestWedgeSpawnEnv = "WBIST_SHARD_TEST_WEDGE_SPAWN"
)

func init() {
	fsim.RegisterShardRunner(func(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, stop int, fopts fsim.Options, out *fsim.Outcome) error {
		return run(c, seq, faults, stop, fopts, Options{Procs: fopts.ShardProcs, Ctx: fopts.Ctx}, out)
	})
}

// Run fault-simulates seq against faults by sharding the fault groups over
// sopts.Procs worker subprocesses, returning an Outcome bit-identical to
// fsim.Run with Workers=1. It is the direct entry point for tests and
// benchmarks; production callers set fsim.Options.ShardProcs instead and
// let fsim dispatch here.
func Run(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, fopts fsim.Options, sopts Options) (*fsim.Outcome, error) {
	numGroups := (len(faults) + fsim.GroupSize - 1) / fsim.GroupSize
	out := &fsim.Outcome{
		Detected: make([]bool, len(faults)),
		DetTime:  make([]int, len(faults)),
	}
	for i := range out.DetTime {
		out.DetTime[i] = -1
	}
	if fopts.SaveStates {
		out.FinalStates = make([][]logic.W, numGroups)
	}
	stop := seq.Len()
	if fopts.StopTime > 0 && fopts.StopTime < stop {
		stop = fopts.StopTime
	}
	if numGroups == 0 {
		return out, nil
	}
	fopts.Kernel = fopts.Kernel.Resolve()
	if err := run(c, seq, faults, stop, fopts, sopts, out); err != nil {
		return nil, err
	}
	return out, nil
}

// grange is a contiguous range of fault-group indices awaiting dispatch.
type grange struct {
	lo, hi  int
	retries int
}

type coordinator struct {
	c         *circuit.Circuit
	seqRef    *sim.Sequence
	faults    []fault.Fault
	fopts     fsim.Options
	sopts     Options
	out       *fsim.Outcome
	job       jobMsg
	numGroups int
	stop      int

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []grange
	done       []bool
	groupsLeft int
	spawns     int
	cancelled  bool
}

// run shards groups [0,numGroups) over worker subprocesses, writing into
// out exactly the disjoint per-group regions the in-process pool would.
// It returns a non-nil error only before anything was dispatched (job
// construction or first-worker handshake failed), so a caller can fall back
// to the in-process path with out still pristine. Once dispatch starts the
// run always completes: ranges that exhaust their retries are simulated
// in-process by the coordinator itself.
func run(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, stop int, fopts fsim.Options, sopts Options, out *fsim.Outcome) error {
	sopts = sopts.withDefaults()
	if sopts.Procs < 2 {
		return fmt.Errorf("shard: Procs=%d, need at least 2", sopts.Procs)
	}
	numGroups := (len(faults) + fsim.GroupSize - 1) / fsim.GroupSize
	if numGroups < 2 {
		return fmt.Errorf("shard: %d fault groups, nothing to shard", numGroups)
	}
	if len(sopts.WorkerArgv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("shard: resolve worker binary: %w", err)
		}
		sopts.WorkerArgv = []string{exe}
	}

	co := &coordinator{
		c: c, seqRef: seq, faults: faults, fopts: fopts, sopts: sopts, out: out,
		numGroups: numGroups, stop: stop,
		done: make([]bool, numGroups), groupsLeft: numGroups,
	}
	co.cond = sync.NewCond(&co.mu)
	if err := co.buildJob(seq); err != nil {
		return err
	}

	rangeSize := sopts.RangeSize
	if rangeSize <= 0 {
		rangeSize = max(1, numGroups/(sopts.Procs*4))
	}
	for lo := 0; lo < numGroups; lo += rangeSize {
		co.queue = append(co.queue, grange{lo: lo, hi: min(lo+rangeSize, numGroups)})
	}
	procs := min(sopts.Procs, len(co.queue))

	// Spawn and handshake the first worker synchronously: if even one
	// worker cannot come up, report it before any range is dispatched so
	// the caller can run in-process instead of limping through the
	// coordinator's sequential fallback.
	w0, err := co.spawn()
	if err == errCancelled {
		// Cancelled before anything was dispatched: same accounting as the
		// in-process pool's entry check.
		out.Cancelled = true
		telemetry.Add(telemetry.CtrGroupsCancelled, int64(numGroups))
		return nil
	}
	if err != nil {
		return err
	}

	if co.sopts.Ctx != nil {
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-co.sopts.Ctx.Done():
				co.mu.Lock()
				co.cancelled = true
				co.cond.Broadcast()
				co.mu.Unlock()
			case <-stopWatch:
			}
		}()
	}

	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		w := (*workerProc)(nil)
		if i == 0 {
			w = w0
		}
		wg.Add(1)
		go func(w *workerProc) {
			defer wg.Done()
			co.workerLoop(w)
		}(w)
	}
	wg.Wait()

	co.mu.Lock()
	defer co.mu.Unlock()
	if co.groupsLeft > 0 {
		// Only cancellation leaves groups behind (failures fall back
		// in-process); account them exactly like the in-process pool.
		out.Cancelled = true
		telemetry.Add(telemetry.CtrGroupsCancelled, int64(co.groupsLeft))
	}
	return nil
}

// buildJob renders the one-time job frame: netlist text, stimulus text,
// faults by node name, and the canonical per-group run options.
func (co *coordinator) buildJob(seq *sim.Sequence) error {
	var nb strings.Builder
	if err := bench.Write(&nb, co.c); err != nil {
		return fmt.Errorf("shard: serialize netlist: %w", err)
	}
	wfs := make([]wireFault, len(co.faults))
	for i, f := range co.faults {
		wfs[i] = wireFault{Node: co.c.Nodes[f.Node].Name, Pin: f.Pin, Stuck: f.Stuck, Kind: f.Kind}
		if f.Kind == fault.KindBridge {
			wfs[i].Node2 = co.c.Nodes[f.Node2].Name
		}
	}
	co.job = jobMsg{
		Type: "job", Proto: ProtoVersion,
		Bench:      nb.String(),
		Seq:        seq.String(),
		Faults:     wfs,
		Init:       uint8(co.fopts.Init),
		Stop:       co.stop,
		TimeOffset: co.fopts.TimeOffset,
		Kernel:     co.fopts.Kernel.String(),
		SlabLanes:  co.fopts.SlabLanes,
		SaveStates: co.fopts.SaveStates,
	}
	if co.fopts.InitialStates != nil {
		co.job.InitialStates = make([][]string, len(co.fopts.InitialStates))
		for g, st := range co.fopts.InitialStates {
			co.job.InitialStates[g] = encodeWords(st)
		}
	}
	return nil
}

// next blocks until a range is available, every group is done, or the run
// is cancelled. ok=false means "stop working".
func (co *coordinator) next() (grange, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	for {
		if co.cancelled || co.groupsLeft == 0 {
			return grange{}, false
		}
		if len(co.queue) > 0 {
			r := co.queue[0]
			co.queue = co.queue[1:]
			return r, true
		}
		co.cond.Wait()
	}
}

// requeue puts a lost range's unfinished tail back on the queue with one
// more retry on its clock.
func (co *coordinator) requeue(r grange) {
	co.mu.Lock()
	co.queue = append(co.queue, grange{lo: r.lo, hi: r.hi, retries: r.retries + 1})
	co.cond.Broadcast()
	co.mu.Unlock()
	telemetry.Add(telemetry.CtrShardRangesReassigned, 1)
}

// workerLoop is one dispatch slot: it owns at most one live worker process
// at a time, feeds it ranges, and on a loss respawns with backoff (the
// range's tail having been requeued for whoever gets to it first).
func (co *coordinator) workerLoop(w *workerProc) {
	defer func() {
		if w != nil {
			w.kill()
		}
	}()
	for {
		r, ok := co.next()
		if !ok {
			return
		}
		if r.retries > co.sopts.MaxRetries {
			co.runInProcess(r)
			continue
		}
		if w == nil {
			var err error
			w, err = co.spawn()
			if err != nil {
				// A spawn failure burns one of the range's retries so a
				// persistently unspawnable fleet degrades to the
				// in-process fallback instead of spinning.
				co.requeue(r)
				co.backoff(r.retries)
				continue
			}
		}
		progress, err := co.runRange(w, r)
		if err == errCancelled {
			return
		}
		if err != nil {
			w.kill()
			w = nil
			telemetry.Add(telemetry.CtrShardWorkersLost, 1)
			if progress < r.hi {
				co.requeue(grange{lo: progress, hi: r.hi, retries: r.retries})
			}
			co.backoff(r.retries)
		}
	}
}

func (co *coordinator) backoff(retries int) {
	d := co.sopts.BackoffBase << uint(min(retries, 5))
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	select {
	case <-time.After(d):
	case <-ctxDone(co.sopts.Ctx):
	}
}

var errCancelled = fmt.Errorf("shard: run cancelled")

// runRange dispatches [r.lo,r.hi) to w and applies the streamed group
// results. It returns the first group index NOT yet accepted from this
// range (the tail to reassign) plus an error describing the loss, or
// (r.hi, nil) on a clean range_done.
func (co *coordinator) runRange(w *workerProc, r grange) (progress int, err error) {
	progress = r.lo
	if err := writeFrame(w.stdin, rangeMsg{Type: "range", Lo: r.lo, Hi: r.hi}); err != nil {
		return progress, fmt.Errorf("shard: dispatch range: %w", err)
	}
	telemetry.Add(telemetry.CtrShardRangesDispatched, 1)
	timer := time.NewTimer(co.sopts.ProgressTimeout)
	defer timer.Stop()
	for {
		select {
		case fr, ok := <-w.frames:
			if !ok {
				return progress, fmt.Errorf("shard: worker exited mid-range (%v)", w.readErr())
			}
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(co.sopts.ProgressTimeout)
			switch fr.Type {
			case "group":
				if fr.Group < r.lo || fr.Group >= r.hi {
					return progress, fmt.Errorf("shard: group %d outside dispatched range [%d,%d)", fr.Group, r.lo, r.hi)
				}
				if err := co.apply(fr); err != nil {
					return progress, err
				}
				if fr.Group+1 > progress {
					progress = fr.Group + 1
				}
			case "range_done":
				return r.hi, nil
			case "error":
				return progress, fmt.Errorf("shard: worker error: %s", fr.Msg)
			default:
				return progress, fmt.Errorf("shard: unexpected frame %q", fr.Type)
			}
		case <-timer.C:
			return progress, fmt.Errorf("shard: worker made no progress for %v", co.sopts.ProgressTimeout)
		case <-ctxDone(co.sopts.Ctx):
			return progress, errCancelled
		}
	}
}

// apply merges one group result into the outcome, exactly once per group:
// a duplicate (a reassigned range re-streaming a group the coordinator
// already accepted from the original worker) is dropped, which keeps both
// the outcome regions and the folded telemetry deltas single-counted.
func (co *coordinator) apply(fr anyMsg) error {
	g := fr.Group
	lo := g * fsim.GroupSize
	hi := min(lo+fsim.GroupSize, len(co.faults))
	det, err := strconv.ParseUint(fr.Det, 16, 64)
	if err != nil {
		return fmt.Errorf("shard: group %d: bad detection mask %q", g, fr.Det)
	}
	if det>>uint(hi-lo) != 0 {
		return fmt.Errorf("shard: group %d: detection mask %#x wider than %d faults", g, det, hi-lo)
	}
	n := bits.OnesCount64(det)
	if n != len(fr.DetTimes) || n != fr.NumDet {
		return fmt.Errorf("shard: group %d: %d detections, %d times, num_det=%d", g, n, len(fr.DetTimes), fr.NumDet)
	}
	var state []logic.W
	if co.fopts.SaveStates {
		if state, err = decodeWords(fr.State); err != nil {
			return err
		}
		if len(state) != len(co.c.DFFs) {
			return fmt.Errorf("shard: group %d: %d state words for %d flip-flops", g, len(state), len(co.c.DFFs))
		}
	}

	co.mu.Lock()
	if co.done[g] {
		co.mu.Unlock()
		return nil
	}
	co.done[g] = true
	co.groupsLeft--
	last := co.groupsLeft == 0
	ti := 0
	for k := 0; k < hi-lo; k++ {
		if det&(1<<uint(k)) != 0 {
			co.out.Detected[lo+k] = true
			co.out.DetTime[lo+k] = fr.DetTimes[ti]
			ti++
		}
	}
	co.out.NumDetected += fr.NumDet
	if co.fopts.SaveStates {
		co.out.FinalStates[g] = state
	}
	if last {
		co.cond.Broadcast()
	}
	co.mu.Unlock()

	// Fold the worker's counter delta into this process's totals so the
	// deterministic work counters match the in-process run exactly (each
	// accepted group counted once; a killed worker's unreported partial
	// work never counted — same as work that never ran).
	for name, v := range fr.Counters {
		if id, ok := telemetry.Lookup(name); ok {
			telemetry.Add(id, v)
		}
	}
	return nil
}

// runInProcess is the last-resort path for a range whose retries are
// exhausted: simulate its unfinished groups right here, one single-group
// fsim run each — the same computation the worker would have done, counted
// directly on this process's telemetry.
func (co *coordinator) runInProcess(r grange) {
	s := fsim.New(co.c)
	for g := r.lo; g < r.hi; g++ {
		co.mu.Lock()
		skip := co.done[g]
		cancelled := co.cancelled
		co.mu.Unlock()
		if cancelled {
			return
		}
		if skip {
			continue
		}
		lo := g * fsim.GroupSize
		hi := min(lo+fsim.GroupSize, len(co.faults))
		opts := fsim.Options{
			Init:       co.fopts.Init,
			StopTime:   co.stop,
			TimeOffset: co.fopts.TimeOffset,
			SaveStates: co.fopts.SaveStates,
			Kernel:     co.fopts.Kernel,
			SlabLanes:  co.fopts.SlabLanes,
		}
		if co.fopts.InitialStates != nil {
			opts.InitialStates = [][]logic.W{co.fopts.InitialStates[g]}
		}
		sub := s.Run(co.seqRef, co.faults[lo:hi], opts)

		co.mu.Lock()
		if !co.done[g] {
			co.done[g] = true
			co.groupsLeft--
			copy(co.out.Detected[lo:hi], sub.Detected)
			copy(co.out.DetTime[lo:hi], sub.DetTime)
			co.out.NumDetected += sub.NumDetected
			if co.fopts.SaveStates {
				co.out.FinalStates[g] = sub.FinalStates[0]
			}
			if co.groupsLeft == 0 {
				co.cond.Broadcast()
			}
		}
		co.mu.Unlock()
	}
}

// ctxDone adapts a possibly-nil context to a select-able channel (nil
// blocks forever, i.e. never cancels).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}
