// Package shard extends the deterministic fault-group merge of internal/fsim
// from goroutines to worker subprocesses: a coordinator partitions a run's
// 63-fault groups into contiguous ranges and fans them out to N shard-worker
// processes over a length-prefixed stdin/stdout protocol, then merges the
// per-group partial outcomes into the caller's Outcome exactly the way the
// in-process worker pool does (disjoint per-group slice regions, detection
// counts summed in group order). Because fault groups are fully independent,
// the merged Outcome is bit-identical to an in-process Workers=1 run for any
// process count, any range partition, and any failure/reassignment schedule.
//
// Robustness is first-class: the coordinator detects worker exits and
// progress stalls, requeues the unfinished tail of a lost range with bounded
// retries and exponential backoff, respawns workers, and — as a last resort —
// simulates an undeliverable range in-process, so a run that starts always
// completes with the exact in-process result. Cancellation via Options.Ctx
// stops dispatching at group granularity and accounts skipped groups on the
// fsim.groups_cancelled counter, mirroring the in-process pool's semantics.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/logic"
)

// ProtoVersion is the identity header of the shard wire protocol. The
// coordinator sends it in the job frame and the worker echoes it in its
// hello frame; any mismatch aborts the handshake before a single group is
// simulated, so a version skew can never silently corrupt a merge. Bump the
// suffix on any change to frame layout or message semantics.
const ProtoVersion = "wbist-shard/v2"

// maxFrame bounds a single frame so a corrupt or hostile length prefix
// cannot drive an unbounded allocation. Netlist plus full fault universe of
// the largest suite circuit is a few MB; 1 GiB is comfortably above any
// legitimate job.
const maxFrame = 1 << 30

// writeFrame writes one length-prefixed JSON frame: a 4-byte big-endian
// payload length followed by the marshalled message.
func writeFrame(w io.Writer, msg any) error {
	payload, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("shard: marshal frame: %w", err)
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("shard: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame and unmarshals it into msg.
// io.EOF is returned verbatim on a clean end-of-stream (no partial header).
func readFrame(r io.Reader, msg any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("shard: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("shard: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("shard: read frame payload: %w", err)
	}
	if err := json.Unmarshal(payload, msg); err != nil {
		return fmt.Errorf("shard: decode frame: %w", err)
	}
	return nil
}

// wireFault identifies a fault by node NAME, not NodeID: node ids are
// assigned in parse order and do not survive the bench round trip the
// netlist takes to reach the worker, while names (and fanin pin order) do.
type wireFault struct {
	Node  string `json:"n"`
	Pin   int    `json:"p"`
	Stuck uint8  `json:"s"`
	// Kind discriminates the fault model (fault.Kind: 0 stuck-at, 1
	// transition, 2 bridge); Node2 names the second stem of a bridge fault.
	// Both were added in wbist-shard/v2 — dropping them would silently
	// degrade transition/bridge faults to stuck-at in the worker.
	Kind  uint8  `json:"k,omitempty"`
	Node2 string `json:"n2,omitempty"`
}

// jobMsg is the first coordinator→worker frame: everything a worker needs to
// reconstruct the run — netlist text, canonical run options, the fault list,
// and the stimulus — so that every later range frame is just two integers.
type jobMsg struct {
	Type  string `json:"type"` // "job"
	Proto string `json:"proto"`
	// Bench is the netlist in .bench text form (bench.Write output).
	Bench string `json:"bench"`
	// Seq is the stimulus in sim.Sequence text form.
	Seq    string      `json:"seq"`
	Faults []wireFault `json:"faults"`
	// Init is the flip-flop initialisation (logic.V).
	Init uint8 `json:"init"`
	// Stop is the resolved vector count to simulate (StopTime already
	// folded in by the coordinator).
	Stop       int    `json:"stop"`
	TimeOffset int    `json:"time_offset,omitempty"`
	Kernel     string `json:"kernel"`
	SlabLanes  int    `json:"slab_lanes,omitempty"`
	SaveStates bool   `json:"save_states,omitempty"`
	// InitialStates, if non-nil, carries every group's starting flip-flop
	// state as hex "zeros:ones" dual-rail word pairs (index = group).
	InitialStates [][]string `json:"initial_states,omitempty"`
}

// helloMsg is the worker's handshake reply. The echoed proto plus the
// parsed-world shape (groups/faults/flip-flops) lets the coordinator reject
// a mismatched worker before dispatching any range.
type helloMsg struct {
	Type   string `json:"type"` // "hello"
	Proto  string `json:"proto"`
	Groups int    `json:"groups"`
	Faults int    `json:"faults"`
	DFFs   int    `json:"dffs"`
}

// rangeMsg dispatches the contiguous group range [Lo,Hi) to a worker.
type rangeMsg struct {
	Type string `json:"type"` // "range"
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
}

// groupMsg streams one completed group back to the coordinator. Streaming
// per group (not per range) is what makes reassignment exact: every group
// the coordinator has accepted stays accepted, and only a lost range's
// unfinished tail is ever re-simulated.
type groupMsg struct {
	Type  string `json:"type"` // "group"
	Group int    `json:"g"`
	// Det is the detection bitmask over the group's faults (bit k =
	// faults[g*GroupSize+k]), hex-encoded: a group holds at most 63 faults,
	// so one uint64 always suffices.
	Det string `json:"det"`
	// DetTimes lists the detection time of each detected fault, in fault
	// order (TimeOffset already applied by the worker). len(DetTimes) ==
	// popcount(Det).
	DetTimes []int `json:"det_times,omitempty"`
	NumDet   int   `json:"num_det"`
	// State is the group's final flip-flop state ("zeros:ones" hex pairs),
	// present only when the job requested SaveStates.
	State []string `json:"state,omitempty"`
	// Counters carries the telemetry delta this group's simulation produced
	// in the worker, keyed by exported counter name. The coordinator folds
	// the delta exactly once per accepted group, so the deterministic work
	// counters (gate_evals, vectors, group_passes, faults_dropped, ...)
	// stay invariant across process counts, crashes, and reassignments.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// rangeDoneMsg acknowledges that every group of [Lo,Hi) has been streamed.
type rangeDoneMsg struct {
	Type string `json:"type"` // "range_done"
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
}

// errorMsg reports a fatal worker-side error; the worker exits after
// sending it.
type errorMsg struct {
	Type string `json:"type"` // "error"
	Msg  string `json:"msg"`
}

// anyMsg is the decode target for worker→coordinator frames: a union of
// every message the worker can send, discriminated by Type.
type anyMsg struct {
	Type     string           `json:"type"`
	Proto    string           `json:"proto,omitempty"`
	Groups   int              `json:"groups,omitempty"`
	Faults   int              `json:"faults,omitempty"`
	DFFs     int              `json:"dffs,omitempty"`
	Group    int              `json:"g,omitempty"`
	Det      string           `json:"det,omitempty"`
	DetTimes []int            `json:"det_times,omitempty"`
	NumDet   int              `json:"num_det,omitempty"`
	State    []string         `json:"state,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Lo       int              `json:"lo,omitempty"`
	Hi       int              `json:"hi,omitempty"`
	Msg      string           `json:"msg,omitempty"`
}

// encodeWords renders dual-rail words as "zeros:ones" hex pairs. JSON
// numbers lose integer precision past 2^53, so 64-bit rails go over the wire
// as strings.
func encodeWords(ws []logic.W) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = fmt.Sprintf("%x:%x", w.Zeros, w.Ones)
	}
	return out
}

// decodeWords parses the encodeWords format.
func decodeWords(ss []string) ([]logic.W, error) {
	out := make([]logic.W, len(ss))
	for i, s := range ss {
		if _, err := fmt.Sscanf(s, "%x:%x", &out[i].Zeros, &out[i].Ones); err != nil {
			return nil, fmt.Errorf("shard: bad state word %q: %w", s, err)
		}
	}
	return out, nil
}
