package shard

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/logic"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// WorkerEnv is the environment marker that turns a process into a shard
// worker. The coordinator re-execs the current binary with it set, so any
// binary (including `go test` binaries) can serve as its own worker fleet —
// it only has to call MaybeWorker before doing anything else.
const WorkerEnv = "WBIST_SHARD_WORKER"

// Crash-injection hooks, read by the worker loop. They exist for the
// crash-injection test harness and the CI shard-smoke job: CrashAfterEnv
// makes the worker exit(3) after streaming that many group results,
// WedgeAfterEnv makes it hang forever instead (forcing the coordinator's
// progress deadline to fire). The coordinator never forwards its own
// injection variables to workers — see workerEnv — so only a spawn the test
// explicitly targets misbehaves.
const (
	CrashAfterEnv = "WBIST_SHARD_CRASH_AFTER"
	WedgeAfterEnv = "WBIST_SHARD_WEDGE_AFTER"
)

// MaybeWorker turns the process into a shard worker if the coordinator
// spawned it as one (WorkerEnv is set), and never returns in that case.
// Call it first thing in main() — and in TestMain of any test package that
// simulates with ShardProcs > 1 — before flags, logging, or anything else
// touches stdin/stdout.
func MaybeWorker() {
	if os.Getenv(WorkerEnv) == "" {
		return
	}
	if err := WorkerMain(os.Stdin, os.Stdout); err != nil && err != io.EOF {
		fmt.Fprintf(os.Stderr, "shard worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// WorkerMain runs the shard worker loop: read the job frame, answer with a
// hello, then simulate dispatched group ranges until stdin closes. Each
// group is simulated as an independent single-group fsim run (group
// independence is the repo's core invariant, so the per-group outcome is
// bit-identical to the same group inside one big run) and streamed back the
// moment it completes, together with the telemetry counter delta it
// produced.
func WorkerMain(stdin io.Reader, stdout io.Writer) error {
	in := bufio.NewReader(stdin)
	out := bufio.NewWriter(stdout)
	fail := func(err error) error {
		_ = writeFrame(out, errorMsg{Type: "error", Msg: err.Error()})
		_ = out.Flush()
		return err
	}

	var job jobMsg
	if err := readFrame(in, &job); err != nil {
		return err
	}
	if job.Type != "job" {
		return fail(fmt.Errorf("shard: expected job frame, got %q", job.Type))
	}
	if job.Proto != ProtoVersion {
		return fail(fmt.Errorf("shard: protocol mismatch: coordinator %q, worker %q", job.Proto, ProtoVersion))
	}
	w, err := newWorkerRun(&job)
	if err != nil {
		return fail(err)
	}
	if err := writeFrame(out, helloMsg{
		Type: "hello", Proto: ProtoVersion,
		Groups: w.numGroups(), Faults: len(w.faults), DFFs: len(w.c.DFFs),
	}); err != nil {
		return err
	}
	if err := out.Flush(); err != nil {
		return err
	}

	crashAfter := envInt(CrashAfterEnv)
	wedgeAfter := envInt(WedgeAfterEnv)
	streamed := 0
	for {
		var rng rangeMsg
		if err := readFrame(in, &rng); err != nil {
			if err == io.EOF {
				return nil // coordinator closed stdin: clean shutdown
			}
			return err
		}
		if rng.Type != "range" {
			return fail(fmt.Errorf("shard: expected range frame, got %q", rng.Type))
		}
		if rng.Lo < 0 || rng.Hi > w.numGroups() || rng.Lo >= rng.Hi {
			return fail(fmt.Errorf("shard: range [%d,%d) out of bounds for %d groups", rng.Lo, rng.Hi, w.numGroups()))
		}
		for g := rng.Lo; g < rng.Hi; g++ {
			msg := w.runGroup(g)
			if err := writeFrame(out, msg); err != nil {
				return err
			}
			if err := out.Flush(); err != nil {
				return err
			}
			streamed++
			if crashAfter > 0 && streamed >= crashAfter {
				os.Exit(3)
			}
			if wedgeAfter > 0 && streamed >= wedgeAfter {
				select {} // wedge: alive but silent until killed
			}
		}
		if err := writeFrame(out, rangeDoneMsg{Type: "range_done", Lo: rng.Lo, Hi: rng.Hi}); err != nil {
			return err
		}
		if err := out.Flush(); err != nil {
			return err
		}
	}
}

func envInt(name string) int {
	v := os.Getenv(name)
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0
	}
	return n
}

// workerRun is the decoded world of one job: circuit, stimulus, faults and
// per-group run options, plus a scratch simulator reused across groups.
type workerRun struct {
	c      *circuit.Circuit
	seq    *sim.Sequence
	faults []fault.Fault
	sim    *fsim.Simulator
	job    *jobMsg
	kernel fsim.Kernel
	states [][]logic.W // per-group initial states (nil when absent)
}

func newWorkerRun(job *jobMsg) (*workerRun, error) {
	c, err := bench.Parse("shard-job", strings.NewReader(job.Bench))
	if err != nil {
		return nil, fmt.Errorf("shard: parse netlist: %w", err)
	}
	seq, err := sim.ParseSequence(job.Seq)
	if err != nil {
		return nil, fmt.Errorf("shard: parse sequence: %w", err)
	}
	faults := make([]fault.Fault, len(job.Faults))
	for i, wf := range job.Faults {
		id, ok := c.Lookup(wf.Node)
		if !ok {
			return nil, fmt.Errorf("shard: fault node %q not in netlist", wf.Node)
		}
		faults[i] = fault.Fault{Node: id, Pin: wf.Pin, Stuck: wf.Stuck, Kind: wf.Kind}
		if wf.Kind == fault.KindBridge {
			id2, ok := c.Lookup(wf.Node2)
			if !ok {
				return nil, fmt.Errorf("shard: bridge fault node %q not in netlist", wf.Node2)
			}
			faults[i].Node2 = id2
		}
	}
	// The coordinator ships the kernel it already resolved; a parse failure
	// here would mean a silent kernel mismatch (and counter divergence), so
	// reject it loudly.
	kernel, err := fsim.ParseKernel(job.Kernel)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	w := &workerRun{c: c, seq: seq, faults: faults, sim: fsim.New(c), job: job, kernel: kernel}
	if job.InitialStates != nil {
		if len(job.InitialStates) != w.numGroups() {
			return nil, fmt.Errorf("shard: %d initial states for %d groups", len(job.InitialStates), w.numGroups())
		}
		w.states = make([][]logic.W, len(job.InitialStates))
		for g, enc := range job.InitialStates {
			st, err := decodeWords(enc)
			if err != nil {
				return nil, err
			}
			if len(st) != len(c.DFFs) {
				return nil, fmt.Errorf("shard: initial state %d has %d words for %d flip-flops", g, len(st), len(c.DFFs))
			}
			w.states[g] = st
		}
	}
	return w, nil
}

func (w *workerRun) numGroups() int {
	return (len(w.faults) + fsim.GroupSize - 1) / fsim.GroupSize
}

// runGroup simulates group g alone and packages its partial outcome. The
// counter delta is measured around the run with process-global snapshots:
// the worker process does nothing else, so the delta is exactly this
// group's work.
func (w *workerRun) runGroup(g int) groupMsg {
	lo := g * fsim.GroupSize
	hi := min(lo+fsim.GroupSize, len(w.faults))
	opts := fsim.Options{
		Init:       logic.V(w.job.Init),
		StopTime:   w.job.Stop,
		TimeOffset: w.job.TimeOffset,
		SaveStates: w.job.SaveStates,
		Kernel:     w.kernel,
		SlabLanes:  w.job.SlabLanes,
	}
	if w.states != nil {
		opts.InitialStates = [][]logic.W{w.states[g]}
	}
	before := telemetry.Counters()
	out := w.sim.Run(w.seq, w.faults[lo:hi], opts)
	delta := telemetry.Counters().Sub(before)

	var det uint64
	var times []int
	for k, d := range out.Detected {
		if d {
			det |= 1 << uint(k)
			times = append(times, out.DetTime[k])
		}
	}
	msg := groupMsg{
		Type:     "group",
		Group:    g,
		Det:      strconv.FormatUint(det, 16),
		DetTimes: times,
		NumDet:   out.NumDetected,
		Counters: delta.Map(),
	}
	if w.job.SaveStates {
		msg.State = encodeWords(out.FinalStates[0])
	}
	return msg
}
