package shard

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"
)

// workerProc is one live worker subprocess: its stdin for dispatch frames
// and a channel of decoded stdout frames fed by a dedicated reader
// goroutine (which is what lets runRange select frames against the progress
// deadline and the run context).
type workerProc struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	frames chan anyMsg

	mu       sync.Mutex
	rerr     error // why the reader stopped (EOF, decode error, ...)
	killOnce sync.Once
}

func (w *workerProc) readErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rerr
}

// kill tears the worker down exactly once: close its stdin (a healthy
// worker exits on EOF), kill the process, drain the frame channel until the
// reader goroutine stops (late frames from a worker declared lost are
// discarded — a reassigned duplicate would be dropped by apply anyway), and
// reap it.
func (w *workerProc) kill() {
	w.killOnce.Do(func() {
		_ = w.stdin.Close()
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
		for range w.frames {
		}
		_ = w.cmd.Wait()
	})
}

// spawn starts worker number co.spawns, wires its pipes, and performs the
// job handshake: job frame out, hello frame back, identity and world-shape
// validated. A non-nil error means no range was (or will be) dispatched to
// this process and it has been cleaned up.
func (co *coordinator) spawn() (*workerProc, error) {
	co.mu.Lock()
	idx := co.spawns
	co.spawns++
	co.mu.Unlock()

	argv := co.sopts.WorkerArgv
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = co.workerEnv(idx)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("shard: worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("shard: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("shard: start worker %v: %w", argv, err)
	}

	w := &workerProc{cmd: cmd, stdin: stdin, frames: make(chan anyMsg, 16)}
	go func() {
		defer close(w.frames)
		in := bufio.NewReader(stdout)
		for {
			var fr anyMsg
			if err := readFrame(in, &fr); err != nil {
				w.mu.Lock()
				w.rerr = err
				w.mu.Unlock()
				return
			}
			w.frames <- fr
		}
	}()

	if err := writeFrame(stdin, co.job); err != nil {
		w.kill()
		return nil, fmt.Errorf("shard: send job: %w", err)
	}
	select {
	case fr, ok := <-w.frames:
		if !ok {
			err := fmt.Errorf("shard: worker died during handshake (%v)", w.readErr())
			w.kill()
			return nil, err
		}
		if fr.Type == "error" {
			w.kill()
			return nil, fmt.Errorf("shard: worker rejected job: %s", fr.Msg)
		}
		if fr.Type != "hello" {
			w.kill()
			return nil, fmt.Errorf("shard: expected hello, got %q", fr.Type)
		}
		if fr.Proto != ProtoVersion {
			w.kill()
			return nil, fmt.Errorf("shard: protocol mismatch: worker %q, coordinator %q", fr.Proto, ProtoVersion)
		}
		if fr.Groups != co.numGroups || fr.Faults != len(co.faults) || fr.DFFs != len(co.c.DFFs) {
			w.kill()
			return nil, fmt.Errorf("shard: worker world mismatch: %d/%d groups, %d/%d faults, %d/%d flip-flops",
				fr.Groups, co.numGroups, fr.Faults, len(co.faults), fr.DFFs, len(co.c.DFFs))
		}
	case <-time.After(co.sopts.ProgressTimeout):
		w.kill()
		return nil, fmt.Errorf("shard: worker handshake timed out after %v", co.sopts.ProgressTimeout)
	case <-ctxDone(co.sopts.Ctx):
		w.kill()
		return nil, errCancelled
	}
	return w, nil
}

// workerEnv builds the environment of spawn idx: the coordinator's own
// environment minus every shard control variable (so injection directives
// aimed at the coordinator never leak into the whole fleet), plus the
// worker marker, plus whatever failure the test directives or the
// programmatic hook inject into THIS spawn.
func (co *coordinator) workerEnv(idx int) []string {
	env := make([]string, 0, len(os.Environ())+4)
	for _, kv := range os.Environ() {
		name, _, _ := strings.Cut(kv, "=")
		switch name {
		case WorkerEnv, CrashAfterEnv, WedgeAfterEnv, TestCrashSpawnEnv, TestWedgeSpawnEnv:
			continue
		}
		env = append(env, kv)
	}
	env = append(env, WorkerEnv+"=1")
	if n, ok := spawnDirective(os.Getenv(TestCrashSpawnEnv), idx); ok {
		env = append(env, fmt.Sprintf("%s=%d", CrashAfterEnv, n))
	}
	if n, ok := spawnDirective(os.Getenv(TestWedgeSpawnEnv), idx); ok {
		env = append(env, fmt.Sprintf("%s=%d", WedgeAfterEnv, n))
	}
	if co.sopts.WorkerExtraEnv != nil {
		env = append(env, co.sopts.WorkerExtraEnv(idx)...)
	}
	return env
}

// spawnDirective parses an "<spawnIndex>:<afterGroups>" injection directive
// and reports the afterGroups payload when it targets spawn idx.
func spawnDirective(dir string, idx int) (int, bool) {
	s, n, ok := strings.Cut(dir, ":")
	if !ok {
		return 0, false
	}
	spawn, err1 := strconv.Atoi(s)
	after, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil || spawn != idx || after <= 0 {
		return 0, false
	}
	return after, true
}
