package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/lfsr"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Options tune the weight-assignment selection procedure of Section 4.2.
// The zero value selects the paper's configuration.
type Options struct {
	// LG is the length of the test sequence generated per weight assignment
	// (the paper uses 2000). It is raised internally to u+1 when targeting a
	// fault detected at time u, so the reproduction guarantee always holds.
	LG int
	// Init is the initial flip-flop value used during fault simulation.
	Init logic.V
	// SampleFirst enables the simulation-effort reduction of Section 4.2:
	// each candidate sequence first simulates one fault group holding the
	// target fault plus a random sample; if nothing in that group is
	// detected, the remaining groups are skipped.
	SampleFirst bool
	// NoSampleFirst disables SampleFirst (kept separate so the zero value
	// means "paper configuration").
	NoSampleFirst bool
	// NoForceFullLength disables the Section 4.1 modification that prepends
	// a full-length subsequence to each A_i when no full-length assignment
	// exists. (Ablation; with the modification off, a fault that no candidate
	// assignment detects is abandoned once L_S reaches its detection time.)
	NoForceFullLength bool
	// NoMatchOrdering disables sorting A_i by n_m (ablation): entries stay in
	// weight-set order.
	NoMatchOrdering bool
	// MaxAssignmentsPerLength caps the candidate index j per (u, L_S) pair,
	// 0 = no cap beyond the natural size of the A_i sets.
	MaxAssignmentsPerLength int
	// RandomWindows applies this many L_G-cycle windows of pure pseudo-random
	// patterns (from an on-chip-realisable XNOR LFSR reset to zero) before
	// the weight selection, dropping the faults they detect. This is the
	// extension named as future work in the paper's conclusion: random
	// windows soak up the easy faults so fewer subsequences need generating.
	RandomWindows int
	// Seed drives the fault sampling.
	Seed uint64
	// Workers is the fault-simulation worker count handed to fsim (0 or 1 =
	// sequential). Results are bit-identical for any value; it only changes
	// wall-clock time.
	Workers int
	// Kernel selects the fsim gate-evaluation kernel (dense, event-driven or
	// slab; the zero value honors FSIM_KERNEL and defaults to event). Like
	// Workers, it leaves every result bit unchanged.
	Kernel fsim.Kernel
	// SlabLanes is the slab kernel's fault-group batch width W (0 = pick
	// adaptively; ignored by the other kernels). Like Workers, it leaves
	// every result bit unchanged.
	SlabLanes int
	// ShardProcs, when > 1, shards eligible fault-simulation runs over
	// that many worker subprocesses (internal/shard). Like Workers, it
	// leaves every result bit unchanged.
	ShardProcs int
	// Ctx, if non-nil, cancels the procedure: it is checked once per
	// candidate simulation (and threaded into fsim, which stops claiming
	// fault groups), so Run returns ctx.Err() promptly instead of finishing
	// the selection. A nil Ctx never cancels.
	Ctx context.Context
	// Span, when non-nil, is the parent telemetry span under which the
	// procedure records its phases ("core" with "random-windows" and
	// "selection" children). Later pipeline stages (obs, bist) also hang
	// their spans off it via the Result's echoed Options.
	Span *telemetry.Span
}

func (o *Options) fill() {
	if o.LG == 0 {
		o.LG = 2000
	}
}

func (o *Options) sampleFirst() bool { return !o.NoSampleFirst }

// Trace records one accepted weight assignment for reporting.
type Trace struct {
	// U is the detection time the assignment was built around.
	U int
	// LS is the maximum subsequence length allowed when it was built.
	LS int
	// J is the candidate index within the A_i sets.
	J int
	// Assignment is the accepted weight assignment.
	Assignment Assignment
	// NewlyDetected is the number of target faults it newly detected.
	NewlyDetected int
	// NewFaults lists the indices (into Result.TargetFaults) of the target
	// faults this assignment newly detected, ascending. NewDetTimes[k] is the
	// detection time of NewFaults[k] under the assignment's own sequence —
	// the per-assignment provenance behind the Table 6 accounting.
	NewFaults   []int
	NewDetTimes []int
}

// Result is the outcome of the selection procedure.
type Result struct {
	// Circuit is the circuit under test.
	Circuit *circuit.Circuit
	// T is the deterministic test sequence that guided the selection.
	T *sim.Sequence
	// TargetFaults are the faults detected by T (the procedure's targets).
	TargetFaults []fault.Fault
	// DetTime[i] is the detection time of TargetFaults[i] under T.
	DetTime []int
	// Omega is the selected weight assignments in generation order (before
	// reverse-order simulation).
	Omega []Assignment
	// Traces parallels Omega with bookkeeping for reports.
	Traces []Trace
	// S is the weight set accumulated by the procedure.
	S *WeightSet
	// Unreproduced counts target faults abandoned because no candidate
	// assignment detected them (possible only with NoForceFullLength).
	Unreproduced int
	// RandomDetected counts target faults detected by the pseudo-random
	// windows (only with Options.RandomWindows > 0); they need no weight
	// assignment.
	RandomDetected int
	// RandomSourceWidth is the LFSR width used for the random windows
	// (0 when RandomWindows is 0).
	RandomSourceWidth int
	// SimulatedSequences counts the candidate sequences fault-simulated.
	SimulatedSequences int
	// Options echoes the configuration used.
	Options Options
}

// Coverage returns the fraction of target faults detected by Omega's
// sequences (1.0 unless faults were abandoned).
func (r *Result) Coverage() float64 {
	if len(r.TargetFaults) == 0 {
		return 1
	}
	return 1 - float64(r.Unreproduced)/float64(len(r.TargetFaults))
}

// Run executes the overall procedure of Section 4.2: starting from the
// faults detected by T, it repeatedly targets the largest remaining
// detection time u, extends the weight set S with subsequences of growing
// length L_S that reproduce the tails of T ending at u, builds the sets A_i,
// generates candidate weight assignments, fault-simulates their sequences
// and keeps the useful ones, until every target fault is detected.
func Run(c *circuit.Circuit, t *sim.Sequence, targets []fault.Fault, detTime []int, opts Options) (*Result, error) {
	opts.fill()
	if len(targets) != len(detTime) {
		return nil, fmt.Errorf("core: %d targets but %d detection times", len(targets), len(detTime))
	}
	if t.NumInputs != c.NumInputs() {
		return nil, fmt.Errorf("core: sequence width %d for circuit with %d inputs", t.NumInputs, c.NumInputs())
	}
	for i, dt := range detTime {
		if dt < 0 || dt >= t.Len() {
			return nil, fmt.Errorf("core: target fault %d has detection time %d outside T (len %d)", i, dt, t.Len())
		}
	}
	res := &Result{
		Circuit:      c,
		T:            t,
		TargetFaults: targets,
		DetTime:      detTime,
		S:            NewWeightSet(),
		Options:      opts,
	}
	span := opts.Span.Child("core")
	defer span.End()
	rng := randutil.New(opts.Seed ^ 0x5eed)
	simulator := fsim.New(c)

	// Input projections of T, computed once.
	ti := make([][]logic.V, c.NumInputs())
	for i := range ti {
		ti[i] = t.Input(i)
	}

	// undetected[i] tracks the remaining target faults.
	undetected := make([]bool, len(targets))
	remaining := len(targets)
	for i := range undetected {
		undetected[i] = true
	}

	// Optional pseudo-random phase (the paper's stated future-work
	// extension): free-running XNOR-LFSR windows drop the random-testable
	// faults before any weights are selected.
	if opts.RandomWindows > 0 && remaining > 0 {
		rsp := span.Child("random-windows")
		res.RandomSourceWidth = lfsr.RandomSourceWidth(c.NumInputs())
		src, err := lfsr.NewXNOR(res.RandomSourceWidth)
		if err != nil {
			return nil, err
		}
		for w := 0; w < opts.RandomWindows && remaining > 0; w++ {
			if err := ctxErr(opts.Ctx); err != nil {
				rsp.End()
				return nil, err
			}
			seq := src.ParallelSequence(c.NumInputs(), opts.LG)
			var fl []fault.Fault
			var idx []int
			for i, und := range undetected {
				if und {
					fl = append(fl, targets[i])
					idx = append(idx, i)
				}
			}
			out := simulator.Run(seq, fl, fsim.Options{Init: opts.Init, Workers: opts.Workers, Kernel: opts.Kernel, SlabLanes: opts.SlabLanes, ShardProcs: opts.ShardProcs, Ctx: opts.Ctx})
			res.SimulatedSequences++
			telemetry.Add(telemetry.CtrCandidates, 1)
			for k := range fl {
				if out.Detected[k] {
					undetected[idx[k]] = false
					remaining--
					res.RandomDetected++
				}
			}
		}
		rsp.End()
	}

	// simulate runs the assignment's sequence against the remaining faults
	// (target fault first, then a sample, then the rest) and drops
	// detections. It returns the newly detected faults (ascending target
	// indices) with their detection times under the candidate sequence.
	simulate := func(a Assignment, lg, targetIdx int) (newFaults, newTimes []int) {
		order := make([]int, 0, remaining)
		order = append(order, targetIdx)
		var rest []int
		for i, u := range undetected {
			if u && i != targetIdx {
				rest = append(rest, i)
			}
		}
		// Random sample joins the first group alongside the target fault.
		perm := rng.Perm(len(rest))
		for _, k := range perm {
			order = append(order, rest[k])
		}
		fl := make([]fault.Fault, len(order))
		for k, i := range order {
			fl[k] = targets[i]
		}
		seq := a.GenSequence(lg)
		// With sampleFirst, group 0 (target fault + sample) always runs
		// alone; only a detecting candidate pays for the fan-out over the
		// remaining groups. The outcome's Aborted flag is deliberately
		// unused here: a zero-detection candidate is rejected by the n == 0
		// check below whether or not later groups were skipped.
		out := simulator.Run(seq, fl, fsim.Options{
			Init:                       opts.Init,
			AbortAfterFirstGroupIfNone: opts.sampleFirst(),
			Workers:                    opts.Workers,
			Kernel:                     opts.Kernel,
			SlabLanes:                  opts.SlabLanes,
			ShardProcs:                 opts.ShardProcs,
			Ctx:                        opts.Ctx,
		})
		res.SimulatedSequences++
		telemetry.Add(telemetry.CtrCandidates, 1)
		for k := range fl {
			if out.Detected[k] {
				i := order[k]
				if undetected[i] {
					undetected[i] = false
					remaining--
					newFaults = append(newFaults, i)
					newTimes = append(newTimes, out.DetTime[k])
				}
			}
		}
		// The scan above follows the shuffled simulation order; reports want
		// ascending target indices.
		sort.Sort(&faultTimePairs{newFaults, newTimes})
		return newFaults, newTimes
	}

	// maxDetTime returns the index of an undetected fault with the largest
	// detection time, or -1.
	maxDetTime := func() int {
		best, bestIdx := -1, -1
		for i, u := range undetected {
			if u && detTime[i] > best {
				best = detTime[i]
				bestIdx = i
			}
		}
		return bestIdx
	}

	anyAtTime := func(u int) int {
		for i, und := range undetected {
			if und && detTime[i] == u {
				return i
			}
		}
		return -1
	}

	ssp := span.Child("selection")
	for remaining > 0 {
		if err := ctxErr(opts.Ctx); err != nil {
			ssp.End()
			return nil, err
		}
		fIdx := maxDetTime()
		u := detTime[fIdx]
		for ls := 1; anyAtTime(u) >= 0; ls++ {
			if ls > u+1 {
				// Only reachable with NoForceFullLength: abandon the faults
				// at this detection time.
				for i, und := range undetected {
					if und && detTime[i] == u {
						undetected[i] = false
						remaining--
						res.Unreproduced++
					}
				}
				break
			}
			// Extend S with the derived subsequences of length ls ending at u.
			for i := range ti {
				if alpha, ok := DeriveWeight(ti[i], u, ls); ok {
					res.S.Add(alpha)
				}
			}
			// Build the sets A_i from S.
			ai := make([][]AiEntry, len(ti))
			for i := range ti {
				ai[i] = BuildAi(res.S.Subs, ti[i], u, ls)
				if opts.NoMatchOrdering {
					ai[i] = unsortedAi(res.S.Subs, ti[i], u, ls)
				}
			}
			// Section 4.1 modification: ensure a full-length assignment
			// exists at some candidate index.
			if !opts.NoForceFullLength && !fullLengthAligned(ai, ls) {
				for i := range ai {
					ai[i] = prependFullLength(ai[i], ls)
				}
			}
			maxJ := 0
			for i := range ai {
				if len(ai[i]) > maxJ {
					maxJ = len(ai[i])
				}
			}
			if opts.MaxAssignmentsPerLength > 0 && maxJ > opts.MaxAssignmentsPerLength {
				maxJ = opts.MaxAssignmentsPerLength
			}
			for j := 0; j < maxJ; j++ {
				if err := ctxErr(opts.Ctx); err != nil {
					ssp.End()
					return nil, err
				}
				tIdx := anyAtTime(u)
				if tIdx < 0 {
					break
				}
				a, ok := assignmentAt(ai, j)
				if !ok {
					break
				}
				// Section 4.2: only assignments containing at least one
				// subsequence of length ls are considered.
				if !a.HasLen(ls) {
					continue
				}
				lg := opts.LG
				if lg < u+1 {
					lg = u + 1
				}
				nf, nt := simulate(a, lg, tIdx)
				if len(nf) > 0 {
					res.Omega = append(res.Omega, a)
					res.Traces = append(res.Traces, Trace{
						U: u, LS: ls, J: j, Assignment: a, NewlyDetected: len(nf),
						NewFaults: nf, NewDetTimes: nt,
					})
				}
			}
		}
	}
	ssp.End()
	return res, nil
}

// ctxErr returns the cancellation error of a (possibly nil) context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// faultTimePairs sorts parallel (fault index, detection time) slices by
// ascending fault index.
type faultTimePairs struct{ faults, times []int }

func (p *faultTimePairs) Len() int           { return len(p.faults) }
func (p *faultTimePairs) Less(i, j int) bool { return p.faults[i] < p.faults[j] }
func (p *faultTimePairs) Swap(i, j int) {
	p.faults[i], p.faults[j] = p.faults[j], p.faults[i]
	p.times[i], p.times[j] = p.times[j], p.times[i]
}

// unsortedAi is the ablation variant of BuildAi: perfect matches in weight-set
// order, without the n_m sort.
func unsortedAi(s []string, ti []logic.V, u, maxLen int) []AiEntry {
	var out []AiEntry
	for idx, alpha := range s {
		if len(alpha) > maxLen || !PerfectMatch(alpha, ti, u) {
			continue
		}
		out = append(out, AiEntry{Index: idx, Alpha: alpha, Matches: CountMatches(alpha, ti)})
	}
	return out
}

// fullLengthAligned reports whether some candidate index j yields an
// assignment whose subsequences all have length ls.
func fullLengthAligned(ai [][]AiEntry, ls int) bool {
	maxJ := 0
	for i := range ai {
		if len(ai[i]) > maxJ {
			maxJ = len(ai[i])
		}
	}
	for j := 0; j < maxJ; j++ {
		all := true
		for i := range ai {
			if len(ai[i]) == 0 {
				return false
			}
			k := j
			if k >= len(ai[i]) {
				k = len(ai[i]) - 1
			}
			if len(ai[i][k].Alpha) != ls {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// prependFullLength moves (or inserts) a length-ls entry to the front of a.
func prependFullLength(a []AiEntry, ls int) []AiEntry {
	for k := range a {
		if len(a[k].Alpha) == ls {
			e := a[k]
			out := make([]AiEntry, 0, len(a))
			out = append(out, e)
			out = append(out, a[:k]...)
			out = append(out, a[k+1:]...)
			return out
		}
	}
	return a
}

// assignmentAt builds the j-th candidate assignment from the A_i sets,
// clipping j to each set's size (the paper increments j per input jointly;
// clipping keeps shorter sets usable while longer sets still advance).
func assignmentAt(ai [][]AiEntry, j int) (Assignment, bool) {
	subs := make([]string, len(ai))
	for i := range ai {
		if len(ai[i]) == 0 {
			return Assignment{}, false
		}
		k := j
		if k >= len(ai[i]) {
			k = len(ai[i]) - 1
		}
		subs[i] = ai[i][k].Alpha
	}
	return Assignment{Subs: subs}, true
}
