package core

import (
	"repro/internal/fault"
	"repro/internal/fsim"
)

// ReverseOrderCompact implements the postprocessing of Section 4.3: the
// weight assignments in omega are fault-simulated in reverse order of
// generation; an assignment is kept only if its sequence detects at least
// one fault not detected by the assignments processed before it (i.e.
// generated after it). The surviving assignments are returned in their
// original relative order.
//
// detTime must hold the detection time of each target under T; it is used to
// size each assignment's sequence exactly as during generation (LG raised to
// u+1 for the latest target).
func ReverseOrderCompact(r *Result) []Assignment {
	lg := r.Options.LG
	if lg == 0 {
		lg = 2000
	}
	maxU := 0
	for _, dt := range r.DetTime {
		if dt > maxU {
			maxU = dt
		}
	}
	if lg < maxU+1 {
		lg = maxU + 1
	}
	simulator := fsim.New(r.Circuit)
	undetected := make([]bool, len(r.TargetFaults))
	for i := range undetected {
		undetected[i] = true
	}
	remaining := len(r.TargetFaults)
	keep := make([]bool, len(r.Omega))
	for j := len(r.Omega) - 1; j >= 0 && remaining > 0; j-- {
		var fl []fault.Fault
		var idx []int
		for i, u := range undetected {
			if u {
				fl = append(fl, r.TargetFaults[i])
				idx = append(idx, i)
			}
		}
		seq := r.Omega[j].GenSequence(lg)
		out := simulator.Run(seq, fl, fsim.Options{Init: r.Options.Init, Workers: r.Options.Workers, Kernel: r.Options.Kernel, SlabLanes: r.Options.SlabLanes, ShardProcs: r.Options.ShardProcs})
		n := 0
		for k := range fl {
			if out.Detected[k] {
				undetected[idx[k]] = false
				remaining--
				n++
			}
		}
		if n > 0 {
			keep[j] = true
		}
	}
	var out []Assignment
	for j, k := range keep {
		if k {
			out = append(out, r.Omega[j])
		}
	}
	return out
}

// DetectionSets fault-simulates every assignment's sequence against all
// target faults (no dropping across assignments) and returns, per
// assignment, the bitset of detected target-fault indices. This is the input
// to the observation-point experiment's greedy selection (Section 5).
func DetectionSets(r *Result) []fsim.Bitset {
	lg := r.Options.LG
	if lg == 0 {
		lg = 2000
	}
	maxU := 0
	for _, dt := range r.DetTime {
		if dt > maxU {
			maxU = dt
		}
	}
	if lg < maxU+1 {
		lg = maxU + 1
	}
	simulator := fsim.New(r.Circuit)
	sets := make([]fsim.Bitset, len(r.Omega))
	for j := range r.Omega {
		seq := r.Omega[j].GenSequence(lg)
		out := simulator.Run(seq, r.TargetFaults, fsim.Options{Init: r.Options.Init, Workers: r.Options.Workers, Kernel: r.Options.Kernel, SlabLanes: r.Options.SlabLanes, ShardProcs: r.Options.ShardProcs})
		b := fsim.NewBitset(len(r.TargetFaults))
		for i := range r.TargetFaults {
			if out.Detected[i] {
				b.Set(i)
			}
		}
		sets[j] = b
	}
	return sets
}
