package core

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/lfsr"
	"repro/internal/logic"
	"repro/internal/sim"
)

// runS27 executes the full procedure on s27 with the paper's Table 1
// sequence.
func runS27(t *testing.T, opts Options) *Result {
	t.Helper()
	c := iscas.MustLoad("s27")
	seq, err := sim.ParseSequence(iscas.S27TestSequence)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	out := fsim.Run(c, seq, faults, fsim.Options{Init: opts.Init})
	var targets []fault.Fault
	var detTime []int
	for i := range faults {
		if out.Detected[i] {
			targets = append(targets, faults[i])
			detTime = append(detTime, out.DetTime[i])
		}
	}
	r, err := Run(c, seq, targets, detTime, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// verifyCoverage checks that omega's sequences jointly detect all target
// faults of r.
func verifyCoverage(t *testing.T, r *Result, omega []Assignment) {
	t.Helper()
	lg := r.Options.LG
	if lg == 0 {
		lg = 2000
	}
	for _, dt := range r.DetTime {
		if dt+1 > lg {
			lg = dt + 1
		}
	}
	undet := make([]bool, len(r.TargetFaults))
	for i := range undet {
		undet[i] = true
	}
	for _, a := range omega {
		seqG := a.GenSequence(lg)
		out := fsim.Run(r.Circuit, seqG, r.TargetFaults, fsim.Options{Init: r.Options.Init})
		for i := range r.TargetFaults {
			if out.Detected[i] {
				undet[i] = false
			}
		}
	}
	for i, u := range undet {
		if u {
			t.Errorf("target fault %s not covered by omega",
				r.TargetFaults[i].String(r.Circuit))
		}
	}
}

func TestProcedureS27CompleteCoverage(t *testing.T) {
	r := runS27(t, Options{LG: 100, Init: logic.X, Seed: 1})
	if r.Unreproduced != 0 {
		t.Fatalf("%d target faults abandoned", r.Unreproduced)
	}
	if len(r.Omega) == 0 {
		t.Fatal("no weight assignments selected")
	}
	if r.Coverage() != 1.0 {
		t.Fatalf("coverage %.3f", r.Coverage())
	}
	verifyCoverage(t, r, r.Omega)
	// Every assignment must be valid and have detected something new.
	for j, a := range r.Omega {
		if err := a.Validate(4); err != nil {
			t.Errorf("Omega[%d]: %v", j, err)
		}
		if r.Traces[j].NewlyDetected == 0 {
			t.Errorf("Omega[%d] recorded with 0 new detections", j)
		}
	}
}

func TestProcedureMaxSubseqLenShorterThanT(t *testing.T) {
	// The paper's headline observation: the maximum subsequence length is
	// significantly shorter than T. For s27 (|T| = 10) the subsequences
	// should not need to reach length 10.
	r := runS27(t, Options{LG: 100, Init: logic.X, Seed: 1})
	st := Accounting(r.Omega)
	if st.MaxLen >= 10 {
		t.Fatalf("max subsequence length %d is not shorter than |T| = 10", st.MaxLen)
	}
}

func TestReverseOrderCompactPreservesCoverage(t *testing.T) {
	r := runS27(t, Options{LG: 100, Init: logic.X, Seed: 1})
	compacted := ReverseOrderCompact(r)
	if len(compacted) > len(r.Omega) {
		t.Fatalf("compaction grew omega: %d > %d", len(compacted), len(r.Omega))
	}
	if len(compacted) == 0 {
		t.Fatal("compaction removed everything")
	}
	verifyCoverage(t, r, compacted)
}

func TestDetectionSets(t *testing.T) {
	r := runS27(t, Options{LG: 100, Init: logic.X, Seed: 1})
	sets := DetectionSets(r)
	if len(sets) != len(r.Omega) {
		t.Fatalf("%d sets for %d assignments", len(sets), len(r.Omega))
	}
	// Union of all sets must cover all targets (procedure reached 100%).
	covered := make([]bool, len(r.TargetFaults))
	for _, s := range sets {
		for i := range covered {
			if s.Get(i) {
				covered[i] = true
			}
		}
	}
	for i, cvd := range covered {
		if !cvd {
			t.Errorf("target %d missing from union of detection sets", i)
		}
	}
	// Each set must at least contain what the trace reported as new.
	for j, s := range sets {
		if s.Count() < r.Traces[j].NewlyDetected {
			t.Errorf("set %d smaller (%d) than its trace count (%d)",
				j, s.Count(), r.Traces[j].NewlyDetected)
		}
	}
}

func TestProcedureOnSyntheticCircuitWithATPG(t *testing.T) {
	c := iscas.MustLoad("s298")
	ar := atpg.Generate(c, atpg.Options{Seed: 5, Init: logic.Zero})
	var targets []fault.Fault
	var detTime []int
	for i := range ar.Faults {
		if ar.Detected[i] {
			targets = append(targets, ar.Faults[i])
			detTime = append(detTime, ar.DetTime[i])
		}
	}
	r, err := Run(c, ar.Seq, targets, detTime, Options{LG: 500, Init: logic.Zero, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.Unreproduced != 0 {
		t.Fatalf("%d targets abandoned", r.Unreproduced)
	}
	verifyCoverage(t, r, r.Omega)
	st := Accounting(r.Omega)
	if st.MaxLen >= ar.Seq.Len() {
		t.Errorf("max subsequence length %d not shorter than |T| = %d", st.MaxLen, ar.Seq.Len())
	}
	if st.NumFSMs > st.NumSubs {
		t.Errorf("more FSMs (%d) than subsequences (%d)", st.NumFSMs, st.NumSubs)
	}
}

func TestProcedureAblationNoForceFullLength(t *testing.T) {
	r := runS27(t, Options{LG: 100, Init: logic.X, Seed: 1, NoForceFullLength: true})
	// Without the modification some faults may be abandoned, but everything
	// that was covered must verify.
	covered := 0
	for range r.TargetFaults {
		covered++
	}
	if covered == 0 {
		t.Fatal("no targets")
	}
	if r.Coverage() < 0.5 {
		t.Fatalf("ablation coverage %.3f suspiciously low", r.Coverage())
	}
}

func TestProcedureAblationNoSampleFirst(t *testing.T) {
	a := runS27(t, Options{LG: 100, Init: logic.X, Seed: 1})
	b := runS27(t, Options{LG: 100, Init: logic.X, Seed: 1, NoSampleFirst: true})
	// Disabling the early abort cannot reduce coverage.
	if b.Coverage() < a.Coverage() {
		t.Fatal("disabling sample-first lost coverage")
	}
	verifyCoverage(t, b, b.Omega)
}

func TestProcedureAblationNoMatchOrdering(t *testing.T) {
	r := runS27(t, Options{LG: 100, Init: logic.X, Seed: 1, NoMatchOrdering: true})
	if r.Unreproduced != 0 {
		t.Fatalf("%d targets abandoned without match ordering", r.Unreproduced)
	}
	verifyCoverage(t, r, r.Omega)
}

func TestRunValidatesArguments(t *testing.T) {
	c := iscas.MustLoad("s27")
	seq, _ := sim.ParseSequence(iscas.S27TestSequence)
	faults := fault.CollapsedUniverse(c)
	// Mismatched lengths.
	if _, err := Run(c, seq, faults[:2], []int{1}, Options{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	// Detection time outside T.
	if _, err := Run(c, seq, faults[:1], []int{99}, Options{}); err == nil {
		t.Error("out-of-range detection time accepted")
	}
	// Wrong sequence width.
	wide := sim.NewSequence(5)
	wide.Append(make([]logic.V, 5))
	if _, err := Run(c, wide, faults[:1], []int{0}, Options{}); err == nil {
		t.Error("wrong width accepted")
	}
}

func TestRunEmptyTargets(t *testing.T) {
	c := iscas.MustLoad("s27")
	seq, _ := sim.ParseSequence(iscas.S27TestSequence)
	r, err := Run(c, seq, nil, nil, Options{LG: 10, Init: logic.X})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Omega) != 0 || r.Coverage() != 1.0 {
		t.Fatal("empty target set should yield empty omega at full coverage")
	}
}

func TestTracesConsistent(t *testing.T) {
	r := runS27(t, Options{LG: 100, Init: logic.X, Seed: 1})
	total := 0
	for j, tr := range r.Traces {
		if tr.Assignment.String() != r.Omega[j].String() {
			t.Errorf("trace %d assignment mismatch", j)
		}
		if tr.LS < 1 || tr.U < 0 || tr.U >= r.T.Len() {
			t.Errorf("trace %d has implausible u=%d ls=%d", j, tr.U, tr.LS)
		}
		if !r.Omega[j].HasLen(tr.LS) {
			t.Errorf("trace %d: assignment lacks a subsequence of length L_S=%d", j, tr.LS)
		}
		total += tr.NewlyDetected
	}
	if total != len(r.TargetFaults) {
		t.Errorf("traces account for %d detections, want %d", total, len(r.TargetFaults))
	}
}

var _ = circuit.Input // pin import

func TestProcedureWithRandomWindows(t *testing.T) {
	c := iscas.MustLoad("s298")
	ar := atpg.Generate(c, atpg.Options{Seed: 5, Init: logic.Zero})
	var targets []fault.Fault
	var detTime []int
	for i := range ar.Faults {
		if ar.Detected[i] {
			targets = append(targets, ar.Faults[i])
			detTime = append(detTime, ar.DetTime[i])
		}
	}
	base, err := Run(c, ar.Seq, targets, detTime, Options{LG: 500, Init: logic.Zero, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	withRand, err := Run(c, ar.Seq, targets, detTime, Options{LG: 500, Init: logic.Zero, Seed: 7, RandomWindows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if withRand.RandomDetected == 0 {
		t.Fatal("random windows detected nothing on a random-testable circuit")
	}
	if withRand.RandomSourceWidth != 8 {
		t.Fatalf("random source width %d", withRand.RandomSourceWidth)
	}
	if withRand.Unreproduced != 0 {
		t.Fatalf("%d targets abandoned", withRand.Unreproduced)
	}
	// The paper's prediction: random windows reduce the number of
	// subsequences that need generating.
	sBase := Accounting(base.Omega)
	sRand := Accounting(withRand.Omega)
	if sRand.NumSubs > sBase.NumSubs {
		t.Errorf("random windows increased subsequence count: %d vs %d",
			sRand.NumSubs, sBase.NumSubs)
	}
	// Random-phase detections plus weight-assignment detections must cover
	// every target exactly once.
	total := withRand.RandomDetected
	for _, tr := range withRand.Traces {
		total += tr.NewlyDetected
	}
	if total != len(targets) {
		t.Fatalf("detections account for %d of %d targets", total, len(targets))
	}
	// End-to-end: the hardware schedule (LFSR windows + weight windows)
	// must cover every target when applied per window.
	undet := make([]bool, len(targets))
	for i := range undet {
		undet[i] = true
	}
	src, err := lfsr.NewXNOR(withRand.RandomSourceWidth)
	if err != nil {
		t.Fatal(err)
	}
	mark := func(seq *sim.Sequence) {
		out := fsim.Run(c, seq, targets, fsim.Options{Init: logic.Zero})
		for i := range targets {
			if out.Detected[i] {
				undet[i] = false
			}
		}
	}
	for w := 0; w < 2; w++ {
		mark(src.ParallelSequence(c.NumInputs(), 500))
	}
	for _, a := range withRand.Omega {
		mark(a.GenSequence(500))
	}
	for i, u := range undet {
		if u {
			t.Errorf("target %s not covered by the schedule", targets[i].String(c))
		}
	}
}
