package core

import "repro/internal/logic"

// aliases keeping property tests terse
type logicV = logic.V

func fromBool(b bool) logic.V { return logic.FromBit(b) }
