package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/randutil"
)

func randomSub(rng *randutil.RNG, maxLen int) string {
	n := 1 + rng.Intn(maxLen)
	var b strings.Builder
	for i := 0; i < n; i++ {
		if rng.Bool() {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// TestGenSequencePeriodicityProperty: for any assignment, T_G(u) equals
// T_G(u + P) where P is the LCM-free per-input period len(α_i).
func TestGenSequencePeriodicityProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := randutil.New(seed)
		n := 1 + rng.Intn(6)
		a := Assignment{Subs: make([]string, n)}
		for i := range a.Subs {
			a.Subs[i] = randomSub(rng, 5)
		}
		const lg = 64
		seq := a.GenSequence(lg)
		for u := 0; u < lg; u++ {
			for i := range a.Subs {
				p := len(a.Subs[i])
				if u+p < lg && seq.At(u, i) != seq.At(u+p, i) {
					return false
				}
				if seq.At(u, i) != bitAt(a.Subs[i], u%p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAccountingInvariants: for any set of assignments, the hardware
// accounting obeys NumFSMs <= NumOutputs <= NumSubs and MaxLen bounds.
func TestAccountingInvariants(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := randutil.New(seed)
		nAsn := 1 + rng.Intn(6)
		width := 1 + rng.Intn(5)
		omega := make([]Assignment, nAsn)
		for j := range omega {
			subs := make([]string, width)
			for i := range subs {
				subs[i] = randomSub(rng, 6)
			}
			omega[j] = Assignment{Subs: subs}
		}
		st := Accounting(omega)
		if st.NumSeqs != nAsn {
			return false
		}
		if st.NumFSMs > st.NumOutputs || st.NumOutputs > st.NumSubs {
			return false
		}
		if st.NumSubs > nAsn*width {
			return false
		}
		for _, a := range omega {
			if a.MaxLen() > st.MaxLen {
				return false
			}
		}
		return st.MaxLen >= 1 && st.NumFSMs >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDeriveThenMatchProperty: a derived weight always perfectly matches and
// any perfectly matching weight of the same length IS the derived one
// (uniqueness of the Section 3 equation's solution).
func TestDeriveWeightUniqueness(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := randutil.New(seed)
		l := 4 + rng.Intn(12)
		ti := make([]logicV, l)
		for i := range ti {
			ti[i] = fromBool(rng.Bool())
		}
		u := rng.Intn(l)
		ls := 1 + rng.Intn(u+1)
		alpha, ok := DeriveWeight(ti, u, ls)
		if !ok {
			return false
		}
		// Any other subsequence of the same length must fail PerfectMatch.
		for mask := 0; mask < 1<<ls && ls <= 10; mask++ {
			var b strings.Builder
			for i := 0; i < ls; i++ {
				if mask>>i&1 == 1 {
					b.WriteByte('1')
				} else {
					b.WriteByte('0')
				}
			}
			s := b.String()
			if PerfectMatch(s, ti, u) != (s == alpha) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCountMatchesBounds: 0 <= n_m <= len(T).
func TestCountMatchesBounds(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := randutil.New(seed)
		l := 1 + rng.Intn(20)
		ti := make([]logicV, l)
		for i := range ti {
			ti[i] = fromBool(rng.Bool())
		}
		alpha := randomSub(rng, 6)
		n := CountMatches(alpha, ti)
		return n >= 0 && n <= l
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
