// Package core implements the paper's contribution: built-in generation of
// weighted test sequences for synchronous sequential circuits.
//
// A weight is a binary subsequence α (represented as a string over '0'/'1').
// Assigning weight α to primary input i means input i is driven with the
// periodic sequence α^r = αα…α. Weights are derived from a deterministic
// test sequence T so that around the detection time of each target fault the
// weighted sequence reproduces T exactly on every input (Section 3 of the
// paper); weight assignments are selected per Section 4 and pruned by
// reverse-order simulation (Section 4.3).
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/sim"
)

// Assignment is a weight assignment: one subsequence per primary input.
type Assignment struct {
	Subs []string
}

// String renders an assignment as "(01, 0, 100, 1)".
func (a Assignment) String() string {
	return "(" + strings.Join(a.Subs, ", ") + ")"
}

// MaxLen returns the longest subsequence length in the assignment.
func (a Assignment) MaxLen() int {
	m := 0
	for _, s := range a.Subs {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}

// HasLen reports whether some subsequence in the assignment has exactly
// length n.
func (a Assignment) HasLen(n int) bool {
	for _, s := range a.Subs {
		if len(s) == n {
			return true
		}
	}
	return false
}

// GenSequence produces the weighted test sequence T_G of length lg for the
// assignment: T_G(u)[i] = α_i[u mod |α_i|]. This models every weight FSM
// being reset at the start of the assignment's window and free-running from
// there (Section 3).
func (a Assignment) GenSequence(lg int) *sim.Sequence {
	seq := sim.NewSequence(len(a.Subs))
	vec := make([]logic.V, len(a.Subs))
	for u := 0; u < lg; u++ {
		for i, s := range a.Subs {
			vec[i] = bitAt(s, u%len(s))
		}
		seq.Append(vec)
	}
	return seq
}

func bitAt(s string, k int) logic.V {
	if s[k] == '1' {
		return logic.One
	}
	return logic.Zero
}

// DeriveWeight computes the unique subsequence α of length ls whose repeated
// sequence α^r reproduces ti on the window of the last ls time units ending
// at u: α[u' mod ls] = ti[u'] for u-ls+1 ≤ u' ≤ u (the equation of Section
// 3). It returns ok=false if the window does not fit (ls > u+1) or if the
// window contains an unknown value.
func DeriveWeight(ti []logic.V, u, ls int) (string, bool) {
	if ls <= 0 || ls > u+1 || u >= len(ti) {
		return "", false
	}
	buf := make([]byte, ls)
	for u2 := u - ls + 1; u2 <= u; u2++ {
		v := ti[u2]
		if !v.IsBinary() {
			return "", false
		}
		if v == logic.One {
			buf[u2%ls] = '1'
		} else {
			buf[u2%ls] = '0'
		}
	}
	return string(buf), true
}

// PerfectMatch reports whether α^r matches ti on the last len(α) time units
// ending at u: ti[u'] == α[u' mod |α|] for u-|α|+1 ≤ u' ≤ u.
func PerfectMatch(alpha string, ti []logic.V, u int) bool {
	ls := len(alpha)
	if ls == 0 || ls > u+1 || u >= len(ti) {
		return false
	}
	for u2 := u - ls + 1; u2 <= u; u2++ {
		if ti[u2] != bitAt(alpha, u2%ls) {
			return false
		}
	}
	return true
}

// CountMatches returns n_m: the number of time units u' over the whole
// sequence at which α^r(u') equals ti[u'].
func CountMatches(alpha string, ti []logic.V) int {
	n := 0
	for u := range ti {
		if ti[u] == bitAt(alpha, u%len(alpha)) {
			n++
		}
	}
	return n
}

// PrimitivePeriod returns the shortest subsequence producing the same
// repeated sequence as α (e.g. "0101" → "01", "000" → "0"). Used for the
// FSM accounting of Section 5 ("we eliminate α2 and use α1 instead").
func PrimitivePeriod(alpha string) string {
	n := len(alpha)
	for p := 1; p < n; p++ {
		if n%p != 0 {
			continue
		}
		ok := true
		for i := p; i < n; i++ {
			if alpha[i] != alpha[i%p] {
				ok = false
				break
			}
		}
		if ok {
			return alpha[:p]
		}
	}
	return alpha
}

// AiEntry is one candidate subsequence in a set A_i: the subsequence, its
// index in the weight set S, and its total match count n_m with T_i.
type AiEntry struct {
	Index   int
	Alpha   string
	Matches int
}

// BuildAi computes the set A_i of Section 4.1 for input projection ti at
// detection time u: every subsequence in S of length at most maxLen that
// perfectly matches the tail of ti ending at u, ordered by decreasing n_m,
// breaking ties by increasing length and then by position in S (shorter
// subsequences rank higher on ties, which the paper notes keeps generated
// sequences' periods large relative to the individual subsequences).
func BuildAi(s []string, ti []logic.V, u, maxLen int) []AiEntry {
	var out []AiEntry
	for idx, alpha := range s {
		if len(alpha) > maxLen {
			continue
		}
		if !PerfectMatch(alpha, ti, u) {
			continue
		}
		out = append(out, AiEntry{Index: idx, Alpha: alpha, Matches: CountMatches(alpha, ti)})
	}
	sort.SliceStable(out, func(a, b int) bool {
		ea, eb := out[a], out[b]
		if ea.Matches != eb.Matches {
			return ea.Matches > eb.Matches
		}
		if len(ea.Alpha) != len(eb.Alpha) {
			return len(ea.Alpha) < len(eb.Alpha)
		}
		return ea.Index < eb.Index
	})
	return out
}

// WeightSet is an ordered, deduplicated collection of subsequences (the set
// S of Section 3).
type WeightSet struct {
	Subs  []string
	index map[string]int
}

// NewWeightSet returns an empty weight set.
func NewWeightSet() *WeightSet {
	return &WeightSet{index: make(map[string]int)}
}

// Add inserts α if not already present and returns its index.
func (w *WeightSet) Add(alpha string) int {
	if i, ok := w.index[alpha]; ok {
		return i
	}
	i := len(w.Subs)
	w.Subs = append(w.Subs, alpha)
	w.index[alpha] = i
	return i
}

// Contains reports whether α is in the set.
func (w *WeightSet) Contains(alpha string) bool {
	_, ok := w.index[alpha]
	return ok
}

// Len returns the number of subsequences.
func (w *WeightSet) Len() int { return len(w.Subs) }

// HardwareStats summarises the BIST hardware cost of a set of weight
// assignments, as reported in Table 6 of the paper.
type HardwareStats struct {
	// NumSeqs is the number of weight assignments (= generated sequences).
	NumSeqs int
	// NumSubs is the number of distinct subsequences defining them.
	NumSubs int
	// MaxLen is the length of the longest subsequence.
	MaxLen int
	// NumFSMs is the number of weight-generating FSMs after primitive-period
	// reduction: one FSM per distinct subsequence length (Section 3).
	NumFSMs int
	// NumOutputs is the total number of FSM outputs: one per distinct
	// subsequence after primitive-period reduction.
	NumOutputs int
}

// Accounting computes the Table 6 hardware statistics for a set of weight
// assignments.
func Accounting(omega []Assignment) HardwareStats {
	st := HardwareStats{NumSeqs: len(omega)}
	subs := map[string]bool{}
	prim := map[string]bool{}
	lengths := map[int]bool{}
	for _, a := range omega {
		for _, s := range a.Subs {
			if !subs[s] {
				subs[s] = true
			}
			p := PrimitivePeriod(s)
			if !prim[p] {
				prim[p] = true
				lengths[len(p)] = true
			}
			if len(s) > st.MaxLen {
				st.MaxLen = len(s)
			}
		}
	}
	st.NumSubs = len(subs)
	st.NumFSMs = len(lengths)
	st.NumOutputs = len(prim)
	return st
}

// Validate checks that an assignment is well-formed (non-empty binary
// subsequences, one per input).
func (a Assignment) Validate(numInputs int) error {
	if len(a.Subs) != numInputs {
		return fmt.Errorf("core: assignment has %d subsequences for %d inputs", len(a.Subs), numInputs)
	}
	for i, s := range a.Subs {
		if len(s) == 0 {
			return fmt.Errorf("core: empty subsequence for input %d", i)
		}
		for k := 0; k < len(s); k++ {
			if s[k] != '0' && s[k] != '1' {
				return fmt.Errorf("core: subsequence %q for input %d is not binary", s, i)
			}
		}
	}
	return nil
}
