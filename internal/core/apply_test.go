package core

import (
	"testing"

	"repro/internal/logic"
)

func TestConcatSequence(t *testing.T) {
	omega := []Assignment{
		{Subs: []string{"01", "1"}},
		{Subs: []string{"0", "10"}},
	}
	seq := ConcatSequence(omega, 4)
	if seq.Len() != 8 || seq.NumInputs != 2 {
		t.Fatalf("shape %dx%d", seq.Len(), seq.NumInputs)
	}
	// First window: input 0 follows 01, input 1 constant 1.
	if seq.At(0, 0) != logic.Zero || seq.At(1, 0) != logic.One || seq.At(3, 1) != logic.One {
		t.Fatal("first window wrong")
	}
	// Second window restarts the subsequences.
	if seq.At(4, 0) != logic.Zero || seq.At(4, 1) != logic.One || seq.At(5, 1) != logic.Zero {
		t.Fatal("second window wrong")
	}
}

func TestConcatSequenceEmpty(t *testing.T) {
	seq := ConcatSequence(nil, 10)
	if seq.Len() != 0 {
		t.Fatal("empty omega should give empty sequence")
	}
}

func TestMeasureCoverageModes(t *testing.T) {
	r := runS27(t, Options{LG: 100, Init: logic.X, Seed: 1})
	perWin := MeasureCoverage(r, r.Omega, PerWindowReset)
	if perWin.Coverage() != 1.0 {
		t.Fatalf("per-window coverage %.3f, want 1.0 (the procedure's guarantee)", perWin.Coverage())
	}
	cont := MeasureCoverage(r, r.Omega, Continuous)
	// Continuous application can only help or match on circuits where the
	// initial state is reachable... in general it may differ; what must hold
	// is that the *first window* faults stay detected, so coverage is
	// nonzero, and the cycle counts line up.
	if cont.NumDetected == 0 {
		t.Fatal("continuous application detected nothing")
	}
	if cont.TotalCycles != perWin.TotalCycles {
		t.Fatalf("cycle counts differ: %d vs %d", cont.TotalCycles, perWin.TotalCycles)
	}
	if len(cont.Detected) != len(r.TargetFaults) {
		t.Fatal("wrong detected length")
	}
}

func TestMeasureCoverageEmptyTargets(t *testing.T) {
	r := &Result{Options: Options{LG: 10, Init: logic.Zero}}
	c := runS27(t, Options{LG: 100, Init: logic.X, Seed: 1})
	r.Circuit = c.Circuit
	rep := MeasureCoverage(r, nil, PerWindowReset)
	if rep.Coverage() != 1.0 || rep.NumDetected != 0 {
		t.Fatal("empty target handling wrong")
	}
}
