package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/sim"
)

// paperT returns the Table 1 test sequence of the paper.
func paperT(t *testing.T) *sim.Sequence {
	t.Helper()
	seq, err := sim.ParseSequence(iscas.S27TestSequence)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// paperS is the weight set of Table 4: all subsequences of length <= 3 in
// the paper's order.
var paperS = []string{
	"0", "1", "00", "10", "01", "11",
	"000", "100", "010", "110", "001", "101", "011", "111",
}

func TestDeriveWeightPaperSection3Example(t *testing.T) {
	// Section 3 example: s27, u = 8, L_S = 4.
	// Input 0: subsequence of T_0 ending at 8 is 1100 -> α = 0110.
	T := paperT(t)
	alpha, ok := DeriveWeight(T.Input(0), 8, 4)
	if !ok || alpha != "0110" {
		t.Fatalf("DeriveWeight(T_0, 8, 4) = %q,%v want 0110", alpha, ok)
	}
	// Input 1: α = 0000.
	alpha, ok = DeriveWeight(T.Input(1), 8, 4)
	if !ok || alpha != "0000" {
		t.Fatalf("DeriveWeight(T_1, 8, 4) = %q,%v want 0000", alpha, ok)
	}
	// Input 2: α = 0100.
	alpha, ok = DeriveWeight(T.Input(2), 8, 4)
	if !ok || alpha != "0100" {
		t.Fatalf("DeriveWeight(T_2, 8, 4) = %q,%v want 0100", alpha, ok)
	}
	// Input 3: same as input 0.
	alpha, ok = DeriveWeight(T.Input(3), 8, 4)
	if !ok || alpha != "0110" {
		t.Fatalf("DeriveWeight(T_3, 8, 4) = %q,%v want 0110", alpha, ok)
	}
}

func TestDeriveWeightSection2Examples(t *testing.T) {
	// Section 2: around u = 9, input 0: lengths 1, 2, 3 give 1, 01, 100.
	T := paperT(t)
	t0 := T.Input(0)
	for _, c := range []struct {
		ls   int
		want string
	}{{1, "1"}, {2, "01"}, {3, "100"}} {
		alpha, ok := DeriveWeight(t0, 9, c.ls)
		if !ok || alpha != c.want {
			t.Errorf("DeriveWeight(T_0, 9, %d) = %q want %q", c.ls, alpha, c.want)
		}
	}
}

func TestDeriveWeightEdges(t *testing.T) {
	ti := []logic.V{logic.Zero, logic.One}
	if _, ok := DeriveWeight(ti, 1, 3); ok {
		t.Error("window larger than u+1 must fail")
	}
	if _, ok := DeriveWeight(ti, 5, 1); ok {
		t.Error("u beyond sequence must fail")
	}
	if _, ok := DeriveWeight(ti, 0, 0); ok {
		t.Error("ls=0 must fail")
	}
	tx := []logic.V{logic.X, logic.One}
	if _, ok := DeriveWeight(tx, 1, 2); ok {
		t.Error("X in window must fail")
	}
	if a, ok := DeriveWeight(tx, 1, 1); !ok || a != "1" {
		t.Error("X outside window must not matter")
	}
}

func TestDeriveWeightReproducesWindow(t *testing.T) {
	// Property: the derived α perfectly matches the window it was derived
	// from, for random binary sequences.
	f := func(bits []bool, uRaw, lsRaw uint8) bool {
		if len(bits) == 0 {
			return true
		}
		ti := make([]logic.V, len(bits))
		for i, b := range bits {
			ti[i] = logic.FromBit(b)
		}
		u := int(uRaw) % len(ti)
		ls := 1 + int(lsRaw)%(u+1)
		alpha, ok := DeriveWeight(ti, u, ls)
		if !ok {
			return false
		}
		return PerfectMatch(alpha, ti, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountMatchesPaperSection2(t *testing.T) {
	T := paperT(t)
	cases := []struct {
		input int
		alpha string
		want  int
	}{
		{0, "1", 5}, {0, "01", 8}, {0, "100", 7},
		{1, "0", 7}, {1, "00", 7}, {1, "000", 7},
		{2, "100", 6}, {2, "01", 5}, {2, "1", 4},
		{3, "1", 7}, {3, "100", 7}, {3, "01", 6},
	}
	for _, c := range cases {
		if got := CountMatches(c.alpha, T.Input(c.input)); got != c.want {
			t.Errorf("n_m(%q, T_%d) = %d, want %d", c.alpha, c.input, got, c.want)
		}
	}
}

func TestBuildAiReproducesPaperTable5(t *testing.T) {
	// Table 5: the sets A_i for s27 with S of Table 4, u = 9, L_S = 3.
	T := paperT(t)
	want := [][]AiEntry{
		{{4, "01", 8}, {7, "100", 7}, {1, "1", 5}},
		{{0, "0", 7}, {2, "00", 7}, {6, "000", 7}},
		{{7, "100", 6}, {4, "01", 5}, {1, "1", 4}},
		{{1, "1", 7}, {7, "100", 7}, {4, "01", 6}},
	}
	for i := 0; i < 4; i++ {
		got := BuildAi(paperS, T.Input(i), 9, 3)
		if len(got) != len(want[i]) {
			t.Fatalf("A_%d has %d entries, want %d: %v", i, len(got), len(want[i]), got)
		}
		for k := range got {
			if got[k] != want[i][k] {
				t.Errorf("A_%d[%d] = %+v, want %+v", i, k, got[k], want[i][k])
			}
		}
	}
}

func TestGenSequenceReproducesPaperTable2(t *testing.T) {
	// The best weight assignment of Section 2 is (01, 0, 100, 1); its
	// generated sequence of length 12 is Table 2.
	a := Assignment{Subs: []string{"01", "0", "100", "1"}}
	got := a.GenSequence(12).String()
	want := strings.Join([]string{
		"0011", "1001", "0001", "1011", "0001", "1001",
		"0011", "1001", "0001", "1011", "0001", "1001",
	}, "\n")
	if got != want {
		t.Fatalf("T_G mismatch:\n%s\nwant:\n%s", got, want)
	}
}

func TestPerfectMatchPaperExamples(t *testing.T) {
	T := paperT(t)
	// Section 2: 01 matches T_0 perfectly at time units 8 and 9.
	if !PerfectMatch("01", T.Input(0), 9) {
		t.Error("01 should perfectly match T_0 at u=9")
	}
	// 100 matches T_0 perfectly at 7..9.
	if !PerfectMatch("100", T.Input(0), 9) {
		t.Error("100 should perfectly match T_0 at u=9")
	}
	// 11 does not match T_0 at u=9 (T_0(8)=0).
	if PerfectMatch("11", T.Input(0), 9) {
		t.Error("11 should not match T_0 at u=9")
	}
	// Window out of range.
	if PerfectMatch("0101010101010", T.Input(0), 9) {
		t.Error("len-13 window cannot match at u=9")
	}
}

func TestPrimitivePeriod(t *testing.T) {
	cases := map[string]string{
		"0":      "0",
		"00":     "0",
		"000":    "0",
		"01":     "01",
		"0101":   "01",
		"010":    "010",
		"100100": "100",
		"1101":   "1101",
		"111111": "1",
	}
	for in, want := range cases {
		if got := PrimitivePeriod(in); got != want {
			t.Errorf("PrimitivePeriod(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPrimitivePeriodProperty(t *testing.T) {
	// The primitive period repeated produces the original subsequence's
	// repetition.
	f := func(bits []bool) bool {
		if len(bits) == 0 || len(bits) > 24 {
			return true
		}
		var b strings.Builder
		for _, x := range bits {
			if x {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		alpha := b.String()
		p := PrimitivePeriod(alpha)
		for i := 0; i < 3*len(alpha); i++ {
			if alpha[i%len(alpha)] != p[i%len(p)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccountingTable3Style(t *testing.T) {
	om := []Assignment{
		{Subs: []string{"01", "0", "100", "1"}},
		{Subs: []string{"100", "00", "01", "100"}},
	}
	st := Accounting(om)
	if st.NumSeqs != 2 {
		t.Errorf("NumSeqs = %d", st.NumSeqs)
	}
	// Distinct subs: 01, 0, 100, 1, 00 -> 5.
	if st.NumSubs != 5 {
		t.Errorf("NumSubs = %d, want 5", st.NumSubs)
	}
	if st.MaxLen != 3 {
		t.Errorf("MaxLen = %d, want 3", st.MaxLen)
	}
	// Primitive: 01, 0, 100, 1 (00 -> 0). Lengths {1, 2, 3} -> 3 FSMs,
	// 4 outputs.
	if st.NumFSMs != 3 || st.NumOutputs != 4 {
		t.Errorf("FSMs/outputs = %d/%d, want 3/4", st.NumFSMs, st.NumOutputs)
	}
}

func TestWeightSet(t *testing.T) {
	s := NewWeightSet()
	if i := s.Add("01"); i != 0 {
		t.Fatalf("first Add index %d", i)
	}
	if i := s.Add("0"); i != 1 {
		t.Fatalf("second Add index %d", i)
	}
	if i := s.Add("01"); i != 0 {
		t.Fatalf("duplicate Add index %d", i)
	}
	if s.Len() != 2 || !s.Contains("0") || s.Contains("00") {
		t.Fatal("set state wrong")
	}
}

func TestAssignmentHelpers(t *testing.T) {
	a := Assignment{Subs: []string{"01", "0", "100", "1"}}
	if a.MaxLen() != 3 {
		t.Errorf("MaxLen = %d", a.MaxLen())
	}
	if !a.HasLen(2) || a.HasLen(4) {
		t.Error("HasLen wrong")
	}
	if a.String() != "(01, 0, 100, 1)" {
		t.Errorf("String = %q", a.String())
	}
	if err := a.Validate(4); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := a.Validate(3); err == nil {
		t.Error("Validate accepted wrong width")
	}
	bad := Assignment{Subs: []string{"0a"}}
	if err := bad.Validate(1); err == nil {
		t.Error("Validate accepted non-binary")
	}
	empty := Assignment{Subs: []string{""}}
	if err := empty.Validate(1); err == nil {
		t.Error("Validate accepted empty subsequence")
	}
}

func TestGenSequencePeriodicity(t *testing.T) {
	a := Assignment{Subs: []string{"011", "10"}}
	seq := a.GenSequence(12)
	for u := 0; u < 12; u++ {
		if seq.At(u, 0) != bitAt("011", u%3) {
			t.Fatalf("input 0 time %d wrong", u)
		}
		if seq.At(u, 1) != bitAt("10", u%2) {
			t.Fatalf("input 1 time %d wrong", u)
		}
	}
}
