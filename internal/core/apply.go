package core

import (
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/sim"
)

// ConcatSequence builds the single continuous test session the Figure 1
// hardware actually applies: the weighted sequences of all assignments,
// back to back, lg time units each. The circuit under test is NOT reset
// between windows in this mode.
func ConcatSequence(omega []Assignment, lg int) *sim.Sequence {
	if len(omega) == 0 {
		return sim.NewSequence(0)
	}
	out := sim.NewSequence(len(omega[0].Subs))
	for _, a := range omega {
		out.Concat(a.GenSequence(lg))
	}
	return out
}

// ApplyMode selects how the weighted sequences are applied to the circuit.
type ApplyMode int

const (
	// PerWindowReset fault-simulates each assignment's sequence from the
	// initial state (the mode used during weight selection, matching the
	// paper's per-sequence fault simulation).
	PerWindowReset ApplyMode = iota
	// Continuous fault-simulates the concatenation of all windows without
	// intermediate resets (the mode the free-running hardware of Figure 1
	// realises when the circuit is only reset once, at the start of the
	// session).
	Continuous
)

// CoverageReport compares what a set of weight assignments detects.
type CoverageReport struct {
	// Mode is the application mode measured.
	Mode ApplyMode
	// Detected[i] reports detection of targets[i].
	Detected []bool
	// NumDetected counts detections.
	NumDetected int
	// TotalCycles is the number of test cycles applied.
	TotalCycles int
}

// Coverage returns the detected fraction.
func (r *CoverageReport) Coverage() float64 {
	if len(r.Detected) == 0 {
		return 1
	}
	return float64(r.NumDetected) / float64(len(r.Detected))
}

// MeasureCoverage fault-simulates omega's sequences against the target
// faults in the given application mode. In PerWindowReset mode faults are
// dropped across windows; in Continuous mode the whole session is one
// simulation.
func MeasureCoverage(res *Result, omega []Assignment, mode ApplyMode) *CoverageReport {
	lg := res.Options.LG
	if lg == 0 {
		lg = 2000
	}
	for _, dt := range res.DetTime {
		if dt+1 > lg {
			lg = dt + 1
		}
	}
	rep := &CoverageReport{
		Mode:     mode,
		Detected: make([]bool, len(res.TargetFaults)),
	}
	simulator := fsim.New(res.Circuit)
	switch mode {
	case Continuous:
		seq := ConcatSequence(omega, lg)
		rep.TotalCycles = seq.Len()
		out := simulator.Run(seq, res.TargetFaults, fsim.Options{Init: res.Options.Init, Workers: res.Options.Workers, Kernel: res.Options.Kernel, SlabLanes: res.Options.SlabLanes, ShardProcs: res.Options.ShardProcs})
		copy(rep.Detected, out.Detected)
		rep.NumDetected = out.NumDetected
	default:
		for _, a := range omega {
			var fl []fault.Fault
			var idx []int
			for i, d := range rep.Detected {
				if !d {
					fl = append(fl, res.TargetFaults[i])
					idx = append(idx, i)
				}
			}
			if len(fl) == 0 {
				break
			}
			out := simulator.Run(a.GenSequence(lg), fl, fsim.Options{Init: res.Options.Init, Workers: res.Options.Workers, Kernel: res.Options.Kernel, SlabLanes: res.Options.SlabLanes, ShardProcs: res.Options.ShardProcs})
			for k := range fl {
				if out.Detected[k] {
					rep.Detected[idx[k]] = true
					rep.NumDetected++
				}
			}
			rep.TotalCycles += lg
		}
	}
	return rep
}
