// Package randutil provides a small, fast, deterministic pseudo-random number
// generator (SplitMix64) used everywhere randomness is needed, so that every
// experiment in the repository is reproducible from a single integer seed.
package randutil

// RNG is a SplitMix64 generator. The zero value is a valid generator seeded
// with 0; prefer New to decorrelate streams.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm up so that nearby seeds diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randutil: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns a pseudo-random bit.
func (r *RNG) Bool() bool { return r.Uint64()&1 != 0 }

// Float64 returns a pseudo-random value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new generator whose stream is decorrelated from r's.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xdeadbeefcafef00d)
}
