package randutil

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between adjacent seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolRoughlyBalanced(t *testing.T) {
	r := New(3)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			ones++
		}
	}
	if ones < n*45/100 || ones > n*55/100 {
		t.Fatalf("Bool bias: %d/%d ones", ones, n)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	r := New(5)
	s := r.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions after Split", same)
	}
}

func TestUniformityChiSquareIsh(t *testing.T) {
	// Very loose bucket-count check over 16 buckets.
	r := New(2024)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[r.Intn(16)]++
	}
	for b, c := range buckets {
		if c < n/16*9/10 || c > n/16*11/10 {
			t.Fatalf("bucket %d count %d far from %d", b, c, n/16)
		}
	}
}
