package lfsr

import "testing"

func TestMaximalPeriods(t *testing.T) {
	// Every supported width must realise the maximal period 2^w - 1.
	for w := 3; w <= 16; w++ {
		l, err := New(w, 1)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		start := l.State()
		period := 0
		for {
			l.Step()
			period++
			if l.State() == start {
				break
			}
			if period > 1<<w {
				t.Fatalf("width %d: no period found within 2^%d steps", w, w)
			}
		}
		if period != 1<<w-1 {
			t.Errorf("width %d: period %d, want %d", w, period, 1<<w-1)
		}
	}
}

func TestZeroSeedReplaced(t *testing.T) {
	l, err := New(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.State() == 0 {
		t.Fatal("zero state accepted (lock-up)")
	}
}

func TestUnsupportedWidth(t *testing.T) {
	if _, err := New(2, 1); err == nil {
		t.Error("width 2 accepted")
	}
	if _, err := New(64, 1); err == nil {
		t.Error("width 64 accepted")
	}
}

func TestSequenceShapeAndBalance(t *testing.T) {
	l, err := New(16, 0xACE1)
	if err != nil {
		t.Fatal(err)
	}
	seq := l.Sequence(5, 4000)
	if seq.Len() != 4000 || seq.NumInputs != 5 {
		t.Fatalf("shape %dx%d", seq.Len(), seq.NumInputs)
	}
	ones := 0
	for _, v := range seq.Vecs {
		for _, b := range v {
			if !b.IsBinary() {
				t.Fatal("LFSR emitted X")
			}
			if b.String() == "1" {
				ones++
			}
		}
	}
	total := 4000 * 5
	if ones < total*45/100 || ones > total*55/100 {
		t.Fatalf("bias: %d/%d ones", ones, total)
	}
}

func TestAccessors(t *testing.T) {
	l, _ := New(10, 3)
	if l.Width() != 10 || l.Period() != 1023 {
		t.Fatalf("accessors wrong: %d %d", l.Width(), l.Period())
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := New(12, 99)
	b, _ := New(12, 99)
	for i := 0; i < 1000; i++ {
		if a.Step() != b.Step() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestXNORMaximalPeriodFromZero(t *testing.T) {
	for w := 3; w <= 14; w++ {
		l, err := NewXNOR(w)
		if err != nil {
			t.Fatal(err)
		}
		if l.State() != 0 {
			t.Fatalf("width %d: XNOR LFSR must start at 0", w)
		}
		period := 0
		for {
			l.Step()
			period++
			if l.State() == 0 {
				break
			}
			if l.State() == (uint64(1)<<w)-1 {
				t.Fatalf("width %d: reached the all-ones lock-up state", w)
			}
			if period > 1<<w {
				t.Fatalf("width %d: no period within 2^%d steps", w, w)
			}
		}
		if period != 1<<w-1 {
			t.Errorf("width %d: XNOR period %d, want %d", w, period, 1<<w-1)
		}
	}
}

func TestParallelSequenceContinuity(t *testing.T) {
	// Two windows from one register must equal one window of double length
	// from a fresh register.
	a, _ := NewXNOR(9)
	w1 := a.ParallelSequence(5, 20)
	w2 := a.ParallelSequence(5, 20)
	b, _ := NewXNOR(9)
	full := b.ParallelSequence(5, 40)
	for u := 0; u < 20; u++ {
		for i := 0; i < 5; i++ {
			if w1.At(u, i) != full.At(u, i) || w2.At(u, i) != full.At(u+20, i) {
				t.Fatalf("windowed sequence diverges at u=%d i=%d", u, i)
			}
		}
	}
}

func TestParallelSequenceFolding(t *testing.T) {
	// More inputs than stages: input i mirrors stage i mod width.
	l, _ := NewXNOR(8)
	seq := l.ParallelSequence(11, 30)
	for u := 0; u < 30; u++ {
		for i := 8; i < 11; i++ {
			if seq.At(u, i) != seq.At(u, i-8) {
				t.Fatalf("folded input %d differs from stage %d at u=%d", i, i-8, u)
			}
		}
	}
}

func TestRandomSourceWidth(t *testing.T) {
	cases := map[int]int{1: 8, 8: 8, 15: 15, 24: 24, 35: 24, 320: 24}
	for in, want := range cases {
		if got := RandomSourceWidth(in); got != want {
			t.Errorf("RandomSourceWidth(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestTapsAccessor(t *testing.T) {
	ts, ok := Taps(16)
	if !ok || len(ts) != 4 || ts[0] != 16 {
		t.Fatalf("Taps(16) = %v, %v", ts, ok)
	}
	if _, ok := Taps(2); ok {
		t.Fatal("Taps(2) should not exist")
	}
}

func TestBitAccessor(t *testing.T) {
	l, _ := New(8, 0b10100101)
	for s := 0; s < 8; s++ {
		want := (0b10100101>>s)&1 == 1
		if l.Bit(s) != want {
			t.Fatalf("Bit(%d) = %v", s, l.Bit(s))
		}
	}
}
