// Package lfsr implements maximal-length linear feedback shift registers
// used as the pseudo-random pattern source of the BIST baselines the paper
// compares against (pure pseudo-random testing, and the 3-weight scheme of
// reference [10] which gates pseudo-random bits).
package lfsr

import (
	"fmt"
	"math/bits"

	"repro/internal/logic"
	"repro/internal/sim"
)

// taps lists, per register width, the feedback tap positions (1-indexed,
// tap t reads state bit t-1) of a maximal-length LFSR. Source: the standard
// XAPP052 table of primitive-polynomial taps.
var taps = map[int][]int{
	3:  {3, 2},
	4:  {4, 3},
	5:  {5, 3},
	6:  {6, 5},
	7:  {7, 6},
	8:  {8, 6, 5, 4},
	9:  {9, 5},
	10: {10, 7},
	11: {11, 9},
	12: {12, 6, 4, 1},
	13: {13, 4, 3, 1},
	14: {14, 5, 3, 1},
	15: {15, 14},
	16: {16, 15, 13, 4},
	17: {17, 14},
	18: {18, 11},
	19: {19, 6, 2, 1},
	20: {20, 17},
	21: {21, 19},
	22: {22, 21},
	23: {23, 18},
	24: {24, 23, 22, 17},
}

// LFSR is a Fibonacci linear feedback shift register (shift-left form: the
// new bit, the XOR — or XNOR — of the taps, enters at bit 0).
type LFSR struct {
	width int
	tap   uint64 // mask over state bits
	state uint64
	xnor  bool
}

// Taps returns the 1-indexed feedback tap positions for a supported width.
func Taps(width int) ([]int, bool) {
	t, ok := taps[width]
	return t, ok
}

func tapMask(width int) (uint64, error) {
	positions, ok := taps[width]
	if !ok {
		return 0, fmt.Errorf("lfsr: unsupported width %d (have 3..24)", width)
	}
	var mask uint64
	for _, t := range positions {
		mask |= 1 << (t - 1)
	}
	return mask, nil
}

// New returns a width-bit XOR-feedback LFSR seeded with seed (0 is replaced
// by 1, the all-zero state being the lock-up state). Widths 3..24 are
// supported.
func New(width int, seed uint64) (*LFSR, error) {
	mask, err := tapMask(width)
	if err != nil {
		return nil, err
	}
	state := seed & ((1 << width) - 1)
	if state == 0 {
		state = 1
	}
	return &LFSR{width: width, tap: mask, state: state}, nil
}

// NewXNOR returns a width-bit XNOR-feedback LFSR starting from the all-zero
// state. For XNOR feedback the all-zero state is a regular sequence state
// (the lock-up state is all-ones), so hardware that resets its flip-flops to
// 0 realises exactly this sequence — which is why the on-chip random-weight
// source uses this variant.
func NewXNOR(width int) (*LFSR, error) {
	mask, err := tapMask(width)
	if err != nil {
		return nil, err
	}
	return &LFSR{width: width, tap: mask, xnor: true}, nil
}

// Step advances one cycle and returns the output bit (the bit shifted out of
// the top stage).
func (l *LFSR) Step() bool {
	out := l.state>>(l.width-1)&1 != 0
	fb := uint64(bits.OnesCount64(l.state&l.tap) & 1)
	if l.xnor {
		fb ^= 1
	}
	l.state = (l.state<<1 | fb) & ((1 << l.width) - 1)
	return out
}

// Bit returns the current value of stage s (0-indexed).
func (l *LFSR) Bit(s int) bool { return l.state>>uint(s)&1 != 0 }

// ParallelSequence generates n vectors by reading the register stages in
// parallel (input i = stage i mod width) and clocking once per time unit —
// the arrangement of an on-chip LFSR whose stages fan out to the circuit
// inputs. The register keeps its state across calls, so consecutive windows
// continue the sequence like free-running hardware.
func (l *LFSR) ParallelSequence(numInputs, n int) *sim.Sequence {
	seq := sim.NewSequence(numInputs)
	vec := make([]logic.V, numInputs)
	for u := 0; u < n; u++ {
		for i := range vec {
			vec[i] = logic.FromBit(l.Bit(i % l.width))
		}
		seq.Append(vec)
		l.Step()
	}
	return seq
}

// RandomSourceWidth returns the register width used for the on-chip random
// source of a circuit with the given input count: wide enough to give every
// input its own stage when possible, clamped to the supported 8..24 range.
func RandomSourceWidth(numInputs int) int {
	w := numInputs
	if w < 8 {
		w = 8
	}
	if w > 24 {
		w = 24
	}
	return w
}

// State returns the current register contents.
func (l *LFSR) State() uint64 { return l.state }

// Width returns the register width.
func (l *LFSR) Width() int { return l.width }

// Period returns the sequence period (2^width - 1 for a maximal LFSR).
func (l *LFSR) Period() int { return 1<<l.width - 1 }

// Sequence generates a test sequence of length n for numInputs inputs by
// clocking the LFSR once per input bit per time unit (the usual serial
// BIST arrangement).
func (l *LFSR) Sequence(numInputs, n int) *sim.Sequence {
	seq := sim.NewSequence(numInputs)
	vec := make([]logic.V, numInputs)
	for u := 0; u < n; u++ {
		for i := range vec {
			vec[i] = logic.FromBit(l.Step())
		}
		seq.Append(vec)
	}
	return seq
}
