package threeweight

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/lfsr"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
)

func TestIntersect(t *testing.T) {
	seq, err := sim.ParseSequence("0101\n0111\n0011")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Intersect(seq, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// input 0: 0,0,0 -> W0; input 1: 1,1,0 -> WHalf; input 2: 0,1,1 -> WHalf;
	// input 3: 1,1,1 -> W1.
	want := Assignment{W0, WHalf, WHalf, W1}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("weight[%d] = %v, want %v", i, a[i], want[i])
		}
	}
	if a.String() != "(0, 0.5, 0.5, 1)" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestIntersectWithX(t *testing.T) {
	seq, err := sim.ParseSequence("X\n1")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Intersect(seq, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != WHalf {
		t.Fatalf("X column should give 0.5, got %v", a[0])
	}
}

func TestIntersectWindowErrors(t *testing.T) {
	seq, _ := sim.ParseSequence("01\n10")
	for _, w := range [][2]int{{-1, 0}, {0, 2}, {1, 0}} {
		if _, err := Intersect(seq, w[0], w[1]); err == nil {
			t.Errorf("window %v accepted", w)
		}
	}
}

func TestDerive(t *testing.T) {
	seq, _ := sim.ParseSequence(iscas.S27TestSequence)
	det := []int{9, 9, 5, 3, 3, 0, -1}
	as, err := Derive(seq, det, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) == 0 || len(as) > 4 {
		t.Fatalf("%d assignments derived", len(as))
	}
	for _, a := range as {
		if len(a) != 4 {
			t.Fatalf("assignment width %d", len(a))
		}
	}
	// Duplicates must be suppressed, cap must hold.
	capped, err := Derive(seq, det, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 1 {
		t.Fatalf("cap ignored: %d", len(capped))
	}
}

func TestDeriveErrors(t *testing.T) {
	seq, _ := sim.ParseSequence("01\n10")
	if _, err := Derive(seq, []int{0}, 0, 5); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := Derive(seq, []int{-1}, 2, 5); err == nil {
		t.Error("no valid detection times accepted")
	}
}

func TestGenSequenceRespectsWeights(t *testing.T) {
	src, _ := lfsr.New(16, 1)
	a := Assignment{W0, W1, WHalf}
	seq := GenSequence(a, 200, src)
	ones := 0
	for u := 0; u < seq.Len(); u++ {
		if seq.At(u, 0) != logic.Zero {
			t.Fatal("W0 input not constant 0")
		}
		if seq.At(u, 1) != logic.One {
			t.Fatal("W1 input not constant 1")
		}
		if seq.At(u, 2) == logic.One {
			ones++
		}
	}
	if ones < 60 || ones > 140 {
		t.Fatalf("WHalf bias: %d/200 ones", ones)
	}
}

func TestEvaluateBaselineOnS27(t *testing.T) {
	c := iscas.MustLoad("s27")
	seq, _ := sim.ParseSequence(iscas.S27TestSequence)
	faults := fault.CollapsedUniverse(c)
	out := fsim.Run(c, seq, faults, fsim.Options{Init: logic.X})
	var targets []fault.Fault
	var det []int
	for i := range faults {
		if out.Detected[i] {
			targets = append(targets, faults[i])
			det = append(det, out.DetTime[i])
		}
	}
	as, err := Derive(seq, det, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(c, as, targets, 500, logic.X, 77)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDetected == 0 {
		t.Fatal("baseline detected nothing at all")
	}
	if res.NumDetected > len(targets) {
		t.Fatal("detected more than targets")
	}
	sum := 0
	for _, n := range res.PerAssignment {
		sum += n
	}
	if sum != res.NumDetected {
		t.Fatalf("per-assignment sum %d != total %d", sum, res.NumDetected)
	}
	if res.Coverage(len(targets)) <= 0 || res.Coverage(len(targets)) > 1 {
		t.Fatalf("coverage %v out of range", res.Coverage(len(targets)))
	}
}

func TestWeightString(t *testing.T) {
	if W0.String() != "0" || WHalf.String() != "0.5" || W1.String() != "1" {
		t.Fatal("Weight.String wrong")
	}
}

// TestIntersectSingleUnitWindow pins the lo == hi boundary: a one-vector
// window intersects to the vector itself (0 → W0, 1 → W1) except that an X
// can never yield a constant weight.
func TestIntersectSingleUnitWindow(t *testing.T) {
	seq, err := sim.ParseSequence("01X\n10X")
	if err != nil {
		t.Fatal(err)
	}
	for u, want := range []Assignment{{W0, W1, WHalf}, {W1, W0, WHalf}} {
		a, err := Intersect(seq, u, u)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if a[i] != want[i] {
				t.Errorf("unit %d weight[%d] = %v, want %v", u, i, a[i], want[i])
			}
		}
	}
	// Both boundary windows of the sequence must be accepted.
	if _, err := Intersect(seq, 0, 0); err != nil {
		t.Errorf("window [0,0]: %v", err)
	}
	if _, err := Intersect(seq, seq.Len()-1, seq.Len()-1); err != nil {
		t.Errorf("window [last,last]: %v", err)
	}
}

// TestIntersectMatchesBruteForce cross-checks Intersect against a direct
// per-column recount on random sequences and random windows (seeded, so the
// sweep is reproducible).
func TestIntersectMatchesBruteForce(t *testing.T) {
	rng := randutil.New(0x3e16)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		l := 1 + rng.Intn(12)
		seq := sim.NewSequence(n)
		vec := make([]logic.V, n)
		for u := 0; u < l; u++ {
			for i := range vec {
				vec[i] = []logic.V{logic.Zero, logic.One, logic.X}[rng.Intn(3)]
			}
			seq.Append(vec)
		}
		lo := rng.Intn(l)
		hi := lo + rng.Intn(l-lo)
		a, err := Intersect(seq, lo, hi)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			zeros, ones := 0, 0
			for u := lo; u <= hi; u++ {
				switch seq.At(u, i) {
				case logic.Zero:
					zeros++
				case logic.One:
					ones++
				}
			}
			span := hi - lo + 1
			var want Weight
			switch {
			case zeros == span:
				want = W0
			case ones == span:
				want = W1
			default:
				want = WHalf
			}
			if a[i] != want {
				t.Fatalf("trial %d window [%d,%d] input %d: %v, brute force %v",
					trial, lo, hi, i, a[i], want)
			}
		}
	}
}

// TestGenSequenceConstantAssignments pins the all-constant boundary: with no
// WHalf input the generated sequence is fully determined and the LFSR is
// never consumed, so a following WHalf assignment sees an unshifted source.
func TestGenSequenceConstantAssignments(t *testing.T) {
	src, _ := lfsr.New(16, 1)
	ref, _ := lfsr.New(16, 1)
	seq := GenSequence(Assignment{W0, W1, W0}, 20, src)
	for u := 0; u < seq.Len(); u++ {
		if seq.At(u, 0) != logic.Zero || seq.At(u, 2) != logic.Zero || seq.At(u, 1) != logic.One {
			t.Fatalf("t=%d: constant assignment produced %v %v %v",
				u, seq.At(u, 0), seq.At(u, 1), seq.At(u, 2))
		}
	}
	if src.Step() != ref.Step() {
		t.Fatal("all-constant assignment consumed LFSR bits")
	}
}

// TestGenSequenceZeroLength pins lg == 0: an empty (but well-formed) sequence.
func TestGenSequenceZeroLength(t *testing.T) {
	src, _ := lfsr.New(16, 1)
	seq := GenSequence(Assignment{WHalf}, 0, src)
	if seq.Len() != 0 || seq.NumInputs != 1 {
		t.Fatalf("lg=0: Len=%d NumInputs=%d", seq.Len(), seq.NumInputs)
	}
}

// TestDeriveWindowBoundaries checks window clamping at the sequence start
// (detection at t=0 with a wide window) and windows larger than the whole
// sequence.
func TestDeriveWindowBoundaries(t *testing.T) {
	seq, _ := sim.ParseSequence("01\n10\n11")
	// Detection at t=0, window 4: lo clamps to 0, a single-unit window.
	as, err := Derive(seq, []int{0}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Intersect(seq, 0, 0)
	if len(as) != 1 || as[0].String() != want.String() {
		t.Fatalf("clamped window: %v, want [%v]", as, want)
	}
	// Window covering everything: equivalent to intersecting the whole
	// sequence at the last detection time.
	as, err = Derive(seq, []int{2}, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, _ = Intersect(seq, 0, 2)
	if len(as) != 1 || as[0].String() != want.String() {
		t.Fatalf("oversized window: %v, want [%v]", as, want)
	}
	// maxAssignments == 0 derives nothing, which is an error.
	if _, err := Derive(seq, []int{0, 1, 2}, 1, 0); err == nil {
		t.Error("maxAssignments=0 accepted")
	}
}

// TestDeriveHardFaultsFirst checks the ordering contract: windows around the
// largest detection times come first, and identical windows deduplicate even
// when they arise from different detection times.
func TestDeriveHardFaultsFirst(t *testing.T) {
	seq, _ := sim.ParseSequence("00\n00\n11\n00")
	as, err := Derive(seq, []int{0, 2, 2, 0}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("%d assignments, want 2 (duplicates suppressed)", len(as))
	}
	// t=2 ("11") is the hard fault and must come first; t=0 ("00") second.
	if as[0].String() != "(1, 1)" || as[1].String() != "(0, 0)" {
		t.Fatalf("order: %v, %v", as[0], as[1])
	}
}

// TestDeriveRandomisedInvariant checks over seeded random inputs that Derive
// always honours the cap, never emits duplicates and only emits window
// intersections of the sequence it was given.
func TestDeriveRandomisedInvariant(t *testing.T) {
	rng := randutil.New(0xd317e)
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(5)
		l := 2 + rng.Intn(10)
		seq := sim.NewSequence(n)
		vec := make([]logic.V, n)
		for u := 0; u < l; u++ {
			for i := range vec {
				vec[i] = logic.FromBit(rng.Bool())
			}
			seq.Append(vec)
		}
		det := make([]int, 1+rng.Intn(12))
		for i := range det {
			det[i] = rng.Intn(l+1) - 1 // includes -1 (undetected)
		}
		window := 1 + rng.Intn(4)
		maxA := 1 + rng.Intn(5)
		as, err := Derive(seq, det, window, maxA)
		if err != nil {
			// Legal only when no detection time is in range.
			for _, u := range det {
				if u >= 0 && u < l {
					t.Fatalf("trial %d: Derive failed with valid time %d: %v", trial, u, err)
				}
			}
			continue
		}
		if len(as) > maxA {
			t.Fatalf("trial %d: %d assignments over cap %d", trial, len(as), maxA)
		}
		seen := map[string]bool{}
		for _, a := range as {
			if seen[a.String()] {
				t.Fatalf("trial %d: duplicate %v", trial, a)
			}
			seen[a.String()] = true
			if len(a) != n {
				t.Fatalf("trial %d: width %d, want %d", trial, len(a), n)
			}
		}
	}
}
