package threeweight

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/lfsr"
	"repro/internal/logic"
	"repro/internal/sim"
)

func TestIntersect(t *testing.T) {
	seq, err := sim.ParseSequence("0101\n0111\n0011")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Intersect(seq, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// input 0: 0,0,0 -> W0; input 1: 1,1,0 -> WHalf; input 2: 0,1,1 -> WHalf;
	// input 3: 1,1,1 -> W1.
	want := Assignment{W0, WHalf, WHalf, W1}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("weight[%d] = %v, want %v", i, a[i], want[i])
		}
	}
	if a.String() != "(0, 0.5, 0.5, 1)" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestIntersectWithX(t *testing.T) {
	seq, err := sim.ParseSequence("X\n1")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Intersect(seq, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != WHalf {
		t.Fatalf("X column should give 0.5, got %v", a[0])
	}
}

func TestIntersectWindowErrors(t *testing.T) {
	seq, _ := sim.ParseSequence("01\n10")
	for _, w := range [][2]int{{-1, 0}, {0, 2}, {1, 0}} {
		if _, err := Intersect(seq, w[0], w[1]); err == nil {
			t.Errorf("window %v accepted", w)
		}
	}
}

func TestDerive(t *testing.T) {
	seq, _ := sim.ParseSequence(iscas.S27TestSequence)
	det := []int{9, 9, 5, 3, 3, 0, -1}
	as, err := Derive(seq, det, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) == 0 || len(as) > 4 {
		t.Fatalf("%d assignments derived", len(as))
	}
	for _, a := range as {
		if len(a) != 4 {
			t.Fatalf("assignment width %d", len(a))
		}
	}
	// Duplicates must be suppressed, cap must hold.
	capped, err := Derive(seq, det, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 1 {
		t.Fatalf("cap ignored: %d", len(capped))
	}
}

func TestDeriveErrors(t *testing.T) {
	seq, _ := sim.ParseSequence("01\n10")
	if _, err := Derive(seq, []int{0}, 0, 5); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := Derive(seq, []int{-1}, 2, 5); err == nil {
		t.Error("no valid detection times accepted")
	}
}

func TestGenSequenceRespectsWeights(t *testing.T) {
	src, _ := lfsr.New(16, 1)
	a := Assignment{W0, W1, WHalf}
	seq := GenSequence(a, 200, src)
	ones := 0
	for u := 0; u < seq.Len(); u++ {
		if seq.At(u, 0) != logic.Zero {
			t.Fatal("W0 input not constant 0")
		}
		if seq.At(u, 1) != logic.One {
			t.Fatal("W1 input not constant 1")
		}
		if seq.At(u, 2) == logic.One {
			ones++
		}
	}
	if ones < 60 || ones > 140 {
		t.Fatalf("WHalf bias: %d/200 ones", ones)
	}
}

func TestEvaluateBaselineOnS27(t *testing.T) {
	c := iscas.MustLoad("s27")
	seq, _ := sim.ParseSequence(iscas.S27TestSequence)
	faults := fault.CollapsedUniverse(c)
	out := fsim.Run(c, seq, faults, fsim.Options{Init: logic.X})
	var targets []fault.Fault
	var det []int
	for i := range faults {
		if out.Detected[i] {
			targets = append(targets, faults[i])
			det = append(det, out.DetTime[i])
		}
	}
	as, err := Derive(seq, det, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(c, as, targets, 500, logic.X, 77)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDetected == 0 {
		t.Fatal("baseline detected nothing at all")
	}
	if res.NumDetected > len(targets) {
		t.Fatal("detected more than targets")
	}
	sum := 0
	for _, n := range res.PerAssignment {
		sum += n
	}
	if sum != res.NumDetected {
		t.Fatalf("per-assignment sum %d != total %d", sum, res.NumDetected)
	}
	if res.Coverage(len(targets)) <= 0 || res.Coverage(len(targets)) > 1 {
		t.Fatalf("coverage %v out of range", res.Coverage(len(targets)))
	}
}

func TestWeightString(t *testing.T) {
	if W0.String() != "0" || WHalf.String() != "0.5" || W1.String() != "1" {
		t.Fatal("Weight.String wrong")
	}
}
