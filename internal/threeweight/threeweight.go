// Package threeweight implements the 3-weight pseudo-random BIST baseline of
// the paper's reference [10] ("3-Weight Pseudo-Random Test Generation Based
// on a Deterministic Test Set"), adapted to sequential circuits the way the
// paper's introduction describes: weight assignments over {0, 0.5, 1} are
// obtained by intersecting vectors of a deterministic test sequence, and
// each assignment drives the circuit for a fixed number of pseudo-random
// patterns (weight 0.5 = LFSR bit, weights 0/1 = constant).
//
// The proposed subsequence-weight method subsumes this scheme; the baseline
// exists to reproduce the comparison: 3-weight testing cannot reproduce
// time-varying subsequences, so it plateaus below the deterministic
// sequence's coverage on sequential circuits.
package threeweight

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/lfsr"
	"repro/internal/logic"
	"repro/internal/sim"
)

// Weight is one of the three classic weights.
type Weight uint8

const (
	// W0 holds the input at 0.
	W0 Weight = iota
	// WHalf drives the input with unbiased pseudo-random bits.
	WHalf
	// W1 holds the input at 1.
	W1
)

// String returns "0", "0.5" or "1".
func (w Weight) String() string {
	switch w {
	case W0:
		return "0"
	case WHalf:
		return "0.5"
	case W1:
		return "1"
	default:
		return fmt.Sprintf("Weight(%d)", uint8(w))
	}
}

// Assignment assigns one weight per primary input.
type Assignment []Weight

// String renders e.g. "(0, 0.5, 1)".
func (a Assignment) String() string {
	s := "("
	for i, w := range a {
		if i > 0 {
			s += ", "
		}
		s += w.String()
	}
	return s + ")"
}

// Intersect derives an assignment from the vectors of seq in the time-unit
// window [lo, hi] (the intersection operation of [10]): an input whose value
// is 0 at every window time unit gets weight 0, constantly 1 gets weight 1,
// anything else gets 0.5.
func Intersect(seq *sim.Sequence, lo, hi int) (Assignment, error) {
	if lo < 0 || hi >= seq.Len() || lo > hi {
		return nil, fmt.Errorf("threeweight: window [%d,%d] outside sequence of length %d", lo, hi, seq.Len())
	}
	a := make(Assignment, seq.NumInputs)
	for i := 0; i < seq.NumInputs; i++ {
		all0, all1 := true, true
		for u := lo; u <= hi; u++ {
			switch seq.At(u, i) {
			case logic.Zero:
				all1 = false
			case logic.One:
				all0 = false
			default:
				all0, all1 = false, false
			}
		}
		switch {
		case all0:
			a[i] = W0
		case all1:
			a[i] = W1
		default:
			a[i] = WHalf
		}
	}
	return a, nil
}

// Derive builds up to maxAssignments weight assignments from a deterministic
// sequence and the detection times of its faults, windowing around the
// largest detection times first (hard faults), with the given window width.
func Derive(seq *sim.Sequence, detTimes []int, window, maxAssignments int) ([]Assignment, error) {
	if window < 1 {
		return nil, fmt.Errorf("threeweight: window must be positive")
	}
	uniq := map[int]bool{}
	for _, u := range detTimes {
		if u >= 0 {
			uniq[u] = true
		}
	}
	times := make([]int, 0, len(uniq))
	for u := range uniq {
		times = append(times, u)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(times)))
	var out []Assignment
	seen := map[string]bool{}
	for _, u := range times {
		if len(out) >= maxAssignments {
			break
		}
		lo := u - window + 1
		if lo < 0 {
			lo = 0
		}
		a, err := Intersect(seq, lo, u)
		if err != nil {
			return nil, err
		}
		if !seen[a.String()] {
			seen[a.String()] = true
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("threeweight: no assignments derived")
	}
	return out, nil
}

// GenSequence produces lg weighted pseudo-random vectors for the assignment,
// drawing 0.5-weighted bits from the LFSR.
func GenSequence(a Assignment, lg int, src *lfsr.LFSR) *sim.Sequence {
	seq := sim.NewSequence(len(a))
	vec := make([]logic.V, len(a))
	for u := 0; u < lg; u++ {
		for i, w := range a {
			switch w {
			case W0:
				vec[i] = logic.Zero
			case W1:
				vec[i] = logic.One
			default:
				vec[i] = logic.FromBit(src.Step())
			}
		}
		seq.Append(vec)
	}
	return seq
}

// Result reports the baseline's coverage of a target fault list.
type Result struct {
	// Assignments are the derived weight assignments.
	Assignments []Assignment
	// Detected[i] reports detection of target fault i by any assignment.
	Detected []bool
	// NumDetected counts detections.
	NumDetected int
	// PerAssignment[k] is the number of new faults detected by assignment k.
	PerAssignment []int
}

// Coverage returns the detected fraction of the targets.
func (r *Result) Coverage(total int) float64 {
	if total == 0 {
		return 1
	}
	return float64(r.NumDetected) / float64(total)
}

// Evaluate runs every assignment for lg pseudo-random patterns against the
// target faults (with fault dropping across assignments) and reports the
// achieved coverage.
func Evaluate(c *circuit.Circuit, assignments []Assignment, targets []fault.Fault,
	lg int, init logic.V, seed uint64) (*Result, error) {
	width := 16
	src, err := lfsr.New(width, seed)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Assignments:   assignments,
		Detected:      make([]bool, len(targets)),
		PerAssignment: make([]int, len(assignments)),
	}
	s := fsim.New(c)
	for k, a := range assignments {
		var fl []fault.Fault
		var idx []int
		for i := range targets {
			if !res.Detected[i] {
				fl = append(fl, targets[i])
				idx = append(idx, i)
			}
		}
		if len(fl) == 0 {
			break
		}
		seq := GenSequence(a, lg, src)
		out := s.Run(seq, fl, fsim.Options{Init: init})
		for j := range fl {
			if out.Detected[j] {
				res.Detected[idx[j]] = true
				res.NumDetected++
				res.PerAssignment[k]++
			}
		}
	}
	return res, nil
}
