package misr

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/randutil"
)

func TestScalarSignatureDeterministic(t *testing.T) {
	a, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(16)
	rng := randutil.New(1)
	for i := 0; i < 200; i++ {
		bits := []logic.V{logic.FromBit(rng.Bool()), logic.FromBit(rng.Bool())}
		a.Shift(bits)
		b.Shift(bits)
	}
	sa, oka := a.Signature()
	sb, okb := b.Signature()
	if sa != sb || !oka || !okb {
		t.Fatalf("signatures diverged: %x/%v vs %x/%v", sa, oka, sb, okb)
	}
}

func TestScalarSignatureSensitivity(t *testing.T) {
	// Flipping a single response bit must change the signature (no single
	// masking for a linear compactor fed once).
	rng := randutil.New(7)
	stream := make([][]logic.V, 100)
	for i := range stream {
		stream[i] = []logic.V{logic.FromBit(rng.Bool()), logic.FromBit(rng.Bool()), logic.FromBit(rng.Bool())}
	}
	golden, _ := New(12)
	for _, bits := range stream {
		golden.Shift(bits)
	}
	gs, _ := golden.Signature()
	// Flip one bit at several positions.
	for _, flipAt := range []int{0, 13, 57, 99} {
		m, _ := New(12)
		for i, bits := range stream {
			b := append([]logic.V(nil), bits...)
			if i == flipAt {
				b[1] = b[1].Not()
			}
			m.Shift(b)
		}
		fs, ok := m.Signature()
		if !ok {
			t.Fatal("tainted unexpectedly")
		}
		if fs == gs {
			t.Fatalf("single flip at %d aliased", flipAt)
		}
	}
}

func TestScalarTaint(t *testing.T) {
	m, _ := New(8)
	m.Shift([]logic.V{logic.One})
	if _, ok := m.Signature(); !ok {
		t.Fatal("clean register reported tainted")
	}
	m.Shift([]logic.V{logic.X})
	if _, ok := m.Signature(); ok {
		t.Fatal("X not tainting")
	}
	m.Reset()
	if _, ok := m.Signature(); !ok {
		t.Fatal("Reset did not clear taint")
	}
}

func TestUnsupportedWidth(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Error("scalar width 2 accepted")
	}
	if _, err := NewWord(99); err == nil {
		t.Error("word width 99 accepted")
	}
}

func TestInputFolding(t *testing.T) {
	// 10 inputs into a 4-bit register must fold (i mod 4) and still work.
	m, _ := New(4)
	bits := make([]logic.V, 10)
	for i := range bits {
		bits[i] = logic.One
	}
	m.Shift(bits)
	sig, ok := m.Signature()
	if !ok {
		t.Fatal("tainted")
	}
	// stages 0,1 get 3 ones (odd -> 1), stages 2,3 get 2 ones (even -> 0);
	// initial state 0 so signature = 0b0011.
	if sig != 0b0011 {
		t.Fatalf("signature %04b, want 0011", sig)
	}
}

// TestWordMatchesScalar drives the word MISR and 64 scalar MISRs with the
// same per-slot streams and checks every slot signature matches.
func TestWordMatchesScalar(t *testing.T) {
	const width = 9
	const steps = 60
	const numPO = 5
	rng := randutil.New(42)
	wm, err := NewWord(width)
	if err != nil {
		t.Fatal(err)
	}
	scalars := make([]*MISR, 64)
	for k := range scalars {
		scalars[k], _ = New(width)
	}
	for u := 0; u < steps; u++ {
		po := make([]logic.W, numPO)
		perSlot := make([][]logic.V, 64)
		for k := range perSlot {
			perSlot[k] = make([]logic.V, numPO)
		}
		for i := 0; i < numPO; i++ {
			w := logic.AllX
			for k := uint(0); k < 64; k++ {
				var v logic.V
				switch rng.Intn(10) {
				case 0:
					v = logic.X
				default:
					v = logic.FromBit(rng.Bool())
				}
				w = w.Set(k, v)
				perSlot[k][i] = v
			}
			po[i] = w
		}
		wm.Shift(po)
		for k := range scalars {
			scalars[k].Shift(perSlot[k])
		}
	}
	for k := uint(0); k < 64; k++ {
		wantSig, wantOK := scalars[k].Signature()
		gotSig, gotOK := wm.SlotSignature(k)
		if gotOK != wantOK {
			t.Fatalf("slot %d taint mismatch: %v vs %v", k, gotOK, wantOK)
		}
		if wantOK && gotSig != wantSig {
			t.Fatalf("slot %d signature %x, want %x", k, gotSig, wantSig)
		}
	}
}

func TestWordDiffMask(t *testing.T) {
	wm, _ := NewWord(8)
	// Slot 1 differs from slot 0 in one response bit at one time unit.
	for u := 0; u < 20; u++ {
		w := logic.AllZero
		if u == 7 {
			w = w.Set(1, logic.One)
		}
		wm.Shift([]logic.W{w})
	}
	diff := wm.DiffMask()
	if diff != 0b10 {
		t.Fatalf("DiffMask = %b, want 10", diff)
	}
}

func TestWordDiffMaskTaintedReference(t *testing.T) {
	wm, _ := NewWord(8)
	w := logic.AllZero.Set(0, logic.X).Set(1, logic.One)
	wm.Shift([]logic.W{w})
	if wm.DiffMask() != 0 {
		t.Fatal("tainted reference must suppress all detections")
	}
	if wm.TaintMask()&1 == 0 {
		t.Fatal("slot 0 not marked tainted")
	}
}

func TestWordReset(t *testing.T) {
	wm, _ := NewWord(8)
	wm.Shift([]logic.W{logic.AllX})
	wm.Reset()
	if wm.TaintMask() != 0 {
		t.Fatal("Reset did not clear taint")
	}
	sig, ok := wm.SlotSignature(3)
	if sig != 0 || !ok {
		t.Fatal("Reset did not clear state")
	}
}
