package misr

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/randutil"
)

func TestScalarSignatureDeterministic(t *testing.T) {
	a, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(16)
	rng := randutil.New(1)
	for i := 0; i < 200; i++ {
		bits := []logic.V{logic.FromBit(rng.Bool()), logic.FromBit(rng.Bool())}
		a.Shift(bits)
		b.Shift(bits)
	}
	sa, oka := a.Signature()
	sb, okb := b.Signature()
	if sa != sb || !oka || !okb {
		t.Fatalf("signatures diverged: %x/%v vs %x/%v", sa, oka, sb, okb)
	}
}

func TestScalarSignatureSensitivity(t *testing.T) {
	// Flipping a single response bit must change the signature (no single
	// masking for a linear compactor fed once).
	rng := randutil.New(7)
	stream := make([][]logic.V, 100)
	for i := range stream {
		stream[i] = []logic.V{logic.FromBit(rng.Bool()), logic.FromBit(rng.Bool()), logic.FromBit(rng.Bool())}
	}
	golden, _ := New(12)
	for _, bits := range stream {
		golden.Shift(bits)
	}
	gs, _ := golden.Signature()
	// Flip one bit at several positions.
	for _, flipAt := range []int{0, 13, 57, 99} {
		m, _ := New(12)
		for i, bits := range stream {
			b := append([]logic.V(nil), bits...)
			if i == flipAt {
				b[1] = b[1].Not()
			}
			m.Shift(b)
		}
		fs, ok := m.Signature()
		if !ok {
			t.Fatal("tainted unexpectedly")
		}
		if fs == gs {
			t.Fatalf("single flip at %d aliased", flipAt)
		}
	}
}

func TestScalarTaint(t *testing.T) {
	m, _ := New(8)
	m.Shift([]logic.V{logic.One})
	if _, ok := m.Signature(); !ok {
		t.Fatal("clean register reported tainted")
	}
	m.Shift([]logic.V{logic.X})
	if _, ok := m.Signature(); ok {
		t.Fatal("X not tainting")
	}
	m.Reset()
	if _, ok := m.Signature(); !ok {
		t.Fatal("Reset did not clear taint")
	}
}

func TestUnsupportedWidth(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Error("scalar width 2 accepted")
	}
	if _, err := NewWord(99); err == nil {
		t.Error("word width 99 accepted")
	}
}

func TestInputFolding(t *testing.T) {
	// 10 inputs into a 4-bit register must fold (i mod 4) and still work.
	m, _ := New(4)
	bits := make([]logic.V, 10)
	for i := range bits {
		bits[i] = logic.One
	}
	m.Shift(bits)
	sig, ok := m.Signature()
	if !ok {
		t.Fatal("tainted")
	}
	// stages 0,1 get 3 ones (odd -> 1), stages 2,3 get 2 ones (even -> 0);
	// initial state 0 so signature = 0b0011.
	if sig != 0b0011 {
		t.Fatalf("signature %04b, want 0011", sig)
	}
}

// TestWordMatchesScalar drives the word MISR and 64 scalar MISRs with the
// same per-slot streams and checks every slot signature matches.
func TestWordMatchesScalar(t *testing.T) {
	const width = 9
	const steps = 60
	const numPO = 5
	rng := randutil.New(42)
	wm, err := NewWord(width)
	if err != nil {
		t.Fatal(err)
	}
	scalars := make([]*MISR, 64)
	for k := range scalars {
		scalars[k], _ = New(width)
	}
	for u := 0; u < steps; u++ {
		po := make([]logic.W, numPO)
		perSlot := make([][]logic.V, 64)
		for k := range perSlot {
			perSlot[k] = make([]logic.V, numPO)
		}
		for i := 0; i < numPO; i++ {
			w := logic.AllX
			for k := uint(0); k < 64; k++ {
				var v logic.V
				switch rng.Intn(10) {
				case 0:
					v = logic.X
				default:
					v = logic.FromBit(rng.Bool())
				}
				w = w.Set(k, v)
				perSlot[k][i] = v
			}
			po[i] = w
		}
		wm.Shift(po)
		for k := range scalars {
			scalars[k].Shift(perSlot[k])
		}
	}
	for k := uint(0); k < 64; k++ {
		wantSig, wantOK := scalars[k].Signature()
		gotSig, gotOK := wm.SlotSignature(k)
		if gotOK != wantOK {
			t.Fatalf("slot %d taint mismatch: %v vs %v", k, gotOK, wantOK)
		}
		if wantOK && gotSig != wantSig {
			t.Fatalf("slot %d signature %x, want %x", k, gotSig, wantSig)
		}
	}
}

func TestWordDiffMask(t *testing.T) {
	wm, _ := NewWord(8)
	// Slot 1 differs from slot 0 in one response bit at one time unit.
	for u := 0; u < 20; u++ {
		w := logic.AllZero
		if u == 7 {
			w = w.Set(1, logic.One)
		}
		wm.Shift([]logic.W{w})
	}
	diff := wm.DiffMask()
	if diff != 0b10 {
		t.Fatalf("DiffMask = %b, want 10", diff)
	}
}

func TestWordDiffMaskTaintedReference(t *testing.T) {
	wm, _ := NewWord(8)
	w := logic.AllZero.Set(0, logic.X).Set(1, logic.One)
	wm.Shift([]logic.W{w})
	if wm.DiffMask() != 0 {
		t.Fatal("tainted reference must suppress all detections")
	}
	if wm.TaintMask()&1 == 0 {
		t.Fatal("slot 0 not marked tainted")
	}
}

func TestWordReset(t *testing.T) {
	wm, _ := NewWord(8)
	wm.Shift([]logic.W{logic.AllX})
	wm.Reset()
	if wm.TaintMask() != 0 {
		t.Fatal("Reset did not clear taint")
	}
	sig, ok := wm.SlotSignature(3)
	if sig != 0 || !ok {
		t.Fatal("Reset did not clear state")
	}
}

// TestScalarConstructedAliasing pins the classic MISR failure mode with a
// hand-built error pattern: for the width-3 register (taps 3,2) an error
// injected into stage 0 shifts to stage 1 one cycle later without touching
// the feedback, so a second error that hits exactly stage 1 at that cycle
// cancels the first. The two streams differ in two response bits yet compact
// to the same signature — aliasing by construction, not by search.
func TestScalarConstructedAliasing(t *testing.T) {
	const cycles = 6
	golden, _ := New(3)
	faulty, _ := New(3)
	zero := []logic.V{logic.Zero, logic.Zero, logic.Zero}
	differs := 0
	for u := 0; u < cycles; u++ {
		golden.Shift(zero)
		switch u {
		case 2:
			faulty.Shift([]logic.V{logic.One, logic.Zero, logic.Zero})
			differs++
		case 3:
			faulty.Shift([]logic.V{logic.Zero, logic.One, logic.Zero})
			differs++
		default:
			faulty.Shift(zero)
		}
	}
	gs, _ := golden.Signature()
	fs, _ := faulty.Signature()
	if differs != 2 {
		t.Fatalf("constructed %d differing cycles, want 2", differs)
	}
	if gs != fs {
		t.Fatalf("error pattern did not alias: golden %03b, faulty %03b", gs, fs)
	}
}

// TestScalarAliasingRate measures the aliasing probability empirically: a
// random nonzero error stream compacts to the zero (golden) signature with
// probability ≈ 2^-width. Width 3 must show ≈ 1/8; width 16 must make
// aliasing rare. Both sweeps are deterministic in the randutil seed.
func TestScalarAliasingRate(t *testing.T) {
	const trials = 2000
	aliases := func(width int, seed uint64) int {
		rng := randutil.New(seed)
		n := 0
		for trial := 0; trial < trials; trial++ {
			m, err := New(width)
			if err != nil {
				t.Fatal(err)
			}
			// 12 cycles of 2 response bits, at least one of them 1 so the
			// error stream is guaranteed nonzero (an all-zero "error" is not
			// an error and trivially matches).
			nonzero := false
			for u := 0; u < 12; u++ {
				bits := []logic.V{logic.FromBit(rng.Bool()), logic.FromBit(rng.Bool())}
				if u == 11 && !nonzero {
					bits[0] = logic.One
				}
				if bits[0] == logic.One || bits[1] == logic.One {
					nonzero = true
				}
				m.Shift(bits)
			}
			if sig, ok := m.Signature(); ok && sig == 0 {
				n++
			}
		}
		return n
	}
	if n3 := aliases(3, 0xa11a5); n3 < trials/16 || n3 > trials/4 {
		t.Errorf("width 3: %d/%d aliased, want ≈ %d (1/8)", n3, trials, trials/8)
	}
	if n16 := aliases(16, 0xa11a5); n16 > 5 {
		t.Errorf("width 16: %d/%d aliased, want ≈ 0 (2^-16 each)", n16, trials)
	}
}

// TestWordDiffMaskExcludesAliasedSlot drives the bit-parallel register with a
// faulty machine whose responses differ from the fault-free machine but whose
// errors cancel in the compactor (the constructed width-3 aliasing pattern),
// next to a faulty machine whose single error survives. DiffMask must report
// only the surviving slot: an aliased fault is genuinely lost by
// signature-based evaluation even though per-cycle comparison would catch it.
func TestWordDiffMaskExcludesAliasedSlot(t *testing.T) {
	wm, _ := NewWord(3)
	// Three response words = one per MISR stage. Slot 0 fault-free (all 0),
	// slot 1 the cancelling pair, slot 2 a lone error at t=2.
	for u := 0; u < 6; u++ {
		po := []logic.W{logic.AllZero, logic.AllZero, logic.AllZero}
		switch u {
		case 2:
			po[0] = po[0].Set(1, logic.One).Set(2, logic.One)
		case 3:
			po[1] = po[1].Set(1, logic.One)
		}
		wm.Shift(po)
	}
	if diff := wm.DiffMask(); diff != 0b100 {
		t.Fatalf("DiffMask = %03b, want 100 (slot 1 aliased, slot 2 detected)", diff)
	}
	// The per-slot signatures confirm why: slot 1 equals slot 0, slot 2 does
	// not.
	s0, _ := wm.SlotSignature(0)
	s1, _ := wm.SlotSignature(1)
	s2, _ := wm.SlotSignature(2)
	if s1 != s0 || s2 == s0 {
		t.Fatalf("signatures: slot0 %03b slot1 %03b slot2 %03b", s0, s1, s2)
	}
}

// TestWordMatchesScalarAliasing cross-checks the two MISR implementations on
// the aliasing question itself: for random per-slot streams, a slot aliases
// in the word register exactly when the equivalent scalar register aliases.
func TestWordMatchesScalarAliasing(t *testing.T) {
	const width = 4
	rng := randutil.New(0x5eed)
	for round := 0; round < 50; round++ {
		wm, _ := NewWord(width)
		scalars := make([]*MISR, 8)
		for k := range scalars {
			scalars[k], _ = New(width)
		}
		for u := 0; u < 16; u++ {
			po := make([]logic.W, 2)
			perSlot := make([][]logic.V, 8)
			for k := range perSlot {
				perSlot[k] = make([]logic.V, len(po))
			}
			for i := range po {
				w := logic.AllZero
				for k := uint(0); k < 8; k++ {
					v := logic.FromBit(rng.Bool())
					if k == 0 {
						v = logic.Zero // slot 0 is the quiet golden machine
					}
					w = w.Set(k, v)
					perSlot[k][i] = v
				}
				po[i] = w
			}
			wm.Shift(po)
			for k := range scalars {
				scalars[k].Shift(perSlot[k])
			}
		}
		diff := wm.DiffMask()
		g, _ := scalars[0].Signature()
		for k := uint(1); k < 8; k++ {
			s, _ := scalars[k].Signature()
			want := s != g
			if got := diff&(1<<k) != 0; got != want {
				t.Fatalf("round %d slot %d: word diff=%v, scalar diff=%v", round, k, got, want)
			}
		}
	}
}

// TestScalarFoldedTaint checks that an X arriving on a folded input position
// (index ≥ width) still taints, and that taint survives later binary cycles.
func TestScalarFoldedTaint(t *testing.T) {
	m, _ := New(3)
	bits := make([]logic.V, 5)
	for i := range bits {
		bits[i] = logic.Zero
	}
	bits[4] = logic.X // folds onto stage 4 mod 3 = 1
	m.Shift(bits)
	if _, ok := m.Signature(); ok {
		t.Fatal("X on a folded input did not taint")
	}
	for u := 0; u < 10; u++ {
		m.Shift([]logic.V{logic.One, logic.Zero, logic.One, logic.Zero, logic.One})
	}
	if _, ok := m.Signature(); ok {
		t.Fatal("taint did not persist across later binary cycles")
	}
}

// TestWordTaintIsPerSlot checks that an X in one machine poisons only that
// machine's signature, and that a faulty slot that would otherwise be
// detected is suppressed from DiffMask once tainted (a tainted signature
// cannot be trusted in either direction).
func TestWordTaintIsPerSlot(t *testing.T) {
	wm, _ := NewWord(8)
	for u := 0; u < 4; u++ {
		w := logic.AllZero
		if u == 1 {
			w = w.Set(3, logic.X)    // slot 3: unknown response
			w = w.Set(5, logic.One)  // slot 5: real difference, then tainted below
			w = w.Set(6, logic.One)  // slot 6: clean difference
		}
		if u == 2 {
			w = w.Set(5, logic.X)
		}
		wm.Shift([]logic.W{w})
	}
	if taint := wm.TaintMask(); taint != 1<<3|1<<5 {
		t.Fatalf("TaintMask = %b, want slots 3 and 5", taint)
	}
	if _, ok := wm.SlotSignature(3); ok {
		t.Fatal("tainted slot 3 reported trustworthy")
	}
	if _, ok := wm.SlotSignature(6); !ok {
		t.Fatal("clean slot 6 reported tainted")
	}
	if diff := wm.DiffMask(); diff != 1<<6 {
		t.Fatalf("DiffMask = %b, want only slot 6 (5 tainted, 3 tainted)", diff)
	}
}
