// Package misr implements multiple-input signature registers (MISRs), the
// standard BIST response compactor: circuit outputs are XORed into the
// stages of a maximal-length LFSR every clock cycle, and at the end of the
// test session only the final register contents (the signature) are compared
// against the fault-free golden signature.
//
// The paper leaves response evaluation unspecified; a MISR is what the
// surrounding BIST literature (and any adopter of the scheme) uses, so this
// package completes the on-chip loop: weight-FSM generator → CUT → MISR.
// A bit-parallel variant compacts the 64 machines of the fault simulator at
// once, so signature-based fault coverage (including aliasing) is measured
// directly.
package misr

import (
	"fmt"

	"repro/internal/logic"
)

// taps mirrors the primitive-polynomial tap positions of package lfsr
// (1-indexed; tap t reads stage t-1).
var taps = map[int][]int{
	3:  {3, 2},
	4:  {4, 3},
	5:  {5, 3},
	6:  {6, 5},
	7:  {7, 6},
	8:  {8, 6, 5, 4},
	9:  {9, 5},
	10: {10, 7},
	11: {11, 9},
	12: {12, 6, 4, 1},
	13: {13, 4, 3, 1},
	14: {14, 5, 3, 1},
	15: {15, 14},
	16: {16, 15, 13, 4},
	17: {17, 14},
	18: {18, 11},
	19: {19, 6, 2, 1},
	20: {20, 17},
	21: {21, 19},
	22: {22, 21},
	23: {23, 18},
	24: {24, 23, 22, 17},
}

func tapMask(width int) (uint64, error) {
	positions, ok := taps[width]
	if !ok {
		return 0, fmt.Errorf("misr: unsupported width %d (have 3..24)", width)
	}
	var mask uint64
	for _, t := range positions {
		mask |= 1 << (t - 1)
	}
	return mask, nil
}

// MISR is a scalar signature register. Inputs wider than the register fold
// back onto the stages modulo the width. An unknown (X) input value taints
// the signature permanently: a tainted signature must not be compared.
type MISR struct {
	width   int
	tap     uint64
	state   uint64
	tainted bool
}

// New returns a width-bit MISR initialised to zero. Widths 3..24.
func New(width int) (*MISR, error) {
	mask, err := tapMask(width)
	if err != nil {
		return nil, err
	}
	return &MISR{width: width, tap: mask}, nil
}

// Reset clears the register and the taint flag.
func (m *MISR) Reset() {
	m.state = 0
	m.tainted = false
}

// Width returns the register width.
func (m *MISR) Width() int { return m.width }

// Shift clocks the register once, XORing the given response bits into the
// stages (bit i into stage i mod width).
func (m *MISR) Shift(bits []logic.V) {
	var in uint64
	for i, v := range bits {
		switch v {
		case logic.One:
			in ^= 1 << (uint(i) % uint(m.width))
		case logic.X:
			m.tainted = true
		}
	}
	fb := parity(m.state & m.tap)
	m.state = ((m.state<<1 | fb) & ((1 << m.width) - 1)) ^ in
}

// Signature returns the register contents and whether they are trustworthy
// (ok == false once an X was compacted).
func (m *MISR) Signature() (sig uint64, ok bool) {
	return m.state, !m.tainted
}

func parity(x uint64) uint64 {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}

// WordMISR compacts the 64 machines of a dual-rail fault-simulation word in
// parallel: stage s of machine k lives in slot k of word s. Slot 0 is the
// fault-free machine.
type WordMISR struct {
	width int
	tap   uint64
	state []logic.W
	// taint has a bit per slot; set once an X from that machine was
	// compacted.
	taint uint64
}

// NewWord returns a bit-parallel width-bit MISR with all stages at 0.
func NewWord(width int) (*WordMISR, error) {
	mask, err := tapMask(width)
	if err != nil {
		return nil, err
	}
	m := &WordMISR{width: width, tap: mask, state: make([]logic.W, width)}
	m.Reset()
	return m, nil
}

// Reset clears all stages to 0 and clears the taint mask.
func (m *WordMISR) Reset() {
	for i := range m.state {
		m.state[i] = logic.AllZero
	}
	m.taint = 0
}

// Shift clocks the register once with the given response words (word i feeds
// stage i mod width).
func (m *WordMISR) Shift(po []logic.W) {
	// Fold the inputs onto the stages.
	in := make([]logic.W, m.width)
	for i := range in {
		in[i] = logic.AllZero
	}
	for i, w := range po {
		m.taint |= ^(w.Zeros | w.Ones) // X slots
		in[i%m.width] = in[i%m.width].Xor(w)
	}
	// Feedback: XOR of the tapped stages.
	fb := logic.AllZero
	for s := 0; s < m.width; s++ {
		if m.tap&(1<<s) != 0 {
			fb = fb.Xor(m.state[s])
		}
	}
	// Shift up, inject feedback at stage 0, XOR the inputs in.
	next := make([]logic.W, m.width)
	next[0] = fb.Xor(in[0])
	for s := 1; s < m.width; s++ {
		next[s] = m.state[s-1].Xor(in[s])
	}
	m.state = next
}

// TaintMask returns the mask of slots whose signature is untrustworthy.
func (m *WordMISR) TaintMask() uint64 { return m.taint }

// DiffMask returns the mask of slots whose final signature differs from the
// fault-free slot 0 in at least one stage, excluding tainted slots (and
// returning 0 if slot 0 itself is tainted).
func (m *WordMISR) DiffMask() uint64 {
	if m.taint&1 != 0 {
		return 0
	}
	var diff uint64
	for _, w := range m.state {
		diff |= w.DiffMask()
	}
	return diff &^ m.taint
}

// SlotSignature extracts machine k's signature (stage s in bit s). The
// second result is false if the slot is tainted.
func (m *WordMISR) SlotSignature(k uint) (uint64, bool) {
	var sig uint64
	for s, w := range m.state {
		if w.Get(k) == logic.One {
			sig |= 1 << s
		}
	}
	return sig, m.taint&(1<<k) == 0
}
