package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/expt"
	"repro/internal/iscas"
	"repro/internal/logic"
)

// s27Bench renders the embedded s27 circuit back to .bench source.
func s27Bench(t *testing.T) []byte {
	t.Helper()
	c, err := iscas.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bench.Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestKeyIdentity is the cache-identity contract: submitting the same
// netlist with equivalent configurations (same identity fields, any
// Workers/Kernel/Telemetry) yields the same key, and every identity field
// changes it.
func TestKeyIdentity(t *testing.T) {
	netlist := s27Bench(t)
	base := expt.CanonicalConfig("s27", expt.Config{LG: 500, Seed: 3})
	k0, err := Key(netlist, logic.X, base)
	if err != nil {
		t.Fatal(err)
	}

	// Non-identity fields: same key.
	equiv := base
	equiv.Workers = 8
	equiv.Kernel = 2
	if k, _ := Key(netlist, logic.X, equiv); k != k0 {
		t.Error("Workers/Kernel changed the key")
	}

	// Formatting of the netlist: same key (comments, blank lines).
	reformatted := append([]byte("# a comment\n\n"), netlist...)
	if k, _ := Key(reformatted, logic.X, base); k != k0 {
		t.Error("netlist formatting changed the key")
	}

	// Every identity axis: different key.
	variants := map[string]func(*expt.Config){
		"LG":                func(c *expt.Config) { c.LG = 501 },
		"Seed":              func(c *expt.Config) { c.Seed = 4 },
		"ATPGRandomLen":     func(c *expt.Config) { c.ATPGRandomLen = 64 },
		"ATPGNoCompaction":  func(c *expt.Config) { c.ATPGNoCompaction = true },
		"ATPGNoPodem":       func(c *expt.Config) { c.ATPGNoPodem = true },
		"RandomWindows":     func(c *expt.Config) { c.RandomWindows = 2 },
		"NoSampleFirst":     func(c *expt.Config) { c.NoSampleFirst = true },
		"NoForceFullLength": func(c *expt.Config) { c.NoForceFullLength = true },
		"NoMatchOrdering":   func(c *expt.Config) { c.NoMatchOrdering = true },
		"FaultModel":        func(c *expt.Config) { c.FaultModel = "transition" },
	}
	seen := map[string]string{k0: "base"}
	for field, mutate := range variants {
		cfg := base
		mutate(&cfg)
		k, err := Key(netlist, logic.X, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("%s: key collides with %s", field, prev)
		}
		seen[k] = field
	}

	// Init is part of the identity too.
	if k, _ := Key(netlist, logic.Zero, base); k == k0 {
		t.Error("Init did not change the key")
	}

	// A different netlist: different key.
	c, err := iscas.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	var other bytes.Buffer
	if err := bench.Write(&other, c); err != nil {
		t.Fatal(err)
	}
	if k, _ := Key(other.Bytes(), logic.X, base); k == k0 {
		t.Error("different netlist produced the same key")
	}
}

func TestKeyRejectsBadNetlist(t *testing.T) {
	if _, err := Key([]byte("this is not a bench file"), logic.X, expt.Config{}); err == nil {
		t.Fatal("malformed netlist accepted")
	}
}

// TestIdentityCoversConfig is the shape guard: every field of expt.Config
// must be classified as identity (hashed into the key) or excluded
// (bit-identical results). A new Config field fails this test until it is
// classified, which is the point.
func TestIdentityCoversConfig(t *testing.T) {
	classified := make(map[string]bool)
	for _, f := range identityFields {
		classified[f] = true
	}
	for _, f := range excludedFields {
		classified[f] = true
	}
	ct := reflect.TypeOf(expt.Config{})
	for i := 0; i < ct.NumField(); i++ {
		name := ct.Field(i).Name
		if !classified[name] {
			t.Errorf("expt.Config field %s is not classified as identity or excluded in internal/store — decide whether it changes result bits", name)
		}
		delete(classified, name)
	}
	for name := range classified {
		t.Errorf("classified field %s no longer exists on expt.Config", name)
	}
	// And the identity struct itself carries exactly the identity fields
	// (plus the schema version and Init).
	it := reflect.TypeOf(identity{})
	want := len(identityFields) + 2
	if it.NumField() != want {
		t.Errorf("identity struct has %d fields, want %d (identityFields + Schema + Init)", it.NumField(), want)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, err := Key(s27Bench(t), logic.X, expt.CanonicalConfig("s27", expt.Config{LG: 100}))
	if err != nil {
		t.Fatal(err)
	}
	if s.Has(key) {
		t.Fatal("fresh store claims to have the entry")
	}
	artifacts := map[string][]byte{
		"result.json":   []byte(`{"ok":true}`),
		"generator.v":   []byte("module g; endmodule\n"),
		"netlist.bench": s27Bench(t),
	}
	if err := s.Put(key, artifacts); err != nil {
		t.Fatal(err)
	}
	if !s.Has(key) {
		t.Fatal("entry missing after Put")
	}

	// Fetched twice: byte-identical both times (the satellite criterion).
	for round := 0; round < 2; round++ {
		got, ok, err := s.Get(key)
		if err != nil || !ok {
			t.Fatalf("round %d: Get: ok=%v err=%v", round, ok, err)
		}
		if !reflect.DeepEqual(got, artifacts) {
			t.Fatalf("round %d: artifacts differ from what was put", round)
		}
	}
	one, ok, err := s.GetArtifact(key, "generator.v")
	if err != nil || !ok || !bytes.Equal(one, artifacts["generator.v"]) {
		t.Fatalf("GetArtifact: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := s.GetArtifact(key, "absent.txt"); ok {
		t.Error("absent artifact reported present")
	}

	keys, err := s.List()
	if err != nil || len(keys) != 1 || keys[0] != key {
		t.Fatalf("List = %v, %v", keys, err)
	}

	// A second Put of an existing key is a no-op, not an error.
	if err := s.Put(key, map[string][]byte{"result.json": []byte("other")}); err != nil {
		t.Fatal(err)
	}
	got, _, _ := s.GetArtifact(key, "result.json")
	if !bytes.Equal(got, artifacts["result.json"]) {
		t.Error("re-Put replaced an existing entry")
	}
}

func TestPutRejectsBadNames(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "ab" + string(bytes.Repeat([]byte{'0'}, 62))
	for _, name := range []string{"", "../escape", "a/b", ".hidden"} {
		if err := s.Put(key, map[string][]byte{name: nil}); err == nil {
			t.Errorf("artifact name %q accepted", name)
		}
	}
	if err := s.Put("short", nil); err == nil {
		t.Error("malformed key accepted")
	}
}

// TestPutAtomic: no partially-written entry is ever visible, even with many
// concurrent publishers of the same key.
func TestPutAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "cd" + string(bytes.Repeat([]byte{'1'}, 62))
	artifacts := map[string][]byte{"a": []byte("aaa"), "b": []byte("bbb")}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(key, artifacts); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got, ok, err := s.Get(key)
	if err != nil || !ok || !reflect.DeepEqual(got, artifacts) {
		t.Fatalf("entry corrupted by concurrent publish: ok=%v err=%v", ok, err)
	}
	// No leftover temp directories.
	entries, _ := os.ReadDir(filepath.Join(dir, key[:2]))
	for _, e := range entries {
		if e.Name() != key {
			t.Errorf("leftover %s in fan-out directory", e.Name())
		}
	}
}

// TestDoSingleFlight: concurrent Do calls for one key run compute once; the
// rest are hits.
func TestDoSingleFlight(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "ef" + string(bytes.Repeat([]byte{'2'}, 62))
	var computes atomic.Int64
	var hits atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, hit, err := s.Do(key, func() (map[string][]byte, error) {
				computes.Add(1)
				return map[string][]byte{"x": []byte("payload")}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if hit {
				hits.Add(1)
			}
			if !bytes.Equal(got["x"], []byte("payload")) {
				t.Error("wrong artifact bytes")
			}
		}()
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	if got := hits.Load(); got != 7 {
		t.Errorf("%d hits, want 7", got)
	}
	// And a later Do is a pure disk hit.
	_, hit, err := s.Do(key, func() (map[string][]byte, error) {
		t.Error("compute ran despite a disk entry")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("disk hit: hit=%v err=%v", hit, err)
	}
}

// TestDoErrorEvicted mirrors the expt memo regression test at the store
// layer: a failed compute must not poison the key.
func TestDoErrorEvicted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "0a" + string(bytes.Repeat([]byte{'3'}, 62))
	sentinel := errors.New("transient compile failure")
	if _, _, err := s.Do(key, func() (map[string][]byte, error) {
		return nil, sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("first Do: err = %v", err)
	}
	got, hit, err := s.Do(key, func() (map[string][]byte, error) {
		return map[string][]byte{"x": []byte("ok")}, nil
	})
	if err != nil {
		t.Fatalf("retry after failure: %v (error poisoned the store key)", err)
	}
	if hit || !bytes.Equal(got["x"], []byte("ok")) {
		t.Fatalf("retry: hit=%v got=%q", hit, got["x"])
	}
}

// TestOpenExisting: a store re-opened over an existing directory serves
// entries published by the previous instance.
func TestOpenExisting(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "1b" + string(bytes.Repeat([]byte{'4'}, 62))
	if err := s1.Put(key, map[string][]byte{"x": []byte("persisted")}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Get(key)
	if err != nil || !ok || !bytes.Equal(got["x"], []byte("persisted")) {
		t.Fatalf("re-opened store lost the entry: ok=%v err=%v", ok, err)
	}
}

// TestMiscAccessors covers the small accessors and defensive paths.
func TestMiscAccessors(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir() != dir {
		t.Errorf("Dir = %q", s.Dir())
	}
	if keys, err := s.List(); err != nil || len(keys) != 0 {
		t.Errorf("empty List = %v, %v", keys, err)
	}
	if s.Has("not-a-key") {
		t.Error("Has accepted a malformed key")
	}
	if _, _, err := s.Get("not-a-key"); err == nil {
		t.Error("Get accepted a malformed key")
	}
	if _, _, err := s.GetArtifact("not-a-key", "x"); err == nil {
		t.Error("GetArtifact accepted a malformed key")
	}
	if _, _, err := s.Do("not-a-key", nil); err == nil {
		t.Error("Do accepted a malformed key")
	}
	key := "2c" + string(bytes.Repeat([]byte{'5'}, 62))
	if _, _, err := s.GetArtifact(key, "../escape"); err == nil {
		t.Error("GetArtifact accepted a path-traversal name")
	}
	if got, ok, err := s.Get(key); got != nil || ok || err != nil {
		t.Errorf("Get of absent key = %v %v %v", got, ok, err)
	}
	// A key whose uppercase hex sneaks past length checks is still invalid.
	if err := validKey(strings.ToUpper(key)); err == nil {
		t.Error("uppercase hex key accepted")
	}
	// Open on a path occupied by a regular file fails.
	file := dir + "/occupied"
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file); err == nil {
		t.Error("Open over a regular file succeeded")
	}
}
