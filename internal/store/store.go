// Package store is a content-addressed, persistent artifact cache for
// compiled BIST generators. A cache key is the SHA-256 of a canonical
// description of a compilation: a versioned JSON header listing exactly the
// expt.Config fields that influence result bits, followed by the circuit
// netlist re-serialized into its canonical .bench form. Two submissions that
// differ only in whitespace, gate ordering produced by the same writer, or
// non-identity options (workers, kernel, telemetry, context) therefore map
// to the same key, while any option that changes a result bit changes it.
//
// Artifacts are published atomically: a compilation writes its files into a
// temporary directory next to the final location and renames it into place,
// so readers only ever observe complete entries, and concurrent publishers
// of the same key are harmless (first rename wins, the loser discards).
//
// Do provides single-flight in-process de-duplication on top of the on-disk
// store, with the same eviction-on-error contract as the expt memo: a failed
// or cancelled compilation never poisons its key.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/bench"
	"repro/internal/expt"
	"repro/internal/logic"
)

// SchemaVersion is baked into every key. Bump it when the meaning of a
// stored artifact changes (pipeline semantics, artifact formats), which
// invalidates every prior entry without touching the disk.
// v2: the key identity gained the fault model (expt.Config.FaultModel).
const SchemaVersion = "wbist-store/v2"

// identity is the canonical key header: exactly the configuration fields
// that are part of a run's identity, in a fixed JSON field order. Fields
// deliberately absent — Telemetry, Workers, Kernel, ShardProcs, Ctx — do not
// change any result bit (see expt.Config); TestIdentityCoversConfig enforces
// that every
// expt.Config field is classified one way or the other.
type identity struct {
	Schema            string `json:"schema"`
	Init              string `json:"init"`
	LG                int    `json:"lg"`
	Seed              uint64 `json:"seed"`
	ATPGRandomLen     int    `json:"atpg_random_len"`
	ATPGNoCompaction  bool   `json:"atpg_no_compaction"`
	ATPGNoPodem       bool   `json:"atpg_no_podem"`
	RandomWindows     int    `json:"random_windows"`
	NoSampleFirst     bool   `json:"no_sample_first"`
	NoForceFullLength bool   `json:"no_force_full_length"`
	NoMatchOrdering   bool   `json:"no_match_ordering"`
	FaultModel        string `json:"fault_model"`
}

// identityFields and excludedFields classify every expt.Config field. A new
// Config field must be added to one of the two lists (and, if identity, to
// the identity struct and Key), which TestIdentityCoversConfig enforces.
var (
	identityFields = []string{
		"LG", "Seed", "ATPGRandomLen", "ATPGNoCompaction", "ATPGNoPodem",
		"RandomWindows", "NoSampleFirst", "NoForceFullLength", "NoMatchOrdering",
		"FaultModel",
	}
	excludedFields = []string{"Telemetry", "Workers", "Kernel", "SlabLanes", "ShardProcs", "Ctx"}
)

// Key computes the content address of a compilation: cfg must already be in
// canonical form (expt.CanonicalConfig), netlist is the raw .bench source.
// The netlist is parsed and re-serialized so that formatting differences do
// not fragment the cache; a netlist that does not parse yields an error.
func Key(netlist []byte, init logic.V, cfg expt.Config) (string, error) {
	c, err := bench.Parse("netlist", bytes.NewReader(netlist))
	if err != nil {
		return "", fmt.Errorf("store: canonicalizing netlist: %w", err)
	}
	var canon bytes.Buffer
	if err := bench.Write(&canon, c); err != nil {
		return "", fmt.Errorf("store: re-serializing netlist: %w", err)
	}
	hdr, err := json.Marshal(identity{
		Schema:            SchemaVersion,
		Init:              init.String(),
		LG:                cfg.LG,
		Seed:              cfg.Seed,
		ATPGRandomLen:     cfg.ATPGRandomLen,
		ATPGNoCompaction:  cfg.ATPGNoCompaction,
		ATPGNoPodem:       cfg.ATPGNoPodem,
		RandomWindows:     cfg.RandomWindows,
		NoSampleFirst:     cfg.NoSampleFirst,
		NoForceFullLength: cfg.NoForceFullLength,
		NoMatchOrdering:   cfg.NoMatchOrdering,
		FaultModel:        cfg.FaultModel,
	})
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(hdr)
	h.Write([]byte{0})
	h.Write(canon.Bytes())
	return hex.EncodeToString(h.Sum(nil)), nil
}

// flight is one in-process single-flight computation for a key.
type flight struct {
	done chan struct{}
	err  error
}

// Store is a content-addressed artifact cache rooted at a directory.
// Entries live at dir/<key[:2]>/<key>/<artifact files>; the two-character
// fan-out keeps any single directory small. All methods are safe for
// concurrent use.
type Store struct {
	dir string

	mu      sync.Mutex
	flights map[string]*flight
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, flights: make(map[string]*flight)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) entryDir(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

func validKey(key string) error {
	if len(key) != 64 {
		return fmt.Errorf("store: malformed key %q", key)
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return fmt.Errorf("store: malformed key %q", key)
		}
	}
	return nil
}

// Has reports whether a complete entry for key exists on disk.
func (s *Store) Has(key string) bool {
	if validKey(key) != nil {
		return false
	}
	st, err := os.Stat(s.entryDir(key))
	return err == nil && st.IsDir()
}

// Put publishes the artifacts for key atomically. Artifact names must be
// plain file names. If an entry already exists it is left untouched (the
// pipeline is deterministic, so the bytes are the same by construction).
func (s *Store) Put(key string, artifacts map[string][]byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	for name := range artifacts {
		if name == "" || name != filepath.Base(name) || strings.HasPrefix(name, ".") {
			return fmt.Errorf("store: invalid artifact name %q", name)
		}
	}
	final := s.entryDir(key)
	if s.Has(key) {
		return nil
	}
	parent := filepath.Dir(final)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(parent, ".tmp-"+key[:8]+"-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename
	for name, data := range artifacts {
		if err := os.WriteFile(filepath.Join(tmp, name), data, 0o644); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		if s.Has(key) {
			return nil // lost a publish race; the winner's entry is equivalent
		}
		return err
	}
	return nil
}

// Get reads every artifact of an entry. The second return is false when no
// entry exists.
func (s *Store) Get(key string) (map[string][]byte, bool, error) {
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	dir := s.entryDir(key)
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, false, err
		}
		out[e.Name()] = data
	}
	return out, true, nil
}

// GetArtifact reads a single artifact of an entry.
func (s *Store) GetArtifact(key, name string) ([]byte, bool, error) {
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	if name != filepath.Base(name) {
		return nil, false, fmt.Errorf("store: invalid artifact name %q", name)
	}
	data, err := os.ReadFile(filepath.Join(s.entryDir(key), name))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// List returns every key present in the store, sorted.
func (s *Store) List() ([]string, error) {
	fanout, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, f := range fanout {
		if !f.IsDir() || len(f.Name()) != 2 {
			continue
		}
		sub, err := os.ReadDir(filepath.Join(s.dir, f.Name()))
		if err != nil {
			return nil, err
		}
		for _, e := range sub {
			if e.IsDir() && validKey(e.Name()) == nil {
				keys = append(keys, e.Name())
			}
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Do returns the artifacts for key, computing and publishing them at most
// once per key across concurrent callers. hit reports whether the result
// came from the store (disk or a concurrent flight) rather than this
// caller's compute. Like the expt memo, a failed flight is evicted before
// its joiners are released, so a transient error — including a cancelled
// context inside compute — never poisons the key.
func (s *Store) Do(key string, compute func() (map[string][]byte, error)) (artifacts map[string][]byte, hit bool, err error) {
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	for {
		if got, ok, err := s.Get(key); err != nil {
			return nil, false, err
		} else if ok {
			return got, true, nil
		}
		s.mu.Lock()
		if f, ok := s.flights[key]; ok {
			s.mu.Unlock()
			<-f.done
			if f.err != nil {
				return nil, false, f.err
			}
			// The flight published to disk; loop to read it back so every
			// caller observes the same on-disk bytes.
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.flights[key] = f
		s.mu.Unlock()

		artifacts, err := compute()
		if err == nil {
			err = s.Put(key, artifacts)
		}
		f.err = err
		s.mu.Lock()
		delete(s.flights, key) // evict: success is on disk, failure must retry
		s.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, false, err
		}
		return artifacts, false, nil
	}
}
