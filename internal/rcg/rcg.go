// Package rcg is a seeded random synchronous-circuit generator for
// correctness tooling. Unlike the profile-matched synthetic suite of package
// iscas (which is tuned for random-pattern testability so the paper's
// experiments behave realistically), rcg aims for *structural diversity*: it
// draws gate types uniformly, allows dangling gates, single-gate fanout
// chains, flip-flop self-loops and degenerate interfaces, because the point
// is to stress the simulators and netlist tooling, not to look like
// synthesized logic.
//
// Every circuit is generated deterministically from Params (ultimately from
// a single integer seed via ParamsFromSeed), the combinational core is
// acyclic by construction (gates only ever draw fanins from strictly earlier
// gates or from primary inputs / flip-flop outputs), and Generate never
// fails on normalized parameters — which is what makes the package usable as
// the circuit decoder of the differential fuzz targets in
// internal/difftest.
package rcg

import (
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/randutil"
)

// Params describe a random circuit. The zero value is not useful; call
// Normalized (or start from ParamsFromSeed) to clamp every field into the
// supported range.
type Params struct {
	// Name is the circuit name ("rcg" if empty).
	Name string
	// Inputs, Outputs, DFFs, Gates are the interface and size counts.
	Inputs, Outputs, DFFs, Gates int
	// MaxFanin bounds the fanin count of every gate (clamped to [2,6]).
	MaxFanin int
	// SelfLoops allows a flip-flop's D input to be driven directly by a
	// source node — possibly the flip-flop itself — instead of a gate.
	SelfLoops bool
	// Seed drives every random choice.
	Seed uint64
}

// Normalized returns p with every field clamped into the range Generate
// supports: at least 1 input and output, at least 2 gates, outputs no more
// numerous than gates, fanin bound in [2,6].
func (p Params) Normalized() Params {
	if p.Name == "" {
		p.Name = "rcg"
	}
	p.Inputs = clamp(p.Inputs, 1, 64)
	p.DFFs = clamp(p.DFFs, 0, 256)
	p.Gates = clamp(p.Gates, 2, 4096)
	p.Outputs = clamp(p.Outputs, 1, p.Gates)
	p.MaxFanin = clamp(p.MaxFanin, 2, 6)
	return p
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ParamsFromSeed derives small fuzz-sized parameters from a single seed:
// 1-8 inputs, 1-5 outputs, 0-8 flip-flops, 4-56 gates. The mapping is the
// standard decoder used by the differential fuzz targets, so one uint64
// names one circuit.
func ParamsFromSeed(seed uint64) Params {
	rng := randutil.New(seed)
	return Params{
		Name:      fmt.Sprintf("rcg-%d", seed),
		Inputs:    1 + rng.Intn(8),
		Outputs:   1 + rng.Intn(5),
		DFFs:      rng.Intn(9),
		Gates:     4 + rng.Intn(53),
		MaxFanin:  2 + rng.Intn(4),
		SelfLoops: rng.Bool(),
		Seed:      rng.Uint64(),
	}.Normalized()
}

// gateTypes is the uniform pool for multi-input gates.
var gateTypes = []circuit.GateType{
	circuit.And, circuit.Nand, circuit.Or, circuit.Nor,
	circuit.Xor, circuit.Xnor,
}

// Generate builds a random synchronous circuit from p (normalized first).
// The result is always a valid circuit: acyclic combinational core, every
// referenced node defined, at least one primary input and output.
func Generate(p Params) (*circuit.Circuit, error) {
	p = p.Normalized()
	rng := randutil.New(p.Seed)

	srcName := func(k int) string {
		if k < p.Inputs {
			return fmt.Sprintf("pi%d", k)
		}
		return fmt.Sprintf("ff%d", k-p.Inputs)
	}
	gateName := func(k int) string { return fmt.Sprintf("n%d", k) }
	nSrc := p.Inputs + p.DFFs

	b := circuit.NewBuilder(p.Name)
	for i := 0; i < p.Inputs; i++ {
		b.Input(srcName(i))
	}

	// Gates draw fanins from the pool of sources and strictly earlier gates,
	// which keeps the combinational core acyclic by construction. Duplicate
	// fanin candidates are dropped (the pool is small early on, so a gate may
	// end up with fewer fanins than drawn; 1-input gates become BUF/NOT).
	for k := 0; k < p.Gates; k++ {
		nf := 1 + rng.Intn(p.MaxFanin)
		seen := map[string]bool{}
		var fanins []string
		for len(fanins) < nf {
			var cand string
			if k == 0 || rng.Intn(100) < 35 {
				cand = srcName(rng.Intn(nSrc))
			} else {
				cand = gateName(rng.Intn(k))
			}
			if seen[cand] {
				break
			}
			seen[cand] = true
			fanins = append(fanins, cand)
		}
		var typ circuit.GateType
		if len(fanins) == 1 {
			if rng.Bool() {
				typ = circuit.Buf
			} else {
				typ = circuit.Not
			}
			// Single-input forms of the multi-input gates are legal in the
			// netlist model (NAND(a) == NOT(a)); emit them occasionally so
			// the simulators' 1-fanin paths see every gate type.
			if rng.Intn(4) == 0 {
				typ = gateTypes[rng.Intn(len(gateTypes))]
			}
		} else {
			typ = gateTypes[rng.Intn(len(gateTypes))]
		}
		b.Gate(gateName(k), typ, fanins...)
	}

	// Flip-flop D inputs come from the deeper half of the gate list; with
	// SelfLoops a quarter of them instead tap a source directly (possibly the
	// flip-flop's own output — a legal 1-cycle state feedback).
	for k := 0; k < p.DFFs; k++ {
		var d string
		if p.SelfLoops && rng.Intn(4) == 0 {
			d = srcName(rng.Intn(nSrc))
		} else {
			d = gateName(p.Gates/2 + rng.Intn(p.Gates-p.Gates/2))
		}
		b.DFF(srcName(p.Inputs+k), d)
	}

	// Primary outputs: distinct gates, chosen uniformly.
	perm := rng.Perm(p.Gates)
	for _, g := range perm[:p.Outputs] {
		b.Output(gateName(g))
	}

	return b.Build()
}

// MustGenerate is Generate, panicking on error. Generate cannot fail on
// normalized parameters, so a panic indicates a bug in this package.
func MustGenerate(p Params) *circuit.Circuit {
	c, err := Generate(p)
	if err != nil {
		panic(fmt.Sprintf("rcg: %v", err))
	}
	return c
}

// FromSeed is shorthand for MustGenerate(ParamsFromSeed(seed)).
func FromSeed(seed uint64) *circuit.Circuit {
	return MustGenerate(ParamsFromSeed(seed))
}

// Bench renders c as ISCAS-89 .bench text (the failure-reporting format of
// the differential tests: a mismatch message carries the whole netlist).
func Bench(c *circuit.Circuit) string {
	var sb strings.Builder
	if err := bench.Write(&sb, c); err != nil {
		panic(fmt.Sprintf("rcg: bench render: %v", err))
	}
	return sb.String()
}
