package rcg

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Inputs: 4, Outputs: 3, DFFs: 5, Gates: 30, Seed: 99}
	a := MustGenerate(p)
	b := MustGenerate(p)
	if Bench(a) != Bench(b) {
		t.Fatal("same params produced different circuits")
	}
	if Bench(a) == Bench(MustGenerate(Params{Inputs: 4, Outputs: 3, DFFs: 5, Gates: 30, Seed: 100})) {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestGenerateRespectsParams(t *testing.T) {
	p := Params{Inputs: 6, Outputs: 4, DFFs: 7, Gates: 40, MaxFanin: 3, Seed: 5}
	c := MustGenerate(p)
	s := c.Stats()
	if s.Inputs != 6 || s.Outputs != 4 || s.DFFs != 7 || s.Gates != 40 {
		t.Fatalf("stats %v do not match params %+v", s, p)
	}
	for _, id := range c.Order {
		if n := len(c.Nodes[id].Fanins); n > 3 {
			t.Fatalf("gate %s has %d fanins, MaxFanin 3", c.Nodes[id].Name, n)
		}
	}
}

func TestNormalizedClamps(t *testing.T) {
	p := Params{Inputs: -3, Outputs: 100, DFFs: -1, Gates: 3, MaxFanin: 99}.Normalized()
	if p.Inputs != 1 || p.DFFs != 0 || p.Gates != 3 || p.Outputs != 3 || p.MaxFanin != 6 {
		t.Fatalf("unexpected clamp: %+v", p)
	}
	if _, err := Generate(Params{}); err != nil {
		t.Fatalf("zero params should generate after normalization: %v", err)
	}
}

// TestParamsFromSeedAlwaysBuilds is the decoder guarantee the fuzz targets
// rely on: every seed yields a circuit that builds and levelizes.
func TestParamsFromSeedAlwaysBuilds(t *testing.T) {
	n := 2000
	if testing.Short() {
		n = 300
	}
	for seed := 0; seed < n; seed++ {
		c := FromSeed(uint64(seed))
		if c.NumInputs() < 1 || c.NumOutputs() < 1 || c.NumGates() < 2 {
			t.Fatalf("seed %d: degenerate circuit %v", seed, c.Stats())
		}
	}
}

// TestSelfLoopDFF pins down that self-loops actually occur and build: some
// seed must produce a flip-flop whose D input is a source node.
func TestSelfLoopDFF(t *testing.T) {
	found := false
	for seed := uint64(0); seed < 400 && !found; seed++ {
		p := ParamsFromSeed(seed)
		if !p.SelfLoops || p.DFFs == 0 {
			continue
		}
		c := MustGenerate(p)
		for _, id := range c.DFFs {
			d := c.Nodes[id].Fanins[0]
			if !c.Nodes[d].Type.IsGate() {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no seed in 0..399 produced a source-driven flip-flop")
	}
}

func TestBenchTextParsesBack(t *testing.T) {
	c := FromSeed(7)
	text := Bench(c)
	if !strings.Contains(text, "INPUT(") {
		t.Fatalf("bench text missing inputs:\n%s", text)
	}
	r, err := bench.Parse(c.Name, strings.NewReader(text))
	if err != nil {
		t.Fatalf("generated bench text does not parse: %v\n%s", err, text)
	}
	if r.Stats() != c.Stats() {
		t.Fatalf("round-trip stats differ: %v vs %v", r.Stats(), c.Stats())
	}
}

func TestGateTypeDiversity(t *testing.T) {
	seen := map[circuit.GateType]bool{}
	for seed := uint64(0); seed < 50; seed++ {
		c := FromSeed(seed)
		for _, id := range c.Order {
			seen[c.Nodes[id].Type] = true
		}
	}
	for _, typ := range []circuit.GateType{
		circuit.Buf, circuit.Not, circuit.And, circuit.Nand,
		circuit.Or, circuit.Nor, circuit.Xor, circuit.Xnor,
	} {
		if !seen[typ] {
			t.Errorf("gate type %v never generated across 50 seeds", typ)
		}
	}
}
