package podem

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/sim"
)

// verify checks that a found window really detects the fault when simulated
// from the all-zero state.
func verify(t *testing.T, c *circuit.Circuit, f fault.Fault, res *Result) {
	t.Helper()
	if !res.Found {
		t.Fatalf("no test found for %s", f.String(c))
	}
	out := fsim.Run(c, res.Seq, []fault.Fault{f}, fsim.Options{Init: logic.Zero})
	if !out.Detected[0] {
		t.Fatalf("PODEM window does not detect %s:\n%s", f.String(c), res.Seq)
	}
}

func zeroState(c *circuit.Circuit) []logic.V {
	return make([]logic.V, c.NumDFFs())
}

func TestCombinationalAndGate(t *testing.T) {
	b := circuit.NewBuilder("and")
	b.Input("a")
	b.Input("b")
	b.Gate("g", circuit.And, "a", "b")
	b.Output("g")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// g s-a-0 requires a=b=1.
	g, _ := c.Lookup("g")
	f := fault.Fault{Node: g, Pin: -1, Stuck: 0}
	res, err := FindTest(c, f, zeroState(c), zeroState(c), Options{Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, c, f, res)
	if res.Seq.At(0, 0) != logic.One || res.Seq.At(0, 1) != logic.One {
		t.Fatalf("expected a=b=1, got %s", res.Seq)
	}
}

func TestSequentialPropagationThroughShiftRegister(t *testing.T) {
	// in -> q0 -> q1 -> out: a fault at the input needs 3 frames to reach
	// the output.
	b := circuit.NewBuilder("sr")
	b.Input("in")
	b.DFF("q0", "inb")
	b.DFF("q1", "q0")
	b.Gate("inb", circuit.Buf, "in")
	b.Gate("out", circuit.Buf, "q1")
	b.Output("out")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in, _ := c.Lookup("in")
	f := fault.Fault{Node: in, Pin: -1, Stuck: 0}
	res, err := FindTest(c, f, zeroState(c), zeroState(c), Options{Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, c, f, res)
	// Too few frames must fail.
	short, err := FindTest(c, f, zeroState(c), zeroState(c), Options{Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	if short.Found {
		t.Fatal("2 frames cannot propagate through 2 flip-flops plus detection")
	}
}

func TestStateActivation(t *testing.T) {
	// The fault is on the state cone: q' = XOR(q, en); out = q. Fault q
	// s-a-0 needs en=1 in an earlier frame to set q, then observation.
	b := circuit.NewBuilder("tog")
	b.Input("en")
	b.DFF("q", "d")
	b.Gate("d", circuit.Xor, "q", "en")
	b.Gate("out", circuit.Buf, "q")
	b.Output("out")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q, _ := c.Lookup("q")
	f := fault.Fault{Node: q, Pin: -1, Stuck: 0}
	res, err := FindTest(c, f, zeroState(c), zeroState(c), Options{Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, c, f, res)
}

func TestComparatorNeedle(t *testing.T) {
	// The headline case: the cmphard comparator's match line s-a-0 needs the
	// exact 16-bit magic constant — hopeless for random search, one
	// backtrace chain for PODEM.
	c, err := iscas.HardCircuit()
	if err != nil {
		t.Fatal(err)
	}
	match, ok := c.Lookup("match")
	if !ok {
		t.Fatal("match line missing")
	}
	f := fault.Fault{Node: match, Pin: -1, Stuck: 0}
	res, err := FindTest(c, f, zeroState(c), zeroState(c), Options{Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, c, f, res)
}

func TestUndetectableFaultBounded(t *testing.T) {
	// OR(a, NOT a) is constantly 1: its s-a-1 is undetectable. The search
	// must terminate without a result.
	b := circuit.NewBuilder("red")
	b.Input("a")
	b.Gate("an", circuit.Not, "a")
	b.Gate("g", circuit.Or, "a", "an")
	b.Output("g")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := c.Lookup("g")
	f := fault.Fault{Node: g, Pin: -1, Stuck: 1}
	res, err := FindTest(c, f, nil, nil, Options{Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("undetectable fault 'detected'")
	}
}

func TestContinuationFromDivergedStates(t *testing.T) {
	// If the good and faulty states already differ at a flip-flop feeding an
	// output cone, one frame suffices even though the fault site itself is
	// never re-activated.
	b := circuit.NewBuilder("cont")
	b.Input("en")
	b.DFF("q", "d")
	b.Gate("d", circuit.And, "q", "en") // hold while en=1
	b.Gate("out", circuit.And, "q", "en")
	b.Output("out")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q, _ := c.Lookup("q")
	f := fault.Fault{Node: q, Pin: -1, Stuck: 0}
	good := []logic.V{logic.One}
	faulty := []logic.V{logic.Zero} // the fault already corrupted the state
	res, err := FindTest(c, f, good, faulty, Options{Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("diverged state not exploited")
	}
	// en must be 1 to observe.
	if res.Seq.At(0, 0) != logic.One {
		t.Fatalf("expected en=1, got %s", res.Seq)
	}
}

func TestStateWidthValidation(t *testing.T) {
	c := iscas.MustLoad("s27")
	if _, err := FindTest(c, fault.Fault{Node: 0, Pin: -1}, nil, nil, Options{}); err == nil {
		t.Fatal("wrong state width accepted")
	}
}

func TestBranchFault(t *testing.T) {
	// Branch fault on one fanout of a stem: a = fanout to AND and OR.
	b := circuit.NewBuilder("br")
	b.Input("a")
	b.Input("b")
	b.Gate("g1", circuit.And, "a", "b")
	b.Gate("g2", circuit.Or, "a", "b")
	b.Output("g1")
	b.Output("g2")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := c.Lookup("g1")
	f := fault.Fault{Node: g1, Pin: 0, Stuck: 0} // branch a->g1 s-a-0
	res, err := FindTest(c, f, nil, nil, Options{Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("branch fault not detected")
	}
	out := fsim.Run(c, res.Seq, []fault.Fault{f}, fsim.Options{Init: logic.Zero})
	if !out.Detected[0] {
		t.Fatalf("window does not detect the branch fault:\n%s", res.Seq)
	}
}

var _ = sim.NewSequence
