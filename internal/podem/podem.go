// Package podem implements a bounded sequential test generator for single
// stuck-at faults: PODEM-style branch-and-bound over the primary-input
// assignments of a k-time-frame window, evaluated with good/faulty value
// pairs (the D-calculus). The window starts from explicitly given good and
// faulty machine states, so a caller can continue from wherever an existing
// test sequence left off — the generated vectors are appended to that
// sequence. This is the deterministic phase of the STRATEGATE substitute
// (see internal/atpg): random search finds the easy faults, PODEM targets
// the stragglers.
package podem

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Options bound the search.
type Options struct {
	// Frames is the number of time frames in the window (default 8).
	Frames int
	// MaxBacktracks bounds the decision backtracks (default 500).
	MaxBacktracks int
}

func (o *Options) fill() {
	if o.Frames == 0 {
		o.Frames = 8
	}
	if o.MaxBacktracks == 0 {
		o.MaxBacktracks = 500
	}
}

// Result reports a search outcome.
type Result struct {
	// Found reports whether a detecting window was found.
	Found bool
	// Seq is the input window (length = Options.Frames), with every
	// unassigned input filled with 0. Valid only when Found.
	Seq *sim.Sequence
	// Backtracks counts the backtracks consumed.
	Backtracks int
}

// pair is a good/faulty value pair.
type pair struct {
	g, f logic.V
}

func (p pair) divergent() bool {
	return p.g.IsBinary() && p.f.IsBinary() && p.g != p.f
}

// searcher holds the per-call state.
type searcher struct {
	c      *circuit.Circuit
	flt    fault.Fault
	opts   Options
	gInit  []logic.V
	fInit  []logic.V
	pi     [][]logic.V // pi[frame][input]: current assignments (X = free)
	vals   [][]pair    // vals[frame][node]: last simulation
	detAt  int         // frame where detection occurred, -1
	busyBT int
}

// FindTest searches for an input window of opts.Frames vectors that detects
// the fault when applied after states goodInit / faultyInit (one value per
// flip-flop; X allowed). On success the returned sequence, applied from
// those states, makes a primary output differ binarily between the good and
// faulty machines (callers should re-verify with the fault simulator, which
// internal/atpg does).
func FindTest(c *circuit.Circuit, f fault.Fault, goodInit, faultyInit []logic.V, opts Options) (*Result, error) {
	opts.fill()
	if len(goodInit) != c.NumDFFs() || len(faultyInit) != c.NumDFFs() {
		return nil, fmt.Errorf("podem: state width %d/%d for circuit with %d flip-flops",
			len(goodInit), len(faultyInit), c.NumDFFs())
	}
	s := &searcher{
		c:     c,
		flt:   f,
		opts:  opts,
		gInit: goodInit,
		fInit: faultyInit,
	}
	s.pi = make([][]logic.V, opts.Frames)
	for fr := range s.pi {
		s.pi[fr] = make([]logic.V, c.NumInputs())
		for i := range s.pi[fr] {
			s.pi[fr][i] = logic.X
		}
	}
	s.vals = make([][]pair, opts.Frames)
	for fr := range s.vals {
		s.vals[fr] = make([]pair, len(c.Nodes))
	}
	res := &Result{}
	found := s.search(res)
	res.Found = found
	telemetry.Add(telemetry.CtrBacktracks, int64(res.Backtracks))
	if found {
		seq := sim.NewSequence(c.NumInputs())
		vec := make([]logic.V, c.NumInputs())
		for fr := 0; fr < opts.Frames; fr++ {
			for i := range vec {
				v := s.pi[fr][i]
				if !v.IsBinary() {
					v = logic.Zero
				}
				vec[i] = v
			}
			seq.Append(vec)
		}
		res.Seq = seq
	}
	return res, nil
}

// simulate performs good/faulty pair simulation of the whole window under
// the current assignments and records the detection frame.
func (s *searcher) simulate() {
	c := s.c
	gState := make([]logic.V, c.NumDFFs())
	fState := make([]logic.V, c.NumDFFs())
	copy(gState, s.gInit)
	copy(fState, s.fInit)
	s.detAt = -1
	for fr := 0; fr < s.opts.Frames; fr++ {
		vals := s.vals[fr]
		for k, id := range c.Inputs {
			vals[id] = s.forced(id, -1, pair{s.pi[fr][k], s.pi[fr][k]})
		}
		for k, id := range c.DFFs {
			vals[id] = s.forced(id, -1, pair{gState[k], fState[k]})
		}
		var in [8]pair
		for _, id := range c.Order {
			n := &c.Nodes[id]
			fan := in[:0]
			for pin, fid := range n.Fanins {
				v := vals[fid]
				if s.flt.Pin == pin && s.flt.Node == id {
					v.f = logic.V(s.flt.Stuck)
				}
				fan = append(fan, v)
			}
			vals[id] = s.forced(id, -1, evalPair(n.Type, fan))
		}
		if s.detAt < 0 {
			for _, id := range c.Outputs {
				if vals[id].divergent() {
					s.detAt = fr
					break
				}
			}
		}
		for k, id := range c.DFFs {
			v := vals[c.Nodes[id].Fanins[0]]
			if s.flt.Pin == 0 && s.flt.Node == id {
				v.f = logic.V(s.flt.Stuck)
			}
			gState[k] = v.g
			fState[k] = v.f
		}
	}
}

// forced applies the stem fault at node id to the faulty rail.
func (s *searcher) forced(id circuit.NodeID, _ int, v pair) pair {
	if s.flt.Pin < 0 && s.flt.Node == id {
		v.f = logic.V(s.flt.Stuck)
	}
	return v
}

func evalPair(t circuit.GateType, in []pair) pair {
	var g, f [8]logic.V
	for i, p := range in {
		g[i] = p.g
		f[i] = p.f
	}
	return pair{
		g: sim.Eval(t, g[:len(in)]),
		f: sim.Eval(t, f[:len(in)]),
	}
}

// objective returns the next (node, frame, good-value) goal, or ok=false if
// the fault cannot progress (no activation possible and no D-frontier).
func (s *searcher) objective() (circuit.NodeID, int, logic.V, bool) {
	// Activation: some frame where the fault site carries the stuck value's
	// complement on the good rail.
	siteVal := func(fr int) logic.V {
		if s.flt.Pin < 0 {
			return s.vals[fr][s.flt.Node].g
		}
		return s.vals[fr][s.c.Nodes[s.flt.Node].Fanins[s.flt.Pin]].g
	}
	activated := false
	for fr := 0; fr < s.opts.Frames && !activated; fr++ {
		if siteVal(fr).IsBinary() && siteVal(fr) != logic.V(s.flt.Stuck) {
			activated = true
		}
	}
	if !activated {
		want := logic.V(s.flt.Stuck).Not()
		for fr := 0; fr < s.opts.Frames; fr++ {
			if siteVal(fr) == logic.X {
				target := s.flt.Node
				if s.flt.Pin >= 0 {
					target = s.c.Nodes[s.flt.Node].Fanins[s.flt.Pin]
				}
				return target, fr, want, true
			}
		}
		return 0, 0, logic.X, false // site pinned to the stuck value everywhere
	}
	// Propagation: find a gate with a divergent input and an X output whose
	// side inputs can still be set (good value X). Branch faults make the
	// divergence visible only on the faulted pin, not on the driver node, so
	// the pin forcing is re-applied here.
	for fr := 0; fr < s.opts.Frames; fr++ {
		vals := s.vals[fr]
		for _, id := range s.c.Order {
			if vals[id].g != logic.X && vals[id].f != logic.X {
				continue
			}
			n := &s.c.Nodes[id]
			hasD := false
			for pin, fid := range n.Fanins {
				v := vals[fid]
				if s.flt.Pin == pin && s.flt.Node == id {
					v.f = logic.V(s.flt.Stuck)
				}
				if v.divergent() {
					hasD = true
					break
				}
			}
			if !hasD {
				continue
			}
			for _, fid := range n.Fanins {
				if vals[fid].g == logic.X {
					return fid, fr, nonControlling(n.Type), true
				}
			}
		}
	}
	return 0, 0, logic.X, false
}

// nonControlling returns the side-input value that lets a fault effect pass
// through a gate of type t.
func nonControlling(t circuit.GateType) logic.V {
	switch t {
	case circuit.And, circuit.Nand:
		return logic.One
	case circuit.Or, circuit.Nor:
		return logic.Zero
	default: // XOR/XNOR/NOT/BUF: any value propagates
		return logic.Zero
	}
}

// backtrace maps an objective to an unassigned primary input (input index,
// frame, value), walking backward through X-valued lines and across flip-
// flops into earlier frames. ok=false if the objective dead-ends (e.g. it
// reaches the fixed initial state).
func (s *searcher) backtrace(id circuit.NodeID, fr int, v logic.V) (int, int, logic.V, bool) {
	for steps := 0; steps < len(s.c.Nodes)*s.opts.Frames; steps++ {
		n := &s.c.Nodes[id]
		switch n.Type {
		case circuit.Input:
			for k, iid := range s.c.Inputs {
				if iid == id {
					if s.pi[fr][k] != logic.X {
						return 0, 0, logic.X, false // already pinned
					}
					return k, fr, v, true
				}
			}
			return 0, 0, logic.X, false
		case circuit.DFF:
			if fr == 0 {
				return 0, 0, logic.X, false // initial state is fixed
			}
			fr--
			id = n.Fanins[0]
		case circuit.Not:
			id = n.Fanins[0]
			v = v.Not()
		case circuit.Buf:
			id = n.Fanins[0]
		case circuit.Xor, circuit.Xnor:
			next, ok := s.pickXFanin(n, fr)
			if !ok {
				return 0, 0, logic.X, false
			}
			id = next
			v = logic.Zero // free choice; the other inputs adapt
		default: // AND/NAND/OR/NOR
			want := v
			if n.Type == circuit.Nand || n.Type == circuit.Nor {
				want = want.Not()
			}
			next, ok := s.pickXFanin(n, fr)
			if !ok {
				return 0, 0, logic.X, false
			}
			id = next
			if n.Type == circuit.And || n.Type == circuit.Nand {
				v = want // 1 needs all ones; 0 needs a zero: either way drive `want`
			} else {
				v = want
			}
		}
	}
	return 0, 0, logic.X, false
}

// pickXFanin returns a fanin whose good value is X.
func (s *searcher) pickXFanin(n *circuit.Node, fr int) (circuit.NodeID, bool) {
	for _, fid := range n.Fanins {
		if s.vals[fr][fid].g == logic.X {
			return fid, true
		}
	}
	return 0, false
}

type decision struct {
	input, frame int
	value        logic.V
	flipped      bool
}

// search runs the PODEM decision loop.
func (s *searcher) search(res *Result) bool {
	var stack []decision
	s.simulate()
	for {
		if s.detAt >= 0 {
			return true
		}
		id, fr, v, ok := s.objective()
		if ok {
			if k, pfr, pv, traced := s.backtrace(id, fr, v); traced {
				s.pi[pfr][k] = pv
				stack = append(stack, decision{input: k, frame: pfr, value: pv})
				s.simulate()
				continue
			}
		}
		// Dead end: backtrack.
		for {
			if len(stack) == 0 {
				return false
			}
			res.Backtracks++
			if res.Backtracks > s.opts.MaxBacktracks {
				return false
			}
			d := &stack[len(stack)-1]
			if !d.flipped {
				d.flipped = true
				d.value = d.value.Not()
				s.pi[d.frame][d.input] = d.value
				break
			}
			s.pi[d.frame][d.input] = logic.X
			stack = stack[:len(stack)-1]
		}
		s.simulate()
	}
}
