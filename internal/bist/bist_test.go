package bist

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
)

// s298Run prepares a core result for the synthetic s298 (reset-to-0, so
// signatures are clean).
func s298Run(t *testing.T) *core.Result {
	t.Helper()
	c := iscas.MustLoad("s298")
	ar := atpg.Generate(c, atpg.Options{Seed: 5, Init: logic.Zero})
	var targets []fault.Fault
	var detTime []int
	for i := range ar.Faults {
		if ar.Detected[i] {
			targets = append(targets, ar.Faults[i])
			detTime = append(detTime, ar.DetTime[i])
		}
	}
	r, err := core.Run(c, ar.Seq, targets, detTime, core.Options{LG: 300, Init: logic.Zero, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunSessionRandomSequence(t *testing.T) {
	c := iscas.MustLoad("s298")
	faults := fault.CollapsedUniverse(c)
	seq := sim.RandomSequence(randutil.New(3), c.NumInputs(), 400)
	rep, err := RunSession(c, seq, faults, logic.Zero, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check ByCompare against a plain fsim run.
	out := fsim.Run(c, seq, faults, fsim.Options{Init: logic.Zero})
	for i := range faults {
		if rep.ByCompare[i] != out.Detected[i] {
			t.Fatalf("ByCompare[%d] inconsistent", i)
		}
	}
	if rep.NumByCompare != out.NumDetected {
		t.Fatalf("compare totals differ: %d vs %d", rep.NumByCompare, out.NumDetected)
	}
	// Signature detection can only lose to compare detection (aliasing),
	// never gain.
	for i := range faults {
		if rep.BySignature[i] && !rep.ByCompare[i] {
			t.Fatalf("fault %d detected by signature but not by compare", i)
		}
	}
	// With a 16-bit MISR, aliasing should be rare (expected ~2^-16).
	if rep.Aliased > rep.NumByCompare/20 {
		t.Fatalf("aliasing suspiciously high: %d of %d", rep.Aliased, rep.NumByCompare)
	}
	if rep.NumBySignature+rep.Aliased+countUndetectedByCompare(rep) != len(faults)-rep.Tainted {
		t.Logf("totals: sig=%d aliased=%d tainted=%d compare=%d all=%d",
			rep.NumBySignature, rep.Aliased, rep.Tainted, rep.NumByCompare, len(faults))
	}
	if rep.SessionLength != 400 {
		t.Fatalf("session length %d", rep.SessionLength)
	}
	if rep.Coverage() <= 0 || rep.Coverage() > 1 {
		t.Fatalf("coverage %v", rep.Coverage())
	}
}

func countUndetectedByCompare(r *Report) int {
	n := 0
	for _, d := range r.ByCompare {
		if !d {
			n++
		}
	}
	return n
}

func TestRunWeightedSessionCoversMostTargets(t *testing.T) {
	r := s298Run(t)
	rep, err := RunWeightedSession(r, r.Omega, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tainted != 0 {
		t.Fatalf("%d tainted faults on a reset circuit", rep.Tainted)
	}
	// Continuous application without per-window reset may lose a few
	// detections relative to the per-window guarantee, and the MISR may
	// alias a few more, but the bulk of the coverage must remain.
	if rep.Coverage() < 0.9 {
		t.Fatalf("signature coverage %.3f suspiciously low", rep.Coverage())
	}
	if rep.NumBySignature > rep.NumByCompare {
		t.Fatal("signature detected more than compare")
	}
}

func TestRunSessionTaintWithXInit(t *testing.T) {
	// s27 with unknown initial state produces X outputs early on: slot 0
	// (golden) is tainted, so no fault can be detected by signature.
	c := iscas.MustLoad("s27")
	seq, err := sim.ParseSequence(iscas.S27TestSequence)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	rep, err := RunSession(c, seq, faults, logic.X, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumBySignature != 0 {
		t.Fatalf("tainted golden still detected %d faults by signature", rep.NumBySignature)
	}
	if rep.NumByCompare == 0 {
		t.Fatal("compare detection should still work with X init")
	}
}

func TestRunSessionErrors(t *testing.T) {
	c := iscas.MustLoad("s27")
	empty := sim.NewSequence(c.NumInputs())
	if _, err := RunSession(c, empty, nil, logic.Zero, 16); err == nil {
		t.Error("empty session accepted")
	}
	seq, _ := sim.ParseSequence(iscas.S27TestSequence)
	if _, err := RunSession(c, seq, nil, logic.Zero, 99); err == nil {
		t.Error("bad MISR width accepted")
	}
}

func TestGoldenSignatureStable(t *testing.T) {
	c := iscas.MustLoad("s298")
	faults := fault.CollapsedUniverse(c)
	seq := sim.RandomSequence(randutil.New(4), c.NumInputs(), 200)
	a, err := RunSession(c, seq, faults, logic.Zero, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSession(c, seq, faults[:10], logic.Zero, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.GoldenSignature != b.GoldenSignature {
		t.Fatalf("golden signature depends on the fault list: %x vs %x",
			a.GoldenSignature, b.GoldenSignature)
	}
}
