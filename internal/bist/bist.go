// Package bist closes the self-test loop: the weighted test session produced
// by the core procedure is applied to the circuit under test and the
// responses are compacted in a MISR, exactly as the hardware of the paper's
// Figure 1 plus a standard response compactor would do. Fault coverage is
// then measured the way silicon measures it — by comparing final signatures
// against the fault-free golden signature — and the loss relative to
// per-cycle output comparison (aliasing, unknown-poisoning) is reported.
package bist

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/logic"
	"repro/internal/misr"
	"repro/internal/sim"
)

// Report is the outcome of a signature-based BIST session.
type Report struct {
	// GoldenSignature is the fault-free signature.
	GoldenSignature uint64
	// SessionLength is the number of test cycles applied.
	SessionLength int
	// ByCompare[i] reports per-cycle output-compare detection of faults[i]
	// (the upper bound a compactor can achieve).
	ByCompare []bool
	// BySignature[i] reports signature-compare detection of faults[i].
	BySignature []bool
	// Aliased counts faults detected by compare whose faulty signature
	// nevertheless equals the golden signature.
	Aliased int
	// Tainted counts faults whose faulty machine produced an unknown output
	// value, making their signature untrustworthy (they are counted as
	// undetected by signature).
	Tainted int
	// NumByCompare and NumBySignature are the detection totals.
	NumByCompare, NumBySignature int
}

// Coverage returns the signature-based coverage.
func (r *Report) Coverage() float64 {
	if len(r.BySignature) == 0 {
		return 1
	}
	return float64(r.NumBySignature) / float64(len(r.BySignature))
}

// RunSession applies the given test session to the circuit, compacting the
// primary outputs into a width-bit MISR per fault-simulation group, and
// returns the signature-based coverage report.
func RunSession(c *circuit.Circuit, session *sim.Sequence, faults []fault.Fault,
	init logic.V, width int) (*Report, error) {
	if session.Len() == 0 {
		return nil, fmt.Errorf("bist: empty session")
	}
	template, err := misr.NewWord(width)
	if err != nil {
		return nil, err
	}
	_ = template

	rep := &Report{
		SessionLength: session.Len(),
		ByCompare:     make([]bool, len(faults)),
		BySignature:   make([]bool, len(faults)),
	}

	// One WordMISR per fault group, created lazily by the output hook and
	// harvested after the run.
	groups := map[int]*misr.WordMISR{}
	var hookErr error
	hook := func(lo, hi, u int, po []logic.W) {
		m := groups[lo]
		if m == nil {
			m, err = misr.NewWord(width)
			if err != nil {
				hookErr = err
				return
			}
			groups[lo] = m
		}
		m.Shift(po)
	}
	// The MISR hook relies on fsim's OutputHook ordering contract (strict
	// group order, one goroutine), which forces sequential execution; a
	// Workers value passed by the caller would be ignored for this run.
	out := fsim.Run(c, session, faults, fsim.Options{Init: init, OutputHook: hook})
	if hookErr != nil {
		return nil, hookErr
	}
	copy(rep.ByCompare, out.Detected)
	rep.NumByCompare = out.NumDetected

	goldenSet := false
	for lo, m := range groups {
		if !goldenSet {
			if sig, ok := m.SlotSignature(0); ok {
				rep.GoldenSignature = sig
				goldenSet = true
			}
		}
		diff := m.DiffMask()
		taint := m.TaintMask()
		hi := lo + fsim.GroupSize
		if hi > len(faults) {
			hi = len(faults)
		}
		for k := lo; k < hi; k++ {
			slot := uint(k - lo + 1)
			bit := uint64(1) << slot
			switch {
			case taint&bit != 0:
				rep.Tainted++
			case diff&bit != 0:
				rep.BySignature[k] = true
				rep.NumBySignature++
			default:
				if rep.ByCompare[k] {
					rep.Aliased++
				}
			}
		}
	}
	return rep, nil
}

// RunWeightedSession builds the continuous test session of a core result
// (every weight assignment window back to back, as the Figure 1 hardware
// applies it) and measures signature-based coverage of the target faults.
func RunWeightedSession(res *core.Result, omega []core.Assignment, width int) (*Report, error) {
	sp := res.Options.Span.Child("bist-session")
	defer sp.End()
	lg := res.Options.LG
	if lg == 0 {
		lg = 2000
	}
	for _, dt := range res.DetTime {
		if dt+1 > lg {
			lg = dt + 1
		}
	}
	session := core.ConcatSequence(omega, lg)
	return RunSession(res.Circuit, session, res.TargetFaults, res.Options.Init, width)
}
