package fsim

import (
	"bytes"
	"testing"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/obsv"
	"repro/internal/randutil"
	"repro/internal/rcg"
	"repro/internal/sim"
)

// TestTraceMatchesOutcome checks the trace against the outcome it narrates:
// every detected fault has exactly one event whose time equals DetTime and
// whose primary output actually shows the binary difference, undetected
// faults have none, and the bookkeeping (vectors, activity length) is
// consistent with the run.
func TestTraceMatchesOutcome(t *testing.T) {
	c := iscas.MustLoad("s298")
	rng := randutil.New(0x7ace)
	seq := sim.RandomSequence(rng, c.NumInputs(), 40)
	faults := fault.CollapsedUniverse(c)
	for _, k := range []Kernel{KernelDense, KernelEvent, KernelSlab} {
		tr := obsv.NewTrace()
		out := Run(c, seq, faults, Options{Init: logic.Zero, Kernel: k, Trace: tr})
		if tr.Kernel() != k.String() {
			t.Fatalf("trace kernel = %q, want %q", tr.Kernel(), k)
		}
		if want := (len(faults) + GroupSize - 1) / GroupSize; tr.NumGroups() != want {
			t.Fatalf("trace groups = %d, want %d", tr.NumGroups(), want)
		}
		if tr.NumDetections() != out.NumDetected {
			t.Fatalf("%v: %d events for %d detections", k, tr.NumDetections(), out.NumDetected)
		}
		seen := make(map[int]bool)
		for _, ev := range tr.Events() {
			if seen[ev.Fault] {
				t.Fatalf("%v: fault %d has more than one event", k, ev.Fault)
			}
			seen[ev.Fault] = true
			if !out.Detected[ev.Fault] || out.DetTime[ev.Fault] != ev.Time {
				t.Fatalf("%v: event %+v disagrees with outcome (det=%v t=%d)",
					k, ev, out.Detected[ev.Fault], out.DetTime[ev.Fault])
			}
			if ev.Group != ev.Fault/GroupSize {
				t.Fatalf("%v: event %+v in wrong group", k, ev)
			}
			if ev.PO < 0 || ev.PO >= len(c.Outputs) {
				t.Fatalf("%v: event %+v has out-of-range PO", k, ev)
			}
			if ev.Assignment != -1 {
				t.Fatalf("%v: unattributed run stamped assignment %d", k, ev.Assignment)
			}
		}
		for fi, det := range out.Detected {
			if det && !seen[fi] {
				t.Fatalf("%v: detected fault %d has no event", k, fi)
			}
		}
		// Group 0's activity curve has one sample per vector transition.
		gv := tr.GroupVectors()
		if len(gv) == 0 || gv[0] <= 0 {
			t.Fatalf("%v: group 0 vectors = %v", k, gv)
		}
		if got := len(tr.Activity()); got != gv[0]-1 {
			t.Fatalf("%v: activity has %d samples for %d vectors", k, got, gv[0])
		}
	}
}

// TestTraceDeterministic is the core tentpole invariant: for a fixed circuit,
// sequence and fault list, the canonical trace bytes are identical for every
// worker count and both kernels, on a fresh and on a reused simulator. (The
// difftest package sweeps the same property over 100 random triples.)
func TestTraceDeterministic(t *testing.T) {
	rng := randutil.New(0xdead)
	run := func(name string, c *circuit.Circuit) {
		t.Helper()
		seq := sim.RandomSequence(rng, c.NumInputs(), 24)
		faults := fault.CollapsedUniverse(c)
		var want []byte
		s := New(c)
		for _, k := range []Kernel{KernelDense, KernelEvent, KernelSlab} {
			for _, workers := range []int{1, 4, 8} {
				for pass := 0; pass < 2; pass++ { // second pass: warm scratch
					tr := obsv.NewTrace()
					s.Run(seq, faults, Options{Init: logic.X, Kernel: k, Workers: workers, Trace: tr})
					got := tr.CanonicalBytes()
					if want == nil {
						want = got
						continue
					}
					if !bytes.Equal(want, got) {
						t.Fatalf("%s: trace differs for kernel=%v workers=%d pass=%d",
							name, k, workers, pass)
					}
				}
			}
		}
	}
	run("s27", iscas.MustLoad("s27"))
	run("s298", iscas.MustLoad("s298"))
	for _, seed := range []uint64{9, 310, 7777} {
		run("rcg", rcg.FromSeed(seed))
	}
}

// TestTraceTimeOffset checks that continuation runs stamp absolute times.
func TestTraceTimeOffset(t *testing.T) {
	c := iscas.MustLoad("s27")
	seq, err := sim.ParseSequence(iscas.S27TestSequence)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	tr := obsv.NewTrace()
	out := Run(c, seq, faults, Options{Init: logic.Zero, Trace: tr, TimeOffset: 100})
	for _, ev := range tr.Events() {
		if ev.Time < 100 || ev.Time != out.DetTime[ev.Fault] {
			t.Fatalf("event %+v ignores TimeOffset", ev)
		}
	}
}
