package fsim

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/obsv"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// The slab kernel simulates W fault groups per pass. Per-node state is a
// contiguous gate-major slab of W dual-rail words — vals[int(id)*W + lane] —
// so one levelized walk advances W×64 machines per gate visit from hot cache
// lines: the W words of a gate and of its fanins are adjacent, and the walk
// touches each gate's cache lines once per time unit instead of once per
// group. Fault injection masks are precomputed per (node, lane) in the same
// gate-major layout, and detection scans are word-parallel XOR-style diffs
// (slabDiff) over the W lane words of each primary output.
//
// Bit-identity with the dense kernel holds by construction: lanes never
// interact (each lane carries its own fault-free machine in slot 0 and its
// own injection masks), every lane's gate evaluation is exactly the dense
// kernel's evaluation over that lane's words, and per-lane bookkeeping
// (activeMask draining, early-exit cycle counts, trace emission order,
// telemetry totals) mirrors the dense per-group bookkeeping. A lane whose
// group is fully detected stops counting (laneUnits freezes, matching the
// dense early exit) but keeps being evaluated until the whole batch is done;
// those wasted lane-cycles are counted on fsim.slab_lanes_idle.

// maxSlabLanes caps the automatic lane selection (and keeps user-specified
// lane counts from exploding the arena): 16 lanes × 64 machines = 1024
// machines per gate visit, past which the per-gate slab of the suite-sized
// circuits no longer fits the cache lines one walk keeps hot.
const maxSlabLanes = 16

// slabLanesAuto picks the lane count W from the netlist size against an L2
// cache budget: the hot working set of one slab cycle is ~32 bytes per node
// per lane (16 B dual-rail value + 16 B stem-injection masks), and the walk
// should stay resident across consecutive time units.
func (s *Simulator) slabLanesAuto() int {
	const l2Budget = 1 << 20
	per := 32 * len(s.c.Nodes)
	w := l2Budget / per
	if w < 1 {
		return 1
	}
	if w > maxSlabLanes {
		return maxSlabLanes
	}
	return w
}

// SlabWidth reports the lane width W the slab kernel will use under opts —
// the adaptive choice when opts.SlabLanes <= 0 — before the per-run clamp to
// the number of fault groups. Benchmark harnesses use it to label slab runs;
// it has no effect on simulation.
func (s *Simulator) SlabWidth(opts Options) int {
	w := opts.SlabLanes
	if w <= 0 {
		w = s.slabLanesAuto()
	}
	if w > maxSlabLanes {
		w = maxSlabLanes
	}
	if opts.OutputHook != nil {
		w = 1
	}
	return w
}

// slabPinForce is one pin-fault force of a slab batch: lane selects the
// fault group, mask/bit the slot force within that lane's word.
type slabPinForce struct {
	lane int32
	pin  int32
	mask uint64
	bit  bool
}

// slabState is the arena of the slab kernel: every scratch buffer a batch
// needs, owned by one Simulator (like ev *eventState), grown on demand and
// reused across batches and runs so steady-state slab passes allocate
// nothing. All slabs are gate-major with stride `lanes`; a tail batch with
// fewer active groups than the stride simply leaves the upper lanes unused.
type slabState struct {
	lanes int // allocated stride W

	vals  []logic.W // len(nodes)*lanes: vals[int(id)*lanes+l]
	state []logic.W // len(DFFs)*lanes: state[k*lanes+l]

	// per-(node,lane) stem-fault injection masks; stemLanes[id] is the
	// bitmask of lanes with a mask at id, so the uninjected common path pays
	// one word load per gate and injection loops touch only owning lanes —
	// with W lanes a batch spans W groups' fault sites, so treating "some
	// lane injects here" as "inject every lane" would put ~W× more gate
	// visits on the slow path than the dense kernel ever sees.
	stemMask0 []uint64
	stemMask1 []uint64
	stemLanes []uint32
	stemNodes []circuit.NodeID // touched nodes, for targeted clearing

	// pin-fault forces: pinIdx[node] is -1 or an index into pinForces
	// (forces of all lanes for that node, each tagged with its lane);
	// pinLanes[idx] is the bitmask of lanes with forces, so only those lanes
	// are re-evaluated off the fast path.
	pinIdx    []int32
	pinNodes  []circuit.NodeID
	pinForces [][]slabPinForce
	pinLanes  []uint32

	// per-lane batch bookkeeping
	laneLo     []int // fault range [laneLo, laneHi) of each lane's group
	laneHi     []int
	activeMask []uint64 // undetected slots per lane
	laneUnits  []int    // dense-equivalent simulated vector count per lane
	laneDone   []bool   // lane reached its dense early-exit point
	tgs        []*obsv.GroupTrace
}

// slabFor returns the simulator's slab arena sized for stride lanes,
// allocating or re-allocating only when the stride changes (a stride change
// resets the injection tables along with the slabs, so the targeted-clearing
// bookkeeping stays consistent).
func (s *Simulator) slabFor(lanes int) *slabState {
	sl := s.slab
	if sl == nil {
		sl = &slabState{}
		s.slab = sl
	}
	if sl.lanes != lanes {
		n := len(s.c.Nodes)
		sl.lanes = lanes
		sl.vals = make([]logic.W, n*lanes)
		sl.state = make([]logic.W, len(s.c.DFFs)*lanes)
		sl.stemMask0 = make([]uint64, n*lanes)
		sl.stemMask1 = make([]uint64, n*lanes)
		sl.stemLanes = make([]uint32, n)
		sl.pinIdx = make([]int32, n)
		for i := range sl.pinIdx {
			sl.pinIdx[i] = -1
		}
		sl.stemNodes = sl.stemNodes[:0]
		sl.pinNodes = sl.pinNodes[:0]
		sl.pinForces = sl.pinForces[:0]
		sl.pinLanes = sl.pinLanes[:0]
		sl.laneLo = make([]int, lanes)
		sl.laneHi = make([]int, lanes)
		sl.activeMask = make([]uint64, lanes)
		sl.laneUnits = make([]int, lanes)
		sl.laneDone = make([]bool, lanes)
		sl.tgs = make([]*obsv.GroupTrace, lanes)
	}
	return sl
}

// inject applies the stem-fault masks of slab index i (= node*lanes+lane).
func (sl *slabState) inject(i int, w logic.W) logic.W {
	if m := sl.stemMask0[i]; m != 0 {
		w = w.ForceMask(m, false)
	}
	if m := sl.stemMask1[i]; m != 0 {
		w = w.ForceMask(m, true)
	}
	return w
}

// slabDiff is DiffMask without the reference-value branch: detection scans
// run it over every (output, lane) word, where a data-dependent branch on
// the fault-free value would mispredict constantly. Equivalent to DiffMask
// for every valid word: -(Ones&1) is all-ones exactly when the reference
// slot is 1 (selecting Zeros, the slots reading 0), -(Zeros&1) when it is 0
// (selecting Ones), and both masks are zero for an X reference. Validity
// (Zeros&Ones == 0) guarantees at most one selector fires.
func slabDiff(w logic.W) uint64 {
	return (w.Zeros & -(w.Ones & 1)) | (w.Ones & -(w.Zeros & 1))
}

// buildInjectionSlab rebuilds the per-(node,lane) injection tables for the
// nl groups of a batch. Masks and pin indices are cleared only at the nodes
// the previous batch touched, so steady-state batches pay O(sites), not
// O(nodes×lanes); the retained outer/inner capacity of pinForces makes the
// rebuild allocation-free once warm.
func (s *Simulator) buildInjectionSlab(faults []fault.Fault, nl int) {
	sl := s.slab
	lanes := sl.lanes
	for _, n := range sl.stemNodes {
		base := int(n) * lanes
		for l := 0; l < lanes; l++ {
			sl.stemMask0[base+l] = 0
			sl.stemMask1[base+l] = 0
		}
		sl.stemLanes[n] = 0
	}
	sl.stemNodes = sl.stemNodes[:0]
	for _, n := range sl.pinNodes {
		sl.pinIdx[n] = -1
	}
	sl.pinNodes = sl.pinNodes[:0]
	sl.pinForces = sl.pinForces[:0]
	sl.pinLanes = sl.pinLanes[:0]
	for l := 0; l < nl; l++ {
		lo, hi := sl.laneLo[l], sl.laneHi[l]
		for k := lo; k < hi; k++ {
			f := faults[k]
			slot := uint(k - lo + 1)
			if f.Pin < 0 {
				i := int(f.Node)*lanes + l
				if f.Stuck == 0 {
					sl.stemMask0[i] |= 1 << slot
				} else {
					sl.stemMask1[i] |= 1 << slot
				}
				if sl.stemLanes[f.Node] == 0 {
					sl.stemNodes = append(sl.stemNodes, f.Node)
				}
				sl.stemLanes[f.Node] |= 1 << uint(l)
			} else {
				idx := sl.pinIdx[f.Node]
				if idx < 0 {
					idx = int32(len(sl.pinForces))
					sl.pinIdx[f.Node] = idx
					if cap(sl.pinForces) > len(sl.pinForces) {
						sl.pinForces = sl.pinForces[:idx+1]
						sl.pinForces[idx] = sl.pinForces[idx][:0]
					} else {
						sl.pinForces = append(sl.pinForces, nil)
					}
					sl.pinLanes = append(sl.pinLanes[:idx], 0)
					sl.pinNodes = append(sl.pinNodes, f.Node)
				}
				sl.pinForces[idx] = append(sl.pinForces[idx],
					slabPinForce{lane: int32(l), pin: int32(f.Pin), mask: 1 << slot, bit: f.Stuck == 1})
				sl.pinLanes[idx] |= 1 << uint(l)
			}
		}
	}
}

// runSlab is the slab kernel's counterpart of Run's dispatch body: it shards
// batches-of-W (instead of single groups) over the worker pool. Group
// independence makes the merge bit-identical to sequential for any worker
// count and any W, exactly as for the other kernels.
func (s *Simulator) runSlab(seq *sim.Sequence, faults []fault.Fault, numGroups, stop int, opts Options, out *Outcome) {
	// SlabWidth resolves opts.SlabLanes (adaptive when <= 0, clamped to
	// maxSlabLanes) and drops to W=1 under OutputHook, whose ordering
	// contract (group 0's whole sequence first, then group 1's, ...) is
	// incompatible with interleaving groups in one pass.
	w := s.SlabWidth(opts)
	if w > numGroups {
		w = numGroups
	}

	first := 0
	if opts.AbortAfterFirstGroupIfNone {
		// The Section 4.2 effort reduction: group 0 runs alone (one active
		// lane) so the abort decision sees exactly the dense kernel's view.
		var tb counterBatch
		out.NumDetected = s.runSlabBatch(seq, faults, 0, 1, w, stop, opts, out, &tb)
		tb.flush()
		if out.NumDetected == 0 {
			out.Aborted = numGroups > 1
			return
		}
		first = 1
	}
	rem := numGroups - first
	if rem == 0 {
		return
	}
	numBatches := (rem + w - 1) / w

	workers := opts.Workers
	if workers < 1 || opts.OutputHook != nil {
		workers = 1
	}
	if workers > numBatches {
		workers = numBatches
	}

	if workers <= 1 {
		var tb counterBatch
		for b := 0; b < numBatches; b++ {
			if ctxDone(opts.Ctx) {
				out.Cancelled = true
				tb.cancelled += int64(numGroups - (first + b*w))
				break
			}
			g0 := first + b*w
			out.NumDetected += s.runSlabBatch(seq, faults, g0, min(w, numGroups-g0), w, stop, opts, out, &tb)
		}
		tb.flush()
		return
	}

	// Parallel fan-out over batch indices: each batch writes the disjoint
	// outcome regions of its own groups, per-batch detection counts merge in
	// batch order afterwards.
	detected := make([]int, numBatches)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for _, ws := range s.workerSims(workers) {
		wg.Add(1)
		go func(ws *Simulator) {
			defer wg.Done()
			var tb counterBatch
			defer tb.flush()
			for {
				if ctxDone(opts.Ctx) {
					return
				}
				b := int(cursor.Add(1)) - 1
				if b >= numBatches {
					return
				}
				g0 := first + b*w
				detected[b] = ws.runSlabBatch(seq, faults, g0, min(w, numGroups-g0), w, stop, opts, out, &tb)
			}
		}(ws)
	}
	wg.Wait()
	for _, n := range detected {
		out.NumDetected += n
	}
	// cursor counts claimed batches; every claimed batch ran to completion.
	// Unclaimed batches before the tail are full-width, so the skipped group
	// count is exact.
	if ctxDone(opts.Ctx) {
		if claimed := int(cursor.Load()); claimed < numBatches {
			out.Cancelled = true
			telemetry.Add(telemetry.CtrGroupsCancelled, int64(numGroups-first-claimed*w))
		}
	}
}

// runSlabBatch simulates the nl fault groups g0..g0+nl-1 in lanes 0..nl-1 of
// a stride-wide slab, writing only those groups' disjoint regions of out and
// returning the number of detections. One time unit is one levelized walk
// evaluating all nl lanes of every gate.
func (s *Simulator) runSlabBatch(seq *sim.Sequence, faults []fault.Fault, g0, nl, stride, stop int, opts Options, out *Outcome, tb *counterBatch) int {
	c := s.c
	sl := s.slabFor(stride)
	lanes := sl.lanes
	for l := 0; l < nl; l++ {
		lo := (g0 + l) * GroupSize
		sl.laneLo[l] = lo
		sl.laneHi[l] = min(lo+GroupSize, len(faults))
		sl.activeMask[l] = groupMask(sl.laneHi[l] - lo)
		sl.laneUnits[l] = 0
		sl.laneDone[l] = false
		tg := opts.Trace.Group(g0 + l)
		tg.SetWorker(s.worker)
		sl.tgs[l] = tg
	}
	traceAct := g0 == 0 && sl.tgs[0] != nil
	if traceAct {
		s.actValid = false // activity baseline starts with this pass
	}
	s.buildInjectionSlab(faults, nl)

	vals, state := sl.vals, sl.state
	for l := 0; l < nl; l++ {
		if opts.InitialStates != nil {
			st := opts.InitialStates[g0+l]
			for k := range c.DFFs {
				state[k*lanes+l] = st[k]
			}
		} else {
			wv := logic.Broadcast(opts.Init)
			for k := range c.DFFs {
				state[k*lanes+l] = wv
			}
		}
	}

	// Early exit follows the dense rule per lane; the batch itself only
	// breaks when every lane is done.
	eligible := !opts.ObserveLines && opts.OutputHook == nil && !opts.SaveStates
	units := 0
	det := 0
	active := nl
	var fan [8]logic.W

	for u := 0; u < stop; u++ {
		units++
		for l := 0; l < nl; l++ {
			if !sl.laneDone[l] {
				sl.laneUnits[l]++
			}
		}
		// Load primary inputs and present state into every lane.
		for k, id := range c.Inputs {
			wv := logic.Broadcast(seq.At(u, k))
			base := int(id) * lanes
			for l := 0; l < nl; l++ {
				vals[base+l] = wv
			}
			for m := sl.stemLanes[id]; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				vals[base+l] = sl.inject(base+l, wv)
			}
		}
		for k, id := range c.DFFs {
			base := int(id) * lanes
			sbase := k * lanes
			copy(vals[base:base+nl], state[sbase:sbase+nl])
			for m := sl.stemLanes[id]; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				vals[base+l] = sl.inject(base+l, state[sbase+l])
			}
		}
		// One levelized walk over all lanes. The per-fanin-count and
		// per-gate-type dispatch happens once per gate; the inner lane loops
		// run over adjacent words.
		for k := range s.gateID {
			id := s.gateID[k]
			gt := s.gateType[k]
			flo, fhi := s.faninStart[k], s.faninStart[k+1]
			base := int(id) * lanes
			ov := vals[base : base+nl]
			// Fast path for every lane first; lanes carrying pin forces at
			// this gate are re-evaluated afterwards. With W lanes a batch
			// spans W groups' fault sites, so the slow path must stay
			// per-(gate,lane) — per-gate it would fire ~W× more often than
			// the dense kernel's.
			switch fhi - flo {
			case 1:
				a := int(s.faninList[flo]) * lanes
				av := vals[a : a+nl]
				switch gt {
				case circuit.Not, circuit.Nand, circuit.Nor, circuit.Xnor:
					for l := range ov {
						ov[l] = av[l].Not()
					}
				default:
					copy(ov, av)
				}
			case 2:
				a := int(s.faninList[flo]) * lanes
				b := int(s.faninList[flo+1]) * lanes
				av, bv := vals[a:a+nl], vals[b:b+nl]
				switch gt {
				case circuit.And:
					for l := range ov {
						ov[l] = av[l].And(bv[l])
					}
				case circuit.Nand:
					for l := range ov {
						ov[l] = av[l].And(bv[l]).Not()
					}
				case circuit.Or:
					for l := range ov {
						ov[l] = av[l].Or(bv[l])
					}
				case circuit.Nor:
					for l := range ov {
						ov[l] = av[l].Or(bv[l]).Not()
					}
				case circuit.Xor:
					for l := range ov {
						ov[l] = av[l].Xor(bv[l])
					}
				case circuit.Xnor:
					for l := range ov {
						ov[l] = av[l].Xor(bv[l]).Not()
					}
				default:
					for l := range ov {
						ov[l] = eval2(gt, av[l], bv[l])
					}
				}
			case 3:
				// Same left-fold order as evalW, so the words are identical.
				a := int(s.faninList[flo]) * lanes
				b := int(s.faninList[flo+1]) * lanes
				c3 := int(s.faninList[flo+2]) * lanes
				av, bv, cv := vals[a:a+nl], vals[b:b+nl], vals[c3:c3+nl]
				switch gt {
				case circuit.And:
					for l := range ov {
						ov[l] = av[l].And(bv[l]).And(cv[l])
					}
				case circuit.Nand:
					for l := range ov {
						ov[l] = av[l].And(bv[l]).And(cv[l]).Not()
					}
				case circuit.Or:
					for l := range ov {
						ov[l] = av[l].Or(bv[l]).Or(cv[l])
					}
				case circuit.Nor:
					for l := range ov {
						ov[l] = av[l].Or(bv[l]).Or(cv[l]).Not()
					}
				case circuit.Xor:
					for l := range ov {
						ov[l] = av[l].Xor(bv[l]).Xor(cv[l])
					}
				case circuit.Xnor:
					for l := range ov {
						ov[l] = av[l].Xor(bv[l]).Xor(cv[l]).Not()
					}
				default:
					for l := range ov {
						in := fan[:0]
						in = append(in, av[l], bv[l], cv[l])
						ov[l] = evalW(gt, in)
					}
				}
			default:
				for l := range ov {
					in := fan[:0]
					for _, f := range s.faninList[flo:fhi] {
						in = append(in, vals[int(f)*lanes+l])
					}
					ov[l] = evalW(gt, in)
				}
			}
			if idx := sl.pinIdx[id]; idx >= 0 {
				// Re-evaluate only the lanes with forces at this gate,
				// exactly as the dense kernel evaluates its one group:
				// gather, force, evalW.
				forces := sl.pinForces[idx]
				for m := sl.pinLanes[idx]; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					in := fan[:0]
					for _, f := range s.faninList[flo:fhi] {
						in = append(in, vals[int(f)*lanes+l])
					}
					for _, p := range forces {
						if int(p.lane) == l {
							in[p.pin] = in[p.pin].ForceMask(p.mask, p.bit)
						}
					}
					ov[l] = evalW(gt, in)
				}
			}
			if m := sl.stemLanes[id]; m != 0 {
				for ; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					ov[l] = sl.inject(base+l, ov[l])
				}
			}
		}
		if traceAct && !sl.laneDone[0] {
			s.traceActivitySlab(sl.tgs[0], lanes)
		}
		// Detection: word-parallel diff over each output's lane words. For a
		// fixed lane the emission order (time, then PO index, then slot) is
		// exactly the dense kernel's, so per-group trace streams and
		// DetTime/Detected are bit-identical.
		for poi, id := range c.Outputs {
			base := int(id) * lanes
			for l := 0; l < nl; l++ {
				am := sl.activeMask[l]
				if am == 0 {
					continue
				}
				d := slabDiff(vals[base+l]) & am
				for ; d != 0; d &= d - 1 {
					slot := trailingZeros(d)
					fi := sl.laneLo[l] + slot - 1
					out.Detected[fi] = true
					out.DetTime[fi] = u + opts.TimeOffset
					det++
					am &^= 1 << uint(slot)
					if sl.tgs[l] != nil {
						sl.tgs[l].Detect(fi, u+opts.TimeOffset, poi)
					}
				}
				sl.activeMask[l] = am
			}
		}
		if opts.OutputHook != nil {
			// OutputHook forces a 1-lane batch, so lane 0 is the whole group.
			po := s.poScratch[:0]
			for _, id := range c.Outputs {
				po = append(po, vals[int(id)*lanes])
			}
			s.poScratch = po
			opts.OutputHook(sl.laneLo[0], sl.laneHi[0], u, po)
		}
		if opts.ObserveLines {
			for id := 0; id < len(c.Nodes); id++ {
				base := id * lanes
				for l := 0; l < nl; l++ {
					d := slabDiff(vals[base+l])
					for ; d != 0; d &= d - 1 {
						slot := trailingZeros(d)
						if slot == 0 {
							continue
						}
						out.Lines[sl.laneLo[l]+slot-1].Set(id)
					}
				}
			}
		}
		if eligible {
			for l := 0; l < nl; l++ {
				if !sl.laneDone[l] && sl.activeMask[l] == 0 {
					sl.laneDone[l] = true
					active--
				}
			}
			if active == 0 {
				break // every lane reached its dense early-exit point
			}
		}
		// Clock edge: next state per lane, with DFF D-pin faults applied.
		for k, id := range c.DFFs {
			f0 := int(c.Nodes[id].Fanins[0]) * lanes
			sbase := k * lanes
			copy(state[sbase:sbase+nl], vals[f0:f0+nl])
			if idx := sl.pinIdx[id]; idx >= 0 {
				forces := sl.pinForces[idx]
				for m := sl.pinLanes[idx]; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					wv := vals[f0+l]
					for _, p := range forces {
						if int(p.lane) == l {
							wv = wv.ForceMask(p.mask, p.bit)
						}
					}
					state[sbase+l] = wv
				}
			}
		}
	}
	if opts.SaveStates {
		for l := 0; l < nl; l++ {
			saved := make([]logic.W, len(c.DFFs))
			for k := range saved {
				saved[k] = state[k*lanes+l]
			}
			out.FinalStates[g0+l] = saved
		}
	}
	var laneVec int64
	for l := 0; l < nl; l++ {
		sl.tgs[l].SetVectors(sl.laneUnits[l])
		sl.tgs[l] = nil
		laneVec += int64(sl.laneUnits[l])
		tb.lanesIdle += int64(units - sl.laneUnits[l])
	}
	// gateEvals stays the dense-equivalent count (lane-cycles × gates), so
	// effective_evals and evals/vector remain kernel-invariant quantities in
	// the benchmark gates; the batching win shows up in wall clock and
	// fsim.slab_passes, the overshoot in fsim.slab_lanes_idle.
	tb.gateEvals += laneVec * int64(len(s.gateID))
	tb.vectors += laneVec
	tb.passes += int64(nl)
	tb.dropped += int64(det)
	tb.slabPasses++
	return det
}

// traceActivitySlab is traceActivity reading slot-0 bits through the slab's
// gate-major stride (lane 0 of node i lives at i*lanes). Group 0 is always
// lane 0 of batch 0, and tracing follows lane 0's counted cycles, so the
// sample stream matches the dense kernel's cycle for cycle.
func (s *Simulator) traceActivitySlab(tg *obsv.GroupTrace, lanes int) {
	n := len(s.c.Nodes)
	words := (n + 63) / 64
	if len(s.actZ) < words {
		s.actZ = make([]uint64, words)
		s.actO = make([]uint64, words)
	}
	chg := 0
	var z, o uint64
	wi := 0
	for i := 0; i < n; i++ {
		w := s.slab.vals[i*lanes]
		z |= (w.Zeros & 1) << (uint(i) & 63)
		o |= (w.Ones & 1) << (uint(i) & 63)
		if i&63 == 63 {
			if s.actValid {
				chg += bits.OnesCount64((z ^ s.actZ[wi]) | (o ^ s.actO[wi]))
			}
			s.actZ[wi], s.actO[wi] = z, o
			z, o = 0, 0
			wi++
		}
	}
	if n&63 != 0 {
		if s.actValid {
			chg += bits.OnesCount64((z ^ s.actZ[wi]) | (o ^ s.actO[wi]))
		}
		s.actZ[wi], s.actO[wi] = z, o
	}
	if s.actValid {
		tg.Activity(chg)
	}
	s.actValid = true
}
