package fsim_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// TestMain gates the whole fsim test binary: the shard coordinator re-execs
// the current executable as a worker subprocess, so when this binary is
// spawned with the worker marker it must enter the protocol loop instead of
// running the tests.
func TestMain(m *testing.M) {
	shard.MaybeWorker()
	os.Exit(m.Run())
}

// loadGolden reads one committed golden record from testdata/golden.
func loadGolden(t *testing.T, name string) goldenRecord {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden", name+".json"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var want goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", name, err)
	}
	return want
}

// recordOf reduces an outcome to the golden observable (coverage plus the
// detection-time histogram) for comparison against a committed pin.
func recordOf(tc goldenCase, faults int, out *fsim.Outcome) goldenRecord {
	got := goldenRecord{
		Circuit:     tc.circuit,
		Sequence:    tc.seqDesc,
		Faults:      faults,
		Detected:    out.NumDetected,
		DetTimeHist: map[string]int{},
	}
	if tc.model != nil {
		got.Model = tc.model.Name()
	}
	for i, d := range out.Detected {
		if d {
			got.DetTimeHist[fmt.Sprintf("%d", out.DetTime[i])]++
		}
	}
	return got
}

// TestGoldenOutcomesSharded locks the multi-process coordinator against the
// same committed golden files as the in-process kernels: for every pinned
// workload, runs sharded over ShardProcs ∈ {2, 3} × every kernel must
// reproduce the committed record exactly. Single-group workloads (both s27
// cases: 32 collapsed faults, one group) exercise the contract's degenerate
// side — the coordinator must decline and fall back in-process with an
// untouched outcome — while s298 and s344 (>4 groups) genuinely fan out,
// which the shard.ranges_dispatched counter verifies.
func TestGoldenOutcomesSharded(t *testing.T) {
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			c := iscas.MustLoad(tc.circuit)
			faults := universeOf(c, tc.model)
			want := loadGolden(t, tc.name)
			multiGroup := len(faults) > fsim.GroupSize
			for _, procs := range []int{2, 3} {
				for _, kernel := range []fsim.Kernel{fsim.KernelDense, fsim.KernelEvent, fsim.KernelSlab} {
					before := telemetry.Counters()
					out := fsim.Run(c, tc.seq, faults, fsim.Options{
						Init: tc.init, Workers: 1, Kernel: kernel, ShardProcs: procs,
					})
					if got := recordOf(tc, len(faults), out); !reflect.DeepEqual(got, want) {
						t.Errorf("ShardProcs=%d kernel=%v drifted from the golden pin:\n got: %+v\nwant: %+v",
							procs, kernel, got, want)
					}
					d := telemetry.Counters().Sub(before)
					if dispatched := d.Get(telemetry.CtrShardRangesDispatched); (dispatched > 0) != multiGroup {
						t.Errorf("ShardProcs=%d kernel=%v: dispatched %d ranges for a %d-group workload",
							procs, kernel, dispatched, (len(faults)+fsim.GroupSize-1)/fsim.GroupSize)
					}
				}
			}
		})
	}
}

// TestGoldenOutcomesShardedWorkerDeath re-pins the multi-group golden
// workloads with the first spawned worker crashing one group into a
// multi-group range: the coordinator must lose the worker, reassign the
// unfinished tail of its range, and still reproduce the committed record
// byte for byte. The coordinator is driven directly (shard.Run with an
// explicit RangeSize) so the crash is guaranteed to land mid-range rather
// than on a range boundary, where there would be nothing to reassign.
func TestGoldenOutcomesShardedWorkerDeath(t *testing.T) {
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			c := iscas.MustLoad(tc.circuit)
			faults := universeOf(c, tc.model)
			if len(faults) <= fsim.GroupSize {
				t.Skipf("%s has a single fault group; the coordinator never engages", tc.circuit)
			}
			want := loadGolden(t, tc.name)
			before := telemetry.Counters()
			out, err := shard.Run(c, tc.seq, faults,
				fsim.Options{Init: tc.init, Workers: 1, Kernel: fsim.KernelDense},
				shard.Options{
					Procs:     2,
					RangeSize: 3,
					WorkerExtraEnv: func(spawn int) []string {
						if spawn == 0 {
							return []string{shard.CrashAfterEnv + "=1"}
						}
						return nil
					},
				})
			if err != nil {
				t.Fatalf("shard.Run: %v", err)
			}
			if got := recordOf(tc, len(faults), out); !reflect.DeepEqual(got, want) {
				t.Errorf("worker-death round drifted from the golden pin:\n got: %+v\nwant: %+v", got, want)
			}
			d := telemetry.Counters().Sub(before)
			if lost := d.Get(telemetry.CtrShardWorkersLost); lost == 0 {
				t.Error("crash directive set but no worker was lost (the death round did not happen)")
			}
			if re := d.Get(telemetry.CtrShardRangesReassigned); re == 0 {
				t.Error("a worker died mid-range but nothing was reassigned")
			}
		})
	}
}
