package fsim

import (
	"context"
	"testing"

	"repro/internal/fault"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestSlabWorkersBitIdentical shards batches-of-W over the worker pool and
// checks the merged outcome against the sequential slab run and the dense
// oracle, across lane widths that split the group count evenly and not.
func TestSlabWorkersBitIdentical(t *testing.T) {
	c := iscas.MustLoad("s298")
	faults := fault.CollapsedUniverse(c)
	seq := sim.RandomSequence(randutil.New(11), c.NumInputs(), 48)
	s := New(c)
	want := s.Run(seq, faults, Options{Init: logic.Zero, Kernel: KernelDense})
	for _, lanes := range []int{1, 3, 8} {
		for _, workers := range []int{1, 2, 7} {
			got := s.Run(seq, faults, Options{
				Init: logic.Zero, Kernel: KernelSlab, SlabLanes: lanes, Workers: workers,
			})
			if got.NumDetected != want.NumDetected {
				t.Fatalf("lanes=%d workers=%d: detected %d, want %d",
					lanes, workers, got.NumDetected, want.NumDetected)
			}
			for fi := range want.Detected {
				if got.Detected[fi] != want.Detected[fi] || got.DetTime[fi] != want.DetTime[fi] {
					t.Fatalf("lanes=%d workers=%d: fault %d diverges", lanes, workers, fi)
				}
			}
		}
	}
}

// TestSlabAbortAfterFirstGroup: the Section 4.2 effort-reduction contract —
// group 0 runs alone and, if it detects nothing, the remaining groups are
// never simulated. Must match the dense kernel's abort decision exactly.
func TestSlabAbortAfterFirstGroup(t *testing.T) {
	c := iscas.MustLoad("s298")
	faults := fault.CollapsedUniverse(c)
	rng := randutil.New(3)

	// An all-X sequence detects nothing (binary difference is required), so
	// the abort fires.
	blank := sim.NewSequence(c.NumInputs())
	for u := 0; u < 4; u++ {
		vec := make([]logic.V, c.NumInputs())
		for i := range vec {
			vec[i] = logic.X
		}
		blank.Append(vec)
	}
	out := Run(c, blank, faults, Options{
		Init: logic.X, Kernel: KernelSlab, AbortAfterFirstGroupIfNone: true,
	})
	if !out.Aborted || out.NumDetected != 0 {
		t.Fatalf("blank sequence: aborted=%v detected=%d, want abort with 0",
			out.Aborted, out.NumDetected)
	}

	// A real random sequence detects group-0 faults, so the run continues
	// and must match the unaborted dense result.
	seq := sim.RandomSequence(rng, c.NumInputs(), 32)
	want := Run(c, seq, faults, Options{Init: logic.Zero, Kernel: KernelDense})
	got := Run(c, seq, faults, Options{
		Init: logic.Zero, Kernel: KernelSlab, AbortAfterFirstGroupIfNone: true, SlabLanes: 4,
	})
	if got.Aborted {
		t.Fatal("aborted although group 0 detected faults")
	}
	if got.NumDetected != want.NumDetected {
		t.Fatalf("detected %d, want %d", got.NumDetected, want.NumDetected)
	}
	for fi := range want.Detected {
		if got.Detected[fi] != want.Detected[fi] || got.DetTime[fi] != want.DetTime[fi] {
			t.Fatalf("fault %d diverges after non-aborted slab run", fi)
		}
	}
}

// TestSlabOutputHook: the hook's ordering contract (group 0's whole sequence
// first, then group 1's, ...) is incompatible with lane interleaving, so the
// slab kernel must drop to W=1 and sequential execution — even when the
// options ask for wide lanes and many workers.
func TestSlabOutputHook(t *testing.T) {
	c := iscas.MustLoad("s298")
	faults := fault.CollapsedUniverse(c)
	seq := sim.RandomSequence(randutil.New(5), c.NumInputs(), 10)
	var calls []int
	hook := func(lo, hi, u int, po []logic.W) { calls = append(calls, lo) }
	s := New(c)
	if w := s.SlabWidth(Options{SlabLanes: 8, OutputHook: hook}); w != 1 {
		t.Fatalf("SlabWidth under OutputHook = %d, want 1", w)
	}
	out := s.Run(seq, faults, Options{
		Init: logic.Zero, Kernel: KernelSlab, SlabLanes: 8, Workers: 8, OutputHook: hook,
	})
	groups := (len(faults) + GroupSize - 1) / GroupSize
	if len(calls) != groups*seq.Len() {
		t.Fatalf("hook called %d times, want %d", len(calls), groups*seq.Len())
	}
	for i, lo := range calls {
		if want := (i / seq.Len()) * GroupSize; lo != want {
			t.Fatalf("call %d: group lo=%d, want %d (strict group order)", i, lo, want)
		}
	}
	if want := Run(c, seq, faults, Options{Init: logic.Zero, Kernel: KernelDense}); out.NumDetected != want.NumDetected {
		t.Fatalf("hooked slab run detected %d, want %d", out.NumDetected, want.NumDetected)
	}
}

// TestSlabCancel: a pre-cancelled context skips every batch in both the
// sequential and the parallel sharding paths, and the skipped groups are
// counted exactly.
func TestSlabCancel(t *testing.T) {
	c := iscas.MustLoad("s298")
	faults := fault.CollapsedUniverse(c)
	groups := int64((len(faults) + GroupSize - 1) / GroupSize)
	seq := sim.RandomSequence(randutil.New(7), c.NumInputs(), 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, workers := range []int{1, 4} {
		before := telemetry.Counters()
		out := Run(c, seq, faults, Options{
			Init: logic.Zero, Kernel: KernelSlab, SlabLanes: 4, Workers: workers, Ctx: ctx,
		})
		d := telemetry.Counters().Sub(before)
		if !out.Cancelled {
			t.Fatalf("workers=%d: Cancelled = false", workers)
		}
		if out.NumDetected != 0 {
			t.Fatalf("workers=%d: detected %d on a pre-cancelled run", workers, out.NumDetected)
		}
		if got := d.Get(telemetry.CtrGroupsCancelled); got != groups {
			t.Fatalf("workers=%d: groups_cancelled delta = %d, want %d", workers, got, groups)
		}
	}

	// Racing cancellation against the parallel shard must still account for
	// every group: lanes that ran plus lanes counted as cancelled.
	for trial := 0; trial < 4; trial++ {
		rctx, rcancel := context.WithCancel(context.Background())
		go rcancel()
		out := Run(c, seq, faults, Options{
			Init: logic.Zero, Kernel: KernelSlab, SlabLanes: 2, Workers: 4, Ctx: rctx,
		})
		if out.Cancelled {
			for fi, det := range out.Detected {
				if det && out.DetTime[fi] < 0 {
					t.Fatalf("trial %d: detected fault %d with negative DetTime", trial, fi)
				}
			}
		}
		rcancel()
	}
}

// TestSlabWidthClamps pins the adaptive lane heuristic's bounds: tiny
// netlists saturate at maxSlabLanes, the explicit option is clamped to the
// same cap, and a netlist too large for the L2 budget drops to one lane.
func TestSlabWidthClamps(t *testing.T) {
	small := New(iscas.MustLoad("s27"))
	if w := small.slabLanesAuto(); w != maxSlabLanes {
		t.Fatalf("s27 auto lanes = %d, want cap %d", w, maxSlabLanes)
	}
	if w := small.SlabWidth(Options{SlabLanes: 99}); w != maxSlabLanes {
		t.Fatalf("SlabWidth(99) = %d, want clamp to %d", w, maxSlabLanes)
	}
	if w := small.SlabWidth(Options{SlabLanes: 5}); w != 5 {
		t.Fatalf("SlabWidth(5) = %d, want the explicit value", w)
	}
	big := New(iscas.MustLoad("s35932"))
	if w := big.slabLanesAuto(); w < 1 || w > 2 {
		t.Fatalf("s35932 auto lanes = %d, want ~1 (L2 budget exhausted)", w)
	}
}
