package fsim

import (
	"context"
	"testing"

	"repro/internal/fault"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestCancelBeforeStart: a context that is already cancelled when Run is
// entered skips every fault group, marks the outcome Cancelled, and counts
// all groups on fsim.groups_cancelled.
func TestCancelBeforeStart(t *testing.T) {
	c, err := iscas.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	seq := sim.RandomSequence(randutil.New(7), c.NumInputs(), 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, workers := range []int{0, 4} {
		before := telemetry.Counters()
		out := Run(c, seq, faults, Options{Init: logic.Zero, Workers: workers, Ctx: ctx})
		d := telemetry.Counters().Sub(before)

		if !out.Cancelled {
			t.Fatalf("workers=%d: Cancelled = false", workers)
		}
		if out.NumDetected != 0 {
			t.Errorf("workers=%d: NumDetected = %d on a pre-cancelled run", workers, out.NumDetected)
		}
		groups := int64((len(faults) + GroupSize - 1) / GroupSize)
		if got := d.Get(telemetry.CtrGroupsCancelled); got != groups {
			t.Errorf("workers=%d: groups_cancelled delta = %d, want %d", workers, got, groups)
		}
		if got := d.Get(telemetry.CtrGroupPasses); got != 0 {
			t.Errorf("workers=%d: group passes delta = %d, want 0", workers, got)
		}
	}
}

// TestCancelMidRun cancels from the OutputHook during the first group's
// simulation (the hook forces sequential execution, making the cut
// deterministic): the in-flight group completes, every later group is
// skipped and counted, and the outcome is marked Cancelled.
func TestCancelMidRun(t *testing.T) {
	c, err := iscas.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	groups := (len(faults) + GroupSize - 1) / GroupSize
	if groups < 2 {
		t.Fatalf("need >= 2 fault groups, have %d", groups)
	}
	seq := sim.RandomSequence(randutil.New(7), c.NumInputs(), 32)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	before := telemetry.Counters()
	out := Run(c, seq, faults, Options{
		Init: logic.Zero,
		Ctx:  ctx,
		OutputHook: func(lo, hi, u int, po []logic.W) {
			if lo == 0 && u == 0 {
				cancel()
			}
		},
	})
	d := telemetry.Counters().Sub(before)

	if !out.Cancelled {
		t.Fatal("Cancelled = false after mid-run cancellation")
	}
	if got := d.Get(telemetry.CtrGroupPasses); got != 1 {
		t.Errorf("group passes delta = %d, want 1 (first group runs to completion)", got)
	}
	if got := d.Get(telemetry.CtrGroupsCancelled); got != int64(groups-1) {
		t.Errorf("groups_cancelled delta = %d, want %d", got, groups-1)
	}
}

// TestCancelMidRunParallel races a cancellation against a worker-pool run.
// Whatever the timing, the run must terminate, and the groups that did run
// plus the groups counted as cancelled must account for the whole universe
// — i.e. cancelled workers really returned to the pool instead of finishing
// the sweep. Run under -race this also exercises the ctx check on the claim
// path.
func TestCancelMidRunParallel(t *testing.T) {
	c, err := iscas.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	groups := int64((len(faults) + GroupSize - 1) / GroupSize)
	seq := sim.RandomSequence(randutil.New(7), c.NumInputs(), 64)

	for trial := 0; trial < 4; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		before := telemetry.Counters()
		out := Run(c, seq, faults, Options{Init: logic.Zero, Workers: 4, Ctx: ctx})
		d := telemetry.Counters().Sub(before)

		ran := d.Get(telemetry.CtrGroupPasses)
		skipped := d.Get(telemetry.CtrGroupsCancelled)
		if ran+skipped != groups {
			t.Fatalf("trial %d: ran %d + cancelled %d != %d groups", trial, ran, skipped, groups)
		}
		if out.Cancelled != (skipped > 0) {
			t.Fatalf("trial %d: Cancelled = %v with %d groups skipped", trial, out.Cancelled, skipped)
		}
		cancel()
	}
}

// TestNilCtxUnaffected: runs without a context behave exactly as before and
// never touch the cancellation counter.
func TestNilCtxUnaffected(t *testing.T) {
	c, err := iscas.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	seq := sim.RandomSequence(randutil.New(7), c.NumInputs(), 32)
	before := telemetry.Counters()
	out := Run(c, seq, faults, Options{Init: logic.X})
	d := telemetry.Counters().Sub(before)
	if out.Cancelled {
		t.Error("Cancelled = true without a context")
	}
	if got := d.Get(telemetry.CtrGroupsCancelled); got != 0 {
		t.Errorf("groups_cancelled delta = %d, want 0", got)
	}
}
