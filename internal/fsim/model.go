package fsim

import (
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/sim"
)

// This file holds the per-kernel injection hooks of the non-stuck-at fault
// models (fault.KindTransition, fault.KindBridge). The semantic contract —
// shared with the independent scalar implementations in internal/ref and
// documented in DESIGN.md ("FaultModel contract") — is:
//
// Transition (slow-to-rise d=1 / slow-to-fall d=0), per site and slot:
// the site's nominal value cur is computed exactly once per time unit (the
// value the node would carry without the transition fault, within that
// slot's machine — which may already diverge from slot 0 through state).
// The slot is forced to ¬d iff the previous time unit's nominal value was
// binary ¬d and cur == d (the launch transition happened and the slow node
// still shows the old value during the capture cycle); prev then advances
// to cur. prev starts at X, so time unit 0 never forces.
//
// Bridge (wired-AND s=0 / wired-OR s=1), per pair (a, b) and slot: the
// cycle's nominal values va, vb at the two stems are resolved first (model
// enumeration guarantees neither stem is combinationally reachable from the
// other, so the nominal driver values are independent of the bridge force),
// then both stems are forced to the ternary wired value op(va, vb) for the
// rest of the cycle — detection, output hooks and the state capture all see
// the forced values.

// transSite is one transition fault injected at a node for the current
// group: a single-slot mask, the transition destination d, the site's
// previous-cycle nominal value and the current cycle's recorded force
// decision (replayed verbatim by the dense kernel's bridge replay pass).
type transSite struct {
	mask     uint64
	d        uint8
	prev     logic.V
	forceNow bool
}

// bridgeSite is one half of a bridge fault at a node: the slot mask, the
// other bridged stem, the wired op and the cycle's resolved wired value.
type bridgeSite struct {
	mask   uint64
	other  circuit.NodeID
	or     bool
	forced logic.V
}

// clearModelInjection resets the transition/bridge tables touched by the
// previous group (no-ops for stuck-at-only groups: every list is empty).
func (s *Simulator) clearModelInjection() {
	for _, n := range s.transNodes {
		s.transIdx[n] = -1
	}
	s.transNodes = s.transNodes[:0]
	s.transSites = s.transSites[:0]
	s.transGates = s.transGates[:0]
	for _, n := range s.bridgeNodes {
		s.bridgeIdx[n] = -1
	}
	s.bridgeNodes = s.bridgeNodes[:0]
	s.bridgeSites = s.bridgeSites[:0]
	s.special, s.hasBridge = false, false
}

// addTransSite registers a transition fault at node id for the current group.
func (s *Simulator) addTransSite(id circuit.NodeID, mask uint64, d uint8) {
	idx := s.transIdx[id]
	if idx < 0 {
		idx = int32(len(s.transSites))
		s.transIdx[id] = idx
		s.transSites = append(s.transSites, nil)
		s.transNodes = append(s.transNodes, id)
		if s.cone.OrderPos[id] >= 0 {
			s.transGates = append(s.transGates, id)
		}
	}
	s.transSites[idx] = append(s.transSites[idx], transSite{mask: mask, d: d, prev: logic.X})
	s.special = true
}

// addBridgeSite registers one stem of a bridge fault at node id (callers add
// both stems with the same mask).
func (s *Simulator) addBridgeSite(id, other circuit.NodeID, mask uint64, or bool) {
	idx := s.bridgeIdx[id]
	if idx < 0 {
		idx = int32(len(s.bridgeSites))
		s.bridgeIdx[id] = idx
		s.bridgeSites = append(s.bridgeSites, nil)
		s.bridgeNodes = append(s.bridgeNodes, id)
	}
	s.bridgeSites[idx] = append(s.bridgeSites[idx], bridgeSite{mask: mask, other: other, or: or})
	s.special = true
	s.hasBridge = true
}

// applyTrans runs the transition hook at node id on the (stem-injected)
// word w. On a first pass each site decides its force from the site's
// previous-cycle nominal value and advances prev exactly once; on the dense
// kernel's bridge replay pass the recorded decision is re-applied without
// touching prev (the site's own slot is unaffected by other slots' bridge
// forces, so the nominal value — and hence the decision — is identical).
func (s *Simulator) applyTrans(id circuit.NodeID, w logic.W, replay bool) logic.W {
	ti := s.transIdx[id]
	if ti < 0 {
		return w
	}
	sites := s.transSites[ti]
	for i := range sites {
		t := &sites[i]
		if !replay {
			cur := slotV(w, t.mask)
			t.forceNow = t.prev == oppV(t.d) && cur == logic.V(t.d)
			t.prev = cur
		}
		if t.forceNow {
			w = w.ForceMask(t.mask, t.d == 0)
		}
	}
	return w
}

// place applies the whole of the current group's injection at node id: stem
// stuck-at masks always, then the model hooks for special groups. It is the
// dense kernel's per-node value sink (the event kernel splits the same
// steps across evalNode and its load loops so its stemFlag fast path
// survives).
func (s *Simulator) place(id circuit.NodeID, w logic.W, replay bool) logic.W {
	w = s.inject(id, w)
	if !s.special {
		return w
	}
	w = s.applyTrans(id, w, replay)
	if replay {
		if bi := s.bridgeIdx[id]; bi >= 0 {
			for _, b := range s.bridgeSites[bi] {
				w = forceV(w, b.mask, b.forced)
			}
		}
	}
	return w
}

// resolveBridges computes each bridge site's wired slot value from the first
// pass's nominal stem values (both halves of a pair resolve to the same
// value; the redundancy keeps the replay pass's per-node lookup flat).
func (s *Simulator) resolveBridges() {
	vals := s.vals
	for i, id := range s.bridgeNodes {
		sites := s.bridgeSites[i]
		for j := range sites {
			b := &sites[j]
			va := slotV(vals[id], b.mask)
			vb := slotV(vals[b.other], b.mask)
			if b.or {
				b.forced = logic.Or(va, vb)
			} else {
				b.forced = logic.And(va, vb)
			}
		}
	}
}

// densePass evaluates one time unit of the dense kernel: load primary inputs
// and present state, then one pass over the levelized netlist, placing every
// value through the group's injection. With replay the pass re-runs with the
// resolved bridge forces applied at both stems of every bridged pair (and
// the transition forces replayed rather than re-decided).
func (s *Simulator) densePass(seq *sim.Sequence, state []logic.W, u int, replay bool) {
	c, vals := s.c, s.vals
	var fan [8]logic.W
	for k, id := range c.Inputs {
		vals[id] = s.place(id, logic.Broadcast(seq.At(u, k)), replay)
	}
	for k, id := range c.DFFs {
		vals[id] = s.place(id, state[k], replay)
	}
	for k := range s.gateID {
		id := s.gateID[k]
		gt := s.gateType[k]
		lo, hiF := s.faninStart[k], s.faninStart[k+1]
		var w logic.W
		// Fast paths for the dominant fault-free 1- and 2-input cases;
		// the general path gathers into the scratch buffer.
		if s.pinIdx[id] < 0 {
			switch hiF - lo {
			case 1:
				w = eval1(gt, vals[s.faninList[lo]])
			case 2:
				w = eval2(gt, vals[s.faninList[lo]], vals[s.faninList[lo+1]])
			default:
				in := fan[:0]
				for _, f := range s.faninList[lo:hiF] {
					in = append(in, vals[f])
				}
				w = evalW(gt, in)
			}
		} else {
			in := fan[:0]
			for _, f := range s.faninList[lo:hiF] {
				in = append(in, vals[f])
			}
			for _, p := range s.pinForces[s.pinIdx[id]] {
				in[p.pin] = in[p.pin].ForceMask(p.mask, p.bit)
			}
			w = evalW(gt, in)
		}
		vals[id] = s.place(id, w, replay)
	}
}

// slotV extracts the ternary value of the (single-bit) mask's slot.
func slotV(w logic.W, mask uint64) logic.V {
	switch {
	case w.Ones&mask != 0:
		return logic.One
	case w.Zeros&mask != 0:
		return logic.Zero
	default:
		return logic.X
	}
}

// forceV forces the slots of mask to the ternary value v — the ternary
// generalisation of logic.W.ForceMask (an X force clears both rails).
func forceV(w logic.W, mask uint64, v logic.V) logic.W {
	w.Zeros &^= mask
	w.Ones &^= mask
	switch v {
	case logic.Zero:
		w.Zeros |= mask
	case logic.One:
		w.Ones |= mask
	}
	return w
}

// oppV is the binary complement of a 0/1 Stuck byte as a ternary value.
func oppV(d uint8) logic.V {
	if d == 0 {
		return logic.One
	}
	return logic.Zero
}

// groupHasBridge reports whether any fault of the group is a bridge fault
// (such groups take the dense kernel's two-pass path).
func groupHasBridge(faults []fault.Fault) bool {
	for _, f := range faults {
		if f.Kind == fault.KindBridge {
			return true
		}
	}
	return false
}

// hasModelFaults reports whether the list carries any non-stuck-at fault.
func hasModelFaults(faults []fault.Fault) bool {
	for _, f := range faults {
		if f.Kind != fault.KindStuckAt {
			return true
		}
	}
	return false
}
