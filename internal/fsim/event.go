package fsim

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/sim"
)

// Kernel selects the gate-evaluation strategy of a run.
type Kernel uint8

const (
	// KernelAuto resolves to the kernel named by the FSIM_KERNEL environment
	// variable ("event", "dense" or "slab"), or to KernelEvent when it is
	// unset or unparsable. It is the zero value, so callers that leave Options.Kernel
	// alone get the event kernel (and CI can steer the whole test suite
	// through either kernel without touching any call site).
	KernelAuto Kernel = iota
	// KernelEvent is the event-driven kernel: per time unit only the gates
	// reachable from changed lines are re-evaluated (see runGroupEvent).
	KernelEvent
	// KernelDense is the original kernel: every gate of the levelized
	// netlist is evaluated on every time unit. It is the reference the
	// event kernel is differentially locked against.
	KernelDense
	// KernelSlab is the multi-group slab kernel: up to Options.SlabLanes
	// fault groups are simulated per pass, with per-gate state held in a
	// contiguous gate-major slab so one levelized walk advances
	// lanes×64 machines from hot cache lines (see slab.go). Like the event
	// kernel it is bit-identical to dense by construction.
	KernelSlab
)

// String returns "auto", "event", "dense" or "slab".
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelEvent:
		return "event"
	case KernelDense:
		return "dense"
	case KernelSlab:
		return "slab"
	default:
		return fmt.Sprintf("Kernel(%d)", uint8(k))
	}
}

// ParseKernel maps a CLI/env spelling to a Kernel ("" and "auto" mean
// KernelAuto).
func ParseKernel(s string) (Kernel, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return KernelAuto, nil
	case "event":
		return KernelEvent, nil
	case "dense":
		return KernelDense, nil
	case "slab":
		return KernelSlab, nil
	default:
		return KernelAuto, fmt.Errorf("fsim: unknown kernel %q (want event, dense or slab)", s)
	}
}

// Resolve maps KernelAuto to a concrete kernel via the FSIM_KERNEL
// environment variable, defaulting to the event kernel.
func (k Kernel) Resolve() Kernel {
	if k != KernelAuto {
		return k
	}
	if env, err := ParseKernel(os.Getenv("FSIM_KERNEL")); err == nil && env != KernelAuto {
		return env
	}
	return KernelEvent
}

// eventState is the per-scratch-simulator mutable state of the event kernel.
// Each worker of a parallel run owns one (the static Cone is shared
// read-only), so worklists never cross goroutines.
type eventState struct {
	// buckets[L] holds the gates scheduled for re-evaluation at level L of
	// the current time unit. Processing is level-ascending and every event a
	// gate emits targets a strictly higher level, so one sweep reaches the
	// fixed point.
	buckets [][]circuit.NodeID
	// queued[id] == epoch marks id as already scheduled this time unit.
	queued []uint32
	epoch  uint32

	// inCone[id] == coneEpoch marks id as inside the current group's union
	// fault cone (the fanout cones of its injected fault sites).
	inCone    []uint32
	coneEpoch uint32
	coneStack []circuit.NodeID
	// poList is the subset of Circuit.Outputs inside the union cone — the
	// only outputs a faulty machine of this group can ever disturb, and
	// therefore the only ones the detection scan must visit. poIdx holds
	// each entry's index in Circuit.Outputs, so traced detections report
	// the same primary-output index as the dense kernel's full scan.
	poMask Bitset
	poList []circuit.NodeID
	poIdx  []int32

	// changed collects the nodes whose value changed this time unit (only
	// maintained when Options.ObserveLines needs the per-node diff scan).
	changed []circuit.NodeID

	// prevSites are the injected gate sites of the last event-kernel group
	// run on this simulator; ready reports that vals is a consistent
	// snapshot with respect to that injection (every gate value equals its
	// evaluation from its fanin values), which is what allows the next
	// group to seed a worklist instead of re-evaluating the whole netlist.
	prevSites []circuit.NodeID
	ready     bool

	// sweep tells the next time unit to run one flat levelized pass instead
	// of draining the worklist. It is the adaptive fallback for
	// high-activity phases: when almost every word changes every cycle
	// (dense fault packing makes word-level activity the union of 64
	// machines' activity), queue bookkeeping only adds overhead, so the
	// kernel drops to a dense-shaped sweep and re-arms the queue once the
	// measured per-cycle activity falls again (see the hysteresis
	// thresholds at the call sites in runGroupEvent). Only set for
	// circuits with at least sweepMinGates gates. sweepAge counts sweep
	// cycles so that only every eighth one pays for the activity
	// measurement (the others run the bare dense-shaped loop).
	sweep    bool
	sweepAge uint32

	// per-group telemetry, flushed into the caller's counterBatch
	scheduled int64
	coneHits  int64
}

// sweepMinGates disables the adaptive sweep fallback on tiny circuits,
// where a full pass costs next to nothing and the queue's skip ratio is the
// quantity of interest (the hysteresis would otherwise flip a 10-gate
// circuit into sweep mode on any busy cycle).
const sweepMinGates = 64

func newEventState(nodes, levels, outputs int) *eventState {
	return &eventState{
		buckets: make([][]circuit.NodeID, levels),
		queued:  make([]uint32, nodes),
		inCone:  make([]uint32, nodes),
		poMask:  NewBitset(outputs),
	}
}

// invalidateEvent marks the value snapshot as unusable for warm seeding (the
// dense kernel calls this: it rebuilds injection without tracking sites).
func (s *Simulator) invalidateEvent() {
	if s.ev != nil {
		s.ev.ready = false
	}
}

// skipFault reports whether the event kernel may leave this fault entirely
// uninjected without changing any observable outcome: the fault site reaches
// no primary output through any sequential path (never detectable, never
// visible in an output word), internal lines are not being observed, and
// either final states are not being saved or the effect cannot reach state.
// The skipped slot then mirrors the fault-free machine exactly — which is
// also what the dense kernel computes for it, bit for bit.
func (s *Simulator) skipFault(f fault.Fault, opts Options) bool {
	cn := s.cone
	if opts.ObserveLines || cn.Detectable[f.Node] {
		return false
	}
	if !opts.SaveStates {
		return true
	}
	if cn.FeedsState[f.Node] {
		return false
	}
	// A D-pin fault is forced into the saved state directly at the clock
	// edge, regardless of what its host flip-flop reaches.
	if s.c.Nodes[f.Node].Type == circuit.DFF && f.Pin >= 0 {
		return false
	}
	return true
}

// buildInjectionEvent rebuilds the per-group injection tables for the event
// kernel, tracking the touched nodes: stemNodes for targeted clearing by the
// next group, gateSites (gates whose evaluation depends on this group's
// injection) for worklist seeding, and coneSites (every injected site) as
// the roots of the union cone.
func (s *Simulator) buildInjectionEvent(faults []fault.Fault, lo, hi int, opts Options) {
	if s.ev.ready {
		for _, n := range s.stemNodes {
			s.stemMask0[n] = 0
			s.stemMask1[n] = 0
			s.stemFlag[n] = 0
		}
	} else {
		for i := range s.stemMask0 {
			s.stemMask0[i] = 0
			s.stemMask1[i] = 0
			s.stemFlag[i] = 0
		}
	}
	for _, n := range s.pinNodes {
		s.pinIdx[n] = -1
	}
	s.pinNodes = s.pinNodes[:0]
	s.pinForces = s.pinForces[:0]
	s.clearModelInjection()
	s.stemNodes = s.stemNodes[:0]
	s.gateSites = s.gateSites[:0]
	s.coneSites = s.coneSites[:0]
	for k := lo; k < hi; k++ {
		f := faults[k]
		if s.skipFault(f, opts) {
			continue
		}
		slot := uint(k - lo + 1)
		if f.Kind == fault.KindTransition {
			// Transition sites keep their per-cycle prev/force state in the
			// trans tables; addTransSite also collects the gate sites that
			// must be re-decided every time unit (transGates).
			s.addTransSite(f.Node, 1<<slot, f.Stuck)
		} else if f.Pin < 0 {
			if f.Stuck == 0 {
				s.stemMask0[f.Node] |= 1 << slot
			} else {
				s.stemMask1[f.Node] |= 1 << slot
			}
			s.stemFlag[f.Node] = 1
			s.stemNodes = append(s.stemNodes, f.Node)
		} else {
			idx := s.pinIdx[f.Node]
			if idx < 0 {
				idx = int32(len(s.pinForces))
				s.pinIdx[f.Node] = idx
				s.pinForces = append(s.pinForces, nil)
				s.pinNodes = append(s.pinNodes, f.Node)
			}
			s.pinForces[idx] = append(s.pinForces[idx],
				pinForce{pin: f.Pin, mask: 1 << slot, bit: f.Stuck == 1})
		}
		if s.cone.OrderPos[f.Node] >= 0 {
			s.gateSites = append(s.gateSites, f.Node)
		}
		s.coneSites = append(s.coneSites, f.Node)
	}
	// Sorted unique evaluation-order positions of the injected gates, the
	// sweep-segment boundaries (insertion sort: at most 63 entries).
	s.siteGatePos = s.siteGatePos[:0]
insert:
	for _, id := range s.gateSites {
		p := s.cone.OrderPos[id]
		i := len(s.siteGatePos)
		for i > 0 && s.siteGatePos[i-1] >= p {
			if s.siteGatePos[i-1] == p {
				continue insert
			}
			i--
		}
		s.siteGatePos = append(s.siteGatePos, 0)
		copy(s.siteGatePos[i+1:], s.siteGatePos[i:])
		s.siteGatePos[i] = p
	}
}

// markUnionCone walks the fanout closure of the group's injected sites
// (crossing flip-flops: a latched effect re-emerges at the flip-flop output
// in the next time frame) and derives the restricted detection scan list.
func (s *Simulator) markUnionCone() {
	es, cn, c := s.ev, s.cone, s.c
	es.coneEpoch++
	if es.coneEpoch == 0 { // uint32 wrap: all marks are stale
		for i := range es.inCone {
			es.inCone[i] = 0
		}
		es.coneEpoch = 1
	}
	for i := range es.poMask {
		es.poMask[i] = 0
	}
	stack := es.coneStack[:0]
	for _, n := range s.coneSites {
		if es.inCone[n] != es.coneEpoch {
			es.inCone[n] = es.coneEpoch
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p := cn.POIndex[id]; p >= 0 {
			es.poMask.Set(int(p))
		}
		for _, f := range cn.FanoutList[cn.FanoutStart[id]:cn.FanoutStart[id+1]] {
			if es.inCone[f] != es.coneEpoch {
				es.inCone[f] = es.coneEpoch
				stack = append(stack, f)
			}
		}
	}
	es.coneStack = stack[:0]
	es.poList = es.poList[:0]
	es.poIdx = es.poIdx[:0]
	for k, id := range c.Outputs {
		if es.poMask.Get(k) {
			es.poList = append(es.poList, id)
			es.poIdx = append(es.poIdx, int32(k))
		}
	}
}

// schedule enqueues gate id for re-evaluation this time unit (idempotent).
func (s *Simulator) schedule(id circuit.NodeID) {
	es := s.ev
	if es.queued[id] == es.epoch {
		return
	}
	es.queued[id] = es.epoch
	es.buckets[s.cone.LevelOf[id]] = append(es.buckets[s.cone.LevelOf[id]], id)
	es.scheduled++
	if es.inCone[id] == es.coneEpoch {
		es.coneHits++
	}
}

// scheduleFanouts enqueues every gate fanout of node id.
func (s *Simulator) scheduleFanouts(id circuit.NodeID) {
	cn := s.cone
	for _, f := range cn.FanoutList[cn.FanoutStart[id]:cn.FanoutStart[id+1]] {
		if cn.OrderPos[f] >= 0 {
			s.schedule(f)
		}
	}
}

// evalNode evaluates gate id from the current fanin values, applying the
// group's pin forces and output-stem injection (the same computation as one
// iteration of the dense kernel's gate loop).
func (s *Simulator) evalNode(id circuit.NodeID) logic.W {
	k := s.cone.OrderPos[id]
	gt := s.gateType[k]
	lo, hiF := s.faninStart[k], s.faninStart[k+1]
	vals := s.vals
	var w logic.W
	var fan [8]logic.W
	if s.pinIdx[id] < 0 {
		switch hiF - lo {
		case 1:
			w = eval1(gt, vals[s.faninList[lo]])
		case 2:
			w = eval2(gt, vals[s.faninList[lo]], vals[s.faninList[lo+1]])
		default:
			in := fan[:0]
			for _, f := range s.faninList[lo:hiF] {
				in = append(in, vals[f])
			}
			w = evalW(gt, in)
		}
	} else {
		in := fan[:0]
		for _, f := range s.faninList[lo:hiF] {
			in = append(in, vals[f])
		}
		for _, p := range s.pinForces[s.pinIdx[id]] {
			in[p.pin] = in[p.pin].ForceMask(p.mask, p.bit)
		}
		w = evalW(gt, in)
	}
	if s.stemFlag[id] != 0 {
		w = s.inject(id, w)
	}
	if s.special {
		w = s.applyTrans(id, w, false)
	}
	return w
}

// sweepEval evaluates every gate of the levelized netlist once from the
// current values — the sweep-mode cycle of the event kernel. Injection is
// confined to the ≤63 gates of siteGatePos, so the netlist is processed as
// plain segments between those positions (sweepRange: no pinIdx, stem-mask
// or inject work per gate, strictly cheaper than the dense loop) with only
// the boundary gates taking the general evalNode path. With probe it
// additionally counts the gates whose word changed, feeding the sweep-mode
// hysteresis.
func (s *Simulator) sweepEval(probe bool) int {
	chg := 0
	start := 0
	for _, p := range s.siteGatePos {
		chg += s.sweepRange(start, int(p), probe)
		id := s.gateID[p]
		w := s.evalNode(id)
		if probe && w != s.vals[id] {
			chg++
		}
		s.vals[id] = w
		start = int(p) + 1
	}
	return chg + s.sweepRange(start, len(s.gateID), probe)
}

// sweepRange evaluates gates [lo, hi) of the evaluation order, none of which
// carries any injection this group. It lives in its own small function so
// the compiler's register allocation of the hot loop is not burdened by the
// callers' bookkeeping state.
func (s *Simulator) sweepRange(lo, hi int, probe bool) int {
	vals := s.vals
	chg := 0
	var fan [8]logic.W
	for k := lo; k < hi; k++ {
		id := s.gateID[k]
		gt := s.gateType[k]
		flo, fhi := s.faninStart[k], s.faninStart[k+1]
		var w logic.W
		switch fhi - flo {
		case 1:
			w = eval1(gt, vals[s.faninList[flo]])
		case 2:
			w = eval2(gt, vals[s.faninList[flo]], vals[s.faninList[flo+1]])
		default:
			in := fan[:0]
			for _, f := range s.faninList[flo:fhi] {
				in = append(in, vals[f])
			}
			w = evalW(gt, in)
		}
		if probe {
			// Branchless count: a data-dependent branch here would
			// mispredict constantly at the ~50% change rates this mode
			// runs at.
			ov := vals[id]
			d := (w.Zeros ^ ov.Zeros) | (w.Ones ^ ov.Ones)
			chg += int((d | -d) >> 63)
		}
		vals[id] = w
	}
	return chg
}

// runGroupEvent is the event-driven counterpart of runGroupDense. It
// produces bit-identical outcomes by construction:
//
//   - Node values persist across time units (and across groups); a gate's
//     word is a pure function of its fanin words and the group's injection
//     tables, so re-evaluating exactly the gates downstream of a changed
//     word or a changed injection reaches the same fixed point as a full
//     sweep.
//   - Per time unit the worklist is seeded by the primary inputs whose
//     injected vector word changed and the flip-flops whose injected state
//     word changed; at the first time unit of a group it is additionally
//     seeded by the gate fault sites of this group and of the previous
//     group simulated on this scratch simulator (the only places where the
//     injection tables — the second argument of the pure function — differ).
//     When no consistent snapshot exists (first use, or the dense kernel ran
//     in between) the first time unit evaluates every gate, exactly like
//     one dense sweep.
//   - Events are drained through per-level buckets in ascending level
//     order; every fanout of a node has a strictly higher level, so each
//     gate is evaluated at most once per time unit.
//   - When a cycle's measured activity is high the next cycle falls back to
//     one flat levelized pass (shaped exactly like the dense loop, so it
//     costs dense speed instead of dense-plus-queue-overhead) and the queue
//     re-arms once activity drops; a sweep reaches the same fixed point as
//     a drain, so the fallback is invisible in the outcome.
func (s *Simulator) runGroupEvent(seq *sim.Sequence, faults []fault.Fault, lo, hi, stop int, opts Options, out *Outcome, tb *counterBatch) int {
	c := s.c
	cn := s.cone
	if s.ev == nil {
		s.ev = newEventState(len(c.Nodes), cn.NumLevels, len(c.Outputs))
	}
	es := s.ev
	warm := es.ready
	s.buildInjectionEvent(faults, lo, hi, opts)
	s.markUnionCone()
	es.scheduled, es.coneHits = 0, 0
	tg := opts.Trace.Group(lo / GroupSize)
	tg.SetWorker(s.worker)
	if tg != nil && lo == 0 {
		s.actValid = false // activity baseline starts with this pass
	}

	units := 0
	det := 0
	var evals, sweeps int64

	state := s.next
	if opts.InitialStates != nil {
		copy(state, opts.InitialStates[lo/GroupSize])
	} else {
		for i := range state {
			state[i] = logic.Broadcast(opts.Init)
		}
	}
	vals := s.vals

	activeMask := groupMask(hi - lo)
	observe := opts.ObserveLines

	for u := 0; u < stop; u++ {
		units++
		es.epoch++
		if es.epoch == 0 { // uint32 wrap: all marks are stale
			for i := range es.queued {
				es.queued[i] = 0
			}
			es.epoch = 1
		}
		if observe {
			es.changed = es.changed[:0]
		}
		// A sweep cycle bypasses the queue entirely: at u=0 without a
		// consistent snapshot it is mandatory, afterwards it is the
		// adaptive high-activity fallback armed by the previous cycle.
		cold := u == 0 && !warm
		sweep := cold || es.sweep
		// Load primary inputs and present state, scheduling the fanouts of
		// every word that differs from the persisted snapshot.
		for k, id := range c.Inputs {
			w := s.inject(id, logic.Broadcast(seq.At(u, k)))
			if s.special {
				w = s.applyTrans(id, w, false)
			}
			if sweep || w != vals[id] {
				vals[id] = w
				if !sweep {
					s.scheduleFanouts(id)
					if observe {
						es.changed = append(es.changed, id)
					}
				}
			}
		}
		for k, id := range c.DFFs {
			w := s.inject(id, state[k])
			if s.special {
				w = s.applyTrans(id, w, false)
			}
			if sweep || w != vals[id] {
				vals[id] = w
				if !sweep {
					s.scheduleFanouts(id)
					if observe {
						es.changed = append(es.changed, id)
					}
				}
			}
		}
		if sweep {
			// One flat levelized pass (sweepEval), the same fixed point a
			// drain would reach. The hysteresis activity count is measured
			// only on probe cycles — a cold start and every eighth sweep
			// thereafter.
			probe := cold || es.sweepAge&7 == 0
			es.sweepAge++
			sweeps++
			chg := s.sweepEval(probe)
			evals += int64(len(s.gateID))
			if probe {
				// Leave sweep mode once fewer than a quarter of the gates
				// actually changed this cycle.
				es.sweep = len(s.gateID) >= sweepMinGates && chg*4 >= len(s.gateID)
			}
		} else {
			if u == 0 {
				// The injection tables changed between groups: re-evaluate
				// the gates they touch, old and new.
				for _, id := range es.prevSites {
					s.schedule(id)
				}
				for _, id := range s.gateSites {
					s.schedule(id)
				}
			} else if s.special {
				// Transition gate sites must re-decide their force from this
				// cycle's nominal value even when no fanin changed (the
				// launch transition lives in the site's own history, not in
				// its inputs), so they are seeded every time unit.
				for _, id := range s.transGates {
					s.schedule(id)
				}
			}
			var cyc int
			for l := 1; l < cn.NumLevels; l++ {
				b := es.buckets[l]
				for i := 0; i < len(b); i++ {
					id := b[i]
					w := s.evalNode(id)
					cyc++
					if w != vals[id] {
						vals[id] = w
						s.scheduleFanouts(id)
						if observe {
							es.changed = append(es.changed, id)
						}
					}
				}
				es.buckets[l] = b[:0]
			}
			evals += int64(cyc)
			// Enter sweep mode once a drain touched more than half the
			// gates: past that point queue bookkeeping costs more than the
			// evaluations it avoids.
			es.sweep = len(s.gateID) >= sweepMinGates && cyc*2 > len(s.gateID)
		}
		if tg != nil && lo == 0 {
			s.traceActivity(tg)
		}
		// Detection, restricted to the primary outputs inside the union
		// fault cone (no other output word can carry a divergent slot).
		// Any output a fault can disturb is in the cone, so the lowest
		// diffing index here is the lowest in the dense kernel's full scan.
		for pi, id := range es.poList {
			d := vals[id].DiffMask() & activeMask
			for ; d != 0; d &= d - 1 {
				slot := trailingZeros(d)
				fi := lo + slot - 1
				out.Detected[fi] = true
				out.DetTime[fi] = u + opts.TimeOffset
				det++
				activeMask &^= 1 << uint(slot)
				if tg != nil {
					tg.Detect(fi, u+opts.TimeOffset, int(es.poIdx[pi]))
				}
			}
		}
		if opts.OutputHook != nil {
			po := s.poScratch[:0]
			for _, id := range c.Outputs {
				po = append(po, vals[id])
			}
			s.poScratch = po
			opts.OutputHook(lo, hi, u, po)
		}
		if observe {
			// At u=0 a node left untouched by the seeded propagation can
			// still carry a divergence inherited consistently from the
			// previous group's snapshot, so the first time unit scans every
			// node, and sweep cycles (whose flat pass maintains no changed
			// list) do the same; after a full scan an unchanged word has an
			// unchanged (already recorded) diff mask and the changed list
			// is exhaustive.
			if u == 0 || sweep {
				for id := range vals {
					d := vals[id].DiffMask()
					for ; d != 0; d &= d - 1 {
						slot := trailingZeros(d)
						if slot == 0 {
							continue
						}
						out.Lines[lo+slot-1].Set(id)
					}
				}
			} else {
				for _, id := range es.changed {
					d := vals[id].DiffMask()
					for ; d != 0; d &= d - 1 {
						slot := trailingZeros(d)
						if slot == 0 {
							continue
						}
						out.Lines[lo+slot-1].Set(int(id))
					}
				}
			}
		}
		if activeMask == 0 && !opts.ObserveLines && opts.OutputHook == nil && !opts.SaveStates {
			break // every fault in the group already detected
		}
		// Clock edge: next state, with DFF D-pin faults applied.
		for k, id := range c.DFFs {
			w := vals[c.Nodes[id].Fanins[0]]
			if idx := s.pinIdx[id]; idx >= 0 {
				for _, p := range s.pinForces[idx] {
					w = w.ForceMask(p.mask, p.bit)
				}
			}
			state[k] = w
		}
	}
	if opts.SaveStates {
		saved := make([]logic.W, len(state))
		copy(saved, state)
		out.FinalStates[lo/GroupSize] = saved
	}
	if units > 0 {
		// vals is now a consistent snapshot under this group's injection.
		es.prevSites = append(es.prevSites[:0], s.gateSites...)
		es.ready = true
	} else {
		// The injection tables were rebuilt but nothing was evaluated; the
		// snapshot still reflects the previous group.
		es.ready = false
	}
	tg.SetVectors(units)
	tb.gateEvals += evals
	tb.vectors += int64(units)
	tb.passes++
	tb.dropped += int64(det)
	tb.events += es.scheduled
	tb.skipped += int64(units)*int64(len(s.gateID)) - evals
	tb.cones += es.coneHits
	tb.sweepFB += sweeps
	return det
}
