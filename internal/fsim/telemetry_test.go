package fsim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestHotPathCounters checks that a simulation run advances the process-wide
// telemetry counters by the expected amounts.
func TestHotPathCounters(t *testing.T) {
	c, err := iscas.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	seq := sim.RandomSequence(randutil.New(7), c.NumInputs(), 64)

	before := telemetry.Counters()
	out := Run(c, seq, faults, Options{Init: logic.X, SaveStates: true})
	d := telemetry.Counters().Sub(before)

	groups := (len(faults) + GroupSize - 1) / GroupSize
	if got := d.Get(telemetry.CtrGroupPasses); got != int64(groups) {
		t.Errorf("group passes delta = %d, want %d", got, groups)
	}
	// SaveStates disables the early exit, so every group simulates the full
	// sequence and the vector count is exact.
	wantVecs := int64(groups * seq.Len())
	if got := d.Get(telemetry.CtrVectors); got != wantVecs {
		t.Errorf("vectors delta = %d, want %d", got, wantVecs)
	}
	if got := d.Get(telemetry.CtrGateEvals); got != wantVecs*int64(c.NumGates()) {
		t.Errorf("gate evals delta = %d, want %d", got, wantVecs*int64(c.NumGates()))
	}
	if got := d.Get(telemetry.CtrFaultsDropped); got != int64(out.NumDetected) {
		t.Errorf("faults dropped delta = %d, want %d detected", got, out.NumDetected)
	}
}

// BenchmarkRunGroupTelemetryOverhead pins the allocation count of the hot
// loop with telemetry compiled in but no sink installed: counters are plain
// atomic adds batched per group pass, so the simulator must not allocate any
// more than it did before instrumentation.
func BenchmarkRunGroupTelemetryOverhead(b *testing.B) {
	c, err := iscas.Load("s298")
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)[:GroupSize]
	seq := sim.RandomSequence(randutil.New(7), c.NumInputs(), 256)
	s := New(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(seq, faults, Options{Init: logic.Zero})
	}
}
