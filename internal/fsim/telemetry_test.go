package fsim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestHotPathCounters checks that a simulation run advances the process-wide
// telemetry counters by the expected amounts, for both kernels. The
// kernel-independent accounting invariant is gate_evals + gates_skipped ==
// vectors × gates: the dense kernel evaluates everything (skipped 0), the
// event kernel splits the same total between evaluated and skipped.
func TestHotPathCounters(t *testing.T) {
	c, err := iscas.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	seq := sim.RandomSequence(randutil.New(7), c.NumInputs(), 64)

	for _, kernel := range []Kernel{KernelDense, KernelEvent} {
		before := telemetry.Counters()
		out := Run(c, seq, faults, Options{Init: logic.X, SaveStates: true, Kernel: kernel})
		d := telemetry.Counters().Sub(before)

		groups := (len(faults) + GroupSize - 1) / GroupSize
		if got := d.Get(telemetry.CtrGroupPasses); got != int64(groups) {
			t.Errorf("%v: group passes delta = %d, want %d", kernel, got, groups)
		}
		// SaveStates disables the early exit, so every group simulates the
		// full sequence and the vector count is exact.
		wantVecs := int64(groups * seq.Len())
		if got := d.Get(telemetry.CtrVectors); got != wantVecs {
			t.Errorf("%v: vectors delta = %d, want %d", kernel, got, wantVecs)
		}
		evals := d.Get(telemetry.CtrGateEvals)
		skipped := d.Get(telemetry.CtrGatesSkipped)
		if evals+skipped != wantVecs*int64(c.NumGates()) {
			t.Errorf("%v: gate evals %d + skipped %d = %d, want %d",
				kernel, evals, skipped, evals+skipped, wantVecs*int64(c.NumGates()))
		}
		if got := d.Get(telemetry.CtrFaultsDropped); got != int64(out.NumDetected) {
			t.Errorf("%v: faults dropped delta = %d, want %d detected", kernel, got, out.NumDetected)
		}
		switch kernel {
		case KernelDense:
			for _, id := range []telemetry.CounterID{
				telemetry.CtrEventsScheduled, telemetry.CtrGatesSkipped, telemetry.CtrConeHits,
			} {
				if got := d.Get(id); got != 0 {
					t.Errorf("dense: %s delta = %d, want 0", id.Name(), got)
				}
			}
		case KernelEvent:
			if sched, hits := d.Get(telemetry.CtrEventsScheduled), d.Get(telemetry.CtrConeHits); hits > sched {
				t.Errorf("event: cone hits %d exceed events scheduled %d", hits, sched)
			}
		}
	}
}

// BenchmarkRunGroupTelemetryOverhead pins the allocation count of the hot
// loop with telemetry compiled in but no sink installed: counters are plain
// atomic adds batched per group pass, so the simulator must not allocate any
// more than it did before instrumentation.
func BenchmarkRunGroupTelemetryOverhead(b *testing.B) {
	c, err := iscas.Load("s298")
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)[:GroupSize]
	seq := sim.RandomSequence(randutil.New(7), c.NumInputs(), 256)
	s := New(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(seq, faults, Options{Init: logic.Zero})
	}
}
