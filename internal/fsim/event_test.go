package fsim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/rcg"
	"repro/internal/sim"
)

func TestKernelParseAndString(t *testing.T) {
	cases := []struct {
		in   string
		want Kernel
		ok   bool
	}{
		{"", KernelAuto, true},
		{"auto", KernelAuto, true},
		{"event", KernelEvent, true},
		{"EVENT", KernelEvent, true},
		{"dense", KernelDense, true},
		{"Dense", KernelDense, true},
		{"fast", KernelAuto, false},
	}
	for _, tc := range cases {
		k, err := ParseKernel(tc.in)
		if (err == nil) != tc.ok || k != tc.want {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v, ok=%v", tc.in, k, err, tc.want, tc.ok)
		}
	}
	for _, k := range []Kernel{KernelAuto, KernelEvent, KernelDense} {
		if r, err := ParseKernel(k.String()); err != nil || r != k {
			t.Errorf("ParseKernel(%v.String()) = %v, %v; want round trip", k, r, err)
		}
	}
}

func TestKernelResolve(t *testing.T) {
	t.Setenv("FSIM_KERNEL", "")
	if got := KernelAuto.Resolve(); got != KernelEvent {
		t.Errorf("Resolve with unset env = %v, want event", got)
	}
	t.Setenv("FSIM_KERNEL", "dense")
	if got := KernelAuto.Resolve(); got != KernelDense {
		t.Errorf("Resolve with FSIM_KERNEL=dense = %v, want dense", got)
	}
	if got := KernelEvent.Resolve(); got != KernelEvent {
		t.Errorf("explicit kernel must beat the environment: got %v", got)
	}
	t.Setenv("FSIM_KERNEL", "nonsense")
	if got := KernelAuto.Resolve(); got != KernelEvent {
		t.Errorf("Resolve with unparsable env = %v, want event default", got)
	}
}

// TestBuildConePure is the purity property the shared-cone design rests on:
// building the static cone data twice for the same circuit yields deeply
// equal results, and running simulations (sequential and parallel, both
// kernels) leaves the simulator's shared cone untouched.
func TestBuildConePure(t *testing.T) {
	for _, seed := range []uint64{3, 77, 512} {
		c := rcg.FromSeed(seed)
		a, b := BuildCone(c), BuildCone(c)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("rcg seed %d: two cone builds differ", seed)
		}
	}
	c := iscas.MustLoad("s298")
	s := New(c)
	snapshot := BuildCone(c)
	if !reflect.DeepEqual(s.cone, snapshot) {
		t.Fatalf("simulator cone differs from a fresh build")
	}
	rng := randutil.New(0xc0e)
	seq := sim.RandomSequence(rng, c.NumInputs(), 20)
	faults := fault.CollapsedUniverse(c)
	for _, k := range []Kernel{KernelEvent, KernelDense} {
		for _, workers := range []int{1, 4} {
			s.Run(seq, faults, Options{Init: logic.Zero, Workers: workers, Kernel: k,
				SaveStates: true, ObserveLines: true})
		}
	}
	if !reflect.DeepEqual(s.cone, snapshot) {
		t.Fatalf("running simulations mutated the shared cone")
	}
}

// TestEventKernelWorkerPool drives the event kernel through the worker pool
// with every outcome surface on, re-checking determinism against the dense
// sequential baseline. Its real value is under `make race`: the workers
// share one Cone read-only while each owns its worklists, and this is the
// test that proves it to the race detector.
func TestEventKernelWorkerPool(t *testing.T) {
	rng := randutil.New(0xeb1)
	for _, seed := range []uint64{5, 901, 4242} {
		c := rcg.FromSeed(seed)
		seq := sim.RandomSequence(rng, c.NumInputs(), 16)
		faults := fault.CollapsedUniverse(c)
		opts := Options{Init: logic.X, SaveStates: true, ObserveLines: true}
		opts.Kernel = KernelDense
		opts.Workers = 1
		want := Run(c, seq, faults, opts)
		s := New(c)
		opts.Kernel = KernelEvent
		for _, workers := range []int{1, 4, 8} {
			opts.Workers = workers
			// Two runs per pool size: the second exercises the reused,
			// warm per-worker event states.
			for pass := 0; pass < 2; pass++ {
				got := s.Run(seq, faults, opts)
				outcomesEqual(t, "event pool", want, got)
			}
		}
	}
}

// TestSkipFault pins the static-observability skip rule on a hand-built
// circuit with a dangling cone: u and w can never reach the primary output
// z, but u feeds the flip-flop's next state while w feeds nothing at all.
func TestSkipFault(t *testing.T) {
	c, err := bench.Parse("skipnet", strings.NewReader(`
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
u = OR(a, b)
d1 = DFF(u)
w = NOT(d1)
`))
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	id := func(name string) circuit.NodeID {
		n, ok := c.Lookup(name)
		if !ok {
			t.Fatalf("no node %q", name)
		}
		return n
	}
	stem := func(name string) fault.Fault { return fault.Fault{Node: id(name), Pin: -1} }
	cases := []struct {
		label string
		f     fault.Fault
		opts  Options
		want  bool
	}{
		{"detectable site never skips", stem("z"), Options{}, false},
		{"observation forces injection", stem("w"), Options{ObserveLines: true}, false},
		{"dangling cone skips", stem("w"), Options{}, true},
		{"dangling cone skips despite state saving", stem("w"), Options{SaveStates: true}, true},
		{"state-feeding site skips without state saving", stem("u"), Options{}, true},
		{"state-feeding site injects when states are saved", stem("u"), Options{SaveStates: true}, false},
		{"DFF pin fault injects when states are saved", fault.Fault{Node: id("d1"), Pin: 0}, Options{SaveStates: true}, false},
		{"DFF pin fault skips without state saving", fault.Fault{Node: id("d1"), Pin: 0}, Options{}, true},
	}
	for _, tc := range cases {
		if got := s.skipFault(tc.f, tc.opts); got != tc.want {
			t.Errorf("%s: skipFault = %v, want %v", tc.label, got, tc.want)
		}
	}
}
