// Package fsim implements a bit-parallel three-valued sequential fault
// simulator. Faults are simulated in groups: slot 0 of every 64-bit dual-rail
// word carries the fault-free machine and slots 1..63 carry up to 63 faulty
// machines, so one pass over the gate list advances 64 machines at once.
//
// A fault is detected at time unit u if some primary output has a binary
// fault-free value and the opposite binary value in the faulty machine
// (logic.W.DiffMask). Optionally the simulator records, for every fault, the
// set of *internal* nodes at which the faulty machine ever differs binarily
// from the fault-free machine; that is the observability information used by
// the observation-point insertion experiment (Section 5 of the paper).
package fsim

import (
	"math/bits"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// GroupSize is the number of faulty machines per simulation pass.
const GroupSize = 63

// Options control a fault-simulation run.
type Options struct {
	// Init is the initial value of every flip-flop (logic.Zero for circuits
	// with a global reset, logic.X for an unknown power-up state).
	Init logic.V
	// ObserveLines records, per fault, the set of nodes at which the faulty
	// machine differs binarily from the fault-free machine at some time unit.
	ObserveLines bool
	// AbortAfterFirstGroupIfNone stops after the first fault group if that
	// group produced no detection. Combined with an ordering that puts a
	// target fault and a random sample first, this is the paper's Section 4.2
	// simulation-effort reduction.
	AbortAfterFirstGroupIfNone bool
	// StopTime, if positive, truncates the sequence after this many time
	// units.
	StopTime int
	// OutputHook, if non-nil, is invoked once per simulated time unit per
	// fault group with the group's fault range [lo,hi) and the dual-rail
	// primary-output words (slot 0 = fault-free machine, slot k = machine of
	// faults[lo+k-1]). Response compactors (package misr) plug in here.
	// Setting a hook disables the all-detected early exit so every group
	// sees the full sequence.
	OutputHook func(lo, hi, u int, po []logic.W)
	// InitialStates, if non-nil, provides the starting flip-flop state of
	// every fault group (index lo/GroupSize), as produced by a previous run
	// with SaveStates over the *same fault list* (grouping must match). It
	// overrides Init and lets a caller continue a simulation where an
	// earlier sequence left off, paying only for the new vectors.
	InitialStates [][]logic.W
	// SaveStates records each group's final flip-flop state in
	// Outcome.FinalStates (disabling the all-detected early exit so the
	// state is exact).
	SaveStates bool
}

// Outcome reports the result of a run over a fault list.
type Outcome struct {
	// Detected[i] reports whether faults[i] was detected.
	Detected []bool
	// DetTime[i] is the first time unit at which faults[i] was detected
	// (-1 if undetected).
	DetTime []int
	// NumDetected is the number of detected faults.
	NumDetected int
	// Lines[i] is a bitset over node ids (only when ObserveLines was set):
	// bit n set means the faulty machine for faults[i] differed binarily from
	// the fault-free machine at node n at some time unit.
	Lines []Bitset
	// FinalStates[g] is group g's final flip-flop state (only when
	// SaveStates was set).
	FinalStates [][]logic.W
	// Aborted reports that AbortAfterFirstGroupIfNone fired.
	Aborted bool
}

// Bitset is a fixed-size bitset over node ids.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Simulator runs fault simulations over one circuit. It is cheap to create;
// scratch buffers are reused across runs.
type Simulator struct {
	c    *circuit.Circuit
	vals []logic.W
	next []logic.W

	// Flattened netlist (hot-loop friendly): for gate k in evaluation order,
	// gateID[k] is its node id, gateType[k] its type, and its fanins are
	// faninList[faninStart[k]:faninStart[k+1]].
	gateID     []circuit.NodeID
	gateType   []circuit.GateType
	faninStart []int32
	faninList  []circuit.NodeID

	// per-group fault injection tables, rebuilt for each group
	stemMask0 []uint64 // per node: slots forced to 0 at the node output
	stemMask1 []uint64
	// pinIdx[node] is -1 when the node has no pin faults in this group,
	// otherwise an index into pinForces. A flat slice keeps the per-gate
	// lookup in the hot loop branch-predictable and map-free.
	pinIdx    []int32
	pinNodes  []circuit.NodeID // nodes with pin faults (for cheap clearing)
	pinForces [][]pinForce
	poScratch []logic.W
}

type pinForce struct {
	pin  int
	mask uint64
	bit  bool
}

// New returns a simulator for c.
func New(c *circuit.Circuit) *Simulator {
	s := &Simulator{
		c:         c,
		vals:      make([]logic.W, len(c.Nodes)),
		next:      make([]logic.W, len(c.DFFs)),
		stemMask0: make([]uint64, len(c.Nodes)),
		stemMask1: make([]uint64, len(c.Nodes)),
		pinIdx:    make([]int32, len(c.Nodes)),
	}
	for i := range s.pinIdx {
		s.pinIdx[i] = -1
	}
	s.gateID = make([]circuit.NodeID, len(c.Order))
	s.gateType = make([]circuit.GateType, len(c.Order))
	s.faninStart = make([]int32, len(c.Order)+1)
	for k, id := range c.Order {
		n := &c.Nodes[id]
		s.gateID[k] = id
		s.gateType[k] = n.Type
		s.faninStart[k+1] = s.faninStart[k] + int32(len(n.Fanins))
		s.faninList = append(s.faninList, n.Fanins...)
	}
	return s
}

// Run fault-simulates seq against faults and returns the outcome.
func Run(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, opts Options) *Outcome {
	return New(c).Run(seq, faults, opts)
}

// Run fault-simulates seq against faults and returns the outcome.
func (s *Simulator) Run(seq *sim.Sequence, faults []fault.Fault, opts Options) *Outcome {
	out := &Outcome{
		Detected: make([]bool, len(faults)),
		DetTime:  make([]int, len(faults)),
	}
	for i := range out.DetTime {
		out.DetTime[i] = -1
	}
	if opts.ObserveLines {
		out.Lines = make([]Bitset, len(faults))
		for i := range out.Lines {
			out.Lines[i] = NewBitset(len(s.c.Nodes))
		}
	}
	if opts.SaveStates {
		out.FinalStates = make([][]logic.W, (len(faults)+GroupSize-1)/GroupSize)
	}
	stop := seq.Len()
	if opts.StopTime > 0 && opts.StopTime < stop {
		stop = opts.StopTime
	}
	for lo := 0; lo < len(faults); lo += GroupSize {
		hi := lo + GroupSize
		if hi > len(faults) {
			hi = len(faults)
		}
		s.runGroup(seq, faults, lo, hi, stop, opts, out)
		if opts.AbortAfterFirstGroupIfNone && lo == 0 && out.NumDetected == 0 {
			out.Aborted = true
			return out
		}
	}
	return out
}

// runGroup simulates faults[lo:hi] (at most GroupSize of them) in slots
// 1..hi-lo alongside the fault-free machine in slot 0.
func (s *Simulator) runGroup(seq *sim.Sequence, faults []fault.Fault, lo, hi, stop int, opts Options, out *Outcome) {
	c := s.c
	// Build injection tables. Stem masks and pin indices are cleared only at
	// the nodes touched by the previous group.
	for i := range s.stemMask0 {
		s.stemMask0[i] = 0
		s.stemMask1[i] = 0
	}
	for _, n := range s.pinNodes {
		s.pinIdx[n] = -1
	}
	s.pinNodes = s.pinNodes[:0]
	s.pinForces = s.pinForces[:0]
	for k := lo; k < hi; k++ {
		f := faults[k]
		slot := uint(k - lo + 1)
		if f.Pin < 0 {
			if f.Stuck == 0 {
				s.stemMask0[f.Node] |= 1 << slot
			} else {
				s.stemMask1[f.Node] |= 1 << slot
			}
		} else {
			idx := s.pinIdx[f.Node]
			if idx < 0 {
				idx = int32(len(s.pinForces))
				s.pinIdx[f.Node] = idx
				s.pinForces = append(s.pinForces, nil)
				s.pinNodes = append(s.pinNodes, f.Node)
			}
			s.pinForces[idx] = append(s.pinForces[idx],
				pinForce{pin: f.Pin, mask: 1 << slot, bit: f.Stuck == 1})
		}
	}

	// Telemetry is accumulated locally and flushed with four atomic adds at
	// the end of the pass, keeping the per-gate loop untouched.
	units := 0
	detBefore := out.NumDetected

	state := s.next
	if opts.InitialStates != nil {
		copy(state, opts.InitialStates[lo/GroupSize])
	} else {
		for i := range state {
			state[i] = logic.Broadcast(opts.Init)
		}
	}
	vals := s.vals

	activeMask := groupMask(hi - lo) // slots still undetected
	var fan [8]logic.W

	for u := 0; u < stop; u++ {
		units++
		for k, id := range c.Inputs {
			vals[id] = s.inject(id, logic.Broadcast(seq.At(u, k)))
		}
		for k, id := range c.DFFs {
			vals[id] = s.inject(id, state[k])
		}
		for k := range s.gateID {
			id := s.gateID[k]
			gt := s.gateType[k]
			lo, hiF := s.faninStart[k], s.faninStart[k+1]
			var w logic.W
			// Fast paths for the dominant fault-free 1- and 2-input cases;
			// the general path gathers into the scratch buffer.
			if s.pinIdx[id] < 0 {
				switch hiF - lo {
				case 1:
					w = eval1(gt, vals[s.faninList[lo]])
				case 2:
					w = eval2(gt, vals[s.faninList[lo]], vals[s.faninList[lo+1]])
				default:
					in := fan[:0]
					for _, f := range s.faninList[lo:hiF] {
						in = append(in, vals[f])
					}
					w = evalW(gt, in)
				}
			} else {
				in := fan[:0]
				for _, f := range s.faninList[lo:hiF] {
					in = append(in, vals[f])
				}
				for _, p := range s.pinForces[s.pinIdx[id]] {
					in[p.pin] = in[p.pin].ForceMask(p.mask, p.bit)
				}
				w = evalW(gt, in)
			}
			vals[id] = s.inject(id, w)
		}
		// Detection at primary outputs.
		for _, id := range c.Outputs {
			d := vals[id].DiffMask() & activeMask
			for ; d != 0; d &= d - 1 {
				slot := trailingZeros(d)
				fi := lo + slot - 1
				out.Detected[fi] = true
				out.DetTime[fi] = u
				out.NumDetected++
				activeMask &^= 1 << uint(slot)
			}
		}
		if opts.OutputHook != nil {
			po := s.poScratch[:0]
			for _, id := range c.Outputs {
				po = append(po, vals[id])
			}
			s.poScratch = po
			opts.OutputHook(lo, hi, u, po)
		}
		// Observability recording on every node.
		if opts.ObserveLines {
			for id := range vals {
				d := vals[id].DiffMask()
				for ; d != 0; d &= d - 1 {
					slot := trailingZeros(d)
					if slot == 0 {
						continue
					}
					out.Lines[lo+slot-1].Set(id)
				}
			}
		}
		if activeMask == 0 && !opts.ObserveLines && opts.OutputHook == nil && !opts.SaveStates {
			break // every fault in the group already detected
		}
		// Clock edge: next state, with DFF D-pin faults applied.
		for k, id := range c.DFFs {
			w := vals[c.Nodes[id].Fanins[0]]
			if idx := s.pinIdx[id]; idx >= 0 {
				for _, p := range s.pinForces[idx] {
					w = w.ForceMask(p.mask, p.bit)
				}
			}
			state[k] = w
		}
	}
	if opts.SaveStates {
		saved := make([]logic.W, len(state))
		copy(saved, state)
		out.FinalStates[lo/GroupSize] = saved
	}
	telemetry.Add(telemetry.CtrGateEvals, int64(units)*int64(len(s.gateID)))
	telemetry.Add(telemetry.CtrVectors, int64(units))
	telemetry.Add(telemetry.CtrGroupPasses, 1)
	telemetry.Add(telemetry.CtrFaultsDropped, int64(out.NumDetected-detBefore))
}

// inject applies the group's stem faults at node id.
func (s *Simulator) inject(id circuit.NodeID, w logic.W) logic.W {
	if m := s.stemMask0[id]; m != 0 {
		w = w.ForceMask(m, false)
	}
	if m := s.stemMask1[id]; m != 0 {
		w = w.ForceMask(m, true)
	}
	return w
}

func groupMask(n int) uint64 {
	// slots 1..n
	if n >= 63 {
		return ^uint64(0) &^ 1
	}
	return ((uint64(1) << uint(n+1)) - 1) &^ 1
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// eval1 evaluates a 1-input gate.
func eval1(t circuit.GateType, a logic.W) logic.W {
	switch t {
	case circuit.Not, circuit.Nand, circuit.Nor, circuit.Xnor:
		return a.Not()
	default:
		return a
	}
}

// eval2 evaluates a 2-input gate without touching the scratch buffer.
func eval2(t circuit.GateType, a, b logic.W) logic.W {
	switch t {
	case circuit.And:
		return a.And(b)
	case circuit.Nand:
		return a.And(b).Not()
	case circuit.Or:
		return a.Or(b)
	case circuit.Nor:
		return a.Or(b).Not()
	case circuit.Xor:
		return a.Xor(b)
	case circuit.Xnor:
		return a.Xor(b).Not()
	default:
		panic("fsim: eval2 on non-gate type")
	}
}

// evalW evaluates a gate over dual-rail words.
func evalW(t circuit.GateType, in []logic.W) logic.W {
	switch t {
	case circuit.Buf:
		return in[0]
	case circuit.Not:
		return in[0].Not()
	case circuit.And, circuit.Nand:
		v := in[0]
		for _, x := range in[1:] {
			v = v.And(x)
		}
		if t == circuit.Nand {
			v = v.Not()
		}
		return v
	case circuit.Or, circuit.Nor:
		v := in[0]
		for _, x := range in[1:] {
			v = v.Or(x)
		}
		if t == circuit.Nor {
			v = v.Not()
		}
		return v
	case circuit.Xor, circuit.Xnor:
		v := in[0]
		for _, x := range in[1:] {
			v = v.Xor(x)
		}
		if t == circuit.Xnor {
			v = v.Not()
		}
		return v
	default:
		panic("fsim: evalW on non-gate type")
	}
}
