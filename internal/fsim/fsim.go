// Package fsim implements a bit-parallel three-valued sequential fault
// simulator. Faults are simulated in groups: slot 0 of every 64-bit dual-rail
// word carries the fault-free machine and slots 1..63 carry up to 63 faulty
// machines, so one pass over the gate list advances 64 machines at once.
//
// A fault is detected at time unit u if some primary output has a binary
// fault-free value and the opposite binary value in the faulty machine
// (logic.W.DiffMask). Optionally the simulator records, for every fault, the
// set of *internal* nodes at which the faulty machine ever differs binarily
// from the fault-free machine; that is the observability information used by
// the observation-point insertion experiment (Section 5 of the paper).
//
// Fault groups are fully independent (each pass carries its own fault-free
// machine in slot 0), so Options.Workers > 1 shards them over a worker pool
// with one scratch simulator per worker and merges the per-group results
// deterministically: the outcome is bit-identical to a sequential run.
package fsim

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/obsv"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// GroupSize is the number of faulty machines per simulation pass.
const GroupSize = 63

// Options control a fault-simulation run.
type Options struct {
	// Init is the initial value of every flip-flop (logic.Zero for circuits
	// with a global reset, logic.X for an unknown power-up state).
	Init logic.V
	// ObserveLines records, per fault, the set of nodes at which the faulty
	// machine differs binarily from the fault-free machine at some time unit.
	ObserveLines bool
	// AbortAfterFirstGroupIfNone stops after the first fault group if that
	// group produced no detection. Combined with an ordering that puts a
	// target fault and a random sample first, this is the paper's Section 4.2
	// simulation-effort reduction.
	AbortAfterFirstGroupIfNone bool
	// StopTime, if positive, truncates the sequence after this many time
	// units.
	StopTime int
	// OutputHook, if non-nil, is invoked once per simulated time unit per
	// fault group with the group's fault range [lo,hi) and the dual-rail
	// primary-output words (slot 0 = fault-free machine, slot k = machine of
	// faults[lo+k-1]). Response compactors (package misr) plug in here.
	// Setting a hook disables the all-detected early exit so every group
	// sees the full sequence.
	//
	// Ordering contract: a hook is always invoked sequentially, in strict
	// group order (group 0's whole sequence first, then group 1's, ...), on
	// the calling goroutine. Setting a hook therefore forces sequential
	// execution: Workers is ignored.
	OutputHook func(lo, hi, u int, po []logic.W)
	// InitialStates, if non-nil, provides the starting flip-flop state of
	// every fault group (index lo/GroupSize), as produced by a previous run
	// with SaveStates over the *same fault list* (grouping must match). It
	// overrides Init and lets a caller continue a simulation where an
	// earlier sequence left off, paying only for the new vectors. Run
	// panics if the group count does not match the fault list or a group's
	// state width does not match the circuit's flip-flop count: a silent
	// mismatch would corrupt the continuation run.
	//
	// Continuation is exact for stuck-at and bridge faults, whose machines
	// are fully described by their flip-flop states. A transition fault's
	// launch history (the site's previous-cycle nominal value) is per-run
	// state that InitialStates does not carry: the continued run restarts
	// it at X, so a launch transition straddling the split point is lost
	// and the outcome may differ from the unsplit run around the boundary.
	InitialStates [][]logic.W
	// SaveStates records each group's final flip-flop state in
	// Outcome.FinalStates (disabling the all-detected early exit so the
	// state is exact).
	SaveStates bool
	// TimeOffset is added to every recorded detection time (undetected
	// faults stay at -1). A caller continuing a run via InitialStates passes
	// the length of the already-applied prefix so Outcome.DetTime stays
	// directly comparable with the detection times u_det(f) of the original,
	// unsplit sequence. StopTime remains relative to the new sequence.
	TimeOffset int
	// Workers is the number of goroutines the independent fault groups are
	// sharded over. 0 or 1 simulates sequentially on the calling goroutine;
	// n > 1 uses min(n, number of groups) workers, each with its own scratch
	// simulator. Results are merged into pre-sized per-group slices, so the
	// outcome is bit-identical to a sequential run regardless of scheduling.
	// OutputHook forces sequential execution (see its ordering contract);
	// AbortAfterFirstGroupIfNone always simulates group 0 alone, before any
	// fan-out, to preserve the Section 4.2 effort reduction.
	Workers int
	// Kernel selects the gate-evaluation strategy. The zero value
	// (KernelAuto) honors the FSIM_KERNEL environment variable and defaults
	// to the event-driven kernel; all kernels produce bit-identical
	// outcomes (the differential suite in internal/difftest enforces this),
	// so the choice only affects speed and telemetry.
	Kernel Kernel
	// SlabLanes is the number of fault groups the slab kernel batches into
	// one multi-group pass (W in the slab layout: W×64 machines per gate
	// visit). 0 picks W adaptively from the netlist size against an L2
	// cache budget; any positive value is used as-is (clamped to the number
	// of groups actually available per batch). Ignored by the dense and
	// event kernels. Like Workers, it never changes the outcome — only how
	// the identical result is computed.
	SlabLanes int
	// ShardProcs, when > 1, shards the fault groups over that many worker
	// subprocesses instead of in-process goroutines (see internal/shard,
	// which installs the runner; Workers is then ignored). Like Workers it
	// never changes the outcome: the per-group merge is bit-identical by
	// construction for any process count, and the deterministic work
	// counters fold back to the exact in-process totals. Runs the shard
	// path cannot serve bit-identically fall back to the in-process pool:
	// OutputHook, Trace, ObserveLines, AbortAfterFirstGroupIfNone (the
	// Section 4.2 screen aborts most runs after one group — the worst case
	// for process fan-out), single-group fault lists, and any run when no
	// shard runner is linked in.
	ShardProcs int
	// Ctx, if non-nil, cancels the run at fault-group granularity: the
	// worker pool (and the sequential loop) checks it before claiming each
	// group, so a cancelled run stops scheduling new passes and returns its
	// workers promptly instead of burning through the remaining groups. A
	// group already in flight finishes its pass — results stay well-formed —
	// and the outcome is marked Cancelled; the skipped groups are counted on
	// the fsim.groups_cancelled telemetry counter. A nil Ctx (the default)
	// never cancels and costs nothing.
	Ctx context.Context
	// Trace, if non-nil, receives the run's detection-provenance stream
	// (see internal/obsv): one event per first detection carrying the fault
	// index, time unit, detecting primary output, fault group, worker and
	// kernel, plus group 0's per-cycle fault-free activity curve and each
	// group's simulated vector count. Events are buffered per group and
	// merged in group order, so the canonical stream is bit-identical for
	// any Workers count and either kernel. A nil Trace costs one nil check
	// per group pass and one per detection — nothing on the per-gate paths.
	Trace *obsv.Trace
}

// Outcome reports the result of a run over a fault list.
type Outcome struct {
	// Detected[i] reports whether faults[i] was detected.
	Detected []bool
	// DetTime[i] is the first time unit at which faults[i] was detected
	// (-1 if undetected).
	DetTime []int
	// NumDetected is the number of detected faults.
	NumDetected int
	// Lines[i] is a bitset over node ids (only when ObserveLines was set):
	// bit n set means the faulty machine for faults[i] differed binarily from
	// the fault-free machine at node n at some time unit.
	Lines []Bitset
	// FinalStates[g] is group g's final flip-flop state (only when
	// SaveStates was set).
	FinalStates [][]logic.W
	// Aborted reports that AbortAfterFirstGroupIfNone fired: the first
	// group detected nothing and at least one further group was skipped. A
	// run whose only group was fully simulated is never marked aborted.
	Aborted bool
	// Cancelled reports that Options.Ctx was cancelled before every fault
	// group had been simulated: Detected/DetTime cover only the groups that
	// ran, so the outcome is a partial result the caller should discard
	// (pipeline stages surface ctx.Err() instead of using it).
	Cancelled bool
}

// Bitset is a fixed-size bitset over node ids.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Simulator runs fault simulations over one circuit. It is cheap to create;
// scratch buffers are reused across runs.
//
// A Simulator is NOT safe for concurrent use by multiple goroutines: every
// run scribbles over the shared scratch buffers. To parallelize, set
// Options.Workers instead — Run then shards the independent fault groups
// over an internal pool of per-worker simulators (reused across runs) and
// merges their results deterministically.
type Simulator struct {
	c    *circuit.Circuit
	vals []logic.W
	next []logic.W

	// pool holds the extra per-worker simulators of parallel runs, grown on
	// demand and reused across runs. They share the receiver's immutable
	// flattened netlist and own only scratch state.
	pool []*Simulator

	// Flattened netlist (hot-loop friendly): for gate k in evaluation order,
	// gateID[k] is its node id, gateType[k] its type, and its fanins are
	// faninList[faninStart[k]:faninStart[k+1]].
	gateID     []circuit.NodeID
	gateType   []circuit.GateType
	faninStart []int32
	faninList  []circuit.NodeID

	// per-group fault injection tables, rebuilt for each group
	stemMask0 []uint64 // per node: slots forced to 0 at the node output
	stemMask1 []uint64
	// pinIdx[node] is -1 when the node has no pin faults in this group,
	// otherwise an index into pinForces. A flat slice keeps the per-gate
	// lookup in the hot loop branch-predictable and map-free.
	pinIdx    []int32
	pinNodes  []circuit.NodeID // nodes with pin faults (for cheap clearing)
	pinForces [][]pinForce
	poScratch []logic.W

	// per-group transition/bridge fault sites (see model.go). special is set
	// when the current group carries any transition or bridge fault, so
	// stuck-at-only groups skip every model hook on the hot paths; hasBridge
	// additionally arms the dense kernel's two-pass cycle.
	transIdx    []int32
	transNodes  []circuit.NodeID
	transSites  [][]transSite
	transGates  []circuit.NodeID // transition sites that are gates (event-kernel per-cycle seeds)
	bridgeIdx   []int32
	bridgeNodes []circuit.NodeID
	bridgeSites [][]bridgeSite
	special     bool
	hasBridge   bool

	// cone is the immutable static data of the event kernel, built once in
	// New and shared (like the flattened netlist) by every pooled worker.
	cone *Cone
	// ev is the event kernel's mutable per-simulator state (worklists,
	// cone marks, value-snapshot bookkeeping), allocated on first use.
	ev *eventState
	// slab is the slab kernel's scratch arena (multi-group value/state/
	// injection slabs, per-lane bookkeeping), allocated on first use and
	// reused across batches and runs. The slab kernel never touches vals or
	// the per-group injection tables above, so an event-kernel value
	// snapshot survives interleaved slab runs.
	slab *slabState
	// event-kernel injection bookkeeping: the stem-fault nodes of the
	// current group (for targeted clearing), the gate fault sites (worklist
	// seeds) and every injected site (union-cone roots). stemFlag[id] != 0
	// mirrors "stemMask0[id]|stemMask1[id] != 0" as a single byte so the
	// event kernel's gate loops touch one dense byte array instead of two
	// word arrays for the (overwhelmingly common) uninjected nodes; it is
	// maintained only by buildInjectionEvent and read only by event-kernel
	// code, so the dense kernel's own injection build cannot desynchronize
	// it (an event run after a dense run starts from ready=false and
	// rebuilds the flags from scratch).
	stemNodes []circuit.NodeID
	gateSites []circuit.NodeID
	coneSites []circuit.NodeID
	stemFlag  []uint8
	// siteGatePos is the sorted, deduplicated list of evaluation-order
	// positions of the injected gates (gateSites). Sweep cycles evaluate
	// the plain segments between those positions with no injection checks
	// at all — only the ≤63 boundary gates take the general path.
	siteGatePos []int32

	// worker is this simulator's index in a parallel run's worker pool
	// (0 for the receiver). It is a trace annotation only and never part
	// of any canonical output.
	worker int
	// Activity-trace scratch (see traceActivity): the packed fault-free
	// slot-0 bits of every node as of the previous traced cycle. actValid
	// is reset at the start of each traced group-0 pass so the first cycle
	// only establishes the baseline.
	actZ, actO []uint64
	actValid   bool
}

type pinForce struct {
	pin  int
	mask uint64
	bit  bool
}

// New returns a simulator for c.
func New(c *circuit.Circuit) *Simulator {
	s := newScratch(c)
	s.gateID = make([]circuit.NodeID, len(c.Order))
	s.gateType = make([]circuit.GateType, len(c.Order))
	s.faninStart = make([]int32, len(c.Order)+1)
	for k, id := range c.Order {
		n := &c.Nodes[id]
		s.gateID[k] = id
		s.gateType[k] = n.Type
		s.faninStart[k+1] = s.faninStart[k] + int32(len(n.Fanins))
		s.faninList = append(s.faninList, n.Fanins...)
	}
	s.cone = BuildCone(c)
	return s
}

// newScratch allocates the mutable per-run state of a simulator for c.
func newScratch(c *circuit.Circuit) *Simulator {
	s := &Simulator{
		c:         c,
		vals:      make([]logic.W, len(c.Nodes)),
		next:      make([]logic.W, len(c.DFFs)),
		stemMask0: make([]uint64, len(c.Nodes)),
		stemMask1: make([]uint64, len(c.Nodes)),
		stemFlag:  make([]uint8, len(c.Nodes)),
		pinIdx:    make([]int32, len(c.Nodes)),
		transIdx:  make([]int32, len(c.Nodes)),
		bridgeIdx: make([]int32, len(c.Nodes)),
	}
	for i := range s.pinIdx {
		s.pinIdx[i] = -1
		s.transIdx[i] = -1
		s.bridgeIdx[i] = -1
	}
	return s
}

// workerSims returns n simulators over the receiver's circuit: the receiver
// itself plus n-1 pooled workers sharing its immutable flattened netlist.
// The pool grows on demand and is reused across runs.
func (s *Simulator) workerSims(n int) []*Simulator {
	for len(s.pool) < n-1 {
		w := newScratch(s.c)
		w.worker = len(s.pool) + 1
		w.gateID = s.gateID
		w.gateType = s.gateType
		w.faninStart = s.faninStart
		w.faninList = s.faninList
		w.cone = s.cone
		s.pool = append(s.pool, w)
	}
	sims := make([]*Simulator, 0, n)
	sims = append(sims, s)
	return append(sims, s.pool[:n-1]...)
}

// Run fault-simulates seq against faults and returns the outcome.
func Run(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, opts Options) *Outcome {
	return New(c).Run(seq, faults, opts)
}

// Run fault-simulates seq against faults and returns the outcome.
//
// With Options.Workers > 1 the independent fault groups are sharded over a
// worker pool; each group writes a disjoint slice region of the outcome, so
// the result is bit-identical to the sequential run regardless of scheduling.
func (s *Simulator) Run(seq *sim.Sequence, faults []fault.Fault, opts Options) *Outcome {
	opts.Kernel = opts.Kernel.Resolve() // resolve env/default exactly once
	if opts.Kernel == KernelSlab && hasModelFaults(faults) {
		// The slab arena's injection layout is stuck-at only; a run carrying
		// transition or bridge faults resolves to the dense kernel (same
		// outcome by the kernel contract, different speed).
		opts.Kernel = KernelDense
	}
	numGroups := (len(faults) + GroupSize - 1) / GroupSize
	opts.Trace.Begin(numGroups, opts.Kernel.String())
	if opts.InitialStates != nil {
		// A silently mis-shaped continuation state would corrupt the run
		// (short copies leave stale flip-flop words in place); fail loudly.
		if len(opts.InitialStates) != numGroups {
			panic(fmt.Sprintf("fsim: InitialStates has %d group states for %d fault groups (fault list and grouping must match the saving run)",
				len(opts.InitialStates), numGroups))
		}
		for g, st := range opts.InitialStates {
			if len(st) != len(s.c.DFFs) {
				panic(fmt.Sprintf("fsim: InitialStates[%d] has %d state words for a circuit with %d flip-flops",
					g, len(st), len(s.c.DFFs)))
			}
		}
	}
	out := &Outcome{
		Detected: make([]bool, len(faults)),
		DetTime:  make([]int, len(faults)),
	}
	for i := range out.DetTime {
		out.DetTime[i] = -1
	}
	if opts.ObserveLines {
		out.Lines = make([]Bitset, len(faults))
		for i := range out.Lines {
			out.Lines[i] = NewBitset(len(s.c.Nodes))
		}
	}
	if opts.SaveStates {
		out.FinalStates = make([][]logic.W, numGroups)
	}
	stop := seq.Len()
	if opts.StopTime > 0 && opts.StopTime < stop {
		stop = opts.StopTime
	}
	if numGroups == 0 {
		return out
	}

	workers := opts.Workers
	if workers < 1 || opts.OutputHook != nil {
		workers = 1 // the hook's ordering contract requires sequential runs
	}

	first := 0
	if ctxDone(opts.Ctx) {
		out.Cancelled = true
		telemetry.Add(telemetry.CtrGroupsCancelled, int64(numGroups))
		return out
	}
	if opts.ShardProcs > 1 && shardRunner != nil && numGroups > 1 &&
		opts.OutputHook == nil && opts.Trace == nil && !opts.ObserveLines &&
		!opts.AbortAfterFirstGroupIfNone {
		// Multi-process fan-out (internal/shard). A nil error means the
		// coordinator completed (or cancelled) the run with the exact
		// in-process result; an error means nothing was dispatched and the
		// pristine outcome falls through to the in-process paths below.
		if err := shardRunner(s.c, seq, faults, stop, opts, out); err == nil {
			return out
		}
	}
	if opts.Kernel == KernelSlab {
		// The slab kernel shards batches-of-W instead of single groups; its
		// dispatch (including the abort-first-group path) lives in runSlab.
		s.runSlab(seq, faults, numGroups, stop, opts, out)
		return out
	}
	if opts.AbortAfterFirstGroupIfNone {
		// The Section 4.2 effort reduction: the first group (target fault
		// plus sample) always runs alone, before any fan-out.
		var tb counterBatch
		out.NumDetected = s.runGroup(seq, faults, 0, min(GroupSize, len(faults)), stop, opts, out, &tb)
		tb.flush()
		if out.NumDetected == 0 {
			// Only a run that actually skipped groups counts as aborted;
			// a fully simulated single-group run is a complete result.
			out.Aborted = numGroups > 1
			return out
		}
		first = 1
	}
	if rem := numGroups - first; workers > rem {
		workers = rem
	}

	if workers <= 1 {
		var tb counterBatch
		for g := first; g < numGroups; g++ {
			if ctxDone(opts.Ctx) {
				out.Cancelled = true
				tb.cancelled += int64(numGroups - g)
				break
			}
			lo := g * GroupSize
			out.NumDetected += s.runGroup(seq, faults, lo, min(lo+GroupSize, len(faults)), stop, opts, out, &tb)
		}
		tb.flush()
		return out
	}

	// Parallel fan-out: workers pull group indices from an atomic cursor and
	// write disjoint regions of the outcome; per-group detection counts are
	// merged in group order afterwards, so the sum (and everything else) is
	// independent of scheduling.
	detected := make([]int, numGroups)
	var cursor atomic.Int64
	cursor.Store(int64(first))
	var wg sync.WaitGroup
	for _, ws := range s.workerSims(workers) {
		wg.Add(1)
		go func(ws *Simulator) {
			defer wg.Done()
			var tb counterBatch
			defer tb.flush()
			for {
				// Checked before claiming, so a cancelled run stops
				// scheduling passes and this worker goroutine exits (the
				// "return workers to the pool" half of job cancellation).
				if ctxDone(opts.Ctx) {
					return
				}
				g := int(cursor.Add(1)) - 1
				if g >= numGroups {
					return
				}
				lo := g * GroupSize
				detected[g] = ws.runGroup(seq, faults, lo, min(lo+GroupSize, len(faults)), stop, opts, out, &tb)
			}
		}(ws)
	}
	wg.Wait()
	for _, n := range detected[first:] {
		out.NumDetected += n
	}
	// cursor counts claimed groups; every claimed group ran to completion,
	// so anything short of numGroups was skipped due to cancellation.
	if ctxDone(opts.Ctx) {
		if claimed := int(cursor.Load()); claimed < numGroups {
			out.Cancelled = true
			telemetry.Add(telemetry.CtrGroupsCancelled, int64(numGroups-claimed))
		}
	}
	return out
}

// ShardRunner is the multi-process dispatch hook: it simulates every fault
// group of the run by sharding contiguous group ranges over worker
// subprocesses, writing the same disjoint per-group regions of out the
// in-process pool would (Detected/DetTime per fault, FinalStates and
// NumDetected per group), with stop already resolved against StopTime. It
// must either complete the run bit-identically (nil error; cancellation via
// opts.Ctx included, with the same groups_cancelled accounting) or fail
// before writing anything, so the caller can fall back in-process.
type ShardRunner func(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, stop int, opts Options, out *Outcome) error

// shardRunner is installed by internal/shard's init; fsim cannot import it
// (shard builds on fsim), so linking the shard package into a binary is
// what enables Options.ShardProcs.
var shardRunner ShardRunner

// RegisterShardRunner installs the multi-process dispatch hook.
func RegisterShardRunner(r ShardRunner) { shardRunner = r }

// ctxDone reports whether a (possibly nil) context has been cancelled.
func ctxDone(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// counterBatch locally accumulates the hot-path telemetry counters of one
// worker (or one sequential run) and flushes them with a handful of atomic
// adds. Totals stay exact under any worker count; only the add frequency
// changes. The gateEvals of the event kernel count gates actually evaluated
// (skipped holds the rest), so gateEvals+skipped equals the dense total.
type counterBatch struct {
	gateEvals, vectors, passes, dropped int64
	events, skipped, cones, cancelled   int64
	sweepFB, slabPasses, lanesIdle      int64
}

func (b *counterBatch) flush() {
	if b.passes == 0 && b.cancelled == 0 {
		return
	}
	telemetry.Add(telemetry.CtrGateEvals, b.gateEvals)
	telemetry.Add(telemetry.CtrVectors, b.vectors)
	telemetry.Add(telemetry.CtrGroupPasses, b.passes)
	telemetry.Add(telemetry.CtrFaultsDropped, b.dropped)
	telemetry.Add(telemetry.CtrEventsScheduled, b.events)
	telemetry.Add(telemetry.CtrGatesSkipped, b.skipped)
	telemetry.Add(telemetry.CtrConeHits, b.cones)
	telemetry.Add(telemetry.CtrGroupsCancelled, b.cancelled)
	telemetry.Add(telemetry.CtrSweepFallbacks, b.sweepFB)
	telemetry.Add(telemetry.CtrSlabPasses, b.slabPasses)
	telemetry.Add(telemetry.CtrSlabLanesIdle, b.lanesIdle)
	*b = counterBatch{}
}

// runGroup simulates faults[lo:hi] (at most GroupSize of them) in slots
// 1..hi-lo alongside the fault-free machine in slot 0, writing only this
// group's disjoint regions of out (Detected/DetTime/Lines for faults[lo:hi],
// FinalStates[lo/GroupSize]) and returning the number of detections. Never
// touching shared scalars is what makes the parallel fan-out race-free.
// Dispatches on the (already resolved) Options.Kernel.
func (s *Simulator) runGroup(seq *sim.Sequence, faults []fault.Fault, lo, hi, stop int, opts Options, out *Outcome, tb *counterBatch) int {
	if opts.Kernel == KernelEvent && !groupHasBridge(faults[lo:hi]) {
		return s.runGroupEvent(seq, faults, lo, hi, stop, opts, out, tb)
	}
	// Bridge groups take the dense kernel's two-pass cycle: the event
	// worklist cannot express a force whose value depends on a possibly
	// higher-level node resolved within the same time unit.
	return s.runGroupDense(seq, faults, lo, hi, stop, opts, out, tb)
}

// runGroupDense is the original kernel: one full pass over the levelized
// netlist per time unit. It is the trusted baseline the event kernel is
// differentially locked against and stays byte-for-byte unoptimized.
func (s *Simulator) runGroupDense(seq *sim.Sequence, faults []fault.Fault, lo, hi, stop int, opts Options, out *Outcome, tb *counterBatch) int {
	// The dense kernel rebuilds injection without site tracking, so any
	// event-kernel value snapshot on this scratch simulator is now stale.
	s.invalidateEvent()
	c := s.c
	tg := opts.Trace.Group(lo / GroupSize)
	tg.SetWorker(s.worker)
	if tg != nil && lo == 0 {
		s.actValid = false // activity baseline starts with this pass
	}
	// Build injection tables. Stem masks and pin indices are cleared only at
	// the nodes touched by the previous group.
	for i := range s.stemMask0 {
		s.stemMask0[i] = 0
		s.stemMask1[i] = 0
	}
	for _, n := range s.pinNodes {
		s.pinIdx[n] = -1
	}
	s.pinNodes = s.pinNodes[:0]
	s.pinForces = s.pinForces[:0]
	s.clearModelInjection()
	for k := lo; k < hi; k++ {
		f := faults[k]
		slot := uint(k - lo + 1)
		switch {
		case f.Kind == fault.KindTransition:
			s.addTransSite(f.Node, 1<<slot, f.Stuck)
		case f.Kind == fault.KindBridge:
			s.addBridgeSite(f.Node, f.Node2, 1<<slot, f.Stuck == 1)
			s.addBridgeSite(f.Node2, f.Node, 1<<slot, f.Stuck == 1)
		case f.Pin < 0:
			if f.Stuck == 0 {
				s.stemMask0[f.Node] |= 1 << slot
			} else {
				s.stemMask1[f.Node] |= 1 << slot
			}
		default:
			idx := s.pinIdx[f.Node]
			if idx < 0 {
				idx = int32(len(s.pinForces))
				s.pinIdx[f.Node] = idx
				s.pinForces = append(s.pinForces, nil)
				s.pinNodes = append(s.pinNodes, f.Node)
			}
			s.pinForces[idx] = append(s.pinForces[idx],
				pinForce{pin: f.Pin, mask: 1 << slot, bit: f.Stuck == 1})
		}
	}

	// Telemetry is accumulated into the caller's batch (flushed once per
	// worker with four atomic adds), keeping the per-gate loop untouched.
	units := 0
	det := 0

	state := s.next
	if opts.InitialStates != nil {
		copy(state, opts.InitialStates[lo/GroupSize])
	} else {
		for i := range state {
			state[i] = logic.Broadcast(opts.Init)
		}
	}
	vals := s.vals

	activeMask := groupMask(hi - lo) // slots still undetected

	for u := 0; u < stop; u++ {
		units++
		s.densePass(seq, state, u, false)
		if s.hasBridge {
			// Two-pass cycle: the first pass's nominal stem values resolve
			// each bridge's wired value, the replay pass applies it at both
			// stems so every downstream gate (at any level) sees it.
			s.resolveBridges()
			s.densePass(seq, state, u, true)
		}
		if tg != nil && lo == 0 {
			s.traceActivity(tg)
		}
		// Detection at primary outputs.
		for poi, id := range c.Outputs {
			d := vals[id].DiffMask() & activeMask
			for ; d != 0; d &= d - 1 {
				slot := trailingZeros(d)
				fi := lo + slot - 1
				out.Detected[fi] = true
				out.DetTime[fi] = u + opts.TimeOffset
				det++
				activeMask &^= 1 << uint(slot)
				if tg != nil {
					tg.Detect(fi, u+opts.TimeOffset, poi)
				}
			}
		}
		if opts.OutputHook != nil {
			po := s.poScratch[:0]
			for _, id := range c.Outputs {
				po = append(po, vals[id])
			}
			s.poScratch = po
			opts.OutputHook(lo, hi, u, po)
		}
		// Observability recording on every node.
		if opts.ObserveLines {
			for id := range vals {
				d := vals[id].DiffMask()
				for ; d != 0; d &= d - 1 {
					slot := trailingZeros(d)
					if slot == 0 {
						continue
					}
					out.Lines[lo+slot-1].Set(id)
				}
			}
		}
		if activeMask == 0 && !opts.ObserveLines && opts.OutputHook == nil && !opts.SaveStates {
			break // every fault in the group already detected
		}
		// Clock edge: next state, with DFF D-pin faults applied.
		for k, id := range c.DFFs {
			w := vals[c.Nodes[id].Fanins[0]]
			if idx := s.pinIdx[id]; idx >= 0 {
				for _, p := range s.pinForces[idx] {
					w = w.ForceMask(p.mask, p.bit)
				}
			}
			state[k] = w
		}
	}
	if opts.SaveStates {
		saved := make([]logic.W, len(state))
		copy(saved, state)
		out.FinalStates[lo/GroupSize] = saved
	}
	tg.SetVectors(units)
	tb.gateEvals += int64(units) * int64(len(s.gateID))
	tb.vectors += int64(units)
	tb.passes++
	tb.dropped += int64(det)
	return det
}

// inject applies the group's stem faults at node id.
func (s *Simulator) inject(id circuit.NodeID, w logic.W) logic.W {
	if m := s.stemMask0[id]; m != 0 {
		w = w.ForceMask(m, false)
	}
	if m := s.stemMask1[id]; m != 0 {
		w = w.ForceMask(m, true)
	}
	return w
}

func groupMask(n int) uint64 {
	// slots 1..n
	if n >= 63 {
		return ^uint64(0) &^ 1
	}
	return ((uint64(1) << uint(n+1)) - 1) &^ 1
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// eval1 evaluates a 1-input gate.
func eval1(t circuit.GateType, a logic.W) logic.W {
	switch t {
	case circuit.Not, circuit.Nand, circuit.Nor, circuit.Xnor:
		return a.Not()
	default:
		return a
	}
}

// eval2 evaluates a 2-input gate without touching the scratch buffer.
func eval2(t circuit.GateType, a, b logic.W) logic.W {
	switch t {
	case circuit.And:
		return a.And(b)
	case circuit.Nand:
		return a.And(b).Not()
	case circuit.Or:
		return a.Or(b)
	case circuit.Nor:
		return a.Or(b).Not()
	case circuit.Xor:
		return a.Xor(b)
	case circuit.Xnor:
		return a.Xor(b).Not()
	default:
		panic("fsim: eval2 on non-gate type")
	}
}

// evalW evaluates a gate over dual-rail words.
func evalW(t circuit.GateType, in []logic.W) logic.W {
	switch t {
	case circuit.Buf:
		return in[0]
	case circuit.Not:
		return in[0].Not()
	case circuit.And, circuit.Nand:
		v := in[0]
		for _, x := range in[1:] {
			v = v.And(x)
		}
		if t == circuit.Nand {
			v = v.Not()
		}
		return v
	case circuit.Or, circuit.Nor:
		v := in[0]
		for _, x := range in[1:] {
			v = v.Or(x)
		}
		if t == circuit.Nor {
			v = v.Not()
		}
		return v
	case circuit.Xor, circuit.Xnor:
		v := in[0]
		for _, x := range in[1:] {
			v = v.Xor(x)
		}
		if t == circuit.Xnor {
			v = v.Not()
		}
		return v
	default:
		panic("fsim: evalW on non-gate type")
	}
}
