package fsim

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
)

// scalarFaulty is an independent, slot-free reference implementation of
// sequential fault simulation used as an oracle against the bit-parallel
// simulator.
func scalarFaulty(c *circuit.Circuit, seq *sim.Sequence, f *fault.Fault, init logic.V) (vals [][]logic.V) {
	v := make([]logic.V, len(c.Nodes))
	state := make([]logic.V, len(c.DFFs))
	for i := range state {
		state[i] = init
	}
	inject := func(id circuit.NodeID, x logic.V) logic.V {
		if f != nil && f.Pin < 0 && f.Node == id {
			return logic.V(f.Stuck)
		}
		return x
	}
	out := make([][]logic.V, 0, seq.Len())
	for u := 0; u < seq.Len(); u++ {
		for k, id := range c.Inputs {
			v[id] = inject(id, seq.At(u, k))
		}
		for k, id := range c.DFFs {
			v[id] = inject(id, state[k])
		}
		for _, id := range c.Order {
			n := &c.Nodes[id]
			in := make([]logic.V, len(n.Fanins))
			for k, fn := range n.Fanins {
				in[k] = v[fn]
				if f != nil && f.Pin == k && f.Node == id {
					in[k] = logic.V(f.Stuck)
				}
			}
			v[id] = inject(id, sim.Eval(n.Type, in))
		}
		snapshot := make([]logic.V, len(v))
		copy(snapshot, v)
		out = append(out, snapshot)
		for k, id := range c.DFFs {
			d := v[c.Nodes[id].Fanins[0]]
			if f != nil && f.Node == id && f.Pin == 0 {
				d = logic.V(f.Stuck)
			}
			state[k] = d
		}
	}
	return out
}

// scalarDetect computes detection (first time, at primary outputs) from
// scalar fault-free and faulty traces.
func scalarDetect(c *circuit.Circuit, good, bad [][]logic.V) (bool, int) {
	for u := range good {
		for _, id := range c.Outputs {
			g, b := good[u][id], bad[u][id]
			if g.IsBinary() && b.IsBinary() && g != b {
				return true, u
			}
		}
	}
	return false, -1
}

func crossCheckCircuit(t *testing.T, c *circuit.Circuit, seqLen int, init logic.V, seed uint64) {
	t.Helper()
	rng := randutil.New(seed)
	seq := sim.RandomSequence(rng, c.NumInputs(), seqLen)
	faults := fault.CollapsedUniverse(c)
	out := Run(c, seq, faults, Options{Init: init})
	good := scalarFaulty(c, seq, nil, init)
	for i := range faults {
		bad := scalarFaulty(c, seq, &faults[i], init)
		det, at := scalarDetect(c, good, bad)
		if det != out.Detected[i] || (det && at != out.DetTime[i]) {
			t.Fatalf("%s / fault %s: scalar (%v,%d) vs parallel (%v,%d)",
				c.Name, faults[i].String(c), det, at, out.Detected[i], out.DetTime[i])
		}
	}
}

func TestCrossCheckS27(t *testing.T) {
	c := iscas.MustLoad("s27")
	for seed := uint64(0); seed < 8; seed++ {
		crossCheckCircuit(t, c, 20, logic.X, seed)
		crossCheckCircuit(t, c, 20, logic.Zero, seed+100)
	}
}

func TestCrossCheckSyntheticCircuits(t *testing.T) {
	// Random small synthetic circuits: the group spans multiple words only
	// for bigger circuits, so include one with >63 collapsed faults.
	profiles := []iscas.Profile{
		{Name: "x1", Inputs: 3, Outputs: 2, DFFs: 2, Gates: 12, Seed: 1, Synthetic: true},
		{Name: "x2", Inputs: 4, Outputs: 3, DFFs: 4, Gates: 30, Seed: 2, Synthetic: true},
		{Name: "x3", Inputs: 5, Outputs: 4, DFFs: 6, Gates: 80, Seed: 3, Synthetic: true},
	}
	for _, p := range profiles {
		c, err := iscas.Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		crossCheckCircuit(t, c, 16, logic.Zero, p.Seed+7)
		crossCheckCircuit(t, c, 16, logic.X, p.Seed+8)
	}
}

func TestS27PaperSequenceDetectsAllFaults(t *testing.T) {
	// The paper states the Table 1 sequence detects all (sequentially
	// testable) stuck-at faults of s27; verify against our collapsed list
	// with unknown initial state.
	c := iscas.MustLoad("s27")
	seq, err := sim.ParseSequence(iscas.S27TestSequence)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	out := Run(c, seq, faults, Options{Init: logic.X})
	var undet []string
	for i, d := range out.Detected {
		if !d {
			undet = append(undet, faults[i].String(c))
		}
	}
	if len(undet) > 0 {
		t.Fatalf("Table 1 sequence leaves %d/%d faults undetected: %v",
			len(undet), len(faults), undet)
	}
	// Detection times are within the sequence.
	for i, d := range out.Detected {
		if d && (out.DetTime[i] < 0 || out.DetTime[i] >= seq.Len()) {
			t.Fatalf("fault %d has detection time %d", i, out.DetTime[i])
		}
	}
}

func TestAbortAfterFirstGroup(t *testing.T) {
	// Using an all-X sequence on a multi-group circuit, the first group
	// detects nothing and the run aborts early, skipping the later groups.
	c := iscas.MustLoad("s298")
	seq := sim.NewSequence(c.NumInputs())
	vec := make([]logic.V, c.NumInputs())
	for i := range vec {
		vec[i] = logic.X
	}
	seq.Append(vec)
	seq.Append(vec)
	faults := fault.CollapsedUniverse(c)
	if len(faults) <= GroupSize {
		t.Fatalf("need a multi-group fault list, got %d faults", len(faults))
	}
	out := Run(c, seq, faults, Options{Init: logic.X, AbortAfterFirstGroupIfNone: true})
	if out.NumDetected != 0 {
		t.Skip("sequence unexpectedly detects faults; abort path not exercised")
	}
	if !out.Aborted {
		t.Fatal("expected Aborted")
	}
}

func TestAbortedOnlyWhenGroupsRemain(t *testing.T) {
	// A zero-detection run over a fault list that fits in one group is a
	// complete simulation, not a cut-short one: Aborted must stay false.
	c := iscas.MustLoad("s27")
	seq, _ := sim.ParseSequence("0000\n0000")
	faults := fault.CollapsedUniverse(c)
	if len(faults) > GroupSize {
		t.Fatalf("s27 fault list grew past one group (%d faults)", len(faults))
	}
	out := Run(c, seq, faults, Options{Init: logic.X, AbortAfterFirstGroupIfNone: true})
	if out.NumDetected != 0 {
		t.Skip("sequence unexpectedly detects faults; abort path not exercised")
	}
	if out.Aborted {
		t.Fatal("fully simulated single-group run marked Aborted")
	}
}

func TestStopTime(t *testing.T) {
	c := iscas.MustLoad("s27")
	seq, _ := sim.ParseSequence(iscas.S27TestSequence)
	faults := fault.CollapsedUniverse(c)
	full := Run(c, seq, faults, Options{Init: logic.X})
	trunc := Run(c, seq, faults, Options{Init: logic.X, StopTime: 3})
	if trunc.NumDetected >= full.NumDetected {
		t.Fatalf("truncated run detected %d faults, full %d", trunc.NumDetected, full.NumDetected)
	}
	for i := range faults {
		if trunc.Detected[i] && trunc.DetTime[i] >= 3 {
			t.Fatal("detection after StopTime")
		}
		if trunc.Detected[i] && !full.Detected[i] {
			t.Fatal("truncated run detected a fault the full run missed")
		}
	}
}

func TestObserveLines(t *testing.T) {
	c := iscas.MustLoad("s27")
	seq, _ := sim.ParseSequence(iscas.S27TestSequence)
	faults := fault.CollapsedUniverse(c)
	out := Run(c, seq, faults, Options{Init: logic.X, ObserveLines: true})
	for i := range faults {
		if !out.Detected[i] {
			continue
		}
		// A fault detected at a PO must list at least one PO node among its
		// difference lines.
		found := false
		for _, id := range c.Outputs {
			if out.Lines[i].Get(int(id)) {
				found = true
			}
		}
		if !found {
			t.Fatalf("fault %s detected but no PO in its line set", faults[i].String(c))
		}
		// The fault site itself (or downstream) must differ at some point:
		// line set can't be empty for a detected fault.
		if out.Lines[i].Count() == 0 {
			t.Fatalf("fault %s detected with empty line set", faults[i].String(c))
		}
	}
}

func TestObserveLinesMatchesScalar(t *testing.T) {
	p := iscas.Profile{Name: "xo", Inputs: 4, Outputs: 2, DFFs: 3, Gates: 25, Seed: 9, Synthetic: true}
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := randutil.New(11)
	seq := sim.RandomSequence(rng, c.NumInputs(), 12)
	faults := fault.CollapsedUniverse(c)
	out := Run(c, seq, faults, Options{Init: logic.Zero, ObserveLines: true})
	good := scalarFaulty(c, seq, nil, logic.Zero)
	for i := range faults {
		bad := scalarFaulty(c, seq, &faults[i], logic.Zero)
		want := NewBitset(len(c.Nodes))
		for u := range good {
			for id := range c.Nodes {
				g, b := good[u][id], bad[u][id]
				if g.IsBinary() && b.IsBinary() && g != b {
					want.Set(id)
				}
			}
		}
		for id := range c.Nodes {
			if want.Get(id) != out.Lines[i].Get(id) {
				t.Fatalf("fault %s node %s: scalar %v vs parallel %v",
					faults[i].String(c), c.Nodes[id].Name, want.Get(id), out.Lines[i].Get(id))
			}
		}
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Get/Set wrong")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
}

func TestGroupMask(t *testing.T) {
	if groupMask(1) != 0b10 {
		t.Fatalf("groupMask(1) = %b", groupMask(1))
	}
	if groupMask(63) != ^uint64(0)&^1 {
		t.Fatalf("groupMask(63) = %x", groupMask(63))
	}
	if groupMask(3) != 0b1110 {
		t.Fatalf("groupMask(3) = %b", groupMask(3))
	}
}

func TestRunReusableSimulator(t *testing.T) {
	// A Simulator must be reusable across runs without state leakage.
	c := iscas.MustLoad("s27")
	s := New(c)
	seq, _ := sim.ParseSequence(iscas.S27TestSequence)
	faults := fault.CollapsedUniverse(c)
	a := s.Run(seq, faults, Options{Init: logic.X})
	b := s.Run(seq, faults, Options{Init: logic.X})
	for i := range faults {
		if a.Detected[i] != b.Detected[i] || a.DetTime[i] != b.DetTime[i] {
			t.Fatalf("run-to-run mismatch on fault %d", i)
		}
	}
}

func TestSaveAndResumeStates(t *testing.T) {
	// Running a prefix with SaveStates then the suffix with InitialStates
	// must detect exactly what one full run detects (for faults undetected
	// by the prefix).
	c := iscas.MustLoad("s298")
	rng := randutil.New(21)
	full := sim.RandomSequence(rng, c.NumInputs(), 60)
	prefix := full.Slice(0, 40)
	suffix := full.Slice(40, 60)
	faults := fault.CollapsedUniverse(c)
	whole := Run(c, full, faults, Options{Init: logic.Zero})
	pre := Run(c, prefix, faults, Options{Init: logic.Zero, SaveStates: true})
	post := Run(c, suffix, faults, Options{InitialStates: pre.FinalStates})
	for i := range faults {
		want := whole.Detected[i]
		got := pre.Detected[i] || post.Detected[i]
		if want != got {
			t.Fatalf("fault %s: whole=%v split=%v (pre=%v post=%v)",
				faults[i].String(c), want, got, pre.Detected[i], post.Detected[i])
		}
		if whole.Detected[i] && !pre.Detected[i] {
			if post.DetTime[i]+prefix.Len() != whole.DetTime[i] {
				t.Fatalf("fault %s: detection time %d+%d != %d",
					faults[i].String(c), post.DetTime[i], prefix.Len(), whole.DetTime[i])
			}
		}
	}
}

func TestSaveStatesShape(t *testing.T) {
	c := iscas.MustLoad("s298")
	faults := fault.CollapsedUniverse(c)
	seq := sim.RandomSequence(randutil.New(5), c.NumInputs(), 10)
	out := Run(c, seq, faults, Options{Init: logic.Zero, SaveStates: true})
	wantGroups := (len(faults) + GroupSize - 1) / GroupSize
	if len(out.FinalStates) != wantGroups {
		t.Fatalf("%d state groups, want %d", len(out.FinalStates), wantGroups)
	}
	for g, st := range out.FinalStates {
		if len(st) != c.NumDFFs() {
			t.Fatalf("group %d state has %d words for %d flip-flops", g, len(st), c.NumDFFs())
		}
	}
}
