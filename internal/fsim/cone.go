package fsim

import "repro/internal/circuit"

// Cone is the per-circuit static data of the event-driven kernel: topological
// levels, a flattened fanout adjacency for event scheduling, and the
// fault-site observability classification (which nodes can reach a primary
// output, and which can reach flip-flop state, through any sequential path).
//
// A Cone is a pure function of the netlist: two independent builds over the
// same circuit are deeply equal (the property test in event_test.go pins
// this). It is immutable after BuildCone returns and is shared read-only by
// every scratch simulator of a parallel worker pool; the per-fault-group
// union cone (the fanout cone of the group's injected fault sites, which
// bounds where faulty machines can ever diverge from the fault-free machine)
// is materialized per group from this data by Simulator.markUnionCone, so
// its cost is proportional to the cone actually reached rather than to a
// precomputed quadratic table.
type Cone struct {
	// LevelOf[id] is the evaluation level of node id: 0 for Input/DFF
	// sources, 1+max(fanin levels) for gates. Every fanout of a node has a
	// strictly larger level, which is what makes the bucket queue of the
	// event kernel level-monotone.
	LevelOf []int32
	// NumLevels is 1 + the largest level (the bucket count).
	NumLevels int

	// FanoutList[FanoutStart[id]:FanoutStart[id+1]] lists every fanout of
	// node id (combinational gates and flip-flops).
	FanoutStart []int32
	FanoutList  []circuit.NodeID

	// OrderPos[id] is the position of gate id in the circuit's topological
	// evaluation order (-1 for Input/DFF nodes).
	OrderPos []int32
	// POIndex[id] is the index of node id in Circuit.Outputs (-1 when the
	// node is not a primary output).
	POIndex []int32

	// Detectable[id] reports whether a fault effect originating at node id
	// can reach a primary output through any path, including paths that are
	// latched through flip-flops into later time frames. A fault at an
	// undetectable site can never be detected, can never disturb a primary
	// output word, and (unless it feeds state or internal lines are being
	// observed) need not be injected at all.
	Detectable []bool
	// FeedsState[id] reports whether node id can reach the D input of some
	// flip-flop through any path (again crossing flip-flop boundaries): a
	// fault effect originating at id can corrupt the saved machine state.
	FeedsState []bool
}

// BuildCone computes the static event-kernel data for c.
func BuildCone(c *circuit.Circuit) *Cone {
	n := len(c.Nodes)
	cn := &Cone{
		LevelOf:     make([]int32, n),
		FanoutStart: make([]int32, n+1),
		OrderPos:    make([]int32, n),
		POIndex:     make([]int32, n),
		Detectable:  make([]bool, n),
		FeedsState:  make([]bool, n),
	}
	for i := range c.Nodes {
		cn.LevelOf[i] = c.Nodes[i].Level
		if int(cn.LevelOf[i])+1 > cn.NumLevels {
			cn.NumLevels = int(cn.LevelOf[i]) + 1
		}
		cn.OrderPos[i] = -1
		cn.POIndex[i] = -1
	}
	for k, id := range c.Order {
		cn.OrderPos[id] = int32(k)
	}
	for k, id := range c.Outputs {
		cn.POIndex[id] = int32(k)
	}
	for i := range c.Nodes {
		cn.FanoutStart[i+1] = cn.FanoutStart[i] + int32(len(c.Nodes[i].Fanouts))
	}
	cn.FanoutList = make([]circuit.NodeID, 0, cn.FanoutStart[n])
	for i := range c.Nodes {
		cn.FanoutList = append(cn.FanoutList, c.Nodes[i].Fanouts...)
	}

	// Reverse reachability over fanin edges. Walking a flip-flop's fanin
	// crosses the sequential frame boundary (DFF.Fanins[0] is the D input),
	// so both closures are over the full sequential graph; visited marking
	// makes the feedback cycles terminate.
	reverseMark := func(mark []bool, seeds []circuit.NodeID) {
		stack := append([]circuit.NodeID(nil), seeds...)
		for _, s := range seeds {
			mark[s] = true
		}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, f := range c.Nodes[id].Fanins {
				if !mark[f] {
					mark[f] = true
					stack = append(stack, f)
				}
			}
		}
	}
	reverseMark(cn.Detectable, c.Outputs)
	// State is corrupted by a fault effect only when it reaches a D input
	// (the DFF nodes themselves are outputs of state, not state): seed with
	// the D-input drivers, not with the flip-flops.
	dIns := make([]circuit.NodeID, 0, len(c.DFFs))
	for _, id := range c.DFFs {
		dIns = append(dIns, c.Nodes[id].Fanins[0])
	}
	reverseMark(cn.FeedsState, dIns)
	return cn
}
