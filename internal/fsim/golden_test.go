package fsim_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenRecord is the pinned observable outcome of one fault-simulation
// workload: total fault coverage plus the full detection-time histogram.
// Any kernel change that shifts a single fault's detection or its detection
// time shows up here.
type goldenRecord struct {
	Circuit string `json:"circuit"`
	// Model names the fault model of the pin; empty for the legacy stuck-at
	// records (kept byte-identical across the FaultModel refactor).
	Model       string         `json:"model,omitempty"`
	Sequence    string         `json:"sequence"`
	Faults      int            `json:"faults"`
	Detected    int            `json:"detected"`
	DetTimeHist map[string]int `json:"det_time_histogram"`
}

// goldenCase is one pinned workload.
type goldenCase struct {
	name    string
	circuit string
	seqDesc string
	seq     *sim.Sequence
	init    logic.V
	model   fault.Model // nil = stuck-at (the legacy pins)
}

// universeOf is the pinned workload's collapsed fault universe.
func universeOf(c *circuit.Circuit, m fault.Model) []fault.Fault {
	if m == nil {
		m = fault.StuckAt{}
	}
	return fault.CollapsedUniverseFor(c, m)
}

// goldenCases are the pinned workloads:
//
//   - s27-table1: the real s27 under the paper's Table 1 deterministic test
//     sequence (iscas.S27TestSequence) — the histogram is the per-time-unit
//     detection profile of that table.
//   - s27-weighted: s27 under the weighted sequence T_G of the paper's
//     Section 2 example assignment (01, 0, 100, 1) — the weighted-sequence
//     coverage the Figure 1 generator is built to deliver.
//   - s298-random / s344-random: suite circuits under fixed random binary
//     stimulus, full collapsed fault universe.
//   - *-transition / *-bridge: the same circuits and sequences under the
//     launch-on-capture transition model and the 2-node bridging model (full
//     collapsed universes), pinning the non-stuck-at injection paths of
//     every kernel plus the sharded and worker-death rounds.
func goldenCases(t *testing.T) []goldenCase {
	t.Helper()
	table1, err := sim.ParseSequence(iscas.S27TestSequence)
	if err != nil {
		t.Fatalf("parse S27TestSequence: %v", err)
	}
	weighted := core.Assignment{Subs: []string{"01", "0", "100", "1"}}.GenSequence(64)
	rand298 := sim.RandomSequence(randutil.New(298), 3, 128)
	rand344 := sim.RandomSequence(randutil.New(344), 9, 128)
	return []goldenCase{
		{"s27-table1", "s27", "paper Table 1 deterministic sequence", table1, logic.X, nil},
		{"s27-weighted", "s27", "T_G of assignment (01, 0, 100, 1), l_G=64", weighted, logic.X, nil},
		{"s298-random", "s298", "random binary, seed 298, length 128", rand298, logic.Zero, nil},
		{"s344-random", "s344", "random binary, seed 344, length 128", rand344, logic.Zero, nil},
		{"s27-transition", "s27", "paper Table 1 deterministic sequence", table1, logic.X, fault.Transition{}},
		{"s298-transition", "s298", "random binary, seed 298, length 128", rand298, logic.Zero, fault.Transition{}},
		{"s344-transition", "s344", "random binary, seed 344, length 128", rand344, logic.Zero, fault.Transition{}},
		{"s27-bridge", "s27", "paper Table 1 deterministic sequence", table1, logic.X, fault.Bridging{}},
		{"s298-bridge", "s298", "random binary, seed 298, length 128", rand298, logic.Zero, fault.Bridging{}},
		{"s344-bridge", "s344", "random binary, seed 344, length 128", rand344, logic.Zero, fault.Bridging{}},
	}
}

// TestGoldenOutcomes locks the simulator's observable outcomes against the
// committed golden files, under both kernels and both worker counts. Run
// with -update to rewrite the files after an intentional behaviour change.
func TestGoldenOutcomes(t *testing.T) {
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			c := iscas.MustLoad(tc.circuit)
			faults := universeOf(c, tc.model)

			// The golden record is computed by the dense kernel; every
			// other configuration must reproduce it exactly.
			ref := fsim.Run(c, tc.seq, faults, fsim.Options{
				Init: tc.init, Workers: 1, Kernel: fsim.KernelDense,
			})
			for _, kernel := range []fsim.Kernel{fsim.KernelDense, fsim.KernelEvent, fsim.KernelSlab} {
				for _, workers := range []int{1, 4} {
					out := fsim.Run(c, tc.seq, faults, fsim.Options{
						Init: tc.init, Workers: workers, Kernel: kernel,
					})
					if !reflect.DeepEqual(out.Detected, ref.Detected) ||
						!reflect.DeepEqual(out.DetTime, ref.DetTime) {
						t.Fatalf("kernel=%v workers=%d: outcome differs from dense sequential run", kernel, workers)
					}
				}
			}
			// The slab kernel's lane width is outcome-invariant; pin the
			// golden record across explicit widths too (1 = degenerate
			// single-group batches, 2/8 = multi-group with tail batches).
			for _, lanes := range []int{1, 2, 8} {
				out := fsim.Run(c, tc.seq, faults, fsim.Options{
					Init: tc.init, Workers: 1, Kernel: fsim.KernelSlab, SlabLanes: lanes,
				})
				if !reflect.DeepEqual(out.Detected, ref.Detected) ||
					!reflect.DeepEqual(out.DetTime, ref.DetTime) {
					t.Fatalf("slab W=%d: outcome differs from dense sequential run", lanes)
				}
			}

			got := recordOf(tc, len(faults), ref)

			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			var want goldenRecord
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("outcome drifted from %s:\n got: %+v\nwant: %+v", path, got, want)
			}
		})
	}
}
