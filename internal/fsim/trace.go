package fsim

import (
	"math/bits"

	"repro/internal/obsv"
)

// traceActivity feeds one per-cycle switching-activity sample to a traced
// group-0 pass: the number of circuit nodes whose *fault-free* (slot 0)
// value changed between the previous simulated vector and this one.
//
// The metric deliberately looks only at slot 0. Whole-word activity is not
// kernel-invariant — the event kernel leaves provably undetectable faults
// uninjected (skipFault), so their slots mirror slot 0 there while the dense
// kernel injects them and lets them toggle internal lines. The fault-free
// machine, by the kernels' bit-identity guarantee, is the same everywhere,
// so the sample is deterministic across kernels and worker counts. It is
// recorded for group 0 only (slot 0 is the same machine in every group).
//
// Both rails are packed into bitsets (a node counts as changed on any
// 0/1/X transition) and diffed with XOR+popcount; the O(nodes) cost is paid
// per cycle only when a trace is attached, leaving the untraced hot loops
// untouched.
func (s *Simulator) traceActivity(tg *obsv.GroupTrace) {
	n := len(s.vals)
	words := (n + 63) / 64
	if len(s.actZ) < words {
		s.actZ = make([]uint64, words)
		s.actO = make([]uint64, words)
	}
	chg := 0
	var z, o uint64
	wi := 0
	for i, w := range s.vals {
		z |= (w.Zeros & 1) << (uint(i) & 63)
		o |= (w.Ones & 1) << (uint(i) & 63)
		if i&63 == 63 {
			if s.actValid {
				chg += bits.OnesCount64((z ^ s.actZ[wi]) | (o ^ s.actO[wi]))
			}
			s.actZ[wi], s.actO[wi] = z, o
			z, o = 0, 0
			wi++
		}
	}
	if n&63 != 0 {
		if s.actValid {
			chg += bits.OnesCount64((z ^ s.actZ[wi]) | (o ^ s.actO[wi]))
		}
		s.actZ[wi], s.actO[wi] = z, o
	}
	if s.actValid {
		tg.Activity(chg)
	}
	s.actValid = true
}
