package fsim_test

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/rcg"
)

// Kernel head-to-head benchmarks. Each case fault-simulates a weighted
// sequence (the pipeline's dominant workload: short per-input subsequences,
// so consecutive vectors differ in few inputs) against up to two fault
// groups on one reused simulator, so the event kernel's warm-start path is
// what gets measured. Compare with
//
//	go test ./internal/fsim -bench BenchmarkKernel
//
// and see BENCH_event.json (make bench-kernel) for the committed suite-wide
// numbers.

// kernelBenchCases is the benchmark menagerie: two synthetic rcg circuits
// (small/medium) and two suite circuits (the real s27 plus a suite member).
var kernelBenchCases = []struct {
	name string
	load func() *circuit.Circuit
}{
	{"rcg-small", func() *circuit.Circuit { return rcg.FromSeed(11) }},
	{"rcg-medium", func() *circuit.Circuit { return rcg.FromSeed(774) }},
	{"s27", func() *circuit.Circuit { return iscas.MustLoad("s27") }},
	{"s298", func() *circuit.Circuit { return iscas.MustLoad("s298") }},
}

func runKernelBenchmark(b *testing.B, k fsim.Kernel) {
	for _, tc := range kernelBenchCases {
		b.Run(tc.name, func(b *testing.B) {
			c := tc.load()
			rng := randutil.New(0xbe7c4)
			subs := make([]string, c.NumInputs())
			lengths := []int{1, 1, 1, 2, 2, 4, 8}
			for i := range subs {
				bs := make([]byte, lengths[rng.Intn(len(lengths))])
				for j := range bs {
					bs[j] = '0' + byte(rng.Intn(2))
				}
				subs[i] = string(bs)
			}
			seq := core.Assignment{Subs: subs}.GenSequence(512)
			faults := fault.CollapsedUniverse(c)
			if len(faults) > 2*fsim.GroupSize {
				faults = faults[:2*fsim.GroupSize]
			}
			s := fsim.New(c)
			opts := fsim.Options{Init: logic.Zero, Workers: 1, Kernel: k}
			s.Run(seq, faults, opts) // warm up caches and pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(seq, faults, opts)
			}
		})
	}
}

func BenchmarkKernelDense(b *testing.B) { runKernelBenchmark(b, fsim.KernelDense) }
func BenchmarkKernelEvent(b *testing.B) { runKernelBenchmark(b, fsim.KernelEvent) }
func BenchmarkKernelSlab(b *testing.B)  { runKernelBenchmark(b, fsim.KernelSlab) }

// BenchmarkKernelSlabColdArena is the arena's control experiment: it forces
// the slab arena to be rebuilt on every run by alternating the lane width
// (slabFor reallocates whenever the stride changes), so allocs/op here is
// what every batch would pay without arena reuse. Compare with
// BenchmarkKernelSlab, whose warm arena allocates nothing per run beyond the
// outcome itself.
func BenchmarkKernelSlabColdArena(b *testing.B) {
	for _, tc := range kernelBenchCases {
		b.Run(tc.name, func(b *testing.B) {
			c := tc.load()
			rng := randutil.New(0xbe7c4)
			subs := make([]string, c.NumInputs())
			lengths := []int{1, 1, 1, 2, 2, 4, 8}
			for i := range subs {
				bs := make([]byte, lengths[rng.Intn(len(lengths))])
				for j := range bs {
					bs[j] = '0' + byte(rng.Intn(2))
				}
				subs[i] = string(bs)
			}
			seq := core.Assignment{Subs: subs}.GenSequence(512)
			faults := fault.CollapsedUniverse(c)
			if len(faults) > 2*fsim.GroupSize {
				faults = faults[:2*fsim.GroupSize]
			}
			s := fsim.New(c)
			opts := fsim.Options{Init: logic.Zero, Workers: 1, Kernel: fsim.KernelSlab}
			s.Run(seq, faults, opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts.SlabLanes = 1 + i%2 // stride change → full arena rebuild
				s.Run(seq, faults, opts)
			}
		})
	}
}
