package fsim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// outcomesEqual compares every merged field of two outcomes bit by bit.
func outcomesEqual(t *testing.T, label string, want, got *Outcome) {
	t.Helper()
	if !reflect.DeepEqual(want.Detected, got.Detected) {
		t.Fatalf("%s: Detected differs", label)
	}
	if !reflect.DeepEqual(want.DetTime, got.DetTime) {
		t.Fatalf("%s: DetTime differs", label)
	}
	if want.NumDetected != got.NumDetected {
		t.Fatalf("%s: NumDetected %d vs %d", label, want.NumDetected, got.NumDetected)
	}
	if !reflect.DeepEqual(want.Lines, got.Lines) {
		t.Fatalf("%s: Lines differ", label)
	}
	if !reflect.DeepEqual(want.FinalStates, got.FinalStates) {
		t.Fatalf("%s: FinalStates differ", label)
	}
	if want.Aborted != got.Aborted {
		t.Fatalf("%s: Aborted %v vs %v", label, want.Aborted, got.Aborted)
	}
}

// TestParallelMatchesSequential is the determinism guarantee: for randomized
// circuits and fault lists, a parallel run must be byte-identical to the
// sequential run for every worker count, covering Workers=1 and workers >
// groups, under both kernels. Run under -race it also proves the fan-out is
// data-race free.
//
// Counter deltas are compared exactly under the dense kernel. The event
// kernel's evaluated/skipped split (and scheduling tallies) legitimately
// depends on which scratch simulator ran which group — a warm value snapshot
// seeds a worklist, a cold one forces a full first sweep — so there only the
// scheduling-invariant counters and the evals+skipped total are compared.
func TestParallelMatchesSequential(t *testing.T) {
	profiles := []iscas.Profile{
		{Name: "p1", Inputs: 4, Outputs: 3, DFFs: 4, Gates: 40, Seed: 11, Synthetic: true},
		{Name: "p2", Inputs: 5, Outputs: 4, DFFs: 6, Gates: 90, Seed: 12, Synthetic: true},
		{Name: "p3", Inputs: 6, Outputs: 4, DFFs: 8, Gates: 160, Seed: 13, Synthetic: true},
	}
	optVariants := []struct {
		name string
		opts Options
	}{
		{"plain", Options{Init: logic.Zero}},
		{"observe", Options{Init: logic.Zero, ObserveLines: true}},
		{"save", Options{Init: logic.X, SaveStates: true}},
		{"abort", Options{Init: logic.Zero, AbortAfterFirstGroupIfNone: true}},
		{"stoptime", Options{Init: logic.Zero, StopTime: 7}},
	}
	for _, p := range profiles {
		c, err := iscas.Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		faults := fault.CollapsedUniverse(c)
		seq := sim.RandomSequence(randutil.New(p.Seed+100), c.NumInputs(), 24)
		groups := (len(faults) + GroupSize - 1) / GroupSize
		for _, kernel := range []Kernel{KernelDense, KernelEvent} {
			for _, v := range optVariants {
				opts := v.opts
				opts.Kernel = kernel
				seqSim := New(c)
				before := telemetry.Counters()
				want := seqSim.Run(seq, faults, opts)
				seqDelta := telemetry.Counters().Sub(before)
				for _, workers := range []int{1, 2, 3, groups + 5} {
					opts := opts
					opts.Workers = workers
					parSim := New(c)
					before = telemetry.Counters()
					got := parSim.Run(seq, faults, opts)
					parDelta := telemetry.Counters().Sub(before)
					label := p.Name + "/" + kernel.String() + "/" + v.name
					outcomesEqual(t, label, want, got)
					if kernel == KernelDense {
						if seqDelta != parDelta {
							t.Fatalf("%s workers=%d: counter deltas %v vs sequential %v",
								label, workers, parDelta.Map(), seqDelta.Map())
						}
						continue
					}
					for _, id := range []telemetry.CounterID{
						telemetry.CtrVectors, telemetry.CtrGroupPasses, telemetry.CtrFaultsDropped,
					} {
						if seqDelta.Get(id) != parDelta.Get(id) {
							t.Fatalf("%s workers=%d: %s delta %d vs sequential %d",
								label, workers, id.Name(), parDelta.Get(id), seqDelta.Get(id))
						}
					}
					seqTotal := seqDelta.Get(telemetry.CtrGateEvals) + seqDelta.Get(telemetry.CtrGatesSkipped)
					parTotal := parDelta.Get(telemetry.CtrGateEvals) + parDelta.Get(telemetry.CtrGatesSkipped)
					if seqTotal != parTotal {
						t.Fatalf("%s workers=%d: evals+skipped %d vs sequential %d",
							label, workers, parTotal, seqTotal)
					}
				}
			}
		}
	}
}

// TestParallelSuiteCircuit repeats the differential check on a real-sized
// suite circuit with a reused simulator (the worker pool must not leak state
// between runs).
func TestParallelSuiteCircuit(t *testing.T) {
	c := iscas.MustLoad("s298")
	faults := fault.CollapsedUniverse(c)
	s := New(c)
	for round := uint64(0); round < 3; round++ {
		seq := sim.RandomSequence(randutil.New(31+round), c.NumInputs(), 40)
		want := New(c).Run(seq, faults, Options{Init: logic.Zero})
		got := s.Run(seq, faults, Options{Init: logic.Zero, Workers: 4})
		outcomesEqual(t, "s298", want, got)
	}
}

// TestOutputHookForcesSequential checks the hook ordering contract: hooks see
// every group's full sequence in strict group order even when Workers > 1.
func TestOutputHookForcesSequential(t *testing.T) {
	c := iscas.MustLoad("s298")
	faults := fault.CollapsedUniverse(c)
	seq := sim.RandomSequence(randutil.New(5), c.NumInputs(), 10)
	var calls []int // group lo per time unit, in invocation order
	out := Run(c, seq, faults, Options{
		Init:    logic.Zero,
		Workers: 8,
		OutputHook: func(lo, hi, u int, po []logic.W) {
			calls = append(calls, lo) // would race if the hook ran concurrently
		},
	})
	groups := (len(faults) + GroupSize - 1) / GroupSize
	if len(calls) != groups*seq.Len() {
		t.Fatalf("hook called %d times, want %d", len(calls), groups*seq.Len())
	}
	for i, lo := range calls {
		if want := (i / seq.Len()) * GroupSize; lo != want {
			t.Fatalf("call %d: group lo=%d, want %d (strict group order)", i, lo, want)
		}
	}
	_ = out
}

// TestInitialStatesValidation is the regression test for the silent state
// corruption bug: a mis-shaped InitialStates must fail loudly instead of
// being partially copied over a stale state vector.
func TestInitialStatesValidation(t *testing.T) {
	c := iscas.MustLoad("s298")
	faults := fault.CollapsedUniverse(c)
	seq := sim.RandomSequence(randutil.New(9), c.NumInputs(), 8)
	pre := Run(c, seq, faults, Options{Init: logic.Zero, SaveStates: true})

	mustPanic := func(name, fragment string, opts Options, fl []fault.Fault) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: expected panic", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, fragment) {
				t.Fatalf("%s: panic %v does not mention %q", name, r, fragment)
			}
		}()
		Run(c, seq, fl, opts)
	}

	// Group count mismatch: continuing with a truncated fault list.
	mustPanic("short fault list", "group states",
		Options{InitialStates: pre.FinalStates}, faults[:GroupSize])

	// Per-group width mismatch: one group state narrower than the DFF count.
	bad := make([][]logic.W, len(pre.FinalStates))
	copy(bad, pre.FinalStates)
	bad[1] = bad[1][:len(bad[1])-1]
	mustPanic("short state", "flip-flops", Options{InitialStates: bad}, faults)

	// The well-shaped continuation still works.
	post := Run(c, seq, faults, Options{InitialStates: pre.FinalStates})
	if len(post.Detected) != len(faults) {
		t.Fatal("well-shaped continuation failed")
	}
}

// TestTimeOffset covers a two-segment run: with TimeOffset set to the prefix
// length, the continued run's detection times are directly comparable to the
// unsplit run's u_det(f).
func TestTimeOffset(t *testing.T) {
	c := iscas.MustLoad("s298")
	faults := fault.CollapsedUniverse(c)
	full := sim.RandomSequence(randutil.New(21), c.NumInputs(), 60)
	prefix := full.Slice(0, 40)
	suffix := full.Slice(40, 60)
	whole := Run(c, full, faults, Options{Init: logic.Zero})
	pre := Run(c, prefix, faults, Options{Init: logic.Zero, SaveStates: true})
	post := Run(c, suffix, faults, Options{
		InitialStates: pre.FinalStates,
		TimeOffset:    prefix.Len(),
		Workers:       3,
	})
	for i := range faults {
		if !whole.Detected[i] || pre.Detected[i] {
			if !post.Detected[i] && post.DetTime[i] != -1 {
				t.Fatalf("fault %d: undetected but DetTime %d", i, post.DetTime[i])
			}
			continue
		}
		if !post.Detected[i] {
			t.Fatalf("fault %s: detected by whole run at %d but not by continuation",
				faults[i].String(c), whole.DetTime[i])
		}
		if post.DetTime[i] != whole.DetTime[i] {
			t.Fatalf("fault %s: continuation DetTime %d != whole-run %d",
				faults[i].String(c), post.DetTime[i], whole.DetTime[i])
		}
	}
}

// TestParallelAbortSemantics: group 0 runs alone first; when it detects
// nothing the rest of the fleet is never fanned out, and when it detects,
// the fanned-out result matches the sequential one.
func TestParallelAbortSemantics(t *testing.T) {
	c := iscas.MustLoad("s298")
	faults := fault.CollapsedUniverse(c)
	seq := sim.RandomSequence(randutil.New(3), c.NumInputs(), 30)
	want := Run(c, seq, faults, Options{Init: logic.Zero, AbortAfterFirstGroupIfNone: true})
	got := Run(c, seq, faults, Options{Init: logic.Zero, AbortAfterFirstGroupIfNone: true, Workers: 4})
	outcomesEqual(t, "abort-parallel", want, got)
}

func TestWorkerPoolReuse(t *testing.T) {
	// workerSims must hand out the receiver plus pooled scratch simulators
	// sharing the flattened netlist, and must not grow on repeated calls.
	c := iscas.MustLoad("s27")
	s := New(c)
	a := s.workerSims(4)
	b := s.workerSims(3)
	if len(a) != 4 || len(b) != 3 {
		t.Fatalf("worker counts %d/%d", len(a), len(b))
	}
	if a[0] != s || b[0] != s {
		t.Fatal("worker 0 must be the receiver")
	}
	if a[1] != b[1] {
		t.Fatal("pool not reused across runs")
	}
	if &a[1].gateID[0] != &s.gateID[0] {
		t.Fatal("workers must share the flattened netlist")
	}
	if len(s.pool) != 3 {
		t.Fatalf("pool grew to %d, want 3", len(s.pool))
	}
}
