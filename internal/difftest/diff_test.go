package difftest

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/rcg"
	"repro/internal/sim"
)

// TestDifferentialRefVsFsim is the acceptance gate of the differential
// subsystem: over ≥1000 random (circuit, fault set, sequence) triples —
// including multi-group fault lists, Workers>1 parallel runs, SaveStates
// comparison, StopTime truncation and split continuation replays — ref and
// fsim must agree bit for bit on Detected, DetTime and final states.
func TestDifferentialRefVsFsim(t *testing.T) {
	triples := 1000
	if testing.Short() {
		triples = 150
	}
	var multiGroup, parallel, saved, split int
	for i := 0; i < triples; i++ {
		seed := uint64(i)
		c := rcg.FromSeed(seed)
		rng := randutil.New(seed ^ 0xd1f7e57).Split()
		seq := RandomStimulus(rng, c.NumInputs())
		faults := SampleFaults(rng, fault.CollapsedUniverse(c))
		cfg := ConfigFromSeed(rng.Uint64(), seq.Len())
		if len(faults) > fsim.GroupSize {
			multiGroup++
		}
		if cfg.Workers > 1 {
			parallel++
		}
		if cfg.SaveStates {
			saved++
		}
		if cfg.SplitContinuation && cfg.StopTime == 0 && seq.Len() >= 2 {
			split++
		}
		if err := CheckTriple(c, seq, faults, cfg); err != nil {
			t.Fatalf("triple %d: %v\n%s", i, err, Describe(c, seq, faults, cfg))
		}
	}
	// The sweep must actually exercise the interesting axes, not just tiny
	// single-group sequential runs.
	if multiGroup == 0 || parallel == 0 || saved == 0 || split == 0 {
		t.Fatalf("sweep too narrow: multiGroup=%d parallel=%d saveStates=%d split=%d",
			multiGroup, parallel, saved, split)
	}
	t.Logf("%d triples: %d multi-group, %d parallel, %d with state compare, %d split replays",
		triples, multiGroup, parallel, saved, split)
}

// TestDifferentialSuiteCircuits runs the oracle against fsim on the real
// experiment circuits (the exact s27 and two synthetic suite members), full
// collapsed fault universe, random binary stimulus, parallel workers.
func TestDifferentialSuiteCircuits(t *testing.T) {
	names := []string{"s27", "s298", "s344"}
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		c := iscas.MustLoad(name)
		rng := randutil.New(0xabcde ^ uint64(len(name)))
		faults := fault.CollapsedUniverse(c)
		for k, init := range []logic.V{logic.Zero, logic.X} {
			seq := sim.RandomSequence(rng, c.NumInputs(), 24)
			cfg := Config{Init: init, Workers: 4, SaveStates: true, SplitContinuation: true}
			if err := CheckTriple(c, seq, faults, cfg); err != nil {
				t.Fatalf("%s (init case %d): %v\n%s", name, k, err, Describe(c, seq, faults, cfg))
			}
		}
	}
}

// TestDifferentialDenseVsEvent is the acceptance gate of the event-driven
// kernel: over ≥1000 random triples the event kernel must reproduce the
// dense kernel bit for bit — Detected, DetTime, Lines (ObserveLines axis),
// FinalStates (SaveStates axis) — sequentially and under Workers ∈ {1, 4},
// including StopTime truncation, dense→event runs on one reused simulator,
// back-to-back event warm starts, and split InitialStates/TimeOffset
// continuation replays.
func TestDifferentialDenseVsEvent(t *testing.T) {
	triples := 1000
	if testing.Short() {
		triples = 150
	}
	var multiGroup, observed, saved, split, stopped int
	for i := 0; i < triples; i++ {
		seed := uint64(i) + 0xe7e47 // distinct circuits from the ref sweep
		c := rcg.FromSeed(seed)
		rng := randutil.New(seed ^ 0xd1f7e57).Split()
		seq := RandomStimulus(rng, c.NumInputs())
		faults := SampleFaults(rng, fault.CollapsedUniverse(c))
		cfg := ConfigFromSeed(rng.Uint64(), seq.Len())
		if len(faults) > fsim.GroupSize {
			multiGroup++
		}
		if cfg.ObserveLines {
			observed++
		}
		if cfg.SaveStates {
			saved++
		}
		if cfg.SplitContinuation && cfg.StopTime == 0 && seq.Len() >= 2 {
			split++
		}
		if cfg.StopTime > 0 {
			stopped++
		}
		if err := CheckKernels(c, seq, faults, cfg); err != nil {
			t.Fatalf("triple %d: %v\n%s", i, err, Describe(c, seq, faults, cfg))
		}
	}
	if multiGroup == 0 || observed == 0 || saved == 0 || split == 0 || stopped == 0 {
		t.Fatalf("sweep too narrow: multiGroup=%d observe=%d saveStates=%d split=%d stopTime=%d",
			multiGroup, observed, saved, split, stopped)
	}
	t.Logf("%d triples: %d multi-group, %d with line observation, %d with state compare, %d split replays, %d truncated",
		triples, multiGroup, observed, saved, split, stopped)
}

// TestDifferentialDenseVsSlab is the acceptance gate of the slab kernel:
// over ≥1000 random triples the slab kernel must reproduce the dense kernel
// bit for bit — Detected, DetTime, Lines (ObserveLines axis), FinalStates
// (SaveStates axis) — across Workers ∈ {1, 4, 8} × SlabLanes ∈ {1, 2, 8}
// plus the adaptive width, including StopTime truncation, arena re-strides
// and event-kernel interleavings on one reused simulator, and split
// InitialStates/TimeOffset continuation replays.
func TestDifferentialDenseVsSlab(t *testing.T) {
	triples := 1000
	if testing.Short() {
		triples = 150
	}
	var multiGroup, multiBatch, observed, saved, split, stopped int
	for i := 0; i < triples; i++ {
		seed := uint64(i) + 0x51ab5 // distinct circuits from the other sweeps
		c := rcg.FromSeed(seed)
		rng := randutil.New(seed ^ 0xd1f7e57).Split()
		seq := RandomStimulus(rng, c.NumInputs())
		faults := SampleFaults(rng, fault.CollapsedUniverse(c))
		cfg := ConfigFromSeed(rng.Uint64(), seq.Len())
		if len(faults) > fsim.GroupSize {
			multiGroup++
		}
		if len(faults) > 2*fsim.GroupSize {
			multiBatch++ // more groups than the smallest tested W: real batching
		}
		if cfg.ObserveLines {
			observed++
		}
		if cfg.SaveStates {
			saved++
		}
		if cfg.SplitContinuation && cfg.StopTime == 0 && seq.Len() >= 2 {
			split++
		}
		if cfg.StopTime > 0 {
			stopped++
		}
		if err := CheckSlab(c, seq, faults, cfg); err != nil {
			t.Fatalf("triple %d: %v\n%s", i, err, Describe(c, seq, faults, cfg))
		}
	}
	if multiGroup == 0 || multiBatch == 0 || observed == 0 || saved == 0 || split == 0 || stopped == 0 {
		t.Fatalf("sweep too narrow: multiGroup=%d multiBatch=%d observe=%d saveStates=%d split=%d stopTime=%d",
			multiGroup, multiBatch, observed, saved, split, stopped)
	}
	t.Logf("%d triples: %d multi-group, %d multi-batch, %d with line observation, %d with state compare, %d split replays, %d truncated",
		triples, multiGroup, multiBatch, observed, saved, split, stopped)
}

// TestDifferentialSlabSuiteCircuits repeats the dense-vs-slab check on the
// real experiment circuits with the full collapsed fault universe and every
// differential axis on at once (the suites' fault universes span multiple
// groups, so every tested W produces genuine multi-lane batches).
func TestDifferentialSlabSuiteCircuits(t *testing.T) {
	names := []string{"s27", "s298", "s344"}
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		c := iscas.MustLoad(name)
		rng := randutil.New(0x51ab ^ uint64(len(name)))
		faults := fault.CollapsedUniverse(c)
		for k, init := range []logic.V{logic.Zero, logic.X} {
			seq := sim.RandomSequence(rng, c.NumInputs(), 24)
			cfg := Config{Init: init, SaveStates: true, SplitContinuation: true, ObserveLines: true}
			if err := CheckSlab(c, seq, faults, cfg); err != nil {
				t.Fatalf("%s (init case %d): %v\n%s", name, k, err, Describe(c, seq, faults, cfg))
			}
		}
	}
}

// TestDifferentialKernelsSuiteCircuits repeats the dense-vs-event check on
// the real experiment circuits with the full collapsed fault universe and
// every differential axis on at once.
func TestDifferentialKernelsSuiteCircuits(t *testing.T) {
	names := []string{"s27", "s298", "s344"}
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		c := iscas.MustLoad(name)
		rng := randutil.New(0xeadbe ^ uint64(len(name)))
		faults := fault.CollapsedUniverse(c)
		for k, init := range []logic.V{logic.Zero, logic.X} {
			seq := sim.RandomSequence(rng, c.NumInputs(), 24)
			cfg := Config{Init: init, SaveStates: true, SplitContinuation: true, ObserveLines: true}
			if err := CheckKernels(c, seq, faults, cfg); err != nil {
				t.Fatalf("%s (init case %d): %v\n%s", name, k, err, Describe(c, seq, faults, cfg))
			}
		}
	}
}

// TestDifferentialTraceDeterminism is the acceptance gate of the
// detection-provenance trace: its canonical byte stream must be identical
// for Workers ∈ {1, 4, 8} and both kernels — on the real experiment circuits
// with the full collapsed fault universe, and across 100 random (circuit,
// fault set, sequence) triples.
func TestDifferentialTraceDeterminism(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s344"} {
		c := iscas.MustLoad(name)
		rng := randutil.New(0x7eace ^ uint64(len(name)))
		faults := fault.CollapsedUniverse(c)
		for k, init := range []logic.V{logic.Zero, logic.X} {
			seq := sim.RandomSequence(rng, c.NumInputs(), 24)
			cfg := Config{Init: init}
			if err := CheckTrace(c, seq, faults, cfg); err != nil {
				t.Fatalf("%s (init case %d): %v\n%s", name, k, err, Describe(c, seq, faults, cfg))
			}
		}
	}
	triples := 100
	if testing.Short() {
		triples = 25
	}
	var multiGroup, stopped int
	for i := 0; i < triples; i++ {
		seed := uint64(i) + 0x7eace5 // distinct circuits from the other sweeps
		c := rcg.FromSeed(seed)
		rng := randutil.New(seed ^ 0xd1f7e57).Split()
		seq := RandomStimulus(rng, c.NumInputs())
		faults := SampleFaults(rng, fault.CollapsedUniverse(c))
		cfg := ConfigFromSeed(rng.Uint64(), seq.Len())
		if len(faults) > fsim.GroupSize {
			multiGroup++
		}
		if cfg.StopTime > 0 {
			stopped++
		}
		if err := CheckTrace(c, seq, faults, cfg); err != nil {
			t.Fatalf("triple %d: %v\n%s", i, err, Describe(c, seq, faults, cfg))
		}
	}
	if multiGroup == 0 || stopped == 0 {
		t.Fatalf("sweep too narrow: multiGroup=%d stopTime=%d", multiGroup, stopped)
	}
	t.Logf("%d triples: %d multi-group, %d truncated", triples, multiGroup, stopped)
}

// TestDifferentialFaultFreeVsSim checks fsim's fault-free machine (slot 0 of
// the OutputHook words) cycle for cycle against the scalar logic simulator.
func TestDifferentialFaultFreeVsSim(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	for i := 0; i < n; i++ {
		seed := uint64(i) + 0x5eed
		c := rcg.FromSeed(seed)
		rng := randutil.New(seed).Split()
		seq := RandomStimulus(rng, c.NumInputs())
		init := []logic.V{logic.Zero, logic.One, logic.X}[rng.Intn(3)]
		if err := CheckFaultFree(c, seq, init); err != nil {
			t.Fatalf("seed %d: %v\nsequence:\n%s\nnetlist:\n%s", seed, err, seq, benchText(c))
		}
	}
}

// TestDescribe smoke-checks the failure-reproduction dump: it must carry the
// run configuration, the stimulus and a parseable netlist so a fuzz failure
// is self-contained.
func TestDescribe(t *testing.T) {
	c := rcg.FromSeed(9)
	rng := randutil.New(9)
	seq := RandomStimulus(rng, c.NumInputs())
	faults := SampleFaults(rng, fault.CollapsedUniverse(c))
	got := Describe(c, seq, faults, Config{Workers: 2})
	for _, want := range []string{"config:", "faults:", "sequence:", "netlist:", "INPUT("} {
		if !strings.Contains(got, want) {
			t.Fatalf("Describe output lacks %q:\n%s", want, got)
		}
	}
}
