package difftest

import (
	"os"
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/rcg"
	"repro/internal/shard"
	"repro/internal/sim"
)

// TestMain gates the test binary: the shard coordinator re-execs the current
// executable as a worker, so when this binary is spawned with the worker
// marker it must enter the protocol loop instead of running the tests.
func TestMain(m *testing.M) {
	shard.MaybeWorker()
	os.Exit(m.Run())
}

// TestDifferentialShardSuiteCircuits runs the sharded-vs-in-process check on
// the real experiment circuits with the full collapsed fault universe (all
// span multiple fault groups, so ShardProcs>1 genuinely fans out) under both
// initialisations, with final-state comparison and StopTime truncation.
func TestDifferentialShardSuiteCircuits(t *testing.T) {
	names := []string{"s27", "s298", "s344"}
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		c := iscas.MustLoad(name)
		rng := randutil.New(0x5a4d ^ uint64(len(name)))
		faults := fault.CollapsedUniverse(c)
		for k, cfg := range []Config{
			{Init: logic.Zero, SaveStates: true},
			{Init: logic.X, StopTime: 11},
		} {
			seq := sim.RandomSequence(rng, c.NumInputs(), 24)
			if err := CheckShard(c, seq, faults, cfg); err != nil {
				t.Fatalf("%s (case %d): %v\n%s", name, k, err, Describe(c, seq, faults, cfg))
			}
		}
	}
}

// TestDifferentialShardRandom is the acceptance gate of the multi-process
// coordinator: over 200 random (circuit, fault set, sequence) triples the
// sharded runs (ShardProcs ∈ {1, 2, 4}) must reproduce the in-process
// outcome bit for bit, and multi-group triples must genuinely dispatch
// ranges to subprocesses. The sweep is smaller than the in-process ones —
// every multi-group triple costs real fork/exec fan-out — but must still
// cover multi-group lists, state comparison and truncation.
func TestDifferentialShardRandom(t *testing.T) {
	triples := 200
	if testing.Short() {
		triples = 25
	}
	var multiGroup, saved, stopped int
	for i := 0; i < triples; i++ {
		seed := uint64(i) + 0x5a4dd // distinct circuits from the other sweeps
		c := rcg.FromSeed(seed)
		rng := randutil.New(seed ^ 0xd1f7e57).Split()
		seq := RandomStimulus(rng, c.NumInputs())
		faults := SampleFaults(rng, fault.CollapsedUniverse(c))
		cfg := ConfigFromSeed(rng.Uint64(), seq.Len())
		if len(faults) > fsim.GroupSize {
			multiGroup++
		}
		if cfg.SaveStates {
			saved++
		}
		if cfg.StopTime > 0 {
			stopped++
		}
		if err := CheckShard(c, seq, faults, cfg); err != nil {
			t.Fatalf("triple %d: %v\n%s", i, err, Describe(c, seq, faults, cfg))
		}
	}
	if multiGroup == 0 || saved == 0 || stopped == 0 {
		t.Fatalf("sweep too narrow: multiGroup=%d saveStates=%d stopTime=%d",
			multiGroup, saved, stopped)
	}
	t.Logf("%d triples: %d multi-group, %d with state compare, %d truncated",
		triples, multiGroup, saved, stopped)
}

// FuzzShardVsDense is the multi-process differential target: for an
// arbitrary decoded triple, runs sharded over worker subprocesses must
// reproduce the in-process dense outcome bit for bit, and single-group or
// unshardable runs must stay in-process.
func FuzzShardVsDense(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3))
	f.Add(uint64(42), uint64(0), uint64(7))
	f.Add(uint64(9001), uint64(17), uint64(5))
	f.Fuzz(func(t *testing.T, circSeed, stimSeed, cfgSeed uint64) {
		c := rcg.FromSeed(circSeed)
		rng := randutil.New(stimSeed)
		seq := RandomStimulus(rng, c.NumInputs())
		faults := SampleFaults(rng, fault.CollapsedUniverse(c))
		cfg := ConfigFromSeed(cfgSeed, seq.Len())
		if err := CheckShard(c, seq, faults, cfg); err != nil {
			t.Fatalf("circSeed=%d stimSeed=%d cfgSeed=%d: %v\n%s",
				circSeed, stimSeed, cfgSeed, err, Describe(c, seq, faults, cfg))
		}
	})
}
