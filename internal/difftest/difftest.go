// Package difftest is the standing differential oracle of this repository:
// it cross-checks the bit-parallel fault simulator (fsim) — sequential and
// parallel, whole runs and split continuation runs — against the deliberately
// naive one-fault-at-a-time reference simulator (ref) on random circuits
// from the rcg generator, and the fault-free machine against the scalar
// logic simulator (sim). The deterministic tests and the Go-native fuzz
// targets in this package are the safety net under which every future
// simulator optimisation (event-driven evaluation, fault dropping, SIMD)
// must land.
//
// The helpers are exported (within internal/) so tests and fuzz targets
// share one stimulus decoder and one comparison routine; everything is
// deterministic in the seeds.
package difftest

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/logic"
	"repro/internal/obsv"
	"repro/internal/randutil"
	"repro/internal/ref"
	"repro/internal/sim"
	"repro/internal/telemetry"

	// Installs the fsim multi-process shard runner so CheckShard's
	// ShardProcs axis exercises real subprocess fan-out. Any test binary
	// using CheckShard must gate itself with shard.MaybeWorker in TestMain.
	_ "repro/internal/shard"
)

// Config selects the differential axes of one triple check.
type Config struct {
	// Init is the common flip-flop initialisation.
	Init logic.V
	// Workers, if > 1, additionally replays the fsim run in parallel and
	// demands a bit-identical outcome.
	Workers int
	// SaveStates compares final flip-flop states (fault-free and per fault).
	SaveStates bool
	// StopTime, if positive, truncates the sequence in both simulators.
	StopTime int
	// SplitContinuation, if set (and StopTime is zero and the sequence has
	// at least 2 vectors), additionally replays the fsim run as a prefix run
	// with SaveStates plus a continuation run via InitialStates/TimeOffset
	// and demands that the merged outcome matches the unsplit oracle.
	SplitContinuation bool
	// ObserveLines turns on internal-line observability recording in the
	// dense-vs-event kernel cross-check (CheckKernels); the ref oracle does
	// not model Lines, so CheckTriple ignores it.
	ObserveLines bool
}

// ConfigFromSeed derives a check configuration from one seed (the decoder
// used by the fuzz targets).
func ConfigFromSeed(seed uint64, seqLen int) Config {
	rng := randutil.New(seed)
	cfg := Config{
		Init:              []logic.V{logic.Zero, logic.One, logic.X}[rng.Intn(3)],
		Workers:           1 + rng.Intn(8),
		SaveStates:        rng.Bool(),
		SplitContinuation: rng.Bool(),
	}
	if rng.Intn(3) == 0 && seqLen > 0 {
		cfg.StopTime = 1 + rng.Intn(seqLen)
	}
	// Drawn last so the older corpus entries keep decoding to the same
	// Init/Workers/SaveStates/SplitContinuation/StopTime they were saved for.
	cfg.ObserveLines = rng.Bool()
	return cfg
}

// RandomStimulus derives a random test sequence for n inputs: 1-32 time
// units, and (half of the time) a sprinkling of X values so the unknown
// paths of both simulators are exercised.
func RandomStimulus(rng *randutil.RNG, n int) *sim.Sequence {
	l := 1 + rng.Intn(32)
	withX := rng.Bool()
	seq := sim.NewSequence(n)
	vec := make([]logic.V, n)
	for u := 0; u < l; u++ {
		for i := range vec {
			if withX && rng.Intn(8) == 0 {
				vec[i] = logic.X
			} else {
				vec[i] = logic.FromBit(rng.Bool())
			}
		}
		seq.Append(vec)
	}
	return seq
}

// SampleFaults derives a fault list from the full collapsed universe: the
// whole list (so multi-group runs and Workers>1 sharding happen), a
// contiguous window, a sparse subset, or a single fault.
func SampleFaults(rng *randutil.RNG, all []fault.Fault) []fault.Fault {
	switch rng.Intn(4) {
	case 0:
		return all
	case 1:
		lo := rng.Intn(len(all))
		hi := lo + 1 + rng.Intn(len(all)-lo)
		return all[lo:hi]
	case 2:
		var out []fault.Fault
		for _, f := range all {
			if rng.Intn(3) == 0 {
				out = append(out, f)
			}
		}
		return out
	default:
		return []fault.Fault{all[rng.Intn(len(all))]}
	}
}

// CompareOutcomes checks that a ref outcome and an fsim outcome are
// bit-identical fault for fault: Detected, DetTime, NumDetected, and (when
// saveStates) every flip-flop of every machine's final state, including the
// fault-free machine in slot 0 of every group.
func CompareOutcomes(c *circuit.Circuit, faults []fault.Fault, r *ref.Outcome, f *fsim.Outcome, saveStates bool) error {
	if len(r.Detected) != len(faults) || len(f.Detected) != len(faults) {
		return fmt.Errorf("outcome sizes %d/%d for %d faults", len(r.Detected), len(f.Detected), len(faults))
	}
	if r.NumDetected != f.NumDetected {
		return fmt.Errorf("NumDetected: ref %d, fsim %d", r.NumDetected, f.NumDetected)
	}
	for i := range faults {
		if r.Detected[i] != f.Detected[i] || r.DetTime[i] != f.DetTime[i] {
			return fmt.Errorf("fault %d (%s): ref detected=%v t=%d, fsim detected=%v t=%d",
				i, faults[i].String(c), r.Detected[i], r.DetTime[i], f.Detected[i], f.DetTime[i])
		}
	}
	if !saveStates {
		return nil
	}
	numGroups := (len(faults) + fsim.GroupSize - 1) / fsim.GroupSize
	if len(f.FinalStates) != numGroups {
		return fmt.Errorf("fsim FinalStates has %d groups, want %d", len(f.FinalStates), numGroups)
	}
	for g := 0; g < numGroups; g++ {
		lo := g * fsim.GroupSize
		hi := min(lo+fsim.GroupSize, len(faults))
		for j, w := range f.FinalStates[g] {
			if got, want := w.Get(0), r.FaultFreeFinal[j]; got != want {
				return fmt.Errorf("group %d ff %d fault-free final state: ref %v, fsim %v", g, j, want, got)
			}
			for k := lo; k < hi; k++ {
				slot := uint(k - lo + 1)
				if got, want := w.Get(slot), r.FinalStates[k][j]; got != want {
					return fmt.Errorf("fault %d (%s) ff %d final state: ref %v, fsim %v",
						k, faults[k].String(c), j, want, got)
				}
			}
		}
	}
	return nil
}

// CheckTriple runs the full differential check for one (circuit, fault set,
// sequence) triple under cfg and returns the first divergence found (nil if
// the oracle, the sequential fsim runs of both kernels, the parallel fsim
// run and the split continuation replay all agree). The kernels are pinned
// explicitly — dense as the ref-locked baseline, event sequential against
// both ref and dense, event for the parallel and continuation replays — so
// the check is invariant to the FSIM_KERNEL environment override.
func CheckTriple(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, cfg Config) error {
	refOut := ref.Run(c, seq, faults, ref.Options{
		Init: cfg.Init, StopTime: cfg.StopTime, SaveStates: cfg.SaveStates,
	})
	seqOut := fsim.Run(c, seq, faults, fsim.Options{
		Init: cfg.Init, StopTime: cfg.StopTime, SaveStates: cfg.SaveStates,
		Kernel: fsim.KernelDense,
	})
	if err := CompareOutcomes(c, faults, refOut, seqOut, cfg.SaveStates); err != nil {
		return fmt.Errorf("ref vs fsim(sequential dense): %w", err)
	}
	evOut := fsim.Run(c, seq, faults, fsim.Options{
		Init: cfg.Init, StopTime: cfg.StopTime, SaveStates: cfg.SaveStates,
		Kernel: fsim.KernelEvent,
	})
	if err := sameFsimOutcome(seqOut, evOut); err != nil {
		return fmt.Errorf("fsim dense vs event: %w", err)
	}
	if err := CompareOutcomes(c, faults, refOut, evOut, cfg.SaveStates); err != nil {
		return fmt.Errorf("ref vs fsim(sequential event): %w", err)
	}
	if cfg.Workers > 1 {
		parOut := fsim.Run(c, seq, faults, fsim.Options{
			Init: cfg.Init, StopTime: cfg.StopTime, SaveStates: cfg.SaveStates,
			Workers: cfg.Workers, Kernel: fsim.KernelEvent,
		})
		if err := sameFsimOutcome(seqOut, parOut); err != nil {
			return fmt.Errorf("fsim sequential vs event Workers=%d: %w", cfg.Workers, err)
		}
		if err := CompareOutcomes(c, faults, refOut, parOut, cfg.SaveStates); err != nil {
			return fmt.Errorf("ref vs fsim(event Workers=%d): %w", cfg.Workers, err)
		}
	}
	if cfg.SplitContinuation && cfg.StopTime == 0 && seq.Len() >= 2 && len(faults) > 0 && Continuable(faults) {
		if err := checkContinuation(c, seq, faults, cfg, refOut); err != nil {
			return fmt.Errorf("split continuation: %w", err)
		}
	}
	return nil
}

// Continuable reports whether the split-continuation axis applies to a fault
// list. A transition fault's launch history (the site's previous-cycle
// nominal value) is per-run machine state that InitialStates does not carry,
// so a split run legitimately differs from a monolithic run around the split
// point — by the documented fsim contract, not by a bug (see DESIGN.md,
// "FaultModel contract"). Stuck-at and bridge machines are fully described
// by their flip-flop states, so their continuations are exact.
func Continuable(faults []fault.Fault) bool {
	for _, f := range faults {
		if f.Kind == fault.KindTransition {
			return false
		}
	}
	return true
}

// CheckKernels is the dense-vs-event differential check for one triple: the
// sequential dense outcome is the baseline, and the event kernel must
// reproduce it bit for bit — Detected, DetTime, NumDetected, Lines (when
// cfg.ObserveLines), FinalStates (when cfg.SaveStates) — sequentially, under
// Workers ∈ {1, 4}, across a dense→event run on one reused simulator (the
// warm-start invalidation path), across back-to-back event runs on that
// simulator (the cross-run warm-start path), and through a split
// InitialStates/TimeOffset continuation replay.
func CheckKernels(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, cfg Config) error {
	opts := func(k fsim.Kernel, workers int) fsim.Options {
		return fsim.Options{
			Init: cfg.Init, StopTime: cfg.StopTime, SaveStates: cfg.SaveStates,
			ObserveLines: cfg.ObserveLines, Workers: workers, Kernel: k,
		}
	}
	want := fsim.Run(c, seq, faults, opts(fsim.KernelDense, 1))
	for _, workers := range []int{1, 4} {
		got := fsim.Run(c, seq, faults, opts(fsim.KernelEvent, workers))
		if err := sameFsimOutcome(want, got); err != nil {
			return fmt.Errorf("dense vs event(Workers=%d): %w", workers, err)
		}
	}
	if err := sameFsimOutcome(want, fsim.Run(c, seq, faults, opts(fsim.KernelDense, 4))); err != nil {
		return fmt.Errorf("dense sequential vs dense(Workers=4): %w", err)
	}
	// One reused simulator: a dense run must invalidate the event kernel's
	// value snapshot, and a further event run must warm-start off the
	// previous event run's snapshot — both bit-identically.
	s := fsim.New(c)
	s.Run(seq, faults, opts(fsim.KernelDense, 1))
	for round := 1; round <= 2; round++ {
		got := s.Run(seq, faults, opts(fsim.KernelEvent, 1))
		if err := sameFsimOutcome(want, got); err != nil {
			return fmt.Errorf("reused simulator, event round %d: %w", round, err)
		}
	}
	if cfg.SplitContinuation && cfg.StopTime == 0 && seq.Len() >= 2 && len(faults) > 0 && Continuable(faults) {
		split := seq.Len() / 2
		pre := fsim.Run(c, seq.Slice(0, split), faults, fsim.Options{
			Init: cfg.Init, SaveStates: true, Kernel: fsim.KernelEvent,
		})
		cont := fsim.Run(c, seq.Slice(split, seq.Len()), faults, fsim.Options{
			Init: cfg.Init, InitialStates: pre.FinalStates, TimeOffset: split,
			Kernel: fsim.KernelEvent,
		})
		for i := range faults {
			det, detTime := pre.Detected[i], pre.DetTime[i]
			if !det && cont.Detected[i] {
				det, detTime = true, cont.DetTime[i]
			}
			if det != want.Detected[i] || (det && detTime != want.DetTime[i]) {
				return fmt.Errorf("event split continuation, fault %d (%s): merged detected=%v t=%d, dense detected=%v t=%d",
					i, faults[i].String(c), det, detTime, want.Detected[i], want.DetTime[i])
			}
		}
	}
	return nil
}

// CheckSlab is the dense-vs-slab differential check for one triple: the
// sequential dense outcome is the baseline and the slab kernel must
// reproduce it bit for bit — Detected, DetTime, NumDetected, Lines (when
// cfg.ObserveLines), FinalStates (when cfg.SaveStates) — across
// Workers ∈ {1, 4, 8} × SlabLanes ∈ {1, 2, 8} (multi-group batches,
// including tail batches narrower than W), under the adaptive W selection
// (SlabLanes=0), across slab runs of different widths on one reused
// simulator (the arena re-stride path) interleaved with an event run (the
// arena-independence path: the slab never touches the event kernel's value
// snapshot), and through a split InitialStates/TimeOffset continuation
// replay with both halves on the slab kernel.
func CheckSlab(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, cfg Config) error {
	opts := func(k fsim.Kernel, workers, lanes int) fsim.Options {
		return fsim.Options{
			Init: cfg.Init, StopTime: cfg.StopTime, SaveStates: cfg.SaveStates,
			ObserveLines: cfg.ObserveLines, Workers: workers, Kernel: k,
			SlabLanes: lanes,
		}
	}
	want := fsim.Run(c, seq, faults, opts(fsim.KernelDense, 1, 0))
	for _, workers := range []int{1, 4, 8} {
		for _, lanes := range []int{1, 2, 8} {
			got := fsim.Run(c, seq, faults, opts(fsim.KernelSlab, workers, lanes))
			if err := sameFsimOutcome(want, got); err != nil {
				return fmt.Errorf("dense vs slab(Workers=%d, W=%d): %w", workers, lanes, err)
			}
		}
	}
	if err := sameFsimOutcome(want, fsim.Run(c, seq, faults, opts(fsim.KernelSlab, 1, 0))); err != nil {
		return fmt.Errorf("dense vs slab(adaptive W): %w", err)
	}
	// One reused simulator: the arena re-strides between widths, an event
	// run in the middle must warm-start unharmed (the slab kernel leaves the
	// event snapshot untouched), and the slab must still match afterwards.
	s := fsim.New(c)
	for round, lanes := range []int{2, 8, 2} {
		got := s.Run(seq, faults, opts(fsim.KernelSlab, 1, lanes))
		if err := sameFsimOutcome(want, got); err != nil {
			return fmt.Errorf("reused simulator, slab round %d (W=%d): %w", round, lanes, err)
		}
	}
	if err := sameFsimOutcome(want, s.Run(seq, faults, opts(fsim.KernelEvent, 1, 0))); err != nil {
		return fmt.Errorf("reused simulator, event after slab: %w", err)
	}
	if err := sameFsimOutcome(want, s.Run(seq, faults, opts(fsim.KernelSlab, 1, 4))); err != nil {
		return fmt.Errorf("reused simulator, slab after event: %w", err)
	}
	if cfg.SplitContinuation && cfg.StopTime == 0 && seq.Len() >= 2 && len(faults) > 0 && Continuable(faults) {
		split := seq.Len() / 2
		pre := fsim.Run(c, seq.Slice(0, split), faults, fsim.Options{
			Init: cfg.Init, SaveStates: true, Kernel: fsim.KernelSlab, SlabLanes: 2,
		})
		cont := fsim.Run(c, seq.Slice(split, seq.Len()), faults, fsim.Options{
			Init: cfg.Init, InitialStates: pre.FinalStates, TimeOffset: split,
			Kernel: fsim.KernelSlab, SlabLanes: 2,
		})
		for i := range faults {
			det, detTime := pre.Detected[i], pre.DetTime[i]
			if !det && cont.Detected[i] {
				det, detTime = true, cont.DetTime[i]
			}
			if det != want.Detected[i] || (det && detTime != want.DetTime[i]) {
				return fmt.Errorf("slab split continuation, fault %d (%s): merged detected=%v t=%d, dense detected=%v t=%d",
					i, faults[i].String(c), det, detTime, want.Detected[i], want.DetTime[i])
			}
		}
	}
	return nil
}

// CheckShard is the multi-process differential check for one triple: the
// in-process dense Workers=1 outcome is the baseline, and the same run
// sharded over ShardProcs ∈ {1, 2, 4} worker subprocesses must reproduce it
// bit for bit — Detected, DetTime, NumDetected, FinalStates (SaveStates
// axis) — including StopTime truncation. ShardProcs=1 is the degenerate
// in-process path by contract; for multi-group fault lists the check also
// demands that ShardProcs>1 really dispatched ranges to subprocesses (via
// the shard.ranges_dispatched counter), so a silently broken worker binary
// cannot turn the sweep vacuous by falling back in-process everywhere.
func CheckShard(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, cfg Config) error {
	opts := func(procs int) fsim.Options {
		return fsim.Options{
			Init: cfg.Init, StopTime: cfg.StopTime, SaveStates: cfg.SaveStates,
			Workers: 1, Kernel: fsim.KernelDense, ShardProcs: procs,
		}
	}
	want := fsim.Run(c, seq, faults, opts(0))
	shardable := len(faults) > fsim.GroupSize
	for _, procs := range []int{1, 2, 4} {
		before := telemetry.Counters()
		got := fsim.Run(c, seq, faults, opts(procs))
		if err := sameFsimOutcome(want, got); err != nil {
			return fmt.Errorf("in-process vs ShardProcs=%d: %w", procs, err)
		}
		d := telemetry.Counters().Sub(before)
		dispatched := d.Get(telemetry.CtrShardRangesDispatched)
		if procs > 1 && shardable && dispatched == 0 {
			return fmt.Errorf("ShardProcs=%d on %d fault groups dispatched no ranges (silent in-process fallback)",
				procs, (len(faults)+fsim.GroupSize-1)/fsim.GroupSize)
		}
		if (procs <= 1 || !shardable) && dispatched != 0 {
			return fmt.Errorf("ShardProcs=%d on a single group dispatched %d ranges (must stay in-process)",
				procs, dispatched)
		}
	}
	return nil
}

// CheckTrace demands the detection-provenance trace (fsim.Options.Trace) be
// byte-identical in its canonical form across all three kernels and Workers
// ∈ {1, 4, 8}, and consistent with the (equally bit-identical) outcome: one
// event per detected fault. This is the determinism contract of
// obsv.Trace.CanonicalBytes — worker and kernel are annotations only.
func CheckTrace(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, cfg Config) error {
	run := func(k fsim.Kernel, workers int) (*obsv.Trace, *fsim.Outcome) {
		tr := obsv.NewTrace()
		out := fsim.Run(c, seq, faults, fsim.Options{
			Init: cfg.Init, StopTime: cfg.StopTime,
			Workers: workers, Kernel: k, Trace: tr,
		})
		return tr, out
	}
	refTrace, refOut := run(fsim.KernelDense, 1)
	want := refTrace.CanonicalBytes()
	if n := refTrace.NumDetections(); n != refOut.NumDetected {
		return fmt.Errorf("trace has %d detection events, outcome detected %d", n, refOut.NumDetected)
	}
	for _, k := range []fsim.Kernel{fsim.KernelDense, fsim.KernelEvent, fsim.KernelSlab} {
		for _, workers := range []int{1, 4, 8} {
			if k == fsim.KernelDense && workers == 1 {
				continue // the reference run above
			}
			tr, out := run(k, workers)
			if err := sameFsimOutcome(refOut, out); err != nil {
				return fmt.Errorf("%v(Workers=%d): %w", k, workers, err)
			}
			if got := tr.CanonicalBytes(); !bytes.Equal(want, got) {
				return fmt.Errorf("%v(Workers=%d): canonical trace differs from dense(Workers=1):\nA:\n%s\nB:\n%s",
					k, workers, want, got)
			}
		}
	}
	return nil
}

// sameFsimOutcome demands two fsim outcomes be bit-identical (the
// determinism guarantee of Options.Workers).
func sameFsimOutcome(a, b *fsim.Outcome) error {
	if !reflect.DeepEqual(a, b) {
		return fmt.Errorf("outcomes differ:\nA: det=%v times=%v n=%d\nB: det=%v times=%v n=%d",
			a.Detected, a.DetTime, a.NumDetected, b.Detected, b.DetTime, b.NumDetected)
	}
	return nil
}

// checkContinuation replays the fsim run split at the sequence midpoint —
// prefix with SaveStates, continuation seeded with InitialStates and
// TimeOffset — and checks the merged detection results against the unsplit
// ref outcome (which by construction saw the whole sequence at once).
func checkContinuation(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, cfg Config, refOut *ref.Outcome) error {
	split := seq.Len() / 2
	pre := fsim.Run(c, seq.Slice(0, split), faults, fsim.Options{
		Init: cfg.Init, SaveStates: true, Workers: cfg.Workers,
		Kernel: fsim.KernelEvent,
	})
	cont := fsim.Run(c, seq.Slice(split, seq.Len()), faults, fsim.Options{
		Init: cfg.Init, InitialStates: pre.FinalStates, TimeOffset: split,
		Workers: cfg.Workers, Kernel: fsim.KernelEvent,
	})
	for i := range faults {
		det, detTime := pre.Detected[i], pre.DetTime[i]
		if !det && cont.Detected[i] {
			det, detTime = true, cont.DetTime[i]
		}
		if det != refOut.Detected[i] || (det && detTime != refOut.DetTime[i]) {
			return fmt.Errorf("fault %d (%s): merged detected=%v t=%d, ref detected=%v t=%d",
				i, faults[i].String(c), det, detTime, refOut.Detected[i], refOut.DetTime[i])
		}
	}
	return nil
}

// CheckFaultFree drives fsim's fault-free machine (slot 0 of the OutputHook
// primary-output words) and compares it cycle for cycle against the scalar
// logic simulator, also demanding every word be legally encoded (no (1,1)
// dual-rail slots).
func CheckFaultFree(c *circuit.Circuit, seq *sim.Sequence, init logic.V) error {
	want := sim.New(c, init).Run(seq)
	// One fault, so exactly one group invokes the hook once per time unit.
	faults := fault.Universe(c)[:1]
	var mismatch error
	cycles := 0
	fsim.Run(c, seq, faults, fsim.Options{
		Init: init,
		OutputHook: func(lo, hi, u int, po []logic.W) {
			cycles++
			if mismatch != nil {
				return
			}
			for k, w := range po {
				if !w.Valid() {
					mismatch = fmt.Errorf("t=%d output %d: illegal dual-rail word %s", u, k, w)
					return
				}
				if got := w.Get(0); got != want[u][k] {
					mismatch = fmt.Errorf("t=%d output %d: fsim fault-free %v, sim %v", u, k, got, want[u][k])
					return
				}
			}
		},
	})
	if mismatch != nil {
		return mismatch
	}
	if cycles != seq.Len() {
		return fmt.Errorf("hook saw %d cycles for a %d-unit sequence", cycles, seq.Len())
	}
	return nil
}

// Describe renders the repro context of a failing triple: circuit netlist,
// stimulus and configuration — enough to paste into a regression test.
func Describe(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, cfg Config) string {
	return fmt.Sprintf("config: %+v\nfaults: %d\nsequence:\n%s\nnetlist:\n%s",
		cfg, len(faults), seq, benchText(c))
}

func benchText(c *circuit.Circuit) string {
	var sb strings.Builder
	if err := bench.Write(&sb, c); err != nil {
		return fmt.Sprintf("<bench render failed: %v>", err)
	}
	return sb.String()
}
