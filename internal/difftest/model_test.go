package difftest

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/rcg"
	"repro/internal/sim"
)

// The cross-model differential sweeps: the transition and bridging fault
// models must agree with the independent scalar oracle (internal/ref) and be
// bit-identical across kernels, worker counts and process counts, exactly
// like stuck-at. Each sweep walks random rcg triples and rotates the
// expensive axes (slab, kernels-reuse, shard fan-out) across triples so
// every axis is exercised many times without multiplying the runtime by the
// product of all axes.

// testModelRandom is the shared sweep body: triples random (circuit, fault
// set, sequence) triples under model m, CheckTriple on every one (ref vs
// dense vs event, Workers pinned to the {1, 4} axis, split continuation),
// with CheckKernels/CheckSlab rotating over the triples and CheckShard (real
// subprocess fan-out, ShardProcs ∈ {1, 2, 4}) on every 10th.
func testModelRandom(t *testing.T, m fault.Model, seedBase uint64, triples int) {
	t.Helper()
	if testing.Short() {
		triples = triples / 8
	}
	var multiGroup, saved, stopped, split, slab, kernels, shard, shardMulti int
	for i := 0; i < triples; i++ {
		seed := uint64(i) + seedBase
		c := rcg.FromSeed(seed)
		rng := randutil.New(seed ^ 0xd1f7e57).Split()
		seq := RandomStimulus(rng, c.NumInputs())
		all := fault.CollapsedUniverseFor(c, m)
		if len(all) == 0 {
			// Tiny circuits can have no bridgeable pair; the emptiness itself
			// is covered by the fault package's unit tests.
			continue
		}
		faults := SampleFaults(rng, all)
		cfg := ConfigFromSeed(rng.Uint64(), seq.Len())
		cfg.Workers = []int{1, 4}[i%2]
		if len(faults) > fsim.GroupSize {
			multiGroup++
		}
		if cfg.SaveStates {
			saved++
		}
		if cfg.StopTime > 0 {
			stopped++
		}
		if cfg.SplitContinuation && cfg.StopTime == 0 && seq.Len() >= 2 && Continuable(faults) {
			split++
		}
		if err := CheckTriple(c, seq, faults, cfg); err != nil {
			t.Fatalf("%s triple %d: %v\n%s", m.Name(), i, err, Describe(c, seq, faults, cfg))
		}
		switch i % 3 {
		case 0:
			kernels++
			if err := CheckKernels(c, seq, faults, cfg); err != nil {
				t.Fatalf("%s triple %d (kernels): %v\n%s", m.Name(), i, err, Describe(c, seq, faults, cfg))
			}
		case 1:
			slab++
			if err := CheckSlab(c, seq, faults, cfg); err != nil {
				t.Fatalf("%s triple %d (slab): %v\n%s", m.Name(), i, err, Describe(c, seq, faults, cfg))
			}
		}
		if i%10 == 5 {
			shard++
			if len(faults) > fsim.GroupSize {
				shardMulti++
			}
			if err := CheckShard(c, seq, faults, cfg); err != nil {
				t.Fatalf("%s triple %d (shard): %v\n%s", m.Name(), i, err, Describe(c, seq, faults, cfg))
			}
		}
	}
	// The split-continuation axis is undefined for transition faults
	// (Continuable): only demand it where it can run at all.
	_, isTransition := m.(fault.Transition)
	if multiGroup == 0 || saved == 0 || stopped == 0 || (split == 0 && !isTransition) ||
		slab == 0 || kernels == 0 || shard == 0 || shardMulti == 0 {
		t.Fatalf("sweep too narrow: multiGroup=%d saveStates=%d stopTime=%d split=%d slab=%d kernels=%d shard=%d shardMulti=%d",
			multiGroup, saved, stopped, split, slab, kernels, shard, shardMulti)
	}
	t.Logf("%s: %d triples: %d multi-group, %d state compare, %d truncated, %d split; %d kernels / %d slab / %d shard (%d multi-group) checks",
		m.Name(), triples, multiGroup, saved, stopped, split, kernels, slab, shard, shardMulti)
}

// TestDifferentialTransitionRandom oracle-locks the launch-on-capture
// transition model on 500 random triples.
func TestDifferentialTransitionRandom(t *testing.T) {
	testModelRandom(t, fault.Transition{}, 0x7a2a51, 500)
}

// TestDifferentialBridgeRandom oracle-locks the 2-node bridging model on 500
// random triples (triples whose circuit has no bridgeable pair are skipped).
func TestDifferentialBridgeRandom(t *testing.T) {
	testModelRandom(t, fault.Bridging{}, 0xb41d6e, 500)
}

// TestDifferentialModelSuiteCircuits runs the full cross-model check stack —
// ref vs dense vs event (CheckTriple), kernel reuse and Workers axes
// (CheckKernels), the slab resolution path (CheckSlab) and real subprocess
// fan-out (CheckShard) — on the experiment circuits with each model's full
// collapsed universe under both initialisations.
func TestDifferentialModelSuiteCircuits(t *testing.T) {
	names := []string{"s27", "s298", "s344"}
	if testing.Short() {
		names = names[:2]
	}
	models := []fault.Model{fault.Transition{}, fault.Bridging{}}
	for _, name := range names {
		c := iscas.MustLoad(name)
		for _, m := range models {
			faults := fault.CollapsedUniverseFor(c, m)
			if len(faults) == 0 {
				t.Fatalf("%s: empty %s universe", name, m.Name())
			}
			rng := randutil.New(0x30de1 ^ uint64(len(name)*7+len(m.Name())))
			for k, cfg := range []Config{
				{Init: logic.Zero, Workers: 4, SaveStates: true, SplitContinuation: true},
				{Init: logic.X, Workers: 1, StopTime: 9},
			} {
				seq := sim.RandomSequence(rng, c.NumInputs(), 24)
				if err := CheckTriple(c, seq, faults, cfg); err != nil {
					t.Fatalf("%s %s (case %d): %v\n%s", name, m.Name(), k, err, Describe(c, seq, faults, cfg))
				}
				if err := CheckKernels(c, seq, faults, cfg); err != nil {
					t.Fatalf("%s %s (case %d, kernels): %v\n%s", name, m.Name(), k, err, Describe(c, seq, faults, cfg))
				}
				if err := CheckSlab(c, seq, faults, cfg); err != nil {
					t.Fatalf("%s %s (case %d, slab): %v\n%s", name, m.Name(), k, err, Describe(c, seq, faults, cfg))
				}
				if err := CheckShard(c, seq, faults, cfg); err != nil {
					t.Fatalf("%s %s (case %d, shard): %v\n%s", name, m.Name(), k, err, Describe(c, seq, faults, cfg))
				}
			}
		}
	}
}

// TestDifferentialModelTraceDeterminism pins the detection-provenance trace
// contract for the new models: canonical trace bytes identical across all
// three kernels and Workers ∈ {1, 4, 8}.
func TestDifferentialModelTraceDeterminism(t *testing.T) {
	c := iscas.MustLoad("s298")
	for _, m := range []fault.Model{fault.Transition{}, fault.Bridging{}} {
		faults := fault.CollapsedUniverseFor(c, m)
		rng := randutil.New(0x7eace5 ^ uint64(len(m.Name())))
		seq := sim.RandomSequence(rng, c.NumInputs(), 20)
		cfg := Config{Init: logic.Zero}
		if err := CheckTrace(c, seq, faults, cfg); err != nil {
			t.Fatalf("%s: %v\n%s", m.Name(), err, Describe(c, seq, faults, cfg))
		}
	}
}

// modelStimulus decodes the (stimulus, fault sample, config) part of a fuzz
// input for a fixed model — the model is hardcoded per fuzz target so the
// committed corpora stay valid independently of model-list evolution.
func modelCheck(t *testing.T, m fault.Model, circSeed, stimSeed, cfgSeed uint64) {
	t.Helper()
	c := rcg.FromSeed(circSeed)
	rng := randutil.New(stimSeed)
	seq := RandomStimulus(rng, c.NumInputs())
	all := fault.CollapsedUniverseFor(c, m)
	if len(all) == 0 {
		return
	}
	faults := SampleFaults(rng, all)
	cfg := ConfigFromSeed(cfgSeed, seq.Len())
	if err := CheckTriple(c, seq, faults, cfg); err != nil {
		t.Fatalf("%s circSeed=%d stimSeed=%d cfgSeed=%d: %v\n%s",
			m.Name(), circSeed, stimSeed, cfgSeed, err, Describe(c, seq, faults, cfg))
	}
}

// FuzzTransitionVsRef is the transition-model differential target: for an
// arbitrary decoded triple carrying launch-on-capture transition faults, the
// naive scalar oracle and the bit-parallel simulator (dense and event
// kernels, Workers axis, split continuation) must agree bit for bit.
func FuzzTransitionVsRef(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3))
	f.Add(uint64(42), uint64(0), uint64(7))
	f.Add(uint64(9001), uint64(17), uint64(5))
	f.Fuzz(func(t *testing.T, circSeed, stimSeed, cfgSeed uint64) {
		modelCheck(t, fault.Transition{}, circSeed, stimSeed, cfgSeed)
	})
}

// FuzzBridgeVsRef is the bridging-model differential target: for an
// arbitrary decoded triple carrying 2-node wired-AND/wired-OR bridge faults,
// the naive scalar oracle and the bit-parallel simulator must agree bit for
// bit (the dense two-pass injection and the event kernel's per-group dense
// delegation are both on this path).
func FuzzBridgeVsRef(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3))
	f.Add(uint64(42), uint64(0), uint64(7))
	f.Add(uint64(9001), uint64(17), uint64(5))
	f.Fuzz(func(t *testing.T, circSeed, stimSeed, cfgSeed uint64) {
		modelCheck(t, fault.Bridging{}, circSeed, stimSeed, cfgSeed)
	})
}
