package difftest

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/check"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/rcg"
	"repro/internal/sim"
	"repro/internal/verilog"
	"repro/internal/wgen"
)

// FuzzRefVsFsim is the main differential target: an arbitrary (circuit,
// fault set, sequence, run configuration) quadruple, decoded from three
// seeds, must produce bit-identical outcomes from the naive oracle and the
// bit-parallel simulator — sequentially, with Workers>1, and as a split
// continuation replay.
func FuzzRefVsFsim(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3))
	f.Add(uint64(42), uint64(0), uint64(7))
	f.Add(uint64(12345), uint64(999), uint64(1))
	f.Fuzz(func(t *testing.T, circSeed, stimSeed, cfgSeed uint64) {
		c := rcg.FromSeed(circSeed)
		rng := randutil.New(stimSeed)
		seq := RandomStimulus(rng, c.NumInputs())
		faults := SampleFaults(rng, fault.CollapsedUniverse(c))
		cfg := ConfigFromSeed(cfgSeed, seq.Len())
		if err := CheckTriple(c, seq, faults, cfg); err != nil {
			t.Fatalf("circSeed=%d stimSeed=%d cfgSeed=%d: %v\n%s",
				circSeed, stimSeed, cfgSeed, err, Describe(c, seq, faults, cfg))
		}
	})
}

// FuzzEventVsDense is the kernel-differential target: for an arbitrary
// decoded triple, the event-driven kernel must reproduce the dense kernel
// bit for bit — Detected, DetTime, Lines, FinalStates — sequentially, under
// Workers ∈ {1, 4}, across reused-simulator dense→event and event→event
// runs, and through a split InitialStates/TimeOffset continuation replay.
func FuzzEventVsDense(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3))
	f.Add(uint64(42), uint64(0), uint64(7))
	f.Add(uint64(9001), uint64(17), uint64(5))
	f.Fuzz(func(t *testing.T, circSeed, stimSeed, cfgSeed uint64) {
		c := rcg.FromSeed(circSeed)
		rng := randutil.New(stimSeed)
		seq := RandomStimulus(rng, c.NumInputs())
		faults := SampleFaults(rng, fault.CollapsedUniverse(c))
		cfg := ConfigFromSeed(cfgSeed, seq.Len())
		if err := CheckKernels(c, seq, faults, cfg); err != nil {
			t.Fatalf("circSeed=%d stimSeed=%d cfgSeed=%d: %v\n%s",
				circSeed, stimSeed, cfgSeed, err, Describe(c, seq, faults, cfg))
		}
	})
}

// FuzzSlabVsDense is the slab-kernel differential target: for an arbitrary
// decoded triple, the multi-group slab kernel must reproduce the dense
// kernel bit for bit — Detected, DetTime, Lines, FinalStates — across
// Workers ∈ {1, 4, 8} × SlabLanes ∈ {1, 2, 8} plus the adaptive width,
// across re-strided and event-interleaved runs on one reused simulator, and
// through a split InitialStates/TimeOffset continuation replay.
func FuzzSlabVsDense(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3))
	f.Add(uint64(42), uint64(0), uint64(7))
	f.Add(uint64(9001), uint64(17), uint64(5))
	f.Fuzz(func(t *testing.T, circSeed, stimSeed, cfgSeed uint64) {
		c := rcg.FromSeed(circSeed)
		rng := randutil.New(stimSeed)
		seq := RandomStimulus(rng, c.NumInputs())
		faults := SampleFaults(rng, fault.CollapsedUniverse(c))
		cfg := ConfigFromSeed(cfgSeed, seq.Len())
		if err := CheckSlab(c, seq, faults, cfg); err != nil {
			t.Fatalf("circSeed=%d stimSeed=%d cfgSeed=%d: %v\n%s",
				circSeed, stimSeed, cfgSeed, err, Describe(c, seq, faults, cfg))
		}
	})
}

// FuzzFaultFreeVsSim cross-checks fsim's fault-free slot against the scalar
// logic simulator on random circuits and stimuli (including X inputs and X
// initialisation).
func FuzzFaultFreeVsSim(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(77), uint64(0))
	f.Fuzz(func(t *testing.T, circSeed, stimSeed uint64) {
		c := rcg.FromSeed(circSeed)
		rng := randutil.New(stimSeed)
		seq := RandomStimulus(rng, c.NumInputs())
		init := []logic.V{logic.Zero, logic.One, logic.X}[rng.Intn(3)]
		if err := CheckFaultFree(c, seq, init); err != nil {
			t.Fatalf("circSeed=%d stimSeed=%d init=%v: %v\nsequence:\n%s\nnetlist:\n%s",
				circSeed, stimSeed, init, err, seq, benchText(c))
		}
	})
}

// decodeSubs derives 1-4 random binary subsequences of length 1-6 from an
// RNG; equalLen forces a common length (the SynthesizeFSM contract).
func decodeSubs(rng *randutil.RNG, n int, equalLen bool) []string {
	l := 1 + rng.Intn(6)
	subs := make([]string, n)
	for k := range subs {
		if !equalLen {
			l = 1 + rng.Intn(6)
		}
		var sb strings.Builder
		for j := 0; j < l; j++ {
			if rng.Bool() {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		subs[k] = sb.String()
	}
	return subs
}

// FuzzWgenVsExpansion checks the synthesized weight-generator hardware
// against the direct software expansion: a weight FSM must reproduce α^r on
// every output, and a full Figure 1 generator must reproduce every
// assignment's GenSequence window; the synthesized netlist must also survive
// a .bench round trip behaviourally intact (via check.Equivalent).
func FuzzWgenVsExpansion(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(31), uint64(8))
	f.Fuzz(func(t *testing.T, subsSeed, genSeed uint64) {
		rng := randutil.New(subsSeed)
		subs := decodeSubs(rng, 1+rng.Intn(4), true)
		c, fsm, err := wgen.SynthesizeFSM("fuzz", subs)
		if err != nil {
			t.Fatalf("SynthesizeFSM(%q): %v", subs, err)
		}
		s := sim.New(c, logic.Zero)
		total := 3*fsm.Len + 2
		for u := 0; u < total; u++ {
			out := s.Step([]logic.V{logic.One})
			for k, alpha := range subs {
				if want := logic.FromBit(alpha[u%len(alpha)] == '1'); out[k] != want {
					t.Fatalf("FSM(%q) t=%d output %d: hardware %v, α^r %v", subs, u, k, out[k], want)
				}
			}
		}
		checkRoundTrip(t, c)

		// Full generator: 1-3 assignments over 1-4 inputs, window length 2-12.
		grng := randutil.New(genSeed)
		numIn := 1 + grng.Intn(4)
		omega := make([]core.Assignment, 1+grng.Intn(3))
		for j := range omega {
			omega[j] = core.Assignment{Subs: decodeSubs(grng, numIn, false)}
		}
		lg := 2 + grng.Intn(11)
		g, err := wgen.Synthesize("fuzzgen", omega, lg)
		if err != nil {
			t.Fatalf("Synthesize(%v, lg=%d): %v", omega, lg, err)
		}
		gs := sim.New(g.Circuit, logic.Zero)
		for j, a := range omega {
			want := a.GenSequence(lg)
			for u := 0; u < lg; u++ {
				out := gs.Step([]logic.V{logic.One})
				for i := range a.Subs {
					if out[i] != want.At(u, i) {
						t.Fatalf("generator %v lg=%d: window %d t=%d input %d: hardware %v, software %v",
							omega, lg, j, u, i, out[i], want.At(u, i))
					}
				}
			}
		}
	})
}

// FuzzBenchRoundTrip writes a random circuit as .bench text, parses it back
// and demands behavioural equivalence and identical statistics; the Verilog
// emitter must accept the same netlist.
func FuzzBenchRoundTrip(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(7))
	f.Add(uint64(1234567))
	f.Fuzz(func(t *testing.T, circSeed uint64) {
		c := rcg.FromSeed(circSeed)
		checkRoundTrip(t, c)
		var vb strings.Builder
		if err := verilog.Write(&vb, c); err != nil {
			t.Fatalf("circSeed=%d: verilog emit: %v\nnetlist:\n%s", circSeed, err, benchText(c))
		}
		if !strings.Contains(vb.String(), "module ") {
			t.Fatalf("circSeed=%d: verilog output lacks a module header", circSeed)
		}
	})
}

// checkRoundTrip parses the .bench rendering of c back and checks stats and
// behavioural equivalence under common random stimulus.
func checkRoundTrip(t *testing.T, c *circuit.Circuit) {
	t.Helper()
	text := benchText(c)
	r, err := bench.Parse(c.Name, strings.NewReader(text))
	if err != nil {
		t.Fatalf("round trip parse: %v\nbench:\n%s", err, text)
	}
	if r.Stats() != c.Stats() {
		t.Fatalf("round trip stats: %v vs %v\nbench:\n%s", r.Stats(), c.Stats(), text)
	}
	if err := check.Equivalent(c, r, check.Options{Sequences: 2, Length: 64, Init: logic.Zero}); err != nil {
		t.Fatalf("round trip behaviour: %v\nbench:\n%s", err, text)
	}
}
