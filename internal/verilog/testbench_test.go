package verilog

import (
	"strings"
	"testing"

	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
)

func TestWriteTestbenchStructure(t *testing.T) {
	c := iscas.MustLoad("s298")
	seq := sim.RandomSequence(randutil.New(1), c.NumInputs(), 5)
	var b strings.Builder
	if err := WriteTestbench(&b, c, seq, logic.Zero); err != nil {
		t.Fatal(err)
	}
	v := b.String()
	for _, want := range []string{
		"module s298_tb;",
		"s298 dut(.clk(clk), .reset(reset)",
		"always #5 clk = ~clk;",
		"task check",
		"$finish;",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q", want)
		}
	}
	// One @(negedge clk) per vector plus the reset release.
	if n := strings.Count(v, "@(negedge clk);"); n != seq.Len()+1 {
		t.Errorf("%d clock waits for %d vectors", n, seq.Len())
	}
	// Expected values must be binary literals.
	if strings.Contains(v, "1'bX") {
		t.Error("X leaked into expected values")
	}
}

func TestWriteTestbenchChecksCount(t *testing.T) {
	// With reset-to-0 all outputs are binary, so every (cycle, output) pair
	// must be checked.
	c := iscas.MustLoad("s298")
	seq := sim.RandomSequence(randutil.New(2), c.NumInputs(), 7)
	var b strings.Builder
	if err := WriteTestbench(&b, c, seq, logic.Zero); err != nil {
		t.Fatal(err)
	}
	want := seq.Len() * c.NumOutputs()
	if n := strings.Count(b.String(), "    check("); n != want {
		t.Errorf("%d checks, want %d", n, want)
	}
}

func TestWriteTestbenchRejectsXInit(t *testing.T) {
	c := iscas.MustLoad("s27")
	seq := sim.RandomSequence(randutil.New(3), c.NumInputs(), 4)
	var b strings.Builder
	if err := WriteTestbench(&b, c, seq, logic.X); err == nil {
		t.Fatal("X init accepted")
	}
}

func TestWriteTestbenchRejectsWidthMismatch(t *testing.T) {
	c := iscas.MustLoad("s27")
	seq := sim.RandomSequence(randutil.New(4), 2, 4)
	var b strings.Builder
	if err := WriteTestbench(&b, c, seq, logic.Zero); err == nil {
		t.Fatal("width mismatch accepted")
	}
}
