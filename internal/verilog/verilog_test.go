package verilog

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/iscas"
	"repro/internal/wgen"
)

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"G17":    "G17",
		"w3_s_1": "w3_s_1",
		"9lives": "n9lives",
		"a.b":    "ax2eb",
		"":       "n",
		"module": "module_",
		"assign": "assign_",
		"clk2":   "clk2",
	}
	for in, want := range cases {
		if got := Sanitize(in); got != want {
			t.Errorf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteS27(t *testing.T) {
	c := iscas.MustLoad("s27")
	var b strings.Builder
	if err := Write(&b, c); err != nil {
		t.Fatal(err)
	}
	v := b.String()
	for _, want := range []string{
		"module s27(clk, reset, G0, G1, G2, G3, G17);",
		"input G0;",
		"output G17;",
		"reg G5;",
		"assign G14 = ~G0;",
		"assign G8 = G14 & G6;",
		"assign G9 = ~(G16 & G15);",
		"assign G10 = ~(G14 | G11);",
		"G5 <= G10;",
		"G5 <= 1'b0;",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q in output:\n%s", want, v)
		}
	}
	// Every gate appears exactly once as an assign target.
	if n := strings.Count(v, "assign G17 ="); n != 1 {
		t.Errorf("G17 assigned %d times", n)
	}
}

func TestWriteInputAsOutput(t *testing.T) {
	b := circuit.NewBuilder("io")
	b.Input("a")
	b.Gate("g", circuit.Not, "a")
	b.Output("a")
	b.Output("g")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if !strings.Contains(v, "output a_po;") || !strings.Contains(v, "assign a_po = a;") {
		t.Fatalf("input-as-output not rewired:\n%s", v)
	}
}

func TestWriteDFFAsOutput(t *testing.T) {
	b := circuit.NewBuilder("ffo")
	b.Input("a")
	b.DFF("q", "g")
	b.Gate("g", circuit.Buf, "a")
	b.Output("q")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if !strings.Contains(v, "output q_po;") || !strings.Contains(v, "assign q_po = q;") {
		t.Fatalf("dff-as-output not rewired:\n%s", v)
	}
}

func TestWriteAllGateTypes(t *testing.T) {
	b := circuit.NewBuilder("gates")
	b.Input("a")
	b.Input("b")
	b.Gate("g_and", circuit.And, "a", "b")
	b.Gate("g_nand", circuit.Nand, "a", "b")
	b.Gate("g_or", circuit.Or, "a", "b")
	b.Gate("g_nor", circuit.Nor, "a", "b")
	b.Gate("g_xor", circuit.Xor, "a", "b")
	b.Gate("g_xnor", circuit.Xnor, "a", "b")
	b.Gate("g_buf", circuit.Buf, "a")
	b.Gate("g_not", circuit.Not, "a")
	b.Gate("top", circuit.Or, "g_and", "g_nand", "g_or", "g_nor", "g_xor", "g_xnor", "g_buf", "g_not")
	b.Output("top")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{
		"a & b", "~(a & b)", "a | b", "~(a | b)", "a ^ b", "~(a ^ b)",
		"assign g_buf = a;", "assign g_not = ~a;",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q", want)
		}
	}
	// No DFFs: no always block.
	if strings.Contains(v, "always") {
		t.Error("always block without flip-flops")
	}
}

func TestWriteSynthesizedGenerator(t *testing.T) {
	omega := []core.Assignment{
		{Subs: []string{"01", "0", "100", "1"}},
		{Subs: []string{"100", "00", "01", "100"}},
	}
	g, err := wgen.Synthesize("gen27", omega, 12)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, g.Circuit); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if !strings.Contains(v, "module gen27(") {
		t.Fatal("module header missing")
	}
	// One output per CUT input.
	for _, po := range []string{"I0", "I1", "I2", "I3"} {
		if !strings.Contains(v, "output "+po) {
			t.Errorf("missing output %s", po)
		}
	}
	// The flip-flop count must match the netlist.
	if n := strings.Count(v, "  reg "); n != g.NumDFFs {
		t.Errorf("%d reg declarations for %d flip-flops", n, g.NumDFFs)
	}
}

func TestWriteDeterministic(t *testing.T) {
	c := iscas.MustLoad("s298")
	var a, b strings.Builder
	if err := Write(&a, c); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, c); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("output not deterministic")
	}
}
