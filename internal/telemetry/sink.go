package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SpanEvent is one completed span, as delivered to sinks and serialised to
// JSON lines.
type SpanEvent struct {
	// Span is the slash-separated phase path, e.g. "pipeline/atpg/random".
	Span string `json:"span"`
	// Start is the span's opening time.
	Start time.Time `json:"start"`
	// DurationNS is the wall-clock duration in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// AllocBytes is the heap allocated process-wide while the span was open.
	AllocBytes uint64 `json:"alloc_bytes"`
	// Counters holds the nonzero hot-path counter deltas observed by the
	// span, keyed by counter name.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Duration returns the span duration.
func (e SpanEvent) Duration() time.Duration { return time.Duration(e.DurationNS) }

// Sink consumes span events. Implementations must be safe for use from the
// recorder's lock (they are invoked serially per recorder).
type Sink interface {
	Record(SpanEvent)
}

// JSONLSink writes one JSON object per span event to an io.Writer (the
// -metrics file format). Create it with NewJSONLSink and Close it when done;
// the first write error is sticky and returned by Close.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	c   io.Closer
	err error
}

// NewJSONLSink returns a sink encoding events to w as JSON lines. If w is
// also an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{enc: json.NewEncoder(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Record writes one event as one JSON line.
func (s *JSONLSink) Record(ev SpanEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Close releases the underlying writer and reports the first write error.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c != nil {
		if err := s.c.Close(); err != nil && s.err == nil {
			s.err = err
		}
		s.c = nil
	}
	return s.err
}

// ReadJSONL parses a JSON-lines metrics stream (as written by JSONLSink) and
// returns the per-phase totals in first-seen order — the ingestion side of
// the -metrics file format, used by `wbist report`.
func ReadJSONL(r io.Reader) ([]PhaseStats, error) {
	agg := NewAggregator()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev SpanEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("telemetry: metrics line %d: %w", lineNo, err)
		}
		agg.Record(ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return agg.Phases(), nil
}

// PhaseStats is the aggregated cost of one span path.
type PhaseStats struct {
	// Span is the slash-separated phase path.
	Span string `json:"span"`
	// Count is the number of times the phase ran.
	Count int `json:"count"`
	// WallNS is the total wall-clock time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// AllocBytes is the total heap allocated across runs.
	AllocBytes uint64 `json:"alloc_bytes"`
	// Counters sums the per-span counter deltas.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Wall returns the total wall-clock time.
func (p PhaseStats) Wall() time.Duration { return time.Duration(p.WallNS) }

// Aggregator accumulates span events into per-path totals, preserving
// first-seen order. The zero value is not usable; use NewAggregator.
type Aggregator struct {
	mu    sync.Mutex
	bykey map[string]*PhaseStats
	order []string
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{bykey: map[string]*PhaseStats{}}
}

// Record folds one event into the totals.
func (a *Aggregator) Record(ev SpanEvent) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := a.bykey[ev.Span]
	if p == nil {
		p = &PhaseStats{Span: ev.Span}
		a.bykey[ev.Span] = p
		a.order = append(a.order, ev.Span)
	}
	p.Count++
	p.WallNS += ev.DurationNS
	p.AllocBytes += ev.AllocBytes
	for name, v := range ev.Counters {
		if p.Counters == nil {
			p.Counters = map[string]int64{}
		}
		p.Counters[name] += v
	}
}

// Phases returns a copy of the totals in first-seen order.
func (a *Aggregator) Phases() []PhaseStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]PhaseStats, 0, len(a.order))
	for _, k := range a.order {
		p := *a.bykey[k]
		if p.Counters != nil {
			m := make(map[string]int64, len(p.Counters))
			for name, v := range p.Counters {
				m[name] = v
			}
			p.Counters = m
		}
		out = append(out, p)
	}
	return out
}
