// Package telemetry is the zero-dependency instrumentation layer of the
// pipeline: hierarchical phase spans (wall clock + heap allocations),
// process-wide atomic counters on the hot paths, and pluggable sinks
// (JSON-lines export, in-memory aggregation).
//
// The design goal is that instrumentation costs nothing when nobody is
// looking. Counters are plain atomic adds, batched by the hot loops (one add
// per fault-group pass, not per gate). Spans are created through a
// *Recorder; every span method is safe on a nil receiver and a nil recorder
// produces nil spans, so instrumented code needs no conditionals and a
// disabled pipeline allocates nothing.
package telemetry

import "sync/atomic"

// CounterID identifies one of the fixed process-wide counters.
type CounterID int

// The hot-path counters. They are process-wide (not per-recorder) so that
// the innermost loops pay a single atomic add and no pointer chase.
const (
	// CtrGateEvals counts gate evaluations in the bit-parallel fault
	// simulator (one per gate per time unit per fault-group pass).
	CtrGateEvals CounterID = iota
	// CtrVectors counts input vectors simulated (per fault-group pass).
	CtrVectors
	// CtrGroupPasses counts fault-group passes of the simulator.
	CtrGroupPasses
	// CtrFaultsDropped counts faults dropped (detected and removed) per
	// simulation window.
	CtrFaultsDropped
	// CtrCandidates counts candidate sequences fault-simulated by the
	// weight-selection procedure.
	CtrCandidates
	// CtrBacktracks counts PODEM decision backtracks.
	CtrBacktracks
	// CtrEventsScheduled counts gate re-evaluation events enqueued by the
	// event-driven kernel (one per gate per time unit it was scheduled).
	CtrEventsScheduled
	// CtrGatesSkipped counts gate evaluations the event-driven kernel
	// avoided relative to a dense pass: gate_evals + gates_skipped over an
	// event-kernel run equals what CtrGateEvals alone would report dense.
	CtrGatesSkipped
	// CtrConeHits counts scheduled events that landed inside the current
	// fault group's union fanout cone (events outside the cone propagate
	// fault-free value changes only).
	CtrConeHits
	// CtrGroupsCancelled counts fault groups skipped because the run's
	// context was cancelled (the observable footprint of job cancellation:
	// workers stopped claiming these groups).
	CtrGroupsCancelled
	// CtrSweepFallbacks counts time units the event-driven kernel simulated
	// in its full-sweep fallback mode instead of draining the worklist
	// (cold-start sweeps included). A run whose sweep_fallbacks approaches
	// its vectors never left sweep mode — the "events_scheduled=0" rows of
	// the kernel benchmarks are this fallback, now visible in metrics.
	CtrSweepFallbacks
	// CtrSlabPasses counts multi-group slab passes of the slab kernel (one
	// per batch of up to SlabLanes fault groups walked in a single pass).
	CtrSlabPasses
	// CtrSlabLanesIdle counts idle lane-cycles of the slab kernel: time
	// units a lane kept being evaluated after its own fault group had
	// already fully detected (the batch runs until every lane is done).
	CtrSlabLanesIdle
	// CtrShardRangesDispatched counts fault-group ranges handed to shard
	// worker subprocesses (first dispatches and re-dispatches alike).
	CtrShardRangesDispatched
	// CtrShardRangesReassigned counts ranges requeued after their worker
	// died or stalled: the unfinished tail of each lost range, handed to a
	// respawned or surviving worker (or simulated in-process as the last
	// resort).
	CtrShardRangesReassigned
	// CtrShardWorkersLost counts shard worker subprocesses that exited
	// unexpectedly or were killed after missing the progress deadline.
	CtrShardWorkersLost

	// NumCounters is the number of defined counters.
	NumCounters
)

var counterNames = [NumCounters]string{
	CtrGateEvals:       "fsim.gate_evals",
	CtrVectors:         "fsim.vectors",
	CtrGroupPasses:     "fsim.group_passes",
	CtrFaultsDropped:   "fsim.faults_dropped",
	CtrCandidates:      "core.candidates_scored",
	CtrBacktracks:      "podem.backtracks",
	CtrEventsScheduled: "fsim.events_scheduled",
	CtrGatesSkipped:    "fsim.gates_skipped",
	CtrConeHits:        "fsim.cone_hits",
	CtrGroupsCancelled: "fsim.groups_cancelled",
	CtrSweepFallbacks:  "fsim.sweep_fallbacks",
	CtrSlabPasses:      "fsim.slab_passes",
	CtrSlabLanesIdle:   "fsim.slab_lanes_idle",

	CtrShardRangesDispatched: "shard.ranges_dispatched",
	CtrShardRangesReassigned: "shard.ranges_reassigned",
	CtrShardWorkersLost:      "shard.workers_lost",
}

// Name returns the exported name of a counter.
func (id CounterID) Name() string { return counterNames[id] }

// counterByName inverts counterNames for wire-format folding (a shard
// coordinator receives worker counter deltas keyed by exported name).
var counterByName = func() map[string]CounterID {
	m := make(map[string]CounterID, NumCounters)
	for id, name := range counterNames {
		m[name] = CounterID(id)
	}
	return m
}()

// Lookup resolves an exported counter name back to its CounterID. Unknown
// names report ok=false so wire formats can carry counters from newer (or
// older) binaries without breaking the reader.
func Lookup(name string) (CounterID, bool) {
	id, ok := counterByName[name]
	return id, ok
}

var counters [NumCounters]atomic.Int64

// Add increments a counter. Hot paths batch their increments (e.g. once per
// fault-group pass), so this is a single atomic add on their scale.
func Add(id CounterID, n int64) { counters[id].Add(n) }

// Snapshot is a point-in-time copy of every counter.
type Snapshot [NumCounters]int64

// Counters returns the current value of every counter.
func Counters() Snapshot {
	var s Snapshot
	for i := range s {
		s[i] = counters[i].Load()
	}
	return s
}

// Sub returns the per-counter difference s - prev.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	var d Snapshot
	for i := range s {
		d[i] = s[i] - prev[i]
	}
	return d
}

// Get returns the value of one counter in the snapshot.
func (s Snapshot) Get(id CounterID) int64 { return s[id] }

// Map returns the nonzero counters keyed by name (nil if all are zero).
func (s Snapshot) Map() map[string]int64 {
	var m map[string]int64
	for i, v := range s {
		if v == 0 {
			continue
		}
		if m == nil {
			m = make(map[string]int64, len(s))
		}
		m[counterNames[i]] = v
	}
	return m
}
