package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Prometheus text-format (0.0.4) exposition of the process-wide telemetry:
// the hot-path counters as monotonically increasing counters, completed span
// durations as per-span histograms, and explicitly published gauges (e.g.
// the pipeline's running fault coverage). Served under /metrics by
// ServeDebug so long runs are scrapeable.
//
// The histogram and gauge state is process-wide, like the counters: every
// Recorder feeds it as spans end (see Recorder.emit), so one scrape endpoint
// observes all recorders of the process.

// promBuckets are the span-duration histogram upper bounds in seconds,
// spanning sub-millisecond fault-group passes to multi-minute table sweeps.
var promBuckets = [...]float64{0.001, 0.01, 0.1, 1, 10, 100}

// histogram is one span path's duration distribution (non-cumulative bucket
// counts; cumulated at exposition time as Prometheus requires).
type histogram struct {
	counts [len(promBuckets) + 1]uint64
	sum    float64
}

var (
	promMu     sync.Mutex
	promHists  = map[string]*histogram{}
	promGauges = map[string]float64{}
)

// observeSpan folds one completed span into its path's duration histogram.
func observeSpan(ev SpanEvent) {
	s := ev.Duration().Seconds()
	promMu.Lock()
	h := promHists[ev.Span]
	if h == nil {
		h = &histogram{}
		promHists[ev.Span] = h
	}
	idx := len(promBuckets)
	for i, ub := range promBuckets {
		if s <= ub {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.sum += s
	promMu.Unlock()
}

// SetGauge publishes (or updates) a process-wide gauge, exposed as
// wbist_<name> in the Prometheus exposition. The pipeline uses it for the
// running fault coverage.
func SetGauge(name string, v float64) {
	promMu.Lock()
	promGauges[name] = v
	promMu.Unlock()
}

// resetPromState clears histograms and gauges (golden tests only; the
// counters are reset separately by the caller comparing snapshots).
func resetPromState() {
	promMu.Lock()
	promHists = map[string]*histogram{}
	promGauges = map[string]float64{}
	promMu.Unlock()
}

// promName maps an internal dotted/slashed name to a Prometheus metric name
// component ("fsim.gate_evals" → "fsim_gate_evals").
func promName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// WritePrometheus writes the exposition in the Prometheus text format
// (version 0.0.4). Output is deterministic: metrics and label values appear
// in sorted order.
func WritePrometheus(w io.Writer) {
	snap := Counters()
	for id := CounterID(0); id < NumCounters; id++ {
		name := "wbist_" + promName(id.Name()) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, snap.Get(id))
	}

	promMu.Lock()
	spans := make([]string, 0, len(promHists))
	for s := range promHists {
		spans = append(spans, s)
	}
	sort.Strings(spans)
	if len(spans) > 0 {
		fmt.Fprintf(w, "# TYPE wbist_span_duration_seconds histogram\n")
	}
	for _, span := range spans {
		h := promHists[span]
		cum := uint64(0)
		for i, ub := range promBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "wbist_span_duration_seconds_bucket{span=%q,le=\"%g\"} %d\n", span, ub, cum)
		}
		cum += h.counts[len(promBuckets)]
		fmt.Fprintf(w, "wbist_span_duration_seconds_bucket{span=%q,le=\"+Inf\"} %d\n", span, cum)
		fmt.Fprintf(w, "wbist_span_duration_seconds_sum{span=%q} %g\n", span, h.sum)
		fmt.Fprintf(w, "wbist_span_duration_seconds_count{span=%q} %d\n", span, cum)
	}
	gauges := make([]string, 0, len(promGauges))
	for g := range promGauges {
		gauges = append(gauges, g)
	}
	sort.Strings(gauges)
	for _, g := range gauges {
		name := "wbist_" + promName(g)
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %g\n", name, promGauges[g])
	}
	promMu.Unlock()
}
