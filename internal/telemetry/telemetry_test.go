package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersAddAndSnapshot(t *testing.T) {
	before := Counters()
	Add(CtrGateEvals, 100)
	Add(CtrVectors, 7)
	Add(CtrGateEvals, 1)
	d := Counters().Sub(before)
	if got := d.Get(CtrGateEvals); got != 101 {
		t.Errorf("gate evals delta = %d, want 101", got)
	}
	if got := d.Get(CtrVectors); got != 7 {
		t.Errorf("vectors delta = %d, want 7", got)
	}
	m := d.Map()
	if m["fsim.gate_evals"] != 101 || m["fsim.vectors"] != 7 {
		t.Errorf("Map() = %v", m)
	}
	if _, ok := m[CtrBacktracks.Name()]; ok && d.Get(CtrBacktracks) == 0 {
		t.Errorf("Map() contains zero counter %q", CtrBacktracks.Name())
	}
}

func TestSpanNesting(t *testing.T) {
	rec := New()
	root := rec.StartSpan("pipeline")
	a := root.Child("atpg")
	a1 := a.Child("random")
	a1.End()
	a.End()
	c := root.Child("core")
	c.End()
	root.End()

	var paths []string
	for _, p := range rec.Phases() {
		paths = append(paths, p.Span)
	}
	want := []string{"pipeline/atpg/random", "pipeline/atpg", "pipeline/core", "pipeline"}
	if fmt.Sprint(paths) != fmt.Sprint(want) {
		t.Errorf("phase order = %v, want %v", paths, want)
	}
	if got := root.Path(); got != "pipeline" {
		t.Errorf("root.Path() = %q", got)
	}
}

func TestAggregatorSumsCountersAndRepeats(t *testing.T) {
	rec := New()
	for i := 0; i < 3; i++ {
		sp := rec.StartSpan("phase")
		Add(CtrCandidates, 2)
		sp.End()
	}
	phases := rec.Phases()
	if len(phases) != 1 {
		t.Fatalf("got %d phases, want 1", len(phases))
	}
	p := phases[0]
	if p.Count != 3 {
		t.Errorf("count = %d, want 3", p.Count)
	}
	// Counter deltas are process-wide, so parallel tests could inflate the
	// sum; it must be at least the 6 we added.
	if p.Counters["core.candidates_scored"] < 6 {
		t.Errorf("candidates sum = %d, want >= 6", p.Counters["core.candidates_scored"])
	}
	if p.WallNS < 0 {
		t.Errorf("negative wall time %d", p.WallNS)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	rec := New(sink)

	root := rec.StartSpan("pipeline")
	child := root.Child("atpg")
	Add(CtrVectors, 41)
	child.End()
	root.End()
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var events []SpanEvent
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev SpanEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Span != "pipeline/atpg" || events[1].Span != "pipeline" {
		t.Errorf("spans = %q, %q", events[0].Span, events[1].Span)
	}
	if events[0].Counters["fsim.vectors"] < 41 {
		t.Errorf("child vectors = %d, want >= 41", events[0].Counters["fsim.vectors"])
	}
	if events[0].Duration() < 0 || events[0].Start.IsZero() {
		t.Errorf("bad timing in %+v", events[0])
	}
}

type errWriter struct{ err error }

func (w errWriter) Write([]byte) (int, error) { return 0, w.err }

func TestJSONLSinkStickyError(t *testing.T) {
	sink := NewJSONLSink(errWriter{err: io.ErrClosedPipe})
	sink.Record(SpanEvent{Span: "x"})
	sink.Record(SpanEvent{Span: "y"})
	if err := sink.Close(); err == nil {
		t.Error("Close() = nil, want sticky write error")
	}
}

// TestNilRecorderRecordsNothingAndAllocatesNothing is the guard for the
// telemetry-off hot path: spans from a nil recorder must be free.
func TestNilRecorderRecordsNothingAndAllocatesNothing(t *testing.T) {
	var rec *Recorder
	if got := rec.Phases(); got != nil {
		t.Errorf("nil recorder Phases() = %v, want nil", got)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := rec.StartSpan("pipeline")
		c := sp.Child("atpg")
		if c.Path() != "" {
			t.Fatal("nil span has a path")
		}
		c.End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil recorder span lifecycle allocates %.1f times per run, want 0", allocs)
	}
}

func TestRecorderConcurrentSpans(t *testing.T) {
	rec := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := rec.StartSpan("worker")
				sp.Child("inner").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	for _, p := range rec.Phases() {
		if p.Count != 400 {
			t.Errorf("%s count = %d, want 400", p.Span, p.Count)
		}
	}
}

func TestProgressWriter(t *testing.T) {
	var buf bytes.Buffer
	rec := New()
	rec.SetProgress(&buf)
	sp := rec.StartSpan("pipeline")
	sp.Child("atpg").End()
	sp.End()
	out := buf.String()
	if !strings.Contains(out, "pipeline/atpg") || !strings.Contains(out, "pipeline ") {
		t.Errorf("progress output missing spans:\n%s", out)
	}
}

// TestSetProgressConcurrentWithSpans flips the progress writer while spans
// complete on other goroutines; under -race this pins the recorder's locking
// around the progress sink.
func TestSetProgressConcurrentWithSpans(t *testing.T) {
	rec := New()
	var bufs [2]bytes.Buffer
	rec.SetProgress(&bufs[0])
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := rec.StartSpan("worker")
				sp.Child("inner").End()
				sp.End()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		rec.SetProgress(&bufs[i%2])
	}
	wg.Wait()
	rec.SetProgress(nil)
	for _, p := range rec.Phases() {
		if p.Count != 200 {
			t.Errorf("%s count = %d, want 200", p.Span, p.Count)
		}
	}
	if got := bufs[0].Len() + bufs[1].Len(); got == 0 {
		t.Error("no progress output written")
	}
}

func TestServeDebug(t *testing.T) {
	client := &http.Client{Timeout: 5 * time.Second}
	get := func(addr, path string) []byte {
		t.Helper()
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		return body
	}
	// Two servers: the counters used to be published process-globally under
	// a sync.Once, which made every server after the first silently serve no
	// counters. They are per-mux now, so both must expose them.
	first, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	second, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("second ServeDebug: %v", err)
	}
	for i, srv := range []*DebugServer{first, second} {
		body := get(srv.Addr(), "/debug/vars")
		if !bytes.Contains(body, []byte("wbist_counters")) {
			t.Errorf("server %d: /debug/vars missing wbist_counters:\n%s", i, body)
		}
		if !json.Valid(body) {
			t.Errorf("server %d: /debug/vars is not valid JSON:\n%s", i, body)
		}
		metrics := get(srv.Addr(), "/metrics")
		if !bytes.Contains(metrics, []byte("wbist_fsim_gate_evals_total")) {
			t.Errorf("server %d: /metrics missing counter exposition:\n%s", i, metrics)
		}
	}
	if body := get(first.Addr(), "/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}
	select {
	case err := <-first.Err():
		t.Fatalf("server reported error while still running: %v", err)
	default:
	}
}
