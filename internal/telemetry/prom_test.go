package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exposition format: one deterministic
// recorder run must render the exact histogram/gauge section. Counter lines
// are process-wide (other tests bump them), so the golden covers everything
// after them.
func TestWritePrometheusGolden(t *testing.T) {
	resetPromState()
	t.Cleanup(resetPromState)

	// Feed the histogram directly so durations are exact.
	observeSpan(SpanEvent{Span: "pipeline/atpg", DurationNS: int64(500 * time.Microsecond)})
	observeSpan(SpanEvent{Span: "pipeline/atpg", DurationNS: int64(50 * time.Millisecond)})
	observeSpan(SpanEvent{Span: "pipeline", DurationNS: int64(200 * time.Second)})
	SetGauge("fault_coverage", 0.875)
	SetGauge("weird name!", 1)

	var buf bytes.Buffer
	WritePrometheus(&buf)
	out := buf.String()

	for id := CounterID(0); id < NumCounters; id++ {
		want := "wbist_" + promName(id.Name()) + "_total"
		if !strings.Contains(out, "# TYPE "+want+" counter\n"+want+" ") {
			t.Errorf("missing counter exposition for %s", want)
		}
	}

	i := strings.Index(out, "# TYPE wbist_span_duration_seconds histogram")
	if i < 0 {
		t.Fatalf("missing histogram section:\n%s", out)
	}
	golden := `# TYPE wbist_span_duration_seconds histogram
wbist_span_duration_seconds_bucket{span="pipeline",le="0.001"} 0
wbist_span_duration_seconds_bucket{span="pipeline",le="0.01"} 0
wbist_span_duration_seconds_bucket{span="pipeline",le="0.1"} 0
wbist_span_duration_seconds_bucket{span="pipeline",le="1"} 0
wbist_span_duration_seconds_bucket{span="pipeline",le="10"} 0
wbist_span_duration_seconds_bucket{span="pipeline",le="100"} 0
wbist_span_duration_seconds_bucket{span="pipeline",le="+Inf"} 1
wbist_span_duration_seconds_sum{span="pipeline"} 200
wbist_span_duration_seconds_count{span="pipeline"} 1
wbist_span_duration_seconds_bucket{span="pipeline/atpg",le="0.001"} 1
wbist_span_duration_seconds_bucket{span="pipeline/atpg",le="0.01"} 1
wbist_span_duration_seconds_bucket{span="pipeline/atpg",le="0.1"} 2
wbist_span_duration_seconds_bucket{span="pipeline/atpg",le="1"} 2
wbist_span_duration_seconds_bucket{span="pipeline/atpg",le="10"} 2
wbist_span_duration_seconds_bucket{span="pipeline/atpg",le="100"} 2
wbist_span_duration_seconds_bucket{span="pipeline/atpg",le="+Inf"} 2
wbist_span_duration_seconds_sum{span="pipeline/atpg"} 0.0505
wbist_span_duration_seconds_count{span="pipeline/atpg"} 2
# TYPE wbist_fault_coverage gauge
wbist_fault_coverage 0.875
# TYPE wbist_weird_name_ gauge
wbist_weird_name_ 1
`
	if got := out[i:]; got != golden {
		t.Errorf("exposition tail mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// TestRecorderFeedsPromHistograms checks the Recorder.emit → observeSpan
// wiring end to end.
func TestRecorderFeedsPromHistograms(t *testing.T) {
	resetPromState()
	t.Cleanup(resetPromState)
	rec := New()
	sp := rec.StartSpan("promwire")
	sp.Child("inner").End()
	sp.End()
	var buf bytes.Buffer
	WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, `wbist_span_duration_seconds_count{span="promwire"} 1`) {
		t.Errorf("recorder spans not in exposition:\n%s", out)
	}
	if !strings.Contains(out, `wbist_span_duration_seconds_count{span="promwire/inner"} 1`) {
		t.Errorf("child span not in exposition:\n%s", out)
	}
}
