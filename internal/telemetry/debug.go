package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var publishOnce sync.Once

// ServeDebug starts an HTTP server on addr exposing net/http/pprof under
// /debug/pprof/ and expvar (including the hot-path counters as
// "wbist_counters") under /debug/vars. It returns the bound address (useful
// with ":0") once the listener is up; the server runs until the process
// exits. Long-running commands gate this behind a -pprof flag.
func ServeDebug(addr string) (string, error) {
	publishOnce.Do(func() {
		expvar.Publish("wbist_counters", expvar.Func(func() any {
			m := Counters().Map()
			if m == nil {
				m = map[string]int64{}
			}
			return m
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	go http.Serve(ln, mux) //nolint:errcheck // best-effort debug endpoint
	return ln.Addr().String(), nil
}
