package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is a running debug/metrics HTTP server started by ServeDebug.
type DebugServer struct {
	addr string
	srv  *http.Server
	err  chan error
}

// Addr returns the server's bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.addr }

// Err returns a channel that receives the serve error when the server stops
// (at most one value; the channel is buffered, so nobody has to read it).
// After Shutdown the value is http.ErrServerClosed. The server otherwise
// runs until the process exits.
func (s *DebugServer) Err() <-chan error { return s.err }

// Shutdown gracefully stops the server, waiting for in-flight requests
// until ctx expires (a long-running pprof profile capture is abandoned at
// the deadline). Err then delivers http.ErrServerClosed.
func (s *DebugServer) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

// ServeDebug starts an HTTP server on addr exposing net/http/pprof under
// /debug/pprof/, expvar plus the hot-path counters ("wbist_counters") under
// /debug/vars, and the Prometheus text exposition (counters, span-duration
// histograms, gauges — see WritePrometheus) under /metrics. Long-running
// commands gate this behind a -pprof flag.
//
// The counters are served per-mux rather than published into the process
// expvar registry, so any number of servers (including test servers) expose
// them; serve errors surface on DebugServer.Err instead of being discarded.
func ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/vars", serveVars)
	mux.HandleFunc("/metrics", serveMetrics)
	srv := &DebugServer{
		addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux},
		err:  make(chan error, 1),
	}
	go func() { srv.err <- srv.srv.Serve(ln) }()
	return srv, nil
}

// serveVars renders the expvar JSON document with the hot-path counters
// merged in locally (equivalent to expvar.Handler plus a process-global
// Publish of "wbist_counters", but without mutating global state — so every
// mux serves the counters, not just the first one created).
func serveVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	m := Counters().Map()
	if m == nil {
		m = map[string]int64{}
	}
	b, err := json.Marshal(m)
	if err != nil {
		b = []byte("{}")
	}
	fmt.Fprintf(w, "%q: %s", "wbist_counters", b)
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "wbist_counters" {
			return // a third party published the same name globally
		}
		fmt.Fprintf(w, ",\n%q: %s", kv.Key, kv.Value)
	})
	fmt.Fprintf(w, "\n}\n")
}

// serveMetrics renders the Prometheus text exposition.
func serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w)
}
