package telemetry

import (
	"fmt"
	"io"
	"runtime/metrics"
	"sync"
	"time"
)

// Recorder collects span events and fans them out to sinks. It always feeds
// an in-memory aggregator, so per-phase totals are available even without an
// explicit sink. A Recorder is safe for concurrent use; a nil *Recorder is a
// valid "telemetry off" recorder whose spans are nil and cost nothing.
type Recorder struct {
	mu       sync.Mutex
	sinks    []Sink
	agg      *Aggregator
	progress io.Writer
}

// New returns a recorder feeding the given sinks (none is fine: the built-in
// aggregator still accumulates per-phase totals).
func New(sinks ...Sink) *Recorder {
	return &Recorder{sinks: sinks, agg: NewAggregator()}
}

// SetProgress makes the recorder write a one-line progress message to w each
// time a span ends (the CLI's -progress flag).
func (r *Recorder) SetProgress(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.progress = w
	r.mu.Unlock()
}

// StartSpan opens a root span. On a nil recorder it returns a nil span, and
// every span method is a no-op on a nil span, so callers never branch.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return newSpan(r, "", name)
}

// Phases returns the per-phase totals accumulated so far (first-seen order).
func (r *Recorder) Phases() []PhaseStats {
	if r == nil {
		return nil
	}
	return r.agg.Phases()
}

func (r *Recorder) emit(ev SpanEvent) {
	observeSpan(ev) // process-wide span-duration histograms (/metrics)
	r.mu.Lock()
	r.agg.Record(ev)
	for _, s := range r.sinks {
		s.Record(ev)
	}
	// The progress write stays under the lock so concurrent span completions
	// never interleave on (or race over) a non-thread-safe writer.
	if r.progress != nil {
		fmt.Fprintf(r.progress, "[telemetry] %-32s %10.3fs  %8.1f KB\n",
			ev.Span, ev.Duration().Seconds(), float64(ev.AllocBytes)/1024)
	}
	r.mu.Unlock()
}

// Span is one timed phase. Spans nest: Child opens a sub-phase whose path is
// parent/child. Ending a span computes its wall-clock duration, the heap
// bytes allocated while it was open, and the hot-path counter deltas it
// observed, and emits the event to the recorder's sinks. Spans from
// concurrent goroutines may share a recorder, but the counter deltas of
// overlapping spans then overlap too (counters are process-wide).
type Span struct {
	rec   *Recorder
	path  string
	start time.Time
	alloc uint64
	ctrs  Snapshot
}

func newSpan(r *Recorder, parentPath, name string) *Span {
	path := name
	if parentPath != "" {
		path = parentPath + "/" + name
	}
	return &Span{
		rec:   r,
		path:  path,
		start: time.Now(),
		alloc: heapAllocBytes(),
		ctrs:  Counters(),
	}
}

// Child opens a sub-span. It is valid on an already-ended parent (the parent
// only contributes its path), and on a nil span it returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return newSpan(s.rec, s.path, name)
}

// Path returns the span's full slash-separated path ("" on a nil span).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// End closes the span and emits its event. No-op on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.emit(SpanEvent{
		Span:       s.path,
		Start:      s.start,
		DurationNS: time.Since(s.start).Nanoseconds(),
		AllocBytes: heapAllocBytes() - s.alloc,
		Counters:   Counters().Sub(s.ctrs).Map(),
	})
}

// heapAllocBytes returns the process's cumulative heap allocation, via
// runtime/metrics (cheap, no stop-the-world).
func heapAllocBytes() uint64 {
	sample := [1]metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(sample[:])
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}
