package expt

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/circuit"
	"repro/internal/iscas"
)

// failNTimes installs a loadCircuit hook that fails the first n calls with
// the returned sentinel error and behaves like iscas.Load afterwards. The
// cleanup restores the real loader.
func failNTimes(t *testing.T, n int64) (*atomic.Int64, error) {
	t.Helper()
	sentinel := errors.New("injected transient load failure")
	var calls atomic.Int64
	loadCircuit = func(name string) (*circuit.Circuit, error) {
		if calls.Add(1) <= n {
			return nil, sentinel
		}
		return iscas.Load(name)
	}
	t.Cleanup(func() { loadCircuit = iscas.Load })
	return &calls, sentinel
}

// TestRunCircuitTransientErrorEvicted is the regression test for the memo
// poisoning bug: with the sync.Once-based memo, the first (transient) load
// failure was cached forever and every retry of the same (circuit, config)
// key replayed it. The fixed memo evicts the entry on error, so the retry
// recomputes and succeeds.
func TestRunCircuitTransientErrorEvicted(t *testing.T) {
	ClearCache()
	calls, sentinel := failNTimes(t, 1)

	cfg := Config{LG: 100, Seed: 1}
	if _, err := RunCircuit("s27", cfg); !errors.Is(err, sentinel) {
		t.Fatalf("first call: err = %v, want injected failure", err)
	}
	r, err := RunCircuit("s27", cfg)
	if err != nil {
		t.Fatalf("retry after transient failure: %v (error entry poisoned the memo)", err)
	}
	if r == nil || len(r.Compacted) == 0 {
		t.Fatal("retry returned an empty run")
	}
	// The successful run is memoized as usual: no third load.
	again, err := RunCircuit("s27", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again != r {
		t.Error("successful retry was not memoized")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("loadCircuit called %d times, want 2 (one failure, one success)", got)
	}
}

// TestRunCircuitErrorEvictionConcurrent drives a failing flight from many
// goroutines (run under -race by the Makefile's race target): every joiner of
// the failed flight shares its error, and the eviction makes the NEXT wave
// recompute successfully — exactly once.
func TestRunCircuitErrorEvictionConcurrent(t *testing.T) {
	ClearCache()
	calls, sentinel := failNTimes(t, 1)

	cfg := Config{LG: 100, Seed: 1}
	const goroutines = 8
	errs := make([]error, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		done.Add(1)
		go func(g int) {
			defer done.Done()
			start.Wait()
			_, errs[g] = RunCircuit("s27", cfg)
		}(g)
	}
	start.Done()
	done.Wait()

	// The first wave shares one flight. Depending on scheduling that flight
	// is the injected failure or (if a goroutine raced past the failed
	// flight's eviction) a successful recompute — but never a mix of
	// *different* errors, and at most one failure wave.
	for g, err := range errs {
		if err != nil && !errors.Is(err, sentinel) {
			t.Fatalf("goroutine %d: unexpected error %v", g, err)
		}
	}

	// After the dust settles a fresh call must succeed and stay memoized.
	r, err := RunCircuit("s27", cfg)
	if err != nil {
		t.Fatalf("post-failure call: %v", err)
	}
	b, err := RunCircuit("s27", cfg)
	if err != nil || b != r {
		t.Fatalf("successful run not memoized: %v", err)
	}
	if got := calls.Load(); got < 2 || got > goroutines+1 {
		t.Errorf("loadCircuit called %d times, want between 2 and %d", got, goroutines+1)
	}
}

// TestRunCircuitCancelledEvicted: a cancelled run is an error like any other
// — it must not poison the key, so a retry without the cancelled context
// recomputes.
func TestRunCircuitCancelledEvicted(t *testing.T) {
	ClearCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{LG: 100, Seed: 1}
	cfg.Ctx = ctx
	if _, err := RunCircuit("s27", cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
	cfg.Ctx = nil
	r, err := RunCircuit("s27", cfg)
	if err != nil {
		t.Fatalf("retry after cancellation: %v (cancellation poisoned the memo)", err)
	}
	if len(r.Compacted) == 0 {
		t.Fatal("retry returned an empty run")
	}
}

// TestCtxNotPartOfMemoKey: runs differing only in their context share one
// memoized computation, like Workers and Telemetry.
func TestCtxNotPartOfMemoKey(t *testing.T) {
	ClearCache()
	a, err := RunCircuit("s27", Config{LG: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{LG: 100, Seed: 1}
	cfg.Ctx = context.Background()
	b, err := RunCircuit("s27", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Ctx leaked into the memoization key")
	}
}

// TestCanonicalConfig: the canonical form is what both cache layers key on.
func TestCanonicalConfig(t *testing.T) {
	c := CanonicalConfig("s298", Config{})
	if c.LG != 2000 {
		t.Errorf("defaults not filled: LG = %d", c.LG)
	}
	p := CanonicalConfig("s5378", Config{})
	if p.ATPGRandomLen != 1024 || !p.ATPGNoCompaction {
		t.Errorf("presets not applied: %+v", p)
	}
}
