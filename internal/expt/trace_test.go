package expt

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fsim"
	"repro/internal/obsv"
)

// TestTraceRunProvenance checks the whole-run trace against the run it
// narrates: the T segment's detection count equals the target count, the
// assignment segments cover every target exactly once (fault dropping), and
// the serialised form round-trips.
func TestTraceRunProvenance(t *testing.T) {
	r, err := RunCircuit("s27", Config{LG: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := TraceRun(r)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Circuit != "s27" || rt.TLen != r.T.Len() || rt.Targets != len(r.Targets) {
		t.Fatalf("trace header %+v disagrees with run", rt)
	}
	if len(rt.Segments) != 1+len(r.Compacted) {
		t.Fatalf("%d segments for T + %d assignments", len(rt.Segments), len(r.Compacted))
	}
	tseg := rt.Segments[0]
	if tseg.Assignment != -1 || tseg.Detected != len(r.Targets) {
		t.Fatalf("T segment %+v: want assignment -1 and %d detections", tseg, len(r.Targets))
	}
	if len(tseg.Events) != tseg.Detected {
		t.Fatalf("T segment has %d events for %d detections", len(tseg.Events), tseg.Detected)
	}
	// Every target is detected by exactly one assignment window (coverage
	// 1.0 on s27), and event fault indices are target indices.
	covered := make([]int, len(r.Targets))
	for _, seg := range rt.Segments[1:] {
		if seg.Detected != len(seg.Events) {
			t.Fatalf("segment A%d: %d events for %d detections", seg.Assignment, len(seg.Events), seg.Detected)
		}
		for _, ev := range seg.Events {
			if ev.Fault < 0 || ev.Fault >= len(r.Targets) {
				t.Fatalf("segment A%d event %+v outside target space", seg.Assignment, ev)
			}
			if ev.Assignment != seg.Assignment {
				t.Fatalf("event %+v in segment A%d", ev, seg.Assignment)
			}
			covered[ev.Fault]++
		}
	}
	for i, n := range covered {
		if n != 1 {
			t.Fatalf("target %d detected by %d windows, want exactly 1", i, n)
		}
	}

	var buf bytes.Buffer
	if err := obsv.WriteTrace(&buf, rt); err != nil {
		t.Fatal(err)
	}
	back, err := obsv.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rt, back) {
		t.Fatalf("trace does not round-trip through JSONL")
	}

	rep := obsv.BuildReport(rt, r.Metrics)
	if rep.Coverage.Detected != len(r.Targets) || rep.Coverage.Knee.Vector < 0 {
		t.Fatalf("report coverage %+v disagrees with run", rep.Coverage)
	}
	if len(rep.Assignments) != len(rt.Segments) {
		t.Fatalf("report has %d attribution rows for %d segments", len(rep.Assignments), len(rt.Segments))
	}
	var out bytes.Buffer
	obsv.Render(&out, rep)
	for _, want := range []string{"run report:", "coverage of T:", "detection attribution"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("rendered report missing %q:\n%s", want, out.String())
		}
	}
}

// TestTraceRunKernelInvariant pins the cross-kernel determinism of the
// whole-run trace (events and bookkeeping, not annotations).
func TestTraceRunKernelInvariant(t *testing.T) {
	r, err := RunCircuit("s298", Config{LG: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	strip := func(rt *obsv.RunTrace) *obsv.RunTrace {
		rt.Kernel = ""
		for i := range rt.Segments {
			for j := range rt.Segments[i].Events {
				rt.Segments[i].Events[j].Kernel = ""
				rt.Segments[i].Events[j].Worker = 0
			}
		}
		return rt
	}
	var want *obsv.RunTrace
	for _, k := range []fsim.Kernel{fsim.KernelDense, fsim.KernelEvent} {
		for _, workers := range []int{1, 4} {
			rr := *r
			rr.Config.Kernel = k
			rr.Config.Workers = workers
			rt, err := TraceRun(&rr)
			if err != nil {
				t.Fatal(err)
			}
			got := strip(rt)
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("run trace differs for kernel=%v workers=%d", k, workers)
			}
		}
	}
}
