package expt

import (
	"reflect"
	"testing"

	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/sim"
)

func TestRunCircuitS27(t *testing.T) {
	r, err := RunCircuit("s27", Config{LG: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Init != logic.X {
		t.Fatal("s27 must run with unknown initial state")
	}
	if r.T.Len() != 10 {
		t.Fatalf("s27 must use the paper's 10-vector sequence, got %d", r.T.Len())
	}
	if len(r.Targets) == 0 || len(r.Compacted) == 0 {
		t.Fatal("pipeline produced nothing")
	}
	row := Table6(r)
	if row.Circuit != "s27" || row.Len != 10 || row.Det != len(r.Targets) {
		t.Fatalf("Table6 row wrong: %+v", row)
	}
	if row.Coverage != 1.0 {
		t.Fatalf("coverage %.3f", row.Coverage)
	}
	if row.MaxLen >= row.Len {
		t.Errorf("max subsequence length %d should be < |T| = %d", row.MaxLen, row.Len)
	}
	if row.FSMs > row.Subs {
		t.Errorf("FSMs %d > subs %d", row.FSMs, row.Subs)
	}
}

// TestPipelineWorkersDeterminism runs the full pipeline sequentially and
// with a parallel fault-simulation fleet and requires identical results
// end to end: the simulator's deterministic merge must survive every stage
// (atpg, core selection, reverse-order compaction).
func TestPipelineWorkersDeterminism(t *testing.T) {
	c, err := iscas.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	seqR, err := RunPipeline(c, logic.Zero, Config{LG: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := iscas.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	parR, err := RunPipeline(c2, logic.Zero, Config{LG: 150, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seqR.T.String() != parR.T.String() {
		t.Fatal("deterministic sequences differ")
	}
	if !reflect.DeepEqual(seqR.Targets, parR.Targets) || !reflect.DeepEqual(seqR.DetTimes, parR.DetTimes) {
		t.Fatal("target faults or detection times differ")
	}
	if !reflect.DeepEqual(seqR.Core.Omega, parR.Core.Omega) {
		t.Fatal("selected weight assignments differ")
	}
	if !reflect.DeepEqual(seqR.Compacted, parR.Compacted) {
		t.Fatal("compacted assignments differ")
	}
	if seqR.Stats != parR.Stats {
		t.Fatalf("hardware stats differ: %+v vs %+v", seqR.Stats, parR.Stats)
	}
}

// TestWorkersNotPartOfMemoKey: runs differing only in Workers are
// bit-identical, so they must share one memoized computation.
func TestWorkersNotPartOfMemoKey(t *testing.T) {
	a, err := RunCircuit("s27", Config{LG: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCircuit("s27", Config{LG: 100, Seed: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Workers leaked into the memoization key")
	}
}

func TestRunCircuitMemoized(t *testing.T) {
	a, err := RunCircuit("s27", Config{LG: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCircuit("s27", Config{LG: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical configs not memoized")
	}
	c, err := RunCircuit("s27", Config{LG: 99, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different configs shared a run")
	}
}

func TestRunCircuitUnknown(t *testing.T) {
	if _, err := RunCircuit("nope", Config{}); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

func TestPipelineSyntheticWithGenerator(t *testing.T) {
	r, err := RunCircuit("s298", Config{LG: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Init != logic.Zero {
		t.Fatal("synthetic circuits must use reset-to-0")
	}
	if r.Core.Coverage() != 1.0 {
		t.Fatalf("procedure coverage %.3f", r.Core.Coverage())
	}
	// Verify the compacted omega covers all targets end to end.
	lg := r.Config.LG
	for _, dt := range r.DetTimes {
		if dt+1 > lg {
			lg = dt + 1
		}
	}
	undet := make([]bool, len(r.Targets))
	for i := range undet {
		undet[i] = true
	}
	for _, a := range r.Compacted {
		out := fsim.Run(r.Circuit, a.GenSequence(lg), r.Targets, fsim.Options{Init: r.Init})
		for i := range r.Targets {
			if out.Detected[i] {
				undet[i] = false
			}
		}
	}
	for i, u := range undet {
		if u {
			t.Errorf("target %d not covered by compacted omega", i)
		}
	}
	// The Figure 1 generator must synthesize.
	g, err := SynthesizeGenerator(r)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGates == 0 || g.Circuit.NumOutputs() != r.Circuit.NumInputs() {
		t.Fatalf("generator malformed: %d gates, %d outputs", g.NumGates, g.Circuit.NumOutputs())
	}
}

func TestObsExperimentIntegrates(t *testing.T) {
	r, err := RunCircuit("s27", Config{LG: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := ObsExperiment(r)
	if len(res.Rows) == 0 {
		t.Fatal("no obs rows")
	}
	last := res.Rows[len(res.Rows)-1]
	if last.FE != 100 || last.Obs != 0 {
		t.Fatalf("last row %+v", last)
	}
}

func TestInitFor(t *testing.T) {
	if InitFor("s27") != logic.X {
		t.Error("s27 init")
	}
	if InitFor("s298") != logic.Zero {
		t.Error("synthetic init")
	}
	if InitFor("unknown") != logic.Zero {
		t.Error("unknown defaults to zero")
	}
}

func TestClearCache(t *testing.T) {
	a, _ := RunCircuit("s27", Config{LG: 100, Seed: 1})
	ClearCache()
	b, _ := RunCircuit("s27", Config{LG: 100, Seed: 1})
	if a == b {
		t.Fatal("cache not cleared")
	}
}

var _ = sim.NewSequence

func TestPresetsForLargeCircuits(t *testing.T) {
	p5378 := presetFor("s5378", Config{})
	if p5378.ATPGRandomLen != 1024 || !p5378.ATPGNoCompaction {
		t.Fatalf("s5378 preset wrong: %+v", p5378)
	}
	p35932 := presetFor("s35932", Config{})
	if p35932.ATPGRandomLen != 320 || p35932.LG != 400 || !p35932.ATPGNoCompaction {
		t.Fatalf("s35932 preset wrong: %+v", p35932)
	}
	// User-provided values win.
	custom := presetFor("s5378", Config{ATPGRandomLen: 99})
	if custom.ATPGRandomLen != 99 {
		t.Fatal("preset overrode explicit value")
	}
	// Other circuits untouched.
	plain := presetFor("s298", Config{})
	if plain.ATPGRandomLen != 0 || plain.LG != 0 {
		t.Fatalf("s298 got a preset: %+v", plain)
	}
}

func TestRunCircuitHardUsesPresetSequence(t *testing.T) {
	r, err := RunCircuit("cmphard", Config{LG: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The cmphard sequence is constructed, not searched: 4 + 18*(1+3) = 76.
	if r.T.Len() != 76 {
		t.Fatalf("cmphard |T| = %d, want 76", r.T.Len())
	}
	if r.Core.Coverage() != 1.0 {
		t.Fatalf("cmphard coverage %.3f", r.Core.Coverage())
	}
}

func TestConfigWithRandomWindows(t *testing.T) {
	r, err := RunCircuit("s298", Config{LG: 300, Seed: 3, RandomWindows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Core.RandomDetected == 0 {
		t.Fatal("random window detected nothing")
	}
	g, err := SynthesizeGenerator(r)
	if err != nil {
		t.Fatal(err)
	}
	if g.RandomWindows != 1 || g.LFSRWidth == 0 {
		t.Fatalf("generator lacks the LFSR window: %+v", g)
	}
}
