package expt

import (
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/obsv"
)

// TraceRun re-simulates a completed pipeline run with detection tracing and
// returns its provenance record: the deterministic sequence T against the
// collapsed fault universe, then each compacted weight assignment's window
// (in schedule order) against the targets it was scheduled to mop up. The
// result is the data behind `wbist report` — which assignment detects which
// fault, when, and at which output.
//
// The re-simulation reuses the run's configuration (Init, LG, Workers,
// Kernel), so by the simulator's determinism guarantee the outcome matches
// the original run bit for bit regardless of worker count or kernel; the
// trace costs one extra simulation of T plus one per compacted assignment.
func TraceRun(r *Run) (*obsv.RunTrace, error) {
	c := r.Circuit
	cfg := r.Config
	rt := &obsv.RunTrace{
		Schema:  obsv.TraceSchema,
		Circuit: r.Name,
		Kernel:  cfg.Kernel.Resolve().String(),
		Targets: len(r.Targets),
		TLen:    r.T.Len(),
	}
	if rt.Circuit == "" {
		rt.Circuit = c.Name
	}
	simulator := fsim.New(c)

	// Segment -1: T against the whole collapsed universe of the run's fault
	// model. Event fault indices are universe indices.
	model, err := fault.ModelByName(cfg.FaultModel)
	if err != nil {
		return nil, err
	}
	universe := fault.CollapsedUniverseFor(c, model)
	rt.TotalFaults = len(universe)
	tr := obsv.NewTrace()
	out := simulator.Run(r.T, universe, fsim.Options{
		Init: r.Init, Workers: cfg.Workers, Kernel: cfg.Kernel,
		SlabLanes: cfg.SlabLanes, Trace: tr,
	})
	rt.Segments = append(rt.Segments, tr.Segment(r.T.Len(), len(universe), out.NumDetected))

	// One segment per compacted assignment, in schedule order, against the
	// targets still undetected when it runs — the same fault-dropping walk
	// the generated hardware performs. Windows are sized exactly like the
	// generation and reverse-order phases (LG raised to the latest target's
	// detection time + 1).
	lg := cfg.LG
	maxU := 0
	for _, dt := range r.DetTimes {
		if dt > maxU {
			maxU = dt
		}
	}
	if lg < maxU+1 {
		lg = maxU + 1
	}
	undetected := make([]bool, len(r.Targets))
	for i := range undetected {
		undetected[i] = true
	}
	for j, a := range r.Compacted {
		var fl []fault.Fault
		var idx []int
		for i, und := range undetected {
			if und {
				fl = append(fl, r.Targets[i])
				idx = append(idx, i)
			}
		}
		tr := obsv.NewTrace()
		tr.Assignment = j
		seq := a.GenSequence(lg)
		out := simulator.Run(seq, fl, fsim.Options{
			Init: r.Init, Workers: cfg.Workers, Kernel: cfg.Kernel,
			SlabLanes: cfg.SlabLanes, Trace: tr,
		})
		det := 0
		for k := range fl {
			if out.Detected[k] {
				undetected[idx[k]] = false
				det++
			}
		}
		seg := tr.Segment(lg, len(fl), det)
		// Remap the window's local fault indices to target indices so every
		// assignment segment speaks the same fault space.
		for k := range seg.Events {
			seg.Events[k].Fault = idx[seg.Events[k].Fault]
		}
		rt.Segments = append(rt.Segments, seg)
	}
	return rt, nil
}
