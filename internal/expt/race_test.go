package expt

import (
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestRunCircuitConcurrent drives the memoization from many goroutines (run
// under -race by the Makefile's race target) and asserts the pipeline is
// computed exactly once and the resulting *Run is shared.
func TestRunCircuitConcurrent(t *testing.T) {
	ClearCache()
	rec := telemetry.New()
	cfg := Config{Telemetry: rec}

	const goroutines = 16
	runs := make([]*Run, goroutines)
	errs := make([]error, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		done.Add(1)
		go func(g int) {
			defer done.Done()
			start.Wait() // maximise contention on the cache entry
			runs[g], errs[g] = RunCircuit("s27", cfg)
		}(g)
	}
	start.Done()
	done.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if runs[g] == nil {
			t.Fatalf("goroutine %d: nil run", g)
		}
		if runs[g] != runs[0] {
			t.Errorf("goroutine %d received a different *Run than goroutine 0", g)
		}
	}

	// The recorder is shared by every caller and the key ignores it, so a
	// single-flighted computation must have recorded exactly one pipeline.
	pipelines := 0
	for _, p := range rec.Phases() {
		if p.Span == "pipeline" {
			pipelines = p.Count
		}
	}
	if pipelines != 1 {
		t.Errorf("pipeline computed %d times for %d concurrent callers, want 1", pipelines, goroutines)
	}

	// A fresh caller after the fact still hits the same memoized run.
	again, err := RunCircuit("s27", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if again != runs[0] {
		t.Error("later caller with an equivalent config missed the memoized run")
	}
}

// TestRunCircuitErrorMemoized checks that a failing load is reported to every
// caller rather than poisoning the cache with a half-built entry.
func TestRunCircuitErrorMemoized(t *testing.T) {
	ClearCache()
	for i := 0; i < 2; i++ {
		r, err := RunCircuit("no-such-circuit", Config{})
		if err == nil || r != nil {
			t.Fatalf("attempt %d: RunCircuit = %v, %v; want nil, error", i, r, err)
		}
	}
}
