// Package expt orchestrates the per-circuit experiment pipeline
// (load/generate circuit → deterministic sequence → weight-assignment
// selection → postprocessing → accounting) and regenerates every table and
// figure of the paper. Results are memoized per (circuit, configuration) so
// the CLI tools and benchmarks can share runs.
package expt

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/obs"
	_ "repro/internal/shard" // installs the fsim multi-process shard runner
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wgen"
)

// Config parameterises a pipeline run. The zero value reproduces the paper's
// setup (L_G = 2000).
type Config struct {
	// LG is the per-assignment sequence length (paper: 2000).
	LG int
	// Seed drives the deterministic-sequence generator and fault sampling.
	Seed uint64
	// ATPGRandomLen overrides the phase-1 random sequence length (0 = auto).
	ATPGRandomLen int
	// ATPGNoCompaction disables static compaction of the deterministic
	// sequence (used for the largest circuit, where compaction dominates
	// runtime without changing any conclusion).
	ATPGNoCompaction bool
	// ATPGNoPodem disables the deterministic PODEM phase of sequence
	// generation (used for the largest circuit, where the scalar searches
	// dominate runtime).
	ATPGNoPodem bool
	// RandomWindows prepends this many pseudo-random LFSR windows to the
	// schedule (the paper's future-work extension); faults they detect need
	// no weight assignments.
	RandomWindows int
	// FaultModel names the fault model the pipeline targets: "" or
	// "stuck-at" (the paper's model), "transition" (launch-on-capture) or
	// "bridge" (2-node wired-AND/OR pairs); see fault.ModelByName. Unlike
	// Workers/Kernel/ShardProcs the model CHANGES every result bit — the
	// fault universe, the targets, the selected assignments — so it IS part
	// of the memoization key (and of the persistent store identity behind
	// `wbist serve`).
	FaultModel string
	// CoreOptions overrides fields of the core options other than LG, Init
	// and Seed (ablation switches).
	NoSampleFirst     bool
	NoForceFullLength bool
	NoMatchOrdering   bool
	// Telemetry, when non-nil, records phase spans and hot-path counters for
	// the run (see internal/telemetry). It is ignored by the memoization key,
	// so runs differing only in their recorder share one computation — and a
	// cache hit records nothing.
	Telemetry *telemetry.Recorder
	// Workers is the fault-simulation worker count threaded through every
	// pipeline stage (atpg, core, obs; 0 or 1 = sequential). The simulator's
	// deterministic merge makes results bit-identical for any value, so
	// Workers — like Telemetry — is not part of the memoization key.
	Workers int
	// Kernel selects the fsim gate-evaluation kernel threaded through every
	// pipeline stage (dense, event-driven or slab; the zero value honors
	// FSIM_KERNEL and defaults to event). All kernels are bit-identical, so
	// Kernel — like Workers — is not part of the memoization key.
	Kernel fsim.Kernel
	// SlabLanes is the slab kernel's fault-group batch width W (0 = pick
	// adaptively; ignored by the other kernels). Like Workers it never
	// changes the outcome, so it is not part of the memoization key.
	SlabLanes int
	// ShardProcs, when > 1, shards eligible fault-simulation runs over
	// that many worker subprocesses (internal/shard, imported below, which
	// installs the fsim runner). Like Workers it is an execution policy
	// with a bit-identical outcome, so it is not part of the memoization
	// key.
	ShardProcs int
	// Ctx, if non-nil, cancels the run: it is threaded through every
	// pipeline stage down to the fault simulator's worker pool, so a
	// cancelled or timed-out run stops claiming fault groups and RunPipeline
	// returns ctx.Err() promptly. Like Telemetry, Ctx is not part of the
	// memoization key — and since errors (including cancellations) evict
	// their memo entry, a later identical call recomputes instead of
	// inheriting the cancellation.
	Ctx context.Context
}

func (c Config) withDefaults() Config {
	if c.LG == 0 {
		c.LG = 2000
	}
	// Canonicalise the model name so the default, an explicit "stuck-at"
	// and an alias like "stuck" all share one memo entry and one store
	// identity. Unknown names pass through untouched and fail in
	// RunPipeline, where the error can be reported.
	if m, err := fault.ModelByName(c.FaultModel); err == nil {
		c.FaultModel = m.Name()
	}
	return c
}

// presetSequence returns the known deterministic sequence for circuits that
// do not use the atpg substitute: the paper's Table 1 sequence for s27 and
// the analytically constructed sequence for the random-resistant cmphard.
func presetSequence(c *circuit.Circuit, cfg Config) *sim.Sequence {
	switch c.Name {
	case "s27":
		seq, err := sim.ParseSequence(iscas.S27TestSequence)
		if err != nil {
			panic(err) // embedded constant; cannot fail
		}
		return seq
	case iscas.HardName:
		return iscas.HardSequence(cfg.Seed + 3)
	default:
		return nil
	}
}

// presetFor scales runtime-dominating parameters down for the two largest
// circuits, mirroring the paper's inputs (its s35932 sequence is only 150
// vectors long). Only fields the caller left at zero are touched.
func presetFor(name string, cfg Config) Config {
	switch name {
	case "s5378":
		if cfg.ATPGRandomLen == 0 {
			cfg.ATPGRandomLen = 1024
		}
		// Restoration-based compaction re-simulates the whole fault list per
		// candidate deletion, which dominates runtime at this size without
		// changing any conclusion.
		cfg.ATPGNoCompaction = true
	case "s35932":
		if cfg.ATPGRandomLen == 0 {
			cfg.ATPGRandomLen = 320
		}
		if cfg.LG == 0 {
			// The paper's s35932 sequence is only 150 vectors; full 2000-cycle
			// windows would multiply the (gates × faults) simulation cost for
			// no additional insight.
			cfg.LG = 400
		}
		cfg.ATPGNoCompaction = true
		// The scalar PODEM searches are disproportionate at 16k gates and
		// the stragglers they would target barely move the det column.
		cfg.ATPGNoPodem = true
	}
	return cfg
}

// key is the memoization key.
type key struct {
	name string
	cfg  Config
}

// Run is the complete result of one circuit's pipeline.
type Run struct {
	Name    string
	Circuit *circuit.Circuit
	Config  Config
	// Init is the flip-flop initialisation used (X for the verbatim s27,
	// reset-to-0 for the synthetic suite).
	Init logic.V
	// T is the deterministic test sequence (for s27: the paper's Table 1
	// sequence; otherwise the atpg substitute).
	T *sim.Sequence
	// TotalFaults is the size of the collapsed fault universe.
	TotalFaults int
	// Targets are the faults detected by T, with their detection times.
	Targets  []fault.Fault
	DetTimes []int
	// Core is the weight-assignment selection result (Ω before reverse-order
	// simulation lives in Core.Omega).
	Core *core.Result
	// Compacted is Ω after reverse-order simulation (Section 4.3).
	Compacted []core.Assignment
	// Stats is the Table 6 accounting of Compacted.
	Stats core.HardwareStats
	// Metrics is the per-phase telemetry of the run, as recorded by
	// Config.Telemetry (nil when no recorder was installed). When a recorder
	// is shared across runs the totals are cumulative across them.
	Metrics []telemetry.PhaseStats
}

// entry is one memoization slot: a single-flight computation whose leader
// closes done after publishing r/err. Unlike a sync.Once, a failed flight is
// evicted from the cache (see RunCircuit), so a transient error — an I/O
// hiccup in the load, a cancelled context — never poisons its (circuit,
// configuration) key for the life of the process.
type entry struct {
	done chan struct{} // closed once r/err are published
	r    *Run
	err  error
}

var (
	cacheMu sync.Mutex
	cache   = map[key]*entry{}
)

// loadCircuit indirects iscas.Load so tests can inject transient failures.
var loadCircuit = iscas.Load

// InitFor returns the flip-flop initialisation for a suite circuit: unknown
// (X) for the verbatim s27 as in the raw benchmark, reset-to-0 for the
// synthetic circuits (see DESIGN.md).
func InitFor(name string) logic.V {
	if p, ok := iscas.LookupProfile(name); ok && !p.Synthetic {
		return logic.X
	}
	return logic.Zero
}

// CanonicalConfig returns the exact configuration RunCircuit executes for a
// named circuit: per-circuit presets applied and defaults filled. Cache
// layers (the in-process memo here, the persistent store behind `wbist
// serve`) key on this canonical form so that a defaulted and an explicit
// spelling of the same run share one computation and one artifact set.
func CanonicalConfig(name string, cfg Config) Config {
	return presetFor(name, cfg).withDefaults()
}

// RunCircuit executes (or returns the memoized) pipeline for a suite circuit.
// Concurrent callers with the same (circuit, configuration) share a single
// computation: the first one runs the pipeline, the rest block on it and
// receive the same *Run. A failed computation is evicted before its error is
// reported, so the next caller with the same key retries instead of
// replaying a stale (possibly transient) failure forever.
func RunCircuit(name string, cfg Config) (*Run, error) {
	cfg = CanonicalConfig(name, cfg)
	k := key{name: name, cfg: cfg}
	// Neither the recorder, the worker count, the kernel (and its slab lane
	// width) nor the context is part of the identity of a run: none of them
	// changes any result bit. FaultModel, by contrast, stays in the key —
	// each model has its own fault universe and hence its own results.
	k.cfg.Telemetry = nil
	k.cfg.Workers = 0
	k.cfg.Kernel = 0
	k.cfg.SlabLanes = 0
	k.cfg.ShardProcs = 0
	k.cfg.Ctx = nil
	cacheMu.Lock()
	e, ok := cache[k]
	if !ok {
		e = &entry{done: make(chan struct{})}
		cache[k] = e
	}
	cacheMu.Unlock()

	if ok {
		// Joiner: wait for the leader's flight (they share its outcome,
		// error included — a concurrent joiner is part of the failed flight,
		// not a retry).
		<-e.done
		return e.r, e.err
	}

	// Leader: compute, publish, and on error evict the entry so a later
	// identical call recomputes.
	e.r, e.err = computeRun(name, cfg)
	if e.err != nil {
		cacheMu.Lock()
		if cache[k] == e {
			delete(cache, k)
		}
		cacheMu.Unlock()
	}
	close(e.done)
	return e.r, e.err
}

func computeRun(name string, cfg Config) (*Run, error) {
	c, err := loadCircuit(name)
	if err != nil {
		return nil, err
	}
	r, err := RunPipeline(c, InitFor(name), cfg)
	if err != nil {
		return nil, err
	}
	r.Name = name
	return r, nil
}

// RunPipeline executes the pipeline on an arbitrary circuit. When cfg.Ctx is
// cancelled the stages unwind at their next fault-group boundary and the
// pipeline returns ctx.Err().
func RunPipeline(c *circuit.Circuit, init logic.V, cfg Config) (*Run, error) {
	cfg = cfg.withDefaults()
	if err := ctxErr(cfg.Ctx); err != nil {
		return nil, err
	}
	model, err := fault.ModelByName(cfg.FaultModel)
	if err != nil {
		return nil, err
	}
	r := &Run{Name: c.Name, Circuit: c, Config: cfg, Init: init}
	pipe := cfg.Telemetry.StartSpan("pipeline")

	// Deterministic sequence: the paper's own sequence for s27, the
	// analytically constructed sequence for the random-resistant cmphard,
	// the atpg substitute for everything else.
	if preset := presetSequence(c, cfg); preset != nil {
		sp := pipe.Child("preset-sim")
		r.T = preset
		faults := fault.CollapsedUniverseFor(c, model)
		r.TotalFaults = len(faults)
		out := fsim.Run(c, preset, faults, fsim.Options{Init: init, Workers: cfg.Workers, Kernel: cfg.Kernel, SlabLanes: cfg.SlabLanes, ShardProcs: cfg.ShardProcs, Ctx: cfg.Ctx})
		for i := range faults {
			if out.Detected[i] {
				r.Targets = append(r.Targets, faults[i])
				r.DetTimes = append(r.DetTimes, out.DetTime[i])
			}
		}
		sp.End()
	} else {
		ar := atpg.Generate(c, atpg.Options{
			Seed:                 cfg.Seed + 1,
			Init:                 init,
			Model:                model,
			RandomLen:            cfg.ATPGRandomLen,
			NoCompaction:         cfg.ATPGNoCompaction,
			NoDeterministicPhase: cfg.ATPGNoPodem,
			Workers:              cfg.Workers,
			Kernel:               cfg.Kernel,
			SlabLanes:            cfg.SlabLanes,
			ShardProcs:           cfg.ShardProcs,
			Span:                 pipe,
			Ctx:                  cfg.Ctx,
		})
		r.T = ar.Seq
		r.TotalFaults = len(ar.Faults)
		for i := range ar.Faults {
			if ar.Detected[i] {
				r.Targets = append(r.Targets, ar.Faults[i])
				r.DetTimes = append(r.DetTimes, ar.DetTime[i])
			}
		}
	}

	// The sequence phase has no error return; surface a cancellation that
	// truncated it before the partial T feeds the selection.
	if err := ctxErr(cfg.Ctx); err != nil {
		return nil, err
	}

	cr, err := core.Run(c, r.T, r.Targets, r.DetTimes, core.Options{
		LG:                cfg.LG,
		Init:              init,
		Seed:              cfg.Seed + 2,
		RandomWindows:     cfg.RandomWindows,
		NoSampleFirst:     cfg.NoSampleFirst,
		NoForceFullLength: cfg.NoForceFullLength,
		NoMatchOrdering:   cfg.NoMatchOrdering,
		Workers:           cfg.Workers,
		Kernel:            cfg.Kernel,
		SlabLanes:         cfg.SlabLanes,
		ShardProcs:        cfg.ShardProcs,
		Span:              pipe,
		Ctx:               cfg.Ctx,
	})
	if err != nil {
		return nil, err
	}
	r.Core = cr
	sp := pipe.Child("reverse-order")
	r.Compacted = core.ReverseOrderCompact(cr)
	sp.End()
	sp = pipe.Child("accounting")
	r.Stats = core.Accounting(r.Compacted)
	sp.End()
	pipe.End()
	telemetry.SetGauge("fault_coverage", cr.Coverage())
	r.Metrics = cfg.Telemetry.Phases()
	return r, nil
}

// Table6Row renders a run into the columns of the paper's Table 6:
// circuit, |T|, #detected, #seq, #subs, max len, #FSMs, #FSM outputs.
type Table6Row struct {
	Circuit  string
	Len      int
	Det      int
	Seq      int
	Subs     int
	MaxLen   int
	FSMs     int
	Outputs  int
	Coverage float64 // fraction of targets covered by Ω (1.0 expected)
}

// Table6 computes the row for a run.
func Table6(r *Run) Table6Row {
	return Table6Row{
		Circuit:  r.Name,
		Len:      r.T.Len(),
		Det:      len(r.Targets),
		Seq:      r.Stats.NumSeqs,
		Subs:     r.Stats.NumSubs,
		MaxLen:   r.Stats.MaxLen,
		FSMs:     r.Stats.NumFSMs,
		Outputs:  r.Stats.NumOutputs,
		Coverage: r.Core.Coverage(),
	}
}

// ObsExperiment runs the Tables 7-16 experiment for a run.
func ObsExperiment(r *Run) *obs.Result {
	return obs.Experiment(r.Core)
}

// SynthesizeGenerator builds the Figure 1 hardware for a run's compacted Ω
// (including the leading LFSR windows when the run used them) and reports
// its cost.
func SynthesizeGenerator(r *Run) (*wgen.Generator, error) {
	if len(r.Compacted) == 0 {
		return nil, fmt.Errorf("expt: run %s has no weight assignments", r.Name)
	}
	return wgen.SynthesizeSchedule(r.Name+"_gen", r.Config.RandomWindows, r.Compacted, r.Config.LG)
}

// ClearCache drops all memoized runs (tests use this to force fresh runs).
func ClearCache() {
	cacheMu.Lock()
	cache = map[key]*entry{}
	cacheMu.Unlock()
}

// ctxErr returns the cancellation error of a (possibly nil) context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
