// Package check provides simulation-based equivalence checking between two
// sequential circuits with identical interfaces. It is not a formal proof —
// it drives both machines with the same directed-random stimulus from reset
// and compares all outputs every cycle — but it is exactly the consistency
// oracle needed inside this repository: .bench round trips, composed
// netlists, and re-synthesized generators must all behave identically to
// their sources.
package check

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/randutil"
	"repro/internal/sim"
)

// Mismatch describes the first detected divergence.
type Mismatch struct {
	Time   int
	Output int
	A, B   logic.V
	// Sequence is the stimulus that exposed the divergence.
	Sequence *sim.Sequence
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("check: outputs diverge at t=%d output %d: %v vs %v",
		m.Time, m.Output, m.A, m.B)
}

// Options tune the random-simulation equivalence check.
type Options struct {
	// Sequences is the number of independent stimulus sequences (default 8).
	Sequences int
	// Length is the length of each sequence (default 256).
	Length int
	// Init is the common flip-flop initialisation (default logic.Zero).
	Init logic.V
	// Seed drives the stimulus generator.
	Seed uint64
}

func (o *Options) fill() {
	if o.Sequences == 0 {
		o.Sequences = 8
	}
	if o.Length == 0 {
		o.Length = 256
	}
}

// Equivalent simulates a and b under common random stimulus and returns nil
// if no output ever differs, or the first Mismatch found. X values compare
// equal only to X (both machines must agree on unknowns too, which holds for
// structurally equivalent netlists).
func Equivalent(a, b *circuit.Circuit, opts Options) error {
	opts.fill()
	if a.NumInputs() != b.NumInputs() {
		return fmt.Errorf("check: input counts differ (%d vs %d)", a.NumInputs(), b.NumInputs())
	}
	if a.NumOutputs() != b.NumOutputs() {
		return fmt.Errorf("check: output counts differ (%d vs %d)", a.NumOutputs(), b.NumOutputs())
	}
	rng := randutil.New(opts.Seed)
	sa := sim.New(a, opts.Init)
	sb := sim.New(b, opts.Init)
	for k := 0; k < opts.Sequences; k++ {
		seq := sim.RandomSequence(rng, a.NumInputs(), opts.Length)
		sa.Reset()
		sb.Reset()
		for u := 0; u < seq.Len(); u++ {
			oa := sa.Step(seq.Vecs[u])
			ob := sb.Step(seq.Vecs[u])
			for i := range oa {
				if oa[i] != ob[i] {
					return &Mismatch{Time: u, Output: i, A: oa[i], B: ob[i], Sequence: seq}
				}
			}
		}
	}
	return nil
}
