package check

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/wgen"
)

func TestBenchRoundTripEquivalence(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s344"} {
		c := iscas.MustLoad(name)
		var buf bytes.Buffer
		if err := bench.Write(&buf, c); err != nil {
			t.Fatal(err)
		}
		c2, err := bench.Parse(name+"_rt", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := Equivalent(c, c2, Options{Seed: 1, Init: logic.Zero}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestDetectsRealDifference(t *testing.T) {
	a := build(t, circuit.And)
	b := build(t, circuit.Or)
	err := Equivalent(a, b, Options{Seed: 2, Init: logic.Zero})
	var m *Mismatch
	if !errors.As(err, &m) {
		t.Fatalf("expected a mismatch, got %v", err)
	}
	if m.Sequence == nil || m.Time < 0 {
		t.Fatalf("mismatch missing context: %+v", m)
	}
	if m.Error() == "" {
		t.Fatal("empty error text")
	}
}

func build(t *testing.T, gt circuit.GateType) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("g")
	b.Input("a")
	b.Input("b")
	b.Gate("z", gt, "a", "b")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInterfaceMismatch(t *testing.T) {
	a := build(t, circuit.And)
	b := circuit.NewBuilder("one")
	b.Input("a")
	b.Gate("z", circuit.Not, "a")
	b.Output("z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := Equivalent(a, c, Options{}); err == nil {
		t.Fatal("interface mismatch accepted")
	}
}

func TestSequentialDifferenceFound(t *testing.T) {
	// Two shift registers of different depth only diverge after the shorter
	// one's latency: the checker must still catch it.
	mk := func(n int) *circuit.Circuit {
		b := circuit.NewBuilder("sr")
		b.Input("in")
		prev := "in"
		for i := 0; i < n; i++ {
			name := "q" + string(rune('0'+i))
			b.DFF(name, prev)
			prev = name
		}
		b.Gate("out", circuit.Buf, prev)
		b.Output("out")
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if err := Equivalent(mk(3), mk(4), Options{Seed: 3, Init: logic.Zero}); err == nil {
		t.Fatal("different latencies not detected")
	}
	if err := Equivalent(mk(3), mk(3), Options{Seed: 3, Init: logic.Zero}); err != nil {
		t.Fatalf("identical registers flagged: %v", err)
	}
}

func TestGeneratorBenchRoundTrip(t *testing.T) {
	// A synthesized generator survives the .bench round trip behaviourally.
	omega := []core.Assignment{
		{Subs: []string{"01", "0", "100", "1"}},
		{Subs: []string{"100", "00", "01", "100"}},
	}
	g, err := wgen.Synthesize("gen", omega, 12)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bench.Write(&buf, g.Circuit); err != nil {
		t.Fatal(err)
	}
	rt, err := bench.Parse("gen_rt", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Equivalent(g.Circuit, rt, Options{Seed: 4, Init: logic.Zero, Length: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestXInitEquivalence(t *testing.T) {
	c := iscas.MustLoad("s27")
	if err := Equivalent(c, c, Options{Seed: 5, Init: logic.X, Length: 32}); err != nil {
		t.Fatalf("self-equivalence with X init failed: %v", err)
	}
}
