package obsv

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// ReportSchema identifies the JSON run-report format.
const ReportSchema = "wbist-report/v1"

// Report is the digested view of one run: the coverage-vs-vector curve of the
// deterministic sequence with its knee, the phase cost breakdown, kernel
// event statistics, the slowest fault groups and the per-assignment detection
// attribution. Build it with BuildReport, render it with Render or marshal it
// as JSON.
type Report struct {
	Schema      string `json:"schema"`
	Circuit     string `json:"circuit"`
	Kernel      string `json:"kernel"`
	TotalFaults int    `json:"total_faults"`
	Targets     int    `json:"targets"`
	TLen        int    `json:"t_len"`

	Coverage CoverageStats `json:"coverage"`
	// Curve is the coverage-vs-vector curve of T: one point per time unit at
	// which at least one new fault was detected.
	Curve []CurvePoint `json:"curve"`
	// Phases is the wall/alloc breakdown per span path (empty without
	// metrics input).
	Phases []PhaseReport `json:"phases,omitempty"`
	// KernelCounters sums the hot-path counters over all metrics records.
	KernelCounters map[string]int64 `json:"kernel_counters,omitempty"`
	// SlowGroups are the fault groups of the T segment that simulated the
	// most vectors (ties broken by group index), most expensive first.
	SlowGroups []GroupCost `json:"slow_groups,omitempty"`
	// Assignments is the per-window detection attribution, T first.
	Assignments []AssignmentReport `json:"assignments"`
	// PeakActivity and MeanActivity summarise the T segment's per-cycle
	// fault-free switching profile (0 when no activity was recorded).
	PeakActivity int     `json:"peak_activity"`
	MeanActivity float64 `json:"mean_activity"`
}

// CoverageStats summarises the T coverage curve.
type CoverageStats struct {
	// Detected is the number of universe faults T detects; Fraction is
	// Detected / TotalFaults.
	Detected int     `json:"detected"`
	Fraction float64 `json:"fraction"`
	// Knee is the curve point with maximum distance from the chord joining
	// the curve's endpoints — past it, extra vectors buy little coverage.
	Knee CurvePoint `json:"knee"`
	// T50..T99 are the first time units reaching 50/90/95/99% of the final
	// detection count (-1 when the curve is empty).
	T50 int `json:"t50"`
	T90 int `json:"t90"`
	T95 int `json:"t95"`
	T99 int `json:"t99"`
}

// CurvePoint is one point of a coverage curve.
type CurvePoint struct {
	// Vector is the time unit; Detected the cumulative detections up to and
	// including it; Fraction is Detected over the fault universe.
	Vector   int     `json:"vector"`
	Detected int     `json:"detected"`
	Fraction float64 `json:"fraction"`
}

// PhaseReport is one span path's aggregated cost.
type PhaseReport struct {
	Span        string  `json:"span"`
	Count       int     `json:"count"`
	WallSeconds float64 `json:"wall_s"`
	AllocMB     float64 `json:"alloc_mb"`
}

// GroupCost is one fault group's simulation cost in vectors.
type GroupCost struct {
	Group   int `json:"group"`
	Vectors int `json:"vectors"`
}

// AssignmentReport is one window's detection attribution.
type AssignmentReport struct {
	// Assignment is -1 for the deterministic sequence T.
	Assignment int `json:"assignment"`
	Vectors    int `json:"vectors"`
	Faults     int `json:"faults"`
	Detected   int `json:"detected"`
	// FirstDet/LastDet are the earliest and latest detection times inside
	// the window (-1 when it detected nothing).
	FirstDet int `json:"first_det"`
	LastDet  int `json:"last_det"`
}

// maxSlowGroups bounds the slowest-groups table.
const maxSlowGroups = 5

// BuildReport digests a run trace and (optionally) the per-phase metrics of
// the run into a report. Either input may be nil/empty; the report covers
// whatever is available.
func BuildReport(rt *RunTrace, phases []telemetry.PhaseStats) *Report {
	rep := &Report{Schema: ReportSchema}
	if rt != nil {
		rep.Circuit = rt.Circuit
		rep.Kernel = rt.Kernel
		rep.TotalFaults = rt.TotalFaults
		rep.Targets = rt.Targets
		rep.TLen = rt.TLen
		for i := range rt.Segments {
			seg := &rt.Segments[i]
			rep.Assignments = append(rep.Assignments, assignmentReport(seg))
			if seg.Assignment == -1 {
				rep.Curve = coverageCurve(seg, rt.TotalFaults)
				rep.Coverage = coverageStats(rep.Curve)
				rep.SlowGroups = slowGroups(seg.GroupVectors)
				rep.PeakActivity, rep.MeanActivity = activityStats(seg.Activity)
			}
		}
	}
	for _, p := range phases {
		rep.Phases = append(rep.Phases, PhaseReport{
			Span:        p.Span,
			Count:       p.Count,
			WallSeconds: p.Wall().Seconds(),
			AllocMB:     float64(p.AllocBytes) / (1 << 20),
		})
		for name, v := range p.Counters {
			if rep.KernelCounters == nil {
				rep.KernelCounters = map[string]int64{}
			}
			rep.KernelCounters[name] += v
		}
	}
	return rep
}

func assignmentReport(seg *Segment) AssignmentReport {
	ar := AssignmentReport{
		Assignment: seg.Assignment,
		Vectors:    seg.Vectors,
		Faults:     seg.Faults,
		Detected:   seg.Detected,
		FirstDet:   -1,
		LastDet:    -1,
	}
	for _, ev := range seg.Events {
		if ar.FirstDet < 0 || ev.Time < ar.FirstDet {
			ar.FirstDet = ev.Time
		}
		if ev.Time > ar.LastDet {
			ar.LastDet = ev.Time
		}
	}
	return ar
}

// coverageCurve folds a segment's events into cumulative detections per time
// unit, one point per time unit with at least one new detection.
func coverageCurve(seg *Segment, universe int) []CurvePoint {
	perTime := map[int]int{}
	for _, ev := range seg.Events {
		perTime[ev.Time]++
	}
	times := make([]int, 0, len(perTime))
	for t := range perTime {
		times = append(times, t)
	}
	sort.Ints(times)
	curve := make([]CurvePoint, 0, len(times))
	cum := 0
	for _, t := range times {
		cum += perTime[t]
		p := CurvePoint{Vector: t, Detected: cum}
		if universe > 0 {
			p.Fraction = float64(cum) / float64(universe)
		}
		curve = append(curve, p)
	}
	return curve
}

func coverageStats(curve []CurvePoint) CoverageStats {
	cs := CoverageStats{T50: -1, T90: -1, T95: -1, T99: -1}
	if len(curve) == 0 {
		return cs
	}
	last := curve[len(curve)-1]
	cs.Detected = last.Detected
	cs.Fraction = last.Fraction
	// Knee: the point farthest from the chord joining the curve's endpoints
	// (the classic max-chord-distance knee detector). With one point, the
	// point itself is the knee.
	x0, y0 := float64(curve[0].Vector), float64(curve[0].Detected)
	dx, dy := float64(last.Vector)-x0, float64(last.Detected)-y0
	best, bestIdx := -1.0, 0
	for i, p := range curve {
		// Unnormalised distance from p to the chord; the common normaliser
		// |(dx,dy)| does not change the argmax.
		d := dy*(float64(p.Vector)-x0) - dx*(float64(p.Detected)-y0)
		if d < 0 {
			d = -d
		}
		if d > best {
			best, bestIdx = d, i
		}
	}
	cs.Knee = curve[bestIdx]
	mark := func(q float64) int {
		goal := int(q*float64(cs.Detected) + 0.999999) // ceil without drifting on exact multiples
		if goal <= 0 {
			goal = 1
		}
		for _, p := range curve {
			if p.Detected >= goal {
				return p.Vector
			}
		}
		return -1
	}
	cs.T50, cs.T90, cs.T95, cs.T99 = mark(0.50), mark(0.90), mark(0.95), mark(0.99)
	return cs
}

func slowGroups(vectors []int) []GroupCost {
	costs := make([]GroupCost, 0, len(vectors))
	for g, v := range vectors {
		costs = append(costs, GroupCost{Group: g, Vectors: v})
	}
	sort.Slice(costs, func(i, j int) bool {
		if costs[i].Vectors != costs[j].Vectors {
			return costs[i].Vectors > costs[j].Vectors
		}
		return costs[i].Group < costs[j].Group
	})
	if len(costs) > maxSlowGroups {
		costs = costs[:maxSlowGroups]
	}
	return costs
}

func activityStats(act []int) (peak int, mean float64) {
	if len(act) == 0 {
		return 0, 0
	}
	sum := 0
	for _, a := range act {
		sum += a
		if a > peak {
			peak = a
		}
	}
	return peak, float64(sum) / float64(len(act))
}

// Render writes the human-readable form of a report.
func Render(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "run report: circuit=%s kernel=%s faults=%d targets=%d |T|=%d\n",
		orDash(rep.Circuit), orDash(rep.Kernel), rep.TotalFaults, rep.Targets, rep.TLen)

	if len(rep.Curve) > 0 {
		cs := rep.Coverage
		fmt.Fprintf(w, "\ncoverage of T: %d/%d faults (%.1f%%)\n",
			cs.Detected, rep.TotalFaults, 100*cs.Fraction)
		fmt.Fprintf(w, "  knee at vector %d (%d detected, %.1f%%)\n",
			cs.Knee.Vector, cs.Knee.Detected, 100*cs.Knee.Fraction)
		fmt.Fprintf(w, "  50%%/90%%/95%%/99%% of detections by vector %d/%d/%d/%d\n",
			cs.T50, cs.T90, cs.T95, cs.T99)
		renderCurve(w, rep.Curve)
	}
	if rep.PeakActivity > 0 {
		fmt.Fprintf(w, "\nfault-free activity: peak %d nodes/cycle, mean %.1f\n",
			rep.PeakActivity, rep.MeanActivity)
	}
	if len(rep.SlowGroups) > 0 {
		fmt.Fprintf(w, "\nslowest fault groups (vectors simulated):\n")
		for _, g := range rep.SlowGroups {
			fmt.Fprintf(w, "  group %3d  %6d vectors\n", g.Group, g.Vectors)
		}
	}
	if len(rep.Assignments) > 0 {
		fmt.Fprintf(w, "\ndetection attribution per window:\n")
		fmt.Fprintf(w, "  %-10s %8s %8s %9s %10s %9s\n",
			"window", "vectors", "faults", "detected", "first-det", "last-det")
		for _, a := range rep.Assignments {
			name := fmt.Sprintf("A%d", a.Assignment)
			if a.Assignment == -1 {
				name = "T"
			}
			fmt.Fprintf(w, "  %-10s %8d %8d %9d %10d %9d\n",
				name, a.Vectors, a.Faults, a.Detected, a.FirstDet, a.LastDet)
		}
	}
	if len(rep.Phases) > 0 {
		fmt.Fprintf(w, "\nphase breakdown:\n")
		fmt.Fprintf(w, "  %-40s %5s %10s %10s\n", "span", "runs", "wall", "alloc")
		for _, p := range rep.Phases {
			fmt.Fprintf(w, "  %-40s %5d %9.3fs %8.1fMB\n",
				p.Span, p.Count, p.WallSeconds, p.AllocMB)
		}
	}
	if len(rep.KernelCounters) > 0 {
		fmt.Fprintf(w, "\nkernel counters:\n")
		names := make([]string, 0, len(rep.KernelCounters))
		for name := range rep.KernelCounters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "  %-28s %d\n", name, rep.KernelCounters[name])
		}
	}
}

// renderCurve draws a small fixed-width ASCII sparkline of the curve.
func renderCurve(w io.Writer, curve []CurvePoint) {
	const cols, rows = 60, 8
	last := curve[len(curve)-1]
	if last.Vector == 0 || last.Detected == 0 {
		return
	}
	// For each column, the cumulative detections at the column's last vector.
	height := make([]int, cols)
	ci := 0
	cum := 0
	for col := 0; col < cols; col++ {
		limit := (col + 1) * (last.Vector + 1) / cols
		for ci < len(curve) && curve[ci].Vector < limit {
			cum = curve[ci].Detected
			ci++
		}
		height[col] = (cum*rows + last.Detected - 1) / last.Detected
	}
	fmt.Fprintf(w, "  coverage curve (x: vector 0..%d, y: detections 0..%d)\n", last.Vector, last.Detected)
	for r := rows; r >= 1; r-- {
		var sb strings.Builder
		sb.WriteString("  |")
		for _, h := range height {
			if h >= r {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		fmt.Fprintln(w, sb.String())
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", cols))
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
