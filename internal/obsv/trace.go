// Package obsv is the domain-observability layer on top of the generic
// instrumentation in internal/telemetry: it gives the fault simulator an
// optional detection-provenance trace (who detected which fault, when, at
// which primary output, under which weight assignment), folds the stream
// into coverage-vs-vector curves, and renders whole-run reports.
//
// The package sits below fsim in the import graph (it knows nothing about
// circuits or simulators), so both fault-simulation kernels can feed a
// *Trace directly. The contract mirrors the simulator's determinism
// guarantee: for a fixed circuit, sequence and fault list the canonical
// stream (CanonicalBytes) is byte-identical for every Workers count and for
// both kernels — events are buffered per fault group and merged in group
// order, exactly like the simulator's result merge. Worker and kernel are
// carried as annotations only and excluded from the canonical form.
package obsv

import (
	"fmt"
	"strings"
)

// Event is one first detection of a fault, as it appears in the merged
// stream of a traced fault-simulation run.
type Event struct {
	// Fault is the index of the detected fault in the run's fault list.
	Fault int `json:"fault"`
	// Time is the time unit of the first detection (including the run's
	// TimeOffset, so split continuation runs report absolute times).
	Time int `json:"t"`
	// PO is the index of the detecting primary output (the lowest-index
	// output showing a binary difference at Time).
	PO int `json:"po"`
	// Group is the fault group the fault was simulated in.
	Group int `json:"group"`
	// Assignment is the index of the weight assignment whose window was
	// being simulated, or -1 when the run was not driven by one.
	Assignment int `json:"assignment"`
	// Worker is the index of the worker goroutine that simulated the group
	// (annotation only: not part of the canonical stream).
	Worker int `json:"worker"`
	// Kernel names the gate-evaluation kernel that produced the event
	// (annotation only: not part of the canonical stream).
	Kernel string `json:"kernel,omitempty"`
}

// Trace collects the detection-provenance stream of one fault-simulation
// run. Create it with NewTrace, set Assignment if the run simulates a weight
// assignment's window, and pass it to the simulator (fsim.Options.Trace).
// A nil *Trace is the "tracing off" trace: Begin and Group are safe on it
// and the simulator pays nothing beyond one nil check per run.
//
// A Trace must not be shared by concurrent simulator runs; within one run
// the per-group buffers are written only by the worker that owns the group,
// so parallel runs need no locking.
type Trace struct {
	// Assignment is stamped into every event of this run (-1 = the run is
	// not a weight-assignment window).
	Assignment int

	kernel string
	groups []groupTrace
}

// groupTrace is the per-fault-group buffer: only the worker simulating the
// group touches it, which is what keeps parallel traced runs race-free.
type groupTrace struct {
	worker  int
	vectors int
	events  []rawEvent
	// activity[i] is the number of circuit nodes whose fault-free value
	// changed between simulated vector i and i+1 (recorded for group 0
	// only: slot 0 is the same machine in every group).
	activity []int32
}

type rawEvent struct {
	fault, time, po int32
}

// NewTrace returns an empty trace with no assignment attribution.
func NewTrace() *Trace { return &Trace{Assignment: -1} }

// Begin resets the trace for a run over numGroups fault groups produced by
// the named kernel. The simulator calls it once per run, before any group is
// simulated; buffers are reused across runs. Safe on a nil trace.
func (t *Trace) Begin(numGroups int, kernel string) {
	if t == nil {
		return
	}
	t.kernel = kernel
	if cap(t.groups) < numGroups {
		t.groups = make([]groupTrace, numGroups)
	} else {
		t.groups = t.groups[:numGroups]
		for g := range t.groups {
			t.groups[g] = groupTrace{
				events:   t.groups[g].events[:0],
				activity: t.groups[g].activity[:0],
			}
		}
	}
}

// Group returns the sink for one fault group (nil on a nil trace, so the
// kernels hoist a single nil check out of their loops).
func (t *Trace) Group(g int) *GroupTrace {
	if t == nil {
		return nil
	}
	return (*GroupTrace)(&t.groups[g])
}

// GroupTrace is the simulator-facing sink of one fault group. All methods
// are safe on a nil receiver.
type GroupTrace groupTrace

// SetWorker records which worker goroutine simulates the group.
func (g *GroupTrace) SetWorker(w int) {
	if g != nil {
		g.worker = w
	}
}

// Detect records the first detection of a fault: fault-list index, time unit
// (with TimeOffset applied) and detecting primary-output index.
func (g *GroupTrace) Detect(fault, time, po int) {
	if g != nil {
		g.events = append(g.events, rawEvent{int32(fault), int32(time), int32(po)})
	}
}

// Activity appends one per-cycle activity sample: the number of nodes whose
// fault-free value changed going into the cycle. The simulator records it
// for group 0 only (the fault-free machine is the same in every group).
func (g *GroupTrace) Activity(changed int) {
	if g != nil {
		g.activity = append(g.activity, int32(changed))
	}
}

// SetVectors records how many time units the group's pass simulated (groups
// whose faults are all detected early exit before the sequence ends).
func (g *GroupTrace) SetVectors(n int) {
	if g != nil {
		g.vectors = n
	}
}

// Kernel returns the kernel name recorded by Begin.
func (t *Trace) Kernel() string {
	if t == nil {
		return ""
	}
	return t.kernel
}

// NumGroups returns the number of fault groups of the traced run.
func (t *Trace) NumGroups() int {
	if t == nil {
		return 0
	}
	return len(t.groups)
}

// Events returns the merged detection stream in group order (within a group:
// ascending time, then ascending primary-output index, then ascending fault
// index — the order the detection scans run in), stamped with the trace's
// assignment and each group's worker and the run's kernel.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for g := range t.groups {
		gt := &t.groups[g]
		for _, e := range gt.events {
			out = append(out, Event{
				Fault:      int(e.fault),
				Time:       int(e.time),
				PO:         int(e.po),
				Group:      g,
				Assignment: t.Assignment,
				Worker:     gt.worker,
				Kernel:     t.kernel,
			})
		}
	}
	return out
}

// NumDetections returns the total number of detection events.
func (t *Trace) NumDetections() int {
	if t == nil {
		return 0
	}
	n := 0
	for g := range t.groups {
		n += len(t.groups[g].events)
	}
	return n
}

// Activity returns group 0's per-cycle activity curve: element i is the
// number of nodes whose fault-free value changed between simulated vector i
// and vector i+1 of the run (the word-level switching profile the
// power-constrained scheduling direction needs).
func (t *Trace) Activity() []int {
	if t == nil || len(t.groups) == 0 {
		return nil
	}
	src := t.groups[0].activity
	out := make([]int, len(src))
	for i, v := range src {
		out[i] = int(v)
	}
	return out
}

// GroupVectors returns, per fault group, the number of time units its pass
// simulated. Groups that early-exit (every fault detected) report fewer
// vectors; the maximum entries are the run's slowest groups.
func (t *Trace) GroupVectors() []int {
	if t == nil {
		return nil
	}
	out := make([]int, len(t.groups))
	for g := range t.groups {
		out[g] = t.groups[g].vectors
	}
	return out
}

// CanonicalBytes renders the scheduling-independent core of the trace: the
// group-major event stream (fault, time, primary output), each group's
// vector count, the assignment stamp and group 0's activity curve. Worker
// and kernel annotations are excluded. Two traced runs over the same
// circuit, sequence and fault list must produce byte-identical canonical
// forms for every Workers count and both kernels; internal/difftest enforces
// this.
func (t *Trace) CanonicalBytes() []byte {
	if t == nil {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace assignment=%d groups=%d\n", t.Assignment, len(t.groups))
	for g := range t.groups {
		gt := &t.groups[g]
		fmt.Fprintf(&sb, "g %d v %d\n", g, gt.vectors)
		for _, e := range gt.events {
			fmt.Fprintf(&sb, "d %d %d %d\n", e.fault, e.time, e.po)
		}
	}
	for _, a := range t.Activity() {
		fmt.Fprintf(&sb, "a %d\n", a)
	}
	return []byte(sb.String())
}
