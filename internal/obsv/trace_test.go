package obsv

import (
	"bytes"
	"reflect"
	"testing"
)

// TestNilTrace pins the "tracing off" contract: every method of a nil *Trace
// and a nil *GroupTrace is a safe no-op, because the simulator hot paths rely
// on exactly that instead of branching per call site.
func TestNilTrace(t *testing.T) {
	var tr *Trace
	tr.Begin(4, "dense")
	if g := tr.Group(2); g != nil {
		t.Fatalf("nil trace Group = %v, want nil", g)
	}
	var g *GroupTrace
	g.SetWorker(3)
	g.Detect(1, 2, 3)
	g.Activity(7)
	g.SetVectors(9)
	if tr.Kernel() != "" || tr.NumGroups() != 0 || tr.NumDetections() != 0 {
		t.Fatal("nil trace accessors must report zero values")
	}
	if tr.Events() != nil || tr.Activity() != nil || tr.GroupVectors() != nil || tr.CanonicalBytes() != nil {
		t.Fatal("nil trace slices must be nil")
	}
}

func buildSample() *Trace {
	tr := NewTrace()
	tr.Assignment = 2
	tr.Begin(3, "event")
	g0 := tr.Group(0)
	g0.SetWorker(0)
	g0.Detect(5, 0, 1)
	g0.Detect(7, 3, 0)
	g0.Activity(11)
	g0.Activity(4)
	g0.SetVectors(3)
	g2 := tr.Group(2)
	g2.SetWorker(1)
	g2.Detect(130, 1, 2)
	g2.SetVectors(2)
	tr.Group(1).SetVectors(3)
	return tr
}

func TestEventsMergeGroupOrder(t *testing.T) {
	tr := buildSample()
	want := []Event{
		{Fault: 5, Time: 0, PO: 1, Group: 0, Assignment: 2, Worker: 0, Kernel: "event"},
		{Fault: 7, Time: 3, PO: 0, Group: 0, Assignment: 2, Worker: 0, Kernel: "event"},
		{Fault: 130, Time: 1, PO: 2, Group: 2, Assignment: 2, Worker: 1, Kernel: "event"},
	}
	if got := tr.Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Events() = %+v, want %+v", got, want)
	}
	if tr.NumDetections() != 3 {
		t.Fatalf("NumDetections = %d, want 3", tr.NumDetections())
	}
	if got, want := tr.Activity(), []int{11, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Activity = %v, want %v", got, want)
	}
	if got, want := tr.GroupVectors(), []int{3, 3, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("GroupVectors = %v, want %v", got, want)
	}
	if tr.Kernel() != "event" || tr.NumGroups() != 3 {
		t.Fatalf("Kernel/NumGroups = %q/%d", tr.Kernel(), tr.NumGroups())
	}
}

// TestCanonicalBytesExcludesAnnotations is the determinism contract:
// worker and kernel are annotations, so two traces differing only in those
// must render identical canonical forms.
func TestCanonicalBytesExcludesAnnotations(t *testing.T) {
	a := buildSample()
	b := buildSample()
	b.Begin(3, "dense") // different kernel ...
	g0 := b.Group(0)
	g0.SetWorker(7) // ... and different worker assignment
	g0.Detect(5, 0, 1)
	g0.Detect(7, 3, 0)
	g0.Activity(11)
	g0.Activity(4)
	g0.SetVectors(3)
	g2 := b.Group(2)
	g2.SetWorker(5)
	g2.Detect(130, 1, 2)
	g2.SetVectors(2)
	b.Group(1).SetVectors(3)
	if !bytes.Equal(a.CanonicalBytes(), b.CanonicalBytes()) {
		t.Fatalf("canonical forms differ across annotations:\n%s\nvs\n%s",
			a.CanonicalBytes(), b.CanonicalBytes())
	}
	if a.Events()[0].Kernel == b.Events()[0].Kernel {
		t.Fatal("annotations should still differ in Events()")
	}
}

// TestBeginReusesBuffers checks that re-running a trace resets all per-group
// state (a stale event or activity sample from the previous run would break
// byte-identity between a fresh and a reused trace).
func TestBeginReusesBuffers(t *testing.T) {
	tr := buildSample()
	first := string(tr.CanonicalBytes())
	// Rebuild the identical run on the same trace value.
	tr2 := buildSample()
	tr.Begin(3, "event")
	g0 := tr.Group(0)
	g0.Detect(5, 0, 1)
	g0.Detect(7, 3, 0)
	g0.Activity(11)
	g0.Activity(4)
	g0.SetVectors(3)
	g2 := tr.Group(2)
	g2.SetWorker(1)
	g2.Detect(130, 1, 2)
	g2.SetVectors(2)
	tr.Group(1).SetVectors(3)
	if got := string(tr.CanonicalBytes()); got != first {
		t.Fatalf("reused trace differs from first run:\n%s\nvs\n%s", got, first)
	}
	if !bytes.Equal(tr.CanonicalBytes(), tr2.CanonicalBytes()) {
		t.Fatal("reused trace differs from fresh trace")
	}
	// Shrinking and regrowing must not resurrect group 2's old events.
	tr.Begin(1, "event")
	tr.Group(0).SetVectors(1)
	tr.Begin(3, "event")
	if tr.NumDetections() != 0 {
		t.Fatalf("Begin leaked %d events from a previous run", tr.NumDetections())
	}
}
