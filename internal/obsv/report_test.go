package obsv

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// hockeyTrace builds a RunTrace with a hockey-stick T curve (steep early
// detections, long flat tail) whose knee and percentile marks are computable
// by hand, plus one assignment segment.
func hockeyTrace() *RunTrace {
	rt := &RunTrace{
		Schema:      TraceSchema,
		Circuit:     "toy",
		Kernel:      "dense",
		TotalFaults: 20,
		Targets:     10,
		TLen:        100,
	}
	// 8 detections in vectors 0..3, then one at 50 and one at 100.
	tSeg := Segment{
		Assignment:   -1,
		Vectors:      100,
		Faults:       20,
		Detected:     10,
		Activity:     []int{3, 7, 5, 5},
		GroupVectors: []int{100, 40, 100, 60, 100, 100, 100},
	}
	for i, tm := range []int{0, 0, 1, 1, 2, 2, 3, 3, 50, 100} {
		tSeg.Events = append(tSeg.Events, Event{
			Fault: i, Time: tm, PO: i % 2, Group: i / 3, Assignment: -1,
		})
	}
	aSeg := Segment{
		Assignment: 0,
		Vectors:    30,
		Faults:     10,
		Detected:   2,
		Events: []Event{
			{Fault: 4, Time: 107, PO: 0, Group: 0, Assignment: 0},
			{Fault: 9, Time: 112, PO: 1, Group: 0, Assignment: 0},
		},
	}
	rt.Segments = []Segment{tSeg, aSeg}
	return rt
}

func TestBuildReportCurveAndStats(t *testing.T) {
	rt := hockeyTrace()
	rep := BuildReport(rt, nil)
	if rep.Schema != ReportSchema || rep.Circuit != "toy" || rep.Kernel != "dense" {
		t.Errorf("header = %q/%q/%q", rep.Schema, rep.Circuit, rep.Kernel)
	}
	if rep.TotalFaults != 20 || rep.Targets != 10 || rep.TLen != 100 {
		t.Errorf("sizes = %d/%d/%d", rep.TotalFaults, rep.Targets, rep.TLen)
	}
	// Curve: cumulative (0,2) (1,4) (2,6) (3,8) (50,9) (100,10).
	wantCurve := []CurvePoint{
		{0, 2, 0.1}, {1, 4, 0.2}, {2, 6, 0.3}, {3, 8, 0.4}, {50, 9, 0.45}, {100, 10, 0.5},
	}
	if !reflect.DeepEqual(rep.Curve, wantCurve) {
		t.Errorf("curve = %+v, want %+v", rep.Curve, wantCurve)
	}
	cs := rep.Coverage
	if cs.Detected != 10 || math.Abs(cs.Fraction-0.5) > 1e-12 {
		t.Errorf("coverage = %d (%.3f)", cs.Detected, cs.Fraction)
	}
	// The chord runs (0,2)→(100,10); vector 3 (8 detected) is farthest above.
	if cs.Knee.Vector != 3 || cs.Knee.Detected != 8 {
		t.Errorf("knee = %+v", cs.Knee)
	}
	// Percentile marks: ceil(q*10) detections — 5→t=2, 9→t=50, 10→t=100.
	if cs.T50 != 2 || cs.T90 != 50 || cs.T95 != 100 || cs.T99 != 100 {
		t.Errorf("marks = %d/%d/%d/%d", cs.T50, cs.T90, cs.T95, cs.T99)
	}
	// Slow groups: descending vectors, ascending group on ties, capped at 5.
	wantSlow := []GroupCost{{0, 100}, {2, 100}, {4, 100}, {5, 100}, {6, 100}}
	if !reflect.DeepEqual(rep.SlowGroups, wantSlow) {
		t.Errorf("slow groups = %+v, want %+v", rep.SlowGroups, wantSlow)
	}
	if rep.PeakActivity != 7 || math.Abs(rep.MeanActivity-5) > 1e-12 {
		t.Errorf("activity = %d / %.2f", rep.PeakActivity, rep.MeanActivity)
	}
	// Attribution: T first with its detection span, then A0.
	if len(rep.Assignments) != 2 {
		t.Fatalf("got %d assignment reports", len(rep.Assignments))
	}
	if a := rep.Assignments[0]; a.Assignment != -1 || a.FirstDet != 0 || a.LastDet != 100 {
		t.Errorf("T attribution = %+v", a)
	}
	if a := rep.Assignments[1]; a.Assignment != 0 || a.FirstDet != 107 || a.LastDet != 112 || a.Detected != 2 {
		t.Errorf("A0 attribution = %+v", a)
	}
}

func TestBuildReportEmptyInputs(t *testing.T) {
	rep := BuildReport(nil, nil)
	if rep.Schema != ReportSchema || len(rep.Curve) != 0 || len(rep.Assignments) != 0 {
		t.Errorf("empty report = %+v", rep)
	}
	if cs := rep.Coverage; cs.T50 != 0 || cs.Detected != 0 {
		// BuildReport with no T segment leaves Coverage zero-valued.
		t.Errorf("coverage of empty report = %+v", cs)
	}
	// A segment with no events reports -1 detection bounds.
	rt := &RunTrace{Segments: []Segment{{Assignment: 0, Vectors: 5}}}
	rep = BuildReport(rt, nil)
	if a := rep.Assignments[0]; a.FirstDet != -1 || a.LastDet != -1 {
		t.Errorf("empty segment attribution = %+v", a)
	}
	if cs := coverageStats(nil); cs.T50 != -1 || cs.T99 != -1 {
		t.Errorf("stats of empty curve = %+v", cs)
	}
}

func TestBuildReportPhases(t *testing.T) {
	phases := []telemetry.PhaseStats{
		{Span: "pipeline/atpg", Count: 1, WallNS: 2_000_000_000, AllocBytes: 2 << 20,
			Counters: map[string]int64{"fsim.gate_evals": 100}},
		{Span: "pipeline/core", Count: 3, WallNS: 500_000_000,
			Counters: map[string]int64{"fsim.gate_evals": 50, "fsim.vectors": 7}},
	}
	rep := BuildReport(nil, phases)
	if len(rep.Phases) != 2 {
		t.Fatalf("got %d phases", len(rep.Phases))
	}
	if p := rep.Phases[0]; p.Span != "pipeline/atpg" || p.WallSeconds != 2 || p.AllocMB != 2 {
		t.Errorf("phase 0 = %+v", p)
	}
	if rep.KernelCounters["fsim.gate_evals"] != 150 || rep.KernelCounters["fsim.vectors"] != 7 {
		t.Errorf("kernel counters = %v", rep.KernelCounters)
	}
}

func TestRenderReport(t *testing.T) {
	rt := hockeyTrace()
	phases := []telemetry.PhaseStats{{Span: "pipeline", Count: 1, WallNS: 1e9,
		Counters: map[string]int64{"fsim.vectors": 130}}}
	var buf bytes.Buffer
	Render(&buf, BuildReport(rt, phases))
	out := buf.String()
	for _, want := range []string{
		"circuit=toy kernel=dense faults=20 targets=10 |T|=100",
		"coverage of T: 10/20 faults (50.0%)",
		"knee at vector 3 (8 detected, 40.0%)",
		"50%/90%/95%/99% of detections by vector 2/50/100/100",
		"coverage curve (x: vector 0..100, y: detections 0..10)",
		"fault-free activity: peak 7 nodes/cycle, mean 5.0",
		"slowest fault groups",
		"detection attribution per window:",
		"  T    ",
		"  A0   ",
		"phase breakdown:",
		"pipeline",
		"kernel counters:",
		"fsim.vectors",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report lacks %q:\n%s", want, out)
		}
	}
	// The sparkline's top row must be sparse (late detections) and the
	// bottom row full (curve is cumulative and starts at 10%+ immediately).
	lines := strings.Split(out, "\n")
	var rows []string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "  |") {
			rows = append(rows, ln)
		}
	}
	if len(rows) != 8 {
		t.Fatalf("sparkline has %d rows, want 8", len(rows))
	}
	if n := strings.Count(rows[7], "#"); n != 60 {
		t.Errorf("bottom sparkline row has %d/60 cells filled", n)
	}
	if n := strings.Count(rows[0], "#"); n >= 60 {
		t.Errorf("top sparkline row is full (%d cells)", n)
	}
}

func TestRenderEmptyReport(t *testing.T) {
	var buf bytes.Buffer
	Render(&buf, BuildReport(nil, nil))
	if !strings.Contains(buf.String(), "circuit=- kernel=-") {
		t.Errorf("empty render = %q", buf.String())
	}
	// A curve that never detects anything must not render a sparkline.
	buf.Reset()
	renderCurve(&buf, []CurvePoint{{Vector: 0, Detected: 0}})
	if buf.Len() != 0 {
		t.Errorf("zero curve rendered %q", buf.String())
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := BuildReport(hockeyTrace(), nil)
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(rep, &back) {
		t.Errorf("JSON round trip drifts:\nA: %+v\nB: %+v", rep, &back)
	}
	if !bytes.Contains(b, []byte(`"schema":"wbist-report/v1"`)) {
		t.Errorf("JSON lacks schema tag: %s", b)
	}
}
