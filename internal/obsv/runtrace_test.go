package obsv

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestWriteReadTraceRoundTrip(t *testing.T) {
	rt := hockeyTrace()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, rt); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// header + (segment + events) per segment.
	wantLines := 1 + 2 + len(rt.Segments[0].Events) + len(rt.Segments[1].Events)
	if len(lines) != wantLines {
		t.Errorf("trace has %d lines, want %d", len(lines), wantLines)
	}
	if !strings.Contains(lines[0], `"type":"header"`) || !strings.Contains(lines[0], TraceSchema) {
		t.Errorf("header line = %q", lines[0])
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(rt, back) {
		t.Errorf("round trip drifts:\nA: %+v\nB: %+v", rt, back)
	}
}

func TestReadTraceSkipsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, hockeyTrace()); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	padded := strings.ReplaceAll(buf.String(), "\n", "\n\n")
	if _, err := ReadTrace(strings.NewReader(padded)); err != nil {
		t.Errorf("ReadTrace with blank lines: %v", err)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "no header"},
		{"bad JSON", "{oops\n", "line 1"},
		{"wrong schema", `{"type":"header","schema":"wbist-trace/v999"}` + "\n", "unsupported schema"},
		{"segment first", `{"type":"segment","segment":{"assignment":-1}}` + "\n", "segment before header"},
		{"event first", `{"type":"header","schema":"wbist-trace/v1"}` + "\n" +
			`{"type":"event","event":{"fault":0}}` + "\n", "event before segment"},
		{"unknown type", `{"type":"header","schema":"wbist-trace/v1"}` + "\n" +
			`{"type":"mystery"}` + "\n", "unknown record type"},
	}
	for _, tc := range cases {
		_, err := ReadTrace(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestTraceSegmentFold checks Trace.Segment carrying a simulator trace's
// streams into a Segment with the trace's assignment stamp.
func TestTraceSegmentFold(t *testing.T) {
	tr := NewTrace()
	tr.Assignment = 3
	tr.Begin(2, "dense")
	g0 := tr.Group(0)
	g0.Detect(1, 5, 0)
	g0.Activity(4)
	g0.SetVectors(10)
	g1 := tr.Group(1)
	g1.Detect(70, 2, 1)
	g1.SetVectors(6)
	seg := tr.Segment(10, 80, 2)
	if seg.Assignment != 3 || seg.Vectors != 10 || seg.Faults != 80 || seg.Detected != 2 {
		t.Errorf("segment header = %+v", seg)
	}
	if len(seg.Events) != 2 || seg.Events[0].Fault != 1 || seg.Events[1].Fault != 70 {
		t.Errorf("segment events = %+v", seg.Events)
	}
	if seg.Events[0].Assignment != 3 || seg.Events[1].Assignment != 3 {
		t.Errorf("assignment stamp missing: %+v", seg.Events)
	}
	if !reflect.DeepEqual(seg.Activity, []int{4}) || !reflect.DeepEqual(seg.GroupVectors, []int{10, 6}) {
		t.Errorf("activity/vectors = %v / %v", seg.Activity, seg.GroupVectors)
	}
}
