package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceSchema identifies the JSONL detection-trace format.
const TraceSchema = "wbist-trace/v1"

// RunTrace is the detection-provenance record of one whole pipeline run: the
// deterministic sequence T simulated against the collapsed fault universe,
// followed by every compacted weight assignment's window simulated (in
// schedule order) against the targets still undetected — the provenance
// behind the paper's Table 6 accounting.
type RunTrace struct {
	// Schema is TraceSchema.
	Schema string `json:"schema"`
	// Circuit names the circuit under test.
	Circuit string `json:"circuit"`
	// Kernel names the fsim kernel that produced the trace.
	Kernel string `json:"kernel"`
	// TotalFaults is the size of the collapsed fault universe (the fault
	// space of the T segment).
	TotalFaults int `json:"total_faults"`
	// Targets is the number of faults detected by T (the fault space of the
	// assignment segments: their event fault indices are target indices).
	Targets int `json:"targets"`
	// TLen is the length of the deterministic sequence T.
	TLen int `json:"t_len"`
	// Segments holds the T segment (Assignment == -1) followed by one
	// segment per compacted weight assignment, in schedule order.
	Segments []Segment `json:"-"`
}

// Segment is the trace of one simulated window.
type Segment struct {
	// Assignment is -1 for the deterministic sequence T, otherwise the index
	// of the weight assignment in the compacted schedule Ω.
	Assignment int `json:"assignment"`
	// Vectors is the window's sequence length.
	Vectors int `json:"vectors"`
	// Faults is the number of faults the window was simulated against (for
	// assignment segments: the targets still undetected when it ran).
	Faults int `json:"faults"`
	// Detected is the number of those faults the window detected.
	Detected int `json:"detected"`
	// Events is the window's detection stream in canonical (group-major)
	// order. In the T segment fault indices index the collapsed universe; in
	// assignment segments they index the run's target list.
	Events []Event `json:"-"`
	// Activity is the window's per-cycle fault-free switching profile
	// (see Trace.Activity).
	Activity []int `json:"activity,omitempty"`
	// GroupVectors is the per-fault-group simulated vector count
	// (see Trace.GroupVectors).
	GroupVectors []int `json:"group_vectors,omitempty"`
}

// traceLine is the tagged union of the JSONL representation: one header
// line, then per segment one segment line followed by its event lines.
type traceLine struct {
	Type string `json:"type"`
	*RunTrace
	Segment *Segment `json:"segment,omitempty"`
	Event   *Event   `json:"event,omitempty"`
}

// WriteTrace serialises a run trace as JSON lines: a header record, then for
// each segment a segment record followed by its event records. Events carry
// their segment's assignment stamp, so the stream is self-describing.
func WriteTrace(w io.Writer, rt *RunTrace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := *rt
	hdr.Schema = TraceSchema
	if err := enc.Encode(traceLine{Type: "header", RunTrace: &hdr}); err != nil {
		return err
	}
	for i := range rt.Segments {
		seg := rt.Segments[i]
		if err := enc.Encode(traceLine{Type: "segment", Segment: &seg}); err != nil {
			return err
		}
		for j := range seg.Events {
			if err := enc.Encode(traceLine{Type: "event", Event: &seg.Events[j]}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL run trace written by WriteTrace. Event lines are
// attached to the most recent segment line.
func ReadTrace(r io.Reader) (*RunTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var rt *RunTrace
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ln traceLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			return nil, fmt.Errorf("obsv: trace line %d: %w", lineNo, err)
		}
		switch ln.Type {
		case "header":
			if ln.RunTrace == nil || ln.Schema != TraceSchema {
				return nil, fmt.Errorf("obsv: trace line %d: unsupported schema %q (want %s)",
					lineNo, headerSchema(ln.RunTrace), TraceSchema)
			}
			rt = ln.RunTrace
		case "segment":
			if rt == nil {
				return nil, fmt.Errorf("obsv: trace line %d: segment before header", lineNo)
			}
			rt.Segments = append(rt.Segments, *ln.Segment)
		case "event":
			if rt == nil || len(rt.Segments) == 0 {
				return nil, fmt.Errorf("obsv: trace line %d: event before segment", lineNo)
			}
			seg := &rt.Segments[len(rt.Segments)-1]
			seg.Events = append(seg.Events, *ln.Event)
		default:
			return nil, fmt.Errorf("obsv: trace line %d: unknown record type %q", lineNo, ln.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rt == nil {
		return nil, fmt.Errorf("obsv: trace has no header record")
	}
	return rt, nil
}

func headerSchema(rt *RunTrace) string {
	if rt == nil {
		return ""
	}
	return rt.Schema
}

// Segment folds a simulator trace into a trace segment. vectors is the
// window's sequence length; detected the number of faults it detected.
func (t *Trace) Segment(vectors, faults, detected int) Segment {
	return Segment{
		Assignment:   t.Assignment,
		Vectors:      vectors,
		Faults:       faults,
		Detected:     detected,
		Events:       t.Events(),
		Activity:     t.Activity(),
		GroupVectors: t.GroupVectors(),
	}
}
