package scoap

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/iscas"
	"repro/internal/logic"
)

func build(t *testing.T, f func(b *circuit.Builder)) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("t")
	f(b)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAndGateMeasures(t *testing.T) {
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("b")
		b.Gate("g", circuit.And, "a", "b")
		b.Output("g")
	})
	m := Analyze(c, logic.X)
	a, _ := c.Lookup("a")
	g, _ := c.Lookup("g")
	// PIs: CC = 1. AND: CC1 = 1+1+1 = 3, CC0 = min(1,1)+1 = 2.
	if m.CC0[a] != 1 || m.CC1[a] != 1 {
		t.Fatalf("PI controllability: %d/%d", m.CC0[a], m.CC1[a])
	}
	if m.CC1[g] != 3 || m.CC0[g] != 2 {
		t.Fatalf("AND controllability: CC0=%d CC1=%d", m.CC0[g], m.CC1[g])
	}
	// PO observability 0; input a: CO = 0 + CC1(b) + 1 = 2.
	if m.CO[g] != 0 {
		t.Fatalf("PO observability %d", m.CO[g])
	}
	if m.CO[a] != 2 {
		t.Fatalf("input observability %d, want 2", m.CO[a])
	}
}

func TestInverterChain(t *testing.T) {
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Gate("n1", circuit.Not, "a")
		b.Gate("n2", circuit.Not, "n1")
		b.Output("n2")
	})
	m := Analyze(c, logic.X)
	n1, _ := c.Lookup("n1")
	n2, _ := c.Lookup("n2")
	a, _ := c.Lookup("a")
	if m.CC0[n1] != 2 || m.CC1[n1] != 2 {
		t.Fatalf("n1: %d/%d", m.CC0[n1], m.CC1[n1])
	}
	if m.CC0[n2] != 3 || m.CC1[n2] != 3 {
		t.Fatalf("n2: %d/%d", m.CC0[n2], m.CC1[n2])
	}
	if m.CO[n2] != 0 || m.CO[n1] != 1 || m.CO[a] != 2 {
		t.Fatalf("CO chain: %d %d %d", m.CO[n2], m.CO[n1], m.CO[a])
	}
}

func TestXorMeasures(t *testing.T) {
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("b")
		b.Gate("g", circuit.Xor, "a", "b")
		b.Output("g")
	})
	m := Analyze(c, logic.X)
	g, _ := c.Lookup("g")
	a, _ := c.Lookup("a")
	// XOR: CC0 = even parity cost + 1 = min(1+1, ...) + 1 = 3;
	// CC1 = odd parity cost + 1 = 3.
	if m.CC0[g] != 3 || m.CC1[g] != 3 {
		t.Fatalf("XOR: CC0=%d CC1=%d", m.CC0[g], m.CC1[g])
	}
	// CO(a) = 0 + min(CC0(b),CC1(b)) + 1 = 2.
	if m.CO[a] != 2 {
		t.Fatalf("CO(a) = %d", m.CO[a])
	}
}

func TestSequentialFeedbackConverges(t *testing.T) {
	// Toggle flip-flop: q' = XOR(q, en). The fixpoint must terminate and
	// produce finite measures (the state is reachable through en).
	c := build(t, func(b *circuit.Builder) {
		b.Input("en")
		b.DFF("q", "d")
		b.Gate("d", circuit.Xor, "q", "en")
		b.Gate("out", circuit.Buf, "q")
		b.Output("out")
	})
	m := Analyze(c, logic.Zero)
	q, _ := c.Lookup("q")
	if m.CC0[q] >= Inf || m.CC1[q] >= Inf {
		t.Fatalf("feedback state uncontrollable: %d/%d", m.CC0[q], m.CC1[q])
	}
	if m.CO[q] >= Inf {
		t.Fatalf("feedback state unobservable: %d", m.CO[q])
	}
	// Setting q needs at least one frame: CC must exceed the PI cost.
	if m.CC1[q] <= 1 {
		t.Fatalf("CC1(q) = %d, expected > 1 (one time frame)", m.CC1[q])
	}
}

func TestDeadStateSaturates(t *testing.T) {
	// A flip-flop fed by constant-0-ish logic: q' = AND(q, q) is just q, and
	// q starts (conceptually) uncontrollable to 1: with no input driving it,
	// CC1 must saturate at Inf.
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.DFF("q", "d")
		b.Gate("d", circuit.Buf, "q") // pure self-loop
		b.Gate("out", circuit.And, "a", "q")
		b.Output("out")
	})
	m := Analyze(c, logic.X)
	q, _ := c.Lookup("q")
	if m.CC1[q] < Inf {
		t.Fatalf("self-loop state claims controllable: CC1=%d", m.CC1[q])
	}
}

func TestS27AllFinite(t *testing.T) {
	c := iscas.MustLoad("s27")
	m := Analyze(c, logic.X)
	for id := range c.Nodes {
		if m.CC0[id] >= Inf || m.CC1[id] >= Inf {
			t.Errorf("node %s uncontrollable: %d/%d", c.Nodes[id].Name, m.CC0[id], m.CC1[id])
		}
		if m.CO[id] >= Inf {
			t.Errorf("node %s unobservable: %d", c.Nodes[id].Name, m.CO[id])
		}
	}
	// The single PO has observability 0.
	g17, _ := c.Lookup("G17")
	if m.CO[g17] != 0 {
		t.Errorf("CO(G17) = %d", m.CO[g17])
	}
}

func TestDeeperLinesHarderToObserve(t *testing.T) {
	// In an inverter chain, observability must decrease monotonically toward
	// the output.
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		prev := "a"
		for i := 0; i < 6; i++ {
			name := "n" + string(rune('0'+i))
			b.Gate(name, circuit.Not, prev)
			prev = name
		}
		b.Output("n5")
	})
	m := Analyze(c, logic.X)
	prev, _ := c.Lookup("a")
	for i := 0; i < 6; i++ {
		id, _ := c.Lookup("n" + string(rune('0'+i)))
		if m.CO[id] >= m.CO[prev] {
			t.Fatalf("CO not decreasing toward PO at n%d: %d >= %d", i, m.CO[id], m.CO[prev])
		}
		prev = id
	}
}

func TestSatAdd(t *testing.T) {
	if satAdd(Inf, Inf) != Inf || satAdd(Inf-1, 5) != Inf {
		t.Fatal("saturation broken")
	}
	if satAdd(3, 4) != 7 {
		t.Fatal("plain add broken")
	}
}
