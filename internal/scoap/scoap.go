// Package scoap implements SCOAP-style testability analysis (Goldstein's
// controllability/observability measures) for the sequential netlists in
// this repository. Controllabilities CC0/CC1 estimate the effort of setting
// a line to 0/1; observability CO estimates the effort of propagating a
// line's value to a primary output. Feedback through flip-flops is handled
// by fixpoint relaxation with saturating arithmetic.
//
// The experiment harness uses the measures as an alternative ranking for
// observation-point selection (hardest-to-observe lines first), benchmarked
// against the paper's greedy covering procedure.
package scoap

import (
	"repro/internal/circuit"
	"repro/internal/logic"
)

// Inf is the saturation bound for unreachable/uncontrollable lines.
const Inf int32 = 1 << 30

// Measures holds per-node testability values, indexed by NodeID.
type Measures struct {
	CC0, CC1 []int32 // controllability to 0 / 1
	CO       []int32 // observability
}

func satAdd(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s >= int64(Inf) {
		return Inf
	}
	return int32(s)
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// Analyze computes the SCOAP measures of c. Primary inputs cost 1 to
// control; flip-flop outputs cost one more than controlling their D input
// (one time frame), and — when the circuit has a global reset (init is
// logic.Zero or logic.One) — the reset value costs 1 directly; primary
// outputs cost 0 to observe; flip-flop D inputs cost one more than observing
// the flip-flop output. Iteration runs to a fixpoint, which exists because
// the update functions are monotone and the value lattice is finite. A state
// bit that cannot be driven to a value from the initial state keeps the
// saturated cost Inf, which is the correct verdict (e.g. a toggle flip-flop
// with an unknown power-up state can never be set to a known value).
func Analyze(c *circuit.Circuit, init logic.V) *Measures {
	n := len(c.Nodes)
	m := &Measures{
		CC0: make([]int32, n),
		CC1: make([]int32, n),
		CO:  make([]int32, n),
	}
	for i := 0; i < n; i++ {
		m.CC0[i], m.CC1[i], m.CO[i] = Inf, Inf, Inf
	}
	for _, id := range c.Inputs {
		m.CC0[id], m.CC1[id] = 1, 1
	}
	for _, id := range c.DFFs {
		switch init {
		case logic.Zero:
			m.CC0[id] = 1
		case logic.One:
			m.CC1[id] = 1
		}
	}
	// Controllability fixpoint.
	for changed := true; changed; {
		changed = false
		for _, id := range c.DFFs {
			d := c.Nodes[id].Fanins[0]
			if v := satAdd(m.CC0[d], 1); v < m.CC0[id] {
				m.CC0[id] = v
				changed = true
			}
			if v := satAdd(m.CC1[d], 1); v < m.CC1[id] {
				m.CC1[id] = v
				changed = true
			}
		}
		for _, id := range c.Order {
			cc0, cc1 := gateControllability(c, m, id)
			if cc0 < m.CC0[id] {
				m.CC0[id] = cc0
				changed = true
			}
			if cc1 < m.CC1[id] {
				m.CC1[id] = cc1
				changed = true
			}
		}
	}
	// Observability fixpoint.
	for _, id := range c.Outputs {
		m.CO[id] = 0
	}
	for changed := true; changed; {
		changed = false
		// Flip-flop D pins: observing the D input needs one more frame than
		// observing the flip-flop output.
		for _, id := range c.DFFs {
			d := c.Nodes[id].Fanins[0]
			if v := satAdd(m.CO[id], 1); v < m.CO[d] {
				m.CO[d] = v
				changed = true
			}
		}
		// Gates, deepest first (reverse topological order converges faster;
		// correctness only needs the fixpoint).
		for k := len(c.Order) - 1; k >= 0; k-- {
			id := c.Order[k]
			if propagateObservability(c, m, id) {
				changed = true
			}
		}
	}
	return m
}

// gateControllability computes CC0/CC1 of a gate output from its fanins.
func gateControllability(c *circuit.Circuit, m *Measures, id circuit.NodeID) (cc0, cc1 int32) {
	n := &c.Nodes[id]
	in := n.Fanins
	sum := func(sel []int32) int32 {
		var s int32 = 1
		for _, f := range in {
			s = satAdd(s, sel[f])
		}
		return s
	}
	minOf := func(sel []int32) int32 {
		v := Inf
		for _, f := range in {
			v = min32(v, sel[f])
		}
		return satAdd(v, 1)
	}
	switch n.Type {
	case circuit.Buf:
		return satAdd(m.CC0[in[0]], 1), satAdd(m.CC1[in[0]], 1)
	case circuit.Not:
		return satAdd(m.CC1[in[0]], 1), satAdd(m.CC0[in[0]], 1)
	case circuit.And:
		return minOf(m.CC0), sum(m.CC1)
	case circuit.Nand:
		return sum(m.CC1), minOf(m.CC0)
	case circuit.Or:
		return sum(m.CC0), minOf(m.CC1)
	case circuit.Nor:
		return minOf(m.CC1), sum(m.CC0)
	case circuit.Xor, circuit.Xnor:
		even, odd := xorParityCosts(m, in)
		if n.Type == circuit.Xor {
			return satAdd(even, 1), satAdd(odd, 1)
		}
		return satAdd(odd, 1), satAdd(even, 1)
	default:
		return Inf, Inf
	}
}

// xorParityCosts returns the cheapest cost of driving the fanins to even /
// odd parity (dynamic program over the inputs).
func xorParityCosts(m *Measures, in []circuit.NodeID) (even, odd int32) {
	even, odd = 0, Inf
	for _, f := range in {
		e2 := min32(satAdd(even, m.CC0[f]), satAdd(odd, m.CC1[f]))
		o2 := min32(satAdd(even, m.CC1[f]), satAdd(odd, m.CC0[f]))
		even, odd = e2, o2
	}
	return even, odd
}

// propagateObservability improves the fanins' CO from the gate's CO.
func propagateObservability(c *circuit.Circuit, m *Measures, id circuit.NodeID) bool {
	n := &c.Nodes[id]
	if m.CO[id] >= Inf {
		return false
	}
	changed := false
	improve := func(f circuit.NodeID, v int32) {
		if v < m.CO[f] {
			m.CO[f] = v
			changed = true
		}
	}
	switch n.Type {
	case circuit.Buf, circuit.Not:
		improve(n.Fanins[0], satAdd(m.CO[id], 1))
	case circuit.And, circuit.Nand, circuit.Or, circuit.Nor:
		// Side inputs must hold the non-controlling value.
		var side []int32
		if n.Type == circuit.And || n.Type == circuit.Nand {
			side = m.CC1
		} else {
			side = m.CC0
		}
		for i, f := range n.Fanins {
			cost := satAdd(m.CO[id], 1)
			for j, g := range n.Fanins {
				if j != i {
					cost = satAdd(cost, side[g])
				}
			}
			improve(f, cost)
		}
	case circuit.Xor, circuit.Xnor:
		for i, f := range n.Fanins {
			cost := satAdd(m.CO[id], 1)
			for j, g := range n.Fanins {
				if j != i {
					cost = satAdd(cost, min32(m.CC0[g], m.CC1[g]))
				}
			}
			improve(f, cost)
		}
	}
	return changed
}
