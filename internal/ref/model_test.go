package ref

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/sim"
)

// pipe builds the 1-input 1-FF pipeline out = NOT(ff), ff' = in used by the
// hand-computed stuck-at tests, small enough to trace transition launches by
// hand too.
func pipe(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("pipe")
	b.Input("in")
	b.DFF("ff", "in")
	b.Gate("out", circuit.Not, "ff")
	b.Output("out")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestHandComputedTransition traces launch-on-capture transition faults on
// the pipeline by hand. Fault-free traces for the sequence 0,1,0,1 from
// state 0: in = 0,1,0,1; ff = 0,0,1,0; out = 1,1,0,1.
func TestHandComputedTransition(t *testing.T) {
	c := pipe(t)
	seq, _ := sim.ParseSequence("0\n1\n0\n1")
	inID, _ := c.Lookup("in")
	outID, _ := c.Lookup("out")
	faults := []fault.Fault{
		// Slow-to-rise on in: launches at t1 and t3, holding in at 0 — in is
		// effectively 0,0,0,0, so ff stays 0 and out stays 1; golden out first
		// differs at t2 (golden 0).
		{Node: inID, Pin: -1, Stuck: 1, Kind: fault.KindTransition},
		// Slow-to-fall on in: launches at t2 (1→0), in = 0,1,1,1, ff =
		// 0,0,1,1, out = 1,1,0,0; golden out first differs at t3.
		{Node: inID, Pin: -1, Stuck: 0, Kind: fault.KindTransition},
		// Slow-to-fall on out (nominal 1,1,0,1): launch at t2 holds out at 1
		// against golden 0 — detect at t2.
		{Node: outID, Pin: -1, Stuck: 0, Kind: fault.KindTransition},
		// Slow-to-rise on out: launch at t3 holds out at 0 against golden 1.
		{Node: outID, Pin: -1, Stuck: 1, Kind: fault.KindTransition},
	}
	out := Run(c, seq, faults, Options{Init: logic.Zero})
	want := []int{2, 3, 2, 3}
	for i, w := range want {
		if !out.Detected[i] || out.DetTime[i] != w {
			t.Errorf("fault %d (%s): detected=%v t=%d, want t=%d",
				i, faults[i].String(c), out.Detected[i], out.DetTime[i], w)
		}
	}
	if out.NumDetected != 4 {
		t.Errorf("NumDetected = %d, want 4", out.NumDetected)
	}
}

// TestTransitionNoLaunchAtTimeZero pins the X-start rule: the launch history
// begins at X, so time unit 0 never activates a transition fault even when
// the first vector lands on the destination value.
func TestTransitionNoLaunchAtTimeZero(t *testing.T) {
	c := pipe(t)
	seq, _ := sim.ParseSequence("1\n1")
	inID, _ := c.Lookup("in")
	// If the history wrongly started at 0, t0 would launch (0→1), hold in at
	// 0, and the wrong ff value would reach out at t1.
	f := []fault.Fault{{Node: inID, Pin: -1, Stuck: 1, Kind: fault.KindTransition}}
	if out := Run(c, seq, f, Options{Init: logic.Zero}); out.Detected[0] {
		t.Fatalf("slow-to-rise detected at t=%d; time unit 0 must not launch", out.DetTime[0])
	}
}

// TestTransitionSaveStates: an undetected transition fault can still corrupt
// the flip-flop state. Sequence 0,1: the t1 launch holds in at 0, so the
// faulty machine captures 0 where the fault-free machine captures 1, while
// the outputs (reading the pre-edge ff) never differ within the sequence.
func TestTransitionSaveStates(t *testing.T) {
	c := pipe(t)
	seq, _ := sim.ParseSequence("0\n1")
	inID, _ := c.Lookup("in")
	f := []fault.Fault{{Node: inID, Pin: -1, Stuck: 1, Kind: fault.KindTransition}}
	out := Run(c, seq, f, Options{Init: logic.Zero, SaveStates: true})
	if out.Detected[0] {
		t.Fatalf("fault unexpectedly detected at t=%d", out.DetTime[0])
	}
	if got := out.FaultFreeFinal; len(got) != 1 || got[0] != logic.One {
		t.Errorf("fault-free final state = %v, want [1]", got)
	}
	if got := out.FinalStates[0]; len(got) != 1 || got[0] != logic.Zero {
		t.Errorf("faulty final state = %v, want [0]", got)
	}
}

// TestHandComputedBridge traces a wired-OR bridge between the two inverter
// outputs of out = AND(NOT(a), NOT(b)). The bridged machine computes
// out = OR(!a,!b) = NAND(a,b) instead of NOR(a,b): the machines differ
// exactly when a != b.
func TestHandComputedBridge(t *testing.T) {
	b := circuit.NewBuilder("brdg")
	b.Input("a")
	b.Input("b")
	b.Gate("g1", circuit.Not, "a")
	b.Gate("g2", circuit.Not, "b")
	b.Gate("out", circuit.And, "g1", "g2")
	b.Output("out")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := c.Lookup("g1")
	g2, _ := c.Lookup("g2")
	seq, _ := sim.ParseSequence("00\n01") // t0: equal (both 1); t1: golden 0, bridged 1
	faults := []fault.Fault{
		{Node: g1, Node2: g2, Pin: -1, Stuck: 1, Kind: fault.KindBridge}, // wired-OR
		// Wired-AND is undetectable here: out = AND(g1,g2) already computes
		// the wired-AND of the bridged pair, so forcing both stems to it
		// never changes out.
		{Node: g1, Node2: g2, Pin: -1, Stuck: 0, Kind: fault.KindBridge},
	}
	out := Run(c, seq, faults, Options{Init: logic.Zero})
	if !out.Detected[0] || out.DetTime[0] != 1 {
		t.Errorf("wired-OR: detected=%v t=%d, want t=1", out.Detected[0], out.DetTime[0])
	}
	if out.Detected[1] {
		t.Errorf("wired-AND detected at t=%d, want undetected", out.DetTime[1])
	}
	if out.NumDetected != 1 {
		t.Errorf("NumDetected = %d, want 1", out.NumDetected)
	}
}

// TestBridgeSaveStates: a bridge can corrupt captured state without ever
// reaching an output. ff captures input a as forced by pass 2, while the
// only output reads ff before the edge; sequence (a,b) = (1,0),(0,1) under
// wired-OR keeps the output trace identical (0 then 1) but captures 1 at
// both edges in the bridged machine, against fault-free 1 then 0.
func TestBridgeSaveStates(t *testing.T) {
	b := circuit.NewBuilder("brdgff")
	b.Input("a")
	b.Input("b") // drives nothing; exists only as the bridge partner
	b.DFF("ff", "a")
	b.Gate("out", circuit.Buf, "ff")
	b.Output("out")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	aID, _ := c.Lookup("a")
	bID, _ := c.Lookup("b")
	seq, _ := sim.ParseSequence("10\n01")
	f := []fault.Fault{{Node: aID, Node2: bID, Pin: -1, Stuck: 1, Kind: fault.KindBridge}}
	out := Run(c, seq, f, Options{Init: logic.Zero, SaveStates: true})
	if out.Detected[0] {
		t.Fatalf("fault unexpectedly detected at t=%d", out.DetTime[0])
	}
	if got := out.FaultFreeFinal; len(got) != 1 || got[0] != logic.Zero {
		t.Errorf("fault-free final state = %v, want [0]", got)
	}
	if got := out.FinalStates[0]; len(got) != 1 || got[0] != logic.One {
		t.Errorf("bridged final state = %v, want [1]", got)
	}
}

// TestBridgeXWired: an X on one bridged stem makes the wired value X unless
// the other stem forces it (0 for wired-AND, 1 for wired-OR) — the ternary
// Kleene tables, checked through a run from unknown power-up state.
func TestBridgeXWired(t *testing.T) {
	b := circuit.NewBuilder("brdgx")
	b.Input("a")
	b.DFF("ff", "a") // powers up X
	b.Gate("out", circuit.Buf, "a")
	b.Output("out")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	aID, _ := c.Lookup("a")
	ffID, _ := c.Lookup("ff")
	seq, _ := sim.ParseSequence("1\n1")
	faults := []fault.Fault{
		// Wired-AND of a=1 with ff=X is X at t0: out becomes X, which never
		// counts as a detection, and the X captured into ff keeps the wired
		// value X at t1 too.
		{Node: aID, Node2: ffID, Pin: -1, Stuck: 0, Kind: fault.KindBridge},
		// Wired-OR of a=1 with ff=X is 1 even at t0: no corruption at all.
		{Node: aID, Node2: ffID, Pin: -1, Stuck: 1, Kind: fault.KindBridge},
	}
	out := Run(c, seq, faults, Options{Init: logic.X})
	for i := range faults {
		if out.Detected[i] {
			t.Errorf("fault %d (%s) detected at t=%d, want undetected",
				i, faults[i].String(c), out.DetTime[i])
		}
	}
}
