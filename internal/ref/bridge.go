package ref

import (
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/sim"
)

// simulateBridge runs one machine carrying a single 2-node bridging fault
// (fault.KindBridge): every time unit is evaluated twice. The first pass is
// nominal and resolves the wired value of the bridged pair (the model's
// enumeration guarantees neither stem combinationally reaches the other, so
// the nominal driver values are independent of the bridge force); the
// second pass re-evaluates the whole cycle with both stems held at that
// wired value, and detection plus the state capture read the second pass.
// This restates the fsim two-pass contract independently of fsim.
func simulateBridge(c *circuit.Circuit, seq *sim.Sequence, stop int, init logic.V,
	f fault.Fault, golden [][]logic.V, keepGoing bool) (detTime int, final []logic.V) {

	vals := make([]logic.V, len(c.Nodes))
	state := make([]logic.V, len(c.DFFs))
	for i := range state {
		state[i] = init
	}
	a, b := f.Node, f.Node2
	wiredOr := f.Stuck == 1
	var in []logic.V
	pass := func(u int, bridged bool, wired logic.V) {
		place := func(id circuit.NodeID, v logic.V) logic.V {
			if bridged && (id == a || id == b) {
				return wired
			}
			return v
		}
		for k, id := range c.Inputs {
			vals[id] = place(id, seq.At(u, k))
		}
		for k, id := range c.DFFs {
			vals[id] = place(id, state[k])
		}
		for _, id := range c.Order {
			n := &c.Nodes[id]
			in = in[:0]
			for _, fn := range n.Fanins {
				in = append(in, vals[fn])
			}
			vals[id] = place(id, eval(n.Type, in))
		}
	}
	detTime = -1
	for u := 0; u < stop; u++ {
		pass(u, false, logic.X)
		var wired logic.V
		if wiredOr {
			wired = orT[vals[a]][vals[b]]
		} else {
			wired = andT[vals[a]][vals[b]]
		}
		pass(u, true, wired)
		if detTime < 0 {
			for k, id := range c.Outputs {
				g, v := golden[u][k], vals[id]
				if g != logic.X && v != logic.X && g != v {
					detTime = u
					break
				}
			}
			if detTime >= 0 && !keepGoing {
				return detTime, nil
			}
		}
		// Clock edge (bridge faults are stem-only: no D-pin forcing).
		for k, id := range c.DFFs {
			state[k] = vals[c.Nodes[id].Fanins[0]]
		}
	}
	return detTime, state
}
