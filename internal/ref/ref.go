// Package ref is a deliberately naive reference fault simulator: one fault
// at a time, one machine at a time, scalar three-valued evaluation through
// explicit truth tables. It shares no evaluation code with the bit-parallel
// simulator (package fsim) or the scalar logic simulator (package sim) —
// gate semantics are restated here from the ternary truth tables — so an
// agreement between ref and fsim is evidence of correctness rather than of
// shared bugs. Package difftest cross-checks the two on random circuits.
// All three fault models are covered: stuck-at faults here, launch-on-
// capture transition faults in transition.go and 2-node bridging faults in
// bridge.go, each restating its model's semantics independently of the
// fsim injection hooks.
//
// The oracle contract (see DESIGN.md): for the same circuit, sequence,
// fault list and flip-flop initialisation, ref and fsim must report
// bit-identical Detected, DetTime and final flip-flop states. Features that
// exist purely for performance or orchestration (fault grouping, Workers,
// ObserveLines, OutputHook, AbortAfterFirstGroupIfNone, InitialStates) are
// deliberately out of ref's scope: the continuation features are instead
// validated differentially by replaying a split fsim run against an unsplit
// ref run.
package ref

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/sim"
)

// Options control a reference run. The fields mirror the subset of
// fsim.Options that affects simulation semantics.
type Options struct {
	// Init is the initial value of every flip-flop.
	Init logic.V
	// StopTime, if positive, truncates the sequence after this many time
	// units.
	StopTime int
	// SaveStates records final flip-flop states (and forces every machine to
	// simulate the whole sequence even after detection).
	SaveStates bool
	// TimeOffset is added to every recorded detection time.
	TimeOffset int
}

// Outcome reports a reference run. It matches fsim.Outcome fault for fault;
// final states are kept per machine (scalar) rather than per packed group.
type Outcome struct {
	// Detected[i] reports whether faults[i] was detected.
	Detected []bool
	// DetTime[i] is the first detection time of faults[i] (-1 if undetected).
	DetTime []int
	// NumDetected is the number of detected faults.
	NumDetected int
	// FinalStates[i] is the faulty machine i's final flip-flop state (only
	// when SaveStates was set).
	FinalStates [][]logic.V
	// FaultFreeFinal is the fault-free machine's final flip-flop state (only
	// when SaveStates was set).
	FaultFreeFinal []logic.V
}

// Ternary truth tables, indexed by logic.V (Zero=0, One=1, X=2). These are
// restated from the definition of the three-valued algebra on purpose; they
// must not be derived from package logic's operations.
var (
	notT = [3]logic.V{logic.One, logic.Zero, logic.X}
	andT = [3][3]logic.V{
		{logic.Zero, logic.Zero, logic.Zero},
		{logic.Zero, logic.One, logic.X},
		{logic.Zero, logic.X, logic.X},
	}
	orT = [3][3]logic.V{
		{logic.Zero, logic.One, logic.X},
		{logic.One, logic.One, logic.One},
		{logic.X, logic.One, logic.X},
	}
	xorT = [3][3]logic.V{
		{logic.Zero, logic.One, logic.X},
		{logic.One, logic.Zero, logic.X},
		{logic.X, logic.X, logic.X},
	}
)

// eval evaluates one gate over ternary fanin values using the truth tables.
func eval(t circuit.GateType, in []logic.V) logic.V {
	var v logic.V
	switch t {
	case circuit.Buf:
		return in[0]
	case circuit.Not:
		return notT[in[0]]
	case circuit.And, circuit.Nand:
		v = in[0]
		for _, x := range in[1:] {
			v = andT[v][x]
		}
		if t == circuit.Nand {
			v = notT[v]
		}
	case circuit.Or, circuit.Nor:
		v = in[0]
		for _, x := range in[1:] {
			v = orT[v][x]
		}
		if t == circuit.Nor {
			v = notT[v]
		}
	case circuit.Xor, circuit.Xnor:
		v = in[0]
		for _, x := range in[1:] {
			v = xorT[v][x]
		}
		if t == circuit.Xnor {
			v = notT[v]
		}
	default:
		panic(fmt.Sprintf("ref: eval on non-gate type %v", t))
	}
	return v
}

// Run simulates every fault independently against seq and returns the
// outcome. Cost is O(faults × time units × gates) — naive by design.
func Run(c *circuit.Circuit, seq *sim.Sequence, faults []fault.Fault, opts Options) *Outcome {
	stop := seq.Len()
	if opts.StopTime > 0 && opts.StopTime < stop {
		stop = opts.StopTime
	}
	out := &Outcome{
		Detected: make([]bool, len(faults)),
		DetTime:  make([]int, len(faults)),
	}
	for i := range out.DetTime {
		out.DetTime[i] = -1
	}
	if opts.SaveStates {
		out.FinalStates = make([][]logic.V, len(faults))
	}

	// Fault-free pass: record the golden primary-output trace (the detection
	// reference) and, if asked, the golden final state.
	golden := make([][]logic.V, stop)
	_, ffFinal := simulate(c, seq, stop, opts.Init, nil, golden, opts.SaveStates)
	if opts.SaveStates {
		out.FaultFreeFinal = ffFinal
	}

	for i := range faults {
		var det int
		var final []logic.V
		switch faults[i].Kind {
		case fault.KindTransition:
			det, final = simulateTransition(c, seq, stop, opts.Init, faults[i], golden, opts.SaveStates)
		case fault.KindBridge:
			det, final = simulateBridge(c, seq, stop, opts.Init, faults[i], golden, opts.SaveStates)
		default:
			det, final = simulate(c, seq, stop, opts.Init, &faults[i], golden, opts.SaveStates)
		}
		if det >= 0 {
			out.Detected[i] = true
			out.DetTime[i] = det + opts.TimeOffset
			out.NumDetected++
		}
		if opts.SaveStates {
			out.FinalStates[i] = final
		}
	}
	return out
}

// simulate runs one machine. With f == nil it is the fault-free machine:
// golden (len stop) receives a copy of the primary-output values of every
// time unit. With f != nil the machine carries that single fault and golden
// is read as the fault-free trace; detTime is the first time unit at which
// some primary output is binary in both machines with opposite values (-1 if
// never). The run stops at the first detection unless keepGoing is set.
// final is the flip-flop state after the last clock edge (nil if the run
// stopped early — it is only meaningful when the whole sequence was applied,
// and keepGoing guarantees that).
func simulate(c *circuit.Circuit, seq *sim.Sequence, stop int, init logic.V,
	f *fault.Fault, golden [][]logic.V, keepGoing bool) (detTime int, final []logic.V) {

	vals := make([]logic.V, len(c.Nodes))
	state := make([]logic.V, len(c.DFFs))
	for i := range state {
		state[i] = init
	}
	// stuck applies the fault's stem force at node id (stem faults override
	// the computed value of any node: input, flip-flop output or gate).
	stuck := func(id circuit.NodeID, v logic.V) logic.V {
		if f != nil && f.Pin < 0 && f.Node == id {
			return logic.V(f.Stuck)
		}
		return v
	}
	var in []logic.V
	detTime = -1
	for u := 0; u < stop; u++ {
		for k, id := range c.Inputs {
			vals[id] = stuck(id, seq.At(u, k))
		}
		for k, id := range c.DFFs {
			vals[id] = stuck(id, state[k])
		}
		for _, id := range c.Order {
			n := &c.Nodes[id]
			in = in[:0]
			for pin, fn := range n.Fanins {
				v := vals[fn]
				// Branch (pin) faults force the value seen by this one pin.
				if f != nil && f.Pin == pin && f.Node == id {
					v = logic.V(f.Stuck)
				}
				in = append(in, v)
			}
			vals[id] = stuck(id, eval(n.Type, in))
		}
		if f == nil {
			po := make([]logic.V, len(c.Outputs))
			for k, id := range c.Outputs {
				po[k] = vals[id]
			}
			golden[u] = po
		} else if detTime < 0 {
			for k, id := range c.Outputs {
				g, v := golden[u][k], vals[id]
				if g != logic.X && v != logic.X && g != v {
					detTime = u
					break
				}
			}
			if detTime >= 0 && !keepGoing {
				return detTime, nil
			}
		}
		// Clock edge: flip-flop D-pin faults (pin 0 of a DFF node) force the
		// captured next-state value.
		for k, id := range c.DFFs {
			d := vals[c.Nodes[id].Fanins[0]]
			if f != nil && f.Node == id && f.Pin == 0 {
				d = logic.V(f.Stuck)
			}
			state[k] = d
		}
	}
	return detTime, state
}
