package ref

import (
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/sim"
)

// simulateTransition runs one machine carrying a single launch-on-capture
// transition fault (fault.KindTransition): the site's nominal value is
// tracked cycle to cycle, and whenever the previous cycle's nominal value
// was the binary complement of the destination d and this cycle's nominal
// value is d (the launch transition), the node is held at the old value for
// the whole cycle. The previous value starts at X, so time unit 0 never
// forces. This restates the fsim model hook contract independently — shared
// code would turn the differential check into a tautology.
func simulateTransition(c *circuit.Circuit, seq *sim.Sequence, stop int, init logic.V,
	f fault.Fault, golden [][]logic.V, keepGoing bool) (detTime int, final []logic.V) {

	vals := make([]logic.V, len(c.Nodes))
	state := make([]logic.V, len(c.DFFs))
	for i := range state {
		state[i] = init
	}
	d := logic.V(f.Stuck)
	launch := notT[d]
	prev := logic.X
	// slow applies the transition hook at the fault site: decide the force
	// from the nominal value v, then advance the site history.
	slow := func(id circuit.NodeID, v logic.V) logic.V {
		if id != f.Node {
			return v
		}
		force := prev == launch && v == d
		prev = v
		if force {
			return launch
		}
		return v
	}
	var in []logic.V
	detTime = -1
	for u := 0; u < stop; u++ {
		for k, id := range c.Inputs {
			vals[id] = slow(id, seq.At(u, k))
		}
		for k, id := range c.DFFs {
			vals[id] = slow(id, state[k])
		}
		for _, id := range c.Order {
			n := &c.Nodes[id]
			in = in[:0]
			for _, fn := range n.Fanins {
				in = append(in, vals[fn])
			}
			vals[id] = slow(id, eval(n.Type, in))
		}
		if detTime < 0 {
			for k, id := range c.Outputs {
				g, v := golden[u][k], vals[id]
				if g != logic.X && v != logic.X && g != v {
					detTime = u
					break
				}
			}
			if detTime >= 0 && !keepGoing {
				return detTime, nil
			}
		}
		// Clock edge (transition faults are stem-only: no D-pin forcing).
		for k, id := range c.DFFs {
			state[k] = vals[c.Nodes[id].Fanins[0]]
		}
	}
	return detTime, state
}
