package ref

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/sim"
)

func s27(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := bench.Parse("s27", strings.NewReader(iscas.S27Bench))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestS27FullCoverage replays the paper's Table 1 result: the deterministic
// sequence detects all 26 collapsed faults of s27 from an unknown power-up
// state. This pins the oracle to published numbers independently of fsim.
func TestS27FullCoverage(t *testing.T) {
	c := s27(t)
	seq, err := sim.ParseSequence(iscas.S27TestSequence)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	if len(faults) != 26 {
		t.Fatalf("collapsed fault count = %d, want 26", len(faults))
	}
	out := Run(c, seq, faults, Options{Init: logic.X})
	if out.NumDetected != 26 {
		for i, d := range out.Detected {
			if !d {
				t.Errorf("undetected: %s", faults[i].String(c))
			}
		}
		t.Fatalf("detected %d of 26", out.NumDetected)
	}
	for i, u := range out.DetTime {
		if u < 0 || u >= seq.Len() {
			t.Fatalf("fault %s: detection time %d out of range", faults[i].String(c), u)
		}
	}
}

// TestHandComputedPipeline checks detection times on a circuit small enough
// to trace by hand: a 1-input, 1-FF pipeline out = NOT(ff), ff' = in.
func TestHandComputedPipeline(t *testing.T) {
	b := circuit.NewBuilder("pipe")
	b.Input("in")
	b.DFF("ff", "in")
	b.Gate("out", circuit.Not, "ff")
	b.Output("out")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := sim.ParseSequence("1\n1\n1")
	ffID, _ := c.Lookup("ff")
	inID, _ := c.Lookup("in")
	outID, _ := c.Lookup("out")
	faults := []fault.Fault{
		{Node: ffID, Pin: -1, Stuck: 1},  // ff stem s-a-1: out forced 0; golden t0 = NOT(0)=1 -> detect t=0
		{Node: inID, Pin: -1, Stuck: 0},  // in s-a-0: ff stays 0, out stays 1; golden out t1 = 0 -> detect t=1
		{Node: outID, Pin: -1, Stuck: 1}, // out s-a-1: golden out 0 from t1 -> detect t=1
		{Node: ffID, Pin: 0, Stuck: 0},   // D-pin s-a-0: same as in s-a-0 here -> detect t=1
		{Node: outID, Pin: -1, Stuck: 1}, // duplicate fault entries are legal
	}
	out := Run(c, seq, faults, Options{Init: logic.Zero})
	want := []int{0, 1, 1, 1, 1}
	for i, w := range want {
		if !out.Detected[i] || out.DetTime[i] != w {
			t.Errorf("fault %d (%s): detected=%v t=%d, want t=%d",
				i, faults[i].String(c), out.Detected[i], out.DetTime[i], w)
		}
	}
	if out.NumDetected != 5 {
		t.Errorf("NumDetected = %d, want 5", out.NumDetected)
	}
}

func TestStopTimeAndOffset(t *testing.T) {
	b := circuit.NewBuilder("pipe")
	b.Input("in")
	b.DFF("ff", "in")
	b.Gate("out", circuit.Not, "ff")
	b.Output("out")
	c, _ := b.Build()
	seq, _ := sim.ParseSequence("1\n1\n1")
	f := []fault.Fault{{Node: c.Inputs[0], Pin: -1, Stuck: 0}} // detects at t=1
	if out := Run(c, seq, f, Options{Init: logic.Zero, StopTime: 1}); out.Detected[0] {
		t.Error("StopTime=1 should truncate before the t=1 detection")
	}
	out := Run(c, seq, f, Options{Init: logic.Zero, TimeOffset: 10})
	if out.DetTime[0] != 11 {
		t.Errorf("TimeOffset: DetTime = %d, want 11", out.DetTime[0])
	}
}

func TestSaveStates(t *testing.T) {
	b := circuit.NewBuilder("pipe")
	b.Input("in")
	b.DFF("ff", "in")
	b.Gate("out", circuit.Not, "ff")
	b.Output("out")
	c, _ := b.Build()
	seq, _ := sim.ParseSequence("1\n0")
	ffID, _ := c.Lookup("ff")
	faults := []fault.Fault{
		{Node: ffID, Pin: 0, Stuck: 1}, // D-pin s-a-1: state captured as 1 every edge
		{Node: ffID, Pin: -1, Stuck: 1},
	}
	out := Run(c, seq, faults, Options{Init: logic.Zero, SaveStates: true})
	// Fault-free: state after t0 edge = 1, after t1 edge = 0.
	if got := out.FaultFreeFinal; len(got) != 1 || got[0] != logic.Zero {
		t.Errorf("fault-free final state = %v, want [0]", got)
	}
	// D-pin s-a-1 forces the captured state to 1 at every edge.
	if got := out.FinalStates[0]; len(got) != 1 || got[0] != logic.One {
		t.Errorf("D-pin faulty final state = %v, want [1]", got)
	}
	// A stem fault on the flip-flop output does NOT corrupt the register
	// itself (the force applies at the read), so the final state follows the
	// fault-free next-state function: in(t1) = 0.
	if got := out.FinalStates[1]; len(got) != 1 || got[0] != logic.Zero {
		t.Errorf("stem faulty final state = %v, want [0]", got)
	}
}

// TestTruthTablesMatchAlgebra cross-checks the restated truth tables against
// package logic's operations over all operand pairs — if the two ever
// disagree, either the oracle or the algebra is wrong and every differential
// result is suspect.
func TestTruthTablesMatchAlgebra(t *testing.T) {
	vs := []logic.V{logic.Zero, logic.One, logic.X}
	for _, a := range vs {
		if notT[a] != a.Not() {
			t.Errorf("NOT(%v): table %v, algebra %v", a, notT[a], a.Not())
		}
		for _, b := range vs {
			if andT[a][b] != logic.And(a, b) {
				t.Errorf("AND(%v,%v): table %v, algebra %v", a, b, andT[a][b], logic.And(a, b))
			}
			if orT[a][b] != logic.Or(a, b) {
				t.Errorf("OR(%v,%v): table %v, algebra %v", a, b, orT[a][b], logic.Or(a, b))
			}
			if xorT[a][b] != logic.Xor(a, b) {
				t.Errorf("XOR(%v,%v): table %v, algebra %v", a, b, xorT[a][b], logic.Xor(a, b))
			}
		}
	}
}

func TestSingleInputInvertingGates(t *testing.T) {
	// NAND/NOR/XNOR with one fanin invert it; AND/OR/XOR pass it through.
	for _, tc := range []struct {
		typ  circuit.GateType
		want logic.V
	}{
		{circuit.And, logic.One}, {circuit.Or, logic.One}, {circuit.Xor, logic.One},
		{circuit.Nand, logic.Zero}, {circuit.Nor, logic.Zero}, {circuit.Xnor, logic.Zero},
		{circuit.Buf, logic.One}, {circuit.Not, logic.Zero},
	} {
		if got := eval(tc.typ, []logic.V{logic.One}); got != tc.want {
			t.Errorf("%v(1) = %v, want %v", tc.typ, got, tc.want)
		}
	}
}
