// Package serve exposes the BIST-compilation pipeline as an HTTP/JSON job
// service. A client submits a circuit (a named ISCAS benchmark or an inline
// .bench netlist) plus an experiment configuration; the server canonicalizes
// the submission into a content-addressed store key, runs the pipeline at
// most once per key, and serves the resulting artifacts (result.json,
// generator.v, netlist.bench) from the store on every later submission.
//
// Jobs are cancellable: the job's context is threaded through every pipeline
// stage down to the fault simulator's worker pool (see internal/fsim), so a
// DELETE — or server shutdown past its drain deadline — stops the job within
// one fault-group pass and returns its workers to the pool, observable as
// the fsim.groups_cancelled telemetry counter.
//
// Progress is streamed per job: each job runs under its own telemetry
// recorder whose sink converts completed phase spans into job events,
// buffered for polling (GET /api/v1/jobs/{id}) and streamed as JSON lines
// (GET /api/v1/jobs/{id}/events).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/expt"
	"repro/internal/fault"
	"repro/internal/fsim"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/verilog"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether a state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Options configure a Server. The zero value is usable.
type Options struct {
	// Store is the artifact cache; required.
	Store *store.Store
	// MaxConcurrent bounds simultaneously running pipelines (default 2).
	MaxConcurrent int
	// QueueDepth bounds jobs waiting behind the running ones (default 16);
	// submissions beyond it are rejected with 503.
	QueueDepth int
	// Workers is the per-job fault-simulation worker count (0 = sequential).
	Workers int
	// Kernel selects the fsim gate-evaluation kernel for all jobs.
	Kernel fsim.Kernel
	// SlabLanes is the slab kernel's fault-group batch width W for all jobs
	// (0 = pick adaptively; ignored by the other kernels).
	SlabLanes int
	// ShardProcs is the server-wide default multi-process shard width for
	// eligible fault-simulation runs (0/1 = in-process; a job's own
	// shard_procs overrides it). Execution policy like Workers: it never
	// changes a result bit or a job's store key.
	ShardProcs int
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent == 0 {
		o.MaxConcurrent = 2
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 16
	}
	return o
}

// SubmitRequest is the POST /api/v1/jobs body. Exactly one of Circuit and
// Netlist must be set.
type SubmitRequest struct {
	// Circuit names a built-in benchmark (see iscas.Names).
	Circuit string `json:"circuit,omitempty"`
	// Netlist is inline .bench source for a custom circuit.
	Netlist string `json:"netlist,omitempty"`
	// Init is the flip-flop initialisation: "0" (reset) or "x" (unknown).
	// Empty selects the circuit's conventional value (x for the verbatim
	// s27, 0 otherwise).
	Init string `json:"init,omitempty"`
	// Config carries the identity-relevant experiment options; zero values
	// select the paper's defaults.
	Config JobConfig `json:"config"`
	// ShardProcs, when > 1, shards this job's eligible fault-simulation
	// runs over that many worker subprocesses. Execution policy, not
	// identity: it never changes a result bit, so jobs differing only in
	// shard_procs share one store key (and one cached artifact set).
	ShardProcs int `json:"shard_procs,omitempty"`
}

// JobConfig is the over-the-wire subset of expt.Config: exactly the fields
// that are part of a run's identity (workers/kernel/telemetry are server
// policy, not job identity).
type JobConfig struct {
	LG                int    `json:"lg,omitempty"`
	Seed              uint64 `json:"seed,omitempty"`
	ATPGRandomLen     int    `json:"atpg_random_len,omitempty"`
	ATPGNoCompaction  bool   `json:"atpg_no_compaction,omitempty"`
	ATPGNoPodem       bool   `json:"atpg_no_podem,omitempty"`
	RandomWindows     int    `json:"random_windows,omitempty"`
	NoSampleFirst     bool   `json:"no_sample_first,omitempty"`
	NoForceFullLength bool   `json:"no_force_full_length,omitempty"`
	NoMatchOrdering   bool   `json:"no_match_ordering,omitempty"`
	// FaultModel selects the fault universe the pipeline targets:
	// "stuck-at" (the default), "transition", or "bridge". Identity, not
	// policy: jobs differing only in fault model get distinct store keys.
	FaultModel string `json:"fault_model,omitempty"`
}

func (jc JobConfig) toConfig() expt.Config {
	return expt.Config{
		LG:                jc.LG,
		Seed:              jc.Seed,
		ATPGRandomLen:     jc.ATPGRandomLen,
		ATPGNoCompaction:  jc.ATPGNoCompaction,
		ATPGNoPodem:       jc.ATPGNoPodem,
		RandomWindows:     jc.RandomWindows,
		NoSampleFirst:     jc.NoSampleFirst,
		NoForceFullLength: jc.NoForceFullLength,
		NoMatchOrdering:   jc.NoMatchOrdering,
		FaultModel:        jc.FaultModel,
	}
}

// Event is one entry of a job's progress log, delivered by polling and by
// the JSONL stream. Type "state" marks lifecycle transitions; type "span"
// carries one completed telemetry phase span.
type Event struct {
	Seq        int              `json:"seq"`
	Type       string           `json:"type"`
	State      State            `json:"state,omitempty"`
	Span       string           `json:"span,omitempty"`
	DurationNS int64            `json:"duration_ns,omitempty"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// JobView is the JSON representation of a job.
type JobView struct {
	ID        string    `json:"id"`
	Key       string    `json:"key"`
	Circuit   string    `json:"circuit"`
	State     State     `json:"state"`
	Cached    bool      `json:"cached"`
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
	Events    int       `json:"events"`
	Artifacts []string  `json:"artifacts,omitempty"`
}

// job is the server-side job record.
type job struct {
	id      string
	key     string
	circuit *circuit.Circuit
	name    string
	netlist []byte // canonical .bench bytes
	init    logic.V
	cfg     expt.Config // canonical, identity fields only
	// shardProcs is the job's execution-only shard width (0 = server
	// default), never part of cfg or the store key.
	shardProcs int

	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	cached    bool
	err       error
	submitted time.Time
	events    []Event
	subs      map[chan Event]struct{}
	artifacts []string
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		Key:       j.key,
		Circuit:   j.name,
		State:     j.state,
		Cached:    j.cached,
		Submitted: j.submitted,
		Events:    len(j.events),
		Artifacts: j.artifacts,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// emit appends an event and wakes streaming subscribers. Slow subscribers
// never block the pipeline: the channel is buffered and a full buffer drops
// the wakeup (the subscriber catches up from the replay log).
func (j *job) emit(ev Event) {
	j.mu.Lock()
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// setState transitions the job and logs the transition as an event.
func (j *job) setState(s State, err error) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return // cancellation and completion can race; first transition wins
	}
	j.state = s
	j.err = err
	j.mu.Unlock()
	j.emit(Event{Type: "state", State: s})
}

func (j *job) snapshotEvents() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// jobSink adapts a job's event log to telemetry.Sink: every completed phase
// span becomes one "span" event.
type jobSink struct{ j *job }

func (s jobSink) Record(ev telemetry.SpanEvent) {
	s.j.emit(Event{
		Type:       "span",
		Span:       ev.Span,
		DurationNS: ev.DurationNS,
		Counters:   ev.Counters,
	})
}

// Server is the HTTP job service. It implements http.Handler.
type Server struct {
	opts Options
	st   *store.Store
	mux  *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc
	sem        chan struct{}
	wg         sync.WaitGroup

	mu     sync.Mutex
	closed bool
	seq    int
	jobs   map[string]*job
	order  []string
	byKey  map[string]*job // live job per store key (submission dedup)
}

// New builds a Server over the given artifact store.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.Store == nil {
		return nil, errors.New("serve: Options.Store is required")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		st:         opts.Store,
		mux:        http.NewServeMux(),
		baseCtx:    ctx,
		baseCancel: cancel,
		sem:        make(chan struct{}, opts.MaxConcurrent),
		jobs:       make(map[string]*job),
		byKey:      make(map[string]*job),
	}
	s.mux.HandleFunc("GET /api/v1/healthz", s.handleHealth)
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/artifacts/{name}", s.handleArtifact)
	s.mux.HandleFunc("GET /api/v1/store", s.handleStoreList)
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown stops admitting jobs and drains the in-flight ones. If ctx
// expires before the drain completes, every live job is cancelled (the
// pipeline stops within one fault-group pass) and the remaining drain is
// awaited before returning ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel() // cancels every job context derived from baseCtx
		<-done
		return ctx.Err()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// resolveSubmission turns a request into (circuit, canonical netlist, init,
// canonical config) or an error suitable for a 400.
func resolveSubmission(req SubmitRequest) (*circuit.Circuit, []byte, logic.V, expt.Config, error) {
	var c *circuit.Circuit
	var err error
	switch {
	case req.Circuit != "" && req.Netlist != "":
		return nil, nil, 0, expt.Config{}, errors.New("set exactly one of circuit and netlist")
	case req.Circuit != "":
		c, err = iscas.Load(req.Circuit)
		if err != nil {
			return nil, nil, 0, expt.Config{}, err
		}
	case req.Netlist != "":
		c, err = bench.Parse("uploaded", strings.NewReader(req.Netlist))
		if err != nil {
			return nil, nil, 0, expt.Config{}, err
		}
	default:
		return nil, nil, 0, expt.Config{}, errors.New("set exactly one of circuit and netlist")
	}
	var canon bytes.Buffer
	if err := bench.Write(&canon, c); err != nil {
		return nil, nil, 0, expt.Config{}, err
	}
	init := expt.InitFor(c.Name)
	switch strings.ToLower(req.Init) {
	case "":
	case "0", "zero":
		init = logic.Zero
	case "x", "unknown":
		init = logic.X
	default:
		return nil, nil, 0, expt.Config{}, fmt.Errorf("init must be %q or %q, got %q", "0", "x", req.Init)
	}
	cfg := expt.CanonicalConfig(req.Circuit, req.Config.toConfig())
	if _, err := fault.ModelByName(cfg.FaultModel); err != nil {
		return nil, nil, 0, expt.Config{}, err
	}
	return c, canon.Bytes(), init, cfg, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	c, netlist, init, cfg, err := resolveSubmission(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := store.Key(netlist, init, cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	// An identical live submission is the same job: return it instead of
	// queuing a duplicate (the store's single-flight would serialize them
	// anyway, but sharing the job also shares its progress stream).
	if live, ok := s.byKey[key]; ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, live.view())
		return
	}
	live := 0
	for _, j := range s.jobs {
		if !j.view().State.terminal() {
			live++
		}
	}
	if live >= s.opts.MaxConcurrent+s.opts.QueueDepth {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "queue full (%d live jobs)", live)
		return
	}
	s.seq++
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:         fmt.Sprintf("job-%04d", s.seq),
		key:        key,
		circuit:    c,
		name:       c.Name,
		netlist:    netlist,
		init:       init,
		cfg:        cfg,
		shardProcs: req.ShardProcs,
		cancel:     cancel,
		state:      StateQueued,
		submitted:  time.Now(),
		subs:       make(map[chan Event]struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.byKey[key] = j
	s.wg.Add(1)
	s.mu.Unlock()

	j.emit(Event{Type: "state", State: StateQueued})
	go s.runJob(ctx, j)

	writeJSON(w, http.StatusAccepted, j.view())
}

// runJob executes one job: acquire a run slot, run the pipeline through the
// store's single-flight, publish the terminal state. The byKey liveness
// entry is dropped whatever the outcome.
func (s *Server) runJob(ctx context.Context, j *job) {
	defer s.wg.Done()
	defer func() {
		j.cancel()
		s.mu.Lock()
		if s.byKey[j.key] == j {
			delete(s.byKey, j.key)
		}
		s.mu.Unlock()
	}()

	// A store hit needs no run slot: answer immediately.
	if artifacts, ok, err := s.st.Get(j.key); err == nil && ok {
		j.finishFromArtifacts(artifacts, true)
		return
	}

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		j.setState(StateCancelled, context.Cause(ctx))
		return
	}
	defer func() { <-s.sem }()
	if ctx.Err() != nil {
		j.setState(StateCancelled, context.Cause(ctx))
		return
	}
	j.setState(StateRunning, nil)

	artifacts, hit, err := s.st.Do(j.key, func() (map[string][]byte, error) {
		cfg := j.cfg
		cfg.Ctx = ctx
		cfg.Workers = s.opts.Workers
		cfg.Kernel = s.opts.Kernel
		cfg.SlabLanes = s.opts.SlabLanes
		cfg.ShardProcs = s.opts.ShardProcs
		if j.shardProcs > 0 {
			cfg.ShardProcs = j.shardProcs
		}
		cfg.Telemetry = telemetry.New(jobSink{j})
		r, err := expt.RunPipeline(j.circuit, j.init, cfg)
		if err != nil {
			return nil, err
		}
		return buildArtifacts(r, j.netlist)
	})
	switch {
	case err == nil:
		j.finishFromArtifacts(artifacts, hit)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.setState(StateCancelled, err)
	default:
		j.setState(StateFailed, err)
	}
}

func (j *job) finishFromArtifacts(artifacts map[string][]byte, cached bool) {
	names := make([]string, 0, len(artifacts))
	for name := range artifacts {
		names = append(names, name)
	}
	sort.Strings(names)
	j.mu.Lock()
	j.artifacts = names
	j.cached = cached
	j.mu.Unlock()
	j.setState(StateDone, nil)
}

// Result is the result.json artifact schema: the paper's Table 6 row for
// the compiled circuit plus the generator accounting.
type Result struct {
	Circuit   string         `json:"circuit"`
	Init      string         `json:"init"`
	Config    JobConfig      `json:"config"`
	Table6    expt.Table6Row `json:"table6"`
	Generator struct {
		Gates       int `json:"gates"`
		DFFs        int `json:"dffs"`
		FSMs        int `json:"fsms"`
		Assignments int `json:"assignments"`
		LG          int `json:"lg"`
	} `json:"generator"`
}

// buildArtifacts renders a completed run into the store's artifact set.
func buildArtifacts(r *expt.Run, netlist []byte) (map[string][]byte, error) {
	g, err := expt.SynthesizeGenerator(r)
	if err != nil {
		return nil, fmt.Errorf("synthesizing generator: %w", err)
	}
	var gen bytes.Buffer
	if err := verilog.Write(&gen, g.Circuit); err != nil {
		return nil, fmt.Errorf("rendering generator: %w", err)
	}
	res := Result{
		Circuit: r.Name,
		Init:    r.Init.String(),
		Config: JobConfig{
			LG:                r.Config.LG,
			Seed:              r.Config.Seed,
			ATPGRandomLen:     r.Config.ATPGRandomLen,
			ATPGNoCompaction:  r.Config.ATPGNoCompaction,
			ATPGNoPodem:       r.Config.ATPGNoPodem,
			RandomWindows:     r.Config.RandomWindows,
			NoSampleFirst:     r.Config.NoSampleFirst,
			NoForceFullLength: r.Config.NoForceFullLength,
			NoMatchOrdering:   r.Config.NoMatchOrdering,
			FaultModel:        r.Config.FaultModel,
		},
		Table6: expt.Table6(r),
	}
	res.Generator.Gates = g.NumGates
	res.Generator.DFFs = g.NumDFFs
	res.Generator.FSMs = len(g.FSMs)
	res.Generator.Assignments = g.NumAssignments
	res.Generator.LG = g.LG
	rj, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return map[string][]byte{
		"result.json":   append(rj, '\n'),
		"generator.v":   gen.Bytes(),
		"netlist.bench": netlist,
	}, nil
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	if j.cancel != nil {
		j.cancel()
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleEvents streams the job's event log as JSON lines: first the replay
// of everything so far, then live events until the job reaches a terminal
// state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	ch := make(chan Event, 64)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	defer func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}()

	next := 0
	for {
		for _, ev := range j.snapshotEvents()[next:] {
			enc.Encode(ev)
			next = ev.Seq + 1
			if ev.Type == "state" && ev.State.terminal() {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-ch:
			// Wakeup only; the replay loop above reads from the log, so
			// dropped wakeups on a full channel lose nothing.
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	if !j.view().State.terminal() {
		writeErr(w, http.StatusConflict, "job is not finished")
		return
	}
	name := r.PathValue("name")
	data, ok, err := s.st.GetArtifact(j.key, name)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, "no artifact %q", name)
		return
	}
	switch {
	case strings.HasSuffix(name, ".json"):
		w.Header().Set("Content-Type", "application/json")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Write(data)
}

func (s *Server) handleStoreList(w http.ResponseWriter, r *http.Request) {
	keys, err := s.st.List()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"keys": keys, "count": len(keys)})
}
