package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/expt"
	"repro/internal/iscas"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Store: st, MaxConcurrent: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, hs
}

func submit(t *testing.T, hs *httptest.Server, req SubmitRequest) (JobView, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(hs.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func getJob(t *testing.T, hs *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(hs.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitTerminal(t *testing.T, hs *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, hs, id)
		if v.State.terminal() {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

func fetchArtifact(t *testing.T, hs *httptest.Server, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(hs.URL + "/api/v1/jobs/" + id + "/artifacts/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact %s: status %d", name, resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.Bytes()
}

// TestSubmitRunFetch is the happy path: submit s27, poll to done, fetch all
// three artifacts; resubmit and get the identical bytes from the cache.
func TestSubmitRunFetch(t *testing.T) {
	_, hs := newTestServer(t)

	req := SubmitRequest{Circuit: "s27", Config: JobConfig{LG: 200, Seed: 1}}
	v, code := submit(t, hs, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if v.Key == "" || v.ID == "" {
		t.Fatalf("submit response incomplete: %+v", v)
	}
	done := waitTerminal(t, hs, v.ID)
	if done.State != StateDone {
		t.Fatalf("job state %s (err %q)", done.State, done.Error)
	}
	if done.Cached {
		t.Error("first run reported cached")
	}
	wantArtifacts := []string{"generator.v", "netlist.bench", "result.json"}
	if fmt.Sprint(done.Artifacts) != fmt.Sprint(wantArtifacts) {
		t.Fatalf("artifacts = %v, want %v", done.Artifacts, wantArtifacts)
	}

	var res Result
	if err := json.Unmarshal(fetchArtifact(t, hs, v.ID, "result.json"), &res); err != nil {
		t.Fatal(err)
	}
	if res.Circuit != "s27" || res.Table6.Det == 0 || res.Generator.Gates == 0 {
		t.Errorf("implausible result: %+v", res)
	}
	gen := fetchArtifact(t, hs, v.ID, "generator.v")
	if !strings.Contains(string(gen), "module") {
		t.Error("generator.v does not look like Verilog")
	}
	netlist := fetchArtifact(t, hs, v.ID, "netlist.bench")
	if _, err := bench.Parse("roundtrip", bytes.NewReader(netlist)); err != nil {
		t.Errorf("netlist.bench does not re-parse: %v", err)
	}

	// Resubmit: same key, served from the store, byte-identical artifacts.
	v2, _ := submit(t, hs, req)
	if v2.Key != v.Key {
		t.Fatalf("resubmission key %s != %s", v2.Key, v.Key)
	}
	done2 := waitTerminal(t, hs, v2.ID)
	if done2.State != StateDone || !done2.Cached {
		t.Fatalf("resubmission: state %s cached %v", done2.State, done2.Cached)
	}
	for _, name := range wantArtifacts {
		a := fetchArtifact(t, hs, v.ID, name)
		b := fetchArtifact(t, hs, v2.ID, name)
		if !bytes.Equal(a, b) {
			t.Errorf("artifact %s differs between fetches", name)
		}
	}
}

// TestSubmitNetlist uploads an inline .bench netlist instead of naming a
// built-in circuit, and checks that formatting does not fragment the cache.
func TestSubmitNetlist(t *testing.T) {
	_, hs := newTestServer(t)
	c, err := iscas.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	var src bytes.Buffer
	if err := bench.Write(&src, c); err != nil {
		t.Fatal(err)
	}

	req := SubmitRequest{Netlist: src.String(), Init: "x", Config: JobConfig{LG: 150, Seed: 9}}
	v, code := submit(t, hs, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	done := waitTerminal(t, hs, v.ID)
	if done.State != StateDone {
		t.Fatalf("job state %s (err %q)", done.State, done.Error)
	}

	// The same netlist with cosmetic changes hits the same key.
	req2 := req
	req2.Netlist = "# comment\n\n" + req.Netlist
	v2, _ := submit(t, hs, req2)
	if v2.Key != v.Key {
		t.Error("netlist formatting fragmented the cache key")
	}
}

// TestSubmitValidation: malformed submissions are 400s.
func TestSubmitValidation(t *testing.T) {
	_, hs := newTestServer(t)
	for name, req := range map[string]SubmitRequest{
		"empty":       {},
		"both":        {Circuit: "s27", Netlist: "INPUT(a)"},
		"unknown":     {Circuit: "sX"},
		"bad netlist": {Netlist: "not a bench file"},
		"bad init":    {Circuit: "s27", Init: "q"},
		"bad model":   {Circuit: "s27", Config: JobConfig{FaultModel: "delay"}},
	} {
		if _, code := submit(t, hs, req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
}

// TestSubmitFaultModel: the fault model is job identity — a transition-model
// job gets its own store key, runs to done, and result.json echoes the model.
func TestSubmitFaultModel(t *testing.T) {
	_, hs := newTestServer(t)

	base := SubmitRequest{Circuit: "s27", Config: JobConfig{LG: 120, Seed: 3}}
	trans := base
	trans.Config.FaultModel = "transition"

	v1, _ := submit(t, hs, base)
	v2, _ := submit(t, hs, trans)
	if v1.Key == v2.Key {
		t.Fatal("fault model did not change the store key")
	}
	if done := waitTerminal(t, hs, v1.ID); done.State != StateDone {
		t.Fatalf("stuck-at job state %s (err %q)", done.State, done.Error)
	}
	if done := waitTerminal(t, hs, v2.ID); done.State != StateDone {
		t.Fatalf("transition job state %s (err %q)", done.State, done.Error)
	}

	var res Result
	if err := json.Unmarshal(fetchArtifact(t, hs, v2.ID, "result.json"), &res); err != nil {
		t.Fatal(err)
	}
	if res.Config.FaultModel != "transition" {
		t.Errorf("result.json fault model = %q, want %q", res.Config.FaultModel, "transition")
	}
	if res.Table6.Det == 0 {
		t.Errorf("transition run detected no faults: %+v", res.Table6)
	}

	// "stuck" is an alias of the default model: same canonical config, same key.
	alias := base
	alias.Config.FaultModel = "stuck"
	if v3, _ := submit(t, hs, alias); v3.Key != v1.Key {
		t.Errorf("alias %q fragmented the cache: key %s != %s", "stuck", v3.Key, v1.Key)
	}
}

// TestDuplicateLiveSubmission: an identical submission while the first job
// is still live returns the same job instead of queuing a duplicate.
func TestDuplicateLiveSubmission(t *testing.T) {
	_, hs := newTestServer(t)
	req := SubmitRequest{Circuit: "s298", Config: JobConfig{LG: 300, Seed: 5}}
	v1, _ := submit(t, hs, req)
	v2, code := submit(t, hs, req)
	if v2.ID != v1.ID {
		// Unless the first finished in between, which polling confirms.
		if !getJob(t, hs, v1.ID).State.terminal() {
			t.Fatalf("duplicate live submission got new job %s (status %d)", v2.ID, code)
		}
	}
	waitTerminal(t, hs, v1.ID)
}

// TestCancelJob cancels an in-flight compilation and checks the workers
// really backed out: the job reaches the cancelled state and the
// fsim.groups_cancelled counter advances — the acceptance criterion for
// returning pool workers on cancellation.
func TestCancelJob(t *testing.T) {
	_, hs := newTestServer(t)
	before := telemetry.Counters()

	// A deliberately long job: big LG on a mid-size circuit.
	req := SubmitRequest{Circuit: "s1423", Config: JobConfig{LG: 2000, Seed: 1}}
	v, code := submit(t, hs, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	// Let it get into the pipeline, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, hs, v.ID).State == StateQueued && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	creq, _ := http.NewRequest(http.MethodDelete, hs.URL+"/api/v1/jobs/"+v.ID, nil)
	if _, err := http.DefaultClient.Do(creq); err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, hs, v.ID)
	if done.State != StateCancelled {
		// The job may legitimately have finished before the cancel landed,
		// but then this test measured nothing: fail loudly so flakiness is
		// visible rather than silent.
		t.Fatalf("job state %s, want cancelled", done.State)
	}
	d := telemetry.Counters().Sub(before)
	if got := d.Get(telemetry.CtrGroupsCancelled); got == 0 {
		t.Error("cancellation did not skip any fault groups (workers did not back out)")
	}

	// The key must not be poisoned: resubmitting compiles fresh.
	v2, _ := submit(t, hs, req)
	if v2.Key != v.Key {
		t.Fatalf("resubmission key changed")
	}
	if getJob(t, hs, v2.ID).State == StateFailed {
		t.Fatal("resubmission after cancel failed immediately (poisoned key)")
	}
	// Don't wait for the full s1423 compile; cancel it and let Shutdown drain.
	creq2, _ := http.NewRequest(http.MethodDelete, hs.URL+"/api/v1/jobs/"+v2.ID, nil)
	http.DefaultClient.Do(creq2)
	waitTerminal(t, hs, v2.ID)
}

// TestEventsStream: the JSONL stream replays the full event log and closes
// at the terminal state; span events from the per-job telemetry recorder
// appear in it.
func TestEventsStream(t *testing.T) {
	_, hs := newTestServer(t)
	v, _ := submit(t, hs, SubmitRequest{Circuit: "s27", Config: JobConfig{LG: 150, Seed: 2}})
	resp, err := http.Get(hs.URL + "/api/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) < 3 {
		t.Fatalf("only %d events", len(events))
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d (gap or reorder)", i, ev.Seq)
		}
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != StateDone {
		t.Fatalf("stream ended on %+v, want done state", last)
	}
	sawSpan := false
	for _, ev := range events {
		if ev.Type == "span" && strings.HasPrefix(ev.Span, "pipeline") {
			sawSpan = true
		}
	}
	if !sawSpan {
		t.Error("no pipeline span events in the stream")
	}
}

// TestShutdownDrains: Shutdown with a generous deadline waits for live jobs
// and later submissions are refused.
func TestShutdownDrains(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	v, _ := submit(t, hs, SubmitRequest{Circuit: "s27", Config: JobConfig{LG: 150, Seed: 3}})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := getJob(t, hs, v.ID); got.State != StateDone {
		t.Errorf("job not drained: %s", got.State)
	}
	if _, code := submit(t, hs, SubmitRequest{Circuit: "s27"}); code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit status %d, want 503", code)
	}
}

// TestShutdownDeadlineCancels: a shutdown whose context expires cancels live
// jobs instead of waiting for them.
func TestShutdownDeadlineCancels(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	v, _ := submit(t, hs, SubmitRequest{Circuit: "s1423", Config: JobConfig{LG: 2000, Seed: 7}})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Log("job finished inside the deadline; cancellation path not exercised")
	}
	got := getJob(t, hs, v.ID)
	if !got.State.terminal() {
		t.Fatalf("job still live after Shutdown returned: %s", got.State)
	}
}

// TestResultMatchesDirectRun: the service's result.json reports the same
// Table 6 row as running the pipeline directly — the HTTP layer adds no
// nondeterminism.
func TestResultMatchesDirectRun(t *testing.T) {
	_, hs := newTestServer(t)
	cfg := expt.Config{LG: 200, Seed: 1}
	r, err := expt.RunCircuit("s27", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := expt.Table6(r)

	v, _ := submit(t, hs, SubmitRequest{Circuit: "s27", Config: JobConfig{LG: 200, Seed: 1}})
	done := waitTerminal(t, hs, v.ID)
	if done.State != StateDone {
		t.Fatalf("job state %s (err %q)", done.State, done.Error)
	}
	var res Result
	if err := json.Unmarshal(fetchArtifact(t, hs, v.ID, "result.json"), &res); err != nil {
		t.Fatal(err)
	}
	if res.Table6 != want {
		t.Errorf("served Table6 %+v != direct %+v", res.Table6, want)
	}
}

// TestMiscEndpoints covers the small read-only endpoints and their error
// paths: health, job listing, store inventory, 404s, and the artifact
// conflict on an unfinished job.
func TestMiscEndpoints(t *testing.T) {
	_, hs := newTestServer(t)

	resp, err := http.Get(hs.URL + "/api/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()

	if _, err := New(Options{}); err == nil {
		t.Error("New without a store succeeded")
	}

	for _, path := range []string{
		"/api/v1/jobs/job-9999",
		"/api/v1/jobs/job-9999/events",
		"/api/v1/jobs/job-9999/artifacts/result.json",
	} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
	creq, _ := http.NewRequest(http.MethodDelete, hs.URL+"/api/v1/jobs/job-9999", nil)
	if resp, err := http.DefaultClient.Do(creq); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel of unknown job: %v %d", err, resp.StatusCode)
	}

	v, _ := submit(t, hs, SubmitRequest{Circuit: "s298", Config: JobConfig{LG: 400, Seed: 11}})
	// Artifacts of a live job conflict (unless it already finished).
	resp, err = http.Get(hs.URL + "/api/v1/jobs/" + v.ID + "/artifacts/result.json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict && !getJob(t, hs, v.ID).State.terminal() {
		t.Errorf("artifact of live job: status %d, want 409", resp.StatusCode)
	}
	done := waitTerminal(t, hs, v.ID)
	if done.State != StateDone {
		t.Fatalf("job state %s (%s)", done.State, done.Error)
	}
	// A finished job 404s on an unknown artifact name.
	resp, _ = http.Get(hs.URL + "/api/v1/jobs/" + v.ID + "/artifacts/nope.txt")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown artifact: status %d", resp.StatusCode)
	}

	// Job listing includes the job, in submission order.
	resp, err = http.Get(hs.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var views []JobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(views) != 1 || views[0].ID != v.ID {
		t.Errorf("job listing = %+v", views)
	}

	// Store inventory lists the published key.
	resp, err = http.Get(hs.URL + "/api/v1/store")
	if err != nil {
		t.Fatal(err)
	}
	var inv struct {
		Keys  []string `json:"keys"`
		Count int      `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if inv.Count != 1 || len(inv.Keys) != 1 || inv.Keys[0] != v.Key {
		t.Errorf("store inventory = %+v", inv)
	}

	// Malformed JSON body is a 400.
	presp, err := http.Post(hs.URL+"/api/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", presp.StatusCode)
	}
}
