# Developer entry points. `make test` is the tier-1 gate; `make race` adds
# the race detector over the internal packages (including the
# sequential-vs-parallel fsim determinism tests); `make fuzz-smoke` gives
# every differential fuzz target a bounded run on top of the committed seed
# corpora; `make cover-gate` fails if total statement coverage drops below
# the repository baseline; `make bench-json` refreshes the
# BENCH_pipeline.json baseline trajectory; `make bench-smoke` is the cheap CI
# variant (one small circuit, parallel workers); `make bench-parallel` writes
# the BENCH_parallel.json comparison entry against the committed sequential
# baseline; `make bench-kernel` refreshes the BENCH_event.json dense-vs-event
# kernel comparison; `make bench-slab` refreshes the BENCH_slab.json
# dense-vs-event-vs-slab comparison on near-full fault universes; `make
# bench-shard` refreshes the BENCH_shard.json in-process-vs-sharded
# comparison; `make bench-model` refreshes the BENCH_model.json per-fault-model
# kernel comparison (stuck-at vs transition vs bridge); `make bench-check`
# measures a fresh smoke benchmark and gates its deterministic work counters
# against all six committed BENCH baselines
# (wall-clock is advisory; see scripts/bench_compare.go);
# `make serve-smoke` drives `wbist serve` end to end over HTTP (submit, poll,
# cache-hit resubmit, SIGTERM drain; see scripts/serve_smoke.sh); `make
# shard-smoke` byte-compares a crash-injected multi-process pipeline run
# against the in-process baseline (see scripts/shard_smoke.sh); `make
# shell-test` unit-tests the shared shell polling helper
# (scripts/poll_test.sh).

GO ?= go

# The differential fuzz targets of internal/difftest (see README
# "Correctness tooling"). FUZZTIME bounds each target's smoke run.
FUZZ_TARGETS = FuzzRefVsFsim FuzzEventVsDense FuzzSlabVsDense FuzzShardVsDense FuzzFaultFreeVsSim FuzzWgenVsExpansion FuzzBenchRoundTrip FuzzTransitionVsRef FuzzBridgeVsRef
FUZZTIME ?= 10s

.PHONY: all build test race vet fuzz-smoke cover cover-gate bench-json bench-smoke bench-parallel bench-kernel bench-slab bench-shard bench-model bench-check serve-smoke shard-smoke shell-test

all: build test race vet

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race -short -count=1 ./internal/...

vet:
	$(GO) vet ./...

fuzz-smoke: build
	@for t in $(FUZZ_TARGETS); do \
		echo "=== $$t ($(FUZZTIME)) ==="; \
		$(GO) test ./internal/difftest -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

cover:
	$(GO) test -count=1 -coverprofile=/tmp/wbist_cover.out ./...
	$(GO) tool cover -func=/tmp/wbist_cover.out | tail -1

cover-gate:
	./scripts/cover_gate.sh

bench-json: build
	$(GO) run ./cmd/experiments -skip-large -workers 1 bench

bench-smoke: build
	$(GO) run ./cmd/experiments -circuits s298 -bench-json /tmp/wbist_bench_smoke.json bench

bench-parallel: build
	$(GO) run ./cmd/experiments -skip-large -bench-json BENCH_parallel.json bench

bench-kernel: build
	$(GO) run ./cmd/experiments kernelbench

bench-slab: build
	$(GO) run ./cmd/experiments slabbench

bench-shard: build
	$(GO) run ./cmd/experiments shardbench

bench-model: build
	$(GO) run ./cmd/experiments -skip-large modelbench

serve-smoke: build
	./scripts/serve_smoke.sh

shard-smoke: build
	./scripts/shard_smoke.sh

shell-test:
	./scripts/poll_test.sh

bench-check: build
	$(GO) run ./cmd/experiments -circuits s298 -bench-json /tmp/wbist_bench_fresh.json bench
	$(GO) run ./scripts/bench_compare.go -mode pipeline -baseline BENCH_pipeline.json -fresh /tmp/wbist_bench_fresh.json
	$(GO) run ./scripts/bench_compare.go -mode pipeline -baseline BENCH_parallel.json -fresh /tmp/wbist_bench_fresh.json
	$(GO) run ./cmd/experiments -circuits s27,s298 -kernel-json /tmp/wbist_kernel_fresh.json kernelbench
	$(GO) run ./scripts/bench_compare.go -mode kernel -baseline BENCH_event.json -fresh /tmp/wbist_kernel_fresh.json
	$(GO) run ./cmd/experiments -circuits s27,s298 -slab-json /tmp/wbist_slab_fresh.json slabbench
	$(GO) run ./scripts/bench_compare.go -mode slab -baseline BENCH_slab.json -fresh /tmp/wbist_slab_fresh.json
	$(GO) run ./cmd/experiments -circuits s298 -shard-json /tmp/wbist_shard_fresh.json shardbench
	$(GO) run ./scripts/bench_compare.go -mode shard -baseline BENCH_shard.json -fresh /tmp/wbist_shard_fresh.json
	$(GO) run ./cmd/experiments -circuits s298 -model-json /tmp/wbist_model_fresh.json modelbench
	$(GO) run ./scripts/bench_compare.go -mode model -baseline BENCH_model.json -fresh /tmp/wbist_model_fresh.json
