# Developer entry points. `make test` is the tier-1 gate; `make race` adds
# the race detector over the internal packages; `make bench-json` refreshes
# the BENCH_pipeline.json baseline trajectory.

GO ?= go

.PHONY: all build test race vet bench-json

all: build test race vet

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race -short -count=1 ./internal/...

vet:
	$(GO) vet ./...

bench-json: build
	$(GO) run ./cmd/experiments -skip-large bench
