# Developer entry points. `make test` is the tier-1 gate; `make race` adds
# the race detector over the internal packages (including the
# sequential-vs-parallel fsim determinism tests); `make bench-json` refreshes
# the BENCH_pipeline.json baseline trajectory; `make bench-smoke` is the
# cheap CI variant (one small circuit, parallel workers); `make
# bench-parallel` writes the BENCH_parallel.json comparison entry against the
# committed sequential baseline.

GO ?= go

.PHONY: all build test race vet bench-json bench-smoke bench-parallel

all: build test race vet

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race -short -count=1 ./internal/...

vet:
	$(GO) vet ./...

bench-json: build
	$(GO) run ./cmd/experiments -skip-large -workers 1 bench

bench-smoke: build
	$(GO) run ./cmd/experiments -circuits s298 -bench-json /tmp/wbist_bench_smoke.json bench

bench-parallel: build
	$(GO) run ./cmd/experiments -skip-large -bench-json BENCH_parallel.json bench
