// Command wbist is the main CLI for the weighted-test-sequence BIST
// reproduction. Subcommands:
//
//	wbist info <circuit>            circuit statistics
//	wbist run <circuit>             full pipeline, one Table 6 row + details
//	wbist table6 [circuit...]       the paper's Table 6 (default: all)
//	wbist obs <circuit>             one of the paper's Tables 7-16
//	wbist synth <circuit>           synthesize + verify the Figure 1 generator
//	wbist weights <circuit>         list the selected weight assignments
//	wbist verilog <circuit>         emit the circuit as structural Verilog
//	wbist verilog-gen <circuit>     emit the synthesized generator as Verilog
//	wbist selftest <circuit>        signature-based BIST session report
//	wbist report [flags] <circuit>  run report: coverage curve, detection
//	                                attribution, phase costs, testability
//	wbist faults <circuit>          fault dictionary (fault, detection time)
//	wbist testbench <circuit>       self-checking Verilog testbench for T
//	wbist metrics <circuit>         per-phase pipeline cost table
//	wbist serve [flags]             HTTP/JSON BIST-compilation service with a
//	                                content-addressed artifact cache
//
// The serve subcommand takes its own flags after the subcommand name:
// -addr (listen address, default localhost:8341), -store (artifact cache
// directory), -jobs (max concurrent compilations), -queue (queued
// submissions beyond the running ones) and -drain (graceful-shutdown
// deadline). SIGINT/SIGTERM drain in-flight jobs before exit; jobs still
// running at the -drain deadline are cancelled and stop within one
// fault-group pass.
//
// The report subcommand takes its own flags after the subcommand name:
// -json (machine-readable report), -trace <file> (also write the detection
// trace as JSONL, schema wbist-trace/v1), -from-trace <file> (ingest a trace
// instead of running the pipeline) and -from-metrics <file> (fold a -metrics
// JSONL file into the report).
//
// Common flags (before the subcommand): -lg, -seed, -random, -misr, -workers
// (fault-simulation worker goroutines, default GOMAXPROCS; results are
// bit-identical for any value), -kernel <auto|event|dense|slab>
// (fault-simulation gate-evaluation kernel; "auto" honors FSIM_KERNEL and
// defaults to the event-driven kernel, results are bit-identical for every
// kernel), -slab-lanes N (the slab kernel's fault-group batch width W; 0
// picks W adaptively from the netlist size), -shard-procs N (shard eligible
// fault-simulation runs over N worker subprocesses — the `shard-worker`
// subcommand is the explicit worker entry point, though the coordinator
// normally re-execs this binary directly), -fault-model
// <stuck-at|transition|bridge> (the fault universe the pipeline targets;
// unlike the execution flags it changes every result bit and is part of the
// run's identity), plus the
// observability flags -metrics <file> (JSON-lines span export), -progress
// (per-phase progress on stderr) and -pprof <addr> (pprof/expvar server,
// with Prometheus text exposition under /metrics).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"
	"time"

	"repro"
	"repro/internal/tables"
)

var (
	flagLG        = flag.Int("lg", 0, "per-assignment sequence length L_G (0 = paper default 2000)")
	flagSeed      = flag.Uint64("seed", 1, "master random seed")
	flagRandom    = flag.Int("random", 0, "pseudo-random LFSR windows before weight selection")
	flagMISR      = flag.Int("misr", 16, "MISR width for the selftest subcommand")
	flagWorkers   = flag.Int("workers", runtime.GOMAXPROCS(0), "fault-simulation worker goroutines (results are identical for any value)")
	flagKernel    = flag.String("kernel", "auto", "fault-simulation kernel: auto, event, dense or slab (results are identical for any value)")
	flagSlabLanes = flag.Int("slab-lanes", 0, "slab kernel fault-group batch width W (0 = adaptive; results are identical for any value)")
	flagShard     = flag.Int("shard-procs", 0, "shard eligible fault-simulation runs over this many worker subprocesses (0/1 = in-process; results are identical for any value)")
	flagModel     = flag.String("fault-model", "", "fault model: stuck-at (default), transition or bridge (part of the run's identity, unlike -workers/-kernel)")
	flagMetrics   = flag.String("metrics", "", "write telemetry span events to this file as JSON lines")
	flagProgress  = flag.Bool("progress", false, "print per-phase progress to stderr")
	flagPprof     = flag.String("pprof", "", "serve net/http/pprof, expvar and Prometheus /metrics on this address")
)

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: wbist [flags] <info|run|table6|obs|synth|weights|verilog|verilog-gen|"+
			"selftest|report|faults|testbench|metrics|serve|shard-worker> [circuit ...]")
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	// When the coordinator re-execed this binary as a shard worker, serve
	// frames on stdin/stdout and exit — before flags or signal handling.
	wbist.MaybeShardWorker()
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	// SIGINT/SIGTERM cancel this context: long pipelines stop within one
	// fault-group pass, and the serve subcommand drains before exiting. A
	// second signal kills the process the usual way (the Stop in NotifyContext
	// restores default handling once ctx is cancelled).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var debugSrv *wbist.DebugServer
	if *flagPprof != "" {
		srv, err := wbist.ServeDebug(*flagPprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbist:", err)
			os.Exit(1)
		}
		debugSrv = srv
		fmt.Fprintf(os.Stderr, "wbist: pprof/expvar on http://%s/debug/, Prometheus on /metrics\n", srv.Addr())
		go func() {
			if err := <-srv.Err(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "wbist: debug server:", err)
			}
		}()
	}
	kernel, err := wbist.ParseKernel(*flagKernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbist:", err)
		os.Exit(2)
	}
	cfg := wbist.Config{LG: *flagLG, Seed: *flagSeed, RandomWindows: *flagRandom, Workers: *flagWorkers, Kernel: kernel, SlabLanes: *flagSlabLanes, ShardProcs: *flagShard, FaultModel: *flagModel}
	cfg.Ctx = ctx
	rec, finish, err := setupTelemetry(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbist:", err)
		os.Exit(1)
	}
	cfg.Telemetry = rec
	switch args[0] {
	case "info":
		err = cmdInfo(args[1:])
	case "run":
		err = cmdRun(args[1:], cfg)
	case "table6":
		err = cmdTable6(args[1:], cfg)
	case "obs":
		err = cmdObs(args[1:], cfg)
	case "synth":
		err = cmdSynth(args[1:], cfg)
	case "weights":
		err = cmdWeights(args[1:], cfg)
	case "verilog":
		err = cmdVerilog(args[1:])
	case "verilog-gen":
		err = cmdVerilogGen(args[1:], cfg)
	case "selftest":
		err = cmdSelftest(args[1:], cfg)
	case "report":
		err = cmdReport(args[1:], cfg)
	case "faults":
		err = cmdFaults(args[1:], cfg)
	case "testbench":
		err = cmdTestbench(args[1:], cfg)
	case "metrics":
		err = cmdMetrics(args[1:], cfg)
	case "serve":
		err = cmdServe(ctx, args[1:], cfg)
	case "shard-worker":
		// Explicit worker entry point (the env-marker re-exec path in
		// MaybeShardWorker is the usual route): speak the shard protocol
		// on stdin/stdout until the coordinator closes the stream.
		err = wbist.RunShardWorker(os.Stdin, os.Stdout)
	default:
		usage()
	}
	if ferr := finish(); err == nil {
		err = ferr
	}
	if debugSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		debugSrv.Shutdown(sctx)
		cancel()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbist:", err)
		os.Exit(1)
	}
}

// cmdServe runs the HTTP/JSON BIST-compilation service until the signal
// context is cancelled, then drains: new submissions are refused, in-flight
// jobs run to completion (or are cancelled at the -drain deadline, stopping
// within one fault-group pass), and both the job API and the -pprof debug
// server shut down gracefully.
func cmdServe(ctx context.Context, args []string, cfg wbist.Config) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8341", "job API listen address")
	dir := fs.String("store", defaultStoreDir(), "artifact store directory")
	jobs := fs.Int("jobs", 2, "maximum concurrently running compilations")
	queue := fs.Int("queue", 16, "queued submissions allowed beyond the running ones")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments, got %q", fs.Args())
	}
	st, err := wbist.OpenStore(*dir)
	if err != nil {
		return err
	}
	srv, err := wbist.NewJobServer(wbist.ServeOptions{
		Store:         st,
		MaxConcurrent: *jobs,
		QueueDepth:    *queue,
		Workers:       cfg.Workers,
		Kernel:        cfg.Kernel,
		SlabLanes:     cfg.SlabLanes,
		ShardProcs:    cfg.ShardProcs,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	fmt.Fprintf(os.Stderr, "wbist: job API on http://%s/api/v1/, artifact store %s\n", ln.Addr(), *dir)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "wbist: shutting down (drain %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain jobs first so clients can keep polling during the drain, then
	// close the listener and wait for in-flight requests.
	jobErr := srv.Shutdown(dctx)
	httpErr := httpSrv.Shutdown(dctx)
	if jobErr != nil {
		fmt.Fprintf(os.Stderr, "wbist: drain deadline hit, cancelled in-flight jobs: %v\n", jobErr)
	}
	if httpErr != nil {
		return httpErr
	}
	fmt.Fprintln(os.Stderr, "wbist: shutdown complete")
	return nil
}

// defaultStoreDir places the artifact store under the user cache directory,
// falling back to a local path when none is defined.
func defaultStoreDir() string {
	if base, err := os.UserCacheDir(); err == nil {
		return base + "/wbist/store"
	}
	return ".wbist-store"
}

// setupTelemetry builds the recorder implied by the observability flags (and
// the metrics subcommand, which always needs one). The returned finish
// function flushes and closes the -metrics file.
func setupTelemetry(sub string) (*wbist.Recorder, func() error, error) {
	noop := func() error { return nil }
	if *flagMetrics == "" && !*flagProgress && sub != "metrics" {
		return nil, noop, nil
	}
	var sinks []wbist.MetricsSink
	finish := noop
	if *flagMetrics != "" {
		f, err := os.Create(*flagMetrics)
		if err != nil {
			return nil, noop, err
		}
		sink := wbist.NewJSONLSink(f)
		sinks = append(sinks, sink)
		finish = sink.Close
	}
	rec := wbist.NewRecorder(sinks...)
	if *flagProgress {
		rec.SetProgress(os.Stderr)
	}
	return rec, finish, nil
}

func one(args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("expected exactly one circuit name, got %d", len(args))
	}
	return args[0], nil
}

func cmdInfo(args []string) error {
	name, err := one(args)
	if err != nil {
		return err
	}
	c, err := wbist.LoadCircuit(name)
	if err != nil {
		return err
	}
	fmt.Println(c.Stats())
	for _, model := range wbist.FaultModelNames() {
		faults, err := wbist.FaultsFor(c, model)
		if err != nil {
			return err
		}
		fmt.Printf("collapsed %s faults: %d\n", model, len(faults))
	}
	return nil
}

func cmdRun(args []string, cfg wbist.Config) error {
	name, err := one(args)
	if err != nil {
		return err
	}
	r, err := wbist.RunCircuit(name, cfg)
	if err != nil {
		return err
	}
	row := wbist.Table6(r)
	fmt.Printf("circuit %s: |T|=%d, detects %d of %d collapsed faults\n",
		r.Name, row.Len, row.Det, r.TotalFaults)
	fmt.Printf("weight assignments: %d generated, %d after reverse-order simulation\n",
		len(r.Core.Omega), row.Seq)
	fmt.Printf("subsequences: %d (max length %d); FSMs: %d with %d outputs\n",
		row.Subs, row.MaxLen, row.FSMs, row.Outputs)
	fmt.Printf("coverage of T's faults by the weighted sequences: %.1f%%\n", 100*row.Coverage)
	fmt.Printf("candidate sequences fault-simulated: %d\n", r.Core.SimulatedSequences)
	return nil
}

func cmdTable6(args []string, cfg wbist.Config) error {
	names := args
	if len(names) == 0 {
		names = wbist.Table6Names()
	}
	t := tables.New("Table 6: Experimental results",
		"circuit", "len", "det", "seq", "subs", "len*", "num", "out")
	for _, name := range names {
		r, err := wbist.RunCircuit(name, cfg)
		if err != nil {
			return err
		}
		row := wbist.Table6(r)
		t.Add(row.Circuit, tables.Int(row.Len), tables.Int(row.Det),
			tables.Int(row.Seq), tables.Int(row.Subs), tables.Int(row.MaxLen),
			tables.Int(row.FSMs), tables.Int(row.Outputs))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("(len* = maximum subsequence length; num/out = FSM count / FSM outputs)")
	return nil
}

func cmdObs(args []string, cfg wbist.Config) error {
	name, err := one(args)
	if err != nil {
		return err
	}
	r, err := wbist.RunCircuit(name, cfg)
	if err != nil {
		return err
	}
	res := wbist.ObsExperiment(r)
	t := tables.New(fmt.Sprintf("Observation point insertion for %s", name),
		"seq", "sub", "len", "f.e.", "obs", "f.e.")
	for _, row := range res.FilteredRows(99) {
		t.Add(tables.Int(row.Seq), tables.Int(row.Subs), tables.Int(row.Len),
			tables.F1(row.FE), tables.Int(row.Obs), tables.F1(row.FEObs))
	}
	return t.Render(os.Stdout)
}

func cmdSynth(args []string, cfg wbist.Config) error {
	name, err := one(args)
	if err != nil {
		return err
	}
	r, err := wbist.RunCircuit(name, cfg)
	if err != nil {
		return err
	}
	g, err := wbist.Synthesize(r)
	if err != nil {
		return err
	}
	cut := r.Circuit.Stats()
	fmt.Printf("test generator for %s: %d gates, %d flip-flops, %d FSMs, %d assignments, L_G=%d\n",
		name, g.NumGates, g.NumDFFs, len(g.FSMs), g.NumAssignments, g.LG)
	fmt.Printf("CUT: %d gates, %d flip-flops -> area overhead %.1f%% (gates) %.1f%% (FFs)\n",
		cut.Gates, cut.DFFs,
		100*float64(g.NumGates)/float64(cut.Gates),
		100*float64(g.NumDFFs)/float64(max(cut.DFFs, 1)))
	return nil
}

func cmdWeights(args []string, cfg wbist.Config) error {
	name, err := one(args)
	if err != nil {
		return err
	}
	r, err := wbist.RunCircuit(name, cfg)
	if err != nil {
		return err
	}
	for j, a := range r.Compacted {
		fmt.Printf("Ω%d: %s\n", j+1, a)
	}
	return nil
}

func cmdVerilog(args []string) error {
	name, err := one(args)
	if err != nil {
		return err
	}
	c, err := wbist.LoadCircuit(name)
	if err != nil {
		return err
	}
	return wbist.WriteVerilog(os.Stdout, c)
}

func cmdVerilogGen(args []string, cfg wbist.Config) error {
	name, err := one(args)
	if err != nil {
		return err
	}
	r, err := wbist.RunCircuit(name, cfg)
	if err != nil {
		return err
	}
	g, err := wbist.Synthesize(r)
	if err != nil {
		return err
	}
	return wbist.WriteVerilog(os.Stdout, g.Circuit)
}

func cmdSelftest(args []string, cfg wbist.Config) error {
	name, err := one(args)
	if err != nil {
		return err
	}
	r, err := wbist.RunCircuit(name, cfg)
	if err != nil {
		return err
	}
	rep, err := wbist.RunBISTSession(r, *flagMISR)
	if err != nil {
		return err
	}
	fmt.Printf("self-test session for %s: %d cycles, %d-bit MISR, golden signature %x\n",
		name, rep.SessionLength, *flagMISR, rep.GoldenSignature)
	fmt.Printf("targets %d | by compare %d | by signature %d | aliased %d | tainted %d\n",
		len(rep.ByCompare), rep.NumByCompare, rep.NumBySignature, rep.Aliased, rep.Tainted)
	return nil
}

func cmdReport(args []string, cfg wbist.Config) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the run report as JSON instead of text")
	traceOut := fs.String("trace", "", "also write the detection trace (JSONL, wbist-trace/v1) to this file")
	fromTrace := fs.String("from-trace", "", "build the report from this detection-trace file instead of running the pipeline")
	fromMetrics := fs.String("from-metrics", "", "fold this JSONL metrics file (the -metrics format) into the report")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var phases []wbist.PhaseStats
	if *fromMetrics != "" {
		f, err := os.Open(*fromMetrics)
		if err != nil {
			return err
		}
		phases, err = wbist.ReadMetrics(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	var rt *wbist.RunTrace
	var r *wbist.Run
	if *fromTrace != "" {
		f, err := os.Open(*fromTrace)
		if err != nil {
			return err
		}
		rt, err = wbist.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		name, err := one(fs.Args())
		if err != nil {
			return err
		}
		r, err = wbist.RunCircuit(name, cfg)
		if err != nil {
			return err
		}
		rt, err = wbist.TraceRun(r)
		if err != nil {
			return err
		}
		if phases == nil {
			phases = r.Metrics
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		err = wbist.WriteTrace(f, rt)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}

	rep := wbist.BuildReport(rt, phases)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	wbist.RenderReport(os.Stdout, rep)
	if r == nil {
		return nil // trace-only ingestion: no run to derive testability from
	}
	fmt.Println()
	return renderTestability(r)
}

// renderTestability prints the circuit-centric sections of the report that
// need the live run (detection-time histogram, SCOAP summary).
func renderTestability(r *wbist.Run) error {
	st := r.Circuit.Stats()
	fmt.Println(st)
	fmt.Printf("collapsed faults: %d; detected by T: %d (%.1f%%); |T| = %d\n",
		r.TotalFaults, len(r.Targets),
		100*float64(len(r.Targets))/float64(max(r.TotalFaults, 1)), r.T.Len())

	// Detection-time histogram (eight buckets over |T|).
	const buckets = 8
	hist := make([]int, buckets)
	for _, u := range r.DetTimes {
		b := u * buckets / r.T.Len()
		if b >= buckets {
			b = buckets - 1
		}
		hist[b]++
	}
	t := tables.New("detection-time distribution", "time units", "faults")
	for b := 0; b < buckets; b++ {
		lo := b * r.T.Len() / buckets
		hi := (b+1)*r.T.Len()/buckets - 1
		t.Add(fmt.Sprintf("%d-%d", lo, hi), tables.Int(hist[b]))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	// SCOAP summary.
	m := wbist.Testability(r.Circuit, r.Init)
	var maxCC, maxCO int32
	unctl, unobs := 0, 0
	for id := range r.Circuit.Nodes {
		cc := m.CC0[id]
		if m.CC1[id] > cc {
			cc = m.CC1[id]
		}
		if cc >= 1<<30 {
			unctl++
		} else if cc > maxCC {
			maxCC = cc
		}
		if m.CO[id] >= 1<<30 {
			unobs++
		} else if m.CO[id] > maxCO {
			maxCO = m.CO[id]
		}
	}
	fmt.Printf("SCOAP: max finite controllability %d, max finite observability %d, "+
		"%d uncontrollable node(s), %d unobservable node(s)\n", maxCC, maxCO, unctl, unobs)
	return nil
}

func cmdFaults(args []string, cfg wbist.Config) error {
	name, err := one(args)
	if err != nil {
		return err
	}
	r, err := wbist.RunCircuit(name, cfg)
	if err != nil {
		return err
	}
	universe, err := wbist.FaultsFor(r.Circuit, r.Config.FaultModel)
	if err != nil {
		return err
	}
	t := tables.New(fmt.Sprintf("%s fault dictionary for %s under T", r.Config.FaultModel, name),
		"fault", "detected at")
	detected := map[string]int{}
	for i, f := range r.Targets {
		detected[f.String(r.Circuit)] = r.DetTimes[i]
	}
	for _, f := range universe {
		key := f.String(r.Circuit)
		if u, ok := detected[key]; ok {
			t.Add(key, tables.Int(u))
		} else {
			t.Add(key, "-")
		}
	}
	return t.Render(os.Stdout)
}

func cmdTestbench(args []string, cfg wbist.Config) error {
	name, err := one(args)
	if err != nil {
		return err
	}
	r, err := wbist.RunCircuit(name, cfg)
	if err != nil {
		return err
	}
	if r.Init != wbist.Zero {
		return fmt.Errorf("testbench requires a reset-to-0 circuit (%s initialises to %v)", name, r.Init)
	}
	if err := wbist.WriteVerilog(os.Stdout, r.Circuit); err != nil {
		return err
	}
	fmt.Println()
	return wbist.WriteVerilogTestbench(os.Stdout, r.Circuit, r.T, r.Init)
}

func cmdMetrics(args []string, cfg wbist.Config) error {
	name, err := one(args)
	if err != nil {
		return err
	}
	// A memoized run from an earlier command in this process would have
	// nothing left to measure; force a fresh pipeline.
	wbist.ClearRunCache()
	before := wbist.Counters()
	r, err := wbist.RunCircuit(name, cfg)
	if err != nil {
		return err
	}
	t := tables.New(fmt.Sprintf("pipeline cost for %s", name),
		"phase", "runs", "wall", "alloc", "gate evals", "vectors")
	for _, p := range r.Metrics {
		t.Add(p.Span, tables.Int(p.Count),
			fmt.Sprintf("%.3fs", p.Wall().Seconds()),
			fmt.Sprintf("%.1fMB", float64(p.AllocBytes)/(1<<20)),
			tables.Int(int(p.Counters["fsim.gate_evals"])),
			tables.Int(int(p.Counters["fsim.vectors"])))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	delta := wbist.Counters().Sub(before)
	m := delta.Map()
	names := make([]string, 0, len(m))
	for counter := range m {
		names = append(names, counter)
	}
	sort.Strings(names)
	ct := tables.New("hot-path counters", "counter", "value")
	for _, counter := range names {
		ct.Add(counter, tables.Int(int(m[counter])))
	}
	return ct.Render(os.Stdout)
}
