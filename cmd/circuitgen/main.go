// Command circuitgen writes the benchmark suite's netlists as ISCAS-89
// .bench files, so they can be inspected or consumed by external tools.
//
//	circuitgen -o DIR [circuit ...]     (default: the whole suite)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	out := flag.String("o", ".", "output directory")
	flag.Parse()
	names := flag.Args()
	if len(names) == 0 {
		names = wbist.CircuitNames()
	}
	if err := run(*out, names); err != nil {
		fmt.Fprintln(os.Stderr, "circuitgen:", err)
		os.Exit(1)
	}
}

func run(dir string, names []string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range names {
		c, err := wbist.LoadCircuit(name)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name+".bench")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := wbist.WriteBench(f, c); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		st := c.Stats()
		fmt.Printf("%s: %d PI, %d PO, %d FF, %d gates\n", path, st.Inputs, st.Outputs, st.DFFs, st.Gates)
	}
	return nil
}
