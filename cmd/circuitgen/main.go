// Command circuitgen writes the benchmark suite's netlists as ISCAS-89
// .bench files, so they can be inspected or consumed by external tools.
// With -random it instead writes circuits from the seeded random generator
// (the differential-fuzzing circuit decoder): one file per seed, so a
// failing fuzz seed can be materialised for inspection.
//
//	circuitgen -o DIR [circuit ...]       (default: the whole suite)
//	circuitgen -o DIR -random 3 -seed 41  (rand-41, rand-42, rand-43)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	out := flag.String("o", ".", "output directory")
	random := flag.Int("random", 0, "write this many random circuits instead of the suite")
	seed := flag.Uint64("seed", 1, "first random-circuit seed (with -random)")
	flag.Parse()
	names := flag.Args()
	if len(names) == 0 {
		names = wbist.CircuitNames()
	}
	var err error
	if *random > 0 {
		err = runRandom(*out, *random, *seed)
	} else {
		err = run(*out, names)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "circuitgen:", err)
		os.Exit(1)
	}
}

func run(dir string, names []string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range names {
		c, err := wbist.LoadCircuit(name)
		if err != nil {
			return err
		}
		if err := write(dir, name, c); err != nil {
			return err
		}
	}
	return nil
}

func runRandom(dir string, n int, seed uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for k := 0; k < n; k++ {
		s := seed + uint64(k)
		c := wbist.RandomCircuitFromSeed(s)
		if err := write(dir, fmt.Sprintf("rand-%d", s), c); err != nil {
			return err
		}
	}
	return nil
}

func write(dir, name string, c *wbist.Circuit) error {
	path := filepath.Join(dir, name+".bench")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := wbist.WriteBench(f, c); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st := c.Stats()
	fmt.Printf("%s: %d PI, %d PO, %d FF, %d gates\n", path, st.Inputs, st.Outputs, st.DFFs, st.Gates)
	return nil
}
