package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

// setFlags points the output-file and filter flags at test-owned values and
// restores them afterwards; the bench sections read these package globals
// instead of taking parameters.
func setFlags(t *testing.T, circuits string) (kernelJSON, slabJSON, benchJSON string) {
	t.Helper()
	dir := t.TempDir()
	kernelJSON = filepath.Join(dir, "kernel.json")
	slabJSON = filepath.Join(dir, "slab.json")
	benchJSON = filepath.Join(dir, "bench.json")
	shardJSON := filepath.Join(dir, "shard.json")
	modelJSON := filepath.Join(dir, "model.json")
	oldC, oldK, oldS, oldB := *flagCircuits, *flagKernelJSON, *flagSlabJSON, *flagBenchJSON
	oldSh, oldM := *flagShardJSON, *flagModelJSON
	*flagCircuits, *flagKernelJSON, *flagSlabJSON, *flagBenchJSON = circuits, kernelJSON, slabJSON, benchJSON
	*flagShardJSON, *flagModelJSON = shardJSON, modelJSON
	t.Cleanup(func() {
		*flagCircuits, *flagKernelJSON, *flagSlabJSON, *flagBenchJSON = oldC, oldK, oldS, oldB
		*flagShardJSON, *flagModelJSON = oldSh, oldM
	})
	return
}

// TestMain lets the shardbench test's coordinator re-exec this test binary
// as a shard worker: a child spawned with the worker env set must run the
// worker loop and exit instead of the test suite.
func TestMain(m *testing.M) {
	wbist.MaybeShardWorker()
	os.Exit(m.Run())
}

func decodeBench(t *testing.T, path string, v any) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}

// TestKernelBench runs the kernelbench section on s27 with a short workload
// and checks the written file's schema and kernel-invariant counters.
func TestKernelBench(t *testing.T) {
	kernelJSON, _, _ := setFlags(t, "s27")
	cfg := wbist.Config{LG: 120, Seed: 1, Workers: 1}
	if err := kernelBench(cfg); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Schema   string `json:"schema"`
		Circuits []struct {
			Circuit string `json:"circuit"`
			Faults  int    `json:"faults"`
			Vectors int64  `json:"vectors"`
			Dense   struct {
				GateEvals int64 `json:"gate_evals"`
				WallNS    int64 `json:"wall_ns"`
			} `json:"dense"`
			Event struct {
				GateEvals    int64 `json:"gate_evals"`
				GatesSkipped int64 `json:"gates_skipped"`
				WallNS       int64 `json:"wall_ns"`
			} `json:"event"`
			EvalReduction float64 `json:"eval_reduction"`
		} `json:"circuits"`
	}
	decodeBench(t, kernelJSON, &out)
	if out.Schema != "wbist-bench-kernel/v1" {
		t.Fatalf("schema = %q", out.Schema)
	}
	if len(out.Circuits) != 1 || out.Circuits[0].Circuit != "s27" {
		t.Fatalf("circuits = %+v, want exactly s27", out.Circuits)
	}
	cb := out.Circuits[0]
	if cb.Faults <= 0 || cb.Vectors <= 0 || cb.Dense.GateEvals <= 0 || cb.Dense.WallNS <= 0 || cb.Event.WallNS <= 0 {
		t.Fatalf("implausible s27 row: %+v", cb)
	}
	// Effective evals (evaluated + provably skipped) are kernel-invariant.
	if cb.Event.GateEvals+cb.Event.GatesSkipped != cb.Dense.GateEvals {
		t.Fatalf("event evals %d + skipped %d != dense evals %d",
			cb.Event.GateEvals, cb.Event.GatesSkipped, cb.Dense.GateEvals)
	}
	if cb.EvalReduction <= 0 {
		t.Fatalf("eval_reduction = %v", cb.EvalReduction)
	}
}

// TestSlabBench runs the slabbench section on s27 with a short workload and
// checks the file's schema, counter invariants and allocation accounting.
func TestSlabBench(t *testing.T) {
	_, slabJSON, _ := setFlags(t, "s27")
	cfg := wbist.Config{LG: 120, Seed: 1, Workers: 1}
	if err := slabBench(cfg); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Schema   string `json:"schema"`
		Circuits []struct {
			Circuit   string `json:"circuit"`
			Faults    int    `json:"faults"`
			Groups    int    `json:"groups"`
			SlabLanes int    `json:"slab_lanes"`
			Dense     struct {
				GateEvals int64 `json:"gate_evals"`
			} `json:"dense"`
			Slab struct {
				GateEvals        int64 `json:"gate_evals"`
				AllocsPerRun     int64 `json:"allocs_per_run"`
				ColdAllocsPerRun int64 `json:"cold_allocs_per_run"`
				SlabPasses       int64 `json:"slab_passes"`
			} `json:"slab"`
			SpeedupVsDense float64 `json:"speedup_vs_dense"`
			AllocReduction float64 `json:"alloc_reduction"`
		} `json:"circuits"`
	}
	decodeBench(t, slabJSON, &out)
	if out.Schema != "wbist-bench-slab/v1" {
		t.Fatalf("schema = %q", out.Schema)
	}
	if len(out.Circuits) != 1 || out.Circuits[0].Circuit != "s27" {
		t.Fatalf("circuits = %+v, want exactly s27", out.Circuits)
	}
	cb := out.Circuits[0]
	if cb.Groups <= 0 || cb.SlabLanes <= 0 || cb.SlabLanes > cb.Groups {
		t.Fatalf("implausible lane/group row: %+v", cb)
	}
	// Lane freezing keeps the slab's eval counter dense-equivalent.
	if cb.Slab.GateEvals != cb.Dense.GateEvals {
		t.Fatalf("slab evals %d != dense evals %d", cb.Slab.GateEvals, cb.Dense.GateEvals)
	}
	if cb.Slab.SlabPasses <= 0 || cb.SpeedupVsDense <= 0 {
		t.Fatalf("implausible slab row: %+v", cb)
	}
	// The warm arena must beat a fresh simulator's first-run scratch build.
	if cb.Slab.AllocsPerRun >= cb.Slab.ColdAllocsPerRun {
		t.Fatalf("warm allocs %d not below cold allocs %d",
			cb.Slab.AllocsPerRun, cb.Slab.ColdAllocsPerRun)
	}
	if cb.AllocReduction < 1 {
		t.Fatalf("alloc_reduction = %v", cb.AllocReduction)
	}
}

// TestShardBench runs the shardbench section on s298 with a short workload
// and checks the written file: schema, an in-process reference row plus
// sharded rows that actually dispatched ranges, and deterministic counters
// that are identical across every row.
func TestShardBench(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses per timed repetition")
	}
	setFlags(t, "s298")
	cfg := wbist.Config{LG: 120, Seed: 1, Workers: 1}
	if err := shardBench(cfg); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Schema   string `json:"schema"`
		Circuits []struct {
			Circuit  string `json:"circuit"`
			Faults   int    `json:"faults"`
			Groups   int    `json:"groups"`
			Detected int    `json:"detected"`
			Rows     []struct {
				Procs            int   `json:"procs"`
				WallNS           int64 `json:"wall_ns"`
				GateEvals        int64 `json:"gate_evals"`
				Vectors          int64 `json:"vectors"`
				GroupPasses      int64 `json:"group_passes"`
				RangesDispatched int64 `json:"ranges_dispatched"`
				WorkersLost      int64 `json:"workers_lost"`
			} `json:"rows"`
			OverheadVsInProcess []float64 `json:"overhead_vs_in_process"`
		} `json:"circuits"`
	}
	decodeBench(t, *flagShardJSON, &out)
	if out.Schema != "wbist-bench-shard/v1" {
		t.Fatalf("schema = %q", out.Schema)
	}
	if len(out.Circuits) != 1 || out.Circuits[0].Circuit != "s298" {
		t.Fatalf("circuits = %+v, want exactly s298", out.Circuits)
	}
	cb := out.Circuits[0]
	if cb.Groups <= 1 || cb.Detected <= 0 {
		t.Fatalf("implausible s298 row: %+v", cb)
	}
	if len(cb.Rows) != 3 || cb.Rows[0].Procs != 0 || cb.Rows[1].Procs != 2 || cb.Rows[2].Procs != 4 {
		t.Fatalf("proc rows = %+v, want [0 2 4]", cb.Rows)
	}
	ip := cb.Rows[0]
	if ip.GateEvals <= 0 || ip.Vectors <= 0 || ip.GroupPasses <= 0 || ip.RangesDispatched != 0 {
		t.Fatalf("implausible in-process row: %+v", ip)
	}
	for _, r := range cb.Rows[1:] {
		// Sharding is an execution policy: the deterministic counters must
		// be bit-identical to the in-process reference.
		if r.GateEvals != ip.GateEvals || r.Vectors != ip.Vectors || r.GroupPasses != ip.GroupPasses {
			t.Fatalf("procs=%d counters diverge from in-process: %+v vs %+v", r.Procs, r, ip)
		}
		if r.RangesDispatched <= 0 {
			t.Fatalf("procs=%d row dispatched no ranges (silent in-process fallback?): %+v", r.Procs, r)
		}
		if r.WorkersLost != 0 {
			t.Fatalf("procs=%d row lost workers on a healthy bench run: %+v", r.Procs, r)
		}
	}
	if len(cb.OverheadVsInProcess) != 2 {
		t.Fatalf("overhead column = %v, want one ratio per sharded row", cb.OverheadVsInProcess)
	}
	for _, ratio := range cb.OverheadVsInProcess {
		if ratio <= 0 {
			t.Fatalf("overhead ratio %v not positive", ratio)
		}
	}
}

// TestBenchJSON runs the pipeline bench section on s298 (the CI bench-smoke
// circuit) and checks the written baseline row.
func TestBenchJSON(t *testing.T) {
	_, _, benchPath := setFlags(t, "s298")
	cfg := wbist.Config{Seed: 1, Workers: 2}
	if err := benchJSON(cfg); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Schema   string `json:"schema"`
		Circuits []struct {
			Circuit  string           `json:"circuit"`
			WallNS   int64            `json:"wall_ns"`
			Counters map[string]int64 `json:"counters"`
		} `json:"circuits"`
	}
	decodeBench(t, benchPath, &out)
	if out.Schema != "wbist-bench-pipeline/v1" {
		t.Fatalf("schema = %q", out.Schema)
	}
	if len(out.Circuits) != 1 || out.Circuits[0].Circuit != "s298" {
		t.Fatalf("circuits = %+v, want exactly s298", out.Circuits)
	}
	cb := out.Circuits[0]
	if cb.WallNS <= 0 || cb.Counters["fsim.gate_evals"] <= 0 || cb.Counters["fsim.vectors"] <= 0 {
		t.Fatalf("implausible s298 row: %+v", cb)
	}
}

// TestWeightedWorkload checks the shared bench stimulus: deterministic for a
// seed, requested length, and binary vectors only.
func TestWeightedWorkload(t *testing.T) {
	a := weightedWorkload(5, 1, 50)
	b := weightedWorkload(5, 1, 50)
	if a.Len() != 50 || b.Len() != 50 {
		t.Fatalf("lengths %d, %d, want 50", a.Len(), b.Len())
	}
	for u := 0; u < a.Len(); u++ {
		for i := 0; i < 5; i++ {
			if a.At(u, i) != b.At(u, i) {
				t.Fatalf("workload not deterministic at u=%d i=%d", u, i)
			}
		}
	}
	if c := weightedWorkload(5, 2, 50); c.Len() != 50 {
		t.Fatalf("seed-2 length %d", c.Len())
	}
}

// TestModelBench runs the modelbench section on s298 (the smallest circuit
// whose bench workload detects faults under every model) with a short
// workload and checks the written file: schema, one row per fault model, and
// the dense-vs-event bit-identity invariants bench_compare -mode model gates
// on.
func TestModelBench(t *testing.T) {
	setFlags(t, "s298")
	cfg := wbist.Config{LG: 120, Seed: 1, Workers: 1}
	if err := modelBench(cfg); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Schema   string `json:"schema"`
		Circuits []struct {
			Circuit string `json:"circuit"`
			Gates   int    `json:"gates"`
			Models  []struct {
				Model    string `json:"model"`
				Faults   int    `json:"faults"`
				Detected int    `json:"detected"`
				Dense    struct {
					WallNS    int64 `json:"wall_ns"`
					GateEvals int64 `json:"gate_evals"`
					Vectors   int64 `json:"vectors"`
				} `json:"dense"`
				Event struct {
					WallNS    int64 `json:"wall_ns"`
					GateEvals int64 `json:"gate_evals"`
					Vectors   int64 `json:"vectors"`
				} `json:"event"`
				Speedup           float64 `json:"speedup"`
				OverheadVsStuckAt float64 `json:"overhead_vs_stuck_at"`
			} `json:"models"`
		} `json:"circuits"`
	}
	decodeBench(t, *flagModelJSON, &out)
	if out.Schema != "wbist-bench-model/v1" {
		t.Fatalf("schema = %q", out.Schema)
	}
	if len(out.Circuits) != 1 || out.Circuits[0].Circuit != "s298" {
		t.Fatalf("circuits = %+v, want exactly s298", out.Circuits)
	}
	cb := out.Circuits[0]
	if len(cb.Models) != 3 {
		t.Fatalf("models = %+v, want stuck-at, transition, bridge", cb.Models)
	}
	for i, name := range []string{"stuck-at", "transition", "bridge"} {
		m := cb.Models[i]
		if m.Model != name {
			t.Fatalf("model %d = %q, want %q", i, m.Model, name)
		}
		if m.Faults <= 0 || m.Detected <= 0 || m.Detected > m.Faults {
			t.Fatalf("%s: implausible fault counts: %+v", name, m)
		}
		if m.Dense.WallNS <= 0 || m.Event.WallNS <= 0 || m.Dense.GateEvals <= 0 {
			t.Fatalf("%s: implausible timings: %+v", name, m)
		}
		// The applied-vector counter is kernel-invariant per model: both
		// kernels stop each group at its last detection the same way.
		if m.Dense.Vectors != m.Event.Vectors {
			t.Fatalf("%s: dense vectors %d != event vectors %d", name, m.Dense.Vectors, m.Event.Vectors)
		}
		if m.Speedup <= 0 {
			t.Fatalf("%s: speedup = %v", name, m.Speedup)
		}
	}
	// The overhead column is anchored at the stuck-at row.
	if cb.Models[0].OverheadVsStuckAt != 1 {
		t.Fatalf("stuck-at overhead = %v, want 1", cb.Models[0].OverheadVsStuckAt)
	}
	for _, m := range cb.Models[1:] {
		if m.OverheadVsStuckAt <= 0 {
			t.Fatalf("%s: overhead = %v", m.Model, m.OverheadVsStuckAt)
		}
	}
}

// TestModelCoverage runs the models section (full pipeline per fault model
// on s298 and s344) with a short generator window; it must render without
// error — the per-model numbers themselves are pinned by the golden tests.
func TestModelCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six full pipelines")
	}
	setFlags(t, "")
	if err := modelCoverage(wbist.Config{LG: 120, Seed: 1, Workers: 2}); err != nil {
		t.Fatal(err)
	}
}
